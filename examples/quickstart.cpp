// Quickstart: build a dataset, generate the paper's unified workload, train
// a traditional and a learned estimator, and compare their q-errors.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/traditional/dbms.h"
#include "estimators/traditional/sampling.h"
#include "util/stats.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;

  // 1. A Census-like table (synthetic stand-in for the paper's benchmark).
  DatasetSpec spec = CensusSpec();
  spec.rows = 20000;
  const Table table = GenerateDataset(spec, /*seed=*/1);
  std::printf("dataset: %s, %zu rows, %zu cols, log10(joint domain)=%.1f\n",
              table.name().c_str(), table.num_rows(), table.num_cols(),
              table.Log10JointDomain());

  // 2. The unified workload generator (center: 90%% data / 10%% OOD;
  //    width: 50%% uniform / 50%% exponential).
  const Workload test = GenerateWorkload(table, /*count=*/500, /*seed=*/7);
  std::printf("generated %zu labelled queries; example:\n  %s\n",
              test.size(), test.queries[0].ToString(table).c_str());

  // 3. Train estimators.
  TrainContext ctx;
  auto postgres = MakePostgresEstimator();
  postgres->Train(table, ctx);
  SamplingEstimator sampling;
  sampling.Train(table, ctx);

  // 4. Compare q-errors (Table 4's metric).
  for (const CardinalityEstimator* est :
       {postgres.get(), static_cast<CardinalityEstimator*>(&sampling)}) {
    const auto errors = EvaluateQErrors(*est, test, table.num_rows());
    const QuantileSummary s = Summarize(errors);
    std::printf("%-10s q-error: 50th=%.2f 95th=%.2f 99th=%.2f max=%.0f\n",
                est->Name().c_str(), s.p50, s.p95, s.p99, s.max);
  }
  return 0;
}
