// Optimizer-integration example: why cardinality estimation quality matters
// (paper §1 — "a query plan based on a wrongly estimated cardinality can be
// orders of magnitude slower than the best plan").
//
// A toy physical-operator chooser decides, per filter query, whether the
// qualifying rows feed an index-nested-loop join (cheap only when the
// *conjunction* is selective: cost ~ result_rows * probe_penalty) or a hash
// join (flat cost ~ table scan + build). The decision is made with
// estimated cardinalities but paid with true ones, so multi-predicate
// estimation errors translate directly into slower plans — exactly the
// failure mode AVI-style DBMS estimators exhibit on correlated conjunctions.
//
//   ./build/examples/optimizer_integration

#include <cstdio>
#include <memory>

#include "core/registry.h"
#include "data/datasets.h"
#include "workload/generator.h"

namespace {

using namespace arecel;

constexpr double kProbePenalty = 25.0;   // per-result-row index probe cost.
constexpr double kHashPlanFactor = 1.3;  // scan + hash build, in row units.

double PlanCost(bool nested_loop, double true_result_rows, double rows) {
  return nested_loop ? true_result_rows * kProbePenalty
                     : rows * kHashPlanFactor;
}

}  // namespace

int main() {
  DatasetSpec spec = CensusSpec();
  spec.rows = 20000;
  const Table table = GenerateDataset(spec, 1);
  const Workload train = GenerateWorkload(table, 1500, 7);
  const Workload test = GenerateWorkload(table, 300, 8);
  const double rows = static_cast<double>(table.num_rows());

  std::printf("join-strategy choice on %zu filter queries "
              "(true execution cost, normalized to the oracle's):\n",
              test.size());
  for (const char* name : {"postgres", "dbms-a", "lw-xgb", "naru"}) {
    std::unique_ptr<CardinalityEstimator> estimator = MakeEstimator(name);
    TrainContext context;
    context.training_workload = &train;
    estimator->Train(table, context);

    double total_cost = 0.0, oracle_cost = 0.0;
    int agree = 0;
    for (size_t i = 0; i < test.size(); ++i) {
      const Query& query = test.queries[i];
      const double true_rows = test.selectivities[i] * rows;
      const double estimated_rows =
          estimator->EstimateCardinality(query, table.num_rows());

      const bool chose_nested =
          estimated_rows * kProbePenalty < rows * kHashPlanFactor;
      const bool best_nested =
          true_rows * kProbePenalty < rows * kHashPlanFactor;
      total_cost += PlanCost(chose_nested, true_rows, rows);
      oracle_cost += PlanCost(best_nested, true_rows, rows);
      agree += chose_nested == best_nested ? 1 : 0;
    }
    std::printf("  %-9s relative plan cost = %.3fx, agreed with oracle on "
                "%d/%zu plans\n",
                name, total_cost / oracle_cost, agree, test.size());
  }
  std::printf("\nLower is better; 1.000x means every operator decision "
              "matched the oracle's. Estimators that overshoot correlated "
              "conjunctions fall back to hash plans for queries an index "
              "plan would finish far sooner (and vice versa).\n");
  return 0;
}
