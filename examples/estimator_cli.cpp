// Command-line explorer: train any registered estimator on any benchmark
// dataset and inspect its accuracy, cost, and rule behaviour — the kind of
// one-command entry point an evaluation repository needs.
//
// Usage:
//   estimator_cli [estimator] [dataset] [queries] [scale]
//     estimator: postgres|mysql|dbms-a|sampling|mhist|quicksel|bayes|
//                kde-fb|mscn|lw-xgb|lw-nn|naru|deepdb|dqm-d   (default naru)
//     dataset:   census|forest|power|dmv|synthetic            (default census)
//     queries:   test-query count                             (default 300)
//     scale:     dataset row-count multiplier                 (default 0.25)
//
// Example:
//   ./build/examples/estimator_cli deepdb power 500 0.5

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/evaluator.h"
#include "core/registry.h"
#include "core/rules.h"
#include "data/datasets.h"
#include "workload/generator.h"

namespace {

using namespace arecel;

Table LoadDataset(const std::string& name, double scale) {
  if (name == "synthetic")
    return GenerateSynthetic2D(static_cast<size_t>(200000 * scale), 1.0, 1.0,
                               1000, 42);
  DatasetSpec spec;
  if (name == "census") {
    spec = CensusSpec();
  } else if (name == "forest") {
    spec = ForestSpec();
  } else if (name == "power") {
    spec = PowerSpec();
  } else if (name == "dmv") {
    spec = DmvSpec();
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
    std::exit(2);
  }
  spec.rows = static_cast<size_t>(static_cast<double>(spec.rows) * scale);
  return GenerateDataset(spec, 2021);
}

bool IsKnownEstimator(const std::string& name) {
  for (const auto& known : AllEstimatorNames())
    if (known == name) return true;
  for (const auto& known : ExtendedEstimatorNames())
    if (known == name) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string estimator_name = argc > 1 ? argv[1] : "naru";
  const std::string dataset_name = argc > 2 ? argv[2] : "census";
  const size_t query_count =
      argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 300;
  const double scale = argc > 4 ? std::atof(argv[4]) : 0.25;

  if (!IsKnownEstimator(estimator_name)) {
    std::fprintf(stderr, "unknown estimator '%s'; known:",
                 estimator_name.c_str());
    for (const auto& name : AllEstimatorNames())
      std::fprintf(stderr, " %s", name.c_str());
    for (const auto& name : ExtendedEstimatorNames())
      std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  const Table table = LoadDataset(dataset_name, scale);
  std::printf("dataset %s: %zu rows, %zu cols, log10(domain)=%.1f\n",
              table.name().c_str(), table.num_rows(), table.num_cols(),
              table.Log10JointDomain());

  const Workload train = GenerateWorkload(table, query_count * 4, 1001);
  const Workload test = GenerateWorkload(table, query_count, 2002);

  auto estimator = MakeEstimator(estimator_name);
  const EstimatorReport report =
      EvaluateOnDataset(*estimator, table, train, test);
  std::printf("\n%s:\n", estimator->Name().c_str());
  std::printf("  train      %.2f s (model %.0f KB)\n", report.train_seconds,
              static_cast<double>(report.model_size_bytes) / 1024.0);
  std::printf("  inference  %.3f ms/query\n", report.avg_inference_ms);
  std::printf("  q-error    50th=%.2f 95th=%.2f 99th=%.2f max=%.0f\n",
              report.qerror.p50, report.qerror.p95, report.qerror.p99,
              report.qerror.max);

  std::printf("  rules      ");
  for (const RuleResult& rule : CheckLogicalRules(*estimator, table)) {
    std::printf("%s=%s ", rule.rule.c_str(),
                rule.satisfied() ? "ok" : "VIOLATED");
  }
  std::printf("\n");
  return 0;
}
