// "When do learned estimators go wrong?" example (paper §6): sweep the
// correlation knob of the 2-column synthetic generator, watch a learned
// model's tail error grow, then probe it against the five logical rules.
//
//   ./build/examples/when_models_go_wrong

#include <cstdio>

#include "core/registry.h"
#include "core/rules.h"
#include "data/datasets.h"
#include "util/stats.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;

  // 1. Correlation sweep (Figure 9a in miniature), with OOD queries to
  // probe the whole space.
  WorkloadOptions ood;
  ood.ood_probability = 1.0;
  std::printf("lw-xgb top-1%% q-error vs correlation (s=1.0, d=1000):\n");
  for (double c : {0.0, 0.5, 1.0}) {
    const Table table = GenerateSynthetic2D(40000, 1.0, c, 1000, 42);
    const Workload train = GenerateWorkload(table, 1200, 7, ood);
    const Workload test = GenerateWorkload(table, 400, 8, ood);
    auto estimator = MakeEstimator("lw-xgb");
    TrainContext context;
    context.training_workload = &train;
    estimator->Train(table, context);
    const auto top = TopFraction(
        EvaluateQErrors(*estimator, test, table.num_rows()), 0.01);
    std::printf("  c=%.1f  top-1%% median=%.1f max=%.1f\n", c,
                Percentile(top, 50), top.back());
  }

  // 2. Logical-rule probing (Table 6 in miniature).
  std::printf("\nlogical rules (50 probes each) on the c=1.0 table:\n");
  const Table table = GenerateSynthetic2D(40000, 1.0, 1.0, 1000, 42);
  const Workload train = GenerateWorkload(table, 1200, 7, ood);
  for (const char* name : {"lw-xgb", "deepdb"}) {
    auto estimator = MakeEstimator(name);
    TrainContext context;
    context.training_workload = &train;
    estimator->Train(table, context);
    std::printf("  %s:\n", name);
    for (const RuleResult& rule : CheckLogicalRules(*estimator, table)) {
      std::printf("    %-12s %s (%zu/%zu violations)\n", rule.rule.c_str(),
                  rule.satisfied() ? "satisfied" : "VIOLATED",
                  rule.violations, rule.trials);
    }
  }
  return 0;
}
