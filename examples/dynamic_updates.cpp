// Dynamic-environment example (paper §5): train two estimators, append 20%
// correlation-shifted data, and watch the stale-vs-updated trade-off as the
// update interval T varies.
//
//   ./build/examples/dynamic_updates

#include <cstdio>

#include "core/dynamic.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "util/stats.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;

  DatasetSpec spec = CensusSpec();
  spec.rows = 20000;
  const Table base = GenerateDataset(spec, 1);
  const Table updated = AppendCorrelatedUpdate(base, 0.20, 99);
  std::printf("base: %zu rows -> updated: %zu rows (appended rows maximize "
              "cross-column rank correlation)\n",
              base.num_rows(), updated.num_rows());

  const Workload train = GenerateWorkload(base, 1500, 7);
  const Workload test = GenerateWorkload(updated, 500, 8);

  for (const char* name : {"lw-xgb", "deepdb"}) {
    auto estimator = MakeEstimator(name);
    TrainContext context;
    context.training_workload = &train;
    estimator->Train(base, context);

    DynamicOptions options;
    options.update_query_count = 1000;
    const DynamicProfile profile = ProfileDynamicUpdate(
        *estimator, updated, base.num_rows(), test, options);
    std::printf("\n%s: update took %.2fs; stale p99=%.1f, updated p99=%.1f\n",
                name, profile.update_seconds,
                Percentile(profile.stale_errors, 99),
                Percentile(profile.updated_errors, 99));
    for (double t : {0.5, 2.0, 10.0, 60.0}) {
      std::printf("  T=%5.1fs -> dynamic p99 = %7.1f %s\n", t,
                  DynamicP99(profile, t),
                  FinishedInTime(profile, t) ? "" : "(update missed T)");
    }
  }
  return 0;
}
