#!/usr/bin/env bash
# Regenerates the golden q-error baselines in tests/golden/ after an
# *intended* accuracy change. Builds the update_golden tool and runs it with
# --update-golden against the source tree; review the JSON diff before
# committing.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build --target update_golden -j "${ARECEL_BUILD_JOBS:-$(nproc)}"
./build/tools/update_golden --update-golden "$@"
