#!/usr/bin/env bash
# Runs the ML-substrate test suites (matrix, dense layers/MLP, ResMADE,
# Transformer, the kernel differential suite, and the packed/quant
# inference-form suite) under ALL THREE kernel backends:
# ARECEL_ML_KERNEL=reference (the historical scalar loops), fast (SIMD,
# cache-blocked, fused — the default), and quant (int8 packed-B serving
# tier; identical to fast wherever no layer holds a pack). Any PR touching
# src/ml/ should pass this before relying on the full tier-1 gate; a test
# that passes under one backend and fails under another almost always means
# a hidden dependency on summation order (see the accumulation-order caveat
# in ml/kernels.h).
#
# On machines with AVX512-VNNI the quant sweep runs twice — once with the
# dpbusd accumulation and once with ARECEL_ML_VNNI=0 forcing the
# maddubs form — because the micro-dispatch between them is cached
# per-process and therefore cannot be swept from inside a test binary.
# The two runs must agree bit for bit (ml/kernels_avx512.cc).
#
# Extra args are forwarded to ctest, e.g.:
#   scripts/run_ml_backend_tests.sh --verbose
#   ARECEL_BUILD_DIR=build-native scripts/run_ml_backend_tests.sh
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${ARECEL_BUILD_DIR:-build}"
if [ ! -d "$build_dir" ]; then
  cmake --preset release
fi
cmake --build "$build_dir" -j "${ARECEL_BUILD_JOBS:-$(nproc)}"

suites='Matrix|DenseLayer|Mlp|SoftmaxRows|ResMade|Transformer|MlKernels|Packed|Quant'
for backend in reference fast quant; do
  echo "== ARECEL_ML_KERNEL=$backend =="
  ARECEL_ML_KERNEL=$backend ctest --test-dir "$build_dir" \
    --output-on-failure -R "$suites" "$@"
done
if grep -q avx512_vnni /proc/cpuinfo 2>/dev/null; then
  echo "== ARECEL_ML_KERNEL=quant ARECEL_ML_VNNI=0 (maddubs fallback) =="
  ARECEL_ML_KERNEL=quant ARECEL_ML_VNNI=0 ctest --test-dir "$build_dir" \
    --output-on-failure -R "$suites" "$@"
fi
echo "ML suites pass under all kernel backends."
