#!/usr/bin/env bash
# Runs the ML-substrate test suites (matrix, dense layers/MLP, ResMADE,
# Transformer, and the kernel differential suite) under BOTH kernel
# backends: ARECEL_ML_KERNEL=reference (the historical scalar loops) and
# ARECEL_ML_KERNEL=fast (SIMD, cache-blocked, fused — the default). Any PR
# touching src/ml/ should pass this before relying on the full tier-1 gate;
# a test that passes under one backend and fails under the other almost
# always means a hidden dependency on summation order (see the
# accumulation-order caveat in ml/kernels.h).
#
# Extra args are forwarded to ctest, e.g.:
#   scripts/run_ml_backend_tests.sh --verbose
#   ARECEL_BUILD_DIR=build-native scripts/run_ml_backend_tests.sh
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${ARECEL_BUILD_DIR:-build}"
if [ ! -d "$build_dir" ]; then
  cmake --preset release
fi
cmake --build "$build_dir" -j "${ARECEL_BUILD_JOBS:-$(nproc)}"

suites='Matrix|DenseLayer|Mlp|SoftmaxRows|ResMade|Transformer|MlKernels'
for backend in reference fast; do
  echo "== ARECEL_ML_KERNEL=$backend =="
  ARECEL_ML_KERNEL=$backend ctest --test-dir "$build_dir" \
    --output-on-failure -R "$suites" "$@"
done
echo "ML suites pass under both kernel backends."
