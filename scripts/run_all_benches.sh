#!/usr/bin/env bash
# Runs every bench binary and collects the output into bench_output.txt.
# Scale knobs: ARECEL_BENCH_SCALE (default 0.5), ARECEL_BENCH_QUERIES (500).
set -u
cd "$(dirname "$0")/.."
out=bench_output.txt
: > "$out"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "=== $b ===" | tee -a "$out"
  timeout "${ARECEL_BENCH_TIMEOUT:-1800}" "$b" 2>&1 | tee -a "$out"
done
echo "ALL BENCHES DONE" | tee -a "$out"
