#!/usr/bin/env bash
# Builds the asan-ubsan preset and runs the test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer.
#
# By default the `slow` label (full-registry training sweeps) is excluded —
# sanitized NN training is painfully slow; set ARECEL_SAN_ALL=1 to include
# everything. Extra args are forwarded to ctest, e.g.:
#   scripts/run_sanitized_tests.sh -R conformance
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${ARECEL_BUILD_JOBS:-$(nproc)}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0:abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

label_filter=(-LE slow)
if [ "${ARECEL_SAN_ALL:-0}" = "1" ]; then
  label_filter=()
fi
ctest --test-dir build-asan --output-on-failure "${label_filter[@]}" "$@"
