#!/usr/bin/env bash
# Builds a sanitizer preset and runs the test suite under it.
#
# ARECEL_SAN selects the sanitizer:
#   asan (default) — AddressSanitizer + UBSan over the whole suite.
#   tsan           — ThreadSanitizer, focused by default on the robustness
#                    suite (watchdog/guard threads) and the shared-scan
#                    engine (parallel block labeling); set ARECEL_SAN_ALL=1
#                    for all tests.
#
# By default the `slow` label (full-registry training sweeps and the
# watchdog timeout tests) is excluded — sanitized NN training is painfully
# slow; set ARECEL_SAN_ALL=1 to include everything. Extra args are forwarded
# to ctest, e.g.:
#   scripts/run_sanitized_tests.sh -R conformance
#   ARECEL_SAN=tsan scripts/run_sanitized_tests.sh
set -euo pipefail
cd "$(dirname "$0")/.."

san="${ARECEL_SAN:-asan}"
case "$san" in
  asan) preset=asan-ubsan; build_dir=build-asan ;;
  tsan) preset=tsan;       build_dir=build-tsan ;;
  *) echo "unknown ARECEL_SAN='$san' (want asan or tsan)" >&2; exit 2 ;;
esac

cmake --preset "$preset"
cmake --build --preset "$preset" -j "${ARECEL_BUILD_JOBS:-$(nproc)}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0:abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
# The guard deliberately abandons hung worker threads (leak-on-hang
# contract, src/robustness/guard.h); don't report those as errors.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 report_thread_leaks=0}"

filter=()
if [ "${ARECEL_SAN_ALL:-0}" != "1" ]; then
  if [ "$san" = "tsan" ]; then
    # The concurrent code paths are the robustness machinery (watchdog /
    # guard threads), the shared-scan engine (ParallelForChunked block
    # labeling with thread-local accumulators), the serving layer
    # (single-flight loads, sharded cache, batched dispatch, background
    # refresh), and the ML kernels (parallel-over-rows matmul dispatch,
    # concurrent inference over shared weights); sweeping sanitized NN
    # training under TSan buys nothing. Include the slow watchdog timeout
    # tests — they are the reason this preset exists.
    # Packed|Quant: the quant serving path's thread_local activation
    # scratch and parallel-over-rows int8 dispatch (ml/kernels.cc).
    # Join: the join executor's ParallelFor batch labeling (CountBatch /
    # Label share read-only synopses across worker threads).
    # Synopsis|Dict: the rich synopsis layer (dictionary code arrays,
    # per-block bitmaps) read concurrently by CountBatch workers, with
    # relaxed-atomic ScanStats merges.
    filter=(-R 'Robust|Guard|Fault|Journal|Cancel|Scan|Serve|Ml|Feedback|Store|Maint|Packed|Quant|Join|Synopsis|Dict')
  else
    filter=(-LE slow)
  fi
fi
ctest --test-dir "$build_dir" --output-on-failure "${filter[@]}" "$@"
