#include "data/datasets.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace arecel {
namespace {

TEST(DatasetSpecTest, ShapesMatchPaper) {
  const DatasetSpec census = CensusSpec();
  EXPECT_EQ(census.num_cols, 13);
  EXPECT_EQ(census.num_categorical, 8);
  const DatasetSpec forest = ForestSpec();
  EXPECT_EQ(forest.num_cols, 10);
  EXPECT_EQ(forest.num_categorical, 0);
  const DatasetSpec power = PowerSpec();
  EXPECT_EQ(power.num_cols, 7);
  const DatasetSpec dmv = DmvSpec();
  EXPECT_EQ(dmv.num_cols, 11);
  EXPECT_EQ(dmv.num_categorical, 10);
}

TEST(GenerateDatasetTest, RowAndColumnCounts) {
  DatasetSpec spec = CensusSpec();
  spec.rows = 3000;
  const Table t = GenerateDataset(spec, 1);
  EXPECT_EQ(t.num_rows(), 3000u);
  EXPECT_EQ(t.num_cols(), 13u);
}

TEST(GenerateDatasetTest, DomainSizesBounded) {
  DatasetSpec spec = PowerSpec();
  spec.rows = 50000;
  const Table t = GenerateDataset(spec, 2);
  for (int j = 0; j < spec.num_cols; ++j) {
    EXPECT_LE(t.column(static_cast<size_t>(j)).domain.size(),
              static_cast<size_t>(spec.domain_sizes[static_cast<size_t>(j)]));
    EXPECT_GE(t.column(static_cast<size_t>(j)).domain.size(), 2u);
  }
}

TEST(GenerateDatasetTest, DeterministicForSeed) {
  DatasetSpec spec = CensusSpec();
  spec.rows = 1000;
  const Table a = GenerateDataset(spec, 7);
  const Table b = GenerateDataset(spec, 7);
  for (size_t c = 0; c < a.num_cols(); ++c)
    EXPECT_EQ(a.column(c).values, b.column(c).values);
}

TEST(GenerateDatasetTest, CorrelatedColumnsHaveRankCorrelation) {
  DatasetSpec spec = ForestSpec();
  spec.rows = 20000;
  const Table t = GenerateDataset(spec, 3);
  // Columns 0 and 1 both copy the latent with prob 0.95/0.9; column
  // direction alternates, so the dependence is strongly *negative*.
  const double rho =
      SpearmanCorrelation(t.column(0).values, t.column(1).values);
  EXPECT_GT(std::fabs(rho), 0.5);
}

TEST(GenerateDatasetTest, SkewedColumnsAreSkewed) {
  DatasetSpec spec = CensusSpec();
  spec.rows = 20000;
  const Table t = GenerateDataset(spec, 4);
  // Column 9 has skew 1.5: its most frequent value should hold a large
  // share of the rows.
  const Column& col = t.column(9);
  std::map<double, int> counts;
  for (double v : col.values) ++counts[v];
  int max_count = 0;
  for (const auto& [v, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, static_cast<int>(t.num_rows() / 10));
}

TEST(Synthetic2DTest, ShapeAndDomains) {
  const Table t = GenerateSynthetic2D(5000, 1.0, 0.5, 100, 1);
  EXPECT_EQ(t.num_rows(), 5000u);
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_LE(t.column(0).domain.size(), 100u);
  EXPECT_LE(t.column(1).domain.size(), 100u);
}

TEST(Synthetic2DTest, FullCorrelationIsFunctionalDependency) {
  const Table t = GenerateSynthetic2D(5000, 0.5, 1.0, 50, 2);
  for (size_t r = 0; r < t.num_rows(); ++r)
    ASSERT_DOUBLE_EQ(t.column(0).values[r], t.column(1).values[r]);
}

TEST(Synthetic2DTest, ZeroCorrelationIsIndependent) {
  const Table t = GenerateSynthetic2D(20000, 0.0, 0.0, 50, 3);
  const double rho =
      PearsonCorrelation(t.column(0).values, t.column(1).values);
  EXPECT_LT(std::fabs(rho), 0.05);
}

TEST(Synthetic2DTest, SkewControlsConcentration) {
  const Table uniform = GenerateSynthetic2D(20000, 0.0, 0.0, 100, 4);
  const Table skewed = GenerateSynthetic2D(20000, 2.0, 0.0, 100, 4);
  EXPECT_GT(Mean(uniform.column(0).values), 40.0);
  EXPECT_LT(Mean(skewed.column(0).values), 15.0);
}

TEST(AppendCorrelatedUpdateTest, AddsRequestedFraction) {
  DatasetSpec spec = CensusSpec();
  spec.rows = 5000;
  const Table base = GenerateDataset(spec, 5);
  const Table updated = AppendCorrelatedUpdate(base, 0.2, 6);
  EXPECT_EQ(updated.num_rows(), 6000u);
  // Prefix is unchanged.
  for (size_t c = 0; c < base.num_cols(); ++c)
    for (size_t r = 0; r < 100; ++r)
      ASSERT_DOUBLE_EQ(updated.column(c).values[r], base.column(c).values[r]);
}

TEST(AppendCorrelatedUpdateTest, AppendedRowsShiftCorrelation) {
  DatasetSpec spec = CensusSpec();
  spec.rows = 10000;
  const Table base = GenerateDataset(spec, 7);
  const Table updated = AppendCorrelatedUpdate(base, 0.5, 8);
  // The appended block alone has much higher pairwise rank correlation
  // between two weakly correlated columns than the base data.
  std::vector<double> appended_a(
      updated.column(1).values.begin() + 10000,
      updated.column(1).values.end());
  std::vector<double> appended_b(
      updated.column(7).values.begin() + 10000,
      updated.column(7).values.end());
  const double base_rho =
      SpearmanCorrelation(base.column(1).values, base.column(7).values);
  const double appended_rho = SpearmanCorrelation(appended_a, appended_b);
  EXPECT_GT(std::fabs(appended_rho), std::fabs(base_rho) + 0.2);
}

TEST(BenchmarkDatasetsTest, ScalesRows) {
  const std::vector<Table> tables = BenchmarkDatasets(0.1, 1);
  ASSERT_EQ(tables.size(), 4u);
  EXPECT_EQ(tables[0].num_rows(), 4900u);
}

}  // namespace
}  // namespace arecel
