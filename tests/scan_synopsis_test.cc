// Differential tests for the rich synopsis layer (dictionaries, per-block
// presence bitmaps, mini-histograms): every pruning decision must preserve
// the bit-identical-counts contract against the naive reference executor,
// including the awkward corners — NaN rows (which no predicate matches),
// -0.0/+0.0 code collapse, block sizes that do not divide the row count,
// appends that introduce brand-new dictionary values (with a u8 -> u16 code
// width upgrade), and appends that push a column past the distinct budget
// (demotion to the mini-histogram layer).

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/table.h"
#include "scan/block_scan.h"
#include "scan/synopsis.h"
#include "util/random.h"
#include "workload/generator.h"
#include "workload/query.h"

namespace arecel {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// A categorical-heavy table: `cats` low-cardinality Zipf columns plus one
// continuous column, the dominant shape of the paper's Census/DMV-style
// workloads.
Table CategoricalZipfTable(size_t rows, size_t cats, size_t cardinality,
                           uint64_t seed) {
  Rng rng(seed);
  Table t("catzipf");
  for (size_t c = 0; c < cats; ++c) {
    std::vector<double> vals(rows);
    for (double& v : vals)
      v = static_cast<double>(rng.Zipf(cardinality, 1.1));
    t.AddColumn("cat" + std::to_string(c), std::move(vals), true);
  }
  std::vector<double> cont(rows);
  for (double& v : cont) v = rng.Gaussian() * 100.0;
  t.AddColumn("cont", std::move(cont), false);
  t.Finalize();
  return t;
}

// Mixed equality + range queries over every column.
std::vector<Query> MixedQueries(const Table& table, size_t count,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> queries(count);
  for (Query& q : queries) {
    const size_t preds = 1 + rng.UniformInt(uint64_t{2});
    for (size_t i = 0; i < preds; ++i) {
      const int col =
          static_cast<int>(rng.UniformInt(uint64_t{table.num_cols()}));
      const Column& column = table.column(static_cast<size_t>(col));
      const double a =
          column.domain[rng.UniformInt(uint64_t{column.domain.size()})];
      if (rng.Bernoulli(0.6)) {
        q.predicates.push_back({col, a, a});  // equality.
      } else {
        const double b =
            column.domain[rng.UniformInt(uint64_t{column.domain.size()})];
        q.predicates.push_back({col, std::min(a, b), std::max(a, b)});
      }
    }
  }
  return queries;
}

void ExpectBitIdentical(const Table& table, const std::vector<Query>& queries,
                        scan::ScanOptions options) {
  scan::BlockScanner scanner(table, options);
  const std::vector<size_t> batch = scanner.CountBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t naive = ExecuteCountNaive(table, queries[i]);
    EXPECT_EQ(scanner.Count(queries[i]), naive) << "query " << i;
    EXPECT_EQ(batch[i], naive) << "query " << i;
    EXPECT_EQ(scan::CountMatches(table, queries[i], &scanner), naive)
        << "query " << i;
    EXPECT_EQ(scan::CountMatches(table, queries[i]), naive) << "query " << i;
  }
}

TEST(ScanSynopsisTest, CategoricalEqualityGridDifferential) {
  for (uint64_t seed : {3u, 17u}) {
    const Table table = CategoricalZipfTable(3000, 3, 20, seed);
    const std::vector<Query> queries = MixedQueries(table, 120, seed + 1);
    // Block sizes that do not divide 3000, plus one bigger than the table.
    for (size_t block_size : {7u, 97u, 8192u}) {
      SCOPED_TRACE(testing::Message()
                   << "seed=" << seed << " block_size=" << block_size);
      scan::ScanOptions options;
      options.block_size = block_size;
      ExpectBitIdentical(table, queries, options);
    }
  }
}

TEST(ScanSynopsisTest, RichAndZoneOnlyAgree) {
  const Table table = CategoricalZipfTable(2000, 2, 12, 5);
  const std::vector<Query> queries = MixedQueries(table, 80, 6);
  scan::ScanOptions rich;
  rich.block_size = 128;
  scan::ScanOptions zone_only = rich;
  zone_only.rich_synopsis = false;
  scan::BlockScanner a(table, rich);
  scan::BlockScanner b(table, zone_only);
  EXPECT_TRUE(a.synopsis().rich());
  EXPECT_FALSE(b.synopsis().rich());
  EXPECT_FALSE(b.synopsis().HasDictionary(0));
  const std::vector<size_t> ca = a.CountBatch(queries);
  const std::vector<size_t> cb = b.CountBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) EXPECT_EQ(ca[i], cb[i]);
}

TEST(ScanSynopsisTest, NaNRowsNeverMatchAnyPredicate) {
  // NaN placed first in a block so a naive envelope build would poison the
  // min/max; also a fully-NaN block region at the tail.
  Table table("nan_tbl");
  table.AddColumn("a", {kNaN, 1, 2, kNaN, 3, 4, 5, 6, kNaN, kNaN}, false);
  table.AddColumn("b", {5, 5, kNaN, 1, 1, 2, 2, 9, 9, 9}, true);
  table.Finalize();
  std::vector<Query> queries(5);
  queries[0].predicates.push_back({0, -kInf, kInf});  // all non-NaN rows.
  queries[1].predicates.push_back({0, 1, 3});
  queries[2].predicates.push_back({0, kNaN, kNaN});  // unsatisfiable.
  queries[3].predicates.push_back({1, 5, 5});
  queries[4].predicates.push_back({0, -kInf, kInf});
  queries[4].predicates.push_back({1, -kInf, kInf});
  EXPECT_EQ(ExecuteCountNaive(table, queries[0]), 6u);
  for (size_t block_size : {3u, 4u, 16u}) {
    SCOPED_TRACE(testing::Message() << "block_size=" << block_size);
    scan::ScanOptions options;
    options.block_size = block_size;
    ExpectBitIdentical(table, queries, options);
  }
}

TEST(ScanSynopsisTest, NegativeZeroCollapsesWithPositiveZero) {
  Table table("zeros");
  table.AddColumn("a", {-0.0, 0.0, -0.0, 1.0, -1.0, 0.0}, false);
  table.Finalize();
  scan::BlockScanner scanner(table, {2});
  // -0.0 == +0.0, so the dictionary holds one zero entry.
  ASSERT_TRUE(scanner.synopsis().HasDictionary(0));
  EXPECT_EQ(scanner.synopsis().DictionarySize(0), 3u);
  std::vector<Query> queries(3);
  queries[0].predicates.push_back({0, 0.0, 0.0});
  queries[1].predicates.push_back({0, -0.0, 0.0});
  queries[2].predicates.push_back({0, -0.0, -0.0});
  for (const Query& q : queries) {
    EXPECT_EQ(scanner.Count(q), 4u);
    EXPECT_EQ(scanner.Count(q), ExecuteCountNaive(table, q));
  }
}

TEST(ScanSynopsisTest, AppendIntroducingNewDictionaryValues) {
  // Base table's categorical columns draw from [0, 10); the appended rows
  // draw from [5, 15) — roughly half the appended values are brand-new
  // dictionary entries that force a merge + code remap.
  Rng rng(41);
  Table table("grow");
  std::vector<double> vals(900);
  for (double& v : vals) v = static_cast<double>(rng.UniformInt(uint64_t{10}));
  table.AddColumn("c", std::move(vals), true);
  table.Finalize();

  scan::BlockScanner scanner(table, {64});  // 900 % 64 != 0.
  ASSERT_TRUE(scanner.synopsis().HasDictionary(0));
  ASSERT_EQ(scanner.synopsis().DictionarySize(0), 10u);

  Table extra("grow");
  std::vector<double> more(300);
  for (double& v : more)
    v = static_cast<double>(5 + rng.UniformInt(uint64_t{10}));
  extra.AddColumn("c", std::move(more), true);
  table.AppendRows(extra);
  table.Finalize();
  scanner.Refresh();

  EXPECT_EQ(scanner.synopsis().covered_rows(), table.num_rows());
  ASSERT_TRUE(scanner.synopsis().HasDictionary(0));
  EXPECT_EQ(scanner.synopsis().DictionarySize(0), 15u);
  for (int v = 0; v < 15; ++v) {
    Query q;
    q.predicates.push_back({0, static_cast<double>(v), static_cast<double>(v)});
    EXPECT_EQ(scanner.Count(q), ExecuteCountNaive(table, q)) << "v=" << v;
  }
}

TEST(ScanSynopsisTest, AppendUpgradesCodeWidthFromU8ToU16) {
  // 200 distinct values fit u8 codes; appending values up to 400 distinct
  // crosses the 255-code boundary and must widen the code array.
  std::vector<double> vals(400);
  for (size_t i = 0; i < vals.size(); ++i)
    vals[i] = static_cast<double>(i % 200);
  Table table("widen");
  table.AddColumn("c", std::move(vals), true);
  table.Finalize();
  scan::BlockScanner scanner(table, {32});
  ASSERT_TRUE(scanner.synopsis().HasDictionary(0));
  EXPECT_NE(scanner.synopsis().Codes8(0), nullptr);
  EXPECT_EQ(scanner.synopsis().Codes16(0), nullptr);

  std::vector<double> more(400);
  for (size_t i = 0; i < more.size(); ++i)
    more[i] = static_cast<double>(i % 400);
  Table extra("widen");
  extra.AddColumn("c", std::move(more), true);
  table.AppendRows(extra);
  table.Finalize();
  scanner.Refresh();

  ASSERT_TRUE(scanner.synopsis().HasDictionary(0));
  EXPECT_EQ(scanner.synopsis().DictionarySize(0), 400u);
  EXPECT_EQ(scanner.synopsis().Codes8(0), nullptr);
  EXPECT_NE(scanner.synopsis().Codes16(0), nullptr);
  Rng rng(43);
  for (int t = 0; t < 50; ++t) {
    Query q;
    const double v = static_cast<double>(rng.UniformInt(uint64_t{400}));
    q.predicates.push_back({0, v, v});
    EXPECT_EQ(scanner.Count(q), ExecuteCountNaive(table, q));
  }
}

TEST(ScanSynopsisTest, DictDemotionWhenAppendCrossesBudget) {
  // A tight 16-code budget: the base column fits, the append pushes the
  // distinct count past it, and the column must demote to the
  // mini-histogram layer without ever miscounting.
  std::vector<double> vals(500);
  for (size_t i = 0; i < vals.size(); ++i)
    vals[i] = static_cast<double>(i % 12);
  Table table("demote");
  table.AddColumn("c", std::move(vals), true);
  table.Finalize();
  scan::ScanOptions options;
  options.block_size = 48;
  options.max_dict_codes = 16;
  scan::BlockScanner scanner(table, options);
  ASSERT_TRUE(scanner.synopsis().HasDictionary(0));

  std::vector<double> more(500);
  for (size_t i = 0; i < more.size(); ++i)
    more[i] = static_cast<double>(i % 40);
  Table extra("demote");
  extra.AddColumn("c", std::move(more), true);
  table.AppendRows(extra);
  table.Finalize();
  scanner.Refresh();

  EXPECT_FALSE(scanner.synopsis().HasDictionary(0));
  EXPECT_TRUE(scanner.synopsis().HasHistogram(0));
  const std::vector<Query> queries = MixedQueries(table, 60, 44);
  for (const Query& q : queries)
    EXPECT_EQ(scanner.Count(q), ExecuteCountNaive(table, q));
}

TEST(ScanDictPruningTest, BitmapSkipsBlocksZoneMapsCannot) {
  // Every block contains both 0 and 99, so the [min, max] envelope of every
  // block covers any equality predicate — zone maps prune nothing. The value
  // 50 exists only in the final block; only presence bitmaps can skip the
  // rest.
  std::vector<double> vals;
  for (size_t b = 0; b < 16; ++b) {
    for (size_t i = 0; i < 32; ++i)
      vals.push_back(i % 2 == 0 ? 0.0 : 99.0);
  }
  vals[vals.size() - 1] = 50.0;
  Table table("bitmap");
  table.AddColumn("c", std::move(vals), true);
  table.Finalize();
  scan::BlockScanner scanner(table, {32});
  Query q;
  q.predicates.push_back({0, 50, 50});
  EXPECT_EQ(scanner.Count(q), 1u);
  const scan::ScanStats stats = scanner.stats();
  EXPECT_EQ(stats.zone_skips, 0u);
  EXPECT_EQ(stats.bitmap_skips, 15u);
  EXPECT_EQ(stats.scanned_blocks, 1u);
}

TEST(ScanDictPruningTest, HistogramSkipsOnNonDictionaryColumns) {
  // max_dict_codes=4 keeps the column out of the dictionary layer; each
  // block's values cluster at the envelope's edges, leaving the middle
  // buckets empty, so a mid-range predicate is skipped by the histogram.
  std::vector<double> vals;
  for (size_t b = 0; b < 8; ++b) {
    for (size_t i = 0; i < 64; ++i) {
      const double base = static_cast<double>(b * 1000);
      vals.push_back(i % 2 == 0 ? base + static_cast<double>(i)
                                : base + 900.0 + static_cast<double>(i));
    }
  }
  Table table("hist");
  table.AddColumn("c", std::move(vals), false);
  table.Finalize();
  scan::ScanOptions options;
  options.block_size = 64;
  options.max_dict_codes = 4;
  scan::BlockScanner scanner(table, options);
  ASSERT_FALSE(scanner.synopsis().HasDictionary(0));
  ASSERT_TRUE(scanner.synopsis().HasHistogram(0));
  Query q;
  q.predicates.push_back({0, 400, 500});  // inside block 0's envelope gap.
  EXPECT_EQ(scanner.Count(q), ExecuteCountNaive(table, q));
  EXPECT_EQ(scanner.Count(q), 0u);
  EXPECT_GT(scanner.stats().histogram_skips, 0u);
}

TEST(ScanDictPruningTest, EstimateFractionExactOnDictionaryColumns) {
  const Table table = CategoricalZipfTable(1500, 1, 8, 9);
  const scan::TableSynopsis synopsis(table, scan::SynopsisOptions{});
  ASSERT_TRUE(synopsis.HasDictionary(0));
  for (double v : table.column(0).domain) {
    Query q;
    q.predicates.push_back({0, v, v});
    const double exact =
        static_cast<double>(ExecuteCountNaive(table, q)) /
        static_cast<double>(table.num_rows());
    EXPECT_DOUBLE_EQ(synopsis.EstimateFraction(0, v, v), exact);
  }
}

TEST(ScanSynopsisTest, SizeBytesObservable) {
  const Table table = CategoricalZipfTable(4000, 2, 30, 13);
  scan::ScanOptions rich;
  scan::ScanOptions zone_only;
  zone_only.rich_synopsis = false;
  scan::BlockScanner a(table, rich);
  scan::BlockScanner b(table, zone_only);
  EXPECT_GT(a.synopsis().SizeBytes(), 0u);
  // Dictionaries + code arrays + bitmaps cost real memory over bare
  // zone maps — that is the point of surfacing SizeBytes.
  EXPECT_GT(a.synopsis().SizeBytes(), b.synopsis().SizeBytes());
}

TEST(ScanSynopsisTest, ConstantBlocksCountWholesale) {
  // A constant column: every block fully matches the equality predicate and
  // must be counted without touching values.
  std::vector<double> vals(256, 7.0);
  Table table("const");
  table.AddColumn("c", std::move(vals), true);
  table.Finalize();
  scan::BlockScanner scanner(table, {32});
  Query q;
  q.predicates.push_back({0, 7, 7});
  EXPECT_EQ(scanner.Count(q), 256u);
  const scan::ScanStats stats = scanner.stats();
  EXPECT_EQ(stats.full_blocks, 8u);
  EXPECT_EQ(stats.scanned_blocks, 0u);
}

}  // namespace
}  // namespace arecel
