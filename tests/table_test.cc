#include "data/table.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "util/stats.h"

namespace arecel {
namespace {

Table MakeSmallTable() {
  Table t("t");
  t.AddColumn("a", {3, 1, 2, 3, 1}, false);
  t.AddColumn("b", {0, 1, 0, 1, 0}, true);
  t.Finalize();
  return t;
}

TEST(TableTest, BasicShape) {
  const Table t = MakeSmallTable();
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.name(), "t");
}

TEST(TableTest, DomainSortedDistinct) {
  const Table t = MakeSmallTable();
  const Column& a = t.column(0);
  ASSERT_EQ(a.domain.size(), 3u);
  EXPECT_DOUBLE_EQ(a.domain[0], 1.0);
  EXPECT_DOUBLE_EQ(a.domain[1], 2.0);
  EXPECT_DOUBLE_EQ(a.domain[2], 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(TableTest, CodesMatchDomainIndices) {
  const Table t = MakeSmallTable();
  const Column& a = t.column(0);
  for (size_t r = 0; r < t.num_rows(); ++r)
    EXPECT_DOUBLE_EQ(a.domain[static_cast<size_t>(a.codes[r])], a.values[r]);
}

TEST(TableTest, BoundCodes) {
  const Table t = MakeSmallTable();
  const Column& a = t.column(0);
  EXPECT_EQ(a.LowerBoundCode(1.5), 1);
  EXPECT_EQ(a.LowerBoundCode(2.0), 1);
  EXPECT_EQ(a.UpperBoundCode(2.5), 1);
  EXPECT_EQ(a.UpperBoundCode(0.5), -1);
  EXPECT_EQ(a.LowerBoundCode(5.0), 3);  // == domain size.
}

TEST(TableTest, HeadCopiesPrefix) {
  const Table t = MakeSmallTable();
  const Table h = t.Head(3);
  EXPECT_EQ(h.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(h.column(0).values[2], 2.0);
}

TEST(TableTest, SampleRowsWithoutReplacement) {
  const Table t = MakeSmallTable();
  const Table s = t.SampleRows(5, 1);
  EXPECT_EQ(s.num_rows(), 5u);
  // All original values present exactly once (full sample).
  std::vector<double> vals = s.column(0).values;
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals, (std::vector<double>{1, 1, 2, 3, 3}));
}

TEST(TableTest, AppendRowsAndRefinalize) {
  Table t = MakeSmallTable();
  const Table other = MakeSmallTable();
  t.AppendRows(other);
  t.Finalize();
  EXPECT_EQ(t.num_rows(), 10u);
  EXPECT_EQ(t.column(0).codes.size(), 10u);
}

TEST(TableTest, SortedColumnsCopyMaximizesSpearman) {
  DatasetSpec spec = CensusSpec();
  spec.rows = 2000;
  const Table t = GenerateDataset(spec, 3);
  const Table sorted = t.SortedColumnsCopy();
  // Sorted columns are comonotone; rank correlation is near-maximal (ties
  // on skewed categorical columns keep it slightly below 1).
  const double rho = SpearmanCorrelation(sorted.column(8).values,
                                         sorted.column(9).values);
  EXPECT_GT(rho, 0.9);
  EXPECT_GT(SpearmanCorrelation(sorted.column(0).values,
                                sorted.column(5).values),
            0.7);
}

TEST(TableTest, Log10JointDomain) {
  const Table t = MakeSmallTable();
  EXPECT_NEAR(t.Log10JointDomain(), std::log10(3.0) + std::log10(2.0), 1e-12);
}

TEST(TableTest, DataSizeBytes) {
  const Table t = MakeSmallTable();
  EXPECT_EQ(t.DataSizeBytes(), 5u * 2u * sizeof(double));
}

}  // namespace
}  // namespace arecel
