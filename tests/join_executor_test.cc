// The join ground-truth gate (DESIGN.md §13): the hash-join executor must
// be bit-identical to the row-at-a-time nested-loop oracle — the two share
// only the star decomposition, so any disagreement localizes a bug in the
// zone-map cascade, the selection vectors, or the key hash. The suite
// drives both through handmade adversarial fixtures (empty dimensions,
// duplicate-key fan-out, block-pruning predicates, -0.0 keys) and a
// randomized differential sweep over generated star schemas at
// non-dividing block sizes.

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "data/schema.h"
#include "join/join_executor.h"
#include "workload/join_generator.h"

namespace arecel {
namespace {

using join::ExecuteJoinCount;
using join::ExecuteJoinCountNaive;
using join::ExecuteJoinSelectivity;
using join::JoinExecOptions;
using join::JoinExecutor;

Table MakeTable(const std::string& name,
                std::vector<std::pair<std::string, std::vector<double>>> cols) {
  Table table(name);
  for (auto& [col_name, values] : cols)
    table.AddColumn(col_name, std::move(values), /*categorical=*/false);
  table.Finalize();
  return table;
}

JoinQuery StarQuery(std::vector<TableSlice> tables,
                    std::vector<JoinEdge> joins) {
  JoinQuery query;
  query.tables = std::move(tables);
  query.joins = std::move(joins);
  return query;
}

// fact(fk, payload) -> dim(pk, attr): the minimal star used by the
// handmade known-answer cases.
Schema TinyStar(std::vector<double> fact_fk, std::vector<double> dim_pk,
                std::vector<double> dim_attr) {
  std::vector<double> fact_payload(fact_fk.size());
  for (size_t i = 0; i < fact_payload.size(); ++i)
    fact_payload[i] = static_cast<double>(i);
  Schema schema;
  schema.AddTable(MakeTable("fact", {{"fk", std::move(fact_fk)},
                                     {"payload", std::move(fact_payload)}}));
  schema.AddTable(
      MakeTable("dim0", {{"pk", std::move(dim_pk)},
                         {"attr", std::move(dim_attr)}}));
  return schema;
}

JoinEdge FactDimEdge() { return {"fact", 0, "dim0", 0}; }

// ---------------------------------------------------------------------------
// Handmade known-answer and adversarial cases.

TEST(JoinExecutorTest, KnownAnswerWithAndWithoutPredicates) {
  const Schema schema =
      TinyStar({1, 1, 2, 3}, {1, 2, 3, 4}, {10, 20, 30, 40});

  // No predicates: every fact row finds its dimension row once.
  JoinQuery all = StarQuery({{"fact", {}}, {"dim0", {}}}, {FactDimEdge()});
  EXPECT_EQ(ExecuteJoinCount(schema, all), 4u);
  EXPECT_EQ(ExecuteJoinCountNaive(schema, all), 4u);
  EXPECT_DOUBLE_EQ(ExecuteJoinSelectivity(schema, all), 4.0 / (4.0 * 4.0));

  // attr in [10, 20] keeps dim pks {1, 2}; fact rows with fk 1, 1, 2 join.
  JoinQuery banded = StarQuery(
      {{"fact", {}}, {"dim0", {{1, 10.0, 20.0}}}}, {FactDimEdge()});
  EXPECT_EQ(ExecuteJoinCount(schema, banded), 3u);
  EXPECT_EQ(ExecuteJoinCountNaive(schema, banded), 3u);
}

TEST(JoinExecutorTest, DuplicateBuildKeysMultiplyFanOut) {
  // dim holds key 1 twice: every fact row with fk 1 matches both copies.
  const Schema schema = TinyStar({1, 1, 1, 2}, {1, 1, 2}, {10, 20, 30});
  const JoinQuery all =
      StarQuery({{"fact", {}}, {"dim0", {}}}, {FactDimEdge()});
  EXPECT_EQ(ExecuteJoinCount(schema, all), 3u * 2u + 1u);
  EXPECT_EQ(ExecuteJoinCountNaive(schema, all), 7u);
}

TEST(JoinExecutorTest, AllRowsMatchFanOut) {
  // Every fact row carries the same key and the dimension is all
  // duplicates of it: the count is the full Cartesian product, the worst
  // case for any accidental 0/1-multiplicity assumption.
  const Schema schema = TinyStar({5, 5, 5}, {5, 5, 5, 5}, {1, 2, 3, 4});
  const JoinQuery all =
      StarQuery({{"fact", {}}, {"dim0", {}}}, {FactDimEdge()});
  EXPECT_EQ(ExecuteJoinCount(schema, all), 12u);
  EXPECT_EQ(ExecuteJoinCountNaive(schema, all), 12u);
  EXPECT_DOUBLE_EQ(ExecuteJoinSelectivity(schema, all), 1.0);
}

TEST(JoinExecutorTest, EmptyDimensionYieldsZero) {
  Schema schema;
  schema.AddTable(MakeTable("fact", {{"fk", {1, 2, 3}}}));
  // Finalize() rejects empty columns, so the zero-row dimension is built
  // raw: empty values/domain/codes is already its consistent state, and the
  // executor must bail out before ever touching the (absent) domain.
  Table empty_dim("dim0");
  empty_dim.AddColumn("pk", {}, /*categorical=*/false);
  schema.AddTable(std::move(empty_dim));
  const JoinQuery query =
      StarQuery({{"fact", {}}, {"dim0", {}}}, {FactDimEdge()});
  EXPECT_EQ(ExecuteJoinCount(schema, query), 0u);
  EXPECT_EQ(ExecuteJoinCountNaive(schema, query), 0u);
  EXPECT_DOUBLE_EQ(ExecuteJoinSelectivity(schema, query), 0.0);
}

TEST(JoinExecutorTest, UnsatisfiableAndBlockPruningPredicatesYieldZero) {
  const Schema schema =
      TinyStar({1, 2, 3, 4}, {1, 2, 3, 4}, {10, 20, 30, 40});
  // lo > hi: unsatisfiable by construction.
  const JoinQuery empty_interval = StarQuery(
      {{"fact", {{1, 5.0, 2.0}}}, {"dim0", {}}}, {FactDimEdge()});
  EXPECT_FALSE(empty_interval.IsSatisfiable());
  EXPECT_EQ(ExecuteJoinCount(schema, empty_interval), 0u);
  EXPECT_EQ(ExecuteJoinCountNaive(schema, empty_interval), 0u);
  // Satisfiable but outside every zone-map envelope: every block prunes.
  const JoinQuery pruned = StarQuery(
      {{"fact", {}}, {"dim0", {{1, 100.0, 200.0}}}}, {FactDimEdge()});
  EXPECT_TRUE(pruned.IsSatisfiable());
  EXPECT_EQ(ExecuteJoinCount(schema, pruned), 0u);
  EXPECT_EQ(ExecuteJoinCountNaive(schema, pruned), 0u);
}

TEST(JoinExecutorTest, NegativeZeroKeysJoinPositiveZero) {
  // IEEE -0.0 == +0.0: the hash path must collapse the two bit patterns the
  // way the naive oracle's operator== does.
  const Schema schema = TinyStar({-0.0, 1.0}, {0.0, 1.0}, {10, 20});
  const JoinQuery all =
      StarQuery({{"fact", {}}, {"dim0", {}}}, {FactDimEdge()});
  EXPECT_EQ(ExecuteJoinCount(schema, all), 2u);
  EXPECT_EQ(ExecuteJoinCountNaive(schema, all), 2u);
}

TEST(JoinExecutorTest, SingleTableQueryMatchesNaive) {
  const Schema schema =
      TinyStar({1, 2, 3, 4}, {1, 2, 3, 4}, {10, 20, 30, 40});
  JoinQuery single;
  single.tables.push_back({"fact", {{0, 2.0, 3.0}}});
  EXPECT_EQ(ExecuteJoinCount(schema, single), 2u);
  EXPECT_EQ(ExecuteJoinCountNaive(schema, single), 2u);
  EXPECT_DOUBLE_EQ(ExecuteJoinSelectivity(schema, single), 0.5);
}

// ---------------------------------------------------------------------------
// Randomized differential sweep: hash executor vs nested-loop oracle,
// bit-identical counts across generated workloads and block sizes that do
// not divide the table sizes.

TEST(JoinDifferentialTest, HashMatchesNaiveAcrossSchemasAndBlockSizes) {
  StarSchemaOptions small;
  small.fact_rows = 500;
  small.num_dimensions = 2;
  small.dim_rows = 16;
  StarSchemaOptions skewed;
  skewed.fact_rows = 300;
  skewed.num_dimensions = 3;
  skewed.dim_rows = 9;  // smaller than every tested block size.
  skewed.fk_skew = 1.5;
  skewed.correlation = 1.0;

  size_t nonzero = 0;
  for (const StarSchemaOptions& options : {small, skewed}) {
    const Schema schema = GenerateStarSchema(options, /*seed=*/77);
    std::string detail;
    ASSERT_TRUE(schema.CheckIntegrity(&detail)) << detail;
    const std::vector<JoinQuery> queries =
        GenerateJoinQueries(schema, /*count=*/40, /*seed=*/78);
    // Block sizes 7 and 100 do not divide 500, 300, 16, or 9, so partial
    // trailing blocks and sub-block tables are both exercised.
    for (const size_t block_size : {size_t{7}, size_t{100},
                                    scan::kDefaultBlockSize}) {
      const JoinExecutor executor(schema, JoinExecOptions{block_size});
      for (const JoinQuery& query : queries) {
        const size_t naive = ExecuteJoinCountNaive(schema, query);
        ASSERT_EQ(executor.Count(query), naive)
            << "block_size=" << block_size << " query=" << query.ToString();
        if (naive > 0) ++nonzero;
        // The single-table path must agree with the oracle too.
        JoinQuery center_only;
        center_only.tables.push_back(*query.FindTable("fact"));
        ASSERT_EQ(executor.Count(center_only),
                  ExecuteJoinCountNaive(schema, center_only))
            << "block_size=" << block_size;
      }
    }
  }
  // The sweep must not have degenerated into all-empty results.
  EXPECT_GT(nonzero, 0u);
}

TEST(JoinDifferentialTest, BatchLabelsMatchScalarSelectivities) {
  StarSchemaOptions options;
  options.fact_rows = 400;
  options.num_dimensions = 2;
  options.dim_rows = 16;
  const Schema schema = GenerateStarSchema(options, /*seed=*/5);
  const std::vector<JoinQuery> queries =
      GenerateJoinQueries(schema, /*count=*/30, /*seed=*/6);
  const JoinExecutor executor(schema);
  const std::vector<double> labels = executor.Label(queries);
  ASSERT_EQ(labels.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(labels[i], executor.Selectivity(queries[i])) << i;
    EXPECT_GE(labels[i], 0.0);
    EXPECT_LE(labels[i], 1.0);
  }
}

// ---------------------------------------------------------------------------
// Star schema generator contract.

TEST(StarSchemaTest, GeneratorIsDeterministicAndIntegral) {
  StarSchemaOptions options;
  options.fact_rows = 600;
  options.num_dimensions = 3;
  options.dim_rows = 32;
  const Schema a = GenerateStarSchema(options, /*seed=*/11);
  const Schema b = GenerateStarSchema(options, /*seed=*/11);
  ASSERT_EQ(a.num_tables(), 4u);
  ASSERT_EQ(a.foreign_keys().size(), 3u);
  std::string detail;
  EXPECT_TRUE(a.CheckIntegrity(&detail)) << detail;
  for (size_t t = 0; t < a.num_tables(); ++t) {
    ASSERT_EQ(a.tables()[t].num_cols(), b.tables()[t].num_cols());
    for (size_t c = 0; c < a.tables()[t].num_cols(); ++c)
      EXPECT_EQ(a.tables()[t].column(c).values, b.tables()[t].column(c).values)
          << a.tables()[t].name() << "." << c;
  }
  // Every FK edge is discoverable from both directions, round-trips
  // through EdgeIndex, and marks its endpoints as key columns.
  for (const ForeignKey& fk : a.foreign_keys()) {
    EXPECT_NE(a.FindEdge(fk.table, fk.ref_table), nullptr);
    EXPECT_NE(a.FindEdge(fk.ref_table, fk.table), nullptr);
    EXPECT_GE(a.EdgeIndex(fk), 0);
    EXPECT_TRUE(a.IsKeyColumn(fk.table, fk.column));
    EXPECT_TRUE(a.IsKeyColumn(fk.ref_table, fk.ref_column));
  }
}

// ---------------------------------------------------------------------------
// Join workload generator contract.

TEST(JoinWorkloadTest, GeneratedQueriesAreWellFormedStarQueries) {
  StarSchemaOptions schema_options;
  schema_options.fact_rows = 500;
  schema_options.num_dimensions = 3;
  schema_options.dim_rows = 16;
  const Schema schema = GenerateStarSchema(schema_options, /*seed=*/21);
  const std::vector<JoinQuery> queries =
      GenerateJoinQueries(schema, /*count=*/60, /*seed=*/22);
  ASSERT_EQ(queries.size(), 60u);
  for (const JoinQuery& query : queries) {
    // Center present, tables distinct, star shape (n-1 edges).
    EXPECT_NE(query.FindTable("fact"), nullptr) << query.ToString();
    std::set<std::string> names;
    for (const TableSlice& slice : query.tables) {
      EXPECT_TRUE(names.insert(slice.table).second) << query.ToString();
      // Predicates only on payload columns, never on join keys.
      for (const Predicate& p : slice.predicates) {
        EXPECT_FALSE(schema.IsKeyColumn(slice.table, p.column))
            << query.ToString();
        EXPECT_LE(p.lo, p.hi);
      }
    }
    EXPECT_GE(query.num_tables(), 2u);
    EXPECT_EQ(query.joins.size(), query.num_tables() - 1);
    // Every edge is a schema FK edge touching the center.
    for (const JoinEdge& e : query.joins) {
      EXPECT_TRUE(e.left_table == "fact" || e.right_table == "fact");
      EXPECT_NE(schema.FindEdge(e.left_table, e.right_table), nullptr);
    }
    // At least one predicate somewhere (forced onto the center if the
    // draw came up empty).
    size_t predicates = 0;
    for (const TableSlice& slice : query.tables)
      predicates += slice.predicates.size();
    EXPECT_GE(predicates, 1u) << query.ToString();
  }
  // Determinism: the same seed reproduces the same workload.
  const std::vector<JoinQuery> again =
      GenerateJoinQueries(schema, /*count=*/60, /*seed=*/22);
  ASSERT_EQ(again.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i)
    EXPECT_EQ(queries[i].ToString(), again[i].ToString());
}

TEST(JoinWorkloadTest, WorkloadLabelsMatchExecutor) {
  StarSchemaOptions schema_options;
  schema_options.fact_rows = 400;
  schema_options.num_dimensions = 2;
  schema_options.dim_rows = 16;
  const Schema schema = GenerateStarSchema(schema_options, /*seed=*/31);
  const JoinWorkload workload =
      GenerateJoinWorkload(schema, /*count=*/25, /*seed=*/32);
  ASSERT_EQ(workload.size(), 25u);
  const JoinExecutor executor(schema);
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(workload.selectivities[i],
              executor.Selectivity(workload.queries[i]))
        << i;
    EXPECT_EQ(workload.Cardinality(schema, i),
              workload.selectivities[i] *
                  JoinExecutor::RowsProduct(schema, workload.queries[i]))
        << i;
  }
}

}  // namespace
}  // namespace arecel
