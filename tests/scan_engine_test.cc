// Randomized differential testing of the vectorized block-scan engine
// (src/scan/) against the naive reference executor: every count must be
// BIT-IDENTICAL (exact integers, not approximately equal), across seeded
// tables and workloads, degenerate queries (no predicates, unsatisfiable
// intervals, open ranges), appended blocks after an update step, and
// block-boundary shapes (rows not a multiple of the block size).

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "scan/block_scan.h"
#include "scan/synopsis.h"
#include "util/random.h"
#include "workload/generator.h"
#include "workload/query.h"

namespace arecel {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Table SmallTable() {
  Table t("scan_tbl");
  t.AddColumn("a", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, false);
  t.AddColumn("b", {5, 5, 5, 1, 1, 2, 2, 9, 9, 9}, true);
  t.Finalize();
  return t;
}

// Asserts every executor agrees with the naive reference on `queries`,
// exercising single-query, batch, and one-shot paths under `block_size`.
void ExpectDifferentialMatch(const Table& table,
                             const std::vector<Query>& queries,
                             size_t block_size) {
  scan::BlockScanner scanner(table, {block_size});
  const std::vector<size_t> batch = scanner.CountBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t naive = ExecuteCountNaive(table, queries[i]);
    EXPECT_EQ(scanner.Count(queries[i]), naive) << "query " << i;
    EXPECT_EQ(batch[i], naive) << "query " << i;
    EXPECT_EQ(ExecuteCount(table, queries[i]), naive) << "query " << i;
  }
  const std::vector<double> labels = LabelQueries(table, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    const double naive_sel =
        static_cast<double>(ExecuteCountNaive(table, queries[i])) /
        static_cast<double>(table.num_rows());
    EXPECT_DOUBLE_EQ(labels[i], naive_sel) << "query " << i;
  }
}

TEST(ScanEngineTest, RandomizedDifferentialOverSeededWorkloads) {
  for (uint64_t seed : {7u, 23u, 91u}) {
    const Table table = GenerateDataset(
        [] {
          DatasetSpec spec = CensusSpec();
          spec.rows = 3000;
          return spec;
        }(),
        seed);
    const std::vector<Query> queries =
        GenerateQueries(table, 150, seed + 1);
    // Block sizes straddling the row count: tiny (forces many boundary
    // blocks), one that does not divide 3000, and one bigger than the
    // table (single block).
    for (size_t block_size : {7u, 256u, 8192u}) {
      SCOPED_TRACE(testing::Message()
                   << "seed=" << seed << " block_size=" << block_size);
      ExpectDifferentialMatch(table, queries, block_size);
    }
  }
}

TEST(ScanEngineTest, HighlyCorrelatedSkewedTable) {
  const Table table = GenerateSynthetic2D(2500, 1.2, 0.9, 40, 11);
  const std::vector<Query> queries = GenerateQueries(table, 120, 12);
  ExpectDifferentialMatch(table, queries, 64);
}

TEST(ScanEngineTest, EmptyPredicateListMatchesAllRows) {
  const Table table = SmallTable();
  const Query query;  // no predicates.
  EXPECT_EQ(ExecuteCountNaive(table, query), table.num_rows());
  EXPECT_EQ(ExecuteCount(table, query), table.num_rows());
  scan::BlockScanner scanner(table, {4});
  EXPECT_EQ(scanner.Count(query), table.num_rows());
  EXPECT_EQ(scanner.CountBatch({query})[0], table.num_rows());
}

TEST(ScanEngineTest, UnsatisfiableIntervalIsZeroEverywhere) {
  const Table table = SmallTable();
  Query query;
  query.predicates.push_back({0, 5, 2});  // lo > hi.
  EXPECT_EQ(ExecuteCountNaive(table, query), 0u);
  EXPECT_EQ(ExecuteCount(table, query), 0u);
  scan::BlockScanner scanner(table, {4});
  EXPECT_EQ(scanner.Count(query), 0u);
  EXPECT_EQ(scanner.CountBatch({query})[0], 0u);
}

TEST(ScanEngineTest, OpenRangesWithInfiniteBounds) {
  const Table table = SmallTable();
  std::vector<Query> queries(4);
  queries[0].predicates.push_back({0, -kInf, 4});     // a <= 4.
  queries[1].predicates.push_back({0, 7, kInf});      // a >= 7.
  queries[2].predicates.push_back({0, -kInf, kInf});  // unconstrained.
  queries[3].predicates.push_back({0, -kInf, 6});     // conjunction with
  queries[3].predicates.push_back({1, 5, kInf});      // two open ranges.
  ExpectDifferentialMatch(table, queries, 3);
  EXPECT_EQ(ExecuteCount(table, queries[0]), 4u);
  EXPECT_EQ(ExecuteCount(table, queries[1]), 4u);
  EXPECT_EQ(ExecuteCount(table, queries[2]), 10u);
}

TEST(ScanEngineTest, AppendedRowsAfterUpdateStepViaRefresh) {
  Table table = GenerateSynthetic2D(1100, 0.8, 0.5, 30, 21);
  scan::BlockScanner scanner(table, {128});
  const std::vector<Query> queries = GenerateQueries(table, 80, 22);
  const std::vector<size_t> before = scanner.CountBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i)
    EXPECT_EQ(before[i], ExecuteCountNaive(table, queries[i]));

  // §4.2-style append-20% update step, then an incremental Refresh().
  const Table updated = AppendCorrelatedUpdate(table, 0.2, 23);
  table = updated;
  scanner.Refresh();
  EXPECT_EQ(scanner.synopsis().covered_rows(), table.num_rows());
  const std::vector<size_t> after = scanner.CountBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(after[i], ExecuteCountNaive(table, queries[i]))
        << "query " << i;
    EXPECT_EQ(scanner.Count(queries[i]), after[i]) << "query " << i;
  }
}

TEST(ScanEngineTest, IncrementalSynopsisEqualsFreshBuild) {
  Table table = GenerateSynthetic2D(1000, 0.6, 0.4, 25, 31);
  scan::TableSynopsis incremental(table, 96);  // 1000 % 96 != 0.
  const Table updated = AppendCorrelatedUpdate(table, 0.35, 32);
  incremental.ExtendTo(updated);
  const scan::TableSynopsis fresh(updated, 96);
  ASSERT_EQ(incremental.num_blocks(), fresh.num_blocks());
  ASSERT_EQ(incremental.covered_rows(), fresh.covered_rows());
  for (size_t c = 0; c < updated.num_cols(); ++c) {
    for (size_t b = 0; b < fresh.num_blocks(); ++b) {
      EXPECT_DOUBLE_EQ(incremental.BlockMin(c, b), fresh.BlockMin(c, b));
      EXPECT_DOUBLE_EQ(incremental.BlockMax(c, b), fresh.BlockMax(c, b));
    }
  }
}

TEST(ScanEngineTest, ZoneMapClassification) {
  Table table("zones");
  table.AddColumn("a", {1, 2, 3, 10, 11, 12}, false);
  table.Finalize();
  const scan::TableSynopsis synopsis(table, 3);  // blocks {1..3}, {10..12}.
  ASSERT_EQ(synopsis.num_blocks(), 2u);
  const Predicate narrow{0, 4, 9};   // gap between the blocks.
  const Predicate left{0, 0, 5};     // contains block 0's envelope.
  EXPECT_FALSE(synopsis.CanMatch(0, narrow));
  EXPECT_FALSE(synopsis.CanMatch(1, narrow));
  EXPECT_TRUE(synopsis.CanMatch(0, left));
  EXPECT_TRUE(synopsis.FullyMatches(0, left));
  EXPECT_FALSE(synopsis.CanMatch(1, left));
}

TEST(ScanEngineTest, KernelsAgreeWithMatches) {
  const std::vector<double> values = {0.5, 1.0, 2.5, 3.0, -1.0, 7.25, 3.0};
  const Predicate p{0, 1.0, 3.0};
  std::vector<uint32_t> sel(values.size());
  const size_t filtered = scan::FilterInterval(
      values.data(), 0, static_cast<uint32_t>(values.size()), p.lo, p.hi,
      sel.data());
  const size_t counted = scan::CountInterval(
      values.data(), 0, static_cast<uint32_t>(values.size()), p.lo, p.hi);
  size_t expected = 0;
  for (double v : values) expected += p.Matches(v) ? 1 : 0;
  EXPECT_EQ(filtered, expected);
  EXPECT_EQ(counted, expected);
  for (size_t i = 0; i < filtered; ++i)
    EXPECT_TRUE(p.Matches(values[sel[i]]));
  // Refine against a second "column" (reuse values shifted): keeps exactly
  // the ids whose value also lies in the refined interval.
  const size_t refined =
      scan::RefineInterval(values.data(), 2.0, 3.0, sel.data(), filtered);
  for (size_t i = 0; i < refined; ++i) {
    EXPECT_GE(values[sel[i]], 2.0);
    EXPECT_LE(values[sel[i]], 3.0);
  }
  EXPECT_EQ(refined, 3u);  // 2.5, 3.0, 3.0.
}

TEST(ScanEngineTest, SelectivityMatchesExecuteSelectivity) {
  const Table table = SmallTable();
  Query query;
  query.predicates.push_back({0, 2, 6});
  scan::BlockScanner scanner(table, {4});
  EXPECT_DOUBLE_EQ(scanner.Selectivity(query),
                   ExecuteSelectivity(table, query));
}

}  // namespace
}  // namespace arecel
