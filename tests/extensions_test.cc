// Tests for the §7 research-opportunity extensions: the rule-guarding
// wrapper and the hierarchical hybrid estimator.

#include <memory>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/rules.h"
#include "data/datasets.h"
#include "estimators/extensions/guarded.h"
#include "estimators/extensions/hybrid.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace arecel {
namespace {

struct SharedData {
  Table table = GenerateSynthetic2D(20000, 0.5, 1.0, 300, 5);
  Workload train = GenerateWorkload(table, 800, 6);
  Workload test = GenerateWorkload(table, 200, 7);
};

const SharedData& Shared() {
  static const SharedData* data = new SharedData();
  return *data;
}

TEST(GuardedEstimatorTest, RestoresFidelityAndStability) {
  GuardedEstimator guarded(MakeEstimator("lw-xgb"));
  TrainContext context;
  context.training_workload = &Shared().train;
  guarded.Train(Shared().table, context);

  const auto rules = CheckLogicalRules(guarded, Shared().table);
  for (const RuleResult& rule : rules) {
    if (rule.rule == "stability" || rule.rule == "fidelity-a" ||
        rule.rule == "fidelity-b") {
      EXPECT_TRUE(rule.satisfied()) << rule.rule;
    }
  }
}

TEST(GuardedEstimatorTest, StabilizesNaru) {
  GuardedEstimator guarded(MakeEstimator("naru"));
  TrainContext context;
  guarded.Train(Shared().table, context);
  const Query& q = Shared().test.queries[0];
  const double first = guarded.EstimateSelectivity(q);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(guarded.EstimateSelectivity(q), first);
}

TEST(GuardedEstimatorTest, AccuracyUnchangedOnRegularQueries) {
  auto base = MakeEstimator("lw-xgb");
  GuardedEstimator guarded(MakeEstimator("lw-xgb"));
  TrainContext context;
  context.training_workload = &Shared().train;
  base->Train(Shared().table, context);
  guarded.Train(Shared().table, context);
  // Same seeds, same model: estimates agree on queries without whole-domain
  // or invalid predicates.
  for (size_t i = 0; i < 50; ++i) {
    const Query& q = Shared().test.queries[i];
    bool plain = q.IsSatisfiable();
    for (const Predicate& p : q.predicates) {
      const Column& col =
          Shared().table.column(static_cast<size_t>(p.column));
      if (p.lo <= col.min() && p.hi >= col.max()) plain = false;
    }
    if (!plain) continue;
    EXPECT_DOUBLE_EQ(guarded.EstimateSelectivity(q),
                     base->EstimateSelectivity(q));
  }
}

TEST(GuardedEstimatorTest, UpdateClearsCache) {
  GuardedEstimator guarded(MakeEstimator("postgres"));
  guarded.Train(Shared().table, {});
  const Query& q = Shared().test.queries[1];
  const double before = guarded.EstimateSelectivity(q);
  const Table updated = AppendCorrelatedUpdate(Shared().table, 0.5, 9);
  UpdateContext context;
  context.old_row_count = Shared().table.num_rows();
  guarded.Update(updated, context);
  // Not asserted equal/unequal numerically (data changed), but the cache
  // must not serve the old value verbatim if the distribution moved a lot.
  const double after = guarded.EstimateSelectivity(q);
  EXPECT_GE(after, 0.0);
  EXPECT_LE(after, 1.0);
  (void)before;
}

TEST(HybridEstimatorTest, RoutesByPredicateCount) {
  HybridEstimator hybrid(MakeEstimator("postgres"), MakeEstimator("deepdb"));
  TrainContext context;
  context.training_workload = &Shared().train;
  hybrid.Train(Shared().table, context);

  auto postgres = MakeEstimator("postgres");
  postgres->Train(Shared().table, context);

  Query single;
  single.predicates.push_back({0, 10, 50});
  // One predicate -> answered by the light (postgres) estimator.
  EXPECT_DOUBLE_EQ(hybrid.EstimateSelectivity(single),
                   postgres->EstimateSelectivity(single));
}

TEST(HybridEstimatorTest, FallsBackWhileHeavyIsStale) {
  HybridEstimator hybrid(MakeEstimator("postgres"), MakeEstimator("deepdb"));
  TrainContext context;
  hybrid.Train(Shared().table, context);
  ASSERT_TRUE(hybrid.heavy_ready());

  auto postgres = MakeEstimator("postgres");
  postgres->Train(Shared().table, context);

  Query multi;
  multi.predicates.push_back({0, 10, 150});
  multi.predicates.push_back({1, 10, 150});
  hybrid.MarkHeavyStale();
  EXPECT_DOUBLE_EQ(hybrid.EstimateSelectivity(multi),
                   postgres->EstimateSelectivity(multi));
}

TEST(HybridEstimatorTest, AccuracyAtLeastLightModel) {
  HybridEstimator hybrid(MakeEstimator("postgres"), MakeEstimator("deepdb"));
  auto light_only = MakeEstimator("postgres");
  TrainContext context;
  context.training_workload = &Shared().train;
  hybrid.Train(Shared().table, context);
  light_only->Train(Shared().table, context);
  const double hybrid_p95 = Percentile(
      EvaluateQErrors(hybrid, Shared().test, Shared().table.num_rows()), 95);
  const double light_p95 = Percentile(
      EvaluateQErrors(*light_only, Shared().test,
                      Shared().table.num_rows()),
      95);
  // The heavy model handles the hard multi-predicate queries; the hybrid
  // must not be dramatically worse than the light model and should usually
  // be much better on this correlated table.
  EXPECT_LT(hybrid_p95, light_p95 * 1.2);
}

}  // namespace
}  // namespace arecel
