// Robustness edge cases across the registry: degenerate schemas (single
// column, constant column), duplicate predicates, and extreme queries.
// These paths are where estimator implementations typically divide by zero
// or index out of range; every estimator must stay within [0, 1] and never
// crash.

#include <memory>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "data/datasets.h"
#include "util/random.h"
#include "workload/generator.h"

namespace arecel {
namespace {

Table OneColumnTable() {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i)
    values.push_back(static_cast<double>(rng.Zipf(50, 0.8)));
  Table t("one_col");
  t.AddColumn("a", std::move(values), false);
  t.Finalize();
  return t;
}

Table ConstantColumnTable() {
  Rng rng(4);
  std::vector<double> varying, constant(3000, 7.0);
  for (int i = 0; i < 3000; ++i)
    varying.push_back(static_cast<double>(rng.UniformInt(uint64_t{40})));
  Table t("const_col");
  t.AddColumn("a", std::move(varying), false);
  t.AddColumn("b", std::move(constant), true);
  t.Finalize();
  return t;
}

class EdgeCaseTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EdgeCaseTest, SingleColumnTable) {
  const Table t = OneColumnTable();
  const Workload train = GenerateWorkload(t, 300, 5);
  auto estimator = MakeEstimator(GetParam());
  TrainContext context;
  context.training_workload = &train;
  estimator->Train(t, context);

  Query q;
  q.predicates.push_back({0, 5, 20});
  const double sel = estimator->EstimateSelectivity(q);
  ASSERT_GE(sel, 0.0);
  ASSERT_LE(sel, 1.0);
}

TEST_P(EdgeCaseTest, ConstantColumn) {
  const Table t = ConstantColumnTable();
  const Workload train = GenerateWorkload(t, 300, 6);
  auto estimator = MakeEstimator(GetParam());
  TrainContext context;
  context.training_workload = &train;
  estimator->Train(t, context);

  // Equality on the constant column: true selectivity 1.
  Query hit;
  hit.predicates.push_back({1, 7.0, 7.0});
  const double sel_hit = estimator->EstimateSelectivity(hit);
  ASSERT_GE(sel_hit, 0.0);
  ASSERT_LE(sel_hit, 1.0);

  // Equality on a value the constant column never takes: near 0.
  Query miss;
  miss.predicates.push_back({1, 8.0, 8.0});
  const double sel_miss = estimator->EstimateSelectivity(miss);
  ASSERT_GE(sel_miss, 0.0);
  ASSERT_LE(sel_miss, 1.0);
}

TEST_P(EdgeCaseTest, DuplicatePredicatesOnOneColumn) {
  const Table t = GenerateSynthetic2D(5000, 0.5, 0.5, 60, 7);
  const Workload train = GenerateWorkload(t, 300, 8);
  auto estimator = MakeEstimator(GetParam());
  TrainContext context;
  context.training_workload = &train;
  estimator->Train(t, context);

  Query q;
  q.predicates.push_back({0, 10, 50});
  q.predicates.push_back({0, 20, 40});  // tighter duplicate on column 0.
  const double sel = estimator->EstimateSelectivity(q);
  ASSERT_GE(sel, 0.0);
  ASSERT_LE(sel, 1.0);
}

TEST_P(EdgeCaseTest, PointQueryAtDomainEdges) {
  const Table t = GenerateSynthetic2D(5000, 1.0, 0.5, 60, 9);
  const Workload train = GenerateWorkload(t, 300, 10);
  auto estimator = MakeEstimator(GetParam());
  TrainContext context;
  context.training_workload = &train;
  estimator->Train(t, context);

  for (double edge : {t.column(0).min(), t.column(0).max()}) {
    Query q;
    q.predicates.push_back({0, edge, edge});
    const double sel = estimator->EstimateSelectivity(q);
    ASSERT_GE(sel, 0.0);
    ASSERT_LE(sel, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, EdgeCaseTest,
                         ::testing::ValuesIn(AllEstimatorNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace arecel
