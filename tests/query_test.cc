#include "workload/query.h"

#include <gtest/gtest.h>

namespace arecel {
namespace {

Table OneColumnTable() {
  Table t("tbl");
  t.AddColumn("a", {1, 2, 3}, false);
  t.Finalize();
  return t;
}

TEST(PredicateTest, EqualityAndMatch) {
  Predicate p{0, 5, 5};
  EXPECT_TRUE(p.is_equality());
  EXPECT_TRUE(p.Matches(5));
  EXPECT_FALSE(p.Matches(4.999));
}

TEST(PredicateTest, RangeMatchInclusive) {
  Predicate p{0, 1, 3};
  EXPECT_TRUE(p.Matches(1));
  EXPECT_TRUE(p.Matches(3));
  EXPECT_FALSE(p.Matches(3.0001));
}

TEST(QueryTest, SatisfiableChecks) {
  Query q;
  q.predicates.push_back({0, 1, 3});
  EXPECT_TRUE(q.IsSatisfiable());
  q.predicates.push_back({0, 3, 1});
  EXPECT_FALSE(q.IsSatisfiable());
}

TEST(QueryTest, ToStringEquality) {
  const Table t = OneColumnTable();
  Query q;
  q.predicates.push_back({0, 2, 2});
  EXPECT_EQ(q.ToString(t), "SELECT COUNT(*) FROM tbl WHERE a = 2");
}

TEST(QueryTest, ToStringOpenRanges) {
  const Table t = OneColumnTable();
  const double inf = std::numeric_limits<double>::infinity();
  Query le;
  le.predicates.push_back({0, -inf, 2});
  EXPECT_NE(le.ToString(t).find("a <= 2"), std::string::npos);
  Query ge;
  ge.predicates.push_back({0, 2, inf});
  EXPECT_NE(ge.ToString(t).find("a >= 2"), std::string::npos);
}

TEST(QueryTest, ToStringCloseRange) {
  const Table t = OneColumnTable();
  Query q;
  q.predicates.push_back({0, 1, 2});
  EXPECT_NE(q.ToString(t).find("1 <= a <= 2"), std::string::npos);
}

}  // namespace
}  // namespace arecel
