#include "ml/transformer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ml/autoregressive.h"
#include "util/random.h"

namespace arecel {
namespace {

TransformerBackboneOptions SmallOptions() {
  TransformerBackboneOptions options;
  options.d_model = 16;
  options.ffn_hidden = 32;
  options.num_blocks = 2;
  options.seed = 1;
  return options;
}

std::vector<double> SoftmaxRow(const Matrix& logits, size_t row) {
  std::vector<double> p(logits.cols());
  double max_v = logits.At(row, 0);
  for (size_t t = 1; t < logits.cols(); ++t)
    max_v = std::max<double>(max_v, logits.At(row, t));
  double sum = 0.0;
  for (size_t t = 0; t < logits.cols(); ++t) {
    p[t] = std::exp(logits.At(row, t) - max_v);
    sum += p[t];
  }
  for (double& v : p) v /= sum;
  return p;
}

TEST(TransformerTest, Shapes) {
  AutoregressiveTransformer model({4, 8, 3}, SmallOptions());
  EXPECT_EQ(model.num_columns(), 3u);
  EXPECT_EQ(model.vocab_size(1), 8);
  EXPECT_GT(model.ParamCount(), 0u);
}

// The causal mask must make column i's logits independent of columns >= i.
TEST(TransformerTest, AutoregressiveProperty) {
  AutoregressiveTransformer model({4, 8, 3}, SmallOptions());
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int32_t> codes_a = {
        static_cast<int32_t>(rng.UniformInt(uint64_t{4})),
        static_cast<int32_t>(rng.UniformInt(uint64_t{8})),
        static_cast<int32_t>(rng.UniformInt(uint64_t{3}))};
    for (size_t col = 0; col < 3; ++col) {
      std::vector<int32_t> codes_b = codes_a;
      const int vocabs[3] = {4, 8, 3};
      for (size_t j = col; j < 3; ++j)
        codes_b[j] = static_cast<int32_t>(
            rng.UniformInt(static_cast<uint64_t>(vocabs[j])));
      std::vector<int32_t> both = codes_a;
      both.insert(both.end(), codes_b.begin(), codes_b.end());
      Matrix logits;
      model.ColumnLogits(both, 2, col, &logits);
      for (size_t t = 0; t < logits.cols(); ++t) {
        ASSERT_NEAR(logits.At(0, t), logits.At(1, t), 1e-4f)
            << "column " << col << " leaked later columns";
      }
    }
  }
}

TEST(TransformerTest, TrainStepReducesLoss) {
  AutoregressiveTransformer model({6, 6}, SmallOptions());
  Rng rng(3);
  const size_t batch = 64;
  std::vector<int32_t> codes(batch * 2);
  auto fill = [&] {
    for (size_t b = 0; b < batch; ++b) {
      const int32_t x = static_cast<int32_t>(rng.UniformInt(uint64_t{6}));
      codes[b * 2] = x;
      codes[b * 2 + 1] = x;  // functional dependency.
    }
  };
  fill();
  const float initial = model.TrainStep(codes, batch, 2e-3f);
  float final_loss = initial;
  for (int step = 0; step < 400; ++step) {
    fill();
    final_loss = model.TrainStep(codes, batch, 2e-3f);
  }
  EXPECT_LT(final_loss, initial * 0.8f);
  // NLL floor is H(x0) = log 6 ~ 1.79 (x1 deterministic given x0).
  EXPECT_LT(final_loss, 2.3f);
}

TEST(TransformerTest, LearnsConditionalDependency) {
  AutoregressiveTransformer model({5, 5}, SmallOptions());
  Rng rng(4);
  const size_t batch = 64;
  std::vector<int32_t> codes(batch * 2);
  for (int step = 0; step < 600; ++step) {
    for (size_t b = 0; b < batch; ++b) {
      const int32_t x = static_cast<int32_t>(rng.UniformInt(uint64_t{5}));
      codes[b * 2] = x;
      codes[b * 2 + 1] = static_cast<int32_t>((x + 1) % 5);
    }
    model.TrainStep(codes, batch, 2e-3f);
  }
  // P(x1 | x0 = 3) must concentrate on 4.
  std::vector<int32_t> probe = {3, 0};
  Matrix logits;
  model.ColumnLogits(probe, 1, 1, &logits);
  const std::vector<double> p = SoftmaxRow(logits, 0);
  size_t argmax = 0;
  for (size_t t = 1; t < 5; ++t)
    if (p[t] > p[argmax]) argmax = t;
  EXPECT_EQ(argmax, 4u);
  EXPECT_GT(p[4], 0.5);
}

TEST(TransformerTest, FirstColumnLearnsMarginal) {
  AutoregressiveTransformer model({4}, SmallOptions());
  Rng rng(5);
  const size_t batch = 64;
  std::vector<int32_t> codes(batch);
  for (int step = 0; step < 300; ++step) {
    for (size_t b = 0; b < batch; ++b)
      codes[b] = rng.Bernoulli(0.7) ? 2 : static_cast<int32_t>(
                                              rng.UniformInt(uint64_t{4}));
    model.TrainStep(codes, batch, 3e-3f);
  }
  std::vector<int32_t> probe = {0};
  Matrix logits;
  model.ColumnLogits(probe, 1, 0, &logits);
  const std::vector<double> p = SoftmaxRow(logits, 0);
  // True marginal of value 2 is 0.7 + 0.3/4 = 0.775.
  EXPECT_NEAR(p[2], 0.775, 0.12);
}

}  // namespace
}  // namespace arecel
