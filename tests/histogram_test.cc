#include "ml/histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace arecel {
namespace {

TEST(EquiDepthHistogramTest, UniformDataFractions) {
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i % 100);
  EquiDepthHistogram h;
  h.Build(values, 50);
  EXPECT_NEAR(h.EstimateRange(0, 49), 0.5, 0.03);
  EXPECT_NEAR(h.EstimateRange(0, 99), 1.0, 1e-9);
  EXPECT_NEAR(h.EstimateRange(25, 74), 0.5, 0.03);
}

TEST(EquiDepthHistogramTest, EmptyRangeIsZero) {
  EquiDepthHistogram h;
  h.Build({1, 2, 3}, 4);
  EXPECT_DOUBLE_EQ(h.EstimateRange(5, 2), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateRange(10, 20), 0.0);
}

TEST(EquiDepthHistogramTest, HeavyValueZeroWidthBuckets) {
  // 90% of rows share one value; buckets collapse but mass is preserved.
  std::vector<double> values(900, 42.0);
  for (int i = 0; i < 100; ++i) values.push_back(i);
  EquiDepthHistogram h;
  h.Build(values, 20);
  EXPECT_NEAR(h.EstimateRange(42, 42), 0.9, 0.1);
  EXPECT_NEAR(h.EstimateRange(-10, 200), 1.0, 1e-9);
}

TEST(EquiDepthHistogramTest, OpenRanges) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  EquiDepthHistogram h;
  h.Build(values, 100);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(h.EstimateRange(-inf, 499), 0.5, 0.02);
  EXPECT_NEAR(h.EstimateRange(500, inf), 0.5, 0.02);
}

TEST(ColumnStatsTest, EqualityOnMcv) {
  std::vector<double> values(500, 7.0);
  for (int i = 0; i < 500; ++i) values.push_back(i + 100);
  ColumnStats stats;
  ColumnStats::Options options;
  options.num_mcvs = 4;
  options.num_buckets = 16;
  stats.Build(values, options);
  EXPECT_NEAR(stats.EstimateEquality(7.0), 0.5, 1e-9);
}

TEST(ColumnStatsTest, EqualityOnNonMcvUsesDistinctSpread) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);  // all distinct.
  ColumnStats stats;
  ColumnStats::Options options;
  options.num_mcvs = 10;
  options.num_buckets = 50;
  stats.Build(values, options);
  // Non-MCV equality ~ (1 - mcv_mass) / (distinct - mcvs) = 0.99 / 990.
  EXPECT_NEAR(stats.EstimateEquality(500.5), 0.99 / 990.0, 1e-6);
}

TEST(ColumnStatsTest, RangeCombinesMcvAndHistogram) {
  std::vector<double> values(400, 50.0);  // heavy value inside the range.
  for (int i = 0; i < 600; ++i) values.push_back(i % 100);
  ColumnStats stats;
  ColumnStats::Options options;
  options.num_mcvs = 1;
  options.num_buckets = 20;
  stats.Build(values, options);
  const double sel = stats.EstimateRange(40, 60);
  // Exact answer: 400 (mcv) + 0.21 * 600 = 526 rows -> 0.526.
  EXPECT_NEAR(sel, 0.526, 0.05);
}

TEST(ColumnStatsTest, FullRangeIsOne) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.Uniform(0, 1000));
  ColumnStats stats;
  stats.Build(values, {});
  EXPECT_NEAR(stats.EstimateRange(-1e18, 1e18), 1.0, 1e-9);
}

TEST(ColumnStatsTest, DistinctCount) {
  ColumnStats stats;
  stats.Build({1, 1, 2, 3, 3, 3}, {});
  EXPECT_EQ(stats.distinct_count(), 3u);
}

TEST(ColumnStatsTest, EmptyInput) {
  ColumnStats stats;
  stats.Build({}, {});
  EXPECT_DOUBLE_EQ(stats.EstimateRange(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(stats.EstimateEquality(0), 0.0);
}

}  // namespace
}  // namespace arecel
