// Tests of the property-based testing harness itself (src/testing/):
// generator determinism and option compliance, the shrinker's guarantees
// (result still fails, is no larger than the input, minimal for simple
// properties), and an end-to-end property sweep of estimator bounds over
// random tables and workloads.

#include <gtest/gtest.h>

#include "core/registry.h"
#include "testing/invariants.h"
#include "testing/property.h"
#include "testing/random_case.h"

namespace arecel {
namespace {

TEST(RandomCaseTest, DeterministicGivenSeed) {
  const RandomCase a = GenerateRandomCase(99);
  const RandomCase b = GenerateRandomCase(99);
  ASSERT_EQ(a.table.num_rows(), b.table.num_rows());
  ASSERT_EQ(a.table.num_cols(), b.table.num_cols());
  for (size_t c = 0; c < a.table.num_cols(); ++c)
    EXPECT_EQ(a.table.column(c).values, b.table.column(c).values);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t q = 0; q < a.queries.size(); ++q) {
    ASSERT_EQ(a.queries[q].predicates.size(), b.queries[q].predicates.size());
    for (size_t p = 0; p < a.queries[q].predicates.size(); ++p) {
      EXPECT_EQ(a.queries[q].predicates[p].lo, b.queries[q].predicates[p].lo);
      EXPECT_EQ(a.queries[q].predicates[p].hi, b.queries[q].predicates[p].hi);
    }
  }
}

TEST(RandomCaseTest, DistinctSeedsDiffer) {
  const RandomCase a = GenerateRandomCase(1);
  const RandomCase b = GenerateRandomCase(2);
  const bool same_shape = a.table.num_rows() == b.table.num_rows() &&
                          a.table.num_cols() == b.table.num_cols();
  if (same_shape) {
    bool all_equal = true;
    for (size_t c = 0; c < a.table.num_cols() && all_equal; ++c)
      all_equal = a.table.column(c).values == b.table.column(c).values;
    EXPECT_FALSE(all_equal);
  } else {
    SUCCEED();
  }
}

TEST(RandomCaseTest, RespectsOptionRanges) {
  RandomCaseOptions options;
  options.min_rows = 100;
  options.max_rows = 200;
  options.min_cols = 2;
  options.max_cols = 3;
  options.min_domain = 4;
  options.max_domain = 16;
  options.num_queries = 7;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const RandomCase c = GenerateRandomCase(seed, options);
    EXPECT_GE(c.table.num_rows(), 100u);
    EXPECT_LE(c.table.num_rows(), 200u);
    EXPECT_GE(c.table.num_cols(), 2u);
    EXPECT_LE(c.table.num_cols(), 3u);
    EXPECT_EQ(c.queries.size(), 7u);
    for (size_t col = 0; col < c.table.num_cols(); ++col)
      EXPECT_LE(c.table.column(col).domain.size(), 16u);
  }
}

TEST(CheckPropertyTest, PassingPropertyRunsAllCases) {
  PropertyOptions options;
  options.num_cases = 10;
  const PropertyOutcome outcome =
      CheckProperty([](const RandomCase&) { return std::string(); }, options);
  EXPECT_TRUE(outcome.passed);
  EXPECT_EQ(outcome.cases_run, 10);
}

TEST(CheckPropertyTest, FailingPropertyShrinksRows) {
  // "Tables must have < 128 rows" — fails for most cases; the minimized
  // reproducer must be just past the threshold after repeated halving.
  PropertyOptions options;
  options.num_cases = 10;
  options.case_options.min_rows = 1000;
  options.case_options.max_rows = 4000;
  const PropertyOutcome outcome = CheckProperty(
      [](const RandomCase& c) {
        return c.table.num_rows() >= 128
                   ? "table has " + std::to_string(c.table.num_rows()) +
                         " rows"
                   : std::string();
      },
      options);
  ASSERT_FALSE(outcome.passed);
  EXPECT_FALSE(outcome.failure.empty());
  EXPECT_FALSE(outcome.shrunk_failure.empty());
  // Still failing but within one halving of minimal.
  EXPECT_GE(outcome.shrunk.table.num_rows(), 128u);
  EXPECT_LT(outcome.shrunk.table.num_rows(), 256u);
  // Rows shrinking also pruned the query list to a single query.
  EXPECT_EQ(outcome.shrunk.queries.size(), 1u);
  EXPECT_GT(outcome.shrink_stats.accepted, 0);
}

TEST(CheckPropertyTest, ShrinkerMinimizesPredicates) {
  // Property violated whenever any query carries >= 2 predicates: the
  // minimized case is one query with exactly 2 predicates.
  PropertyOptions options;
  options.num_cases = 20;
  options.case_options.min_cols = 3;
  options.case_options.max_cols = 5;
  const PropertyOutcome outcome = CheckProperty(
      [](const RandomCase& c) {
        for (const Query& q : c.queries)
          if (q.predicates.size() >= 2) return std::string("wide query");
        return std::string();
      },
      options);
  ASSERT_FALSE(outcome.passed);
  ASSERT_EQ(outcome.shrunk.queries.size(), 1u);
  EXPECT_EQ(outcome.shrunk.queries[0].predicates.size(), 2u);
  EXPECT_EQ(outcome.shrunk.table.num_rows(), 1u);
}

TEST(ShrinkCaseTest, ResultAlwaysFails) {
  const RandomCase original = GenerateRandomCase(5);
  auto fails = [](const RandomCase& c) { return c.TotalPredicates() >= 3; };
  if (!fails(original)) GTEST_SKIP() << "seed produced a tiny case";
  ShrinkStats stats;
  const RandomCase shrunk = ShrinkCase(original, fails, 256, &stats);
  EXPECT_TRUE(fails(shrunk));
  EXPECT_LE(shrunk.table.num_rows(), original.table.num_rows());
  EXPECT_LE(shrunk.queries.size(), original.queries.size());
  EXPECT_EQ(shrunk.TotalPredicates(), 3u);
  EXPECT_LE(stats.accepted, stats.attempts);
}

TEST(RandomCaseTest, DescribeMentionsShape) {
  const RandomCase c = GenerateRandomCase(3);
  const std::string description = c.Describe();
  EXPECT_NE(description.find("seed=3"), std::string::npos);
  EXPECT_NE(description.find("rows="), std::string::npos);
  EXPECT_NE(description.find("queries="), std::string::npos);
}

// End-to-end: estimator bounds hold on arbitrary random tables/workloads,
// not just the pinned conformance fixture. Restricted to fast-training
// estimators so the sweep stays tier-1 friendly.
TEST(EstimatorPropertyTest, BoundsHoldOnRandomCases) {
  PropertyOptions options;
  options.num_cases = 8;
  options.case_options.max_rows = 1024;
  options.case_options.num_queries = 12;
  for (const char* name : {"postgres", "sampling", "mhist", "bayes"}) {
    const PropertyOutcome outcome = CheckProperty(
        [name](const RandomCase& c) {
          auto estimator = MakeEstimator(name);
          Workload train;
          train.queries = c.queries;
          train.selectivities = LabelQueries(c.table, c.queries);
          TrainContext context;
          context.training_workload = &train;
          estimator->Train(c.table, context);
          const InvariantResult bounds = CheckSelectivityBounds(
              *estimator, c.queries, c.table.num_rows());
          return bounds.passed() ? std::string()
                                 : bounds.invariant + ": " + bounds.detail;
        },
        options);
    EXPECT_TRUE(outcome.passed) << name << ": " << outcome.Message();
  }
}

}  // namespace
}  // namespace arecel
