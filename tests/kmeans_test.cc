#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace arecel {
namespace {

TEST(KMeansTest, SeparatesTwoBlobs) {
  Rng rng(1);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 200; ++i)
    points.push_back({rng.Gaussian() * 0.1, rng.Gaussian() * 0.1});
  for (int i = 0; i < 200; ++i)
    points.push_back({5 + rng.Gaussian() * 0.1, 5 + rng.Gaussian() * 0.1});
  const KMeansResult result = KMeans(points, 2, 30, 7);
  ASSERT_EQ(result.centers.size(), 2u);
  // All points of each blob share one assignment.
  const int first_blob = result.assignments[0];
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(result.assignments[static_cast<size_t>(i)], first_blob);
  const int second_blob = result.assignments[200];
  EXPECT_NE(first_blob, second_blob);
  for (int i = 200; i < 400; ++i)
    EXPECT_EQ(result.assignments[static_cast<size_t>(i)], second_blob);
  EXPECT_EQ(result.cluster_sizes[static_cast<size_t>(first_blob)], 200u);
}

TEST(KMeansTest, CentersNearBlobMeans) {
  Rng rng(2);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 300; ++i) points.push_back({rng.Gaussian() * 0.2});
  for (int i = 0; i < 300; ++i) points.push_back({10 + rng.Gaussian() * 0.2});
  const KMeansResult result = KMeans(points, 2, 30, 8);
  double lo = std::min(result.centers[0][0], result.centers[1][0]);
  double hi = std::max(result.centers[0][0], result.centers[1][0]);
  EXPECT_NEAR(lo, 0.0, 0.2);
  EXPECT_NEAR(hi, 10.0, 0.2);
}

TEST(KMeansTest, KLargerThanPointsClamps) {
  std::vector<std::vector<double>> points{{1.0}, {2.0}};
  const KMeansResult result = KMeans(points, 5, 10, 9);
  EXPECT_EQ(result.centers.size(), 2u);
}

TEST(KMeansTest, IdenticalPointsDoNotCrash) {
  std::vector<std::vector<double>> points(50, {3.0, 3.0});
  const KMeansResult result = KMeans(points, 2, 10, 10);
  EXPECT_EQ(result.assignments.size(), 50u);
}

TEST(NearestCenterTest, PicksClosest) {
  const std::vector<std::vector<double>> centers{{0, 0}, {10, 10}};
  EXPECT_EQ(NearestCenter(centers, {1, 1}), 0);
  EXPECT_EQ(NearestCenter(centers, {9, 9}), 1);
}

}  // namespace
}  // namespace arecel
