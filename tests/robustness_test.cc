// Fast (tier1) coverage of the fault-tolerant harness: fault-plan parsing,
// the FaultInjector substrate, guarded execution's exception mapping,
// seed-bump retry + fallback in the robust runner, boundary clamping of
// invalid estimates, and the resumable sweep journal. The watchdog *timeout*
// paths (which must actually wait out deadlines) live in
// robustness_timeout_test.cc, labelled slow.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "robustness/failure.h"
#include "robustness/fault_injector.h"
#include "robustness/guard.h"
#include "robustness/journal.h"
#include "robustness/runner.h"
#include "workload/generator.h"

namespace arecel {
namespace {

using robust::FaultAction;
using robust::FaultInjector;
using robust::FaultSpec;
using robust::FaultStage;
using robust::JournalRecord;
using robust::ParseFaultPlan;
using robust::RunGuarded;
using robust::SweepJournal;
using robust::WrapWithFaults;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct SharedData {
  Table table = GenerateSynthetic2D(4000, 0.8, 0.5, 60, 17);
  Workload train = GenerateWorkload(table, 300, 18);
  Workload test = GenerateWorkload(table, 60, 19);
};

const SharedData& Shared() {
  static const SharedData* data = new SharedData();
  return *data;
}

// A trivially fast, deterministic base model for injection tests.
std::unique_ptr<CardinalityEstimator> FastBase() {
  return MakeEstimator("postgres");
}

// ---------------------------------------------------------------------------
// Fault plan parsing.

TEST(FaultPlanTest, ParsesMultiSpecPlans) {
  std::vector<FaultSpec> plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(
      "naru:train:hang;mscn:estimate:nan,lw-nn:train:throw:times=2:after=1",
      &plan, &error))
      << error;
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].estimator, "naru");
  EXPECT_EQ(plan[0].stage, FaultStage::kTrain);
  EXPECT_EQ(plan[0].action, FaultAction::kHang);
  EXPECT_EQ(plan[1].estimator, "mscn");
  EXPECT_EQ(plan[1].stage, FaultStage::kEstimate);
  EXPECT_EQ(plan[1].action, FaultAction::kNan);
  EXPECT_EQ(plan[2].times, 2);
  EXPECT_EQ(plan[2].after_calls, 1);
}

TEST(FaultPlanTest, EmptyPlanAndMalformedSpecs) {
  std::vector<FaultSpec> plan;
  std::string error;
  EXPECT_TRUE(ParseFaultPlan("", &plan, &error));
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(ParseFaultPlan("naru:train", &plan, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseFaultPlan("naru:nowhere:throw", &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("naru:train:explode", &plan, &error));
}

// ---------------------------------------------------------------------------
// FaultInjector substrate.

TEST(FaultInjectorTest, TransparentWithoutMatchingSpec) {
  std::vector<FaultSpec> plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("naru:train:throw", &plan, &error));
  auto wrapped = WrapWithFaults(FastBase(), plan);
  // postgres has no matching spec: WrapWithFaults returns the base as-is.
  EXPECT_EQ(wrapped->Name(), "postgres");
  TrainContext context;
  EXPECT_NO_THROW(wrapped->Train(Shared().table, context));
}

TEST(FaultInjectorTest, KeepsBaseNameAndInjectsNan) {
  std::vector<FaultSpec> plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("postgres:estimate:nan", &plan, &error));
  auto wrapped = WrapWithFaults(FastBase(), plan);
  EXPECT_EQ(wrapped->Name(), "postgres");  // transparent identity.
  TrainContext context;
  wrapped->Train(Shared().table, context);
  const double sel =
      wrapped->EstimateSelectivity(Shared().test.queries[0]);
  EXPECT_TRUE(std::isnan(sel));
}

TEST(FaultInjectorTest, TimesBudgetExpires) {
  std::vector<FaultSpec> plan;
  std::string error;
  ASSERT_TRUE(
      ParseFaultPlan("postgres:estimate:negative:times=2", &plan, &error));
  auto wrapped = WrapWithFaults(FastBase(), plan);
  TrainContext context;
  wrapped->Train(Shared().table, context);
  const Query& q = Shared().test.queries[0];
  EXPECT_LT(wrapped->EstimateSelectivity(q), 0.0);
  EXPECT_LT(wrapped->EstimateSelectivity(q), 0.0);
  // Budget exhausted: the base model answers normally again.
  const double sel = wrapped->EstimateSelectivity(q);
  EXPECT_GE(sel, 0.0);
  EXPECT_LE(sel, 1.0);
}

TEST(FaultInjectorTest, TrainThrowAndCancelAreDistinct) {
  std::vector<FaultSpec> plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("postgres:train:throw", &plan, &error));
  auto throwing = WrapWithFaults(FastBase(), plan);
  TrainContext context;
  EXPECT_THROW(throwing->Train(Shared().table, context), std::runtime_error);

  ASSERT_TRUE(ParseFaultPlan("postgres:train:cancel", &plan, &error));
  auto cancelling = WrapWithFaults(FastBase(), plan);
  EXPECT_THROW(cancelling->Train(Shared().table, context), CancelledError);
}

// ---------------------------------------------------------------------------
// Guarded execution (non-timeout paths; timeouts are in the slow suite).

TEST(GuardTest, SuccessInlineAndOnWorker) {
  int ran = 0;
  // deadline <= 0: inline, no worker thread.
  auto inline_result = RunGuarded([&] { ++ran; }, 0.0, {});
  EXPECT_TRUE(inline_result.ok());
  // positive deadline: worker thread path.
  auto worker_result = RunGuarded([&] { ++ran; }, 30.0, {});
  EXPECT_TRUE(worker_result.ok());
  EXPECT_EQ(ran, 2);
}

TEST(GuardTest, MapsExceptionsToConfiguredKinds) {
  const robust::GuardKinds kinds = {FailureKind::kCellTimeout,
                                    FailureKind::kTrainThrew,
                                    FailureKind::kTrainCancelled};
  auto threw = RunGuarded([] { throw std::runtime_error("boom"); }, 30.0,
                          kinds);
  EXPECT_EQ(threw.kind, FailureKind::kTrainThrew);
  EXPECT_NE(threw.detail.find("boom"), std::string::npos);

  auto cancelled = RunGuarded([] { throw CancelledError("stop"); }, 30.0,
                              kinds);
  EXPECT_EQ(cancelled.kind, FailureKind::kTrainCancelled);
}

// ---------------------------------------------------------------------------
// Robust evaluation: retry and fallback.

robust::RobustOptions FastOptions() {
  robust::RobustOptions options;
  options.train_deadline_seconds = 0.0;     // inline; no watchdog needed.
  options.estimate_deadline_seconds = 0.0;  // these tests cover logic, not
  options.max_train_attempts = 2;           // deadlines.
  return options;
}

TEST(RobustRunnerTest, RetryAfterOneThrowSucceeds) {
  std::vector<FaultSpec> plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("postgres:train:throw:times=1", &plan, &error));
  // One injector shared across attempts so the times budget spans retries.
  auto injector = std::make_shared<FaultInjector>(FastBase(), plan);
  const auto report = robust::EvaluateOnDatasetRobust(
      "postgres",
      [injector] {
        struct Ref : CardinalityEstimator {
          std::shared_ptr<FaultInjector> inner;
          explicit Ref(std::shared_ptr<FaultInjector> i)
              : inner(std::move(i)) {}
          std::string Name() const override { return inner->Name(); }
          void Train(const Table& t, const TrainContext& c) override {
            inner->Train(t, c);
          }
          double EstimateSelectivity(const Query& q) const override {
            return inner->EstimateSelectivity(q);
          }
          size_t SizeBytes() const override { return inner->SizeBytes(); }
        };
        return std::unique_ptr<CardinalityEstimator>(
            std::make_unique<Ref>(injector));
      },
      Shared().table, Shared().train, Shared().test, FastOptions());
  // Attempt 0 threw and was recorded; attempt 1 served the cell.
  EXPECT_EQ(report.served_by, "postgres");
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kTrainThrew);
  EXPECT_EQ(report.failures[0].attempt, 0);
  EXPECT_FALSE(report.ok());  // a failure happened, even though numbers came.
  EXPECT_GT(report.qerror.p50, 0.0);
}

TEST(RobustRunnerTest, ExhaustedRetriesFallBackToGuardedTraditional) {
  std::vector<FaultSpec> plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("mhist:train:throw", &plan, &error));
  const auto report = robust::EvaluateOnDatasetRobust(
      "mhist",
      [&plan] { return WrapWithFaults(MakeEstimator("mhist"), plan); },
      Shared().table, Shared().train, Shared().test, FastOptions());
  EXPECT_EQ(report.served_by, "guarded(postgres)");
  ASSERT_GE(report.failures.size(), 2u);  // both attempts recorded.
  EXPECT_EQ(report.failures[0].kind, FailureKind::kTrainThrew);
  EXPECT_EQ(report.failures[1].kind, FailureKind::kTrainThrew);
  EXPECT_TRUE(std::isfinite(report.qerror.p50));  // fallback produced numbers.
}

TEST(RobustRunnerTest, NoFallbackLeavesSentinelQuantiles) {
  std::vector<FaultSpec> plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("mhist:train:throw", &plan, &error));
  robust::RobustOptions options = FastOptions();
  options.fallback.clear();
  const auto report = robust::EvaluateOnDatasetRobust(
      "mhist",
      [&plan] { return WrapWithFaults(MakeEstimator("mhist"), plan); },
      Shared().table, Shared().train, Shared().test, options);
  EXPECT_TRUE(report.served_by.empty());
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.qerror.p50, kInvalidQError);
  EXPECT_EQ(report.qerror.max, kInvalidQError);
}

TEST(RobustRunnerTest, NanEstimatesAreCountedNotPropagated) {
  std::vector<FaultSpec> plan;
  std::string error;
  // First three probes return NaN, the rest answer normally.
  ASSERT_TRUE(ParseFaultPlan("postgres:estimate:nan:times=3", &plan, &error));
  const auto report = robust::EvaluateOnDatasetRobust(
      "postgres",
      [&plan] { return WrapWithFaults(FastBase(), plan); },
      Shared().table, Shared().train, Shared().test, FastOptions());
  EXPECT_EQ(report.served_by, "postgres");
  EXPECT_EQ(report.invalid_estimates, 3u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kNonFiniteEstimate);
  // The three invalid probes carry the sentinel, not a silent clamp.
  size_t sentinels = 0;
  for (double q : report.raw_qerrors) sentinels += (q == kInvalidQError);
  EXPECT_EQ(sentinels, 3u);
}

// ---------------------------------------------------------------------------
// Boundary clamping in the shared q-error scan.

TEST(ScanQErrorsTest, InvalidSelectivitiesScoreSentinel) {
  struct BadEstimator : CardinalityEstimator {
    std::string Name() const override { return "bad"; }
    void Train(const Table&, const TrainContext&) override {}
    size_t SizeBytes() const override { return 0; }
    double EstimateSelectivity(const Query&) const override {
      // Cycle: NaN, -0.25, +inf, then a valid value.
      const int i = calls_++ % 4;
      if (i == 0) return std::nan("");
      if (i == 1) return -0.25;
      if (i == 2) return std::numeric_limits<double>::infinity();
      return 0.5;
    }
    mutable int calls_ = 0;
  };
  BadEstimator bad;
  const QErrorScan scan =
      ScanQErrors(bad, Shared().test, Shared().table.num_rows());
  ASSERT_EQ(scan.qerrors.size(), Shared().test.size());
  // 3 of every 4 probes are invalid.
  EXPECT_EQ(scan.invalid_estimates, Shared().test.size() * 3 / 4);
  EXPECT_EQ(scan.qerrors[0], kInvalidQError);
  EXPECT_EQ(scan.qerrors[1], kInvalidQError);
  EXPECT_EQ(scan.qerrors[2], kInvalidQError);
  EXPECT_TRUE(std::isfinite(scan.qerrors[3]));
}

// ---------------------------------------------------------------------------
// Resumable sweep journal.

TEST(JournalTest, FingerprintIsDeterministicAndSensitive) {
  const std::string a = robust::FingerprintConfig({"bench", "1.0", "100"});
  const std::string b = robust::FingerprintConfig({"bench", "1.0", "100"});
  const std::string c = robust::FingerprintConfig({"bench", "1.0", "200"});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Part boundaries matter: {"ab","c"} != {"a","bc"}.
  EXPECT_NE(robust::FingerprintConfig({"ab", "c"}),
            robust::FingerprintConfig({"a", "bc"}));
}

TEST(JournalTest, RoundTripResumesCompletedCells) {
  const std::string path = TempPath("journal_roundtrip.jsonl");
  std::remove(path.c_str());
  const std::string fp = robust::FingerprintConfig({"test-bench", "42"});
  {
    SweepJournal journal(path, fp);
    EXPECT_TRUE(journal.enabled());
    EXPECT_EQ(journal.resumed_cells(), 0u);
    JournalRecord record;
    record.estimator = "naru";
    record.cell = "census";
    record.metrics = {{"p50", 1.5}, {"p95", 9.0}};
    EXPECT_TRUE(journal.Append(record));
    record.estimator = "mscn";
    record.metrics = {{"p50", 2.5}, {"p95", 20.0}};
    EXPECT_TRUE(journal.Append(record));
  }
  SweepJournal reopened(path, fp);
  EXPECT_EQ(reopened.resumed_cells(), 2u);
  const JournalRecord* hit = reopened.Find("naru", "census");
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->Metric("p50"), 1.5);
  EXPECT_DOUBLE_EQ(hit->Metric("p95"), 9.0);
  EXPECT_DOUBLE_EQ(hit->Metric("missing", -1.0), -1.0);
  EXPECT_EQ(reopened.Find("naru", "dmv"), nullptr);
  reopened.RemoveFile();
  SweepJournal after_remove(path, fp);
  EXPECT_EQ(after_remove.resumed_cells(), 0u);
}

TEST(JournalTest, FingerprintMismatchDiscardsStaleJournal) {
  const std::string path = TempPath("journal_mismatch.jsonl");
  std::remove(path.c_str());
  {
    SweepJournal journal(path, robust::FingerprintConfig({"scale=1.0"}));
    JournalRecord record;
    record.estimator = "naru";
    record.cell = "census";
    record.metrics = {{"p50", 1.5}};
    ASSERT_TRUE(journal.Append(record));
  }
  // The configuration changed: old cells are not comparable.
  SweepJournal reopened(path, robust::FingerprintConfig({"scale=0.5"}));
  EXPECT_EQ(reopened.resumed_cells(), 0u);
  EXPECT_EQ(reopened.Find("naru", "census"), nullptr);
  reopened.RemoveFile();
}

TEST(JournalTest, DisabledJournalIsInert) {
  SweepJournal journal("", "whatever");
  EXPECT_FALSE(journal.enabled());
  JournalRecord record;
  record.estimator = "x";
  record.cell = "y";
  EXPECT_TRUE(journal.Append(record));  // no-op success.
  EXPECT_EQ(journal.Find("x", "y"), nullptr);
}

TEST(JournalTest, InfClampsButNanIsRefused) {
  const std::string path = TempPath("journal_nonfinite.jsonl");
  std::remove(path.c_str());
  const std::string fp = robust::FingerprintConfig({"nf"});
  {
    SweepJournal journal(path, fp);
    // Infinite q-errors are legitimate results: they journal, clamped to
    // the representable edge so the JSONL stays parseable.
    JournalRecord inf_record;
    inf_record.estimator = "big";
    inf_record.cell = "cell";
    inf_record.metrics = {{"inf", std::numeric_limits<double>::infinity()}};
    ASSERT_TRUE(journal.Append(inf_record));
    // NaN is corruption, not a result: Append refuses it outright instead
    // of rewriting it into a plausible number, and never indexes it — the
    // cell stays missing so a resumed run re-executes it.
    JournalRecord nan_record;
    nan_record.estimator = "bad";
    nan_record.cell = "cell";
    nan_record.metrics = {{"p50", 1.5}, {"p99", std::nan("")}};
    EXPECT_FALSE(journal.Append(nan_record));
    EXPECT_EQ(journal.Find("bad", "cell"), nullptr);
  }
  SweepJournal reopened(path, fp);
  ASSERT_EQ(reopened.resumed_cells(), 1u);
  const JournalRecord* hit = reopened.Find("big", "cell");
  ASSERT_NE(hit, nullptr);
  EXPECT_GT(hit->Metric("inf"), 1e300);
  EXPECT_TRUE(std::isfinite(hit->Metric("inf")));
  // The refused NaN record never reached disk.
  EXPECT_EQ(reopened.Find("bad", "cell"), nullptr);
  reopened.RemoveFile();
}

// ---------------------------------------------------------------------------
// Failure taxonomy strings.

TEST(FailureTest, KindNamesAreStable) {
  EXPECT_STREQ(FailureKindName(FailureKind::kNone), "kNone");
  EXPECT_STREQ(FailureKindName(FailureKind::kTrainTimeout), "kTrainTimeout");
  EXPECT_STREQ(FailureKindName(FailureKind::kNonFiniteEstimate),
               "kNonFiniteEstimate");
  FailureRecord record{FailureKind::kTrainThrew, "train", 1, "boom"};
  const std::string text = record.ToString();
  EXPECT_NE(text.find("kTrainThrew"), std::string::npos);
  EXPECT_NE(text.find("boom"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-query estimate budgets.

TEST(RobustRunnerTest, PerQueryBudgetLocalizesPathologicalQuery) {
  std::vector<FaultSpec> plan;
  std::string error;
  // Query index 2 stalls well past the budget; everything else is instant.
  ASSERT_TRUE(ParseFaultPlan(
      "postgres:estimate:delay:after=2:times=1:delay=0.6", &plan, &error));
  robust::RobustOptions options = FastOptions();
  options.query_deadline_seconds = 0.05;
  const auto report = robust::EvaluateOnDatasetRobust(
      "postgres",
      [&plan] { return WrapWithFaults(FastBase(), plan); },
      Shared().table, Shared().train, Shared().test, options);
  // The pathological query is a per-query failure, not a dead stage: the
  // estimator itself still serves the cell.
  EXPECT_EQ(report.served_by, "postgres");
  ASSERT_EQ(report.raw_qerrors.size(), Shared().test.size());
  EXPECT_EQ(report.raw_qerrors[2], kInvalidQError);
  EXPECT_TRUE(std::isfinite(report.raw_qerrors[0]));
  EXPECT_TRUE(std::isfinite(report.raw_qerrors[3]));
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kEstimateTimeout);
  EXPECT_NE(report.failures[0].detail.find("query 2"), std::string::npos);
  EXPECT_FALSE(report.ok());
}

TEST(RobustRunnerTest, PerQueryBudgetGivesUpAfterTimeoutCap) {
  std::vector<FaultSpec> plan;
  std::string error;
  // Every probe stalls: a deterministic hang should cost at most
  // max_query_timeouts budgets, then the stage gives up.
  ASSERT_TRUE(
      ParseFaultPlan("postgres:estimate:delay:delay=0.6", &plan, &error));
  robust::RobustOptions options = FastOptions();
  options.query_deadline_seconds = 0.05;
  options.max_query_timeouts = 2;
  options.fallback.clear();
  const auto report = robust::EvaluateOnDatasetRobust(
      "postgres",
      [&plan] { return WrapWithFaults(FastBase(), plan); },
      Shared().table, Shared().train, Shared().test, options);
  EXPECT_TRUE(report.served_by.empty());
  EXPECT_EQ(report.qerror.p50, kInvalidQError);
  // Two per-query timeout records plus the give-up record.
  ASSERT_EQ(report.failures.size(), 3u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kEstimateTimeout);
  EXPECT_EQ(report.failures[1].kind, FailureKind::kEstimateTimeout);
  EXPECT_NE(report.failures[2].detail.find("gave up"), std::string::npos);
}

}  // namespace
}  // namespace arecel
