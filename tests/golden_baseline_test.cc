// Golden q-error baseline gate: re-measures every registry estimator's
// accuracy quantiles on the pinned golden workload and compares them to the
// recorded baselines in tests/golden/*.json. Regenerate deliberately with
// scripts/update_golden.sh after an intended accuracy change.
//
// ARECEL_GOLDEN_DIR is compiled in by tests/CMakeLists.txt and points at
// the source-tree tests/golden directory.

#include <cstddef>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "testing/golden.h"

#ifndef ARECEL_GOLDEN_DIR
#define ARECEL_GOLDEN_DIR "tests/golden"
#endif

namespace arecel {
namespace {

class GoldenBaselineTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    config_ = new GoldenConfig(DefaultGoldenConfig());
    fixture_ = new ConformanceFixture(BuildConformanceFixture(config_->fixture));
    eval_ = new Workload(BuildGoldenEvalWorkload(*fixture_, *config_));
  }
  static void TearDownTestSuite() {
    delete eval_;
    delete fixture_;
    delete config_;
    eval_ = nullptr;
    fixture_ = nullptr;
    config_ = nullptr;
  }
  static GoldenConfig* config_;
  static ConformanceFixture* fixture_;
  static Workload* eval_;
};

GoldenConfig* GoldenBaselineTest::config_ = nullptr;
ConformanceFixture* GoldenBaselineTest::fixture_ = nullptr;
Workload* GoldenBaselineTest::eval_ = nullptr;

TEST_P(GoldenBaselineTest, MatchesRecordedBaseline) {
  const std::string name = GetParam();
  const std::string path =
      std::string(ARECEL_GOLDEN_DIR) + "/" + GoldenFileName(name);

  GoldenBaseline recorded;
  ASSERT_TRUE(ReadGoldenBaseline(path, &recorded))
      << "missing or unparsable golden baseline " << path
      << " — run scripts/update_golden.sh to (re)generate";
  EXPECT_EQ(recorded.estimator, name);
  EXPECT_EQ(recorded.seed, config_->fixture.seed);
  ASSERT_EQ(recorded.num_queries, eval_->size())
      << "pinned golden workload changed; regenerate baselines";

  const GoldenBaseline measured =
      ComputeGoldenBaseline(name, *fixture_, *eval_, *config_);
  const GoldenCheckResult check =
      CompareToGolden(measured.qerror, recorded, config_->band);
  EXPECT_TRUE(check.passed)
      << name << " drifted from golden baseline: " << check.detail
      << "\n(if intended, regenerate with scripts/update_golden.sh)";
}

INSTANTIATE_TEST_SUITE_P(Registry, GoldenBaselineTest,
                         ::testing::ValuesIn(AllRegistryNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// The feedback-loop convergence gate (DESIGN.md §11): replays the pinned
// 1000-query workload through feedback-corrected prequentially, compares
// the per-phase medians to tests/golden/feedback.json, and enforces the
// adaptivity acceptance criterion — the curve converges and the converged
// loop beats the uncorrected base median — on the freshly measured numbers.
TEST(FeedbackGoldenTest, ConvergenceCurveMatchesRecordedBaseline) {
  const GoldenConfig config = DefaultGoldenConfig();
  const ConformanceFixture fixture = BuildConformanceFixture(config.fixture);
  const std::string path = std::string(ARECEL_GOLDEN_DIR) + "/feedback.json";

  FeedbackGoldenCurve recorded;
  ASSERT_TRUE(ReadFeedbackGoldenCurve(path, &recorded))
      << "missing or unparsable feedback curve " << path
      << " — run scripts/update_golden.sh to (re)generate";
  EXPECT_EQ(recorded.estimator, "feedback-corrected");
  EXPECT_EQ(recorded.seed, config.fixture.seed);
  ASSERT_EQ(recorded.replay_queries, config.feedback.replay_queries)
      << "pinned feedback replay changed; regenerate baselines";
  ASSERT_EQ(recorded.phase_medians.size(), config.feedback.phases);

  const FeedbackGoldenCurve measured =
      ComputeFeedbackGoldenCurve(fixture, config);
  EXPECT_EQ(measured.base, recorded.base);
  const GoldenCheckResult check =
      CompareFeedbackCurveToGolden(measured, recorded, config.band);
  EXPECT_TRUE(check.passed)
      << "feedback curve drifted from golden baseline: " << check.detail
      << "\n(if intended, regenerate with scripts/update_golden.sh)";

  const GoldenCheckResult shape = CheckFeedbackCurveShape(measured);
  EXPECT_TRUE(shape.passed) << shape.detail;
}

TEST(GoldenHarnessTest, FeedbackCurveJsonRoundTrips) {
  FeedbackGoldenCurve c;
  c.estimator = "feedback-corrected";
  c.base = "postgres";
  c.dataset = "conformance";
  c.seed = 101;
  c.replay_queries = 1000;
  c.phase_medians = {3.5, 2.25, 1.75, 1.5, 1.25};
  c.base_median = 3.75;
  const std::string path = ::testing::TempDir() + "/feedback_roundtrip.json";
  ASSERT_TRUE(WriteFeedbackGoldenCurve(c, path));
  FeedbackGoldenCurve back;
  ASSERT_TRUE(ReadFeedbackGoldenCurve(path, &back));
  EXPECT_EQ(back.estimator, c.estimator);
  EXPECT_EQ(back.base, c.base);
  EXPECT_EQ(back.dataset, c.dataset);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.replay_queries, c.replay_queries);
  ASSERT_EQ(back.phase_medians.size(), c.phase_medians.size());
  for (size_t p = 0; p < c.phase_medians.size(); ++p)
    EXPECT_DOUBLE_EQ(back.phase_medians[p], c.phase_medians[p]);
  EXPECT_DOUBLE_EQ(back.base_median, c.base_median);
  std::remove(path.c_str());

  // The shape gate fires on a flat curve and on one that loses to the base.
  EXPECT_TRUE(CheckFeedbackCurveShape(c).passed);
  FeedbackGoldenCurve flat = c;
  flat.phase_medians = {2.0, 2.0, 2.0, 2.0, 2.0};
  EXPECT_FALSE(CheckFeedbackCurveShape(flat).passed);
  FeedbackGoldenCurve losing = c;
  losing.base_median = 1.0;
  EXPECT_FALSE(CheckFeedbackCurveShape(losing).passed);
}

TEST(GoldenHarnessTest, BaselineJsonRoundTrips) {
  GoldenBaseline b;
  b.estimator = "kde-fb";
  b.dataset = "conformance";
  b.seed = 101;
  b.num_queries = 200;
  b.qerror = {1.5, 12.25, 80.0, 1234.5};
  const std::string path = ::testing::TempDir() + "/golden_roundtrip.json";
  ASSERT_TRUE(WriteGoldenBaseline(b, path));
  GoldenBaseline back;
  ASSERT_TRUE(ReadGoldenBaseline(path, &back));
  EXPECT_EQ(back.estimator, b.estimator);
  EXPECT_EQ(back.dataset, b.dataset);
  EXPECT_EQ(back.seed, b.seed);
  EXPECT_EQ(back.num_queries, b.num_queries);
  EXPECT_DOUBLE_EQ(back.qerror.p50, b.qerror.p50);
  EXPECT_DOUBLE_EQ(back.qerror.p95, b.qerror.p95);
  EXPECT_DOUBLE_EQ(back.qerror.p99, b.qerror.p99);
  EXPECT_DOUBLE_EQ(back.qerror.max, b.qerror.max);
  std::remove(path.c_str());
}

TEST(GoldenHarnessTest, MissingFileIsRejected) {
  GoldenBaseline b;
  EXPECT_FALSE(
      ReadGoldenBaseline("/nonexistent/golden/nowhere.json", &b));
}

TEST(GoldenHarnessTest, PerturbedBaselineFails) {
  // The acceptance demonstration: nudge a recorded quantile outside the
  // band and the check must fire in both directions.
  QuantileSummary actual{2.0, 10.0, 50.0, 400.0};
  GoldenBaseline recorded;
  recorded.qerror = actual;
  const double band = 1.25;
  EXPECT_TRUE(CompareToGolden(actual, recorded, band).passed);

  GoldenBaseline regressed = recorded;
  regressed.qerror.p95 = actual.p95 / (band * 1.5);  // actual now too high.
  const GoldenCheckResult worse = CompareToGolden(actual, regressed, band);
  EXPECT_FALSE(worse.passed);
  EXPECT_NE(worse.detail.find("p95"), std::string::npos);

  GoldenBaseline improved = recorded;
  improved.qerror.max = actual.max * band * 2.0;  // actual suspiciously low.
  const GoldenCheckResult better = CompareToGolden(actual, improved, band);
  EXPECT_FALSE(better.passed);
  EXPECT_NE(better.detail.find("max"), std::string::npos);
}

TEST(GoldenHarnessTest, EdgeOfBandPasses) {
  QuantileSummary actual{2.0, 10.0, 50.0, 400.0};
  GoldenBaseline recorded;
  recorded.qerror = {2.0 * 1.2, 10.0 / 1.2, 50.0, 400.0};
  EXPECT_TRUE(CompareToGolden(actual, recorded, 1.25).passed);
  EXPECT_FALSE(CompareToGolden(actual, recorded, 1.1).passed);
}

TEST(GoldenHarnessTest, InvalidBandRejected) {
  QuantileSummary actual{1, 1, 1, 1};
  GoldenBaseline recorded;
  recorded.qerror = actual;
  EXPECT_FALSE(CompareToGolden(actual, recorded, 0.5).passed);
}

TEST(GoldenHarnessTest, FileNameMapsDashes) {
  EXPECT_EQ(GoldenFileName("lw-xgb"), "lw_xgb.json");
  EXPECT_EQ(GoldenFileName("postgres"), "postgres.json");
}

}  // namespace
}  // namespace arecel
