// Serving-layer contract tests (src/serve/): cache canonicalization,
// single-flight cold loads, LRU eviction order, the per-request deadline's
// failure taxonomy, post-update invalidation + stale-while-revalidate
// refresh equivalence, and a concurrent smoke designed for the TSan preset
// (scripts/run_sanitized_tests.sh matches these suites by the "Serve" in
// their names).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "core/registry.h"
#include "data/datasets.h"
#include "serve/cache.h"
#include "serve/model_manager.h"
#include "serve/server.h"
#include "store/maintenance_worker.h"
#include "store/model_store.h"
#include "workload/generator.h"

namespace arecel::serve {
namespace {

Table SmallTable(uint64_t seed = 5) {
  return GenerateSynthetic2D(/*rows=*/3000, /*skew=*/1.0,
                             /*correlation=*/0.6, /*domain_size=*/40, seed);
}

Query MakeQuery(std::vector<Predicate> predicates) {
  Query query;
  query.predicates = std::move(predicates);
  return query;
}

// Test double whose train and estimate latencies are programmable; used to
// force single-flight overlap and deadline expiry deterministically.
class StubEstimator : public CardinalityEstimator {
 public:
  StubEstimator(double train_ms, double estimate_ms, bool thread_safe)
      : train_ms_(train_ms),
        estimate_ms_(estimate_ms),
        thread_safe_(thread_safe) {}

  std::string Name() const override { return "stub"; }

  void Train(const Table& table, const TrainContext& context) override {
    (void)table;
    (void)context;
    if (train_ms_ > 0)
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(train_ms_ * 1000)));
  }

  double EstimateSelectivity(const Query& query) const override {
    (void)query;
    if (estimate_ms_ > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(estimate_ms_ * 1000)));
    return 0.25;
  }

  size_t SizeBytes() const override { return 8; }
  bool ThreadSafeEstimates() const override { return thread_safe_; }

 private:
  double train_ms_;
  double estimate_ms_;
  bool thread_safe_;
};

ServeEstimatorFactory StubFactory(double train_ms, double estimate_ms,
                                  bool thread_safe = true) {
  return [=](const std::string&) {
    return std::make_unique<StubEstimator>(train_ms, estimate_ms,
                                           thread_safe);
  };
}

// ---------------------------------------------------------------------------
// Cache key canonicalization.

TEST(ServeCacheKeyTest, PredicateOrderDoesNotChangeTheKey) {
  const Query a = MakeQuery({{2, 1.0, 5.0}, {0, 3.0, 3.0}, {7, -4.0, 9.0}});
  const Query b = MakeQuery({{0, 3.0, 3.0}, {7, -4.0, 9.0}, {2, 1.0, 5.0}});
  EXPECT_EQ(CanonicalPredicateKey(a), CanonicalPredicateKey(b));
}

TEST(ServeCacheKeyTest, NegativeZeroBoundsCollapse) {
  const Query a = MakeQuery({{1, -0.0, 2.0}});
  const Query b = MakeQuery({{1, 0.0, 2.0}});
  EXPECT_EQ(CanonicalPredicateKey(a), CanonicalPredicateKey(b));
}

TEST(ServeCacheKeyTest, DifferentBoundsColumnsVersionsDiffer) {
  const Query base = MakeQuery({{1, 2.0, 8.0}});
  EXPECT_NE(CanonicalPredicateKey(base),
            CanonicalPredicateKey(MakeQuery({{1, 2.0, 9.0}})));
  EXPECT_NE(CanonicalPredicateKey(base),
            CanonicalPredicateKey(MakeQuery({{2, 2.0, 8.0}})));
  // Same predicates, bumped data version: distinct entries by construction.
  EXPECT_NE(EstimateCacheKey("t", "e", 0, base),
            EstimateCacheKey("t", "e", 1, base));
  // Dataset prefix is shared, so invalidation can address all of "t".
  const std::string key = EstimateCacheKey("t", "e", 0, base);
  EXPECT_EQ(key.compare(0, DatasetKeyPrefix("t").size(),
                        DatasetKeyPrefix("t")),
            0);
}

// Duplicate predicates on one column must NOT be merged: estimators answer
// the literal conjunct list, and the cache contract is bit-identical
// replay of what was served.
TEST(ServeCacheKeyTest, DuplicateColumnsAreNotMerged) {
  const Query twice = MakeQuery({{1, 2.0, 8.0}, {1, 3.0, 9.0}});
  const Query merged = MakeQuery({{1, 3.0, 8.0}});
  EXPECT_NE(CanonicalPredicateKey(twice), CanonicalPredicateKey(merged));
}

// Regression for the single-vs-join fingerprint aliasing: a single-table
// Query and a join query carrying the identical predicate list must never
// share a cache key — the table-set prefix (count + names) keeps the two
// keyspaces disjoint by construction.
TEST(ServeCacheKeyTest, SingleTableAndJoinKeysNeverCollide) {
  const std::vector<Predicate> predicates = {{0, 2.0, 8.0}, {1, 3.0, 3.0}};
  const Query single = MakeQuery(predicates);

  JoinQuery one_table;
  one_table.tables.push_back({"fact", predicates});
  EXPECT_NE(CanonicalPredicateKey(single), CanonicalJoinKey(one_table));
  EXPECT_NE(EstimateCacheKey("d", "e", 0, single),
            JoinEstimateCacheKey("d", "e", 0, one_table));

  JoinQuery star;
  star.tables.push_back({"fact", predicates});
  star.tables.push_back({"dim0", {}});
  star.joins.push_back({"fact", 0, "dim0", 0});
  EXPECT_NE(CanonicalPredicateKey(single), CanonicalJoinKey(star));
  // And the two join shapes differ from each other: table set is part of
  // the fingerprint.
  EXPECT_NE(CanonicalJoinKey(one_table), CanonicalJoinKey(star));
}

// The join fingerprint canonicalizes table order, per-table predicate
// order, and edge orientation — the equivalence classes a planner-issued
// repeat of the same semantic query falls into.
TEST(ServeCacheKeyTest, JoinKeyIsCanonicalOverOrderAndOrientation) {
  JoinQuery a;
  a.tables.push_back({"fact", {{0, 1.0, 5.0}, {2, 3.0, 4.0}}});
  a.tables.push_back({"dim0", {{1, 2.0, 2.0}}});
  a.joins.push_back({"fact", 0, "dim0", 0});

  JoinQuery b;
  b.tables.push_back({"dim0", {{1, 2.0, 2.0}}});
  b.tables.push_back({"fact", {{2, 3.0, 4.0}, {0, 1.0, 5.0}}});
  b.joins.push_back({"dim0", 0, "fact", 0});  // reversed edge orientation.
  EXPECT_EQ(CanonicalJoinKey(a), CanonicalJoinKey(b));

  // A different edge is a different key even with identical tables.
  JoinQuery c = a;
  c.joins[0].right_column = 1;
  EXPECT_NE(CanonicalJoinKey(a), CanonicalJoinKey(c));
}

// ---------------------------------------------------------------------------
// LRU eviction.

TEST(ServeCacheLruTest, EvictsLeastRecentlyUsedFirst) {
  // One shard so the LRU order is global. Each 1-char key costs 97
  // approximate bytes; capacity fits exactly three entries.
  EstimateCache cache(/*capacity_bytes=*/3 * 97, /*num_shards=*/1);
  cache.Insert("A", 0.1);
  cache.Insert("B", 0.2);
  cache.Insert("C", 0.3);

  double got = 0.0;
  ASSERT_TRUE(cache.Lookup("A", &got));  // A is now most-recent.
  EXPECT_DOUBLE_EQ(got, 0.1);

  cache.Insert("D", 0.4);  // evicts B, the least recently used.
  EXPECT_FALSE(cache.Lookup("B", &got));
  EXPECT_TRUE(cache.Lookup("A", &got));
  EXPECT_TRUE(cache.Lookup("C", &got));
  EXPECT_TRUE(cache.Lookup("D", &got));

  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(ServeCacheLruTest, ZeroCapacityDisablesCaching) {
  EstimateCache cache(/*capacity_bytes=*/0);
  cache.Insert("A", 0.1);
  double got = 0.0;
  EXPECT_FALSE(cache.Lookup("A", &got));
  EXPECT_EQ(cache.Stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Single-flight cold load.

TEST(ServeSingleFlightTest, ConcurrentColdRequestsTrainOnce) {
  ModelManagerOptions options;
  options.factory = StubFactory(/*train_ms=*/150, /*estimate_ms=*/0);
  ModelManager manager(options);
  manager.RegisterDataset("t", SmallTable());

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const ServedModel>> models(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back(
        [&manager, &models, i] { models[i] = manager.GetModel("t", "stub"); });
  for (std::thread& thread : threads) thread.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(models[i], nullptr);
    EXPECT_EQ(models[i], models[0]) << "thread " << i
                                    << " got a different instance";
  }
  const ManagerCounters counters = manager.counters();
  EXPECT_EQ(counters.cold_trains, 1u);
  EXPECT_GE(counters.single_flight_waits, 1u);
}

TEST(ServeSingleFlightTest, FailedLoadIsForgottenAndRetried) {
  ModelManagerOptions options;
  int calls = 0;
  options.factory = [&calls](const std::string&)
      -> std::unique_ptr<CardinalityEstimator> {
    if (++calls == 1) throw std::runtime_error("flaky construction");
    return std::make_unique<StubEstimator>(0, 0, true);
  };
  ModelManager manager(options);
  manager.RegisterDataset("t", SmallTable());

  std::string error;
  EXPECT_EQ(manager.GetModel("t", "stub", &error), nullptr);
  EXPECT_NE(error.find("flaky construction"), std::string::npos);
  EXPECT_NE(manager.GetModel("t", "stub"), nullptr);  // retried, not stuck.
}

// ---------------------------------------------------------------------------
// Deadline -> failure taxonomy.

TEST(ServeDeadlineTest, TimeoutMapsToEstimateTimeout) {
  ServeOptions options;
  options.robust.query_deadline_seconds = 0.05;
  options.manager.factory =
      StubFactory(/*train_ms=*/0, /*estimate_ms=*/500);
  EstimatorServer server(options);
  server.RegisterDataset("t", SmallTable());

  const EstimateResponse response =
      server.Estimate("t", "stub", MakeQuery({{0, 1.0, 5.0}}));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.failure, FailureKind::kEstimateTimeout);
  EXPECT_EQ(server.Stats().deadline_exceeded, 1u);

  // The stub is thread-safe, so the model entry survives the timeout.
  EXPECT_EQ(server.Stats().manager.evictions, 0u);
  // Let the abandoned worker drain before the server (and its model) can
  // be torn down safely at process exit.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
}

TEST(ServeDeadlineTest, TimeoutOnSerializedModelEvictsTheEntry) {
  ServeOptions options;
  options.robust.query_deadline_seconds = 0.05;
  options.manager.factory =
      StubFactory(/*train_ms=*/0, /*estimate_ms=*/400, /*thread_safe=*/false);
  EstimatorServer server(options);
  server.RegisterDataset("t", SmallTable());

  const EstimateResponse response =
      server.Estimate("t", "stub", MakeQuery({{0, 1.0, 5.0}}));
  EXPECT_EQ(response.failure, FailureKind::kEstimateTimeout);
  // The abandoned worker may still hold the model's inference mutex, so
  // the entry was retired; the next request gets a fresh instance.
  EXPECT_EQ(server.Stats().manager.evictions, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
}

TEST(ServeDeadlineTest, ThrowMapsToEstimateThrew) {
  class ThrowingEstimator : public StubEstimator {
   public:
    ThrowingEstimator() : StubEstimator(0, 0, true) {}
    double EstimateSelectivity(const Query&) const override {
      throw std::runtime_error("inference exploded");
    }
  };
  ServeOptions options;
  options.manager.factory = [](const std::string&) {
    return std::make_unique<ThrowingEstimator>();
  };
  EstimatorServer server(options);
  server.RegisterDataset("t", SmallTable());

  const EstimateResponse response =
      server.Estimate("t", "stub", MakeQuery({{0, 1.0, 5.0}}));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.failure, FailureKind::kEstimateThrew);
  EXPECT_NE(response.detail.find("inference exploded"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serving behavior: cache hits, persistence, update + refresh.

TEST(ServeServerTest, RepeatAndPermutedQueriesHitTheCache) {
  ServeOptions options;
  EstimatorServer server(options);
  server.RegisterDataset("t", SmallTable());

  const Query a = MakeQuery({{0, 2.0, 9.0}, {1, 1.0, 4.0}});
  const Query permuted = MakeQuery({{1, 1.0, 4.0}, {0, 2.0, 9.0}});

  const EstimateResponse miss = server.Estimate("t", "sampling", a);
  ASSERT_TRUE(miss.ok);
  EXPECT_FALSE(miss.cache_hit);

  const EstimateResponse hit = server.Estimate("t", "sampling", permuted);
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cache_hit);
  // Bit-identical replay, not merely approximately equal.
  EXPECT_EQ(hit.selectivity, miss.selectivity);
  EXPECT_EQ(server.Stats().cache.hits, 1u);
}

TEST(ServeServerTest, BatchMatchesSingleRequests) {
  ServeOptions options;
  options.dispatch_threads = 4;  // force the fan-out path even on 1 core.
  options.cache_enabled = false;
  EstimatorServer server(options);
  server.RegisterDataset("t", SmallTable());

  const Table table = SmallTable();
  const std::vector<Query> queries = GenerateQueries(table, 64, /*seed=*/3);
  const auto batched = server.EstimateBatch("t", "sampling", queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const EstimateResponse single =
        server.Estimate("t", "sampling", queries[i]);
    ASSERT_TRUE(batched[i].ok);
    EXPECT_EQ(batched[i].selectivity, single.selectivity) << "query " << i;
  }
  EXPECT_EQ(server.Stats().batches, 1u);
}

TEST(ServeServerTest, PersistedModelIsLoadedBySecondManager) {
  const std::string dir = ::testing::TempDir() + "serve_models";
  std::remove((dir + "/t.sampling.model").c_str());
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);

  ModelManagerOptions options;
  options.model_dir = dir;
  const Query probe = MakeQuery({{0, 2.0, 9.0}});
  double trained_sel = 0.0;
  {
    ModelManager manager(options);
    manager.RegisterDataset("t", SmallTable());
    auto model = manager.GetModel("t", "sampling");
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->source, "trained");
    EXPECT_EQ(manager.counters().model_saves, 1u);
    trained_sel = model->estimator->EstimateSelectivity(probe);
  }
  {
    ModelManager manager(options);
    manager.RegisterDataset("t", SmallTable());
    auto model = manager.GetModel("t", "sampling");
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->source, "loaded");
    EXPECT_EQ(manager.counters().cold_trains, 0u);
    EXPECT_EQ(model->estimator->EstimateSelectivity(probe), trained_sel);
  }
}

TEST(ServeUpdateTest, UpdateInvalidatesAndRefreshMatchesManualRetrain) {
  ServeOptions options;
  EstimatorServer server(options);
  server.RegisterDataset("t", SmallTable(/*seed=*/5));

  const Query query = MakeQuery({{0, 2.0, 9.0}, {1, 1.0, 4.0}});
  const EstimateResponse before = server.Estimate("t", "sampling", query);
  ASSERT_TRUE(before.ok);
  EXPECT_EQ(before.data_version, 0u);
  ASSERT_TRUE(server.Estimate("t", "sampling", query).cache_hit);

  const uint64_t version = server.Update("t", /*seed=*/97);
  EXPECT_EQ(version, 1u);
  server.WaitForRefreshes();

  const EstimateResponse after = server.Estimate("t", "sampling", query);
  ASSERT_TRUE(after.ok);
  EXPECT_FALSE(after.cache_hit) << "update must invalidate the dataset";
  EXPECT_EQ(after.data_version, 1u);
  EXPECT_EQ(server.Stats().manager.refreshes, 1u);
  EXPECT_GE(server.Stats().cache.invalidations, 1u);

  // The refreshed model must match a manual retrain at the same version
  // exactly: same updated table (§5.1 append, same fraction and seed) and
  // the same per-version training seed.
  Table manual = AppendCorrelatedUpdate(SmallTable(/*seed=*/5),
                                        options.update_fraction, 97);
  auto fresh = MakeEstimator("sampling");
  TrainContext context;
  context.seed = TrainSeedForVersion(options.manager.train_seed, version);
  fresh->Train(manual, context);
  EXPECT_EQ(after.selectivity, fresh->EstimateSelectivity(query));
  EXPECT_EQ(after.cardinality,
            fresh->EstimateSelectivity(query) *
                static_cast<double>(manual.num_rows()));
}

TEST(ServeUpdateTest, StaleModelServesWhileRefreshRuns) {
  ServeOptions options;
  options.manager.factory =
      StubFactory(/*train_ms=*/200, /*estimate_ms=*/0);
  EstimatorServer server(options);
  server.RegisterDataset("t", SmallTable());

  const Query query = MakeQuery({{0, 1.0, 5.0}});
  ASSERT_TRUE(server.Estimate("t", "stub", query).ok);

  server.Update("t");
  // Refresh needs ~200ms; the stale model must answer immediately.
  const EstimateResponse stale = server.Estimate("t", "stub", query);
  ASSERT_TRUE(stale.ok);
  EXPECT_EQ(stale.data_version, 0u);

  server.WaitForRefreshes();
  const EstimateResponse fresh = server.Estimate("t", "stub", query);
  ASSERT_TRUE(fresh.ok);
  EXPECT_EQ(fresh.data_version, 1u);
}

// ---------------------------------------------------------------------------
// Concurrent smoke for the TSan preset: readers, batch readers, and an
// updater hammer one server; the invariant is simply "no data race, every
// completed request is well-formed".

TEST(ServeConcurrencyTest, ConcurrentEstimateBatchAndUpdateSmoke) {
  ServeOptions options;
  options.dispatch_threads = 2;
  EstimatorServer server(options);
  server.RegisterDataset("t", SmallTable());

  const Table table = SmallTable();
  const std::vector<Query> queries = GenerateQueries(table, 32, /*seed=*/9);

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int reader = 0; reader < 3; ++reader) {
    threads.emplace_back([&server, &queries, &failed, reader] {
      for (int i = 0; i < 40; ++i) {
        if (reader == 0 && i % 4 == 0) {
          const auto responses = server.EstimateBatch(
              "t", "sampling",
              std::vector<Query>(queries.begin(), queries.begin() + 16));
          for (const auto& response : responses)
            if (!response.ok) failed.store(true);
        } else {
          const auto response = server.Estimate(
              "t", "sampling", queries[static_cast<size_t>(i) % queries.size()]);
          if (!response.ok) failed.store(true);
          if (response.ok &&
              (response.selectivity < 0.0 || response.selectivity > 1.0))
            failed.store(true);
        }
      }
    });
  }
  threads.emplace_back([&server] {
    for (int i = 0; i < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      server.Update("t", /*seed=*/100 + static_cast<uint64_t>(i));
    }
  });
  for (std::thread& thread : threads) thread.join();
  server.WaitForRefreshes();

  EXPECT_FALSE(failed.load());
  const ServerStats stats = server.Stats();
  EXPECT_GE(stats.requests, 100u);
  EXPECT_EQ(stats.estimate_errors, 0u);
  EXPECT_EQ(stats.updates, 2u);
  EXPECT_EQ(stats.manager.refresh_failures, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end store wiring: a server constructed with a model store gets an
// embedded maintenance worker, write-back lands in the store, and a second
// server over the same directory warm-starts from disk instead of training.

TEST(ServeStoreWiringTest, WarmRestartThroughConfiguredStore) {
  const std::string dir = ::testing::TempDir() + "arecel_serve_store_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);

  const Query query = MakeQuery({{0, 2.0, 20.0}});
  {
    ServeOptions options;
    store::StoreOptions store_options;
    store_options.root_dir = dir;
    options.manager.store =
        std::make_shared<store::ModelStore>(store_options);
    EstimatorServer server(options);
    ASSERT_NE(server.maintenance(), nullptr);
    server.RegisterDataset("t", SmallTable());

    const EstimateResponse response = server.Estimate("t", "postgres", query);
    ASSERT_TRUE(response.ok);
    server.maintenance()->TickNow();  // drain the cold train's save-back.

    const ServerStats stats = server.Stats();
    ASSERT_TRUE(stats.store_enabled);
    EXPECT_GE(stats.store.commits, 1u);
    EXPECT_GE(stats.manager.saves_enqueued, 1u);
    EXPECT_EQ(stats.manager.corrupt_loads, 0u);
  }
  {
    ServeOptions options;
    store::StoreOptions store_options;
    store_options.root_dir = dir;
    options.manager.store =
        std::make_shared<store::ModelStore>(store_options);
    EstimatorServer server(options);
    server.RegisterDataset("t", SmallTable());

    const EstimateResponse response = server.Estimate("t", "postgres", query);
    ASSERT_TRUE(response.ok);
    const ServerStats stats = server.Stats();
    EXPECT_EQ(stats.manager.cold_trains, 0u);
    EXPECT_GE(stats.manager.persisted_loads, 1u);
    EXPECT_GE(stats.store.hits, 1u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace arecel::serve
