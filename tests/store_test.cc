// Crash-safety tests for the versioned model store (src/store/): the
// kill-point matrix (every injected fault at every write stage, then a
// reopen that must serve the last committed generation), quarantine /
// restore round-trips, garbage collection, fault-plan parsing, and the
// store-never-serves-corrupt invariant. The TSan preset matches these
// suites by the "Store" in their names.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "store/model_store.h"
#include "store/store_faults.h"
#include "util/crc32c.h"

namespace arecel::store {
namespace {

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  const std::string dir =
      ::testing::TempDir() + "arecel_store_" + tag + "_" +
      std::to_string(::getpid()) + "_" + std::to_string(counter++);
  return dir;
}

StoreOptions Opts(const std::string& dir,
                  std::vector<StoreFaultSpec> plan = {},
                  size_t max_generations = 4) {
  StoreOptions options;
  options.root_dir = dir;
  options.max_generations = max_generations;
  options.fault_plan = std::move(plan);
  return options;
}

std::string Payload(char fill, size_t n = 200) { return std::string(n, fill); }

TEST(StoreTest, PutGetRoundTrip) {
  ModelStore store(Opts(UniqueDir("roundtrip")));
  uint64_t gen = 0;
  ASSERT_TRUE(store.Put("census", "naru", Payload('a'), &gen));
  EXPECT_EQ(gen, 1u);

  std::string payload;
  uint64_t got_gen = 0;
  ASSERT_TRUE(store.Get("census", "naru", &payload, &got_gen));
  EXPECT_EQ(payload, Payload('a'));
  EXPECT_EQ(got_gen, 1u);

  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.recoveries, 0u);
}

TEST(StoreTest, MissOnEmptyEntry) {
  ModelStore store(Opts(UniqueDir("miss")));
  std::string payload;
  EXPECT_FALSE(store.Get("census", "naru", &payload));
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(StoreTest, GenerationsRollAndGc) {
  ModelStore store(Opts(UniqueDir("gc"), {}, /*max_generations=*/2));
  for (char c : {'a', 'b', 'c', 'd'})
    ASSERT_TRUE(store.Put("census", "naru", Payload(c)));

  std::string payload;
  uint64_t gen = 0;
  ASSERT_TRUE(store.Get("census", "naru", &payload, &gen));
  EXPECT_EQ(gen, 4u);
  EXPECT_EQ(payload, Payload('d'));
  EXPECT_EQ(store.stats().gc_removed, 2u);

  size_t live = 0;
  for (const GenerationInfo& info : store.ListGenerations("census", "naru"))
    if (!info.quarantined) ++live;
  EXPECT_EQ(live, 2u);
}

TEST(StoreTest, QuarantineAndRestore) {
  const std::string dir = UniqueDir("restore");
  ModelStore store(Opts(dir));
  ASSERT_TRUE(store.Put("census", "naru", Payload('a')));
  ASSERT_TRUE(store.Put("census", "naru", Payload('b')));

  // Quarantining the committed generation makes recovery fall back.
  ASSERT_TRUE(store.QuarantineGeneration("census", "naru", 2));
  std::string payload;
  uint64_t gen = 0;
  ASSERT_TRUE(store.Get("census", "naru", &payload, &gen));
  EXPECT_EQ(gen, 1u);
  EXPECT_EQ(payload, Payload('a'));
  EXPECT_EQ(store.stats().recoveries, 1u);

  // Restore re-verifies the record and advances the manifest back to it.
  ASSERT_TRUE(store.RestoreQuarantined("census", "naru", 2));
  ASSERT_TRUE(store.Get("census", "naru", &payload, &gen));
  EXPECT_EQ(gen, 2u);
  EXPECT_EQ(payload, Payload('b'));
}

TEST(StoreTest, RestoreRefusesCorruptRecord) {
  const std::string dir = UniqueDir("refuse");
  ModelStore store(Opts(dir));
  ASSERT_TRUE(store.Put("census", "naru", Payload('a')));
  ASSERT_TRUE(store.QuarantineGeneration("census", "naru", 1));

  // Truncate the quarantined record; restore must refuse it.
  const std::string path = dir + "/census.naru/quarantine/gen-1.model";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "AMS1";
  }
  EXPECT_FALSE(store.RestoreQuarantined("census", "naru", 1));
}

TEST(StoreTest, NeverServesCorruptWhenEverythingRots) {
  const std::string dir = UniqueDir("allrot");
  {
    ModelStore store(Opts(dir));
    ASSERT_TRUE(store.Put("census", "naru", Payload('a')));
    ASSERT_TRUE(store.Put("census", "naru", Payload('b')));
  }
  // Flip a payload byte in every live record on disk.
  for (uint64_t gen : {1, 2}) {
    const std::string path =
        dir + "/census.naru/gen-" + std::to_string(gen) + ".model";
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(60);
    f.put('X');
  }
  ModelStore reopened(Opts(dir));
  std::string payload;
  EXPECT_FALSE(reopened.Get("census", "naru", &payload));
  const StoreStats stats = reopened.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.checksum_failures, 2u);
  EXPECT_EQ(stats.quarantined_generations, 2u);
}

TEST(StoreTest, VerifyAllReportsLiveCorruption) {
  const std::string dir = UniqueDir("verify");
  ModelStore store(Opts(dir));
  ASSERT_TRUE(store.Put("census", "naru", Payload('a')));
  {
    std::fstream f(dir + "/census.naru/gen-1.model",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    f.put('!');
  }
  std::vector<std::string> problems;
  EXPECT_EQ(store.VerifyAll(&problems), 1u);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("census.naru"), std::string::npos);
}

TEST(StoreFaultTest, PlanParsingIgnoresEstimatorSpecs) {
  std::vector<StoreFaultSpec> plan;
  std::string error;
  ASSERT_TRUE(ParseStoreFaultPlan(
      "naru:train:throw;store-torn-write:after=1:times=2,store-bitflip",
      &plan, &error));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].kind, StoreFaultKind::kTornWrite);
  EXPECT_EQ(plan[0].after_ops, 1);
  EXPECT_EQ(plan[0].times, 2);
  EXPECT_EQ(plan[1].kind, StoreFaultKind::kBitflip);

  EXPECT_FALSE(ParseStoreFaultPlan("store-enospc:bogus", &plan, &error));
  EXPECT_FALSE(ParseStoreFaultPlan("store-enospc:depth=3", &plan, &error));
}

TEST(StoreFaultTest, InjectorRespectsAfterAndTimes) {
  StoreFaultInjector injector(
      {StoreFaultSpec{StoreFaultKind::kEnospc, /*after_ops=*/1, /*times=*/2}});
  EXPECT_FALSE(injector.Fire(StoreFaultKind::kEnospc));  // op 0 < after.
  EXPECT_TRUE(injector.Fire(StoreFaultKind::kEnospc));   // op 1.
  EXPECT_TRUE(injector.Fire(StoreFaultKind::kEnospc));   // op 2.
  EXPECT_FALSE(injector.Fire(StoreFaultKind::kEnospc));  // times exhausted.
  EXPECT_FALSE(injector.Fire(StoreFaultKind::kTornWrite));  // other kind.
}

// --- The kill-point matrix -------------------------------------------------
//
// For every fault kind at every write stage of a Put: commit payload A
// cleanly, attempt payload B under the scheduled fault, then REOPEN the
// store (a fresh instance over the same directory, fault-free — the crashed
// process is gone) and demand that Get serves an intact committed payload.
// Write-op indices within one Put: 0 = gen record, 1 = manifest. Rename-op
// indices: 0 = gen record, 1 = manifest.

struct KillPoint {
  const char* name;
  StoreFaultKind kind;
  int after_ops;
  bool put_reports_ok;   // torn writes and bitflips lie about success.
  char expected_fill;    // which payload the reopen must serve.
  uint64_t expected_gen;
  bool expect_recovery;  // reopen had to fall back / adopt.
};

class StoreKillPointTest : public ::testing::TestWithParam<KillPoint> {};

TEST_P(StoreKillPointTest, ReopenServesLastCommittedGeneration) {
  const KillPoint kp = GetParam();
  const std::string dir = UniqueDir(std::string("kill_") + kp.name);

  {
    ModelStore clean(Opts(dir));
    uint64_t gen = 0;
    ASSERT_TRUE(clean.Put("census", "naru", Payload('a'), &gen));
    ASSERT_EQ(gen, 1u);
  }
  {
    ModelStore faulty(Opts(
        dir, {StoreFaultSpec{kp.kind, kp.after_ops, /*times=*/1}}));
    EXPECT_EQ(faulty.Put("census", "naru", Payload('b')), kp.put_reports_ok);
    if (!kp.put_reports_ok) {
      EXPECT_EQ(faulty.stats().commit_failures, 1u);
    }
  }

  ModelStore reopened(Opts(dir));
  std::string payload;
  uint64_t gen = 0;
  ASSERT_TRUE(reopened.Get("census", "naru", &payload, &gen));
  EXPECT_EQ(payload, Payload(kp.expected_fill));
  EXPECT_EQ(gen, kp.expected_gen);

  const StoreStats stats = reopened.stats();
  EXPECT_EQ(stats.hits, 1u);
  if (kp.expect_recovery) {
    EXPECT_GE(stats.recoveries, 1u);
  }

  // After recovery the live store must be fully intact: corrupt records are
  // in quarantine, not in the serving path.
  EXPECT_EQ(reopened.VerifyAll(), 0u);
  std::string again;
  ASSERT_TRUE(reopened.Get("census", "naru", &again));
  EXPECT_EQ(again, payload);
}

INSTANTIATE_TEST_SUITE_P(
    AllKillPoints, StoreKillPointTest,
    ::testing::Values(
        // Torn gen-record write: the commit "succeeds" (lying disk) but the
        // record is truncated; reopen quarantines it and falls back to A.
        KillPoint{"torn_gen_write", StoreFaultKind::kTornWrite, 0,
                  /*put_reports_ok=*/true, 'a', 1, /*expect_recovery=*/true},
        // Torn manifest write: the gen record itself is intact, only the
        // committed pointer is wrecked; reopen adopts the newest intact
        // generation (B) by scan.
        KillPoint{"torn_manifest_write", StoreFaultKind::kTornWrite, 1,
                  /*put_reports_ok=*/true, 'b', 2, /*expect_recovery=*/true},
        // ENOSPC on the gen record: Put fails cleanly, nothing committed.
        KillPoint{"enospc_gen_write", StoreFaultKind::kEnospc, 0,
                  /*put_reports_ok=*/false, 'a', 1, /*expect_recovery=*/false},
        // ENOSPC on the manifest: the intact-but-uncommitted gen 2 is an
        // orphan; reopen quarantines it and serves the committed gen 1.
        KillPoint{"enospc_manifest_write", StoreFaultKind::kEnospc, 1,
                  /*put_reports_ok=*/false, 'a', 1, /*expect_recovery=*/false},
        // Failed gen rename: only the temp file existed; Put fails.
        KillPoint{"rename_fail_gen", StoreFaultKind::kRenameFail, 0,
                  /*put_reports_ok=*/false, 'a', 1, /*expect_recovery=*/false},
        // Failed manifest rename: same orphan shape as the manifest ENOSPC.
        KillPoint{"rename_fail_manifest", StoreFaultKind::kRenameFail, 1,
                  /*put_reports_ok=*/false, 'a', 1, /*expect_recovery=*/false},
        // Post-commit bit-rot: the commit was real, the bytes are not; the
        // CRC catches it on reopen and recovery falls back to A.
        KillPoint{"bitflip_after_commit", StoreFaultKind::kBitflip, 0,
                  /*put_reports_ok=*/true, 'a', 1, /*expect_recovery=*/true}),
    [](const ::testing::TestParamInfo<KillPoint>& info) {
      return std::string(info.param.name);
    });

// The orphan from a manifest-stage failure must be quarantined as a whole
// intact record — forensics can restore it deliberately, but recovery never
// serves it implicitly.
TEST(StoreTest, IntactOrphanIsQuarantinedNotServed) {
  const std::string dir = UniqueDir("orphan");
  {
    ModelStore clean(Opts(dir));
    ASSERT_TRUE(clean.Put("census", "naru", Payload('a')));
  }
  {
    ModelStore faulty(Opts(
        dir, {StoreFaultSpec{StoreFaultKind::kRenameFail, /*after_ops=*/1,
                             /*times=*/1}}));
    EXPECT_FALSE(faulty.Put("census", "naru", Payload('b')));
  }
  ModelStore reopened(Opts(dir));
  std::string payload;
  ASSERT_TRUE(reopened.Get("census", "naru", &payload));
  EXPECT_EQ(payload, Payload('a'));
  EXPECT_EQ(reopened.stats().quarantined_generations, 1u);

  bool found_orphan = false;
  for (const GenerationInfo& info :
       reopened.ListGenerations("census", "naru")) {
    if (info.quarantined && info.generation == 2) {
      found_orphan = true;
      EXPECT_TRUE(info.intact());  // whole record, deliberately not served.
    }
  }
  EXPECT_TRUE(found_orphan);

  // An explicit restore is the sanctioned way to promote it.
  ASSERT_TRUE(reopened.RestoreQuarantined("census", "naru", 2));
  uint64_t gen = 0;
  ASSERT_TRUE(reopened.Get("census", "naru", &payload, &gen));
  EXPECT_EQ(payload, Payload('b'));
  EXPECT_EQ(gen, 2u);
}

TEST(StoreTest, Crc32cKnownVectors) {
  // RFC 3720 test vector: CRC32C of 32 zero bytes.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  const std::string digits("123456789");
  EXPECT_EQ(Crc32c(digits.data(), digits.size()), 0xe3069283u);
  const uint32_t crc = Crc32c(digits.data(), digits.size());
  EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
}

}  // namespace
}  // namespace arecel::store
