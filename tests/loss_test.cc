#include "ml/loss.h"

#include <cmath>

#include <gtest/gtest.h>

namespace arecel {
namespace {

TEST(MseLogLossTest, ValueAndGradient) {
  const LossValueGrad r = MseLogLoss(3.0, 1.0);
  EXPECT_DOUBLE_EQ(r.loss, 4.0);
  EXPECT_DOUBLE_EQ(r.dloss_dz, 4.0);
}

TEST(MseLogLossTest, ZeroAtTarget) {
  const LossValueGrad r = MseLogLoss(-2.5, -2.5);
  EXPECT_DOUBLE_EQ(r.loss, 0.0);
  EXPECT_DOUBLE_EQ(r.dloss_dz, 0.0);
}

TEST(QErrorLossTest, SymmetricValue) {
  // exp(|z-t|) is symmetric in over/underestimation — the q-error property.
  EXPECT_DOUBLE_EQ(QErrorLoss(2.0, 0.0).loss, QErrorLoss(-2.0, 0.0).loss);
}

TEST(QErrorLossTest, GradientSignFollowsError) {
  EXPECT_GT(QErrorLoss(1.0, 0.0).dloss_dz, 0.0);
  EXPECT_LT(QErrorLoss(-1.0, 0.0).dloss_dz, 0.0);
}

TEST(QErrorLossTest, PerfectEstimateCostsOne) {
  // q-error of a perfect estimate is 1 (not 0), matching the metric.
  EXPECT_DOUBLE_EQ(QErrorLoss(5.0, 5.0).loss, 1.0);
}

TEST(QErrorLossTest, ClipBoundsGradient) {
  const LossValueGrad r = QErrorLoss(100.0, 0.0, 8.0);
  EXPECT_DOUBLE_EQ(r.loss, std::exp(8.0));
  EXPECT_DOUBLE_EQ(r.dloss_dz, std::exp(8.0));
}

TEST(QErrorLossTest, NumericalGradientMatches) {
  const double z = 1.3, t = 0.4, eps = 1e-6;
  const double numeric =
      (QErrorLoss(z + eps, t).loss - QErrorLoss(z - eps, t).loss) / (2 * eps);
  EXPECT_NEAR(QErrorLoss(z, t).dloss_dz, numeric, 1e-5);
}

}  // namespace
}  // namespace arecel
