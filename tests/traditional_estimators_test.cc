// Behavioural tests of the eight traditional estimators beyond the generic
// smoke test: each one's characteristic assumptions and failure modes.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/traditional/bayes.h"
#include "estimators/traditional/dbms.h"
#include "estimators/traditional/kde.h"
#include "estimators/traditional/mhist.h"
#include "estimators/traditional/quicksel.h"
#include "estimators/traditional/sampling.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace arecel {
namespace {

Table IndependentTable(size_t rows) {
  return GenerateSynthetic2D(rows, 0.5, 0.0, 100, 11);
}

Table DependentTable(size_t rows) {
  return GenerateSynthetic2D(rows, 0.5, 1.0, 100, 11);
}

Query TwoColumnRange(double lo0, double hi0, double lo1, double hi1) {
  Query q;
  q.predicates.push_back({0, lo0, hi0});
  q.predicates.push_back({1, lo1, hi1});
  return q;
}

TEST(PostgresEstimatorTest, SingleColumnRangeAccurate) {
  const Table t = IndependentTable(20000);
  auto postgres = MakePostgresEstimator();
  postgres->Train(t, {});
  Query q;
  q.predicates.push_back({0, 10, 30});
  const double est = postgres->EstimateSelectivity(q);
  const double act = ExecuteSelectivity(t, q);
  EXPECT_LT(QError(est * 20000, act * 20000), 1.3);
}

TEST(PostgresEstimatorTest, AviFailsOnFunctionalDependency) {
  // P(A in R and B in R') under independence underestimates heavily when
  // B == A and the ranges coincide.
  const Table t = DependentTable(20000);
  auto postgres = MakePostgresEstimator();
  postgres->Train(t, {});
  const Query q = TwoColumnRange(10, 20, 10, 20);
  const double est = postgres->EstimateSelectivity(q);
  const double act = ExecuteSelectivity(t, q);
  EXPECT_LT(est, act / 3.0);  // clear underestimate.
}

TEST(DbmsAEstimatorTest, ExponentialBackoffBeatsAviOnDependence) {
  const Table t = DependentTable(20000);
  auto postgres = MakePostgresEstimator();
  auto dbms_a = MakeDbmsAEstimator();
  postgres->Train(t, {});
  dbms_a->Train(t, {});
  const Query q = TwoColumnRange(10, 40, 10, 40);
  const double act = ExecuteSelectivity(t, q);
  const double avi_err = QError(postgres->EstimateSelectivity(q) * 20000,
                                act * 20000);
  const double ebo_err = QError(dbms_a->EstimateSelectivity(q) * 20000,
                                act * 20000);
  EXPECT_LT(ebo_err, avi_err);
}

TEST(SamplingEstimatorTest, UnbiasedOnLargeRanges) {
  const Table t = IndependentTable(50000);
  SamplingEstimator sampling;
  TrainContext ctx;
  ctx.size_budget_fraction = 0.05;
  sampling.Train(t, ctx);
  const Query q = TwoColumnRange(0, 50, 0, 80);
  EXPECT_NEAR(sampling.EstimateSelectivity(q), ExecuteSelectivity(t, q),
              0.03);
}

TEST(SamplingEstimatorTest, MissesRareValues) {
  // A predicate matching ~5 rows of 50K is usually absent from a 1.5%
  // sample -> estimate 0.
  Table t("t");
  std::vector<double> vals(50000, 1.0);
  for (int i = 0; i < 5; ++i) vals[static_cast<size_t>(i) * 1000 + 7] = 99.0;
  t.AddColumn("a", std::move(vals), true);
  t.Finalize();
  SamplingEstimator sampling;
  sampling.Train(t, {});
  Query q;
  q.predicates.push_back({0, 99.0, 99.0});
  EXPECT_LT(sampling.EstimateSelectivity(q), 2e-3);
}

TEST(MhistEstimatorTest, BuildsMultipleBuckets) {
  const Table t = DependentTable(20000);
  MhistEstimator mhist;
  mhist.Train(t, {});
  EXPECT_GT(mhist.num_buckets(), 10u);
  EXPECT_GT(mhist.SizeBytes(), 0u);
}

TEST(MhistEstimatorTest, ReasonableOnJointRange) {
  // A joint bucket directory keeps a dependent conjunction within a modest
  // factor (per-bucket independence bounds the error by bucket resolution).
  const Table t = DependentTable(30000);
  MhistEstimator mhist;
  mhist.Train(t, {});
  const Query q = TwoColumnRange(5, 15, 5, 15);
  const double act = ExecuteSelectivity(t, q);
  ASSERT_GT(act, 0.0);
  EXPECT_LT(QError(mhist.EstimateSelectivity(q) * 30000, act * 30000), 20.0);
}

TEST(QuickSelEstimatorTest, FitsTrainingFeedback) {
  const Table t = DependentTable(20000);
  const Workload train = GenerateWorkload(t, 600, 21);
  QuickSelEstimator quicksel;
  TrainContext ctx;
  ctx.training_workload = &train;
  quicksel.Train(t, ctx);
  // In-sample residuals should be small on average.
  double total_abs = 0.0;
  for (size_t i = 0; i < 200; ++i) {
    total_abs += std::fabs(quicksel.EstimateSelectivity(train.queries[i]) -
                           train.selectivities[i]);
  }
  EXPECT_LT(total_abs / 200.0, 0.05);
}

TEST(BayesEstimatorTest, TreeStructureIsValid) {
  DatasetSpec spec = CensusSpec();
  spec.rows = 5000;
  const Table t = GenerateDataset(spec, 9);
  BayesEstimator bayes;
  bayes.Train(t, {});
  const std::vector<int>& parents = bayes.parents();
  ASSERT_EQ(parents.size(), t.num_cols());
  int roots = 0;
  for (int p : parents) roots += p < 0 ? 1 : 0;
  EXPECT_EQ(roots, 1);  // exactly one root; Chow-Liu is a tree.
}

TEST(BayesEstimatorTest, CapturesPairwiseDependence) {
  const Table t = DependentTable(30000);
  BayesEstimator bayes;
  bayes.Train(t, {});
  const Query q = TwoColumnRange(10, 20, 10, 20);
  const double act = ExecuteSelectivity(t, q);
  EXPECT_LT(QError(bayes.EstimateSelectivity(q) * 30000, act * 30000), 2.0);
}

TEST(BayesEstimatorTest, FullDomainIsOne) {
  const Table t = DependentTable(10000);
  BayesEstimator bayes;
  bayes.Train(t, {});
  const Query q = TwoColumnRange(t.column(0).min(), t.column(0).max(),
                                 t.column(1).min(), t.column(1).max());
  EXPECT_NEAR(bayes.EstimateSelectivity(q), 1.0, 1e-6);
}

TEST(KdeFbEstimatorTest, EqualityOnDiscreteValuesNonZero) {
  const Table t = IndependentTable(20000);
  KdeFbEstimator kde;
  TrainContext ctx;
  kde.Train(t, ctx);
  Query q;
  q.predicates.push_back({0, 10.0, 10.0});
  const double act = ExecuteSelectivity(t, q);
  ASSERT_GT(act, 0.0);
  EXPECT_GT(kde.EstimateSelectivity(q), act / 10.0);
}

TEST(KdeFbEstimatorTest, FeedbackImprovesAccuracy) {
  const Table t = DependentTable(30000);
  const Workload train = GenerateWorkload(t, 400, 23);
  const Workload test = GenerateWorkload(t, 200, 24);

  KdeFbEstimator::Options no_feedback_options;
  no_feedback_options.feedback_iterations = 0;
  KdeFbEstimator plain(no_feedback_options);
  TrainContext ctx;
  ctx.training_workload = &train;
  plain.Train(t, ctx);

  KdeFbEstimator tuned;
  tuned.Train(t, ctx);

  const double plain_p95 =
      Percentile(EvaluateQErrors(plain, test, t.num_rows()), 95);
  const double tuned_p95 =
      Percentile(EvaluateQErrors(tuned, test, t.num_rows()), 95);
  EXPECT_LE(tuned_p95, plain_p95 * 1.2);  // never much worse...
  EXPECT_LT(tuned_p95, 60.0);             // ...and decent in absolute terms.
}

TEST(TraditionalUpdateTest, DefaultUpdateRetrains) {
  const Table base = IndependentTable(10000);
  auto postgres = MakePostgresEstimator();
  postgres->Train(base, {});
  const Table updated = AppendCorrelatedUpdate(base, 0.5, 31);
  UpdateContext ctx;
  ctx.old_row_count = base.num_rows();
  postgres->Update(updated, ctx);
  // After retraining, a single-column range over the updated data is
  // accurate again.
  Query q;
  q.predicates.push_back({0, 0, 20});
  EXPECT_NEAR(postgres->EstimateSelectivity(q),
              ExecuteSelectivity(updated, q), 0.05);
}

}  // namespace
}  // namespace arecel
