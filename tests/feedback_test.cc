// Tier-1 suite for the online query-feedback loop (src/feedback/): the
// subspace store's canonicalization / eviction / decay / invalidation
// semantics, truth-worker drain and backpressure, hub residual corrections,
// the adaptive estimators' convergence, the serving-layer integration
// (including the cache-hit-still-learns regression), and a concurrent
// learn/estimate smoke for the TSan preset (run_sanitized_tests.sh matches
// these suites by the "Feedback" in their names).

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "core/registry.h"
#include "data/datasets.h"
#include "estimators/extensions/feedback.h"
#include "feedback/hub.h"
#include "feedback/online_model.h"
#include "feedback/truth_worker.h"
#include "serve/server.h"
#include "workload/generator.h"

namespace arecel::feedback {
namespace {

Table SmallTable(uint64_t seed = 5) {
  return GenerateSynthetic2D(/*rows=*/3000, /*skew=*/1.0,
                             /*correlation=*/0.6, /*domain_size=*/40, seed);
}

Query MakeQuery(std::vector<Predicate> predicates) {
  Query query;
  query.predicates = std::move(predicates);
  return query;
}

// ---------- OnlineSubspaceModel ----------

TEST(FeedbackModelTest, FingerprintIsCanonical) {
  const Table table = SmallTable();
  OnlineSubspaceModel model;
  model.BindSchema(table);

  // Predicate order does not matter.
  const Query ab = MakeQuery({{0, 1.0, 5.0}, {1, 2.0, 9.0}});
  const Query ba = MakeQuery({{1, 2.0, 9.0}, {0, 1.0, 5.0}});
  EXPECT_EQ(model.SubspaceFingerprint(ab), model.SubspaceFingerprint(ba));

  // Equality vs range on the same column are different subspaces.
  const Query eq = MakeQuery({{0, 3.0, 3.0}});
  const Query range = MakeQuery({{0, 3.0, 7.0}});
  EXPECT_NE(model.SubspaceFingerprint(eq), model.SubspaceFingerprint(range));

  // A full-domain (vacuous) conjunct is canonicalized away.
  const Column& c1 = table.column(1);
  const Query widened =
      MakeQuery({{0, 1.0, 5.0}, {1, c1.min(), c1.max()}});
  EXPECT_EQ(model.SubspaceFingerprint(widened),
            model.SubspaceFingerprint(MakeQuery({{0, 1.0, 5.0}})));
}

TEST(FeedbackModelTest, ObservePredictIsDeterministic) {
  const Table table = SmallTable();
  OnlineSubspaceModel a, b;
  a.BindSchema(table);
  b.BindSchema(table);

  // Identical observation sequences -> bit-identical predictions.
  for (int i = 0; i < 20; ++i) {
    const Query q = MakeQuery({{0, 1.0 + i % 7, 9.0 + i % 5}});
    const double target = -3.0 + 0.25 * i;
    a.Observe(q, target, 0);
    b.Observe(q, target, 0);
  }
  for (int i = 0; i < 20; ++i) {
    const Query q = MakeQuery({{0, 2.0 + i % 5, 8.0 + i % 7}});
    double pa = 0.0, pb = 0.0;
    ASSERT_EQ(a.Predict(q, &pa), b.Predict(q, &pb));
    EXPECT_EQ(pa, pb) << "probe " << i;
  }
}

TEST(FeedbackModelTest, EmaDecayMatchesHandComputation) {
  FeedbackOptions options;
  options.decay = 0.3;
  options.ema_blend = 0.25;
  options.neighbors = 3;
  OnlineSubspaceModel model(options);
  model.BindSchema(SmallTable());

  const Query q = MakeQuery({{0, 3.0, 12.0}});
  model.Observe(q, -2.0, 0);
  model.Observe(q, -1.0, 0);

  // Both entries sit at feature distance 0 from the probe, so the EMA
  // blend scales to zero and the prediction is the plain kNN average — an
  // exact repeat answers from its own remembered truths.
  const double knn = (-2.0 + -1.0) / 2.0;
  const double ema = 0.3 * -1.0 + 0.7 * -2.0;  // = -1.7, below the knn arm.
  double prediction = 0.0;
  ASSERT_TRUE(model.Predict(q, &prediction));
  EXPECT_NEAR(prediction, knn, 1e-12);

  // A nearby (in-radius) probe keeps the same equidistant neighbours, so
  // its kNN arm is still the plain average, but the distance-scaled EMA
  // blend now pulls the prediction strictly toward the EMA.
  const Query near = MakeQuery({{0, 4.0, 12.0}});
  double near_prediction = 0.0;
  ASSERT_TRUE(model.Predict(near, &near_prediction));
  EXPECT_LT(near_prediction, knn);
  EXPECT_GT(near_prediction, ema);
}

TEST(FeedbackModelTest, RingEvictionIsBounded) {
  FeedbackOptions options;
  options.max_entries_per_subspace = 8;
  OnlineSubspaceModel model(options);
  model.BindSchema(SmallTable());

  const Query q = MakeQuery({{0, 1.0, 20.0}});
  for (int i = 0; i < 50; ++i) model.Observe(q, 0.1 * i, 0);

  const FeedbackModelStats stats = model.Stats();
  EXPECT_EQ(stats.subspaces, 1u);
  EXPECT_EQ(stats.entries, 8u);
  EXPECT_EQ(stats.evicted_entries, 42u);
  EXPECT_EQ(stats.observed, 50u);
}

TEST(FeedbackModelTest, LeastRecentlyObservedSubspaceIsEvicted) {
  FeedbackOptions options;
  options.max_subspaces = 2;
  OnlineSubspaceModel model(options);
  model.BindSchema(SmallTable());

  const Query range0 = MakeQuery({{0, 1.0, 9.0}});
  const Query eq0 = MakeQuery({{0, 4.0, 4.0}});
  const Query range1 = MakeQuery({{1, 2.0, 11.0}});
  model.Observe(range0, -1.0, 0);  // oldest touch.
  model.Observe(eq0, -2.0, 0);
  model.Observe(range1, -3.0, 0);  // forces eviction of range0's subspace.

  EXPECT_EQ(model.Stats().subspaces, 2u);
  EXPECT_EQ(model.Stats().evicted_subspaces, 1u);
  double unused = 0.0;
  EXPECT_FALSE(model.Predict(range0, &unused));
  EXPECT_TRUE(model.Predict(eq0, &unused));
  EXPECT_TRUE(model.Predict(range1, &unused));
}

TEST(FeedbackModelTest, VersionBumpDropsStaleEntries) {
  OnlineSubspaceModel model;
  model.BindSchema(SmallTable());

  const Query old_only = MakeQuery({{0, 1.0, 9.0}});
  const Query mixed = MakeQuery({{1, 1.0, 9.0}});
  model.Observe(old_only, -1.0, /*version=*/0);
  model.Observe(mixed, -4.0, /*version=*/0);
  model.Observe(mixed, -2.0, /*version=*/1);

  EXPECT_EQ(model.InvalidateOlderThan(1), 2u);

  double prediction = 0.0;
  // The all-stale subspace is gone entirely.
  EXPECT_FALSE(model.Predict(old_only, &prediction));
  // The mixed subspace keeps only the fresh truth; with one survivor both
  // the kNN and the rebuilt EMA equal its target exactly.
  ASSERT_TRUE(model.Predict(mixed, &prediction));
  EXPECT_NEAR(prediction, -2.0, 1e-12);
  EXPECT_EQ(model.Stats().invalidated, 2u);
}

TEST(FeedbackModelTest, TrustRadiusGatesFarPredictions) {
  FeedbackOptions options;
  options.trust_radius = 0.1;
  OnlineSubspaceModel model(options);
  const Table table = SmallTable();
  model.BindSchema(table);

  const Column& c0 = table.column(0);
  const double lo = c0.min(), hi = c0.max();
  const Query near_lo = MakeQuery({{0, lo, lo + 0.1 * (hi - lo)}});
  const Query near_hi = MakeQuery({{0, lo + 0.8 * (hi - lo), hi - 0.01}});
  model.Observe(near_lo, -1.0, 0);

  double prediction = 0.0;
  EXPECT_TRUE(model.Predict(near_lo, &prediction));
  // Same subspace, but far away in feature space: refuse to extrapolate.
  EXPECT_FALSE(model.Predict(near_hi, &prediction));
  EXPECT_GE(model.Stats().misses, 1u);
}

TEST(FeedbackModelTest, SerializeRoundTripIsBitExact) {
  OnlineSubspaceModel model;
  const Table table = SmallTable();
  model.BindSchema(table);
  for (int i = 0; i < 40; ++i)
    model.Observe(MakeQuery({{i % 2, 1.0 + i % 9, 11.0 + i % 13}}),
                  -0.17 * i, static_cast<uint64_t>(i % 3));

  ByteWriter writer;
  ASSERT_TRUE(model.Serialize(&writer));
  OnlineSubspaceModel restored;
  ByteReader reader(writer.buffer());
  ASSERT_TRUE(restored.Deserialize(&reader));

  for (int i = 0; i < 30; ++i) {
    const Query q = MakeQuery({{i % 2, 2.0 + i % 7, 9.0 + i % 11}});
    double a = 0.0, b = 0.0;
    ASSERT_EQ(model.Predict(q, &a), restored.Predict(q, &b));
    EXPECT_EQ(a, b);
  }
}

// ---------- TruthWorker ----------

TEST(FeedbackTruthWorkerTest, DrainWaitsForAllJobs) {
  const auto table = std::make_shared<const Table>(SmallTable());
  std::atomic<int> labeled{0};
  std::vector<double> truths;
  std::mutex truths_mutex;
  TruthWorker worker(
      [&](const TruthJob& job, double truth) {
        (void)job;
        ++labeled;
        std::lock_guard<std::mutex> lock(truths_mutex);
        truths.push_back(truth);
      },
      /*queue_capacity=*/64);

  const Query q = MakeQuery({{0, 1.0, 20.0}});
  const double expected = ExecuteSelectivity(*table, q);
  for (int i = 0; i < 10; ++i) {
    TruthJob job;
    job.query = q;
    job.snapshot = table;
    ASSERT_TRUE(worker.Enqueue(std::move(job)));
  }
  worker.Drain();

  EXPECT_EQ(labeled.load(), 10);
  EXPECT_EQ(worker.Stats().completed, 10u);
  EXPECT_EQ(worker.Stats().pending, 0u);
  std::lock_guard<std::mutex> lock(truths_mutex);
  for (double truth : truths) EXPECT_EQ(truth, expected);
}

TEST(FeedbackTruthWorkerTest, FullQueueDropsNewJobs) {
  // Block the worker inside the first callback so the queue backs up
  // deterministically.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool release = false;
  bool entered = false;
  TruthWorker worker(
      [&](const TruthJob& job, double truth) {
        (void)job;
        (void)truth;
        std::unique_lock<std::mutex> lock(gate_mutex);
        entered = true;
        gate_cv.notify_all();
        gate_cv.wait(lock, [&] { return release; });
      },
      /*queue_capacity=*/2);

  const auto table = std::make_shared<const Table>(SmallTable());
  auto make_job = [&] {
    TruthJob job;
    job.query = MakeQuery({{0, 1.0, 5.0}});
    job.snapshot = table;
    return job;
  };
  ASSERT_TRUE(worker.Enqueue(make_job()));  // picked up by the worker.
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return entered; });
  }
  EXPECT_TRUE(worker.Enqueue(make_job()));   // queue slot 1.
  EXPECT_TRUE(worker.Enqueue(make_job()));   // queue slot 2.
  EXPECT_FALSE(worker.Enqueue(make_job()));  // full: dropped, counted.
  EXPECT_EQ(worker.Stats().dropped, 1u);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  worker.Drain();
  EXPECT_EQ(worker.Stats().completed, 3u);
}

TEST(FeedbackTruthWorkerTest, StopRejectsFurtherWork) {
  TruthWorker worker([](const TruthJob&, double) {}, 8);
  worker.Stop();
  TruthJob job;
  job.query = MakeQuery({{0, 1.0, 5.0}});
  EXPECT_FALSE(worker.Enqueue(std::move(job)));
}

// ---------- FeedbackHub ----------

TEST(FeedbackHubTest, ResidualCorrectionMovesTowardTruth) {
  FeedbackHub hub;
  const auto table = std::make_shared<const Table>(SmallTable());
  const Query q = MakeQuery({{0, 1.0, 20.0}});
  const double truth = ExecuteSelectivity(*table, q);
  const double base = truth / 8.0;  // a badly underestimating model.

  TruthJob job;
  job.dataset = "t";
  job.estimator = "stub";
  job.query = q;
  job.base_selectivity = base;
  job.snapshot = table;
  hub.LearnTruth(job, truth);

  const double corrected =
      hub.Correct("t", "stub", q, base, table->num_rows());
  EXPECT_NEAR(corrected, truth, 0.05 * truth);
  // Unknown (dataset, estimator) or unseen subspace: pass through.
  EXPECT_EQ(hub.Correct("t", "other", q, base, table->num_rows()), base);
  EXPECT_EQ(hub.Correct("t", "stub", MakeQuery({{1, 0.0, 3.0}}), base,
                        table->num_rows()),
            base);
}

TEST(FeedbackHubTest, DeliverOverrideBypassesResidualLearning) {
  FeedbackHub hub;
  const auto table = std::make_shared<const Table>(SmallTable());
  const Query q = MakeQuery({{0, 1.0, 20.0}});

  int delivered = 0;
  TruthJob job;
  job.dataset = "t";
  job.estimator = "sink";
  job.query = q;
  job.base_selectivity = 0.01;
  job.snapshot = table;
  job.deliver = [&delivered](const TruthJob&, double) { ++delivered; };
  hub.LearnTruth(job, 0.2);

  EXPECT_EQ(delivered, 1);
  // No residual was learned for the sink's key.
  EXPECT_EQ(hub.Correct("t", "sink", q, 0.01, table->num_rows()), 0.01);
}

TEST(FeedbackHubTest, InvalidateDatasetDropsOldVersions) {
  FeedbackHub hub;
  const auto table = std::make_shared<const Table>(SmallTable());
  const Query q = MakeQuery({{0, 1.0, 20.0}});

  TruthJob job;
  job.dataset = "t";
  job.estimator = "stub";
  job.query = q;
  job.base_selectivity = 0.01;
  job.snapshot = table;
  job.version = 0;
  hub.LearnTruth(job, 0.2);
  ASSERT_NE(hub.Correct("t", "stub", q, 0.01, table->num_rows()), 0.01);

  EXPECT_EQ(hub.InvalidateDataset("t", /*min_version=*/1), 1u);
  EXPECT_EQ(hub.Correct("t", "stub", q, 0.01, table->num_rows()), 0.01);
  // Different dataset is untouched by construction (prefix walk).
  EXPECT_EQ(hub.InvalidateDataset("unrelated", 1), 0u);
}

TEST(FeedbackHubTest, CacheHitJobsAreCounted) {
  FeedbackHub hub;
  const auto table = std::make_shared<const Table>(SmallTable());
  TruthJob job;
  job.dataset = "t";
  job.estimator = "stub";
  job.query = MakeQuery({{0, 1.0, 5.0}});
  job.snapshot = table;
  job.from_cache_hit = true;
  ASSERT_TRUE(hub.EnqueueTruth(std::move(job)));
  hub.Drain();
  EXPECT_EQ(hub.Stats().cache_hit_jobs, 1u);
  EXPECT_EQ(hub.Stats().worker.completed, 1u);
}

// ---------- Adaptive estimators ----------

TEST(FeedbackEstimatorTest, KnnConvergesUnderRepeatedTruth) {
  const Table table = SmallTable();
  const Workload train = GenerateWorkload(table, 200, 7);
  for (const char* name : {"feedback-knn", "feedback-corrected"}) {
    auto estimator = MakeEstimator(name);
    TrainContext context;
    context.training_workload = &train;
    estimator->Train(table, context);
    auto* sink = dynamic_cast<FeedbackSink*>(estimator.get());
    ASSERT_NE(sink, nullptr) << name;

    const Query q = MakeQuery({{0, 2.0, 17.0}, {1, 1.0, 25.0}});
    const double truth = ExecuteSelectivity(table, q);
    for (int i = 0; i < 12; ++i) sink->ObserveTruth(q, truth);
    const double est = estimator->EstimateCardinality(
        q, table.num_rows());
    const double actual = truth * static_cast<double>(table.num_rows());
    EXPECT_LE(QError(est, actual), 1.5) << name;
  }
}

TEST(FeedbackEstimatorTest, UpdateInvalidatesLearnedTruths) {
  const Table table = SmallTable();
  const Workload train = GenerateWorkload(table, 200, 7);
  auto estimator = std::make_unique<FeedbackKnnEstimator>();
  TrainContext context;
  context.training_workload = &train;
  estimator->Train(table, context);

  const Query q = MakeQuery({{0, 2.0, 17.0}});
  estimator->ObserveTruth(q, ExecuteSelectivity(table, q));
  ASSERT_GT(estimator->FeedbackStats().entries, 0u);

  const Table updated = AppendCorrelatedUpdate(table, 0.25, 11);
  Workload update_workload = GenerateWorkload(updated, 100, 13);
  UpdateContext update_context;
  update_context.old_row_count = table.num_rows();
  update_context.update_workload = &update_workload;
  estimator->Update(updated, update_context);

  EXPECT_EQ(estimator->data_version(), 1u);
  EXPECT_GT(estimator->FeedbackStats().invalidated, 0u);
  // Post-update estimates remain valid selectivities.
  const double sel = estimator->EstimateSelectivity(q);
  EXPECT_TRUE(std::isfinite(sel));
  EXPECT_GE(sel, 0.0);
  EXPECT_LE(sel, 1.0);
}

// ---------- Serving-layer integration ----------

serve::ServeOptions FeedbackServeOptions() {
  serve::ServeOptions options;
  options.feedback_enabled = true;
  options.robust.query_deadline_seconds = 0;  // inline inference.
  return options;
}

TEST(FeedbackServeTest, LoopCorrectsServedEstimates) {
  serve::EstimatorServer server(FeedbackServeOptions());
  server.RegisterDataset("t", SmallTable());
  const Table reference = SmallTable();
  const Query q = MakeQuery({{0, 1.0, 3.0}, {1, 1.0, 3.0}});
  const double truth = ExecuteSelectivity(reference, q);

  // First request fills the loop; drain so the truth lands; repeat a few
  // times so the correction's kNN arm saturates at the observed truth.
  serve::EstimateResponse first = server.Estimate("t", "postgres", q);
  ASSERT_TRUE(first.ok);
  for (int i = 0; i < 6; ++i) {
    server.DrainFeedback();
    server.Estimate("t", "postgres", q);
  }
  server.DrainFeedback();
  const serve::EstimateResponse corrected =
      server.Estimate("t", "postgres", q);
  ASSERT_TRUE(corrected.ok);

  const double rows = static_cast<double>(reference.num_rows());
  const double q_before = QError(first.selectivity * rows, truth * rows);
  const double q_after = QError(corrected.selectivity * rows, truth * rows);
  EXPECT_LE(q_after, std::max(1.5, q_before));
  const serve::ServerStats stats = server.Stats();
  EXPECT_TRUE(stats.feedback_enabled);
  EXPECT_GT(stats.feedback.worker.completed, 0u);
  EXPECT_GT(stats.feedback.corrections_applied, 0u);
}

// Regression for the latent gap this PR closes: cache hits used to return
// without any learning signal, so a hot (cached) query never taught the
// loop anything.
TEST(FeedbackServeTest, CacheHitStillEnqueuesTruthJob) {
  serve::EstimatorServer server(FeedbackServeOptions());
  server.RegisterDataset("t", SmallTable());
  const Query q = MakeQuery({{0, 1.0, 9.0}});

  const serve::EstimateResponse miss = server.Estimate("t", "postgres", q);
  ASSERT_TRUE(miss.ok);
  ASSERT_FALSE(miss.cache_hit);
  const serve::EstimateResponse hit = server.Estimate("t", "postgres", q);
  ASSERT_TRUE(hit.ok);
  ASSERT_TRUE(hit.cache_hit);
  server.DrainFeedback();

  const serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.feedback.cache_hit_jobs, 1u);
  EXPECT_EQ(stats.feedback.worker.enqueued, 2u);
  EXPECT_EQ(stats.feedback.worker.completed, 2u);
}

TEST(FeedbackServeTest, SinkTruthInvalidatesCachedEstimate) {
  // For a FeedbackSink the cached base estimate goes stale the moment its
  // truth is delivered (the estimator itself now answers differently), so
  // the delivery must drop the cache entry: the repeat re-infers instead of
  // replaying the pre-learning answer.
  serve::EstimatorServer server(FeedbackServeOptions());
  server.RegisterDataset("t", SmallTable());
  const Query q = MakeQuery({{0, 1.0, 9.0}});

  const serve::EstimateResponse first = server.Estimate("t", "feedback-knn", q);
  ASSERT_TRUE(first.ok);
  ASSERT_FALSE(first.cache_hit);
  server.DrainFeedback();

  const serve::EstimateResponse second =
      server.Estimate("t", "feedback-knn", q);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(second.cache_hit);
  // The re-inferred answer comes from the learned store: an exact repeat
  // answers from its distance-0 remembered truth (other neighbours carry
  // vanishing weight next to it).
  const double truth = ExecuteSelectivity(SmallTable(), q);
  EXPECT_NEAR(second.selectivity, truth, 1e-3);

  // A non-sink estimator's cached base stays put across deliveries — the
  // residual is applied after lookup instead.
  const serve::EstimateResponse pg_first = server.Estimate("t", "postgres", q);
  ASSERT_TRUE(pg_first.ok);
  server.DrainFeedback();
  const serve::EstimateResponse pg_second =
      server.Estimate("t", "postgres", q);
  ASSERT_TRUE(pg_second.ok);
  EXPECT_TRUE(pg_second.cache_hit);
}

TEST(FeedbackServeTest, UpdateInvalidatesResiduals) {
  serve::EstimatorServer server(FeedbackServeOptions());
  server.RegisterDataset("t", SmallTable());
  const Query q = MakeQuery({{0, 1.0, 9.0}});

  server.Estimate("t", "postgres", q);
  server.DrainFeedback();
  ASSERT_GT(server.Stats().feedback.models.entries, 0u);

  server.Update("t");
  const serve::ServerStats stats = server.Stats();
  EXPECT_GT(stats.feedback.models.invalidated, 0u);
  server.WaitForRefreshes();
}

TEST(FeedbackServeTest, DisabledLoopLeavesServingUntouched) {
  serve::ServeOptions options;
  options.robust.query_deadline_seconds = 0;
  serve::EstimatorServer server(options);
  server.RegisterDataset("t", SmallTable());
  const Query q = MakeQuery({{0, 1.0, 9.0}});
  const serve::EstimateResponse response =
      server.Estimate("t", "postgres", q);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(server.feedback(), nullptr);
  EXPECT_FALSE(server.Stats().feedback_enabled);
  EXPECT_EQ(server.Stats().feedback.worker.enqueued, 0u);
}

// ---------- Concurrency smoke (TSan preset) ----------

TEST(FeedbackConcurrencyTest, ConcurrentLearnAndEstimate) {
  const Table table = SmallTable();
  const Workload train = GenerateWorkload(table, 150, 7);
  FeedbackKnnEstimator estimator;
  TrainContext context;
  context.training_workload = &train;
  estimator.Train(table, context);

  const Workload probes = GenerateWorkload(table, 60, 9);
  std::atomic<bool> stop{false};
  std::thread learner([&] {
    int i = 0;
    while (!stop.load()) {
      const size_t at = static_cast<size_t>(i++) % probes.size();
      estimator.ObserveTruth(probes.queries[at], probes.selectivities[at]);
    }
  });
  std::vector<std::thread> estimators;
  for (int t = 0; t < 3; ++t) {
    estimators.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        const size_t at = static_cast<size_t>(i) % probes.size();
        const double sel =
            estimator.EstimateSelectivity(probes.queries[at]);
        ASSERT_GE(sel, 0.0);
        ASSERT_LE(sel, 1.0);
      }
    });
  }
  for (std::thread& thread : estimators) thread.join();
  stop.store(true);
  learner.join();
}

}  // namespace
}  // namespace arecel::feedback
