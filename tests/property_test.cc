// Parameterized property tests: invariants every estimator must satisfy on
// arbitrary queries (probability bounds, finiteness, empty-range handling,
// update survival), swept across the full registry including the extended
// estimators; plus generator-level property sweeps over the synthetic
// micro-benchmark knobs.

#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "data/datasets.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace arecel {
namespace {

// ---------- Estimator invariants over the whole registry ----------

class EstimatorInvariantsTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(GenerateSynthetic2D(6000, 0.8, 0.7, 60, 17));
    train_ = new Workload(GenerateWorkload(*table_, 500, 18));
    probes_ = new Workload(GenerateWorkload(*table_, 120, 19));
  }
  static void TearDownTestSuite() {
    delete table_;
    delete train_;
    delete probes_;
  }
  static Table* table_;
  static Workload* train_;
  static Workload* probes_;
};

Table* EstimatorInvariantsTest::table_ = nullptr;
Workload* EstimatorInvariantsTest::train_ = nullptr;
Workload* EstimatorInvariantsTest::probes_ = nullptr;

TEST_P(EstimatorInvariantsTest, ProbabilityBoundsAndFiniteness) {
  auto estimator = MakeEstimator(GetParam());
  TrainContext context;
  context.training_workload = train_;
  estimator->Train(*table_, context);

  for (const Query& q : probes_->queries) {
    const double sel = estimator->EstimateSelectivity(q);
    ASSERT_TRUE(std::isfinite(sel));
    ASSERT_GE(sel, 0.0);
    ASSERT_LE(sel, 1.0);
  }

  // Open ranges on both sides.
  const double inf = std::numeric_limits<double>::infinity();
  Query open;
  open.predicates.push_back({0, -inf, 30.0});
  open.predicates.push_back({1, 10.0, inf});
  const double sel = estimator->EstimateSelectivity(open);
  ASSERT_TRUE(std::isfinite(sel));
  ASSERT_GE(sel, 0.0);
  ASSERT_LE(sel, 1.0);
}

TEST_P(EstimatorInvariantsTest, SurvivesUpdateAfterAppend) {
  auto estimator = MakeEstimator(GetParam());
  TrainContext context;
  context.training_workload = train_;
  estimator->Train(*table_, context);

  const Table updated = AppendCorrelatedUpdate(*table_, 0.25, 20);
  Workload update_workload = GenerateWorkload(updated, 300, 21);
  UpdateContext update_context;
  update_context.old_row_count = table_->num_rows();
  update_context.update_workload = &update_workload;
  estimator->Update(updated, update_context);

  Query q;
  q.predicates.push_back({0, 5.0, 40.0});
  const double sel = estimator->EstimateSelectivity(q);
  ASSERT_TRUE(std::isfinite(sel));
  ASSERT_GE(sel, 0.0);
  ASSERT_LE(sel, 1.0);
}

TEST_P(EstimatorInvariantsTest, ReportsPositiveModelSize) {
  auto estimator = MakeEstimator(GetParam());
  TrainContext context;
  context.training_workload = train_;
  estimator->Train(*table_, context);
  EXPECT_GT(estimator->SizeBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Registry, EstimatorInvariantsTest,
                         ::testing::ValuesIn(AllRegistryNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------- Synthetic generator property sweeps ----------

class SyntheticSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(SyntheticSweepTest, GeneratorPropertiesHold) {
  const auto [skew, correlation, domain] = GetParam();
  const Table t = GenerateSynthetic2D(8000, skew, correlation, domain, 23);
  ASSERT_EQ(t.num_cols(), 2u);
  // Domain bound holds.
  EXPECT_LE(t.column(0).domain.size(), static_cast<size_t>(domain));
  EXPECT_LE(t.column(1).domain.size(), static_cast<size_t>(domain));
  // Correlation knob is monotone in the observed match fraction.
  size_t matches = 0;
  for (size_t r = 0; r < t.num_rows(); ++r)
    matches += t.column(0).values[r] == t.column(1).values[r] ? 1 : 0;
  const double match_fraction =
      static_cast<double>(matches) / static_cast<double>(t.num_rows());
  // P(match) = c + (1-c)/domain.
  const double expected =
      correlation + (1.0 - correlation) / static_cast<double>(domain);
  EXPECT_NEAR(match_fraction, expected, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SyntheticSweepTest,
    ::testing::Combine(::testing::Values(0.0, 1.0, 2.0),
                       ::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(10, 1000)));

// ---------- Workload generator option sweeps ----------

class WorkloadOptionSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WorkloadOptionSweepTest, OptionsShapeTheWorkload) {
  const auto [ood, uniform_width] = GetParam();
  const Table t = GenerateSynthetic2D(5000, 0.5, 0.5, 100, 29);
  WorkloadOptions options;
  options.ood_probability = ood;
  options.uniform_width_probability = uniform_width;
  const Workload w = GenerateWorkload(t, 400, 31, options);
  ASSERT_EQ(w.size(), 400u);
  for (double s : w.selectivities) {
    ASSERT_GE(s, 0.0);
    ASSERT_LE(s, 1.0);
  }
  // All-OOD workloads produce more empty results than all-data-centered.
  if (ood == 1.0) {
    int zeros = 0;
    for (double s : w.selectivities) zeros += s == 0.0 ? 1 : 0;
    EXPECT_GT(zeros, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, WorkloadOptionSweepTest,
                         ::testing::Combine(::testing::Values(0.0, 0.5, 1.0),
                                            ::testing::Values(0.0, 1.0)));

}  // namespace
}  // namespace arecel
