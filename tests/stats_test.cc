#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace arecel {
namespace {

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 50), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  // numpy.percentile([1,2,3,4], 50) == 2.5
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> v{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 9.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7}, 99), 7.0);
}

TEST(SummarizeTest, MatchesIndividualPercentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(static_cast<double>(i));
  const QuantileSummary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.p50, Percentile(v, 50));
  EXPECT_DOUBLE_EQ(s.p95, Percentile(v, 95));
  EXPECT_DOUBLE_EQ(s.p99, Percentile(v, 99));
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(MeanTest, Basic) { EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5); }

TEST(GeometricMeanTest, Basic) {
  EXPECT_NEAR(GeometricMean({1, 100}), 10.0, 1e-9);
}

TEST(VarianceTest, ConstantIsZero) {
  EXPECT_DOUBLE_EQ(Variance({5, 5, 5}), 0.0);
}

TEST(StdDevTest, Basic) {
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(PearsonTest, PerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSideIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(RanksTest, TiesShareAverageRank) {
  const std::vector<double> r = Ranks({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.3 * i));
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(TopFractionTest, ReturnsLargestSorted) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const std::vector<double> top = TopFraction(v, 0.05);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_DOUBLE_EQ(top.front(), 96.0);
  EXPECT_DOUBLE_EQ(top.back(), 100.0);
}

TEST(TopFractionTest, AtLeastOne) {
  EXPECT_EQ(TopFraction({1, 2, 3}, 0.01).size(), 1u);
}

TEST(BoxTest, Quartiles) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const BoxStats b = Box(v);
  EXPECT_DOUBLE_EQ(b.min, 0.0);
  EXPECT_DOUBLE_EQ(b.q1, 25.0);
  EXPECT_DOUBLE_EQ(b.median, 50.0);
  EXPECT_DOUBLE_EQ(b.q3, 75.0);
  EXPECT_DOUBLE_EQ(b.max, 100.0);
}

}  // namespace
}  // namespace arecel
