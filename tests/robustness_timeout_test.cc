// Watchdog deadline coverage (labelled slow): these tests must genuinely
// wait out deadlines and grace periods, so they live apart from the fast
// robustness suite. Deadlines are kept to fractions of a second — long
// enough to be unambiguous under load, short enough not to drag the tier.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "data/datasets.h"
#include "robustness/failure.h"
#include "robustness/fault_injector.h"
#include "robustness/guard.h"
#include "robustness/runner.h"
#include "workload/generator.h"

namespace arecel {
namespace {

using robust::FaultSpec;
using robust::ParseFaultPlan;
using robust::RunGuarded;
using robust::WrapWithFaults;

struct SharedData {
  Table table = GenerateSynthetic2D(3000, 0.8, 0.5, 50, 23);
  Workload train = GenerateWorkload(table, 200, 24);
  Workload test = GenerateWorkload(table, 40, 25);
};

const SharedData& Shared() {
  static const SharedData* data = new SharedData();
  return *data;
}

TEST(GuardTimeoutTest, CooperativeWorkIsCancelledAndReportedAsTimeout) {
  CancellationToken cancel;
  std::atomic<bool>* flag_seen = new std::atomic<bool>(false);
  auto keep_alive = std::shared_ptr<std::atomic<bool>>(flag_seen);
  const auto result = RunGuarded(
      [&cancel, keep_alive] {
        // Cooperative hang: poll the token in small slices.
        while (!cancel.cancelled())
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        keep_alive->store(true);
        throw CancelledError("saw cancellation");
      },
      /*deadline_seconds=*/0.2,
      {FailureKind::kTrainTimeout, FailureKind::kTrainThrew,
       FailureKind::kTrainCancelled},
      &cancel, keep_alive, /*cancel_grace_seconds=*/1.0);
  // The worker noticed the cancel within the grace window; the stage is
  // still a deadline failure, reported through the cancel kind.
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.kind, FailureKind::kTrainCancelled);
  EXPECT_TRUE(keep_alive->load());
  EXPECT_GE(result.elapsed_seconds, 0.19);
}

TEST(GuardTimeoutTest, UncooperativeWorkIsAbandonedAsTimeout) {
  auto gate = std::make_shared<std::atomic<bool>>(false);
  const auto result = RunGuarded(
      [gate] {
        // Ignores cancellation; only the test's own gate releases it, after
        // the guard has already abandoned the worker.
        while (!gate->load())
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
      },
      /*deadline_seconds=*/0.2,
      {FailureKind::kTrainTimeout, FailureKind::kTrainThrew,
       FailureKind::kTrainCancelled},
      nullptr, gate, /*cancel_grace_seconds=*/0.1);
  EXPECT_EQ(result.kind, FailureKind::kTrainTimeout);
  // The abandoned worker is tracked until it actually finishes: callers use
  // this count to decide whether process teardown is safe.
  EXPECT_GE(robust::AbandonedWorkerCount(), 1);
  gate->store(true);  // release the abandoned worker before test exit.
  for (int i = 0; i < 100 && robust::AbandonedWorkerCount() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(robust::AbandonedWorkerCount(), 0);
}

TEST(RobustTimeoutTest, HangingTrainTimesOutThenFallsBack) {
  std::vector<FaultSpec> plan;
  std::string error;
  // The injected hang polls the TrainContext cancellation token, so the
  // watchdog's cancel releases it; cap is a safety net only.
  ASSERT_TRUE(
      ParseFaultPlan("mhist:train:hang:cap=5", &plan, &error));
  robust::RobustOptions options;
  options.train_deadline_seconds = 0.3;
  options.estimate_deadline_seconds = 10.0;
  options.max_train_attempts = 1;
  const auto report = robust::EvaluateOnDatasetRobust(
      "mhist",
      [&plan] { return WrapWithFaults(MakeEstimator("mhist"), plan); },
      Shared().table, Shared().train, Shared().test, options);
  ASSERT_FALSE(report.failures.empty());
  // The released hang raises CancelledError, so the deadline surfaces as
  // either timeout (grace expired) or cancellation (worker exited in time);
  // both are deadline failures.
  EXPECT_TRUE(report.failures[0].kind == FailureKind::kTrainTimeout ||
              report.failures[0].kind == FailureKind::kTrainCancelled)
      << FailureKindName(report.failures[0].kind);
  EXPECT_EQ(report.served_by, "guarded(postgres)");
}

TEST(RobustTimeoutTest, HangingEstimateStageTimesOutThenFallsBack) {
  std::vector<FaultSpec> plan;
  std::string error;
  // Estimate hangs cannot poll a train context; the cap releases them.
  ASSERT_TRUE(ParseFaultPlan("mhist:estimate:hang:cap=2", &plan, &error));
  robust::RobustOptions options;
  options.train_deadline_seconds = 10.0;
  options.estimate_deadline_seconds = 0.3;
  options.max_train_attempts = 1;
  const auto report = robust::EvaluateOnDatasetRobust(
      "mhist",
      [&plan] { return WrapWithFaults(MakeEstimator("mhist"), plan); },
      Shared().table, Shared().train, Shared().test, options);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_EQ(report.failures[0].kind, FailureKind::kEstimateTimeout);
  EXPECT_EQ(report.failures[0].stage, "estimate");
  EXPECT_EQ(report.served_by, "guarded(postgres)");
  // Give the abandoned worker's capped hang time to unwind before exit.
  std::this_thread::sleep_for(std::chrono::seconds(3));
}

TEST(RobustTimeoutTest, CooperativeTrainerExitsEarlyOnCancellation) {
  // naru polls context.cancellation between epochs: with a tiny deadline
  // its training stops early instead of running to completion.
  robust::RobustOptions options;
  options.train_deadline_seconds = 0.05;
  options.estimate_deadline_seconds = 10.0;
  options.max_train_attempts = 1;
  options.fallback.clear();
  const auto report = robust::EvaluateOnDatasetRobust(
      "naru", [] { return MakeEstimator("naru"); }, Shared().table,
      Shared().train, Shared().test, options);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_TRUE(report.failures[0].kind == FailureKind::kTrainCancelled ||
              report.failures[0].kind == FailureKind::kTrainTimeout)
      << FailureKindName(report.failures[0].kind);
  EXPECT_TRUE(report.served_by.empty());
}

}  // namespace
}  // namespace arecel
