// Tests of the packed-B inference forms (ml/packed.h): the tile-packed
// fp32 layout, the int8 quantized layout, activation quantization, and the
// packed/quant forward kernels — differentially against the unpacked
// kernels and against a scalar emulation of the int8 contract, swept over
// every ISA tier the binary and CPU support.
//
// Bit-identity assertions here are load-bearing: the quant backend's
// numbers (BENCH_ml.json q-error gates, serving estimates) are only
// reproducible across machines because every tier — portable, AVX2,
// AVX-512, with or without VNNI — computes the exact same codes and the
// exact same dequantized floats. A tolerance would hide a tier drifting.

#include "ml/packed.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "ml/kernels.h"
#include "ml/kernels_simd.h"
#include "ml/matrix.h"
#include "ml/nn.h"
#include "util/random.h"

namespace arecel {
namespace {

// Same bound as tests/ml_kernels_test.cc: packed fp32 kernels sum in a
// different order than the unpacked ones only on sub-tile scalar tails, so
// the divergence is float rounding, far below this.
constexpr float kTolerance = 1e-3f;

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  return m;
}

std::vector<float> RandomBias(size_t n, Rng& rng) {
  std::vector<float> bias(n);
  for (auto& v : bias) v = static_cast<float>(rng.Uniform(-1, 1));
  return bias;
}

void ExpectNear(const Matrix& a, const Matrix& b, float tol = kTolerance) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "flat index " << i;
}

void ExpectIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a.data()[i], b.data()[i]) << "flat index " << i;
}

// Adversarial (m, k, n) shapes, mirroring tests/ml_kernels_test.cc: tile
// tails (n % 16 != 0), k-group tails (k % 4 != 0), the k == 0 degenerate
// contraction, single-row / single-column extremes, and shapes spanning
// multiple 16-column tiles.
struct Shape {
  size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},    {1, 1, 7},    {7, 3, 1},    {1, 5, 8},    {2, 8, 9},
    {3, 16, 17},  {4, 7, 33},   {5, 64, 1},   {8, 1, 64},   {4, 0, 9},
    {1, 0, 1},    {33, 17, 65}, {5, 300, 23}, {64, 64, 64}, {13, 31, 130},
};

TEST(PackedMatrixTest, TileLayoutRoundTrip) {
  Rng rng(21);
  for (const Shape& s : kShapes) {
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    PackedMatrix p;
    p.Pack(b);
    SCOPED_TRACE(testing::Message() << "k=" << s.k << " n=" << s.n);
    ASSERT_EQ(p.rows(), s.k);
    ASSERT_EQ(p.cols(), s.n);
    ASSERT_EQ(p.padded_cols() % kPackTileCols, 0u);
    ASSERT_GE(p.padded_cols(), s.n);
    ASSERT_LT(p.padded_cols(), s.n + kPackTileCols);
    // Every original element is at tile-order position; pad columns zero.
    for (size_t kk = 0; kk < s.k; ++kk) {
      for (size_t j = 0; j < p.padded_cols(); ++j) {
        const float got =
            p.tile(j / kPackTileCols)[kk * kPackTileCols + j % kPackTileCols];
        const float want = j < s.n ? b.At(kk, j) : 0.0f;
        ASSERT_EQ(got, want) << "k=" << kk << " j=" << j;
      }
    }
  }
}

TEST(QuantizedDenseTest, WeightCodesScalesAndColumnSums) {
  Rng rng(22);
  for (const Shape& s : kShapes) {
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    QuantizedDense q;
    q.Quantize(b);
    SCOPED_TRACE(testing::Message() << "k=" << s.k << " n=" << s.n);
    ASSERT_EQ(q.rows(), s.k);
    ASSERT_EQ(q.cols(), s.n);
    ASSERT_EQ(q.padded_rows() % kQuantKGroup, 0u);
    ASSERT_EQ(q.padded_cols() % kPackTileCols, 0u);
    for (size_t j = 0; j < q.padded_cols(); ++j) {
      // Re-derive the per-column scheme independently.
      float max_abs = 0.0f;
      for (size_t kk = 0; kk < s.k && j < s.n; ++kk)
        max_abs = std::max(max_abs, std::abs(b.At(kk, j)));
      const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
      ASSERT_EQ(q.scales()[j], j < s.n ? scale : 1.0f) << "col " << j;
      const int8_t* tp =
          q.data() + (j / kPackTileCols) * kPackTileCols * q.padded_rows();
      const size_t c = j % kPackTileCols;
      int32_t sum = 0;
      for (size_t kk = 0; kk < q.padded_rows(); ++kk) {
        const int8_t code =
            tp[(kk / kQuantKGroup) * kPackTileCols * kQuantKGroup +
               c * kQuantKGroup + kk % kQuantKGroup];
        if (j < s.n && kk < s.k) {
          const long want =
              std::clamp<long>(std::lrintf(b.At(kk, j) / scale), -127, 127);
          ASSERT_EQ(code, static_cast<int8_t>(want)) << "k=" << kk << " j=" << j;
          // Symmetric codes reconstruct within half a step.
          ASSERT_NEAR(static_cast<float>(code) * scale, b.At(kk, j),
                      scale * 0.5f + 1e-6f);
        } else {
          ASSERT_EQ(code, 0) << "pad k=" << kk << " j=" << j;  // pad zero.
        }
        sum += code;
      }
      ASSERT_EQ(q.col_sums()[j], sum) << "col " << j;
    }
  }
}

TEST(PackedDenseTest, ForwardMatchesUnpackedFastAcrossShapesAndIsas) {
  for (const char* isa : AvailableMlKernelIsas()) {
    ScopedMlKernelIsa scoped_isa(isa);
    ASSERT_TRUE(scoped_isa.ok()) << isa;
    ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
    Rng rng(23);  // identical data per ISA.
    for (const Shape& s : kShapes) {
      const Matrix input = RandomMatrix(s.m, s.k, rng);
      const Matrix weights = RandomMatrix(s.k, s.n, rng);
      const std::vector<float> bias = RandomBias(s.n, rng);
      PackedDenseWeights packed;
      packed.Build(weights);
      for (bool relu : {false, true}) {
        Matrix unpacked, via_pack;
        DenseForward(input, weights, bias.data(), relu, &unpacked);
        PackedDenseForward(input, packed, bias.data(), relu, &via_pack);
        SCOPED_TRACE(testing::Message() << "isa=" << isa << " m=" << s.m
                                        << " k=" << s.k << " n=" << s.n
                                        << " relu=" << relu);
        ExpectNear(unpacked, via_pack);
      }
    }
  }
}

TEST(PackedDenseTest, ForwardSliceAdversarialWindowsMatchReference) {
  Rng rng(24);
  const size_t m = 6, k = 33, n = 50;
  const Matrix input = RandomMatrix(m, k, rng);
  const Matrix weights = RandomMatrix(k, n, rng);
  const std::vector<float> bias = RandomBias(n, rng);
  PackedDenseWeights packed;
  packed.Build(weights);
  // Windows straddling tile boundaries: inside one tile, crossing 16,
  // tile-aligned, single-column at both ends, full width.
  const size_t slices[][2] = {{0, 1},  {3, 7},  {13, 17}, {15, 2},
                              {16, 16}, {31, 19}, {49, 1},  {0, 50}};
  Matrix ref;
  for (const auto& sl : slices) {
    const size_t begin = sl[0], cols = sl[1];
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
      DenseForwardSlice(input, weights, bias.data(), begin, cols, &ref);
    }
    SCOPED_TRACE(testing::Message() << "begin=" << begin << " cols=" << cols);
    for (const char* isa : AvailableMlKernelIsas()) {
      ScopedMlKernelIsa scoped_isa(isa);
      ASSERT_TRUE(scoped_isa.ok()) << isa;
      SCOPED_TRACE(testing::Message() << "isa=" << isa);
      {
        ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
        Matrix got;
        PackedDenseForwardSlice(input, packed, bias.data(), begin, cols, &got);
        ExpectNear(ref, got);
      }
      {
        ScopedMlKernelBackend scoped(MlKernelBackend::kQuant);
        Matrix got;
        PackedDenseForwardSlice(input, packed, bias.data(), begin, cols, &got);
        // Int8 path: lossy by construction. Error bound: per-term
        // |a|,|w| <= 1 with activation step <= 2/127 and weight step
        // <= 1/127 gives <= ~0.012 per k term worst-case.
        ExpectNear(ref, got, 0.02f + 0.013f * static_cast<float>(k));
      }
    }
  }
}

TEST(QuantizedDenseTest, ActivationQuantizationBitIdenticalAcrossIsas) {
  Rng rng(25);
  // k values hitting every SIMD tail class (8- and 16-lane remainders) and
  // the k-group pad.
  for (size_t k : {1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 33u, 64u, 100u,
                   300u}) {
    const size_t m = 5;
    Matrix input = RandomMatrix(m, k, rng);
    // Adversarial rows: all-zero (range 0), constant, non-negative
    // (post-ReLU regime), non-positive.
    for (size_t kk = 0; kk < k; ++kk) {
      input.At(0, kk) = 0.0f;
      input.At(1, kk) = 0.75f;
      input.At(2, kk) = std::abs(input.At(2, kk));
      input.At(3, kk) = -std::abs(input.At(3, kk));
    }
    const size_t padded = (k + kQuantKGroup - 1) / kQuantKGroup * kQuantKGroup;
    std::vector<uint8_t> base_q;
    std::vector<float> base_s;
    std::vector<int32_t> base_z;
    QuantizeActivations(input, padded, &base_q, &base_s, &base_z);
    ASSERT_EQ(base_q.size(), m * padded);
    for (size_t i = 0; i < m; ++i) {
      for (size_t kk = k; kk < padded; ++kk)
        ASSERT_EQ(base_q[i * padded + kk], 0u) << "pad row " << i;
      // Codes are 7-bit and the zero point is a valid code.
      ASSERT_GE(base_z[i], 0);
      ASSERT_LE(base_z[i], 127);
      for (size_t kk = 0; kk < k; ++kk)
        ASSERT_LE(base_q[i * padded + kk], 127u);
    }
    // Zero row must be exactly representable: every code == zero point.
    for (size_t kk = 0; kk < k; ++kk)
      ASSERT_EQ(base_q[kk], static_cast<uint8_t>(base_z[0]));
    for (const char* isa : AvailableMlKernelIsas()) {
      ScopedMlKernelIsa scoped_isa(isa);
      ASSERT_TRUE(scoped_isa.ok()) << isa;
      std::vector<uint8_t> q;
      std::vector<float> sc;
      std::vector<int32_t> zp;
      QuantizeActivations(input, padded, &q, &sc, &zp);
      SCOPED_TRACE(testing::Message() << "isa=" << isa << " k=" << k);
      ASSERT_EQ(q, base_q);
      ASSERT_EQ(sc, base_s);
      ASSERT_EQ(zp, base_z);
    }
  }
}

// Scalar emulation of the int8 forward contract: activation codes from
// QuantizeActivations, weight codes re-derived from the fp32 matrix, exact
// int32 accumulation, then the shared QuantEpilogue float sequence. Every
// kernel tier must reproduce this bit for bit — this is what makes the
// quant backend's output machine-independent.
Matrix QuantForwardEmulation(const Matrix& input, const Matrix& weights,
                             const float* bias, bool relu) {
  const size_t m = input.rows(), k = input.cols(), n = weights.cols();
  const size_t padded = (k + kQuantKGroup - 1) / kQuantKGroup * kQuantKGroup;
  std::vector<uint8_t> aq;
  std::vector<float> a_scales;
  std::vector<int32_t> a_zps;
  QuantizeActivations(input, padded, &aq, &a_scales, &a_zps);
  Matrix out(m, n);
  for (size_t j = 0; j < n; ++j) {
    float max_abs = 0.0f;
    for (size_t kk = 0; kk < k; ++kk)
      max_abs = std::max(max_abs, std::abs(weights.At(kk, j)));
    const float w_scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    std::vector<int32_t> wq(k);
    int32_t col_sum = 0;
    for (size_t kk = 0; kk < k; ++kk) {
      wq[kk] = static_cast<int32_t>(
          std::clamp<long>(std::lrintf(weights.At(kk, j) / w_scale), -127,
                           127));
      col_sum += wq[kk];
    }
    for (size_t i = 0; i < m; ++i) {
      int32_t acc = 0;
      for (size_t kk = 0; kk < k; ++kk)
        acc += static_cast<int32_t>(aq[i * padded + kk]) * wq[kk];
      out.At(i, j) =
          mlk::QuantEpilogue(acc, a_zps[i], col_sum, a_scales[i], w_scale,
                             bias != nullptr ? bias[j] : 0.0f, relu);
    }
  }
  return out;
}

TEST(QuantizedDenseTest, ForwardBitIdenticalToScalarEmulationAcrossIsas) {
  Rng rng(26);
  for (const Shape& s : kShapes) {
    const Matrix input = RandomMatrix(s.m, s.k, rng);
    const Matrix weights = RandomMatrix(s.k, s.n, rng);
    const std::vector<float> bias = RandomBias(s.n, rng);
    PackedDenseWeights packed;
    packed.Build(weights);
    for (bool relu : {false, true}) {
      const Matrix expected =
          QuantForwardEmulation(input, weights, bias.data(), relu);
      for (const char* isa : AvailableMlKernelIsas()) {
        ScopedMlKernelIsa scoped_isa(isa);
        ASSERT_TRUE(scoped_isa.ok()) << isa;
        ScopedMlKernelBackend scoped(MlKernelBackend::kQuant);
        Matrix got;
        PackedDenseForward(input, packed, bias.data(), relu, &got);
        SCOPED_TRACE(testing::Message() << "isa=" << isa << " m=" << s.m
                                        << " k=" << s.k << " n=" << s.n
                                        << " relu=" << relu);
        ExpectIdentical(expected, got);
      }
    }
  }
}

TEST(QuantizedDenseTest, ForwardAccuracyAgainstFp32) {
  Rng rng(27);
  for (const Shape& s : kShapes) {
    const Matrix input = RandomMatrix(s.m, s.k, rng);
    const Matrix weights = RandomMatrix(s.k, s.n, rng);
    const std::vector<float> bias = RandomBias(s.n, rng);
    PackedDenseWeights packed;
    packed.Build(weights);
    Matrix fp32, quant;
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
      DenseForward(input, weights, bias.data(), /*relu=*/false, &fp32);
    }
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kQuant);
      PackedDenseForward(input, packed, bias.data(), /*relu=*/false, &quant);
    }
    SCOPED_TRACE(testing::Message() << "m=" << s.m << " k=" << s.k
                                    << " n=" << s.n);
    // Worst-case per-k-term quantization error for |a|,|w| <= 1 is
    // ~(a_step + w_step)/2 <= ~0.012; errors are signed so this linear
    // bound is very loose in practice.
    ExpectNear(fp32, quant, 0.02f + 0.013f * static_cast<float>(s.k));
  }
}

TEST(PackedDenseTest, LayerPackLifecycle) {
  Rng rng(28);
  DenseLayer layer(12, 20, Activation::kRelu, rng);
  const Matrix input = RandomMatrix(4, 12, rng);
  Matrix before, after;
  ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
  layer.Forward(input, &before);
  EXPECT_FALSE(layer.packed());
  layer.PackForInference();
  EXPECT_TRUE(layer.packed());
  layer.Forward(input, &after);
  ExpectNear(before, after);
  {
    // Reference backend ignores the pack entirely (exact same scalar path).
    ScopedMlKernelBackend ref(MlKernelBackend::kReference);
    Matrix ref_packed;
    layer.Forward(input, &ref_packed);
    Matrix ref_plain;
    layer.ClearPacked();
    layer.Forward(input, &ref_plain);
    ExpectIdentical(ref_plain, ref_packed);
  }
  // Every weight-mutation route drops the pack.
  layer.PackForInference();
  ASSERT_TRUE(layer.packed());
  layer.mutable_weights();
  EXPECT_FALSE(layer.packed());

  layer.PackForInference();
  Matrix out, grad(4, 20, 1.0f);
  layer.ForwardTrain(input, &out);
  layer.Backward(grad, nullptr);
  layer.AdamStep(1e-3f);
  EXPECT_FALSE(layer.packed()) << "AdamStep must invalidate the pack";

  layer.PackForInference();
  Matrix mask(12, 20, 1.0f);
  layer.SetMask(std::move(mask));
  EXPECT_FALSE(layer.packed()) << "SetMask must invalidate the pack";

  // ForwardSlice also routes through the pack.
  layer.PackForInference();
  Matrix sl_packed, sl_plain;
  layer.ForwardSlice(input, 3, 9, &sl_packed);
  layer.ClearPacked();
  layer.ForwardSlice(input, 3, 9, &sl_plain);
  ExpectNear(sl_plain, sl_packed);
}

TEST(PackedDenseTest, MlpPackedForwardMatchesUnpacked) {
  Rng rng(29);
  Mlp mlp({13, 32, 21}, rng);
  const Matrix input = RandomMatrix(7, 13, rng);
  Matrix unpacked, packed_fast, packed_quant;
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
    mlp.Forward(input, &unpacked);
  }
  mlp.PackForInference();
  for (const DenseLayer& layer : mlp.layers()) EXPECT_TRUE(layer.packed());
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
    mlp.Forward(input, &packed_fast);
  }
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kQuant);
    mlp.Forward(input, &packed_quant);
  }
  ExpectNear(unpacked, packed_fast);
  // Two quantized layers compound the int8 error; still bounded well below
  // the linear worst case.
  ExpectNear(unpacked, packed_quant, 1.5f);
  float max_rel = 0.0f;
  for (size_t i = 0; i < unpacked.size(); ++i) {
    const float denom = std::max(1.0f, std::abs(unpacked.data()[i]));
    max_rel = std::max(max_rel,
                       std::abs(unpacked.data()[i] - packed_quant.data()[i]) /
                           denom);
  }
  EXPECT_LT(max_rel, 0.5f);
}

}  // namespace
}  // namespace arecel
