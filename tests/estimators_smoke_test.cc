// Integration smoke test: every registered estimator trains on a small
// Census-like table and produces sane selectivities with reasonable median
// accuracy. This is the cross-module test gluing data -> workload ->
// estimators -> core together.

#include <memory>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace arecel {
namespace {

class EstimatorSmokeTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = CensusSpec();
    spec.rows = 8000;
    // Trim to 6 columns to keep NN training fast in unit tests.
    spec.num_cols = 6;
    spec.num_categorical = 3;
    spec.domain_sizes.resize(6);
    spec.skews.resize(6);
    spec.correlations.resize(6);
    table_ = new Table(GenerateDataset(spec, 1));
    train_ = new Workload(GenerateWorkload(*table_, 800, 2));
    test_ = new Workload(GenerateWorkload(*table_, 300, 3));
  }
  static void TearDownTestSuite() {
    delete table_;
    delete train_;
    delete test_;
    table_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }

  static Table* table_;
  static Workload* train_;
  static Workload* test_;
};

Table* EstimatorSmokeTest::table_ = nullptr;
Workload* EstimatorSmokeTest::train_ = nullptr;
Workload* EstimatorSmokeTest::test_ = nullptr;

TEST_P(EstimatorSmokeTest, TrainsAndEstimatesSanely) {
  std::unique_ptr<CardinalityEstimator> estimator = MakeEstimator(GetParam());
  ASSERT_NE(estimator, nullptr);
  EXPECT_EQ(estimator->Name(), GetParam());

  TrainContext context;
  context.training_workload = train_;
  context.seed = 7;
  estimator->Train(*table_, context);
  EXPECT_GT(estimator->SizeBytes(), 0u);

  // All selectivities must be valid probabilities.
  for (size_t i = 0; i < test_->size(); ++i) {
    const double sel = estimator->EstimateSelectivity(test_->queries[i]);
    ASSERT_GE(sel, 0.0) << test_->queries[i].ToString(*table_);
    ASSERT_LE(sel, 1.0) << test_->queries[i].ToString(*table_);
  }

  // Median q-error should be far better than random guessing.
  const std::vector<double> errors =
      EvaluateQErrors(*estimator, *test_, table_->num_rows());
  const QuantileSummary summary = Summarize(errors);
  EXPECT_LT(summary.p50, 30.0) << "median q-error too large";
  EXPECT_GE(summary.p50, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, EstimatorSmokeTest,
                         ::testing::ValuesIn(AllEstimatorNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace arecel
