#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace arecel {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{10});
    ASSERT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-5}, int64_t{5});
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(uint64_t{7}));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(7);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, SkewedUnitZeroShapeIsUniform) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.SkewedUnit(0.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, SkewedUnitConcentratesNearZero) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.SkewedUnit(2.0);
  EXPECT_LT(sum / 20000.0, 0.25);  // mean well below uniform's 0.5.
}

TEST(RngTest, SkewedUnitStaysInUnitInterval) {
  Rng rng(10);
  for (double s : {0.0, 0.5, 1.0, 2.0}) {
    for (int i = 0; i < 1000; ++i) {
      const double v = rng.SkewedUnit(s);
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  const std::vector<int> s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<int> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 30u);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(12);
  const std::vector<int> s = rng.SampleWithoutReplacement(10, 10);
  std::set<int> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(RngTest, ZipfUniformWhenExponentZero) {
  Rng rng(13);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Zipf(5, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfSamplerTest, MatchesZipfWeights) {
  Rng rng(14);
  ZipfSampler zipf(4, 1.0);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  // Weights 1, 1/2, 1/3, 1/4 normalized by 25/12.
  const double h = 1.0 + 0.5 + 1.0 / 3 + 0.25;
  for (int k = 0; k < 4; ++k) {
    const double expected = (1.0 / (k + 1)) / h;
    EXPECT_NEAR(counts[k] / static_cast<double>(n), expected, 0.02);
  }
}

TEST(ZipfSamplerTest, InvertCdfMonotone) {
  ZipfSampler zipf(100, 1.2);
  uint64_t prev = 0;
  for (double u = 0.001; u < 1.0; u += 0.001) {
    const uint64_t r = zipf.InvertCdf(u);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(RngTest, ShufflePermutation) {
  Rng rng(15);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(16);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

}  // namespace
}  // namespace arecel
