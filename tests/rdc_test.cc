#include "ml/rdc.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace arecel {
namespace {

TEST(RdcTest, IndependentColumnsScoreLow) {
  Rng rng(1);
  std::vector<double> x(2000), y(2000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Uniform();
    y[i] = rng.Uniform();
  }
  EXPECT_LT(Rdc(x, y), 0.25);
}

TEST(RdcTest, IdenticalColumnsScoreHigh) {
  Rng rng(2);
  std::vector<double> x(2000);
  for (double& v : x) v = rng.Uniform();
  EXPECT_GT(Rdc(x, x), 0.9);
}

TEST(RdcTest, MonotoneNonlinearDependenceScoresHigh) {
  Rng rng(3);
  std::vector<double> x(2000), y(2000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Uniform();
    y[i] = std::exp(3.0 * x[i]);  // nonlinear but deterministic.
  }
  EXPECT_GT(Rdc(x, y), 0.9);
}

TEST(RdcTest, NonMonotoneDependenceDetected) {
  // Pearson correlation of x and (x-0.5)^2 is ~0; RDC must still fire.
  Rng rng(4);
  std::vector<double> x(2000), y(2000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Uniform();
    y[i] = (x[i] - 0.5) * (x[i] - 0.5);
  }
  EXPECT_GT(Rdc(x, y), 0.6);
}

TEST(RdcTest, ProbabilisticCopyScalesWithCorrelation) {
  // The dataset generator's dependence pattern: y = x w.p. c else fresh.
  auto rdc_for = [](double c) {
    Rng rng(5);
    std::vector<double> x(3000), y(3000);
    for (size_t i = 0; i < x.size(); ++i) {
      x[i] = std::floor(rng.Uniform() * 100);
      y[i] = rng.Bernoulli(c) ? x[i] : std::floor(rng.Uniform() * 100);
    }
    return Rdc(x, y);
  };
  const double low = rdc_for(0.1);
  const double mid = rdc_for(0.5);
  const double high = rdc_for(0.95);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
  EXPECT_GT(high, 0.5);
}

TEST(CcaTest, PerfectlyCorrelatedFeatures) {
  Rng rng(6);
  std::vector<std::vector<double>> x(500, std::vector<double>(2));
  std::vector<std::vector<double>> y(500, std::vector<double>(2));
  for (size_t i = 0; i < x.size(); ++i) {
    const double a = rng.Gaussian();
    const double b = rng.Gaussian();
    x[i] = {a, b};
    y[i] = {2.0 * a + 1.0, b - a};  // linear image of x.
  }
  EXPECT_GT(LargestCanonicalCorrelation(x, y, 7), 0.95);
}

TEST(CcaTest, IndependentFeaturesNearZero) {
  Rng rng(8);
  std::vector<std::vector<double>> x(2000, std::vector<double>(2));
  std::vector<std::vector<double>> y(2000, std::vector<double>(2));
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = {rng.Gaussian(), rng.Gaussian()};
    y[i] = {rng.Gaussian(), rng.Gaussian()};
  }
  EXPECT_LT(LargestCanonicalCorrelation(x, y, 9), 0.2);
}

}  // namespace
}  // namespace arecel
