// Tests for the core harness: q-error, evaluation, dynamic-environment
// simulation, hyper-parameter tuning, device model and registry.

#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "core/device.h"
#include "core/dynamic.h"
#include "core/estimator.h"
#include "core/evaluator.h"
#include "core/registry.h"
#include "core/tuning.h"
#include "data/datasets.h"
#include "estimators/traditional/dbms.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace arecel {
namespace {

TEST(QErrorTest, Symmetric) {
  EXPECT_DOUBLE_EQ(QError(100, 10), 10.0);
  EXPECT_DOUBLE_EQ(QError(10, 100), 10.0);
}

TEST(QErrorTest, PerfectIsOne) { EXPECT_DOUBLE_EQ(QError(42, 42), 1.0); }

TEST(QErrorTest, ClampsBelowOneTuple) {
  EXPECT_DOUBLE_EQ(QError(0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(QError(10.0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);
}

TEST(QErrorTest, NegativeEstimatesClampLikeZero) {
  // A (buggy) negative estimate is treated as "less than one tuple", the
  // same defined behavior zero gets — not an abort, not a negative q-error.
  EXPECT_DOUBLE_EQ(QError(-5.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(QError(10.0, -5.0), 10.0);
  EXPECT_DOUBLE_EQ(QError(-1.0, -2.0), 1.0);
}

TEST(QErrorTest, NonFiniteInputsReturnSentinel) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // NaN must not clamp to 1.0 and masquerade as a perfect estimate.
  EXPECT_EQ(QError(nan, 10.0), kInvalidQError);
  EXPECT_EQ(QError(10.0, nan), kInvalidQError);
  EXPECT_EQ(QError(inf, 10.0), kInvalidQError);
  EXPECT_EQ(QError(-inf, 10.0), kInvalidQError);
  EXPECT_EQ(QError(10.0, inf), kInvalidQError);
  EXPECT_TRUE(std::isinf(kInvalidQError));
  // The sentinel orders after every valid q-error, so quantile summaries
  // containing it surface at the max.
  EXPECT_GT(kInvalidQError, QError(1.0, 1e18));
}

TEST(RegistryTest, AllNamesConstruct) {
  const std::vector<std::string> names = AllEstimatorNames();
  EXPECT_EQ(names.size(), 13u);
  for (const std::string& name : names) {
    auto estimator = MakeEstimator(name);
    ASSERT_NE(estimator, nullptr);
    EXPECT_EQ(estimator->Name(), name);
  }
}

TEST(RegistryTest, GroupSizesMatchPaper) {
  EXPECT_EQ(TraditionalEstimatorNames().size(), 8u);
  EXPECT_EQ(LearnedEstimatorNames().size(), 5u);
}

TEST(RegistryTest, AllRegistryNamesCoversPaperAndExtended) {
  const std::vector<std::string> names = AllRegistryNames();
  EXPECT_EQ(names.size(), AllEstimatorNames().size() +
                              ExtendedEstimatorNames().size() +
                              JoinEstimatorNames().size());
  for (const std::string& name : names) {
    auto estimator = MakeEstimator(name);
    ASSERT_NE(estimator, nullptr);
    EXPECT_EQ(estimator->Name(), name);
  }
}

TEST(RegistryTest, QueryDrivenFlags) {
  for (const char* name : {"mscn", "lw-xgb", "lw-nn", "quicksel", "kde-fb"})
    EXPECT_TRUE(MakeEstimator(name)->IsQueryDriven()) << name;
  for (const char* name : {"naru", "deepdb", "postgres", "sampling", "bayes"})
    EXPECT_FALSE(MakeEstimator(name)->IsQueryDriven()) << name;
}

TEST(DeviceTest, CpuIsUnity) {
  for (const std::string& name : AllEstimatorNames()) {
    EXPECT_DOUBLE_EQ(SimulatedSpeedup(name, Device::kCpu, true), 1.0);
    EXPECT_DOUBLE_EQ(SimulatedSpeedup(name, Device::kCpu, false), 1.0);
  }
}

TEST(DeviceTest, GpuHelpsNnMethodsOnly) {
  EXPECT_GT(SimulatedSpeedup("naru", Device::kGpu, true), 1.0);
  EXPECT_GT(SimulatedSpeedup("lw-nn", Device::kGpu, true), 1.0);
  EXPECT_LT(SimulatedSpeedup("mscn", Device::kGpu, true), 1.0);  // slower!
  EXPECT_DOUBLE_EQ(SimulatedSpeedup("lw-xgb", Device::kGpu, true), 1.0);
  EXPECT_DOUBLE_EQ(SimulatedSpeedup("postgres", Device::kGpu, false), 1.0);
}

TEST(EvaluatorDegenerateTest, EmptyTestSetYieldsZeroSummary) {
  const Table table = GenerateSynthetic2D(2000, 0.5, 0.5, 50, 1);
  const Workload train = GenerateWorkload(table, 100, 2);
  Workload empty;
  auto estimator = MakePostgresEstimator();
  const EstimatorReport report =
      EvaluateOnDataset(*estimator, table, train, empty);
  EXPECT_TRUE(report.raw_qerrors.empty());
  EXPECT_DOUBLE_EQ(report.qerror.p50, 0.0);
  EXPECT_DOUBLE_EQ(report.qerror.p95, 0.0);
  EXPECT_DOUBLE_EQ(report.qerror.p99, 0.0);
  EXPECT_DOUBLE_EQ(report.qerror.max, 0.0);
  EXPECT_DOUBLE_EQ(report.avg_inference_ms, 0.0);
}

TEST(EvaluatorDegenerateTest, SingleQueryCollapsesQuantiles) {
  const Table table = GenerateSynthetic2D(2000, 0.5, 0.5, 50, 1);
  const Workload train = GenerateWorkload(table, 100, 2);
  const Workload single = GenerateWorkload(table, 1, 3);
  auto estimator = MakePostgresEstimator();
  const EstimatorReport report =
      EvaluateOnDataset(*estimator, table, train, single);
  ASSERT_EQ(report.raw_qerrors.size(), 1u);
  // Every quantile of a one-element sample is that element.
  EXPECT_DOUBLE_EQ(report.qerror.p50, report.raw_qerrors[0]);
  EXPECT_DOUBLE_EQ(report.qerror.p95, report.raw_qerrors[0]);
  EXPECT_DOUBLE_EQ(report.qerror.p99, report.raw_qerrors[0]);
  EXPECT_DOUBLE_EQ(report.qerror.max, report.raw_qerrors[0]);
}

TEST(EvaluatorDegenerateTest, IdenticalQErrorsCollapseQuantiles) {
  const std::vector<double> identical(37, 4.25);
  const QuantileSummary summary = Summarize(identical);
  EXPECT_DOUBLE_EQ(summary.p50, 4.25);
  EXPECT_DOUBLE_EQ(summary.p95, 4.25);
  EXPECT_DOUBLE_EQ(summary.p99, 4.25);
  EXPECT_DOUBLE_EQ(summary.max, 4.25);
}

TEST(EvaluatorDegenerateTest, SummaryHookMatchesEvaluateOnDataset) {
  const Table table = GenerateSynthetic2D(2000, 0.5, 0.5, 50, 1);
  const Workload train = GenerateWorkload(table, 100, 2);
  const Workload test = GenerateWorkload(table, 40, 3);
  auto estimator = MakePostgresEstimator();
  const EstimatorReport report =
      EvaluateOnDataset(*estimator, table, train, test);
  const QuantileSummary hook =
      EvaluateQErrorSummary(*estimator, test, table.num_rows());
  EXPECT_DOUBLE_EQ(hook.p50, report.qerror.p50);
  EXPECT_DOUBLE_EQ(hook.max, report.qerror.max);
}

TEST(EvaluatorTest, ReportFieldsPopulated) {
  const Table table = GenerateSynthetic2D(5000, 0.5, 0.5, 50, 1);
  const Workload train = GenerateWorkload(table, 200, 2);
  const Workload test = GenerateWorkload(table, 100, 3);
  auto estimator = MakePostgresEstimator();
  const EstimatorReport report =
      EvaluateOnDataset(*estimator, table, train, test);
  EXPECT_EQ(report.estimator, "postgres");
  EXPECT_EQ(report.raw_qerrors.size(), 100u);
  EXPECT_GE(report.qerror.max, report.qerror.p99);
  EXPECT_GE(report.qerror.p99, report.qerror.p50);
  EXPECT_GT(report.train_seconds, 0.0);
  EXPECT_GT(report.model_size_bytes, 0u);
}

TEST(DynamicTest, ProfileAndMixture) {
  const Table base = GenerateSynthetic2D(20000, 0.5, 0.8, 100, 4);
  const Table updated = AppendCorrelatedUpdate(base, 0.3, 5);
  const Workload test = GenerateWorkload(updated, 200, 6);
  auto estimator = MakePostgresEstimator();
  estimator->Train(base, {});

  DynamicOptions options;
  const DynamicProfile profile = ProfileDynamicUpdate(
      *estimator, updated, base.num_rows(), test, options);
  EXPECT_EQ(profile.stale_errors.size(), test.size());
  EXPECT_EQ(profile.updated_errors.size(), test.size());
  EXPECT_GT(profile.update_seconds, 0.0);

  // Large T: mixture converges to the updated model.
  const double updated_p99 = Percentile(profile.updated_errors, 99);
  EXPECT_NEAR(DynamicP99(profile, 1e9), updated_p99, 1e-9);
  // Tiny T: update misses the window; everything stale.
  const double stale_p99 = Percentile(profile.stale_errors, 99);
  EXPECT_DOUBLE_EQ(DynamicP99(profile, profile.update_seconds * 0.5),
                   stale_p99);
  EXPECT_FALSE(FinishedInTime(profile, profile.update_seconds * 0.5));
}

TEST(DynamicTest, SimulateWrapperConsistent) {
  const Table base = GenerateSynthetic2D(10000, 0.5, 0.8, 50, 7);
  const Table updated = AppendCorrelatedUpdate(base, 0.2, 8);
  const Workload test = GenerateWorkload(updated, 100, 9);
  auto estimator = MakePostgresEstimator();
  estimator->Train(base, {});
  DynamicOptions options;
  options.interval_seconds = 1e9;
  const DynamicResult result = SimulateDynamicEnvironment(
      *estimator, updated, base.num_rows(), test, options);
  EXPECT_TRUE(result.finished_in_time);
  EXPECT_NEAR(result.dynamic_p99, result.updated_p99, 1e-9);
}

TEST(DynamicTest, StaleModelWorseThanUpdated) {
  // After the correlation-shifting append, refreshed statistics must beat
  // stale ones on the updated workload.
  const Table base = GenerateSynthetic2D(30000, 1.0, 0.2, 100, 10);
  const Table updated = AppendCorrelatedUpdate(base, 0.2, 11);
  const Workload test = GenerateWorkload(updated, 300, 12);
  auto estimator = MakePostgresEstimator();
  estimator->Train(base, {});
  DynamicOptions options;
  const DynamicProfile profile = ProfileDynamicUpdate(
      *estimator, updated, base.num_rows(), test, options);
  EXPECT_LE(Percentile(profile.updated_errors, 99),
            Percentile(profile.stale_errors, 99) * 1.05);
}

TEST(TuningTest, FindsBestAndWorst) {
  const Table table = GenerateSynthetic2D(10000, 0.5, 0.9, 100, 13);
  const Workload train = GenerateWorkload(table, 400, 14);
  const Workload validation = GenerateWorkload(table, 150, 15);
  // Candidates with known quality ordering: full stats vs absurdly coarse.
  std::vector<TuningCandidate> candidates;
  candidates.push_back({"fine", [] {
                          ColumnStats::Options options;
                          options.num_buckets = 200;
                          options.num_mcvs = 200;
                          return std::make_unique<PerColumnStatsEstimator>(
                              "fine", options,
                              PerColumnStatsEstimator::Combination::
                                  kIndependence);
                        }});
  candidates.push_back({"coarse", [] {
                          ColumnStats::Options options;
                          options.num_buckets = 1;
                          options.num_mcvs = 0;
                          return std::make_unique<PerColumnStatsEstimator>(
                              "coarse", options,
                              PerColumnStatsEstimator::Combination::
                                  kIndependence);
                        }});
  const TuningResult result =
      RunTuning(candidates, table, train, validation);
  EXPECT_EQ(result.outcomes.size(), 2u);
  EXPECT_EQ(result.best().label, "fine");
  EXPECT_GE(result.WorstBestRatio(), 1.0);
}

}  // namespace
}  // namespace arecel
