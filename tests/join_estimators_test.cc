// Behavioral tests for the three join-capable estimator families
// (DESIGN.md §13): the correlated-sampling estimator is exact when its
// sample covers the tables, the independence baseline reproduces the
// textbook 1/max(distinct) math on an uncorrelated star, MSCN-join learns
// a non-constant model, and all three serve the single-table contract
// through the wrap-as-degenerate-join bridge.

#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"

#include "core/registry.h"
#include "data/schema.h"
#include "estimators/join/join_sampling.h"
#include "join/join_executor.h"
#include "workload/generator.h"
#include "workload/join_generator.h"

namespace arecel {
namespace {

struct StarFixture {
  Schema schema;
  JoinWorkload train;
  std::vector<JoinQuery> probes;
};

StarFixture BuildStar(const StarSchemaOptions& options, uint64_t seed) {
  StarFixture fixture;
  fixture.schema = GenerateStarSchema(options, seed);
  fixture.train = GenerateJoinWorkload(fixture.schema, 80, seed + 1);
  fixture.probes = GenerateJoinQueries(fixture.schema, 25, seed + 2);
  return fixture;
}

JoinTrainContext ContextFor(const StarFixture& fixture, uint64_t seed) {
  JoinTrainContext context;
  context.training_workload = &fixture.train;
  context.seed = seed;
  return context;
}

TEST(JoinEstimatorsTest, AllFamiliesProduceBoundedEstimates) {
  StarSchemaOptions options;
  options.fact_rows = 1500;
  options.num_dimensions = 2;
  options.dim_rows = 48;
  const StarFixture fixture = BuildStar(options, /*seed=*/201);
  for (const std::string& name : JoinEstimatorNames()) {
    auto estimator = MakeEstimator(name);
    ASSERT_TRUE(estimator->SupportsJoins()) << name;
    estimator->TrainJoin(fixture.schema, ContextFor(fixture, 202));
    for (const JoinQuery& probe : fixture.probes) {
      const double sel = estimator->EstimateJoinSelectivity(probe);
      EXPECT_TRUE(std::isfinite(sel)) << name;
      EXPECT_GE(sel, 0.0) << name;
      EXPECT_LE(sel, 1.0) << name;
      const double card =
          estimator->EstimateJoinCardinality(fixture.schema, probe);
      EXPECT_GE(card, 0.0) << name;
      EXPECT_LE(card,
                join::JoinExecutor::RowsProduct(fixture.schema, probe))
          << name;
    }
  }
}

// With the sample budget above every table's row count the correlated
// sample *is* the join: under PK–FK integrity the estimate equals the
// ground truth to float precision, the property that makes sampling-join
// the reference point bench_join compares the learned family against.
TEST(JoinEstimatorsTest, FullSampleJoinSamplingIsExact) {
  StarSchemaOptions options;
  options.fact_rows = 800;
  options.num_dimensions = 2;
  options.dim_rows = 32;
  const StarFixture fixture = BuildStar(options, /*seed=*/211);
  std::string detail;
  ASSERT_TRUE(fixture.schema.CheckIntegrity(&detail)) << detail;

  JoinSamplingEstimator estimator(/*max_sample_rows=*/100000);
  estimator.TrainJoin(fixture.schema, ContextFor(fixture, 212));
  const join::JoinExecutor executor(fixture.schema);
  for (const JoinQuery& probe : fixture.probes) {
    EXPECT_NEAR(estimator.EstimateJoinSelectivity(probe),
                executor.Selectivity(probe), 1e-12)
        << probe.ToString();
  }
}

// Uncorrelated, unskewed star: per-table predicates are independent of the
// join and fan-out is uniform, so the textbook independence estimate is
// essentially right — the no-predicate join must come out at exactly
// 1 / dim_rows (fk distinct = pk distinct = dim_rows).
TEST(JoinEstimatorsTest, IndependenceBaselineIsExactWhenIndependenceHolds) {
  StarSchemaOptions options;
  options.fact_rows = 2000;
  options.num_dimensions = 1;
  options.dim_rows = 50;
  options.fk_skew = 0.0;
  options.correlation = 0.0;
  const StarFixture fixture = BuildStar(options, /*seed=*/221);

  auto estimator = MakeEstimator("postgres-join");
  estimator->TrainJoin(fixture.schema, ContextFor(fixture, 222));
  JoinQuery no_predicates;
  no_predicates.tables.push_back({"fact", {}});
  no_predicates.tables.push_back({"dim0", {}});
  no_predicates.joins.push_back(
      {fixture.schema.foreign_keys()[0].table,
       fixture.schema.foreign_keys()[0].column,
       fixture.schema.foreign_keys()[0].ref_table,
       fixture.schema.foreign_keys()[0].ref_column});
  EXPECT_NEAR(estimator->EstimateJoinSelectivity(no_predicates), 1.0 / 50.0,
              1e-9);
}

// The learned model must actually have learned something: estimates vary
// across probes (no constant-output collapse) and training is
// seed-deterministic (also enforced registry-wide by conformance).
TEST(JoinEstimatorsTest, MscnJoinLearnsANonConstantModel) {
  StarSchemaOptions options;
  options.fact_rows = 1500;
  options.num_dimensions = 2;
  options.dim_rows = 48;
  const StarFixture fixture = BuildStar(options, /*seed=*/231);
  auto estimator = MakeEstimator("mscn-join");
  estimator->TrainJoin(fixture.schema, ContextFor(fixture, 232));
  std::vector<double> estimates;
  estimates.reserve(fixture.probes.size());
  for (const JoinQuery& probe : fixture.probes)
    estimates.push_back(estimator->EstimateJoinSelectivity(probe));
  const auto [min_it, max_it] =
      std::minmax_element(estimates.begin(), estimates.end());
  EXPECT_LT(*min_it, *max_it);
}

// The single-table CardinalityEstimator contract is served through the
// degenerate-join bridge; full-sample sampling-join must therefore hit the
// block-scan ground truth exactly on single-table workloads too.
TEST(JoinEstimatorsTest, SingleTableBridgeMatchesGroundTruth) {
  const Table table = [] {
    StarSchemaOptions options;
    options.fact_rows = 1000;
    options.num_dimensions = 1;
    Schema schema = GenerateStarSchema(options, /*seed=*/241);
    return schema.table("fact");
  }();
  const Workload workload = GenerateWorkload(table, 60, /*seed=*/242);

  JoinSamplingEstimator sampler(/*max_sample_rows=*/100000);
  TrainContext context;
  context.training_workload = &workload;
  context.seed = 243;
  sampler.Train(table, context);
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_NEAR(sampler.EstimateSelectivity(workload.queries[i]),
                workload.selectivities[i], 1e-12)
        << i;
  }

  // The other two families at least stay bounded through the bridge.
  for (const std::string& name : {std::string("postgres-join"),
                                  std::string("mscn-join")}) {
    auto estimator = MakeEstimator(name);
    estimator->Train(table, context);
    for (const Query& query : workload.queries) {
      const double sel = estimator->EstimateSelectivity(query);
      EXPECT_TRUE(std::isfinite(sel)) << name;
      EXPECT_GE(sel, 0.0) << name;
      EXPECT_LE(sel, 1.0) << name;
    }
  }
}

}  // namespace
}  // namespace arecel
