#include "core/rules.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "data/datasets.h"
#include "workload/generator.h"

namespace arecel {
namespace {

class RulesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(GenerateSynthetic2D(20000, 0.5, 1.0, 500, 3));
    train_ = new Workload(GenerateWorkload(*table_, 800, 4));
  }
  static void TearDownTestSuite() {
    delete table_;
    delete train_;
  }
  static Table* table_;
  static Workload* train_;
};

Table* RulesTest::table_ = nullptr;
Workload* RulesTest::train_ = nullptr;

std::vector<RuleResult> CheckFor(const std::string& name, const Table& table,
                                 const Workload& train) {
  auto estimator = MakeEstimator(name);
  TrainContext context;
  context.training_workload = &train;
  // Cheap models: rules probe behaviour, not accuracy.
  estimator->Train(table, context);
  return CheckLogicalRules(*estimator, table);
}

const RuleResult& Find(const std::vector<RuleResult>& results,
                       const std::string& rule) {
  for (const RuleResult& r : results)
    if (r.rule == rule) return r;
  ADD_FAILURE() << "missing rule " << rule;
  static RuleResult dummy;
  return dummy;
}

TEST_F(RulesTest, ReturnsAllFiveRules) {
  const auto results = CheckFor("postgres", *table_, *train_);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].rule, "monotonicity");
  EXPECT_EQ(results[1].rule, "consistency");
  EXPECT_EQ(results[2].rule, "stability");
  EXPECT_EQ(results[3].rule, "fidelity-a");
  EXPECT_EQ(results[4].rule, "fidelity-b");
}

TEST_F(RulesTest, DeepDbSatisfiesAllRules) {
  // The paper's Table 6: DeepDB is the only learned method passing all
  // five (additions and multiplications over exact histograms).
  const auto results = CheckFor("deepdb", *table_, *train_);
  for (const RuleResult& rule : results)
    EXPECT_TRUE(rule.satisfied()) << rule.rule << ": " << rule.violations;
}

TEST_F(RulesTest, NaruViolatesStabilityButKeepsFidelity) {
  const auto results = CheckFor("naru", *table_, *train_);
  EXPECT_FALSE(Find(results, "stability").satisfied());
  EXPECT_TRUE(Find(results, "fidelity-a").satisfied());
  EXPECT_TRUE(Find(results, "fidelity-b").satisfied());
}

TEST_F(RulesTest, RegressionMethodsViolateConsistencyAndFidelityB) {
  for (const char* name : {"lw-xgb", "lw-nn", "mscn"}) {
    const auto results = CheckFor(name, *table_, *train_);
    EXPECT_FALSE(Find(results, "consistency").satisfied()) << name;
    EXPECT_TRUE(Find(results, "stability").satisfied()) << name;
  }
  // LW-XGB's tree leaves cannot reach zero, and MSCN has no constraint at
  // all, so both must violate fidelity-B. (LW-NN sometimes saturates its
  // CE features to a genuine ~0 on invalid ranges, so it is not asserted.)
  for (const char* name : {"lw-xgb", "mscn"}) {
    const auto results = CheckFor(name, *table_, *train_);
    EXPECT_FALSE(Find(results, "fidelity-b").satisfied()) << name;
  }
}

TEST_F(RulesTest, SamplingSatisfiesEverything) {
  // A plain uniform sample is exact arithmetic over a fixed row set.
  const auto results = CheckFor("sampling", *table_, *train_);
  for (const RuleResult& rule : results)
    EXPECT_TRUE(rule.satisfied()) << rule.rule;
}

}  // namespace
}  // namespace arecel
