// Maintenance-worker tests (src/store/maintenance_worker.h): store-backed
// write-back with bounded retry/backoff, warm restarts through the store,
// corrupt-payload poisoning, staleness refresh (plain and watchdog-guarded),
// and a concurrent serving smoke for the TSan preset (matched by the
// "Maint" in these suite names).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "data/datasets.h"
#include "serve/model_manager.h"
#include "store/maintenance_worker.h"
#include "store/model_store.h"

namespace arecel::store {
namespace {

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "arecel_maint_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++);
}

Table SmallTable(uint64_t seed = 7) {
  return GenerateSynthetic2D(/*rows=*/2000, /*skew=*/1.0,
                             /*correlation=*/0.4, /*domain_size=*/30, seed);
}

std::shared_ptr<ModelStore> MakeStore(const std::string& dir,
                                      std::vector<StoreFaultSpec> plan = {}) {
  StoreOptions options;
  options.root_dir = dir;
  options.fault_plan = std::move(plan);
  return std::make_shared<ModelStore>(std::move(options));
}

std::shared_ptr<serve::ModelManager> MakeManager(
    std::shared_ptr<ModelStore> store) {
  serve::ModelManagerOptions options;
  options.store = std::move(store);
  options.train_query_count = 100;
  auto manager = std::make_shared<serve::ModelManager>(std::move(options));
  manager->RegisterDataset("synth", SmallTable());
  return manager;
}

MaintenanceOptions FastWorkerOptions() {
  MaintenanceOptions options;
  options.interval_ms = 5;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 4;
  return options;
}

TEST(MaintenanceWorkerTest, WriteBackThenWarmRestart) {
  const std::string dir = UniqueDir("writeback");
  auto store = MakeStore(dir);
  auto manager = MakeManager(store);

  // Cold train enqueues a save; nothing reaches the store until the worker
  // runs — serving threads never pay for persistence.
  ASSERT_NE(manager->GetModel("synth", "postgres"), nullptr);
  EXPECT_EQ(manager->counters().cold_trains, 1u);
  EXPECT_EQ(manager->counters().saves_enqueued, 1u);
  EXPECT_EQ(store->stats().puts, 0u);

  MaintenanceWorker worker(manager, store, FastWorkerOptions());
  EXPECT_GE(worker.TickNow(), 1u);
  EXPECT_EQ(worker.stats().saves_committed, 1u);
  EXPECT_EQ(store->stats().commits, 1u);

  // A new process over the same store warm-starts: loaded, not trained.
  auto restarted = MakeManager(store);
  auto model = restarted->GetModel("synth", "postgres");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->source, "loaded");
  EXPECT_EQ(restarted->counters().persisted_loads, 1u);
  EXPECT_EQ(restarted->counters().cold_trains, 0u);
}

TEST(MaintenanceWorkerTest, WriteBackRetriesWithBackoff) {
  const std::string dir = UniqueDir("retry");
  // First two write ops fail like ENOSPC; the third Put attempt lands.
  auto store = MakeStore(
      dir, {StoreFaultSpec{StoreFaultKind::kEnospc, /*after_ops=*/0,
                           /*times=*/2}});
  auto manager = MakeManager(store);
  ASSERT_NE(manager->GetModel("synth", "postgres"), nullptr);

  MaintenanceOptions options = FastWorkerOptions();
  options.save_max_attempts = 3;
  MaintenanceWorker worker(manager, store, options);
  EXPECT_GE(worker.TickNow(), 1u);

  const WorkerStats stats = worker.stats();
  EXPECT_EQ(stats.saves_committed, 1u);
  EXPECT_EQ(stats.save_retries, 2u);
  EXPECT_EQ(stats.save_failures, 0u);
  EXPECT_EQ(store->stats().commit_failures, 2u);
  EXPECT_EQ(store->stats().commits, 1u);
}

TEST(MaintenanceWorkerTest, WriteBackGivesUpAfterAttemptBudget) {
  const std::string dir = UniqueDir("giveup");
  auto store = MakeStore(
      dir, {StoreFaultSpec{StoreFaultKind::kEnospc, /*after_ops=*/0,
                           /*times=*/-1}});  // the disk never recovers.
  auto manager = MakeManager(store);
  ASSERT_NE(manager->GetModel("synth", "postgres"), nullptr);

  MaintenanceOptions options = FastWorkerOptions();
  options.save_max_attempts = 2;
  MaintenanceWorker worker(manager, store, options);
  worker.TickNow();

  const WorkerStats stats = worker.stats();
  EXPECT_EQ(stats.saves_committed, 0u);
  EXPECT_EQ(stats.save_failures, 1u);
  EXPECT_EQ(stats.save_retries, 1u);
}

TEST(MaintenanceWorkerTest, CorruptStorePayloadPoisonsOnlyThatLoad) {
  const std::string dir = UniqueDir("poison");
  auto store = MakeStore(dir);
  // A committed generation whose frame is valid (CRC passes) but whose
  // payload is garbage: the typed loader must reject it as corrupt and the
  // manager must discard the instance and cold-train.
  ASSERT_TRUE(store->Put("synth", "postgres", "not a model"));

  auto manager = MakeManager(store);
  auto model = manager->GetModel("synth", "postgres");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->source, "trained");
  EXPECT_EQ(manager->counters().corrupt_loads, 1u);
  EXPECT_EQ(manager->counters().cold_trains, 1u);
  EXPECT_EQ(manager->counters().persisted_loads, 0u);
}

TEST(MaintenanceWorkerTest, RefreshesStaleModelsAndPersistsThem) {
  const std::string dir = UniqueDir("refresh");
  auto store = MakeStore(dir);
  auto manager = MakeManager(store);
  ASSERT_NE(manager->GetModel("synth", "postgres"), nullptr);

  MaintenanceWorker worker(manager, store, FastWorkerOptions());
  worker.TickNow();  // persist generation 1.
  ASSERT_EQ(store->stats().commits, 1u);

  const uint64_t version = manager->ApplyUpdate("synth", 0.2, /*seed=*/11);
  ASSERT_GE(version, 1u);
  worker.TickNow();  // refresh the stale model, then persist generation 2.

  EXPECT_EQ(worker.stats().refreshes, 1u);
  auto model = manager->GetModel("synth", "postgres");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->data_version, version);
  EXPECT_EQ(model->source, "refreshed");

  std::string payload;
  uint64_t generation = 0;
  ASSERT_TRUE(store->Get("synth", "postgres", &payload, &generation));
  EXPECT_EQ(generation, 2u);
}

TEST(MaintenanceWorkerTest, GuardedRefreshCompletesUnderDeadline) {
  const std::string dir = UniqueDir("guarded");
  auto store = MakeStore(dir);
  auto manager = MakeManager(store);
  ASSERT_NE(manager->GetModel("synth", "postgres"), nullptr);

  MaintenanceOptions options = FastWorkerOptions();
  options.refresh_deadline_seconds = 30.0;  // generous; exercises RunGuarded.
  MaintenanceWorker worker(manager, store, options);
  worker.TickNow();
  manager->ApplyUpdate("synth", 0.2, /*seed=*/13);
  worker.TickNow();
  EXPECT_EQ(worker.stats().refreshes, 1u);
  EXPECT_EQ(worker.stats().refresh_failures, 0u);
}

// Concurrency smoke for the TSan preset: a running background worker, two
// serving threads estimating, and a data update racing a write-back.
TEST(MaintServeSmokeTest, ConcurrentServeUpdateAndMaintenance) {
  const std::string dir = UniqueDir("smoke");
  auto store = MakeStore(dir);
  auto manager = MakeManager(store);

  MaintenanceWorker worker(manager, store, FastWorkerOptions());
  worker.Start();

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      Query query;
      query.predicates.push_back(Predicate{0, 2.0, 20.0});
      while (!done.load()) {
        auto model = manager->GetModel("synth", "postgres");
        if (model != nullptr) {
          std::unique_lock<std::mutex> lock;
          if (!model->thread_safe)
            lock = std::unique_lock<std::mutex>(model->inference_mutex);
          (void)model->estimator->EstimateSelectivity(query);
        }
      }
    });
  }
  manager->ApplyUpdate("synth", 0.1, /*seed=*/17);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  done = true;
  for (std::thread& t : threads) t.join();
  worker.Stop();
  manager->WaitForRefreshes();

  // The worker ran: the cold train reached the store.
  EXPECT_GE(worker.stats().ticks, 1u);
  EXPECT_GE(store->stats().commits, 1u);
  EXPECT_EQ(store->VerifyAll(), 0u);
}

}  // namespace
}  // namespace arecel::store
