// Tests for the additional inference machinery: DQM-D's VEGAS sampler and
// Bayes' progressive-sampling mode.

#include <cmath>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/learned/binning.h"
#include "estimators/learned/dqm.h"
#include "estimators/traditional/bayes.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace arecel {
namespace {

TEST(ColumnBinningTest, SmallDomainOneBinPerValue) {
  Table t("t");
  t.AddColumn("a", {1, 2, 2, 5}, false);
  t.Finalize();
  const auto binnings = BuildColumnBinnings(t, 16);
  ASSERT_EQ(binnings.size(), 1u);
  EXPECT_EQ(binnings[0].num_bins(), 3);
  EXPECT_EQ(binnings[0].Range(2, 5), (std::pair<int, int>{1, 2}));
  EXPECT_EQ(binnings[0].BinForValue(2.0), 1);
  EXPECT_EQ(binnings[0].BinForValue(100.0), 2);  // clamps to edge bin.
}

TEST(ColumnBinningTest, LargeDomainPacksEqualMass) {
  std::vector<double> vals;
  for (int i = 0; i < 10000; ++i) vals.push_back(i % 1000);
  Table t("t");
  t.AddColumn("a", std::move(vals), false);
  t.Finalize();
  const auto binnings = BuildColumnBinnings(t, 50);
  EXPECT_LE(binnings[0].num_bins(), 50);
  EXPECT_GE(binnings[0].num_bins(), 40);
  // Bins tile the domain without gaps.
  for (int b = 1; b < binnings[0].num_bins(); ++b)
    EXPECT_GT(binnings[0].bin_min[static_cast<size_t>(b)],
              binnings[0].bin_max[static_cast<size_t>(b - 1)]);
}

TEST(ColumnBinningTest, EncodeRowsRoundTrips) {
  const Table t = GenerateSynthetic2D(3000, 0.5, 0.5, 40, 2);
  const auto binnings = BuildColumnBinnings(t, 64);
  std::vector<int32_t> codes;
  EncodeRowsWithBinnings(t, binnings, &codes);
  ASSERT_EQ(codes.size(), t.num_rows() * 2);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < 2; ++c) {
      const int bin = codes[r * 2 + c];
      const double v = t.column(c).values[r];
      EXPECT_GE(v, binnings[c].bin_min[static_cast<size_t>(bin)]);
      EXPECT_LE(v, binnings[c].bin_max[static_cast<size_t>(bin)]);
    }
  }
}

TEST(DqmDTest, AccuracyTracksTheModel) {
  const Table table = GenerateSynthetic2D(30000, 0.5, 1.0, 100, 51);
  DqmDEstimator::Options options;
  options.epochs = 15;
  DqmDEstimator dqm(options);
  dqm.Train(table, {});
  Query q;
  q.predicates.push_back({0, 20, 40});
  q.predicates.push_back({1, 20, 40});
  const double act = ExecuteSelectivity(table, q) *
                     static_cast<double>(table.num_rows());
  const double est = dqm.EstimateCardinality(q, table.num_rows());
  EXPECT_LT(QError(est, act), 3.0);
}

TEST(DqmDTest, EmptyAndFullRanges) {
  const Table table = GenerateSynthetic2D(10000, 0.5, 0.5, 50, 52);
  DqmDEstimator::Options options;
  options.epochs = 3;
  DqmDEstimator dqm(options);
  dqm.Train(table, {});
  Query empty;
  empty.predicates.push_back({0, 30, 10});
  EXPECT_DOUBLE_EQ(dqm.EstimateSelectivity(empty), 0.0);
  Query full;
  full.predicates.push_back({0, table.column(0).min(),
                             table.column(0).max()});
  // VEGAS over the whole box integrates the (normalized) model: near 1.
  EXPECT_NEAR(dqm.EstimateSelectivity(full), 1.0, 0.2);
}

TEST(DqmDTest, MoreStagesReduceVariance) {
  const Table table = GenerateSynthetic2D(20000, 1.0, 0.8, 200, 53);
  Query q;
  q.predicates.push_back({0, 20, 120});
  q.predicates.push_back({1, 40, 90});

  auto spread_for = [&](int stages) {
    DqmDEstimator::Options options;
    options.epochs = 8;
    options.stages = stages;
    options.stage_samples = 32;
    DqmDEstimator dqm(options);
    dqm.Train(table, {});
    std::vector<double> estimates;
    for (int i = 0; i < 30; ++i)
      estimates.push_back(dqm.EstimateSelectivity(q));
    return StdDev(estimates);
  };
  // Adaptive refinement should not blow up the estimator's spread.
  EXPECT_LT(spread_for(4), spread_for(1) * 3.0 + 1e-6);
}

TEST(BayesSampledTest, AgreesWithExactInExpectation) {
  const Table table = GenerateSynthetic2D(20000, 0.8, 0.9, 100, 54);
  BayesEstimator exact;
  exact.Train(table, {});
  BayesEstimator::Options options;
  options.inference = BayesEstimator::Inference::kProgressiveSampling;
  options.sample_count = 400;
  BayesEstimator sampled(options);
  sampled.Train(table, {});

  const Workload probe = GenerateWorkload(table, 40, 55);
  for (size_t i = 0; i < probe.size(); ++i) {
    const double e = exact.EstimateSelectivity(probe.queries[i]);
    double mean = 0.0;
    for (int rep = 0; rep < 5; ++rep)
      mean += sampled.EstimateSelectivity(probe.queries[i]);
    mean /= 5.0;
    EXPECT_NEAR(mean, e, std::max(0.02, e * 0.35)) << i;
  }
}

TEST(BayesSampledTest, StochasticAcrossCalls) {
  const Table table = GenerateSynthetic2D(20000, 0.5, 1.0, 500, 56);
  BayesEstimator::Options options;
  options.inference = BayesEstimator::Inference::kProgressiveSampling;
  options.sample_count = 16;  // few samples -> visible noise.
  BayesEstimator sampled(options);
  sampled.Train(table, {});
  Query q;
  q.predicates.push_back({0, 100, 400});
  q.predicates.push_back({1, 180, 220});
  bool varied = false;
  const double first = sampled.EstimateSelectivity(q);
  for (int i = 0; i < 20 && !varied; ++i)
    varied = sampled.EstimateSelectivity(q) != first;
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace arecel
