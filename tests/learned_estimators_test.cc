// Behavioural tests of the five learned estimators: what each model class
// is supposed to capture (and how it fails), per the paper's taxonomy.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/learned/deepdb.h"
#include "estimators/learned/lw_features.h"
#include "estimators/learned/lw_nn.h"
#include "estimators/learned/lw_xgb.h"
#include "estimators/learned/mscn.h"
#include "estimators/learned/naru.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace arecel {
namespace {

struct SharedData {
  Table table = GenerateSynthetic2D(30000, 0.8, 0.9, 200, 5);
  Workload train = GenerateWorkload(table, 1200, 6);
  Workload test = GenerateWorkload(table, 300, 7);
};

const SharedData& Shared() {
  static const SharedData* data = new SharedData();
  return *data;
}

double P95(const CardinalityEstimator& estimator) {
  return Percentile(
      EvaluateQErrors(estimator, Shared().test, Shared().table.num_rows()),
      95);
}

TEST(LwFeaturizerTest, FeatureLayout) {
  LwFeaturizer featurizer;
  featurizer.Build(Shared().table);
  EXPECT_EQ(featurizer.FeatureDim(), 2u * 2 + 3);
  Query q;
  q.predicates.push_back({0, 10, 50});
  const std::vector<float> f = featurizer.Featurize(q);
  ASSERT_EQ(f.size(), featurizer.FeatureDim());
  // Column 1 unconstrained -> [0, 1]; column 0 normalized sub-range.
  EXPECT_GT(f[0], 0.0f);
  EXPECT_LT(f[1], 1.0f);
  EXPECT_FLOAT_EQ(f[2], 0.0f);
  EXPECT_FLOAT_EQ(f[3], 1.0f);
}

TEST(LwFeaturizerTest, CeFeaturesOrdering) {
  LwFeaturizer featurizer;
  featurizer.Build(Shared().table);
  Query q;
  q.predicates.push_back({0, 10, 50});
  q.predicates.push_back({1, 10, 50});
  // MinSel >= AVI always (product of <=1 factors).
  EXPECT_GE(featurizer.MinSel(q), featurizer.Avi(q));
  // EBO between AVI and MinSel.
  EXPECT_GE(featurizer.Ebo(q), featurizer.Avi(q) - 1e-12);
  EXPECT_LE(featurizer.Ebo(q), featurizer.MinSel(q) + 1e-12);
}

TEST(LwFeaturizerTest, LogLabelClampsToHalfTuple) {
  EXPECT_DOUBLE_EQ(LwFeaturizer::LogLabel(0.0, 1000),
                   std::log(0.5 / 1000.0));
  EXPECT_DOUBLE_EQ(LwFeaturizer::LogLabel(0.25, 1000), std::log(0.25));
}

TEST(LwXgbTest, BeatsAviBaselineOnCorrelatedData) {
  LwXgbEstimator xgb;
  TrainContext ctx;
  ctx.training_workload = &Shared().train;
  xgb.Train(Shared().table, ctx);
  // The CE features alone (AVI) underestimate correlated conjunctions; the
  // trained model must correct them: 95th q-error well under AVI's.
  EXPECT_LT(P95(xgb), 25.0);
}

TEST(LwXgbTest, RequiresWorkload) {
  LwXgbEstimator xgb;
  TrainContext ctx;  // no workload.
  EXPECT_DEATH(xgb.Train(Shared().table, ctx), "query-driven");
}

TEST(LwNnTest, TrainsToReasonableAccuracy) {
  LwNnEstimator::Options options;
  options.epochs = 40;
  LwNnEstimator nn(options);
  TrainContext ctx;
  ctx.training_workload = &Shared().train;
  nn.Train(Shared().table, ctx);
  EXPECT_LT(P95(nn), 30.0);
  EXPECT_GT(nn.final_loss(), 0.0);
}

TEST(LwNnTest, UpdateKeepsModelAndImproves) {
  LwNnEstimator::Options options;
  options.epochs = 30;
  LwNnEstimator nn(options);
  TrainContext ctx;
  ctx.training_workload = &Shared().train;
  nn.Train(Shared().table, ctx);

  const Table updated = AppendCorrelatedUpdate(Shared().table, 0.3, 41);
  const Workload update_wl = GenerateWorkload(updated, 800, 42);
  const Workload updated_test = GenerateWorkload(updated, 200, 43);
  const double stale_p99 = Percentile(
      EvaluateQErrors(nn, updated_test, updated.num_rows()), 99);
  UpdateContext uctx;
  uctx.old_row_count = Shared().table.num_rows();
  uctx.update_workload = &update_wl;
  uctx.epochs = 10;
  nn.Update(updated, uctx);
  const double updated_p99 = Percentile(
      EvaluateQErrors(nn, updated_test, updated.num_rows()), 99);
  EXPECT_LT(updated_p99, stale_p99 * 1.5);  // no catastrophic forgetting.
}

TEST(MscnTest, SampleBitmapHelpsOnSelectiveQueries) {
  MscnEstimator::Options options;
  options.epochs = 15;
  MscnEstimator mscn(options);
  TrainContext ctx;
  ctx.training_workload = &Shared().train;
  mscn.Train(Shared().table, ctx);
  EXPECT_LT(P95(mscn), 40.0);
}

TEST(MscnTest, DeterministicInference) {
  MscnEstimator::Options options;
  options.epochs = 5;
  MscnEstimator mscn(options);
  TrainContext ctx;
  ctx.training_workload = &Shared().train;
  mscn.Train(Shared().table, ctx);
  const Query& q = Shared().test.queries[0];
  const double first = mscn.EstimateSelectivity(q);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(mscn.EstimateSelectivity(q), first);
}

TEST(NaruTest, CapturesFunctionalDependency) {
  // AVI-style estimators are off by ~domain-size on A==B conjunctions;
  // Naru's conditionals collapse P(B|A) to a point mass.
  const Table table = GenerateSynthetic2D(30000, 0.5, 1.0, 100, 51);
  NaruEstimator::Options options;
  options.epochs = 15;
  NaruEstimator naru(options);
  naru.Train(table, {});
  Query q;
  q.predicates.push_back({0, 20, 40});
  q.predicates.push_back({1, 20, 40});
  const double act = ExecuteSelectivity(table, q) *
                     static_cast<double>(table.num_rows());
  const double est = naru.EstimateCardinality(q, table.num_rows());
  EXPECT_LT(QError(est, act), 2.5);
}

TEST(NaruTest, EmptyRangeIsZero) {
  const Table& table = Shared().table;
  NaruEstimator::Options options;
  options.epochs = 2;
  NaruEstimator naru(options);
  naru.Train(table, {});
  Query q;
  q.predicates.push_back({0, 50, 20});  // lo > hi.
  EXPECT_DOUBLE_EQ(naru.EstimateSelectivity(q), 0.0);
}

TEST(NaruTest, FullDomainIsOne) {
  NaruEstimator::Options options;
  options.epochs = 2;
  NaruEstimator naru(options);
  naru.Train(Shared().table, {});
  Query q;
  q.predicates.push_back({0, Shared().table.column(0).min(),
                          Shared().table.column(0).max()});
  EXPECT_NEAR(naru.EstimateSelectivity(q), 1.0, 1e-6);
}

TEST(NaruTest, PinnedSamplingSeedIsDeterministic) {
  NaruEstimator::Options options;
  options.epochs = 2;
  options.pin_sampling_seed = true;
  NaruEstimator naru(options);
  naru.Train(Shared().table, {});
  const Query& q = Shared().test.queries[1];
  const double first = naru.EstimateSelectivity(q);
  for (int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(naru.EstimateSelectivity(q), first);
}

TEST(NaruTest, LargeDomainsAreBinned) {
  const Table table = GenerateSynthetic2D(20000, 0.0, 0.0, 10000, 52);
  NaruEstimator::Options options;
  options.epochs = 2;
  options.max_vocab = 128;
  NaruEstimator naru(options);
  naru.Train(table, {});
  // Model size stays bounded by the vocabulary cap.
  EXPECT_LT(naru.SizeBytes(), 1500000u);
  Query q;
  q.predicates.push_back({0, 100, 5000});
  const double est = naru.EstimateSelectivity(q);
  EXPECT_GT(est, 0.0);
  EXPECT_LE(est, 1.0);
}

TEST(DeepDbTest, BuildsSumAndProductNodes) {
  DeepDbEstimator deepdb;
  deepdb.Train(Shared().table, {});
  const DeepDbEstimator::NodeCounts counts = deepdb.CountNodes();
  EXPECT_GT(counts.leaf, 0u);
  EXPECT_GT(counts.sum + counts.product, 0u);
}

TEST(DeepDbTest, CapturesCorrelationBetterThanIndependence) {
  const Table table = GenerateSynthetic2D(30000, 0.5, 1.0, 100, 53);
  DeepDbEstimator deepdb;
  deepdb.Train(table, {});
  Query q;
  q.predicates.push_back({0, 20, 40});
  q.predicates.push_back({1, 20, 40});
  const double act = ExecuteSelectivity(table, q);
  ASSERT_GT(act, 0.0);
  const double est = deepdb.EstimateSelectivity(q);
  // AVI would square the marginal (~0.2 * 0.2); DeepDB should stay within
  // a factor 3 of the truth.
  EXPECT_LT(QError(est * 30000, act * 30000), 3.0);
}

TEST(DeepDbTest, InsertUpdateShiftsEstimates) {
  const Table base = GenerateSynthetic2D(20000, 0.5, 0.0, 50, 54);
  DeepDbEstimator deepdb;
  deepdb.Train(base, {});
  Query q;
  q.predicates.push_back({0, 0, 10});
  const double before = deepdb.EstimateSelectivity(q);

  // Append rows that all fall in [0, 10] on column 0.
  Table updated = base.Head(base.num_rows());
  Table extra("extra");
  std::vector<double> a(5000), b(5000);
  for (size_t i = 0; i < 5000; ++i) {
    a[i] = static_cast<double>(i % 11);
    b[i] = static_cast<double>(i % 50);
  }
  extra.AddColumn("col0", std::move(a), false);
  extra.AddColumn("col1", std::move(b), false);
  extra.Finalize();
  updated.AppendRows(extra);
  updated.Finalize();

  UpdateContext ctx;
  ctx.old_row_count = base.num_rows();
  DeepDbEstimator::Options opts;
  opts.update_sample_fraction = 0.2;
  DeepDbEstimator fresh(opts);
  fresh.Train(base, {});
  const double fresh_before = fresh.EstimateSelectivity(q);
  fresh.Update(updated, ctx);
  const double after = fresh.EstimateSelectivity(q);
  EXPECT_GT(after, fresh_before);
  (void)before;
}

TEST(LearnedSizeBudgetTest, ModelsFitRoughBudget) {
  // The paper budgets models at 1.5% of data size; our scaled models should
  // stay within an order of magnitude of that.
  const size_t data_bytes = Shared().table.DataSizeBytes();
  NaruEstimator::Options options;
  options.epochs = 1;
  NaruEstimator naru(options);
  naru.Train(Shared().table, {});
  EXPECT_LT(naru.SizeBytes(), data_bytes);
}

}  // namespace
}  // namespace arecel
