#include "workload/generator.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "workload/query.h"

namespace arecel {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = CensusSpec();
    spec.rows = 5000;
    table_ = new Table(GenerateDataset(spec, 11));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static Table* table_;
};

Table* WorkloadTest::table_ = nullptr;

TEST_F(WorkloadTest, PredicateCountWithinBounds) {
  const auto queries = GenerateQueries(*table_, 500, 1);
  for (const Query& q : queries) {
    EXPECT_GE(q.predicates.size(), 1u);
    EXPECT_LE(q.predicates.size(), table_->num_cols());
  }
}

TEST_F(WorkloadTest, PredicateColumnsDistinct) {
  const auto queries = GenerateQueries(*table_, 200, 2);
  for (const Query& q : queries) {
    std::set<int> cols;
    for (const Predicate& p : q.predicates) cols.insert(p.column);
    EXPECT_EQ(cols.size(), q.predicates.size());
  }
}

TEST_F(WorkloadTest, CategoricalColumnsGetEqualityPredicates) {
  const auto queries = GenerateQueries(*table_, 500, 3);
  for (const Query& q : queries) {
    for (const Predicate& p : q.predicates) {
      if (table_->column(static_cast<size_t>(p.column)).categorical)
        EXPECT_TRUE(p.is_equality());
    }
  }
}

TEST_F(WorkloadTest, ContainsOpenAndCloseRanges) {
  const auto queries = GenerateQueries(*table_, 2000, 4);
  int open = 0, close = 0;
  for (const Query& q : queries) {
    for (const Predicate& p : q.predicates) {
      if (p.is_equality()) continue;
      if (std::isinf(p.lo) || std::isinf(p.hi)) {
        ++open;
      } else {
        ++close;
      }
    }
  }
  EXPECT_GT(open, 50);
  EXPECT_GT(close, 50);
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  const auto a = GenerateQueries(*table_, 50, 9);
  const auto b = GenerateQueries(*table_, 50, 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].predicates.size(), b[i].predicates.size());
    for (size_t j = 0; j < a[i].predicates.size(); ++j) {
      EXPECT_EQ(a[i].predicates[j].column, b[i].predicates[j].column);
      EXPECT_EQ(a[i].predicates[j].lo, b[i].predicates[j].lo);
      EXPECT_EQ(a[i].predicates[j].hi, b[i].predicates[j].hi);
    }
  }
}

TEST_F(WorkloadTest, DataCenteredQueriesMostlyNonEmpty) {
  // Way-① centers sit on real tuples, so the tuple itself matches unless
  // ranges exclude it; the bulk of the workload must have support.
  WorkloadOptions options;
  options.ood_probability = 0.0;
  const Workload w = GenerateWorkload(*table_, 300, 5, options);
  int non_zero = 0;
  for (double s : w.selectivities) non_zero += s > 0 ? 1 : 0;
  EXPECT_GT(non_zero, 290);
}

TEST_F(WorkloadTest, SelectivityBroadSpectrum) {
  // Figure 3: the generator produces selectivities across many magnitudes.
  const Workload w = GenerateWorkload(*table_, 1000, 6);
  int tiny = 0, small = 0, mid = 0, large = 0;
  for (double s : w.selectivities) {
    if (s < 1e-3) {
      ++tiny;
    } else if (s < 1e-2) {
      ++small;
    } else if (s < 1e-1) {
      ++mid;
    } else {
      ++large;
    }
  }
  EXPECT_GT(tiny, 50);
  EXPECT_GT(small, 30);
  EXPECT_GT(mid, 50);
  EXPECT_GT(large, 50);
}

TEST_F(WorkloadTest, MaxPredicatesOptionRespected) {
  WorkloadOptions options;
  options.max_predicates = 2;
  const auto queries = GenerateQueries(*table_, 200, 7, options);
  for (const Query& q : queries) EXPECT_LE(q.predicates.size(), 2u);
}

TEST(ExecuteCountTest, ManualTable) {
  Table t("t");
  t.AddColumn("a", {1, 2, 3, 4, 5}, false);
  t.AddColumn("b", {1, 1, 0, 0, 1}, true);
  t.Finalize();
  Query q;
  q.predicates.push_back({0, 2, 4});  // a in [2, 4].
  EXPECT_EQ(ExecuteCount(t, q), 3u);
  q.predicates.push_back({1, 1, 1});  // b == 1.
  EXPECT_EQ(ExecuteCount(t, q), 1u);
  EXPECT_DOUBLE_EQ(ExecuteSelectivity(t, q), 0.2);
}

TEST(ExecuteCountTest, UnsatisfiableIsZero) {
  Table t("t");
  t.AddColumn("a", {1, 2, 3}, false);
  t.Finalize();
  Query q;
  q.predicates.push_back({0, 5, 2});  // lo > hi.
  EXPECT_FALSE(q.IsSatisfiable());
  EXPECT_EQ(ExecuteCount(t, q), 0u);
}

TEST(ExecuteCountTest, OpenRanges) {
  Table t("t");
  t.AddColumn("a", {1, 2, 3, 4, 5}, false);
  t.Finalize();
  Query q;
  q.predicates.push_back(
      {0, 3, std::numeric_limits<double>::infinity()});  // a >= 3.
  EXPECT_EQ(ExecuteCount(t, q), 3u);
}

TEST(LabelQueriesTest, MatchesSequentialExecution) {
  Table t("t");
  std::vector<double> vals;
  for (int i = 0; i < 5000; ++i) vals.push_back(i % 97);
  t.AddColumn("a", std::move(vals), false);
  t.Finalize();
  const auto queries = GenerateQueries(t, 64, 8);
  const auto parallel = LabelQueries(t, queries);
  for (size_t i = 0; i < queries.size(); ++i)
    EXPECT_DOUBLE_EQ(parallel[i], ExecuteSelectivity(t, queries[i]));
}

TEST(WorkloadSliceTest, Slices) {
  Workload w;
  for (int i = 0; i < 10; ++i) {
    w.queries.emplace_back();
    w.selectivities.push_back(i * 0.1);
  }
  const Workload s = w.Slice(2, 5);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.selectivities[0], 0.2);
}

}  // namespace
}  // namespace arecel
