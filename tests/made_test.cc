#include "ml/made.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace arecel {
namespace {

ResMade::Options SmallOptions() {
  ResMade::Options options;
  options.hidden_units = 32;
  options.num_blocks = 2;
  options.seed = 1;
  return options;
}

TEST(ResMadeTest, Shapes) {
  ResMade made({4, 8, 3}, SmallOptions());
  EXPECT_EQ(made.num_columns(), 3u);
  EXPECT_EQ(made.output_dim(), 15u);       // 4 + 8 + 3.
  EXPECT_EQ(made.input_dim(), 2u + 3 + 2);  // ceil(log2) bits per column.
}

// The defining MADE property: logits of column i must not depend on the
// encoded values of columns >= i.
TEST(ResMadeTest, AutoregressiveMasking) {
  ResMade made({4, 8, 3}, SmallOptions());
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    int32_t codes_a[3] = {static_cast<int32_t>(rng.UniformInt(uint64_t{4})),
                          static_cast<int32_t>(rng.UniformInt(uint64_t{8})),
                          static_cast<int32_t>(rng.UniformInt(uint64_t{3}))};
    for (size_t col = 0; col < 3; ++col) {
      // Mutate columns >= col; logits for `col` must be unchanged.
      int32_t codes_b[3] = {codes_a[0], codes_a[1], codes_a[2]};
      for (size_t j = col; j < 3; ++j)
        codes_b[j] = static_cast<int32_t>(
            rng.UniformInt(static_cast<uint64_t>(made.vocab_size(j))));
      Matrix input(2, made.input_dim());
      made.Encode(codes_a, 3, input.Row(0));
      made.Encode(codes_b, 3, input.Row(1));
      Matrix logits;
      made.Forward(input, &logits);
      const size_t off = made.logit_offset(col);
      for (int v = 0; v < made.vocab_size(col); ++v) {
        ASSERT_FLOAT_EQ(logits.At(0, off + static_cast<size_t>(v)),
                        logits.At(1, off + static_cast<size_t>(v)))
            << "column " << col << " depends on later columns";
      }
    }
  }
}

TEST(ResMadeTest, EncodeRespectsValidPrefix) {
  ResMade made({4, 4}, SmallOptions());
  int32_t codes[2] = {3, 3};
  std::vector<float> full(made.input_dim()), prefix(made.input_dim());
  made.Encode(codes, 2, full.data());
  made.Encode(codes, 1, prefix.data());
  // Second column's bits must be zero under valid_prefix = 1.
  bool second_zeroed = true;
  for (size_t i = 2; i < made.input_dim(); ++i)
    second_zeroed = second_zeroed && prefix[i] == 0.0f;
  EXPECT_TRUE(second_zeroed);
  EXPECT_NE(full[2] + full[3], 0.0f);
}

TEST(ResMadeTest, ColumnDistributionNormalizes) {
  ResMade made({4, 8, 3}, SmallOptions());
  Matrix input(1, made.input_dim(), 0.0f);
  Matrix logits;
  made.Forward(input, &logits);
  for (size_t col = 0; col < 3; ++col) {
    std::vector<double> probs;
    made.ColumnDistribution(logits, 0, col, &probs);
    double sum = 0.0;
    for (double p : probs) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ResMadeTest, ForwardColumnLogitsMatchesFullForward) {
  ResMade made({4, 8, 3}, SmallOptions());
  Rng rng(3);
  Matrix input(5, made.input_dim());
  for (size_t i = 0; i < input.size(); ++i)
    input.data()[i] = static_cast<float>(rng.UniformInt(uint64_t{2}));
  Matrix full;
  made.Forward(input, &full);
  for (size_t col = 0; col < 3; ++col) {
    Matrix sliced;
    made.ForwardColumnLogits(input, col, &sliced);
    ASSERT_EQ(sliced.cols(), static_cast<size_t>(made.vocab_size(col)));
    for (size_t r = 0; r < 5; ++r) {
      for (size_t v = 0; v < sliced.cols(); ++v) {
        ASSERT_NEAR(sliced.At(r, v),
                    full.At(r, made.logit_offset(col) + v), 1e-4f);
      }
    }
  }
}

// Train on a tiny joint distribution with a hard dependency and check the
// model's conditionals reflect it: x1 = x0 always.
TEST(ResMadeTest, LearnsFunctionalDependency) {
  ResMade made({4, 4}, SmallOptions());
  Rng rng(4);
  const size_t batch = 64;
  Matrix input(batch, made.input_dim());
  std::vector<int32_t> targets(batch * 2);
  float loss = 0.0f;
  for (int step = 0; step < 600; ++step) {
    for (size_t b = 0; b < batch; ++b) {
      const int32_t x0 =
          static_cast<int32_t>(rng.UniformInt(uint64_t{4}));
      const int32_t codes[2] = {x0, x0};
      made.Encode(codes, 2, input.Row(b));
      targets[b * 2] = x0;
      targets[b * 2 + 1] = x0;
    }
    loss = made.TrainStep(input, targets, 5e-3f);
  }
  // NLL should approach H(x0) = log(4) ~ 1.386 (x1 is deterministic).
  EXPECT_LT(loss, 1.6f);

  // P(x1 | x0 = 2) must concentrate on 2.
  const int32_t codes[2] = {2, 0};
  Matrix one(1, made.input_dim());
  made.Encode(codes, 1, one.Row(0));
  Matrix logits;
  made.ForwardColumnLogits(one, 1, &logits);
  size_t argmax = 0;
  for (size_t v = 1; v < 4; ++v)
    if (logits.At(0, v) > logits.At(0, argmax)) argmax = v;
  EXPECT_EQ(argmax, 2u);
}

TEST(ResMadeTest, SingleColumnModel) {
  ResMade made({5}, SmallOptions());
  Matrix input(1, made.input_dim(), 0.0f);
  Matrix logits;
  made.Forward(input, &logits);
  EXPECT_EQ(logits.cols(), 5u);
}

}  // namespace
}  // namespace arecel
