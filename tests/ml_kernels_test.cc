// Differential tests of the fast ML kernel backend against the reference
// backend (ml/kernels.h): the reference path is the historical scalar code
// kept verbatim, so agreement here means the SIMD/cache-blocked/fused
// kernels compute the same math as every pre-kernel release.
//
// Tolerances: the backends sum in different orders (FMA contraction,
// 8-lane partial sums, 4x16 register tiling vs strict left-to-right
// accumulation), so outputs agree only to float rounding. For the shapes
// below — k <= 300, inputs uniform in [-1, 1] — the observed worst-case
// divergence is ~1e-5; we assert 1e-3 absolute, the same bound
// tests/matrix_test.cc has always used against the naive triple loop.

#include "ml/kernels.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ml/matrix.h"
#include "ml/nn.h"
#include "util/random.h"

namespace arecel {
namespace {

constexpr float kTolerance = 1e-3f;

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  return m;
}

void ExpectNear(const Matrix& a, const Matrix& b, float tol = kTolerance) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "flat index " << i;
}

// Adversarial shapes (m, k, n): SIMD-width tails (n and k not multiples of
// 8 or 16), the k == 0 degenerate contraction, single-row / single-column
// extremes, and sizes that straddle the 4-row x 16-column register tile.
struct Shape {
  size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},    {1, 1, 7},    {7, 3, 1},    {1, 5, 8},    {2, 8, 9},
    {3, 16, 17},  {4, 7, 33},   {5, 64, 1},   {8, 1, 64},   {4, 0, 9},
    {1, 0, 1},    {33, 17, 65}, {5, 300, 23}, {64, 64, 64}, {13, 31, 130},
};

TEST(MlKernelsTest, MatMulMatchesReference) {
  Rng rng(1);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, rng);
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    Matrix ref, fast;
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
      MatMul(a, b, &ref);
    }
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
      MatMul(a, b, &fast);
    }
    SCOPED_TRACE(testing::Message() << "m=" << s.m << " k=" << s.k
                                    << " n=" << s.n);
    ExpectNear(ref, fast);
  }
}

TEST(MlKernelsTest, MatMulBTMatchesReference) {
  Rng rng(2);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, rng);
    const Matrix b = RandomMatrix(s.n, s.k, rng);  // interpreted as B^T.
    Matrix ref, fast;
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
      MatMulBT(a, b, &ref);
    }
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
      MatMulBT(a, b, &fast);
    }
    SCOPED_TRACE(testing::Message() << "m=" << s.m << " k=" << s.k
                                    << " n=" << s.n);
    ExpectNear(ref, fast);
  }
}

TEST(MlKernelsTest, MatMulATMatchesReference) {
  Rng rng(3);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.k, s.m, rng);  // interpreted as A^T.
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    Matrix ref, fast;
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
      MatMulAT(a, b, &ref);
    }
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
      MatMulAT(a, b, &fast);
    }
    SCOPED_TRACE(testing::Message() << "m=" << s.m << " k=" << s.k
                                    << " n=" << s.n);
    ExpectNear(ref, fast);
  }
}

TEST(MlKernelsTest, MatMulATAccumulateAddsOntoExisting) {
  Rng rng(4);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.k, s.m, rng);
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    const Matrix init = RandomMatrix(s.m, s.n, rng);
    Matrix ref = init, fast = init;
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
      MatMulATAccumulate(a, b, &ref);
    }
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
      MatMulATAccumulate(a, b, &fast);
    }
    SCOPED_TRACE(testing::Message() << "m=" << s.m << " k=" << s.k
                                    << " n=" << s.n);
    ExpectNear(ref, fast);
  }
}

// The `av == 0.0f` skip branch is reference-backend-only; a sparse input
// (exact zeros, the post-ReLU regime it was written for) must not change
// the fast backend's result beyond rounding.
TEST(MlKernelsTest, MatMulSparseInputMatchesReference) {
  Rng rng(5);
  Matrix a = RandomMatrix(17, 40, rng);
  const Matrix b = RandomMatrix(40, 19, rng);
  for (size_t i = 0; i < a.size(); ++i)
    if (rng.Bernoulli(0.6)) a.data()[i] = 0.0f;
  Matrix ref, fast;
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
    MatMul(a, b, &ref);
  }
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
    MatMul(a, b, &fast);
  }
  ExpectNear(ref, fast);
}

TEST(MlKernelsTest, DenseForwardMatchesReference) {
  Rng rng(6);
  for (const Shape& s : kShapes) {
    const Matrix input = RandomMatrix(s.m, s.k, rng);
    const Matrix weights = RandomMatrix(s.k, s.n, rng);
    std::vector<float> bias(s.n);
    for (auto& v : bias) v = static_cast<float>(rng.Uniform(-1, 1));
    for (bool relu : {false, true}) {
      for (const float* bias_ptr :
           {static_cast<const float*>(bias.data()),
            static_cast<const float*>(nullptr)}) {
        Matrix ref, fast;
        {
          ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
          DenseForward(input, weights, bias_ptr, relu, &ref);
        }
        {
          ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
          DenseForward(input, weights, bias_ptr, relu, &fast);
        }
        SCOPED_TRACE(testing::Message()
                     << "m=" << s.m << " k=" << s.k << " n=" << s.n
                     << " relu=" << relu << " bias=" << (bias_ptr != nullptr));
        ExpectNear(ref, fast);
      }
    }
  }
}

TEST(MlKernelsTest, DenseForwardSliceMatchesReferenceAndFullForward) {
  Rng rng(7);
  const size_t m = 9, k = 33, n = 50;
  const Matrix input = RandomMatrix(m, k, rng);
  const Matrix weights = RandomMatrix(k, n, rng);
  std::vector<float> bias(n);
  for (auto& v : bias) v = static_cast<float>(rng.Uniform(-1, 1));
  Matrix full;
  DenseForward(input, weights, bias.data(), /*relu=*/false, &full);
  // Unaligned offsets and widths, including single-column and full-width.
  const size_t slices[][2] = {{0, 1}, {3, 7}, {13, 17}, {49, 1}, {0, 50}};
  for (const auto& sl : slices) {
    const size_t begin = sl[0], cols = sl[1];
    Matrix ref, fast;
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
      DenseForwardSlice(input, weights, bias.data(), begin, cols, &ref);
    }
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
      DenseForwardSlice(input, weights, bias.data(), begin, cols, &fast);
    }
    SCOPED_TRACE(testing::Message() << "begin=" << begin << " cols=" << cols);
    ExpectNear(ref, fast);
    ASSERT_EQ(fast.rows(), m);
    ASSERT_EQ(fast.cols(), cols);
    for (size_t r = 0; r < m; ++r)
      for (size_t c = 0; c < cols; ++c)
        ASSERT_NEAR(fast.At(r, c), full.At(r, begin + c), kTolerance);
  }
}

TEST(MlKernelsTest, DenseBackwardMatchesReference) {
  Rng rng(8);
  const size_t m = 11, k = 29, n = 37;
  const Matrix input = RandomMatrix(m, k, rng);
  const Matrix weights = RandomMatrix(k, n, rng);
  const Matrix preact = RandomMatrix(m, n, rng);
  const Matrix output_grad = RandomMatrix(m, n, rng);
  const Matrix wg_init = RandomMatrix(k, n, rng);  // pre-existing gradient.
  std::vector<float> bg_init(n);
  for (auto& v : bg_init) v = static_cast<float>(rng.Uniform(-1, 1));
  for (bool relu : {false, true}) {
    Matrix wg_ref = wg_init, wg_fast = wg_init;
    std::vector<float> bg_ref = bg_init, bg_fast = bg_init;
    Matrix ig_ref, ig_fast, scratch_ref, scratch_fast;
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
      DenseBackward(input, preact, relu, output_grad, weights, &wg_ref,
                    bg_ref.data(), &ig_ref, &scratch_ref);
    }
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
      DenseBackward(input, preact, relu, output_grad, weights, &wg_fast,
                    bg_fast.data(), &ig_fast, &scratch_fast);
    }
    SCOPED_TRACE(testing::Message() << "relu=" << relu);
    ExpectNear(wg_ref, wg_fast);
    ExpectNear(ig_ref, ig_fast);
    for (size_t i = 0; i < n; ++i)
      ASSERT_NEAR(bg_ref[i], bg_fast[i], kTolerance) << "bias grad " << i;
  }
}

TEST(MlKernelsTest, DenseBackwardNullInputGrad) {
  Rng rng(9);
  const Matrix input = RandomMatrix(5, 7, rng);
  const Matrix weights = RandomMatrix(7, 9, rng);
  const Matrix preact = RandomMatrix(5, 9, rng);
  const Matrix output_grad = RandomMatrix(5, 9, rng);
  Matrix wg(7, 9, 0.0f), scratch;
  std::vector<float> bg(9, 0.0f);
  ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
  DenseBackward(input, preact, /*relu=*/true, output_grad, weights, &wg,
                bg.data(), /*input_grad=*/nullptr, &scratch);
  // Just exercises the first-layer path (no dX); sums must be finite.
  float sum = 0.0f;
  for (size_t i = 0; i < wg.size(); ++i) sum += wg.data()[i];
  EXPECT_TRUE(std::isfinite(sum));
}

TEST(MlKernelsTest, ElementwiseHelpers) {
  Rng rng(10);
  Matrix acc = RandomMatrix(6, 11, rng);
  const Matrix x = RandomMatrix(6, 11, rng);
  Matrix expected = acc;
  for (size_t i = 0; i < expected.size(); ++i)
    expected.data()[i] += x.data()[i];
  AddInPlace(&acc, x);
  ExpectNear(expected, acc, 0.0f);

  Matrix m = RandomMatrix(4, 9, rng);
  Matrix clamped = m;
  for (size_t i = 0; i < clamped.size(); ++i)
    clamped.data()[i] = std::max(0.0f, clamped.data()[i]);
  ReluInPlace(&m);
  ExpectNear(clamped, m, 0.0f);
}

// A full training step through the layer API under both backends: gradients
// after one fused backward must match the historical unfused sequence.
TEST(MlKernelsTest, DenseLayerTrainRoundTripMatchesReference) {
  for (bool relu : {false, true}) {
    Matrix out_ref, out_fast;
    Matrix w_ref, w_fast;
    for (MlKernelBackend backend :
         {MlKernelBackend::kReference, MlKernelBackend::kFast}) {
      ScopedMlKernelBackend scoped(backend);
      Rng rng(11);  // identical init per backend.
      DenseLayer layer(13, 21, relu ? Activation::kRelu : Activation::kNone,
                       rng);
      Rng data_rng(12);
      const Matrix input = RandomMatrix(8, 13, data_rng);
      const Matrix grad = RandomMatrix(8, 21, data_rng);
      Matrix out, input_grad;
      layer.ForwardTrain(input, &out);
      layer.Backward(grad, &input_grad);
      layer.AdamStep(1e-3f);
      layer.Forward(input, backend == MlKernelBackend::kReference ? &out_ref
                                                                  : &out_fast);
      (backend == MlKernelBackend::kReference ? w_ref : w_fast) =
          layer.weights();
    }
    SCOPED_TRACE(testing::Message() << "relu=" << relu);
    ExpectNear(w_ref, w_fast);
    ExpectNear(out_ref, out_fast);
  }
}

TEST(MlKernelsTest, BackendParsing) {
  MlKernelBackend backend;
  EXPECT_TRUE(ParseMlKernelBackend("reference", &backend));
  EXPECT_EQ(backend, MlKernelBackend::kReference);
  EXPECT_TRUE(ParseMlKernelBackend("fast", &backend));
  EXPECT_EQ(backend, MlKernelBackend::kFast);
  EXPECT_TRUE(ParseMlKernelBackend("quant", &backend));
  EXPECT_EQ(backend, MlKernelBackend::kQuant);
  EXPECT_FALSE(ParseMlKernelBackend("", &backend));
  EXPECT_FALSE(ParseMlKernelBackend("avx2", &backend));
  EXPECT_FALSE(ParseMlKernelBackend("Fast", &backend));
}

TEST(MlKernelsTest, ScopedBackendRestores) {
  const MlKernelBackend before = ActiveMlKernelBackend();
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
    EXPECT_EQ(ActiveMlKernelBackend(), MlKernelBackend::kReference);
    {
      ScopedMlKernelBackend nested(MlKernelBackend::kFast);
      EXPECT_EQ(ActiveMlKernelBackend(), MlKernelBackend::kFast);
    }
    EXPECT_EQ(ActiveMlKernelBackend(), MlKernelBackend::kReference);
  }
  EXPECT_EQ(ActiveMlKernelBackend(), before);
}

TEST(MlKernelsTest, SimdNameIsKnownTag) {
  const std::string name = MlKernelSimdName();
  EXPECT_TRUE(name == "avx512" || name == "avx2-fma" || name == "portable")
      << name;
}

TEST(MlKernelsTest, BackendNames) {
  EXPECT_STREQ(MlKernelBackendName(MlKernelBackend::kReference), "reference");
  EXPECT_STREQ(MlKernelBackendName(MlKernelBackend::kFast), "fast");
  EXPECT_STREQ(MlKernelBackendName(MlKernelBackend::kQuant), "quant");
}

TEST(MlKernelsTest, IsaSweepRestoresAndRejectsUnknown) {
  const std::string before = MlKernelSimdName();
  // Every advertised tier must be selectable, report its own tag, and the
  // scoped override must restore the previous tier on exit.
  for (const char* isa : AvailableMlKernelIsas()) {
    ScopedMlKernelIsa scoped(isa);
    ASSERT_TRUE(scoped.ok()) << isa;
    const std::string name = MlKernelSimdName();
    if (std::string(isa) == "avx2") {
      EXPECT_EQ(name, "avx2-fma");
    } else {
      EXPECT_EQ(name, isa);
    }
  }
  EXPECT_EQ(MlKernelSimdName(), before);
  EXPECT_FALSE(SetMlKernelIsa("sse9"));
  EXPECT_EQ(MlKernelSimdName(), before);
}

TEST(MlKernelsTest, MatrixStorageIs64ByteAligned) {
  for (size_t rows : {1u, 3u, 17u}) {
    Matrix m(rows, rows + 5);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % kMatrixAlignment, 0u);
  }
}

// TSan smoke for the two concurrency shapes the kernels see in production:
// (a) one big matmul crossing kParallelMaddsThreshold fans rows out over
// the pool; (b) several threads each running inference against shared
// read-only weights (the serving layer's fan-out).
TEST(MlKernelsParallelTest, LargeMatMulAndConcurrentInference) {
  Rng rng(13);
  // 300*200*120 = 7.2M madds > the 4M parallel threshold.
  const Matrix a = RandomMatrix(300, 200, rng);
  const Matrix b = RandomMatrix(200, 120, rng);
  Matrix ref, fast;
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
    MatMul(a, b, &ref);
  }
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
    MatMul(a, b, &fast);
  }
  ExpectNear(ref, fast);

  const Matrix weights = RandomMatrix(64, 64, rng);
  std::vector<float> bias(64, 0.1f);
  const Matrix input = RandomMatrix(32, 64, rng);
  Matrix expected;
  DenseForward(input, weights, bias.data(), /*relu=*/true, &expected);
  std::vector<std::thread> threads;
  std::vector<Matrix> outs(4);
  for (size_t t = 0; t < outs.size(); ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 8; ++iter)
        DenseForward(input, weights, bias.data(), /*relu=*/true, &outs[t]);
    });
  }
  for (auto& thread : threads) thread.join();
  for (const Matrix& out : outs) ExpectNear(expected, out, 0.0f);
}

}  // namespace
}  // namespace arecel
