#include <string>

#include <gtest/gtest.h>

#include "util/ascii_table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace arecel {
namespace {

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(AsciiTableTest, ShortRowsRenderEmptyCells) {
  AsciiTable table({"a", "b", "c"});
  table.AddRow({"only"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("| only |"), std::string::npos);
}

TEST(FormatCompactTest, PlainAndScientific) {
  EXPECT_EQ(FormatCompact(1.5), "1.50");
  EXPECT_EQ(FormatCompact(123.4), "123");
  EXPECT_EQ(FormatCompact(200000.0), "2.0e+05");
  EXPECT_EQ(FormatCompact(0.0), "0.00");
  EXPECT_EQ(FormatCompact(0.0001), "1.0e-04");
}

TEST(FormatFixedTest, Digits) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(2.0, 0), "2");
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunkedTest, ChunksPartitionRange) {
  std::vector<int> hits(777, 0);
  ParallelForChunked(0, hits.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelWorkerCountTest, AtLeastOne) {
  EXPECT_GE(ParallelWorkerCount(), 1);
  EXPECT_LE(ParallelWorkerCount(), 16);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer timer;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GT(timer.ElapsedMicros(), timer.ElapsedSeconds());
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace arecel
