#include "ml/gbdt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace arecel {
namespace {

TEST(RegressionTreeTest, ConstantTargetSingleLeaf) {
  std::vector<std::vector<float>> x{{0}, {1}, {2}, {3}};
  std::vector<double> y{5, 5, 5, 5};
  RegressionTree tree;
  GbdtOptions options;
  options.min_leaf_size = 1;
  tree.Fit(x, y, options);
  EXPECT_DOUBLE_EQ(tree.Predict({1.5f}), 5.0);
}

TEST(RegressionTreeTest, PerfectStepFunction) {
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<float>(i)});
    y.push_back(i < 50 ? -1.0 : 1.0);
  }
  RegressionTree tree;
  GbdtOptions options;
  options.min_leaf_size = 5;
  options.max_depth = 3;
  tree.Fit(x, y, options);
  EXPECT_DOUBLE_EQ(tree.Predict({10.0f}), -1.0);
  EXPECT_DOUBLE_EQ(tree.Predict({90.0f}), 1.0);
}

TEST(RegressionTreeTest, RespectsMinLeafSize) {
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<float>(i)});
    y.push_back(i);
  }
  RegressionTree tree;
  GbdtOptions options;
  options.min_leaf_size = 10;
  options.max_depth = 10;
  tree.Fit(x, y, options);
  // Only one split possible: 20 rows into two 10-row leaves -> 3 nodes.
  EXPECT_LE(tree.num_nodes(), 3u);
}

TEST(RegressionTreeTest, SplitsOnInformativeFeature) {
  Rng rng(1);
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const float noise = static_cast<float>(rng.Uniform(0, 1));
    const float signal = static_cast<float>(rng.Uniform(0, 1));
    x.push_back({noise, signal});
    y.push_back(signal > 0.5f ? 10.0 : 0.0);
  }
  RegressionTree tree;
  GbdtOptions options;
  options.min_leaf_size = 20;
  options.max_depth = 1;
  tree.Fit(x, y, options);
  EXPECT_NEAR(tree.Predict({0.9f, 0.9f}), 10.0, 1.5);
  EXPECT_NEAR(tree.Predict({0.9f, 0.1f}), 0.0, 1.5);
}

TEST(GbdtTest, FitsNonlinearFunction) {
  Rng rng(2);
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  for (int i = 0; i < 1000; ++i) {
    const float a = static_cast<float>(rng.Uniform(-2, 2));
    const float b = static_cast<float>(rng.Uniform(-2, 2));
    x.push_back({a, b});
    y.push_back(std::sin(a) + 0.5 * b * b);
  }
  Gbdt model;
  GbdtOptions options;
  options.num_trees = 80;
  options.max_depth = 4;
  options.min_leaf_size = 5;
  options.learning_rate = 0.2;
  model.Train(x, y, options);
  double sse = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = model.Predict(x[i]) - y[i];
    sse += d * d;
  }
  EXPECT_LT(sse / static_cast<double>(x.size()), 0.02);
}

TEST(GbdtTest, MoreTreesReduceTrainingError) {
  Rng rng(3);
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const float a = static_cast<float>(rng.Uniform(0, 1));
    x.push_back({a});
    y.push_back(std::exp(2.0 * a));
  }
  auto sse_with_trees = [&](int trees) {
    Gbdt model;
    GbdtOptions options;
    options.num_trees = trees;
    options.min_leaf_size = 5;
    model.Train(x, y, options);
    double sse = 0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double d = model.Predict(x[i]) - y[i];
      sse += d * d;
    }
    return sse;
  };
  EXPECT_LT(sse_with_trees(64), sse_with_trees(4));
}

TEST(GbdtTest, SizeGrowsWithTrees) {
  Rng rng(4);
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<float>(i)});
    y.push_back(i % 7);
  }
  Gbdt small, large;
  GbdtOptions options;
  options.num_trees = 4;
  small.Train(x, y, options);
  options.num_trees = 32;
  large.Train(x, y, options);
  EXPECT_GT(large.SizeBytes(), small.SizeBytes());
  EXPECT_EQ(large.num_trees(), 32u);
}

}  // namespace
}  // namespace arecel
