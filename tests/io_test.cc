#include "data/io.h"

#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "workload/generator.h"

namespace arecel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TableIoTest, RoundTrip) {
  DatasetSpec spec = CensusSpec();
  spec.rows = 2000;
  const Table original = GenerateDataset(spec, 7);
  const std::string path = TempPath("table_roundtrip.bin");
  ASSERT_TRUE(SaveTable(original, path));

  Table loaded;
  ASSERT_TRUE(LoadTable(path, &loaded));
  ASSERT_EQ(loaded.num_rows(), original.num_rows());
  ASSERT_EQ(loaded.num_cols(), original.num_cols());
  EXPECT_EQ(loaded.name(), original.name());
  for (size_t c = 0; c < original.num_cols(); ++c) {
    EXPECT_EQ(loaded.column(c).name, original.column(c).name);
    EXPECT_EQ(loaded.column(c).categorical, original.column(c).categorical);
    EXPECT_EQ(loaded.column(c).values, original.column(c).values);
    // Finalize() ran on load: domains/codes rebuilt.
    EXPECT_EQ(loaded.column(c).domain, original.column(c).domain);
    EXPECT_EQ(loaded.column(c).codes, original.column(c).codes);
  }
  std::remove(path.c_str());
}

TEST(TableIoTest, RejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a table", f);
  std::fclose(f);
  Table loaded;
  EXPECT_FALSE(LoadTable(path, &loaded));
  std::remove(path.c_str());
}

TEST(TableIoTest, RejectsMissingFile) {
  Table loaded;
  EXPECT_FALSE(LoadTable(TempPath("does_not_exist.bin"), &loaded));
}

TEST(WorkloadIoTest, RoundTripPreservesLabels) {
  const Table table = GenerateSynthetic2D(3000, 0.5, 0.5, 50, 3);
  const Workload original = GenerateWorkload(table, 200, 4);
  const std::string path = TempPath("workload_roundtrip.bin");
  ASSERT_TRUE(SaveWorkload(original, path));

  Workload loaded;
  ASSERT_TRUE(LoadWorkload(path, &loaded));
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.selectivities[i], original.selectivities[i]);
    ASSERT_EQ(loaded.queries[i].predicates.size(),
              original.queries[i].predicates.size());
    for (size_t p = 0; p < original.queries[i].predicates.size(); ++p) {
      EXPECT_EQ(loaded.queries[i].predicates[p].column,
                original.queries[i].predicates[p].column);
      EXPECT_EQ(loaded.queries[i].predicates[p].lo,
                original.queries[i].predicates[p].lo);
      EXPECT_EQ(loaded.queries[i].predicates[p].hi,
                original.queries[i].predicates[p].hi);
    }
  }
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, RoundTripPreservesOpenRanges) {
  Workload original;
  Query q;
  q.predicates.push_back(
      {2, -std::numeric_limits<double>::infinity(), 5.0});
  original.queries.push_back(q);
  original.selectivities.push_back(0.25);
  const std::string path = TempPath("workload_inf.bin");
  ASSERT_TRUE(SaveWorkload(original, path));
  Workload loaded;
  ASSERT_TRUE(LoadWorkload(path, &loaded));
  EXPECT_TRUE(std::isinf(loaded.queries[0].predicates[0].lo));
  EXPECT_DOUBLE_EQ(loaded.queries[0].predicates[0].hi, 5.0);
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, WrongMagicRejected) {
  const Table table = GenerateSynthetic2D(1000, 0.5, 0.5, 20, 5);
  const std::string path = TempPath("table_as_workload.bin");
  ASSERT_TRUE(SaveTable(table, path));
  Workload loaded;
  EXPECT_FALSE(LoadWorkload(path, &loaded));  // table magic != workload.
  std::remove(path.c_str());
}

}  // namespace
}  // namespace arecel
