#include "ml/matrix.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace arecel {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  return m;
}

Matrix NaiveMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols(), 0.0f);
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < b.cols(); ++j)
      for (size_t k = 0; k < a.cols(); ++k)
        out.At(i, j) += a.At(i, k) * b.At(k, j);
  return out;
}

void ExpectNear(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(a.data()[i], b.data()[i], 1e-3f);
}

TEST(MatrixTest, MatMulMatchesNaive) {
  Rng rng(1);
  const Matrix a = RandomMatrix(7, 5, rng);
  const Matrix b = RandomMatrix(5, 9, rng);
  Matrix out;
  MatMul(a, b, &out);
  ExpectNear(out, NaiveMul(a, b));
}

TEST(MatrixTest, MatMulLargeTriggersParallelPath) {
  Rng rng(2);
  const Matrix a = RandomMatrix(200, 150, rng);
  const Matrix b = RandomMatrix(150, 180, rng);
  Matrix out;
  MatMul(a, b, &out);  // 200*150*180 > parallel threshold.
  ExpectNear(out, NaiveMul(a, b));
}

TEST(MatrixTest, MatMulBTMatchesNaive) {
  Rng rng(3);
  const Matrix a = RandomMatrix(6, 4, rng);
  const Matrix b = RandomMatrix(8, 4, rng);  // interpreted as B^T: 4x8.
  Matrix bt(4, 8);
  for (size_t i = 0; i < 8; ++i)
    for (size_t j = 0; j < 4; ++j) bt.At(j, i) = b.At(i, j);
  Matrix out;
  MatMulBT(a, b, &out);
  ExpectNear(out, NaiveMul(a, bt));
}

TEST(MatrixTest, MatMulATMatchesNaive) {
  Rng rng(4);
  const Matrix a = RandomMatrix(5, 6, rng);  // A^T is 6x5.
  const Matrix b = RandomMatrix(5, 7, rng);
  Matrix at(6, 5);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 6; ++j) at.At(j, i) = a.At(i, j);
  Matrix out;
  MatMulAT(a, b, &out);
  ExpectNear(out, NaiveMul(at, b));
}

TEST(MatrixTest, MatMulATLargeTriggersParallelPath) {
  Rng rng(5);
  const Matrix a = RandomMatrix(400, 80, rng);
  const Matrix b = RandomMatrix(400, 150, rng);
  Matrix at(80, 400);
  for (size_t i = 0; i < 400; ++i)
    for (size_t j = 0; j < 80; ++j) at.At(j, i) = a.At(i, j);
  Matrix out;
  MatMulAT(a, b, &out);
  ExpectNear(out, NaiveMul(at, b));
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix m(2, 3, 1.0f);
  AddRowBroadcast(&m, {1.0f, 2.0f, 3.0f});
  EXPECT_FLOAT_EQ(m.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.At(1, 2), 4.0f);
}

TEST(MatrixTest, ColumnSums) {
  Matrix m(3, 2);
  for (size_t r = 0; r < 3; ++r) {
    m.At(r, 0) = static_cast<float>(r);
    m.At(r, 1) = 1.0f;
  }
  std::vector<float> sums;
  ColumnSums(m, &sums);
  EXPECT_FLOAT_EQ(sums[0], 3.0f);
  EXPECT_FLOAT_EQ(sums[1], 3.0f);
}

TEST(MatrixTest, FillAndResize) {
  Matrix m(2, 2);
  m.Fill(7.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 7.0f);
  m.Resize(4, 5);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.size(), 20u);
}

}  // namespace
}  // namespace arecel
