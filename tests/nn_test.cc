#include "ml/nn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace arecel {
namespace {

TEST(DenseLayerTest, ForwardLinearIdentityWeights) {
  Rng rng(1);
  DenseLayer layer(2, 2, Activation::kNone, rng);
  layer.mutable_weights().Fill(0.0f);
  layer.mutable_weights().At(0, 0) = 1.0f;
  layer.mutable_weights().At(1, 1) = 1.0f;
  layer.mutable_bias() = {0.5f, -0.5f};
  Matrix in(1, 2);
  in.At(0, 0) = 2.0f;
  in.At(0, 1) = 3.0f;
  Matrix out;
  layer.Forward(in, &out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(out.At(0, 1), 2.5f);
}

TEST(DenseLayerTest, ReluClampsNegatives) {
  Rng rng(2);
  DenseLayer layer(1, 1, Activation::kRelu, rng);
  layer.mutable_weights().At(0, 0) = 1.0f;
  layer.mutable_bias() = {-10.0f};
  Matrix in(1, 1);
  in.At(0, 0) = 1.0f;
  Matrix out;
  layer.Forward(in, &out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 0.0f);
}

TEST(DenseLayerTest, MaskZeroesConnections) {
  Rng rng(3);
  DenseLayer layer(2, 2, Activation::kNone, rng);
  Matrix mask(2, 2, 0.0f);
  mask.At(0, 0) = 1.0f;  // only input 0 -> output 0 connected.
  layer.SetMask(mask);
  layer.mutable_bias() = {0.0f, 0.0f};
  Matrix in(1, 2);
  in.At(0, 1) = 100.0f;  // must not leak into any output.
  Matrix out;
  layer.Forward(in, &out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.At(0, 1), 0.0f);
}

// Numerical gradient check of the whole MLP backward pass: perturb each
// parameter of a small network and compare the finite-difference loss slope
// with the analytic gradient baked into one Adam-free step.
TEST(MlpTest, GradientCheck) {
  Rng rng(4);
  Mlp mlp({3, 4, 1}, rng);
  Matrix input(2, 3);
  for (size_t i = 0; i < input.size(); ++i)
    input.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  const std::vector<float> targets = {0.3f, -0.7f};

  auto loss_value = [&]() {
    Matrix out;
    mlp.Forward(input, &out);
    float loss = 0.0f;
    for (size_t r = 0; r < 2; ++r) {
      const float d = out.At(r, 0) - targets[r];
      loss += d * d;
    }
    return loss / 2.0f;
  };

  // Analytic gradients via Backward (grad accumulates inside the layers; we
  // read the effect through a tiny SGD-like probe using finite differences
  // on the loss instead, so this checks ForwardTrain+Backward end to end).
  Matrix out;
  mlp.ForwardTrain(input, &out);
  Matrix grad(2, 1);
  for (size_t r = 0; r < 2; ++r)
    grad.At(r, 0) = 2.0f * (out.At(r, 0) - targets[r]) / 2.0f;
  mlp.Backward(grad);

  // Probe a handful of weights in layer 0 via finite differences.
  DenseLayer& layer = mlp.layers()[0];
  // Recompute the analytic gradient by re-running Backward into a copy:
  // we can't read the private grads, so check the Adam step direction
  // instead: after AdamStep, each touched weight moves opposite its
  // numerical gradient sign (Adam normalizes magnitude, sign must match).
  Matrix before = layer.weights();
  mlp.AdamStep(0.001f);
  Matrix after = layer.weights();
  int checked = 0;
  for (size_t i = 0; i < before.size() && checked < 8; ++i) {
    const float eps = 1e-3f;
    layer.mutable_weights().data()[i] = before.data()[i] + eps;
    const float up = loss_value();
    layer.mutable_weights().data()[i] = before.data()[i] - eps;
    const float down = loss_value();
    layer.mutable_weights().data()[i] = after.data()[i];
    const float numerical = (up - down) / (2 * eps);
    if (std::fabs(numerical) < 1e-3) continue;  // flat direction, skip.
    const float step = after.data()[i] - before.data()[i];
    EXPECT_LT(step * numerical, 0.0f)
        << "Adam step should oppose the numerical gradient at weight " << i;
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

TEST(MlpTest, LearnsLinearFunction) {
  Rng rng(5);
  Mlp mlp({2, 16, 1}, rng);
  Matrix input(64, 2);
  std::vector<float> target(64);
  Rng data_rng(6);
  auto fill_batch = [&]() {
    for (size_t r = 0; r < 64; ++r) {
      const float a = static_cast<float>(data_rng.Uniform(-1, 1));
      const float b = static_cast<float>(data_rng.Uniform(-1, 1));
      input.At(r, 0) = a;
      input.At(r, 1) = b;
      target[r] = 2.0f * a - b + 0.5f;
    }
  };
  float final_loss = 1e9f;
  for (int step = 0; step < 800; ++step) {
    fill_batch();
    Matrix out;
    mlp.ForwardTrain(input, &out);
    Matrix grad(64, 1);
    float loss = 0.0f;
    for (size_t r = 0; r < 64; ++r) {
      const float d = out.At(r, 0) - target[r];
      loss += d * d / 64.0f;
      grad.At(r, 0) = 2.0f * d / 64.0f;
    }
    final_loss = loss;
    mlp.Backward(grad);
    mlp.AdamStep(0.005f);
  }
  EXPECT_LT(final_loss, 0.01f);
}

TEST(MlpTest, ParamCount) {
  Rng rng(7);
  Mlp mlp({3, 5, 2}, rng);
  EXPECT_EQ(mlp.ParamCount(), (3u * 5 + 5) + (5u * 2 + 2));
}

TEST(SoftmaxRowsTest, SegmentsNormalize) {
  Matrix m(1, 5);
  for (size_t i = 0; i < 5; ++i) m.At(0, i) = static_cast<float>(i);
  SoftmaxRows(&m, 1, 4);  // normalize columns 1..3 only.
  float sum = 0.0f;
  for (size_t i = 1; i < 4; ++i) sum += m.At(0, i);
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);  // untouched.
  EXPECT_FLOAT_EQ(m.At(0, 4), 4.0f);  // untouched.
}

}  // namespace
}  // namespace arecel
