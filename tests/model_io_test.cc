#include "core/model_io.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "data/datasets.h"
#include "util/archive.h"
#include "workload/generator.h"

namespace arecel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct SharedData {
  Table table = GenerateSynthetic2D(10000, 0.7, 0.8, 80, 9);
  Workload train = GenerateWorkload(table, 600, 10);
  Workload probes = GenerateWorkload(table, 100, 11);
};

const SharedData& Shared() {
  static const SharedData* data = new SharedData();
  return *data;
}

TEST(ByteArchiveTest, ScalarRoundTrip) {
  ByteWriter w;
  w.U32(7);
  w.I32(-3);
  w.F64(2.5);
  w.Str("hello");
  w.Doubles({1.0, 2.0});
  ByteReader r(w.buffer());
  uint32_t u = 0;
  int32_t i = 0;
  double d = 0;
  std::string s;
  std::vector<double> v;
  ASSERT_TRUE(r.U32(&u));
  ASSERT_TRUE(r.I32(&i));
  ASSERT_TRUE(r.F64(&d));
  ASSERT_TRUE(r.Str(&s));
  ASSERT_TRUE(r.Doubles(&v));
  EXPECT_EQ(u, 7u);
  EXPECT_EQ(i, -3);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteArchiveTest, CountingWriterTalliesWithoutBuffering) {
  ByteWriter full;
  ByteWriter counting = ByteWriter::Counting();
  for (ByteWriter* w : {&full, &counting}) {
    w->U32(7);
    w->Str("hello");
    w->Doubles({1.0, 2.0, 3.0});
  }
  EXPECT_EQ(counting.bytes_written(), full.buffer().size());
  EXPECT_EQ(full.bytes_written(), full.buffer().size());
  EXPECT_TRUE(counting.buffer().empty());
}

TEST(ByteArchiveTest, TruncatedReadFails) {
  ByteWriter w;
  w.U64(1000);  // claims a 1000-byte string follows; none does.
  ByteReader r(w.buffer());
  std::string s;
  EXPECT_FALSE(r.Str(&s));
}

// Save -> load into a fresh instance -> identical estimates. Swept over
// every name the registry can construct: estimators with persistence
// support must round-trip bit-for-bit; the rest must refuse to save (and
// write no file) rather than produce a broken model.
class ModelRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelRoundTripTest, EstimatesSurviveRoundTripOrSaveRefuses) {
  const std::string name = GetParam();
  auto trained = MakeEstimator(name);
  TrainContext context;
  context.training_workload = &Shared().train;
  trained->Train(Shared().table, context);

  const std::string path = TempPath("model_" + name + ".bin");
  if (!SupportsPersistence(*trained)) {
    EXPECT_FALSE(SaveEstimator(*trained, path));
    std::ifstream leftover(path);
    EXPECT_FALSE(leftover.good()) << "refused save still wrote " << path;
    return;
  }
  ASSERT_TRUE(SaveEstimator(*trained, path));

  auto loaded = MakeEstimator(name);
  ASSERT_TRUE(LoadEstimator(loaded.get(), path));

  // Sequence-aligned comparison: stochastic-inference estimators seed from
  // a per-instance counter, so collect each instance's estimates in the
  // same call order before comparing.
  std::vector<double> expected(Shared().probes.size());
  for (size_t i = 0; i < Shared().probes.size(); ++i)
    expected[i] = trained->EstimateSelectivity(Shared().probes.queries[i]);
  for (size_t i = 0; i < Shared().probes.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->EstimateSelectivity(Shared().probes.queries[i]),
                     expected[i]);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Registry, ModelRoundTripTest,
                         ::testing::ValuesIn(AllRegistryNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// The persistable set documented in core/model_io.h; growing it is
// welcome, silently shrinking it is not. Shared with the truncation
// regression below.
const std::vector<std::string>& DocumentedPersistableSet() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "postgres", "mysql",        "dbms-a", "sampling",
      "mhist",    "lw-xgb",       "lw-nn",  "mscn",
      "naru",     "feedback-knn", "feedback-corrected"};
  return *names;
}

TEST(ModelIoTest, PersistenceSupportMatchesDocumentedSet) {
  for (const std::string& name : DocumentedPersistableSet()) {
    auto estimator = MakeEstimator(name);
    TrainContext context;
    context.training_workload = &Shared().train;
    estimator->Train(Shared().table, context);
    EXPECT_TRUE(SupportsPersistence(*estimator)) << name;
  }
}

TEST(ModelIoTest, UnsupportedEstimatorReturnsFalse) {
  auto quicksel = MakeEstimator("quicksel");  // no persistence implemented.
  TrainContext context;
  context.training_workload = &Shared().train;
  quicksel->Train(Shared().table, context);
  EXPECT_FALSE(SupportsPersistence(*quicksel));
  EXPECT_FALSE(SaveEstimator(*quicksel, TempPath("quicksel.bin")));
}

// Feeding a truncated or garbage byte stream to every persistable
// estimator must come back typed as kCorruptModel — never a crash, and
// never the kPersistenceFailure that a clean kind-mismatch reports. This is
// the contract the model store's recovery path builds on: a record whose
// CRC passes but whose payload the deserializer rejects still poisons only
// that instance.
TEST(ModelIoTest, TruncatedBytesTypedAsCorruptForEveryPersistable) {
  for (const std::string& name : DocumentedPersistableSet()) {
    auto trained = MakeEstimator(name);
    TrainContext context;
    context.training_workload = &Shared().train;
    trained->Train(Shared().table, context);

    std::string bytes;
    ASSERT_TRUE(SerializeEstimatorBytes(*trained, &bytes)) << name;

    // Truncate at several depths: inside the frame header, inside the
    // payload's leading structure, and just shy of the end.
    for (const size_t cut :
         {size_t{3}, bytes.size() / 4, bytes.size() - 1}) {
      auto fresh = MakeEstimator(name);
      const ModelLoadResult result =
          LoadEstimatorBytes(fresh.get(), bytes.substr(0, cut));
      EXPECT_EQ(result.kind, FailureKind::kCorruptModel)
          << name << " cut at " << cut << ": " << result.detail;
    }

    // Garbage payload of plausible length.
    auto fresh = MakeEstimator(name);
    const ModelLoadResult garbage = LoadEstimatorBytes(
        fresh.get(), std::string(bytes.size(), '\x5a'));
    EXPECT_EQ(garbage.kind, FailureKind::kCorruptModel) << name;
  }
}

TEST(ModelIoTest, KindMismatchRejected) {
  auto postgres = MakeEstimator("postgres");
  postgres->Train(Shared().table, {});
  const std::string path = TempPath("kind_mismatch.bin");
  ASSERT_TRUE(SaveEstimator(*postgres, path));
  auto mysql = MakeEstimator("mysql");
  EXPECT_FALSE(LoadEstimator(mysql.get(), path));
  std::remove(path.c_str());
}

TEST(ModelIoTest, CorruptFileRejected) {
  const std::string path = TempPath("corrupt_model.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("definitely not a model", f);
  std::fclose(f);
  auto postgres = MakeEstimator("postgres");
  EXPECT_FALSE(LoadEstimator(postgres.get(), path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace arecel
