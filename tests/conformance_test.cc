// The estimator conformance gate: every name the registry can construct is
// held to the metamorphic behavioral contract (bounds, tightening
// monotonicity, full-domain no-op, fixed-seed determinism, save/load
// round-trip, and the three feedback invariants for FeedbackSink
// estimators) on the pinned conformance fixture. A perf PR that corrupts
// an estimate fails here before any accuracy number moves.

#include <set>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "testing/conformance.h"

namespace arecel {
namespace {

class ConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    options_ = new ConformanceOptions();
    options_->temp_dir = ::testing::TempDir();
    fixture_ = new ConformanceFixture(BuildConformanceFixture(*options_));
  }
  static void TearDownTestSuite() {
    delete fixture_;
    delete options_;
    fixture_ = nullptr;
    options_ = nullptr;
  }
  static ConformanceFixture* fixture_;
  static ConformanceOptions* options_;
};

ConformanceFixture* ConformanceTest::fixture_ = nullptr;
ConformanceOptions* ConformanceTest::options_ = nullptr;

TEST_P(ConformanceTest, SatisfiesBehavioralContract) {
  const ConformanceReport report =
      RunConformance(GetParam(), *fixture_, *options_);
  EXPECT_TRUE(report.passed()) << report.Summary();
  // Every invariant ran (or was explicitly skipped), none silently missing.
  ASSERT_EQ(report.results.size(), 10u);
  for (const InvariantResult& r : report.results) {
    EXPECT_TRUE(r.passed()) << report.estimator << ": " << r.invariant
                            << " violated " << r.violations << "/" << r.trials
                            << " trials; " << r.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, ConformanceTest,
                         ::testing::ValuesIn(AllRegistryNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// The serving layer keys its dispatch strategy off ThreadSafeEstimates();
// this freezes the documented capability map so a new estimator (or a
// refactor of an old one) must update the set consciously, not silently.
TEST(ConformanceCapabilityTest, ThreadSafeEstimatesMatchesDocumentedSet) {
  const std::set<std::string> serialized_inference = {"naru", "bayes",
                                                      "dqm-d"};
  for (const std::string& name : AllRegistryNames()) {
    auto estimator = MakeEstimator(name);
    const bool expected = serialized_inference.count(name) == 0;
    EXPECT_EQ(estimator->ThreadSafeEstimates(), expected)
        << name << " thread-safety capability changed";
  }
}

// The feedback invariants must actually exercise the two adaptive
// estimators (and only report skipped for everything else) — otherwise the
// sweep could silently skip its way to green.
TEST(ConformanceCapabilityTest, FeedbackInvariantsApplyToSinksOnly) {
  const std::set<std::string> sinks = {"feedback-knn", "feedback-corrected"};
  ConformanceOptions options;
  options.temp_dir = ::testing::TempDir();
  const ConformanceFixture fixture = BuildConformanceFixture(options);
  for (const std::string& name : {std::string("feedback-knn"),
                                  std::string("feedback-corrected"),
                                  std::string("postgres")}) {
    const ConformanceReport report = RunConformance(name, fixture, options);
    int feedback_results = 0;
    for (const InvariantResult& r : report.results) {
      if (r.invariant.rfind("feedback-", 0) != 0) continue;
      ++feedback_results;
      EXPECT_EQ(r.skipped, sinks.count(name) == 0)
          << name << "/" << r.invariant;
    }
    EXPECT_EQ(feedback_results, 3) << name;
  }
}

// Mirror of the feedback sweep guard for the join capability: the join
// invariants must actually exercise the three join-capable estimators and
// only report skipped for everything else.
TEST(ConformanceCapabilityTest, JoinInvariantsApplyToJoinCapableOnly) {
  const std::set<std::string> join_capable = {"postgres-join", "sampling-join",
                                             "mscn-join"};
  for (const std::string& name : AllRegistryNames()) {
    auto estimator = MakeEstimator(name);
    EXPECT_EQ(estimator->SupportsJoins(), join_capable.count(name) == 1)
        << name << " join capability changed";
  }
  ConformanceOptions options;
  options.temp_dir = ::testing::TempDir();
  const ConformanceFixture fixture = BuildConformanceFixture(options);
  for (const std::string& name : {std::string("postgres-join"),
                                  std::string("sampling-join"),
                                  std::string("postgres")}) {
    const ConformanceReport report = RunConformance(name, fixture, options);
    int join_results = 0;
    for (const InvariantResult& r : report.results) {
      if (r.invariant.rfind("join-", 0) != 0) continue;
      ++join_results;
      EXPECT_EQ(r.skipped, join_capable.count(name) == 0)
          << name << "/" << r.invariant;
    }
    EXPECT_EQ(join_results, 2) << name;
  }
}

TEST(ConformanceFixtureTest, IsDeterministic) {
  ConformanceOptions options;
  const ConformanceFixture a = BuildConformanceFixture(options);
  const ConformanceFixture b = BuildConformanceFixture(options);
  ASSERT_EQ(a.table.num_rows(), b.table.num_rows());
  ASSERT_EQ(a.train.size(), b.train.size());
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (size_t c = 0; c < a.table.num_cols(); ++c)
    EXPECT_EQ(a.table.column(c).values, b.table.column(c).values);
  EXPECT_EQ(a.train.selectivities, b.train.selectivities);
}

}  // namespace
}  // namespace arecel
