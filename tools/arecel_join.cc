// arecel_join — inspection CLI for the multi-table join subsystem
// (src/join/, DESIGN.md §13): generates a seeded correlated star schema,
// draws a join workload, and prints each query with its exact hash-join
// count next to every join-capable estimator's answer — the quickest way
// to eyeball where independence math falls off the truth.
//
//   arecel_join [--fact-rows=N] [--dims=N] [--dim-rows=N] [--queries=N]
//               [--seed=N] [--estimators=a,b,c]
//       Print the per-query comparison table (defaults: 5000 rows, 2 dims
//       of 64 rows, 10 queries, seed 7, all join-capable estimators).
//   arecel_join --selftest
//       Self-contained smoke: tiny star, hash-vs-nested-loop differential
//       plus estimate bounds for every join-capable name (used by ctest).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.h"
#include "data/schema.h"
#include "join/join_executor.h"
#include "workload/join_generator.h"

namespace {

using namespace arecel;

size_t FlagValue(int argc, char** argv, const char* name, size_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return static_cast<size_t>(
          std::strtoull(argv[i] + prefix.size(), nullptr, 10));
  }
  return fallback;
}

std::vector<std::string> EstimatorFlag(int argc, char** argv) {
  const std::string prefix = "--estimators=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      std::vector<std::string> names;
      std::string rest = argv[i] + prefix.size();
      size_t at = 0;
      while (at <= rest.size()) {
        const size_t comma = rest.find(',', at);
        const size_t end = comma == std::string::npos ? rest.size() : comma;
        if (end > at) names.push_back(rest.substr(at, end - at));
        if (comma == std::string::npos) break;
        at = comma + 1;
      }
      return names;
    }
  }
  return JoinEstimatorNames();
}

struct TrainedEstimator {
  std::string name;
  std::unique_ptr<CardinalityEstimator> estimator;
};

std::vector<TrainedEstimator> TrainAll(const std::vector<std::string>& names,
                                       const Schema& schema,
                                       const JoinWorkload& train,
                                       uint64_t seed) {
  std::vector<TrainedEstimator> trained;
  for (const std::string& name : names) {
    auto estimator = MakeEstimator(name);
    if (!estimator->SupportsJoins()) {
      std::fprintf(stderr, "skipping %s: no join support\n", name.c_str());
      continue;
    }
    JoinTrainContext context;
    context.training_workload = &train;
    context.seed = seed;
    estimator->TrainJoin(schema, context);
    trained.push_back({name, std::move(estimator)});
  }
  return trained;
}

int SelfTest() {
  StarSchemaOptions options;
  options.fact_rows = 800;
  options.num_dimensions = 2;
  options.dim_rows = 24;
  const Schema schema = GenerateStarSchema(options, /*seed=*/17);
  std::string detail;
  if (!schema.CheckIntegrity(&detail)) {
    std::fprintf(stderr, "integrity: %s\n", detail.c_str());
    return 1;
  }
  const JoinWorkload train = GenerateJoinWorkload(schema, 60, /*seed=*/18);
  const std::vector<JoinQuery> probes =
      GenerateJoinQueries(schema, 12, /*seed=*/19);

  const join::JoinExecutor executor(schema);
  for (const JoinQuery& query : probes) {
    if (executor.Count(query) != join::ExecuteJoinCountNaive(schema, query)) {
      std::fprintf(stderr, "hash != nested-loop on %s\n",
                   query.ToString().c_str());
      return 1;
    }
  }
  for (const auto& [name, estimator] :
       TrainAll(JoinEstimatorNames(), schema, train, /*seed=*/20)) {
    for (const JoinQuery& query : probes) {
      const double sel = estimator->EstimateJoinSelectivity(query);
      if (!std::isfinite(sel) || sel < 0.0 || sel > 1.0) {
        std::fprintf(stderr, "%s out of bounds: %g\n", name.c_str(), sel);
        return 1;
      }
    }
  }
  const scan::ScanStats stats = executor.scan_stats();
  std::printf("scan: synopsis_bytes=%zu classified=%llu zone_skips=%llu "
              "bitmap_skips=%llu histogram_skips=%llu full=%llu "
              "scanned=%llu dict_kernel=%llu\n",
              executor.SynopsisSizeBytes(),
              static_cast<unsigned long long>(stats.classified_blocks),
              static_cast<unsigned long long>(stats.zone_skips),
              static_cast<unsigned long long>(stats.bitmap_skips),
              static_cast<unsigned long long>(stats.histogram_skips),
              static_cast<unsigned long long>(stats.full_blocks),
              static_cast<unsigned long long>(stats.scanned_blocks),
              static_cast<unsigned long long>(stats.dict_kernel_blocks));
  std::printf("selftest ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--selftest") == 0) return SelfTest();

  StarSchemaOptions options;
  options.fact_rows = FlagValue(argc, argv, "--fact-rows", 5000);
  options.num_dimensions =
      static_cast<int>(FlagValue(argc, argv, "--dims", 2));
  options.dim_rows = FlagValue(argc, argv, "--dim-rows", 64);
  const size_t num_queries = FlagValue(argc, argv, "--queries", 10);
  const uint64_t seed = FlagValue(argc, argv, "--seed", 7);

  const Schema schema = GenerateStarSchema(options, seed);
  const JoinWorkload train = GenerateJoinWorkload(schema, 400, seed + 1);
  const std::vector<JoinQuery> queries =
      GenerateJoinQueries(schema, num_queries, seed + 2);
  const join::JoinExecutor executor(schema);

  const std::vector<TrainedEstimator> trained =
      TrainAll(EstimatorFlag(argc, argv), schema, train, seed + 3);

  std::printf("star: fact=%zu dims=%d x %zu rows (seed %llu)\n\n",
              options.fact_rows, options.num_dimensions, options.dim_rows,
              static_cast<unsigned long long>(seed));
  for (const JoinQuery& query : queries) {
    const size_t truth = executor.Count(query);
    const double rows_product =
        join::JoinExecutor::RowsProduct(schema, query);
    std::printf("%s\n  true count %zu (sel %.3e)\n",
                query.ToString().c_str(), truth,
                static_cast<double>(truth) / rows_product);
    for (const auto& [name, estimator] : trained) {
      const double card = estimator->EstimateJoinCardinality(schema, query);
      std::printf("  %-16s estimate %.1f\n", name.c_str(), card);
    }
  }
  return 0;
}
