// Regenerates the golden q-error baselines in tests/golden/ for every
// estimator the registry can construct.
//
// Usage:
//   update_golden --update-golden [output_dir]
//
// Without --update-golden it runs in dry-run mode: measures and prints the
// summaries (and whether each recorded baseline would still pass) but
// writes nothing. The default output_dir is the source tree's tests/golden,
// compiled in by tools/CMakeLists.txt. scripts/update_golden.sh wraps the
// build-then-run dance.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/registry.h"
#include "testing/golden.h"
#include "util/ascii_table.h"

#ifndef ARECEL_GOLDEN_DIR
#define ARECEL_GOLDEN_DIR "tests/golden"
#endif

int main(int argc, char** argv) {
  using namespace arecel;

  bool update = false;
  std::string out_dir = ARECEL_GOLDEN_DIR;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      update = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--update-golden] [output_dir]\n", argv[0]);
      return 0;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", argv[i]);
      return 2;
    } else {
      out_dir = argv[i];
    }
  }

  const GoldenConfig config = DefaultGoldenConfig();
  std::printf("golden fixture: rows=%zu cols=%d train=%zu eval=%zu seed=%llu "
              "band=%.2f\n",
              config.fixture.rows, config.fixture.num_cols,
              config.fixture.train_queries, config.eval_queries,
              static_cast<unsigned long long>(config.fixture.seed),
              config.band);
  const ConformanceFixture fixture = BuildConformanceFixture(config.fixture);
  const Workload eval = BuildGoldenEvalWorkload(fixture, config);

  AsciiTable table({"estimator", "p50", "p95", "p99", "max",
                    update ? "written" : "recorded-check"});

  int failures = 0;
  for (const std::string& name : AllRegistryNames()) {
    const GoldenBaseline measured =
        ComputeGoldenBaseline(name, fixture, eval, config);
    const std::string path = out_dir + "/" + GoldenFileName(name);
    std::string status;
    if (update) {
      status = WriteGoldenBaseline(measured, path) ? path : "WRITE FAILED";
      if (status == "WRITE FAILED") ++failures;
    } else {
      GoldenBaseline recorded;
      if (!ReadGoldenBaseline(path, &recorded)) {
        status = "missing";
        ++failures;
      } else {
        const GoldenCheckResult check =
            CompareToGolden(measured.qerror, recorded, config.band);
        status = check.passed ? "ok" : "DRIFTED: " + check.detail;
        if (!check.passed) ++failures;
      }
    }
    table.AddRow({name, FormatCompact(measured.qerror.p50),
                  FormatCompact(measured.qerror.p95),
                  FormatCompact(measured.qerror.p99),
                  FormatCompact(measured.qerror.max), status});
  }
  std::printf("%s", table.ToString().c_str());

  // The feedback-loop convergence curve rides alongside the per-estimator
  // baselines: same fixture, same band, one extra file.
  const FeedbackGoldenCurve curve = ComputeFeedbackGoldenCurve(fixture, config);
  std::printf("feedback replay: %s over %s, %llu queries in %zu phases\n",
              curve.estimator.c_str(), curve.base.c_str(),
              static_cast<unsigned long long>(curve.replay_queries),
              curve.phase_medians.size());
  AsciiTable fb_table({"metric", "median q-error"});
  for (size_t p = 0; p < curve.phase_medians.size(); ++p)
    fb_table.AddRow({"phase_" + std::to_string(p),
                     FormatCompact(curve.phase_medians[p])});
  fb_table.AddRow({"base (" + curve.base + ", loop off)",
                   FormatCompact(curve.base_median)});
  std::printf("%s", fb_table.ToString().c_str());

  const GoldenCheckResult shape = CheckFeedbackCurveShape(curve);
  if (!shape.passed) {
    std::printf("feedback curve FAILS shape gate: %s\n", shape.detail.c_str());
    ++failures;
  }
  const std::string fb_path = out_dir + "/feedback.json";
  if (update) {
    if (!WriteFeedbackGoldenCurve(curve, fb_path)) {
      std::printf("feedback curve WRITE FAILED: %s\n", fb_path.c_str());
      ++failures;
    } else {
      std::printf("feedback curve written: %s\n", fb_path.c_str());
    }
  } else {
    FeedbackGoldenCurve recorded;
    if (!ReadFeedbackGoldenCurve(fb_path, &recorded)) {
      std::printf("feedback curve baseline missing: %s\n", fb_path.c_str());
      ++failures;
    } else {
      const GoldenCheckResult check =
          CompareFeedbackCurveToGolden(curve, recorded, config.band);
      std::printf("feedback curve recorded-check: %s\n",
                  check.passed ? "ok" : ("DRIFTED: " + check.detail).c_str());
      if (!check.passed) ++failures;
    }
  }

  if (!update && failures > 0) {
    std::printf("%d baseline(s) missing or drifted; rerun with "
                "--update-golden to re-record\n",
                failures);
  }
  return failures == 0 ? 0 : 1;
}
