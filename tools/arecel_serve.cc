// Interactive front-end for the in-process serving layer (src/serve/):
// loads the synthetic benchmark datasets, serves estimates through the
// EstimatorServer (model registry + sharded estimate cache + deadline
// guard), and exposes the §5.1 append-update / staleness protocol.
//
//   arecel_serve [--scale S]
//
// REPL commands:
//   load <dataset> <estimator>   train-or-load the model, make it current
//   est <col><op><val> ...       estimate a conjunctive query, e.g.
//                                "est 0=3 2<=10 4>100"
//   update                       append 20% correlated rows, invalidate the
//                                dataset's cache entries, refresh in the
//                                background (stale-while-revalidate)
//   stats                        server/cache/manager counters + latencies
//   help, quit
//
// Environment: ARECEL_SERVE_CACHE_MB, ARECEL_SERVE_THREADS,
// ARECEL_QUERY_DEADLINE (see src/serve/server.h).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.h"
#include "data/datasets.h"
#include "serve/server.h"
#include "workload/query.h"

namespace {

using arecel::Predicate;
using arecel::Query;
using arecel::Table;

constexpr uint64_t kDatasetSeed = 7;

arecel::DatasetSpec SpecByName(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "census") return arecel::CensusSpec();
  if (name == "forest") return arecel::ForestSpec();
  if (name == "power") return arecel::PowerSpec();
  if (name == "dmv") return arecel::DmvSpec();
  *ok = false;
  return {};
}

// Parses one "<col><op><val>" token ("0=3", "2<=10", "4>100") into an
// inclusive-interval predicate.
bool ParsePredicate(const std::string& token, Predicate* out,
                    std::string* error) {
  size_t op_pos = token.find_first_of("<>=");
  if (op_pos == std::string::npos || op_pos == 0) {
    *error = "expected <col><op><val>, got \"" + token + "\"";
    return false;
  }
  std::string op;
  size_t value_pos = op_pos + 1;
  op += token[op_pos];
  if (value_pos < token.size() && token[value_pos] == '=' && op != "=") {
    op += '=';
    ++value_pos;
  }
  char* end = nullptr;
  const std::string col_str = token.substr(0, op_pos);
  const long col = std::strtol(col_str.c_str(), &end, 10);
  if (end == col_str.c_str() || *end != '\0' || col < 0) {
    *error = "bad column in \"" + token + "\"";
    return false;
  }
  const std::string val_str = token.substr(value_pos);
  const double value = std::strtod(val_str.c_str(), &end);
  if (end == val_str.c_str() || *end != '\0') {
    *error = "bad value in \"" + token + "\"";
    return false;
  }
  out->column = static_cast<int>(col);
  if (op == "=") {
    out->lo = out->hi = value;
  } else if (op == "<=") {
    out->hi = value;
  } else if (op == "<") {
    out->hi = value - 1;  // columns hold integer codes.
  } else if (op == ">=") {
    out->lo = value;
  } else if (op == ">") {
    out->lo = value + 1;
  } else {
    *error = "unknown operator in \"" + token + "\"";
    return false;
  }
  return true;
}

void PrintStats(const arecel::serve::ServerStats& stats) {
  std::printf("ml:      backend=%s simd=%s cpu=%s packed_models=%llu\n",
              stats.ml_backend.c_str(), stats.ml_simd.c_str(),
              stats.ml_cpu_flags.empty() ? "-" : stats.ml_cpu_flags.c_str(),
              (unsigned long long)stats.manager.packed_models);
  std::printf("server:  requests=%llu batches=%llu deadline=%llu "
              "errors=%llu model_failures=%llu updates=%llu\n",
              (unsigned long long)stats.requests,
              (unsigned long long)stats.batches,
              (unsigned long long)stats.deadline_exceeded,
              (unsigned long long)stats.estimate_errors,
              (unsigned long long)stats.model_failures,
              (unsigned long long)stats.updates);
  std::printf("cache:   hits=%llu misses=%llu rate=%.3f entries=%zu "
              "bytes=%zu evictions=%llu invalidations=%llu\n",
              (unsigned long long)stats.cache.hits,
              (unsigned long long)stats.cache.misses, stats.cache.hit_rate(),
              stats.cache.entries, stats.cache.bytes,
              (unsigned long long)stats.cache.evictions,
              (unsigned long long)stats.cache.invalidations);
  std::printf("manager: cold_trains=%llu loads=%llu saves=%llu "
              "refreshes=%llu refresh_failures=%llu waits=%llu "
              "evictions=%llu\n",
              (unsigned long long)stats.manager.cold_trains,
              (unsigned long long)stats.manager.persisted_loads,
              (unsigned long long)stats.manager.model_saves,
              (unsigned long long)stats.manager.refreshes,
              (unsigned long long)stats.manager.refresh_failures,
              (unsigned long long)stats.manager.single_flight_waits,
              (unsigned long long)stats.manager.evictions);
  if (stats.store_enabled)
    std::printf("store:   puts=%llu commits=%llu commit_failures=%llu "
                "hits=%llu misses=%llu recoveries=%llu quarantined=%llu "
                "torn=%llu checksum=%llu corrupt_loads=%llu\n",
                (unsigned long long)stats.store.puts,
                (unsigned long long)stats.store.commits,
                (unsigned long long)stats.store.commit_failures,
                (unsigned long long)stats.store.hits,
                (unsigned long long)stats.store.misses,
                (unsigned long long)stats.store.recoveries,
                (unsigned long long)stats.store.quarantined_generations,
                (unsigned long long)stats.store.torn_writes_detected,
                (unsigned long long)stats.store.checksum_failures,
                (unsigned long long)stats.manager.corrupt_loads);
  for (const auto& lat : stats.latencies)
    std::printf("latency: %-24s n=%llu p50=%.3fms p90=%.3fms p99=%.3fms "
                "max=%.3fms\n",
                lat.model.c_str(), (unsigned long long)lat.requests,
                lat.p50_ms, lat.p90_ms, lat.p99_ms, lat.max_ms);
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  load <dataset> <estimator>  datasets: census forest power dmv\n"
      "  est <col><op><val> ...      ops: = < <= > >=   e.g. est 0=3 2<=10\n"
      "  update                      append-20%% update + background refresh\n"
      "  stats                       counters and latency percentiles\n"
      "  help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.05;  // small default: the REPL should train in seconds.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: arecel_serve [--scale S]\n");
      PrintHelp();
      return 0;
    }
  }

  arecel::serve::EstimatorServer server(arecel::serve::ServeOptionsFromEnv());
  std::string current_dataset, current_estimator;

  std::printf("arecel_serve — in-process estimator server (scale %.2f)\n",
              scale);
  std::printf("cache %zu MB, %d dispatch threads, deadline %.1fs\n",
              server.options().cache_bytes >> 20,
              server.options().dispatch_threads,
              server.options().robust.query_deadline_seconds);
  PrintHelp();

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;

    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }

    if (command == "load") {
      std::string dataset, estimator;
      if (!(in >> dataset >> estimator)) {
        std::printf("usage: load <dataset> <estimator>\n");
        continue;
      }
      if (!server.manager().HasDataset(dataset)) {
        bool ok = false;
        arecel::DatasetSpec spec = SpecByName(dataset, &ok);
        if (!ok) {
          std::printf("unknown dataset \"%s\" (census forest power dmv)\n",
                      dataset.c_str());
          continue;
        }
        spec.rows = static_cast<size_t>(spec.rows * scale);
        std::printf("generating %s (%zu rows)...\n", dataset.c_str(),
                    spec.rows);
        server.RegisterDataset(dataset,
                               GenerateDataset(spec, kDatasetSeed));
      }
      std::string error;
      auto model = server.manager().GetModel(dataset, estimator, &error);
      if (model == nullptr) {
        std::printf("load failed: %s\n", error.c_str());
        const auto names = arecel::AllEstimatorNames();
        std::printf("estimators:");
        for (const auto& name : names) std::printf(" %s", name.c_str());
        std::printf("\n");
        continue;
      }
      current_dataset = dataset;
      current_estimator = estimator;
      std::printf("%s/%s ready (%s, %.2fs, %zu rows, version %llu)\n",
                  dataset.c_str(), estimator.c_str(), model->source.c_str(),
                  model->train_seconds, model->trained_rows,
                  (unsigned long long)model->data_version);
      continue;
    }

    if (command == "est") {
      if (current_dataset.empty()) {
        std::printf("no model loaded — run: load <dataset> <estimator>\n");
        continue;
      }
      Query query;
      std::string token, error;
      bool parsed = true;
      while (in >> token) {
        Predicate predicate;
        if (!ParsePredicate(token, &predicate, &error)) {
          std::printf("parse error: %s\n", error.c_str());
          parsed = false;
          break;
        }
        query.predicates.push_back(predicate);
      }
      if (!parsed) continue;
      if (query.predicates.empty()) {
        std::printf("usage: est <col><op><val> ...\n");
        continue;
      }
      auto response =
          server.Estimate(current_dataset, current_estimator, query);
      if (!response.ok) {
        std::printf("FAILED (%s): %s\n",
                    arecel::FailureKindName(response.failure),
                    response.detail.c_str());
        continue;
      }
      std::printf("card ~ %.1f  (sel %.6g, %s, v%llu, %.3f ms)\n",
                  response.cardinality, response.selectivity,
                  response.cache_hit ? "cache hit" : "computed",
                  (unsigned long long)response.data_version,
                  response.latency_ms);
      continue;
    }

    if (command == "update") {
      if (current_dataset.empty()) {
        std::printf("no dataset loaded\n");
        continue;
      }
      const uint64_t version = server.Update(current_dataset);
      std::printf("%s now at data version %llu; cache invalidated, "
                  "background refresh started (stale model serves "
                  "meanwhile)\n",
                  current_dataset.c_str(), (unsigned long long)version);
      continue;
    }

    if (command == "stats") {
      PrintStats(server.Stats());
      continue;
    }

    std::printf("unknown command \"%s\" — try help\n", command.c_str());
  }

  server.WaitForRefreshes();
  return 0;
}
