// arecel_store — fsck-style maintenance CLI for the on-disk model store
// (src/store/model_store.h).
//
//   arecel_store --dir=DIR list
//       Every entry and generation: status, size, committed/quarantined.
//   arecel_store --dir=DIR verify
//       Checksums every record; exit 1 when any live record is corrupt.
//   arecel_store --dir=DIR quarantine <dataset> <estimator> <generation>
//       Moves a live generation into quarantine/.
//   arecel_store --dir=DIR restore <dataset> <estimator> <generation>
//       Verifies a quarantined record and moves it back (advancing the
//       manifest when it is the newest).
//   arecel_store --selftest
//       Self-contained smoke over a temp directory (used by ctest).
//
// --dir defaults to ARECEL_STORE_DIR.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "store/model_store.h"

namespace {

using arecel::store::GenerationInfo;
using arecel::store::ModelStore;
using arecel::store::StoreOptions;

int CmdList(ModelStore& store) {
  const std::vector<std::string> entries = store.ListEntries();
  if (entries.empty()) {
    std::printf("store is empty\n");
    return 0;
  }
  for (const std::string& entry : entries) {
    const size_t dot = entry.rfind('.');
    if (dot == std::string::npos) continue;
    std::printf("%s\n", entry.c_str());
    for (const GenerationInfo& info : store.ListGenerations(
             entry.substr(0, dot), entry.substr(dot + 1))) {
      std::printf("  gen-%llu  %8llu bytes  %-18s%s%s\n",
                  static_cast<unsigned long long>(info.generation),
                  static_cast<unsigned long long>(info.payload_bytes),
                  info.status.c_str(), info.committed ? " committed" : "",
                  info.quarantined ? " quarantined" : "");
    }
  }
  return 0;
}

int CmdVerify(ModelStore& store) {
  std::vector<std::string> problems;
  const size_t corrupt = store.VerifyAll(&problems);
  for (const std::string& problem : problems)
    std::fprintf(stderr, "CORRUPT %s\n", problem.c_str());
  std::printf("%zu corrupt live record(s)\n", corrupt);
  return corrupt == 0 ? 0 : 1;
}

int SelfTest() {
  const std::string dir = std::filesystem::temp_directory_path().string() +
                          "/arecel_store_selftest_" +
                          std::to_string(::getpid());
  StoreOptions options;
  options.root_dir = dir;
  ModelStore store(options);

  const std::string payload(128, 'q');
  if (!store.Put("demo", "naru", payload)) return 1;
  if (!store.Put("demo", "naru", payload + payload)) return 1;
  if (store.VerifyAll() != 0) return 1;
  if (!store.QuarantineGeneration("demo", "naru", 2)) return 1;
  std::string got;
  uint64_t gen = 0;
  if (!store.Get("demo", "naru", &got, &gen) || gen != 1 || got != payload)
    return 1;
  if (!store.RestoreQuarantined("demo", "naru", 2)) return 1;
  if (!store.Get("demo", "naru", &got, &gen) || gen != 2) return 1;
  if (CmdList(store) != 0 || CmdVerify(store) != 0) return 1;

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::printf("selftest ok\n");
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: arecel_store [--dir=DIR] "
               "{list|verify|quarantine|restore} [dataset estimator gen]\n"
               "       arecel_store --selftest\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  if (const char* env = std::getenv("ARECEL_STORE_DIR")) dir = env;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") return SelfTest();
    if (arg.rfind("--dir=", 0) == 0)
      dir = arg.substr(6);
    else
      args.push_back(arg);
  }
  if (args.empty()) return Usage();
  if (dir.empty()) {
    std::fprintf(stderr, "no store directory: pass --dir=DIR or set "
                         "ARECEL_STORE_DIR\n");
    return 2;
  }

  StoreOptions options;
  options.root_dir = dir;
  ModelStore store(options);

  const std::string& cmd = args[0];
  if (cmd == "list") return CmdList(store);
  if (cmd == "verify") return CmdVerify(store);
  if ((cmd == "quarantine" || cmd == "restore") && args.size() == 4) {
    const uint64_t gen = std::strtoull(args[3].c_str(), nullptr, 10);
    const bool ok =
        cmd == "quarantine"
            ? store.QuarantineGeneration(args[1], args[2], gen)
            : store.RestoreQuarantined(args[1], args[2], gen);
    std::printf("%s %s.%s gen-%llu: %s\n", cmd.c_str(), args[1].c_str(),
                args[2].c_str(), static_cast<unsigned long long>(gen),
                ok ? "ok" : "FAILED");
    return ok ? 0 : 1;
  }
  return Usage();
}
