#include "store/store_faults.h"

#include <cstdio>
#include <cstdlib>

namespace arecel::store {

namespace {

std::vector<std::string> Split(const std::string& text, char a, char b) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == a || c == b) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

bool ParseKind(const std::string& token, StoreFaultKind* kind) {
  if (token == "store-torn-write") *kind = StoreFaultKind::kTornWrite;
  else if (token == "store-bitflip") *kind = StoreFaultKind::kBitflip;
  else if (token == "store-enospc") *kind = StoreFaultKind::kEnospc;
  else if (token == "store-rename-fail") *kind = StoreFaultKind::kRenameFail;
  else return false;
  return true;
}

}  // namespace

const char* StoreFaultKindName(StoreFaultKind kind) {
  switch (kind) {
    case StoreFaultKind::kTornWrite:
      return "store-torn-write";
    case StoreFaultKind::kBitflip:
      return "store-bitflip";
    case StoreFaultKind::kEnospc:
      return "store-enospc";
    case StoreFaultKind::kRenameFail:
      return "store-rename-fail";
  }
  return "store-unknown";
}

bool ParseStoreFaultPlan(const std::string& text,
                         std::vector<StoreFaultSpec>* plan,
                         std::string* error) {
  plan->clear();
  for (const std::string& item : Split(text, ';', ',')) {
    if (item.empty()) continue;
    const std::vector<std::string> fields = Split(item, ':', ':');
    StoreFaultSpec spec;
    if (!ParseKind(fields[0], &spec.kind)) continue;  // an estimator spec.
    for (size_t f = 1; f < fields.size(); ++f) {
      const std::string& field = fields[f];
      const size_t eq = field.find('=');
      if (eq == std::string::npos) {
        *error = "store fault expected key=value, got '" + field + "'";
        return false;
      }
      const std::string key = field.substr(0, eq);
      const int value = std::atoi(field.c_str() + eq + 1);
      if (key == "after") spec.after_ops = value;
      else if (key == "times") spec.times = value;
      else {
        *error = "unknown store fault field '" + key + "'";
        return false;
      }
    }
    plan->push_back(spec);
  }
  return true;
}

std::vector<StoreFaultSpec> StoreFaultPlanFromEnv() {
  const char* env = std::getenv("ARECEL_FAULT_INJECT");
  if (env == nullptr || env[0] == '\0') return {};
  std::vector<StoreFaultSpec> plan;
  std::string error;
  if (!ParseStoreFaultPlan(env, &plan, &error)) {
    std::fprintf(stderr, "ARECEL_FAULT_INJECT: %s\n", error.c_str());
    std::abort();
  }
  return plan;
}

StoreFaultInjector::StoreFaultInjector(std::vector<StoreFaultSpec> plan)
    : plan_(std::move(plan)), ops_(plan_.size()), fired_(plan_.size()) {
  for (auto& op : ops_) op.store(0);
  for (auto& f : fired_) f.store(0);
}

bool StoreFaultInjector::Fire(StoreFaultKind kind) {
  for (size_t i = 0; i < plan_.size(); ++i) {
    const StoreFaultSpec& spec = plan_[i];
    if (spec.kind != kind) continue;
    const int op = ops_[i].fetch_add(1);
    if (op < spec.after_ops) continue;
    if (spec.times >= 0 && fired_[i].fetch_add(1) >= spec.times) continue;
    return true;
  }
  return false;
}

}  // namespace arecel::store
