#include "store/maintenance_worker.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "core/model_io.h"
#include "robustness/guard.h"
#include "util/cancellation.h"

namespace arecel::store {

MaintenanceOptions MaintenanceOptions::FromEnv() {
  MaintenanceOptions options;
  const char* env = std::getenv("ARECEL_MAINT_INTERVAL_MS");
  if (env != nullptr && env[0] != '\0') {
    const int v = std::atoi(env);
    if (v > 0) options.interval_ms = v;
  }
  return options;
}

MaintenanceWorker::MaintenanceWorker(
    std::shared_ptr<serve::ModelManager> manager,
    std::shared_ptr<ModelStore> store, MaintenanceOptions options)
    : manager_(std::move(manager)),
      store_(std::move(store)),
      options_(options),
      jitter_state_(options.jitter_seed | 1) {}

MaintenanceWorker::~MaintenanceWorker() { Stop(); }

void MaintenanceWorker::Start() {
  std::lock_guard<std::mutex> lock(run_mutex_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void MaintenanceWorker::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    stop_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final flush: a short-lived server (train, answer, exit) must not lose
  // its trained models to the tick interval. Same bounded-retry drain as a
  // regular pass, so a persistently failing disk cannot wedge shutdown.
  std::lock_guard<std::mutex> tick_lock(tick_mutex_);
  DrainSaves();
}

void MaintenanceWorker::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(run_mutex_);
      run_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                       [this] { return stop_; });
      if (stop_) return;
    }
    TickNow();
  }
}

size_t MaintenanceWorker::TickNow() {
  std::lock_guard<std::mutex> tick_lock(tick_mutex_);
  size_t actions = 0;
  // Refresh first so a retrain's save-back commits within the same pass.
  actions += RefreshStale();
  actions += DrainSaves();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.ticks;
  return actions;
}

void MaintenanceWorker::SleepBeforeRetry(int attempt) {
  int jitter_ms = 0;
  {
    // xorshift64 on the seeded state: deterministic per worker, decorrelated
    // across retries so two workers colliding on a flaky disk spread out.
    std::lock_guard<std::mutex> lock(stats_mutex_);
    jitter_state_ ^= jitter_state_ << 13;
    jitter_state_ ^= jitter_state_ >> 7;
    jitter_state_ ^= jitter_state_ << 17;
    if (options_.backoff_base_ms > 0)
      jitter_ms = static_cast<int>(
          jitter_state_ %
          static_cast<uint64_t>(options_.backoff_base_ms));
  }
  const int backoff = std::min(options_.backoff_max_ms,
                               options_.backoff_base_ms << attempt);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(std::max(0, backoff) + jitter_ms));
}

size_t MaintenanceWorker::DrainSaves() {
  size_t committed = 0;
  for (const serve::PendingSave& save : manager_->TakePendingSaves()) {
    if (save.model == nullptr || save.model->estimator == nullptr) continue;

    std::string bytes;
    bool serialized = false;
    {
      // Stochastic estimators mutate state during estimates (e.g. naru's
      // sampling counter); hold the same mutex the serving path holds so
      // serialization sees a quiescent model.
      std::unique_lock<std::mutex> infer_lock;
      if (!save.model->thread_safe)
        infer_lock = std::unique_lock<std::mutex>(save.model->inference_mutex);
      serialized = SerializeEstimatorBytes(*save.model->estimator, &bytes);
    }
    if (!serialized) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.save_failures;
      continue;
    }

    bool done = false;
    for (int attempt = 0; attempt < options_.save_max_attempts; ++attempt) {
      if (attempt > 0) {
        SleepBeforeRetry(attempt - 1);
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.save_retries;
      }
      if (store_->Put(save.dataset, save.estimator, bytes)) {
        done = true;
        break;
      }
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (done) {
      ++stats_.saves_committed;
      ++committed;
    } else {
      ++stats_.save_failures;
    }
  }
  return committed;
}

size_t MaintenanceWorker::RefreshStale() {
  size_t refreshed = 0;
  for (const serve::LoadedModelInfo& info : manager_->LoadedModels()) {
    if (info.refreshing) continue;
    if (info.data_version >= manager_->DataVersion(info.dataset)) continue;

    bool ok = false;
    if (options_.refresh_deadline_seconds > 0.0) {
      // Guarded: a hung retrain is cancelled cooperatively and, failing
      // that, abandoned with its captured shared_ptrs keeping the manager
      // and store alive until it unwinds (guard.h contract).
      auto cancel = std::make_shared<CancellationToken>();
      auto manager = manager_;
      auto result_ok = std::make_shared<bool>(false);
      const std::string dataset = info.dataset;
      const std::string estimator = info.estimator;
      robust::GuardKinds kinds;
      const robust::GuardResult guard = robust::RunGuarded(
          [manager, cancel, result_ok, dataset, estimator] {
            *result_ok =
                manager->RefreshModelNow(dataset, estimator, cancel.get());
          },
          options_.refresh_deadline_seconds, kinds, cancel.get(),
          /*keep_alive=*/store_);
      ok = guard.ok() && *result_ok;
    } else {
      ok = manager_->RefreshModelNow(info.dataset, info.estimator);
    }

    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (ok) {
      ++stats_.refreshes;
      ++refreshed;
    } else {
      ++stats_.refresh_failures;
    }
  }
  return refreshed;
}

WorkerStats MaintenanceWorker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace arecel::store

