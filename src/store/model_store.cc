#include "store/model_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/crc32c.h"

namespace arecel::store {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kRecordMagic = 0x31534d41u;   // "AMS1" in file order.
constexpr uint32_t kFooterMagic = 0x31444e45u;   // "END1".
constexpr uint32_t kManifestMagic = 0x31464d41u; // "AMF1".
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 4;
constexpr size_t kFooterBytes = 4;
constexpr size_t kManifestBytes = 4 + 4 + 8 + 4;

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t GetU32(const std::string& in, size_t at) {
  uint32_t v;
  std::memcpy(&v, in.data() + at, 4);
  return v;
}

uint64_t GetU64(const std::string& in, size_t at) {
  uint64_t v;
  std::memcpy(&v, in.data() + at, 8);
  return v;
}

std::string EncodeRecord(uint64_t generation, const std::string& payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size() + kFooterBytes);
  PutU32(&out, kRecordMagic);
  PutU32(&out, kFormatVersion);
  PutU64(&out, generation);
  PutU64(&out, payload.size());
  PutU32(&out, MaskCrc32c(Crc32c(payload)));
  out.append(payload);
  PutU32(&out, kFooterMagic);
  return out;
}

// Decodes one record; `expected_gen` cross-checks the frame against the
// filename so a record renamed over the wrong slot cannot masquerade as it.
// Returns "ok" or the GenerationInfo::status string for the defect.
std::string DecodeRecord(const std::string& bytes, uint64_t expected_gen,
                         std::string* payload, uint64_t* payload_bytes) {
  if (payload_bytes != nullptr) *payload_bytes = 0;
  if (bytes.size() < kHeaderBytes + kFooterBytes) return "truncated";
  if (GetU32(bytes, 0) != kRecordMagic) return "bad-magic";
  if (GetU32(bytes, 4) != kFormatVersion) return "bad-version";
  const uint64_t generation = GetU64(bytes, 8);
  const uint64_t size = GetU64(bytes, 16);
  const uint32_t masked_crc = GetU32(bytes, 24);
  if (generation != expected_gen) return "gen-mismatch";
  if (bytes.size() != kHeaderBytes + size + kFooterBytes) return "truncated";
  if (GetU32(bytes, kHeaderBytes + size) != kFooterMagic) return "truncated";
  const uint32_t crc =
      Crc32c(bytes.data() + kHeaderBytes, static_cast<size_t>(size));
  if (crc != UnmaskCrc32c(masked_crc)) return "checksum-mismatch";
  if (payload != nullptr) payload->assign(bytes, kHeaderBytes, size);
  if (payload_bytes != nullptr) *payload_bytes = size;
  return "ok";
}

std::string EncodeManifest(uint64_t generation) {
  std::string out;
  out.reserve(kManifestBytes);
  PutU32(&out, kManifestMagic);
  PutU32(&out, kFormatVersion);
  PutU64(&out, generation);
  PutU32(&out, MaskCrc32c(Crc32c(out)));
  return out;
}

bool DecodeManifest(const std::string& bytes, uint64_t* generation) {
  if (bytes.size() != kManifestBytes) return false;
  if (GetU32(bytes, 0) != kManifestMagic) return false;
  if (GetU32(bytes, 4) != kFormatVersion) return false;
  if (Crc32c(bytes.data(), kManifestBytes - 4) !=
      UnmaskCrc32c(GetU32(bytes, kManifestBytes - 4))) {
    return false;
  }
  *generation = GetU64(bytes, 8);
  return true;
}

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return !in.bad();
}

std::string GenFileName(uint64_t generation) {
  return "gen-" + std::to_string(generation) + ".model";
}

// Parses "gen-<N>.model"; returns false for anything else.
bool ParseGenFileName(const std::string& name, uint64_t* generation) {
  constexpr char kPrefix[] = "gen-";
  constexpr char kSuffix[] = ".model";
  if (name.size() <= 4 + 6) return false;
  if (name.compare(0, 4, kPrefix) != 0) return false;
  if (name.compare(name.size() - 6, 6, kSuffix) != 0) return false;
  const std::string digits = name.substr(4, name.size() - 10);
  if (digits.empty()) return false;
  for (char c : digits)
    if (c < '0' || c > '9') return false;
  *generation = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

// Live (non-quarantined) generation numbers of an entry, descending.
std::vector<uint64_t> ListGenFiles(const std::string& entry_dir) {
  std::vector<uint64_t> gens;
  std::error_code ec;
  for (const auto& it : fs::directory_iterator(entry_dir, ec)) {
    uint64_t gen = 0;
    if (it.is_regular_file(ec) &&
        ParseGenFileName(it.path().filename().string(), &gen)) {
      gens.push_back(gen);
    }
  }
  std::sort(gens.rbegin(), gens.rend());
  return gens;
}

// Best-effort durability for the rename: fsync the containing directory so
// the directory entry itself is on disk.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

bool ReadManifest(const std::string& entry_dir, uint64_t* generation) {
  std::string bytes;
  if (!ReadFileBytes(entry_dir + "/MANIFEST", &bytes)) return false;
  return DecodeManifest(bytes, generation);
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const long long v = std::atoll(env);
  return v >= 1 ? static_cast<size_t>(v) : fallback;
}

}  // namespace

StoreOptions StoreOptions::FromEnv() {
  StoreOptions options;
  const char* dir = std::getenv("ARECEL_STORE_DIR");
  options.root_dir = dir != nullptr ? dir : "";
  options.max_generations = EnvSize("ARECEL_STORE_MAX_GENERATIONS", 4);
  options.fault_plan = StoreFaultPlanFromEnv();
  return options;
}

ModelStore::ModelStore(StoreOptions options) : options_(std::move(options)) {
  if (options_.max_generations < 1) options_.max_generations = 1;
  if (!options_.fault_plan.empty())
    injector_ = std::make_unique<StoreFaultInjector>(options_.fault_plan);
  std::error_code ec;
  fs::create_directories(options_.root_dir, ec);
}

std::string ModelStore::EntryDir(const std::string& dataset,
                                 const std::string& estimator) const {
  std::string name = dataset + "." + estimator;
  for (char& c : name)
    if (c == '/' || c == '\\') c = '_';
  return options_.root_dir + "/" + name;
}

bool ModelStore::WriteFileOp(const std::string& path,
                             const std::string& data) {
  // Advance both write-fault counters on every write op so `after=N`
  // indexes ops identically regardless of which kind is scheduled.
  const bool torn =
      injector_ != nullptr && injector_->Fire(StoreFaultKind::kTornWrite);
  const bool enospc =
      injector_ != nullptr && injector_->Fire(StoreFaultKind::kEnospc);

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  size_t to_write = data.size();
  if (torn || enospc) to_write /= 2;  // a prefix lands, the rest never does.

  size_t written = 0;
  bool io_ok = true;
  while (written < to_write) {
    const ssize_t n = ::write(fd, data.data() + written, to_write - written);
    if (n <= 0) {
      io_ok = false;
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (io_ok) ::fsync(fd);
  ::close(fd);
  if (enospc || !io_ok) return false;
  // A torn write REPORTS success — the write appeared durable but only a
  // prefix reached the platter. Recovery-on-open must catch it.
  return true;
}

bool ModelStore::RenameOp(const std::string& from, const std::string& to) {
  if (injector_ != nullptr && injector_->Fire(StoreFaultKind::kRenameFail))
    return false;
  if (::rename(from.c_str(), to.c_str()) != 0) return false;
  SyncDir(fs::path(to).parent_path().string());
  return true;
}

void ModelStore::MaybeBitflip(const std::string& path) {
  if (injector_ == nullptr || !injector_->Fire(StoreFaultKind::kBitflip))
    return;
  std::string bytes;
  if (!ReadFileBytes(path, &bytes) ||
      bytes.size() <= kHeaderBytes + kFooterBytes) {
    return;
  }
  // Flip one bit mid-payload: the CRC must catch it on the next open.
  const size_t at = kHeaderBytes + (bytes.size() - kHeaderBytes - kFooterBytes) / 2;
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return;
  const char flipped = static_cast<char>(bytes[at] ^ 0x40);
  ::pwrite(fd, &flipped, 1, static_cast<off_t>(at));
  ::fsync(fd);
  ::close(fd);
}

void ModelStore::QuarantineFile(const std::string& entry_dir,
                                const std::string& name) {
  std::error_code ec;
  fs::create_directories(entry_dir + "/quarantine", ec);
  if (::rename((entry_dir + "/" + name).c_str(),
               (entry_dir + "/quarantine/" + name).c_str()) == 0) {
    ++stats_.quarantined_generations;
  }
}

bool ModelStore::CommitManifest(const std::string& entry_dir,
                                uint64_t generation) {
  const std::string tmp = entry_dir + "/MANIFEST.tmp";
  if (!WriteFileOp(tmp, EncodeManifest(generation))) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (!RenameOp(tmp, entry_dir + "/MANIFEST")) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool ModelStore::Put(const std::string& dataset, const std::string& estimator,
                     const std::string& payload, uint64_t* generation) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.puts;

  const std::string entry_dir = EntryDir(dataset, estimator);
  std::error_code ec;
  fs::create_directories(entry_dir, ec);
  if (ec) {
    ++stats_.commit_failures;
    return false;
  }

  // Next generation: past both the committed generation and any orphan gen
  // file on disk, so a failed commit's leftovers are never overwritten.
  uint64_t next = 0;
  uint64_t manifest_gen = 0;
  if (ReadManifest(entry_dir, &manifest_gen)) next = manifest_gen;
  const std::vector<uint64_t> existing = ListGenFiles(entry_dir);
  if (!existing.empty()) next = std::max(next, existing.front());
  ++next;

  const std::string final_path = entry_dir + "/" + GenFileName(next);
  const std::string tmp_path = final_path + ".tmp";
  if (!WriteFileOp(tmp_path, EncodeRecord(next, payload))) {
    ::unlink(tmp_path.c_str());
    ++stats_.commit_failures;
    return false;
  }
  if (!RenameOp(tmp_path, final_path)) {
    ::unlink(tmp_path.c_str());
    ++stats_.commit_failures;
    return false;
  }
  // The record is durable but UNCOMMITTED until the manifest rename lands.
  // On failure it is left behind deliberately — the same shape a crash
  // between the two renames produces — and recovery quarantines it.
  if (!CommitManifest(entry_dir, next)) {
    ++stats_.commit_failures;
    return false;
  }
  ++stats_.commits;
  if (generation != nullptr) *generation = next;

  // Post-commit corruption hook (bit-rot shape) — after this point only
  // recovery-on-open protects readers, which is the property under test.
  MaybeBitflip(final_path);

  // GC: keep the newest max_generations committed records.
  const std::vector<uint64_t> after = ListGenFiles(entry_dir);
  size_t kept = 0;
  for (uint64_t gen : after) {
    if (gen > next) continue;  // orphan; recovery owns it.
    if (++kept <= options_.max_generations) continue;
    if (::unlink((entry_dir + "/" + GenFileName(gen)).c_str()) == 0)
      ++stats_.gc_removed;
  }
  return true;
}

bool ModelStore::Get(const std::string& dataset, const std::string& estimator,
                     std::string* payload, uint64_t* generation) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;

  const std::string entry_dir = EntryDir(dataset, estimator);
  std::error_code ec;
  if (!fs::is_directory(entry_dir, ec)) {
    ++stats_.misses;
    return false;
  }

  // 1. Stray temp files are dead weight from interrupted commits.
  for (const auto& it : fs::directory_iterator(entry_dir, ec)) {
    if (it.path().extension() == ".tmp" && it.is_regular_file(ec)) {
      if (::unlink(it.path().c_str()) == 0) ++stats_.tmp_cleaned;
    }
  }

  uint64_t manifest_gen = 0;
  const bool manifest_ok = ReadManifest(entry_dir, &manifest_gen);
  std::vector<uint64_t> gens = ListGenFiles(entry_dir);

  // 2. Orphans (newer than the committed generation) are quarantined even
  // when intact: serving one would publish a commit that never happened.
  if (manifest_ok) {
    for (uint64_t gen : gens)
      if (gen > manifest_gen) QuarantineFile(entry_dir, GenFileName(gen));
    gens.erase(std::remove_if(gens.begin(), gens.end(),
                              [&](uint64_t g) { return g > manifest_gen; }),
               gens.end());
  }

  // 3./4. Newest-first: verify, serve the first intact record, quarantine
  // every corrupt one encountered on the way down.
  for (uint64_t gen : gens) {
    std::string bytes;
    std::string status = "unreadable";
    if (ReadFileBytes(entry_dir + "/" + GenFileName(gen), &bytes))
      status = DecodeRecord(bytes, gen, payload, nullptr);
    if (status == "ok") {
      if (!manifest_ok || gen != manifest_gen) {
        // Fallback or adoption: republish the manifest to what recovery
        // actually found so the next open is clean.
        ++stats_.recoveries;
        CommitManifest(entry_dir, gen);
      }
      if (generation != nullptr) *generation = gen;
      ++stats_.hits;
      return true;
    }
    if (status == "truncated")
      ++stats_.torn_writes_detected;
    else
      ++stats_.checksum_failures;
    QuarantineFile(entry_dir, GenFileName(gen));
  }

  // 5. Nothing intact. Drop a manifest pointing at quarantined wreckage so
  // the entry reads as empty (cold-train territory) next time too.
  ::unlink((entry_dir + "/MANIFEST").c_str());
  ++stats_.misses;
  return false;
}

std::vector<std::string> ModelStore::ListEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> entries;
  std::error_code ec;
  for (const auto& it : fs::directory_iterator(options_.root_dir, ec))
    if (it.is_directory(ec)) entries.push_back(it.path().filename().string());
  std::sort(entries.begin(), entries.end());
  return entries;
}

std::vector<GenerationInfo> ModelStore::ListGenerations(
    const std::string& dataset, const std::string& estimator) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string entry_dir = EntryDir(dataset, estimator);
  uint64_t manifest_gen = 0;
  const bool manifest_ok = ReadManifest(entry_dir, &manifest_gen);

  std::vector<GenerationInfo> infos;
  auto scan = [&](const std::string& dir, bool quarantined) {
    std::error_code ec;
    for (const auto& it : fs::directory_iterator(dir, ec)) {
      uint64_t gen = 0;
      if (!it.is_regular_file(ec) ||
          !ParseGenFileName(it.path().filename().string(), &gen)) {
        continue;
      }
      GenerationInfo info;
      info.generation = gen;
      info.quarantined = quarantined;
      info.committed = manifest_ok && gen <= manifest_gen;
      std::string bytes;
      if (ReadFileBytes(it.path().string(), &bytes))
        info.status = DecodeRecord(bytes, gen, nullptr, &info.payload_bytes);
      else
        info.status = "unreadable";
      infos.push_back(std::move(info));
    }
  };
  scan(entry_dir, /*quarantined=*/false);
  scan(entry_dir + "/quarantine", /*quarantined=*/true);
  std::sort(infos.begin(), infos.end(),
            [](const GenerationInfo& a, const GenerationInfo& b) {
              if (a.generation != b.generation)
                return a.generation > b.generation;
              return a.quarantined < b.quarantined;
            });
  return infos;
}

size_t ModelStore::VerifyAll(std::vector<std::string>* problems) const {
  size_t corrupt = 0;
  for (const std::string& entry : ListEntries()) {
    const size_t dot = entry.rfind('.');
    if (dot == std::string::npos) continue;
    const std::string dataset = entry.substr(0, dot);
    const std::string estimator = entry.substr(dot + 1);
    for (const GenerationInfo& info : ListGenerations(dataset, estimator)) {
      if (info.intact() || info.quarantined) continue;
      ++corrupt;
      if (problems != nullptr) {
        problems->push_back(entry + "/gen-" +
                            std::to_string(info.generation) + ".model: " +
                            info.status);
      }
    }
  }
  return corrupt;
}

bool ModelStore::QuarantineGeneration(const std::string& dataset,
                                      const std::string& estimator,
                                      uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string entry_dir = EntryDir(dataset, estimator);
  const std::string name = GenFileName(generation);
  std::error_code ec;
  if (!fs::is_regular_file(entry_dir + "/" + name, ec)) return false;
  QuarantineFile(entry_dir, name);
  return true;
}

bool ModelStore::RestoreQuarantined(const std::string& dataset,
                                    const std::string& estimator,
                                    uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string entry_dir = EntryDir(dataset, estimator);
  const std::string name = GenFileName(generation);
  const std::string from = entry_dir + "/quarantine/" + name;

  std::string bytes;
  if (!ReadFileBytes(from, &bytes)) return false;
  if (DecodeRecord(bytes, generation, nullptr, nullptr) != "ok")
    return false;  // never restore wreckage into the serving path.
  if (::rename(from.c_str(), (entry_dir + "/" + name).c_str()) != 0)
    return false;
  uint64_t manifest_gen = 0;
  if (!ReadManifest(entry_dir, &manifest_gen) || generation > manifest_gen)
    CommitManifest(entry_dir, generation);
  return true;
}

StoreStats ModelStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace arecel::store
