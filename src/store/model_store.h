#ifndef ARECEL_STORE_MODEL_STORE_H_
#define ARECEL_STORE_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/store_faults.h"

namespace arecel::store {

// Versioned, checksummed, crash-safe on-disk store for serialized estimator
// payloads (the framed bytes produced by SerializeEstimatorBytes,
// core/model_io.h). One directory per (dataset, estimator):
//
//   <root>/<dataset>.<estimator>/
//     gen-<N>.model   generation record (header + payload + footer, below)
//     MANIFEST        20-byte self-checksummed pointer to the committed gen
//     quarantine/     records recovery refused to serve, kept for forensics
//
// Record framing (all integers little-endian):
//   u32 magic "AMS1"  u32 version  u64 generation  u64 payload_size
//   u32 masked CRC32C(payload)  payload bytes  u32 footer magic "END1"
// The footer magic doubles as a cheap torn-write tripwire: a write that
// stopped partway never has it, so truncation is detected before the CRC
// is even computed.
//
// Commit protocol (Put): write gen record to a .tmp, fsync, rename into
// place, then write + fsync + rename the MANIFEST. A crash between the two
// renames leaves an intact-but-uncommitted generation; recovery treats it
// as an orphan and quarantines it, so the committed state is always exactly
// what the MANIFEST's last successful rename published.
//
// Recovery (runs inside Get, on the store as found on disk):
//   1. stray *.tmp files are removed;
//   2. generations newer than the manifest are quarantined (orphans), even
//      when intact — serving them would un-commit a commit;
//   3. the manifest generation is read and verified; on truncation, bad
//      magic, or CRC mismatch it is quarantined and the newest older intact
//      generation is adopted (manifest rewritten, recovery counted);
//   4. a missing/corrupt manifest falls back to a scan for the newest
//      intact generation;
//   5. with nothing intact left, Get misses and the caller cold-trains.
// A corrupt payload is therefore never returned: every byte served has
// passed the CRC on this read, not on some earlier one.
//
// All methods are thread-safe (one store-wide mutex; operations are rare
// and coarse: cold loads, maintenance write-backs, fsck).

struct StoreOptions {
  // Store root ("" disables the store; callers skip construction).
  std::string root_dir;

  // Committed generations kept per entry; older ones are garbage-collected
  // after each successful Put. Minimum 1.
  size_t max_generations = 4;

  // Fault schedule for crash-safety tests (see store_faults.h). Empty in
  // production.
  std::vector<StoreFaultSpec> fault_plan;

  // Reads ARECEL_STORE_DIR, ARECEL_STORE_MAX_GENERATIONS, and the store-*
  // tokens of ARECEL_FAULT_INJECT.
  static StoreOptions FromEnv();
};

struct StoreStats {
  uint64_t puts = 0;
  uint64_t commits = 0;
  uint64_t commit_failures = 0;
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  // Gets that served a generation other than the one the manifest named
  // (fallback to an older gen, or adoption after a manifest loss).
  uint64_t recoveries = 0;
  uint64_t quarantined_generations = 0;
  // Truncated records / missing footers (crash-mid-write shape).
  uint64_t torn_writes_detected = 0;
  // CRC mismatches and other in-frame corruption (bit-rot shape).
  uint64_t checksum_failures = 0;
  uint64_t gc_removed = 0;
  uint64_t tmp_cleaned = 0;
};

// One generation record as seen by ListGenerations / the fsck tool.
struct GenerationInfo {
  uint64_t generation = 0;
  uint64_t payload_bytes = 0;  // 0 when the frame is too corrupt to say.
  bool committed = false;      // <= the manifest generation.
  bool quarantined = false;    // lives under quarantine/.
  // "ok" | "truncated" | "bad-magic" | "bad-version" | "gen-mismatch" |
  // "checksum-mismatch" | "unreadable".
  std::string status;

  bool intact() const { return status == "ok"; }
};

class ModelStore {
 public:
  explicit ModelStore(StoreOptions options);

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  // Commits `payload` as the next generation for (dataset, estimator).
  // On success fills *generation (when given) and garbage-collects old
  // generations past max_generations. On failure the previously committed
  // generation is untouched; an intact-but-uncommitted orphan may be left
  // behind (recovery quarantines it), exactly as a crash would.
  bool Put(const std::string& dataset, const std::string& estimator,
           const std::string& payload, uint64_t* generation = nullptr);

  // Reads the committed payload, running recovery first (see above).
  // Returns false on a miss (nothing intact). The returned payload has
  // passed its CRC during this call.
  bool Get(const std::string& dataset, const std::string& estimator,
           std::string* payload, uint64_t* generation = nullptr);

  // "<dataset>.<estimator>" entry directories present under the root.
  std::vector<std::string> ListEntries() const;

  // All generation records of one entry (live and quarantined), newest
  // first, each decoded and verified. Read-only: no quarantining happens.
  std::vector<GenerationInfo> ListGenerations(const std::string& dataset,
                                              const std::string& estimator) const;

  // Verifies every record in the store; returns the number of corrupt
  // live (non-quarantined) records and appends one human-readable line per
  // problem to *problems when given. Read-only.
  size_t VerifyAll(std::vector<std::string>* problems = nullptr) const;

  // Moves one live generation into quarantine/ (fsck "quarantine" verb).
  bool QuarantineGeneration(const std::string& dataset,
                            const std::string& estimator, uint64_t generation);

  // Moves a quarantined generation back into the entry, refusing records
  // that fail verification. If the restored generation is newer than the
  // committed one, the manifest is advanced to it.
  bool RestoreQuarantined(const std::string& dataset,
                          const std::string& estimator, uint64_t generation);

  StoreStats stats() const;
  const StoreOptions& options() const { return options_; }

 private:
  std::string EntryDir(const std::string& dataset,
                       const std::string& estimator) const;

  // Filesystem primitives with fault-injection hooks. WriteFileOp consults
  // torn-write (partial data lands, call still reports success — the
  // lying-disk shape) and enospc (partial data lands, call fails);
  // RenameOp consults rename-fail.
  bool WriteFileOp(const std::string& path, const std::string& data);
  bool RenameOp(const std::string& from, const std::string& to);
  void MaybeBitflip(const std::string& path);

  // Moves a record file into quarantine/ and counts it. `mu_` held.
  void QuarantineFile(const std::string& entry_dir, const std::string& name);

  // Writes the manifest via the tmp/fsync/rename protocol. `mu_` held.
  bool CommitManifest(const std::string& entry_dir, uint64_t generation);

  StoreOptions options_;
  std::unique_ptr<StoreFaultInjector> injector_;  // null when plan empty.

  mutable std::mutex mu_;
  StoreStats stats_;  // guarded by mu_.
};

}  // namespace arecel::store

#endif  // ARECEL_STORE_MODEL_STORE_H_
