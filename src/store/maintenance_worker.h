#ifndef ARECEL_STORE_MAINTENANCE_WORKER_H_
#define ARECEL_STORE_MAINTENANCE_WORKER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "serve/model_manager.h"
#include "store/model_store.h"

namespace arecel::store {

// Background maintenance for a store-backed serving deployment. Owns the
// work the serving threads must never block on:
//
//  * write-back — drains ModelManager::TakePendingSaves(), serializes each
//    trained model (under its inference mutex when inference mutates
//    state, e.g. naru's sampling counter) and commits it to the store with
//    bounded retries under exponential backoff + jitter;
//  * staleness refresh — scans the loaded models, and for each one older
//    than its dataset's current data version runs a synchronous retrain
//    (ModelManager::RefreshModelNow) inside the robustness watchdog
//    (RunGuarded + CancellationToken), so a hung retrain costs one
//    abandoned thread, not the worker.
//
// Closures handed to RunGuarded share ownership of the manager and store
// (shared_ptr captures + keep_alive), satisfying the guard's leak-on-hang
// contract: an abandoned retrain keeps its state alive until it returns.

struct MaintenanceOptions {
  // Pause between background passes. ARECEL_MAINT_INTERVAL_MS.
  int interval_ms = 1000;

  // Write-back retry policy: up to save_max_attempts Puts per model, with
  // sleep min(backoff_max_ms, backoff_base_ms << attempt) plus up to
  // backoff_base_ms of jitter between attempts. A model that exhausts its
  // attempts is dropped (counted in save_failures); the next successful
  // retrain re-enqueues fresh state.
  int save_max_attempts = 3;
  int backoff_base_ms = 10;
  int backoff_max_ms = 1000;

  // Watchdog deadline per refresh; <= 0 runs unguarded (inline, no
  // watchdog thread) which is what unit tests use for determinism.
  double refresh_deadline_seconds = 0.0;

  uint64_t jitter_seed = 0x5eed;

  // Reads ARECEL_MAINT_INTERVAL_MS.
  static MaintenanceOptions FromEnv();
};

struct WorkerStats {
  uint64_t ticks = 0;
  uint64_t saves_committed = 0;
  uint64_t save_retries = 0;    // failed Put attempts that were retried.
  uint64_t save_failures = 0;   // models dropped after the attempt budget.
  uint64_t refreshes = 0;       // stale models successfully retrained.
  uint64_t refresh_failures = 0;
};

class MaintenanceWorker {
 public:
  MaintenanceWorker(std::shared_ptr<serve::ModelManager> manager,
                    std::shared_ptr<ModelStore> store,
                    MaintenanceOptions options = {});
  ~MaintenanceWorker();  // Stop().

  MaintenanceWorker(const MaintenanceWorker&) = delete;
  MaintenanceWorker& operator=(const MaintenanceWorker&) = delete;

  // Starts the background loop (idempotent).
  void Start();

  // Signals the loop, joins it, then drains pending save-backs one last
  // time so a clean shutdown persists everything trained since the last
  // tick. Safe to call twice; the destructor calls it.
  void Stop();

  // Runs one full maintenance pass (write-back + staleness refresh) on the
  // calling thread and returns the number of actions taken. Tests drive
  // this directly for determinism; the background loop calls it too, so
  // both paths are the same code.
  size_t TickNow();

  WorkerStats stats() const;

 private:
  void Loop();
  size_t DrainSaves();
  size_t RefreshStale();
  void SleepBeforeRetry(int attempt);

  std::shared_ptr<serve::ModelManager> manager_;
  std::shared_ptr<ModelStore> store_;
  MaintenanceOptions options_;

  std::mutex tick_mutex_;  // serializes TickNow vs. the background loop.

  std::mutex run_mutex_;
  std::condition_variable run_cv_;
  bool stop_ = false;       // guarded by run_mutex_.
  std::thread thread_;

  mutable std::mutex stats_mutex_;
  WorkerStats stats_;
  uint64_t jitter_state_ = 0;  // guarded by stats_mutex_.
};

}  // namespace arecel::store

#endif  // ARECEL_STORE_MAINTENANCE_WORKER_H_
