#ifndef ARECEL_STORE_STORE_FAULTS_H_
#define ARECEL_STORE_STORE_FAULTS_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace arecel::store {

// Filesystem fault injection for the model store — the write-path analogue
// of the estimator FaultInjector (src/robustness/fault_injector.h). Every
// recovery path the store implements (torn write, bit-rot, ENOSPC,
// rename failure) is exercisable from tests and benches by scheduling the
// corresponding fault, so crash-safety is a tested property, not a hope.
//
// ARECEL_FAULT_INJECT accepts store fault tokens alongside the estimator
// specs, separated by `;` or `,`:
//
//   store-torn-write    a gen-file write stops partway (header + a payload
//                       prefix land on disk, no footer) and the commit
//                       aborts — the crash-mid-write shape.
//   store-bitflip       the write completes and commits, then one payload
//                       byte is flipped on disk — the bit-rot shape,
//                       caught by CRC on the next open.
//   store-enospc        a write reports failure partway through (partial
//                       temp file left behind), as ENOSPC does.
//   store-rename-fail   the atomic rename step fails; the temp file stays,
//                       the committed state is unchanged.
//
// Optional `key=value` suffixes select when the fault fires, counted over
// the store's filesystem operations of the matching kind:
//   after=N   fire on ops with index >= N (default 0).
//   times=N   fire at most N times (default 1; -1 = forever).
// e.g. ARECEL_FAULT_INJECT=store-torn-write:after=1:times=1

enum class StoreFaultKind {
  kTornWrite,
  kBitflip,
  kEnospc,
  kRenameFail,
};

const char* StoreFaultKindName(StoreFaultKind kind);

struct StoreFaultSpec {
  StoreFaultKind kind = StoreFaultKind::kTornWrite;
  int after_ops = 0;
  int times = 1;
};

// Parses the store-* tokens out of a fault-plan string, ignoring estimator
// specs (which the robustness parser owns). Returns false and sets `error`
// on a malformed store token. An empty string parses to an empty plan.
bool ParseStoreFaultPlan(const std::string& text,
                         std::vector<StoreFaultSpec>* plan,
                         std::string* error);

// Store fault plan from ARECEL_FAULT_INJECT (empty when unset). Aborts on
// a malformed store token — a typo'd injection silently running clean
// would defeat the test.
std::vector<StoreFaultSpec> StoreFaultPlanFromEnv();

// Armed fault schedule consulted by the store at each filesystem
// operation. Thread-safe: op counters are atomics, so a maintenance worker
// and a serving thread can hit the store concurrently under injection.
class StoreFaultInjector {
 public:
  explicit StoreFaultInjector(std::vector<StoreFaultSpec> plan);

  bool empty() const { return plan_.empty(); }

  // Should the next write of `kind`-matching stage fire a fault? Each call
  // advances the per-kind op counter. kTornWrite and kEnospc match write
  // ops, kRenameFail matches rename ops, kBitflip matches post-commit
  // corruption points.
  bool Fire(StoreFaultKind kind);

 private:
  std::vector<StoreFaultSpec> plan_;
  // Per-spec operation and fire counters (sized in the constructor, never
  // resized — atomics are not movable).
  std::vector<std::atomic<int>> ops_;
  std::vector<std::atomic<int>> fired_;
};

}  // namespace arecel::store

#endif  // ARECEL_STORE_STORE_FAULTS_H_
