#ifndef ARECEL_DATA_SCHEMA_H_
#define ARECEL_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"

namespace arecel {

// One PK–FK edge: `table`.`column` references `ref_table`.`ref_column`,
// which must hold unique values (the referenced table's primary key).
// Columns are indices into the owning table's column list.
struct ForeignKey {
  std::string table;
  int column = 0;
  std::string ref_table;
  int ref_column = 0;
};

// A multi-table schema: named tables plus the foreign-key edges between
// them. Tables are owned by value; the join executor, workload generator
// and join-capable estimators all read through this one object, so the
// schema must outlive anything built over it (same contract as
// Table/BlockScanner).
class Schema {
 public:
  Schema() = default;

  // Adds a table. Names must be unique and non-empty.
  void AddTable(Table table);

  // Declares a PK–FK edge. Both tables must already be added and the
  // column indices must be in range.
  void AddForeignKey(ForeignKey fk);

  size_t num_tables() const { return tables_.size(); }
  const std::vector<Table>& tables() const { return tables_; }
  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }

  // Lookup by name; table() aborts on a missing name, FindTable returns
  // nullptr.
  const Table& table(const std::string& name) const;
  const Table* FindTable(const std::string& name) const;
  int TableIndex(const std::string& name) const;  // -1 when missing.

  // The FK edge connecting `table` to `ref_table` in either direction
  // (nullptr when the pair is not joined). A star schema has exactly one
  // edge per (fact, dimension) pair.
  const ForeignKey* FindEdge(const std::string& table,
                             const std::string& ref_table) const;

  // Index of `fk` within foreign_keys() by field equality (-1 if absent) —
  // the stable id join featurizations one-hot over.
  int EdgeIndex(const ForeignKey& fk) const;

  // True when (table, column) participates in any FK edge, on either side.
  // Workload generators exclude key columns from predicate generation: the
  // paper's join benchmarks predicate on payload attributes, and a literal
  // predicate on a surrogate key would be meaningless.
  bool IsKeyColumn(const std::string& table, int column) const;

  // Verifies referential integrity: every referenced column holds unique
  // values and every FK value appears in its referenced column. On failure
  // returns false and describes the first violation in `detail` (may be
  // null).
  bool CheckIntegrity(std::string* detail) const;

 private:
  std::vector<Table> tables_;
  std::vector<ForeignKey> fks_;
};

// Seeded star-schema generator: one fact table ("fact") with a Zipf-skewed
// FK column per dimension plus numeric payload attributes, and
// `num_dimensions` dimension tables ("dim0", "dim1", ...) each holding a
// unique integer "pk" column plus payload attributes.
//
// Correlation structure (the regime where independence-assuming join
// estimators demonstrably err — §7 of the paper's follow-up benchmarks):
//  * dimension payloads band the key space: with probability `correlation`
//    attr = floor(pk * domain / rows), so a range predicate on a dimension
//    attribute selects a contiguous pk band;
//  * FK fan-out is Zipf(`fk_skew`) over the pk space: low pks are
//    referenced far more often, so the selected band's true fan-out can be
//    orders off the uniform-fan-out assumption;
//  * all FK draws share one latent uniform per fact row (kept with
//    probability `correlation`), correlating dimensions with each other;
//  * fact payloads band the dim0 FK the same way, correlating fact
//    predicates with dimension predicates.
struct StarSchemaOptions {
  size_t fact_rows = 20000;
  int num_dimensions = 3;       // clamped to [1, 8].
  size_t dim_rows = 128;        // rows per dimension table.
  int fact_payload_cols = 2;    // non-key fact attributes.
  int dim_payload_cols = 2;     // non-key attributes per dimension.
  int payload_domain = 32;      // distinct values per payload attribute.
  double fk_skew = 1.0;         // Zipf exponent of FK fan-out (0 = uniform).
  double correlation = 0.8;     // key<->payload and cross-dim coupling.
};

Schema GenerateStarSchema(const StarSchemaOptions& options, uint64_t seed);

}  // namespace arecel

#endif  // ARECEL_DATA_SCHEMA_H_
