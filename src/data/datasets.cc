#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace arecel {

namespace {

// Maps a dictionary code to a numeric attribute value with mildly nonuniform
// spacing (k^1.1). Keeping the mapping monotone preserves range semantics
// while violating the uniform-spread assumption that histogram estimators
// make, as real numeric attributes do.
double NumericAnchor(int code) {
  return std::pow(static_cast<double>(code), 1.1);
}

}  // namespace

DatasetSpec CensusSpec() {
  DatasetSpec s;
  s.name = "census";
  s.rows = 49000;
  s.num_cols = 13;
  s.num_categorical = 8;
  s.domain_sizes = {73, 9, 16, 16, 7, 15, 6, 5, 92, 95, 94, 42, 2};
  s.skews = {0.6, 1.2, 0.8, 0.8, 0.9, 1.0, 1.1, 0.7, 1.4, 1.5, 0.5, 0.9, 0.3};
  s.correlations = {0.9, 0.5, 0.95, 0.9, 0.7, 0.85, 0.6, 0.4,
                    0.9, 0.85, 0.3, 0.7, 0.5};
  return s;
}

DatasetSpec ForestSpec() {
  DatasetSpec s;
  s.name = "forest";
  s.rows = 120000;
  s.num_cols = 10;
  s.num_categorical = 0;
  s.domain_sizes = {500, 400, 60, 560, 700, 550, 207, 185, 255, 700};
  s.skews = {0.4, 0.5, 0.7, 0.8, 1.0, 0.6, 0.3, 0.3, 0.4, 0.9};
  s.correlations = {0.95, 0.9, 0.6, 0.7, 0.85, 0.7, 0.95, 0.9, 0.85, 0.5};
  return s;
}

DatasetSpec PowerSpec() {
  DatasetSpec s;
  s.name = "power";
  s.rows = 200000;
  s.num_cols = 7;
  s.num_categorical = 0;
  s.domain_sizes = {300, 250, 2000, 400, 90, 80, 30};
  s.skews = {0.8, 0.9, 0.5, 0.7, 1.1, 1.2, 0.6};
  s.correlations = {0.95, 0.95, 0.8, 0.9, 0.7, 0.7, 0.4};
  return s;
}

DatasetSpec DmvSpec() {
  DatasetSpec s;
  s.name = "dmv";
  s.rows = 300000;
  s.num_cols = 11;
  s.num_categorical = 10;
  s.domain_sizes = {9, 25, 60, 2, 3, 90, 600, 30, 5, 2, 2000};
  s.skews = {1.3, 1.0, 0.9, 0.4, 0.5, 1.2, 0.8, 1.0, 0.7, 0.2, 0.6};
  s.correlations = {0.7, 0.85, 0.9, 0.4, 0.5, 0.85, 0.95, 0.7, 0.5, 0.3, 0.9};
  return s;
}

Table GenerateDataset(const DatasetSpec& spec, uint64_t seed) {
  ARECEL_CHECK(static_cast<int>(spec.domain_sizes.size()) == spec.num_cols);
  ARECEL_CHECK(static_cast<int>(spec.skews.size()) == spec.num_cols);
  ARECEL_CHECK(static_cast<int>(spec.correlations.size()) == spec.num_cols);

  Rng rng(seed);
  // Shared latent factor per row: columns copy it with per-column
  // probability `correlations[j]`, which induces pairwise correlation while
  // keeping each marginal exactly Zipf(skew_j) after inverse-CDF mapping.
  std::vector<double> latent(spec.rows);
  for (double& t : latent) t = rng.Uniform();

  Table table(spec.name);
  for (int j = 0; j < spec.num_cols; ++j) {
    const int d = spec.domain_sizes[j];
    const bool categorical = j < spec.num_categorical;
    // Inverse-CDF table for the Zipf marginal. Alternating columns reverse
    // the code direction so not every pair is co-monotone, but the
    // dependence stays smooth/monotone — the kind real attributes exhibit
    // and dependence measures (RDC) and learned models can actually pick up
    // (a random code permutation would make the joint unlearnable noise).
    ZipfSampler zipf(static_cast<uint64_t>(d), spec.skews[j]);
    const bool reversed = (j % 2) == 1;

    std::vector<double> values(spec.rows);
    for (size_t r = 0; r < spec.rows; ++r) {
      const double u =
          rng.Bernoulli(spec.correlations[j]) ? latent[r] : rng.Uniform();
      const uint64_t rank = zipf.InvertCdf(u);
      const int code = reversed ? d - 1 - static_cast<int>(rank)
                                : static_cast<int>(rank);
      values[r] = categorical ? static_cast<double>(code)
                              : NumericAnchor(code);
    }
    const std::string prefix = categorical ? "cat_" : "num_";
    table.AddColumn(prefix + std::to_string(j), std::move(values),
                    categorical);
  }
  table.Finalize();
  return table;
}

std::vector<Table> BenchmarkDatasets(double scale, uint64_t seed) {
  std::vector<DatasetSpec> specs = {CensusSpec(), ForestSpec(), PowerSpec(),
                                    DmvSpec()};
  std::vector<Table> tables;
  tables.reserve(specs.size());
  for (auto& spec : specs) {
    spec.rows = static_cast<size_t>(
        std::max(1000.0, static_cast<double>(spec.rows) * scale));
    tables.push_back(GenerateDataset(spec, seed));
  }
  return tables;
}

Table GenerateSynthetic2D(size_t rows, double skew, double correlation,
                          int domain_size, uint64_t seed) {
  ARECEL_CHECK(domain_size > 0);
  ARECEL_CHECK(correlation >= 0.0 && correlation <= 1.0);
  Rng rng(seed);
  std::vector<double> col_a(rows), col_b(rows);
  for (size_t r = 0; r < rows; ++r) {
    const double x = rng.SkewedUnit(skew);
    int a = static_cast<int>(x * domain_size);
    a = std::min(a, domain_size - 1);
    const int b = rng.Bernoulli(correlation)
                      ? a
                      : static_cast<int>(rng.UniformInt(
                            static_cast<uint64_t>(domain_size)));
    col_a[r] = static_cast<double>(a);
    col_b[r] = static_cast<double>(b);
  }
  Table table("synthetic2d");
  table.AddColumn("col0", std::move(col_a), /*categorical=*/false);
  table.AddColumn("col1", std::move(col_b), /*categorical=*/false);
  table.Finalize();
  return table;
}

Table AppendCorrelatedUpdate(const Table& base, double fraction,
                             uint64_t seed) {
  ARECEL_CHECK(fraction > 0.0 && fraction <= 1.0);
  const Table sorted = base.SortedColumnsCopy();
  const size_t append_rows = static_cast<size_t>(
      static_cast<double>(base.num_rows()) * fraction);
  const Table appended = sorted.SampleRows(append_rows, seed);
  Table updated = base.Head(base.num_rows());  // deep copy with same schema.
  updated.AppendRows(appended);
  updated.Finalize();
  return updated;
}

}  // namespace arecel
