#ifndef ARECEL_DATA_TABLE_H_
#define ARECEL_DATA_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace arecel {

// One attribute of a relation, stored column-major.
//
// Every value is a double drawn from a finite sorted `domain` (categorical
// attributes hold integer codes). Alongside the raw values the column keeps
// the dictionary code of each row (`codes[r]` = index of values[r] within
// `domain`), which the discrete estimators (Naru, Bayes, MHIST bucketing)
// consume directly.
struct Column {
  std::string name;
  bool categorical = false;
  std::vector<double> values;   // length = table rows.
  std::vector<double> domain;   // sorted distinct values; filled by Finalize.
  std::vector<int32_t> codes;   // per-row index into domain; by Finalize.

  double min() const { return domain.front(); }
  double max() const { return domain.back(); }
  size_t domain_size() const { return domain.size(); }

  // Index of the first domain value >= v (domain_size() if none).
  int32_t LowerBoundCode(double v) const;
  // Index of the last domain value <= v (-1 if none).
  int32_t UpperBoundCode(double v) const;
};

// A single relation. Columns all share the same row count.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Adds a column of raw values; all columns must have equal length.
  void AddColumn(std::string col_name, std::vector<double> values,
                 bool categorical);

  // Rebuilds every column's domain and code vectors. Must be called after
  // construction and after any AppendRows.
  void Finalize();

  // Appends the rows of `other` (same schema order) to this table. Call
  // Finalize() afterwards.
  void AppendRows(const Table& other);

  // Returns a new table containing rows [0, count) of this table.
  Table Head(size_t count) const;

  // Returns a uniform random sample (without replacement) of `count` rows.
  Table SampleRows(size_t count, uint64_t seed) const;

  // Returns a copy in which every column is sorted ascending independently —
  // the paper's §5.1 construction that maximizes Spearman correlation
  // between every pair of columns.
  Table SortedColumnsCopy() const;

  // Total number of distinct-value combinations, as log10 (the paper's
  // "Domain" column in Table 3).
  double Log10JointDomain() const;

  // Approximate in-memory size in bytes (raw values only), mirroring the
  // paper's use of data size to set the 1.5% model budget.
  size_t DataSizeBytes() const;

 private:
  std::string name_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

}  // namespace arecel

#endif  // ARECEL_DATA_TABLE_H_
