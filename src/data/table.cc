#include "data/table.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace arecel {

int32_t Column::LowerBoundCode(double v) const {
  const auto it = std::lower_bound(domain.begin(), domain.end(), v);
  return static_cast<int32_t>(it - domain.begin());
}

int32_t Column::UpperBoundCode(double v) const {
  const auto it = std::upper_bound(domain.begin(), domain.end(), v);
  return static_cast<int32_t>(it - domain.begin()) - 1;
}

void Table::AddColumn(std::string col_name, std::vector<double> values,
                      bool categorical) {
  if (!columns_.empty()) {
    ARECEL_CHECK_MSG(values.size() == num_rows_,
                     "all columns must have the same length");
  } else {
    num_rows_ = values.size();
  }
  Column col;
  col.name = std::move(col_name);
  col.categorical = categorical;
  col.values = std::move(values);
  columns_.push_back(std::move(col));
}

void Table::Finalize() {
  for (Column& col : columns_) {
    // NaN would break std::sort's strict weak ordering, so it is excluded
    // from the domain; NaN rows get code -1. (Generated datasets never
    // contain NaN — this tolerance exists for the scan engine's NaN
    // differential tests, where no predicate matches a NaN row.)
    col.domain.clear();
    col.domain.reserve(col.values.size());
    for (double v : col.values) {
      if (!std::isnan(v)) col.domain.push_back(v);
    }
    std::sort(col.domain.begin(), col.domain.end());
    col.domain.erase(std::unique(col.domain.begin(), col.domain.end()),
                     col.domain.end());
    ARECEL_CHECK_MSG(!col.domain.empty(),
                     "column must have at least one non-NaN value");
    col.codes.resize(col.values.size());
    for (size_t r = 0; r < col.values.size(); ++r) {
      if (std::isnan(col.values[r])) {
        col.codes[r] = -1;
        continue;
      }
      const auto it = std::lower_bound(col.domain.begin(), col.domain.end(),
                                       col.values[r]);
      col.codes[r] = static_cast<int32_t>(it - col.domain.begin());
    }
  }
}

void Table::AppendRows(const Table& other) {
  ARECEL_CHECK(other.num_cols() == num_cols());
  for (size_t c = 0; c < columns_.size(); ++c) {
    const auto& src = other.columns_[c].values;
    auto& dst = columns_[c].values;
    dst.insert(dst.end(), src.begin(), src.end());
  }
  num_rows_ += other.num_rows_;
}

Table Table::Head(size_t count) const {
  ARECEL_CHECK(count <= num_rows_);
  Table out(name_);
  for (const Column& col : columns_) {
    out.AddColumn(col.name,
                  std::vector<double>(col.values.begin(),
                                      col.values.begin() +
                                          static_cast<long>(count)),
                  col.categorical);
  }
  out.Finalize();
  return out;
}

Table Table::SampleRows(size_t count, uint64_t seed) const {
  ARECEL_CHECK(count <= num_rows_);
  Rng rng(seed);
  const std::vector<int> rows = rng.SampleWithoutReplacement(
      static_cast<int>(num_rows_), static_cast<int>(count));
  Table out(name_ + "_sample");
  for (const Column& col : columns_) {
    std::vector<double> vals(count);
    for (size_t i = 0; i < count; ++i)
      vals[i] = col.values[static_cast<size_t>(rows[i])];
    out.AddColumn(col.name, std::move(vals), col.categorical);
  }
  out.Finalize();
  return out;
}

Table Table::SortedColumnsCopy() const {
  Table out(name_ + "_sorted");
  for (const Column& col : columns_) {
    std::vector<double> vals = col.values;
    std::sort(vals.begin(), vals.end());
    out.AddColumn(col.name, std::move(vals), col.categorical);
  }
  out.Finalize();
  return out;
}

double Table::Log10JointDomain() const {
  double log10_domain = 0.0;
  for (const Column& col : columns_)
    log10_domain += std::log10(static_cast<double>(col.domain.size()));
  return log10_domain;
}

size_t Table::DataSizeBytes() const {
  return num_rows_ * num_cols() * sizeof(double);
}

}  // namespace arecel
