#include "data/schema.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"
#include "util/random.h"

namespace arecel {

void Schema::AddTable(Table table) {
  ARECEL_CHECK_MSG(!table.name().empty(), "schema tables must be named");
  ARECEL_CHECK_MSG(FindTable(table.name()) == nullptr, table.name().c_str());
  tables_.push_back(std::move(table));
}

void Schema::AddForeignKey(ForeignKey fk) {
  const Table* from = FindTable(fk.table);
  const Table* to = FindTable(fk.ref_table);
  ARECEL_CHECK_MSG(from != nullptr, fk.table.c_str());
  ARECEL_CHECK_MSG(to != nullptr, fk.ref_table.c_str());
  ARECEL_CHECK(fk.column >= 0 &&
               static_cast<size_t>(fk.column) < from->num_cols());
  ARECEL_CHECK(fk.ref_column >= 0 &&
               static_cast<size_t>(fk.ref_column) < to->num_cols());
  fks_.push_back(std::move(fk));
}

const Table* Schema::FindTable(const std::string& name) const {
  for (const Table& t : tables_)
    if (t.name() == name) return &t;
  return nullptr;
}

const Table& Schema::table(const std::string& name) const {
  const Table* t = FindTable(name);
  ARECEL_CHECK_MSG(t != nullptr, name.c_str());
  return *t;
}

int Schema::TableIndex(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i)
    if (tables_[i].name() == name) return static_cast<int>(i);
  return -1;
}

const ForeignKey* Schema::FindEdge(const std::string& table,
                                   const std::string& ref_table) const {
  for (const ForeignKey& fk : fks_) {
    if ((fk.table == table && fk.ref_table == ref_table) ||
        (fk.table == ref_table && fk.ref_table == table)) {
      return &fk;
    }
  }
  return nullptr;
}

int Schema::EdgeIndex(const ForeignKey& fk) const {
  for (size_t i = 0; i < fks_.size(); ++i) {
    const ForeignKey& e = fks_[i];
    if (e.table == fk.table && e.column == fk.column &&
        e.ref_table == fk.ref_table && e.ref_column == fk.ref_column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool Schema::IsKeyColumn(const std::string& table, int column) const {
  for (const ForeignKey& fk : fks_) {
    if (fk.table == table && fk.column == column) return true;
    if (fk.ref_table == table && fk.ref_column == column) return true;
  }
  return false;
}

bool Schema::CheckIntegrity(std::string* detail) const {
  auto fail = [detail](const std::string& message) {
    if (detail != nullptr) *detail = message;
    return false;
  };
  for (const ForeignKey& fk : fks_) {
    const Table& from = table(fk.table);
    const Table& to = table(fk.ref_table);
    const Column& key = to.column(static_cast<size_t>(fk.ref_column));
    // Referenced side must be unique: domain size == row count.
    if (key.domain_size() != to.num_rows()) {
      return fail("referenced column " + fk.ref_table + "." + key.name +
                  " is not unique");
    }
    std::unordered_set<double> keys(key.values.begin(), key.values.end());
    const Column& ref = from.column(static_cast<size_t>(fk.column));
    for (size_t r = 0; r < ref.values.size(); ++r) {
      if (keys.count(ref.values[r]) == 0) {
        return fail("dangling FK " + fk.table + "." + ref.name + " row " +
                    std::to_string(r));
      }
    }
  }
  return true;
}

namespace {

// Bands a key drawn from [0, key_domain) into [0, payload_domain): the
// deterministic key->payload map that makes payload predicates select
// contiguous key ranges.
double Band(uint64_t key, size_t key_domain, int payload_domain) {
  return std::floor(static_cast<double>(key) *
                    static_cast<double>(payload_domain) /
                    static_cast<double>(key_domain));
}

}  // namespace

Schema GenerateStarSchema(const StarSchemaOptions& options, uint64_t seed) {
  StarSchemaOptions opt = options;
  opt.num_dimensions = std::clamp(opt.num_dimensions, 1, 8);
  opt.fact_payload_cols = std::max(1, opt.fact_payload_cols);
  opt.dim_payload_cols = std::max(1, opt.dim_payload_cols);
  opt.payload_domain = std::max(2, opt.payload_domain);
  ARECEL_CHECK(opt.dim_rows > 0);
  ARECEL_CHECK(opt.fact_rows > 0);

  Schema schema;
  Rng rng(seed);

  // Dimensions: unique pk plus banded payload attributes.
  for (int d = 0; d < opt.num_dimensions; ++d) {
    Table dim("dim" + std::to_string(d));
    std::vector<double> pk(opt.dim_rows);
    for (size_t r = 0; r < opt.dim_rows; ++r)
      pk[r] = static_cast<double>(r);
    dim.AddColumn("pk", std::move(pk), /*categorical=*/true);
    for (int c = 0; c < opt.dim_payload_cols; ++c) {
      std::vector<double> attr(opt.dim_rows);
      for (size_t r = 0; r < opt.dim_rows; ++r) {
        attr[r] = rng.Bernoulli(opt.correlation)
                      ? Band(r, opt.dim_rows, opt.payload_domain)
                      : static_cast<double>(rng.UniformInt(
                            static_cast<uint64_t>(opt.payload_domain)));
      }
      dim.AddColumn("a" + std::to_string(c), std::move(attr),
                    /*categorical=*/false);
    }
    dim.Finalize();
    schema.AddTable(std::move(dim));
  }

  // Fact: one Zipf-skewed FK per dimension (sharing a per-row latent with
  // probability `correlation`), then payload attributes banded on fk0.
  const ZipfSampler fanout(opt.dim_rows, opt.fk_skew);
  std::vector<std::vector<double>> fks(
      static_cast<size_t>(opt.num_dimensions),
      std::vector<double>(opt.fact_rows));
  std::vector<std::vector<double>> payload(
      static_cast<size_t>(opt.fact_payload_cols),
      std::vector<double>(opt.fact_rows));
  for (size_t r = 0; r < opt.fact_rows; ++r) {
    const double latent = rng.Uniform();
    uint64_t fk0 = 0;
    for (int d = 0; d < opt.num_dimensions; ++d) {
      const double u =
          rng.Bernoulli(opt.correlation) ? latent : rng.Uniform();
      const uint64_t key = fanout.InvertCdf(u);
      fks[static_cast<size_t>(d)][r] = static_cast<double>(key);
      if (d == 0) fk0 = key;
    }
    for (int c = 0; c < opt.fact_payload_cols; ++c) {
      payload[static_cast<size_t>(c)][r] =
          rng.Bernoulli(opt.correlation)
              ? Band(fk0, opt.dim_rows, opt.payload_domain)
              : static_cast<double>(rng.UniformInt(
                    static_cast<uint64_t>(opt.payload_domain)));
    }
  }

  Table fact("fact");
  for (int d = 0; d < opt.num_dimensions; ++d) {
    fact.AddColumn("dim" + std::to_string(d) + "_fk",
                   std::move(fks[static_cast<size_t>(d)]),
                   /*categorical=*/true);
  }
  for (int c = 0; c < opt.fact_payload_cols; ++c) {
    fact.AddColumn("a" + std::to_string(c),
                   std::move(payload[static_cast<size_t>(c)]),
                   /*categorical=*/false);
  }
  fact.Finalize();
  schema.AddTable(std::move(fact));

  for (int d = 0; d < opt.num_dimensions; ++d) {
    ForeignKey fk;
    fk.table = "fact";
    fk.column = d;
    fk.ref_table = "dim" + std::to_string(d);
    fk.ref_column = 0;
    schema.AddForeignKey(std::move(fk));
  }
  return schema;
}

}  // namespace arecel
