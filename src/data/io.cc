#include "data/io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace arecel {

namespace {

constexpr uint32_t kTableMagic = 0x41434531;     // "ACE1".
constexpr uint32_t kWorkloadMagic = 0x41434532;  // "ACE2".
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return out_.good(); }

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  void Doubles(const std::vector<double>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(double));
  }

 private:
  void Raw(const void* data, size_t bytes) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
  }
  std::ofstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : in_(path, std::ios::binary) {}

  bool ok() const { return in_.good(); }

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint64_t size = 0;
    if (!U64(&size) || size > (1ull << 20)) return false;
    s->resize(size);
    return Raw(s->data(), size);
  }
  bool Doubles(std::vector<double>* v) {
    uint64_t size = 0;
    if (!U64(&size) || size > (1ull << 32)) return false;
    v->resize(size);
    return Raw(v->data(), size * sizeof(double));
  }

 private:
  bool Raw(void* data, size_t bytes) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    return in_.good() || (bytes == 0);
  }
  std::ifstream in_;
};

}  // namespace

bool SaveTable(const Table& table, const std::string& path) {
  Writer w(path);
  if (!w.ok()) return false;
  w.U32(kTableMagic);
  w.U32(kVersion);
  w.Str(table.name());
  w.U64(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const Column& col = table.column(c);
    w.Str(col.name);
    w.U32(col.categorical ? 1 : 0);
    w.Doubles(col.values);
  }
  return w.ok();
}

bool LoadTable(const std::string& path, Table* table) {
  Reader r(path);
  if (!r.ok()) return false;
  uint32_t magic = 0, version = 0;
  if (!r.U32(&magic) || magic != kTableMagic) return false;
  if (!r.U32(&version) || version != kVersion) return false;
  std::string name;
  uint64_t cols = 0;
  if (!r.Str(&name) || !r.U64(&cols) || cols > 4096) return false;
  Table loaded(name);
  for (uint64_t c = 0; c < cols; ++c) {
    std::string col_name;
    uint32_t categorical = 0;
    std::vector<double> values;
    if (!r.Str(&col_name) || !r.U32(&categorical) || !r.Doubles(&values))
      return false;
    loaded.AddColumn(std::move(col_name), std::move(values),
                     categorical != 0);
  }
  loaded.Finalize();
  *table = std::move(loaded);
  return true;
}

bool SaveWorkload(const Workload& workload, const std::string& path) {
  Writer w(path);
  if (!w.ok()) return false;
  w.U32(kWorkloadMagic);
  w.U32(kVersion);
  w.U64(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const Query& q = workload.queries[i];
    w.U64(q.predicates.size());
    for (const Predicate& p : q.predicates) {
      w.U32(static_cast<uint32_t>(p.column));
      w.F64(p.lo);
      w.F64(p.hi);
    }
    w.F64(workload.selectivities[i]);
  }
  return w.ok();
}

bool LoadWorkload(const std::string& path, Workload* workload) {
  Reader r(path);
  if (!r.ok()) return false;
  uint32_t magic = 0, version = 0;
  if (!r.U32(&magic) || magic != kWorkloadMagic) return false;
  if (!r.U32(&version) || version != kVersion) return false;
  uint64_t count = 0;
  if (!r.U64(&count) || count > (1ull << 24)) return false;
  Workload loaded;
  loaded.queries.resize(count);
  loaded.selectivities.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t predicates = 0;
    if (!r.U64(&predicates) || predicates > 4096) return false;
    Query& q = loaded.queries[i];
    q.predicates.resize(predicates);
    for (uint64_t p = 0; p < predicates; ++p) {
      uint32_t column = 0;
      if (!r.U32(&column) || !r.F64(&q.predicates[p].lo) ||
          !r.F64(&q.predicates[p].hi))
        return false;
      q.predicates[p].column = static_cast<int>(column);
    }
    if (!r.F64(&loaded.selectivities[i])) return false;
  }
  *workload = std::move(loaded);
  return true;
}

}  // namespace arecel
