#ifndef ARECEL_DATA_DATASETS_H_
#define ARECEL_DATA_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"

namespace arecel {

// Synthetic stand-ins for the paper's four real-world benchmark datasets
// (Table 3). The real data cannot be shipped, so each generator matches the
// published shape: column count, categorical/numeric ratio, per-column
// domain sizes (so the joint log-domain is in the paper's ballpark), heavy
// marginal skew, and cross-column correlation induced by shared latent
// factors. Row counts are scaled down so CPU-only benches finish quickly;
// `scale` multiplies the default row count.

struct DatasetSpec {
  std::string name;
  size_t rows = 0;
  int num_cols = 0;
  int num_categorical = 0;
  // Per-column generation knobs (size == num_cols).
  std::vector<int> domain_sizes;
  std::vector<double> skews;         // Zipf exponent per column.
  std::vector<double> correlations;  // weight on the shared latent factor.
};

// Specs mirroring the paper's Table 3 (rows scaled; see DESIGN.md §2).
DatasetSpec CensusSpec();
DatasetSpec ForestSpec();
DatasetSpec PowerSpec();
DatasetSpec DmvSpec();

// Generates a table from a spec. Deterministic given (spec, seed).
Table GenerateDataset(const DatasetSpec& spec, uint64_t seed);

// Convenience: all four benchmark tables at a given row scale.
std::vector<Table> BenchmarkDatasets(double scale, uint64_t seed);

// The §6.1 micro-benchmark generator: two columns, `rows` rows.
//  - column A: SkewedUnit(s) quantized to `domain_size` bins (codes 0..d-1);
//    s = 0 is uniform, larger s is more skewed.
//  - column B: equals A with probability `correlation`, otherwise an
//    independent uniform draw from the same domain. correlation = 1 makes
//    the columns functionally dependent.
Table GenerateSynthetic2D(size_t rows, double skew, double correlation,
                          int domain_size, uint64_t seed);

// The paper's §5.1 dynamic-environment update: builds a sorted-columns copy
// of `base` (maximal pairwise Spearman correlation), samples
// `fraction` * rows tuples from it, and returns `base` with those tuples
// appended (finalized). The appended part deliberately has different
// correlation characteristics from the original so a stale model degrades.
Table AppendCorrelatedUpdate(const Table& base, double fraction,
                             uint64_t seed);

}  // namespace arecel

#endif  // ARECEL_DATA_DATASETS_H_
