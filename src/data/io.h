#ifndef ARECEL_DATA_IO_H_
#define ARECEL_DATA_IO_H_

#include <string>

#include "data/table.h"
#include "workload/generator.h"

namespace arecel {

// Compact binary persistence for tables and labelled workloads.
//
// Ground-truth labelling is the most expensive part of preparing an
// experiment (a full scan per query); saving a labelled workload next to
// its table lets repeated bench runs skip it. The format is a little-endian
// tagged container (magic + version header); loads validate the header and
// return false on any structural mismatch rather than aborting.

bool SaveTable(const Table& table, const std::string& path);
// On success the returned table is finalized (domains/codes rebuilt).
bool LoadTable(const std::string& path, Table* table);

bool SaveWorkload(const Workload& workload, const std::string& path);
bool LoadWorkload(const std::string& path, Workload* workload);

}  // namespace arecel

#endif  // ARECEL_DATA_IO_H_
