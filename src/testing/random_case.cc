#include "testing/random_case.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"
#include "util/random.h"
#include "workload/generator.h"

namespace arecel {

std::string RandomCase::Describe() const {
  char head[128];
  std::snprintf(head, sizeof(head), "seed=%llu rows=%zu cols=%zu queries=%zu",
                static_cast<unsigned long long>(seed), table.num_rows(),
                table.num_cols(), queries.size());
  std::string out = head;
  out += " preds=[";
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(queries[i].predicates.size());
  }
  out += "]";
  return out;
}

size_t RandomCase::TotalPredicates() const {
  size_t total = 0;
  for (const Query& q : queries) total += q.predicates.size();
  return total;
}

RandomCase GenerateRandomCase(uint64_t seed,
                              const RandomCaseOptions& options) {
  ARECEL_CHECK(options.min_rows >= 1 && options.min_rows <= options.max_rows);
  ARECEL_CHECK(options.min_cols >= 1 && options.min_cols <= options.max_cols);
  ARECEL_CHECK(options.min_domain >= 2 &&
               options.min_domain <= options.max_domain);
  Rng rng(seed);

  const size_t rows = static_cast<size_t>(rng.UniformInt(
      static_cast<int64_t>(options.min_rows),
      static_cast<int64_t>(options.max_rows)));
  const int cols = static_cast<int>(
      rng.UniformInt(static_cast<int64_t>(options.min_cols),
                     static_cast<int64_t>(options.max_cols)));

  RandomCase out;
  out.seed = seed;
  out.table = Table("random_case_" + std::to_string(seed));

  // A shared latent uniform per row induces cross-column correlation, the
  // regime where independence-assuming estimators are most stressed.
  std::vector<double> latent(rows);
  for (size_t r = 0; r < rows; ++r) latent[r] = rng.Uniform();

  for (int c = 0; c < cols; ++c) {
    const int domain = static_cast<int>(
        rng.UniformInt(static_cast<int64_t>(options.min_domain),
                       static_cast<int64_t>(options.max_domain)));
    const double skew = rng.Uniform(0.0, options.max_skew);
    const double correlation = rng.Uniform();
    const bool categorical = rng.Bernoulli(options.categorical_probability);
    ZipfSampler zipf(static_cast<uint64_t>(domain), skew);
    std::vector<double> values(rows);
    for (size_t r = 0; r < rows; ++r) {
      const uint64_t code = rng.Bernoulli(correlation)
                                ? zipf.InvertCdf(latent[r])
                                : zipf.Sample(rng);
      values[r] = static_cast<double>(code);
    }
    out.table.AddColumn("c" + std::to_string(c), std::move(values),
                        categorical);
  }
  out.table.Finalize();

  out.queries = GenerateQueries(out.table, options.num_queries,
                                rng.Next() | 1);
  return out;
}

}  // namespace arecel
