#ifndef ARECEL_TESTING_RANDOM_CASE_H_
#define ARECEL_TESTING_RANDOM_CASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "workload/query.h"

namespace arecel {

// Seeded generation of random (table, query set) cases for property-based
// testing. Tables vary in row count, arity, domain sizes, skew, correlation
// and categorical mix; queries come from the paper's unified workload
// generator, so the property suites exercise the same query shapes the
// benchmark does. Deterministic given (seed, options).

struct RandomCaseOptions {
  size_t min_rows = 64;
  size_t max_rows = 4096;
  int min_cols = 1;
  int max_cols = 5;
  int min_domain = 2;
  int max_domain = 64;
  size_t num_queries = 24;
  double categorical_probability = 0.3;
  double max_skew = 1.5;
};

struct RandomCase {
  uint64_t seed = 0;
  Table table;
  std::vector<Query> queries;

  // Compact one-line description for failure messages, e.g.
  // "seed=7 rows=512 cols=3 queries=4 preds=[2,1,3]".
  std::string Describe() const;

  // Total number of predicates across all queries.
  size_t TotalPredicates() const;
};

RandomCase GenerateRandomCase(uint64_t seed,
                              const RandomCaseOptions& options = {});

}  // namespace arecel

#endif  // ARECEL_TESTING_RANDOM_CASE_H_
