#ifndef ARECEL_TESTING_INVARIANTS_H_
#define ARECEL_TESTING_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "data/schema.h"
#include "data/table.h"
#include "workload/generator.h"
#include "workload/join_generator.h"

namespace arecel {

// Metamorphic invariant checkers — the behavioral contract every estimator
// in the registry must satisfy (within a per-estimator tolerance; the
// paper's §6.3 shows learned models fluctuate, so exactness is a profile,
// not a universal). Each checker runs a batch of trials against a trained
// estimator and reports violation counts, mirroring core/rules.h but with
// the conformance suite's pass/fail framing: rules.cc *measures* violation
// rates as a research result, these checkers *gate* merges.

// Slack applied before a trial counts as a violation. `relative` scales the
// reference estimate; `absolute` is in selectivity units.
struct InvariantTolerance {
  double relative = 1e-9;
  double absolute = 1e-9;
};

struct InvariantResult {
  std::string invariant;
  size_t trials = 0;
  size_t violations = 0;
  double worst = 0.0;    // largest observed excess, selectivity units.
  std::string detail;    // description of the first violation.
  bool skipped = false;  // invariant does not apply (e.g. no persistence).

  bool passed() const { return skipped || violations == 0; }
};

// Estimates for every probe are finite selectivities in [0, 1], and the
// derived cardinalities lie in [0, rows].
InvariantResult CheckSelectivityBounds(const CardinalityEstimator& estimator,
                                       const std::vector<Query>& probes,
                                       size_t rows);

// Tightening a query — shrinking one predicate's interval or appending a
// new conjunct — must not increase the estimate beyond tolerance.
InvariantResult CheckTighteningMonotonicity(
    const CardinalityEstimator& estimator, const Table& table, size_t trials,
    uint64_t seed, const InvariantTolerance& tolerance);

// Appending a predicate spanning a column's full domain must not move the
// estimate beyond tolerance.
InvariantResult CheckFullDomainNoOp(const CardinalityEstimator& estimator,
                                    const Table& table, size_t trials,
                                    uint64_t seed,
                                    const InvariantTolerance& tolerance);

// Training two fresh instances of `name` with the same seed and issuing the
// identical probe sequence must produce bit-identical estimates. (Stochastic
// inference like Naru's progressive sampling draws its seed from a
// per-instance counter, so aligned call sequences are deterministic.)
InvariantResult CheckDeterminism(const std::string& name, const Table& table,
                                 const Workload& train,
                                 const std::vector<Query>& probes,
                                 uint64_t seed);

// SaveEstimator -> LoadEstimator into a fresh instance preserves the probe
// estimates bit-for-bit. Skipped (passed) for estimators without
// persistence support.
InvariantResult CheckSaveLoadRoundTrip(const std::string& name,
                                       const Table& table,
                                       const Workload& train,
                                       const std::vector<Query>& probes,
                                       uint64_t seed,
                                       const std::string& temp_dir);

// ---- Join invariants (DESIGN.md §13) ----
//
// The two checkers below apply only to estimators whose SupportsJoins() is
// true (postgres-join, sampling-join, mscn-join); every other registry name
// reports skipped=true, which counts as passed — join capability is a
// capability, not an obligation, mirroring the feedback invariants.

// Join bounds: after TrainJoin over the star fixture, every join probe's
// selectivity is a finite value in [0, 1] and the derived cardinality lies
// in [0, product of participating table row counts].
InvariantResult CheckJoinSelectivityBounds(const std::string& name,
                                           const Schema& schema,
                                           const JoinWorkload& train,
                                           const std::vector<JoinQuery>& probes,
                                           uint64_t seed);

// Join determinism: two fresh instances trained via TrainJoin with the same
// seed must answer an identical join probe sequence bit-identically.
InvariantResult CheckJoinDeterminism(const std::string& name,
                                     const Schema& schema,
                                     const JoinWorkload& train,
                                     const std::vector<JoinQuery>& probes,
                                     uint64_t seed);

// ---- Feedback invariants (DESIGN.md §11) ----
//
// The three checkers below apply only to estimators implementing
// FeedbackSink (feedback-knn, feedback-corrected); every other registry
// name reports skipped=true, which counts as passed — adaptive behavior is
// a capability, not an obligation.

// Feedback monotonicity: repeatedly observing the exact truth for a query
// must drive that query's q-error toward 1. After kFeedbackRepeats truths
// the q-error must be <= max(kConvergedQError, its pre-feedback value).
inline constexpr int kFeedbackRepeats = 12;
inline constexpr double kConvergedQError = 1.5;
InvariantResult CheckFeedbackMonotonicity(const std::string& name,
                                          const Table& table,
                                          const Workload& train,
                                          size_t trials, uint64_t seed);

// Correction-never-worse: a prequential replay (estimate, then learn the
// truth, query by query) must not leave the median q-error more than 5%
// above the same estimator replaying without feedback.
InvariantResult CheckFeedbackReplayNotWorse(const std::string& name,
                                            const Table& table,
                                            const Workload& train,
                                            uint64_t seed);

// Convergence under the §5 dynamic protocol: after a 20% correlated append
// leaves the model stale (no Update call), feeding executed truths over the
// updated table must bring the median q-error on those queries back down —
// at worst 5% above the stale median, in practice far below it.
InvariantResult CheckFeedbackDynamicConvergence(const std::string& name,
                                                const Table& table,
                                                const Workload& train,
                                                uint64_t seed);

}  // namespace arecel

#endif  // ARECEL_TESTING_INVARIANTS_H_
