#include "testing/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/model_io.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "join/join_executor.h"
#include "scan/block_scan.h"
#include "util/check.h"
#include "util/random.h"
#include "util/stats.h"

namespace arecel {

namespace {

void RecordViolation(InvariantResult* result, double excess,
                     const std::string& detail) {
  ++result->violations;
  if (excess > result->worst) result->worst = excess;
  if (result->detail.empty()) result->detail = detail;
}

// Columns whose domain is wide enough to carve a strict sub-range from.
std::vector<int> RangeableColumns(const Table& table) {
  std::vector<int> cols;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (!table.column(c).categorical && table.column(c).domain.size() >= 8)
      cols.push_back(static_cast<int>(c));
  }
  return cols;
}

Query RandomRangeQuery(const Table& table, int col, Rng& rng) {
  const Column& column = table.column(static_cast<size_t>(col));
  const size_t domain = column.domain.size();
  const size_t a = rng.UniformInt(static_cast<uint64_t>(domain - 4));
  const size_t b =
      a + 4 + rng.UniformInt(static_cast<uint64_t>(domain - a - 4));
  Query query;
  query.predicates.push_back(
      {col, column.domain[a], column.domain[std::min(b, domain - 1)]});
  return query;
}

std::unique_ptr<CardinalityEstimator> TrainFresh(const std::string& name,
                                                 const Table& table,
                                                 const Workload& train,
                                                 uint64_t seed) {
  auto estimator = MakeEstimator(name);
  TrainContext context;
  context.training_workload = &train;
  context.seed = seed;
  estimator->Train(table, context);
  return estimator;
}

std::string QuerySummary(const Query& query) {
  std::string out = "{";
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    const Predicate& p = query.predicates[i];
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%sc%d in [%g, %g]", i > 0 ? ", " : "",
                  p.column, p.lo, p.hi);
    out += buf;
  }
  return out + "}";
}

}  // namespace

InvariantResult CheckSelectivityBounds(const CardinalityEstimator& estimator,
                                       const std::vector<Query>& probes,
                                       size_t rows) {
  InvariantResult result;
  result.invariant = "bounds";
  result.trials = probes.size();
  for (const Query& query : probes) {
    const double sel = estimator.EstimateSelectivity(query);
    const double card = estimator.EstimateCardinality(query, rows);
    if (!std::isfinite(sel) || sel < 0.0 || sel > 1.0 || card < 0.0 ||
        card > static_cast<double>(rows)) {
      const double excess =
          std::isfinite(sel) ? std::max(sel - 1.0, -sel) : 1.0;
      RecordViolation(&result, excess,
                      "selectivity " + std::to_string(sel) + " for " +
                          QuerySummary(query));
    }
  }
  return result;
}

InvariantResult CheckTighteningMonotonicity(
    const CardinalityEstimator& estimator, const Table& table, size_t trials,
    uint64_t seed, const InvariantTolerance& tolerance) {
  InvariantResult result;
  result.invariant = "monotonicity";
  result.trials = trials;
  const std::vector<int> cols = RangeableColumns(table);
  if (cols.empty()) {
    result.skipped = true;
    result.detail = "no range-able column in table";
    return result;
  }
  Rng rng(seed);
  const double shrinks[] = {0.05, 0.25, 0.5};
  for (size_t t = 0; t < trials; ++t) {
    const int col = cols[rng.UniformInt(static_cast<uint64_t>(cols.size()))];
    const Query loose = RandomRangeQuery(table, col, rng);

    Query strict = loose;
    if (t % 2 == 0 || table.num_cols() < 2) {
      // Shrink the interval symmetrically toward its center.
      const double lo = loose.predicates[0].lo;
      const double hi = loose.predicates[0].hi;
      const double shrink = shrinks[(t / 2) % 3];
      strict.predicates[0].lo = lo + shrink * (hi - lo);
      strict.predicates[0].hi = hi - shrink * (hi - lo);
    } else {
      // Append a conjunct on another column spanning half its domain.
      const int extra = static_cast<int>(
          (static_cast<size_t>(col) + 1 +
           rng.UniformInt(static_cast<uint64_t>(table.num_cols() - 1))) %
          table.num_cols());
      const Column& column = table.column(static_cast<size_t>(extra));
      const size_t half =
          std::min(std::max<size_t>(column.domain.size() / 2, 1),
                   column.domain.size() - 1);
      strict.predicates.push_back(
          {extra, column.domain.front(), column.domain[half]});
    }

    const double loose_est = estimator.EstimateSelectivity(loose);
    const double strict_est = estimator.EstimateSelectivity(strict);
    const double excess = strict_est -
                          loose_est * (1.0 + tolerance.relative) -
                          tolerance.absolute;
    if (excess > 0) {
      RecordViolation(&result, excess,
                      "tightened " + QuerySummary(loose) + " -> " +
                          QuerySummary(strict) + " raised estimate " +
                          std::to_string(loose_est) + " -> " +
                          std::to_string(strict_est));
    }
  }
  return result;
}

InvariantResult CheckFullDomainNoOp(const CardinalityEstimator& estimator,
                                    const Table& table, size_t trials,
                                    uint64_t seed,
                                    const InvariantTolerance& tolerance) {
  InvariantResult result;
  result.invariant = "full-domain-noop";
  result.trials = trials;
  const std::vector<int> cols = RangeableColumns(table);
  if (cols.empty()) {
    result.skipped = true;
    result.detail = "no range-able column in table";
    return result;
  }
  if (table.num_cols() < 2) {
    result.skipped = true;
    result.detail = "needs a second column to append a conjunct on";
    return result;
  }
  Rng rng(seed);
  for (size_t t = 0; t < trials; ++t) {
    const int col = cols[rng.UniformInt(static_cast<uint64_t>(cols.size()))];
    const Query base = RandomRangeQuery(table, col, rng);
    // Full-domain conjunct on a column the query does not reference yet
    // (queries carry at most one predicate per column everywhere else in
    // the system, and estimator featurizations assume that).
    const int extra = static_cast<int>(
        (static_cast<size_t>(col) + 1 +
         rng.UniformInt(static_cast<uint64_t>(table.num_cols() - 1))) %
        table.num_cols());
    const Column& column = table.column(static_cast<size_t>(extra));
    Query widened = base;
    widened.predicates.push_back({extra, column.min(), column.max()});

    const double base_est = estimator.EstimateSelectivity(base);
    const double widened_est = estimator.EstimateSelectivity(widened);
    const double diff = std::fabs(widened_est - base_est);
    const double allowed =
        tolerance.absolute + tolerance.relative * std::max(base_est, 1e-12);
    if (diff > allowed) {
      RecordViolation(&result, diff - allowed,
                      "full-domain conjunct on c" + std::to_string(extra) +
                          " moved estimate " + std::to_string(base_est) +
                          " -> " + std::to_string(widened_est) + " for " +
                          QuerySummary(base));
    }
  }
  return result;
}

InvariantResult CheckDeterminism(const std::string& name, const Table& table,
                                 const Workload& train,
                                 const std::vector<Query>& probes,
                                 uint64_t seed) {
  InvariantResult result;
  result.invariant = "determinism";
  result.trials = probes.size();
  auto first = TrainFresh(name, table, train, seed);
  auto second = TrainFresh(name, table, train, seed);
  // One aligned pass per instance: stochastic inference that seeds from a
  // per-instance counter stays comparable this way.
  std::vector<double> first_estimates(probes.size());
  for (size_t i = 0; i < probes.size(); ++i)
    first_estimates[i] = first->EstimateSelectivity(probes[i]);
  for (size_t i = 0; i < probes.size(); ++i) {
    const double replay = second->EstimateSelectivity(probes[i]);
    if (replay != first_estimates[i]) {
      RecordViolation(&result, std::fabs(replay - first_estimates[i]),
                      "probe " + std::to_string(i) + ": " +
                          std::to_string(first_estimates[i]) + " vs " +
                          std::to_string(replay) + " for " +
                          QuerySummary(probes[i]));
    }
  }
  return result;
}

namespace {

std::unique_ptr<CardinalityEstimator> TrainFreshJoin(const std::string& name,
                                                     const Schema& schema,
                                                     const JoinWorkload& train,
                                                     uint64_t seed) {
  auto estimator = MakeEstimator(name);
  JoinTrainContext context;
  context.training_workload = &train;
  context.seed = seed;
  estimator->TrainJoin(schema, context);
  return estimator;
}

}  // namespace

InvariantResult CheckJoinSelectivityBounds(
    const std::string& name, const Schema& schema, const JoinWorkload& train,
    const std::vector<JoinQuery>& probes, uint64_t seed) {
  InvariantResult result;
  result.invariant = "join-bounds";
  result.trials = probes.size();
  if (!MakeEstimator(name)->SupportsJoins()) {
    result.skipped = true;
    result.detail = "estimator does not support joins";
    return result;
  }
  auto estimator = TrainFreshJoin(name, schema, train, seed);
  for (const JoinQuery& query : probes) {
    const double sel = estimator->EstimateJoinSelectivity(query);
    const double denom = join::JoinExecutor::RowsProduct(schema, query);
    const double card = estimator->EstimateJoinCardinality(schema, query);
    if (!std::isfinite(sel) || sel < 0.0 || sel > 1.0 || card < 0.0 ||
        card > denom) {
      const double excess =
          std::isfinite(sel) ? std::max(sel - 1.0, -sel) : 1.0;
      RecordViolation(&result, excess,
                      "join selectivity " + std::to_string(sel) + " for " +
                          query.ToString());
    }
  }
  return result;
}

InvariantResult CheckJoinDeterminism(const std::string& name,
                                     const Schema& schema,
                                     const JoinWorkload& train,
                                     const std::vector<JoinQuery>& probes,
                                     uint64_t seed) {
  InvariantResult result;
  result.invariant = "join-determinism";
  result.trials = probes.size();
  if (!MakeEstimator(name)->SupportsJoins()) {
    result.skipped = true;
    result.detail = "estimator does not support joins";
    return result;
  }
  auto first = TrainFreshJoin(name, schema, train, seed);
  auto second = TrainFreshJoin(name, schema, train, seed);
  std::vector<double> first_estimates(probes.size());
  for (size_t i = 0; i < probes.size(); ++i)
    first_estimates[i] = first->EstimateJoinSelectivity(probes[i]);
  for (size_t i = 0; i < probes.size(); ++i) {
    const double replay = second->EstimateJoinSelectivity(probes[i]);
    if (replay != first_estimates[i]) {
      RecordViolation(&result, std::fabs(replay - first_estimates[i]),
                      "join probe " + std::to_string(i) + ": " +
                          std::to_string(first_estimates[i]) + " vs " +
                          std::to_string(replay) + " for " +
                          probes[i].ToString());
    }
  }
  return result;
}

InvariantResult CheckSaveLoadRoundTrip(const std::string& name,
                                       const Table& table,
                                       const Workload& train,
                                       const std::vector<Query>& probes,
                                       uint64_t seed,
                                       const std::string& temp_dir) {
  InvariantResult result;
  result.invariant = "save-load-round-trip";
  result.trials = probes.size();
  auto trained = TrainFresh(name, table, train, seed);
  if (!SupportsPersistence(*trained)) {
    result.skipped = true;
    result.detail = "estimator does not implement model persistence";
    return result;
  }

  const std::string path = temp_dir + "/conformance_" + name + ".bin";
  if (!SaveEstimator(*trained, path)) {
    RecordViolation(&result, 1.0, "SaveEstimator failed for " + name);
    return result;
  }
  auto loaded = MakeEstimator(name);
  if (!LoadEstimator(loaded.get(), path)) {
    RecordViolation(&result, 1.0, "LoadEstimator failed for " + name);
    std::remove(path.c_str());
    return result;
  }
  std::remove(path.c_str());

  std::vector<double> trained_estimates(probes.size());
  for (size_t i = 0; i < probes.size(); ++i)
    trained_estimates[i] = trained->EstimateSelectivity(probes[i]);
  for (size_t i = 0; i < probes.size(); ++i) {
    const double replay = loaded->EstimateSelectivity(probes[i]);
    if (replay != trained_estimates[i]) {
      RecordViolation(&result, std::fabs(replay - trained_estimates[i]),
                      "probe " + std::to_string(i) + ": " +
                          std::to_string(trained_estimates[i]) + " vs " +
                          std::to_string(replay) + " after round-trip");
    }
  }
  return result;
}

namespace {

// Null when `name` is not adaptive: the feedback invariants probe this on
// an untrained instance, so non-sink estimators skip without paying a
// training run.
bool IsFeedbackSinkName(const std::string& name) {
  auto estimator = MakeEstimator(name);
  return dynamic_cast<FeedbackSink*>(estimator.get()) != nullptr;
}

double QErrorOn(const CardinalityEstimator& estimator, const Query& query,
                double truth_selectivity, size_t rows) {
  const double est = estimator.EstimateCardinality(query, rows);
  return QError(est, truth_selectivity * static_cast<double>(rows));
}

double MedianQError(const CardinalityEstimator& estimator,
                    const std::vector<Query>& queries,
                    const std::vector<double>& truths, size_t rows) {
  std::vector<double> qerrors;
  qerrors.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i)
    qerrors.push_back(QErrorOn(estimator, queries[i], truths[i], rows));
  return Percentile(qerrors, 50.0);
}

}  // namespace

InvariantResult CheckFeedbackMonotonicity(const std::string& name,
                                          const Table& table,
                                          const Workload& train,
                                          size_t trials, uint64_t seed) {
  InvariantResult result;
  result.invariant = "feedback-monotonicity";
  result.trials = trials;
  if (!IsFeedbackSinkName(name)) {
    result.skipped = true;
    result.detail = "estimator is not a FeedbackSink";
    return result;
  }
  const std::vector<int> cols = RangeableColumns(table);
  if (cols.empty()) {
    result.skipped = true;
    result.detail = "no range-able column in table";
    return result;
  }

  auto estimator = TrainFresh(name, table, train, seed);
  auto* sink = dynamic_cast<FeedbackSink*>(estimator.get());
  ARECEL_CHECK(sink != nullptr);
  const size_t rows = table.num_rows();
  Rng rng(seed);
  // One scanner amortizes the synopsis build across every trial's truth scan.
  const scan::BlockScanner truth_scanner(table);
  for (size_t t = 0; t < trials; ++t) {
    const int col = cols[rng.UniformInt(static_cast<uint64_t>(cols.size()))];
    const Query query = RandomRangeQuery(table, col, rng);
    const double truth = truth_scanner.Selectivity(query);
    const double before = QErrorOn(*estimator, query, truth, rows);
    for (int r = 0; r < kFeedbackRepeats; ++r)
      sink->ObserveTruth(query, truth);
    const double after = QErrorOn(*estimator, query, truth, rows);
    const double allowed = std::max(kConvergedQError, before * 1.05);
    if (!(after <= allowed)) {
      RecordViolation(&result, after - allowed,
                      "q-error " + std::to_string(before) + " -> " +
                          std::to_string(after) + " after " +
                          std::to_string(kFeedbackRepeats) + " truths for " +
                          QuerySummary(query));
    }
  }
  return result;
}

InvariantResult CheckFeedbackReplayNotWorse(const std::string& name,
                                            const Table& table,
                                            const Workload& train,
                                            uint64_t seed) {
  InvariantResult result;
  result.invariant = "feedback-replay";
  if (!IsFeedbackSinkName(name)) {
    result.skipped = true;
    result.detail = "estimator is not a FeedbackSink";
    return result;
  }

  const Workload replay = GenerateWorkload(table, 200, seed + 11);
  result.trials = replay.size();
  const size_t rows = table.num_rows();

  auto frozen = TrainFresh(name, table, train, seed);
  const double frozen_median =
      MedianQError(*frozen, replay.queries, replay.selectivities, rows);

  auto adaptive = TrainFresh(name, table, train, seed);
  auto* sink = dynamic_cast<FeedbackSink*>(adaptive.get());
  ARECEL_CHECK(sink != nullptr);
  std::vector<double> qerrors;
  qerrors.reserve(replay.size());
  for (size_t i = 0; i < replay.size(); ++i) {
    qerrors.push_back(QErrorOn(*adaptive, replay.queries[i],
                               replay.selectivities[i], rows));
    sink->ObserveTruth(replay.queries[i], replay.selectivities[i]);
  }
  const double adaptive_median = Percentile(qerrors, 50.0);

  const double allowed = frozen_median * 1.05 + 1e-9;
  if (!(adaptive_median <= allowed)) {
    RecordViolation(&result, adaptive_median - allowed,
                    "prequential median q-error " +
                        std::to_string(adaptive_median) +
                        " vs frozen replay " + std::to_string(frozen_median));
  }
  return result;
}

InvariantResult CheckFeedbackDynamicConvergence(const std::string& name,
                                                const Table& table,
                                                const Workload& train,
                                                uint64_t seed) {
  InvariantResult result;
  result.invariant = "feedback-dynamic";
  if (!IsFeedbackSinkName(name)) {
    result.skipped = true;
    result.detail = "estimator is not a FeedbackSink";
    return result;
  }

  auto estimator = TrainFresh(name, table, train, seed);
  auto* sink = dynamic_cast<FeedbackSink*>(estimator.get());
  ARECEL_CHECK(sink != nullptr);

  // §5.1: append 20% correlated rows but do NOT call Update — the model is
  // deliberately stale, the regime the feedback loop exists to fix.
  const Table updated = AppendCorrelatedUpdate(table, 0.2, seed + 13);
  const Workload probes = GenerateWorkload(updated, 120, seed + 17);
  result.trials = probes.size();
  const size_t rows = updated.num_rows();

  const double stale_median =
      MedianQError(*estimator, probes.queries, probes.selectivities, rows);
  for (size_t i = 0; i < probes.size(); ++i)
    sink->ObserveTruth(probes.queries[i], probes.selectivities[i]);
  const double converged_median =
      MedianQError(*estimator, probes.queries, probes.selectivities, rows);

  const double allowed = stale_median * 1.05 + 1e-9;
  if (!(converged_median <= allowed)) {
    RecordViolation(&result, converged_median - allowed,
                    "median q-error " + std::to_string(stale_median) +
                        " (stale) -> " + std::to_string(converged_median) +
                        " after feeding updated-table truths");
  }
  return result;
}

}  // namespace arecel
