#ifndef ARECEL_TESTING_GOLDEN_H_
#define ARECEL_TESTING_GOLDEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "testing/conformance.h"
#include "util/stats.h"

namespace arecel {

// Golden q-error baselines: per-estimator accuracy quantiles (p50/p95/p99/
// max) on a pinned workload, recorded to tests/golden/<estimator>.json and
// checked on every test run. A change that moves any quantile outside the
// tolerance band — regression *or* unexplained improvement — fails, and is
// resolved by either fixing the change or deliberately regenerating the
// baselines with scripts/update_golden.sh (tools/update_golden
// --update-golden path).

struct GoldenBaseline {
  std::string estimator;
  std::string dataset;
  uint64_t seed = 0;         // fixture seed the numbers were recorded under.
  uint64_t num_queries = 0;  // size of the pinned evaluation workload.
  QuantileSummary qerror;
};

// Pinned replay for the feedback-loop convergence golden (DESIGN.md §11):
// the feedback-corrected estimator answers `replay_queries` fresh queries
// prequentially — estimate first, then learn the executed truth — and the
// per-phase median q-errors form the recorded curve.
struct FeedbackGoldenConfig {
  size_t replay_queries = 1000;
  size_t phases = 5;  // replay_queries is split evenly into this many.
  uint64_t replay_seed = 9001;
};

// The pinned golden evaluation setup, shared by the checking test and the
// regeneration tool so both always measure the same thing. Reuses the
// conformance fixture inputs plus a held-out evaluation workload.
struct GoldenConfig {
  ConformanceOptions fixture;
  size_t eval_queries = 200;
  uint64_t eval_seed = 7001;
  // Two-sided multiplicative band: recorded q must satisfy
  // q / band <= actual <= q * band per quantile.
  double band = 1.25;
  FeedbackGoldenConfig feedback;
};
GoldenConfig DefaultGoldenConfig();

// "<name>.json" with '-' mapped to '_' (filesystem-friendly).
std::string GoldenFileName(const std::string& estimator);

// Serialization. WriteGoldenBaseline emits a stable, human-diffable JSON
// object; ReadGoldenBaseline parses exactly that shape (a flat object of
// string/number fields) and fails on missing fields or a missing file.
bool WriteGoldenBaseline(const GoldenBaseline& baseline,
                         const std::string& path);
bool ReadGoldenBaseline(const std::string& path, GoldenBaseline* out);

struct GoldenCheckResult {
  bool passed = true;
  std::string detail;  // which quantile escaped the band and by how much.
};

// Compares a freshly measured summary against a recorded baseline.
GoldenCheckResult CompareToGolden(const QuantileSummary& actual,
                                  const GoldenBaseline& baseline,
                                  double band);

// Trains `estimator_name` on the config's fixture and measures the golden
// summary on the held-out evaluation workload. Deterministic given config.
GoldenBaseline ComputeGoldenBaseline(const std::string& estimator_name,
                                     const ConformanceFixture& fixture,
                                     const Workload& eval,
                                     const GoldenConfig& config);

// The held-out evaluation workload for a config (pinned seed, disjoint from
// the training workload).
Workload BuildGoldenEvalWorkload(const ConformanceFixture& fixture,
                                 const GoldenConfig& config);

// Feedback convergence curve: per-phase median q-errors of the prequential
// feedback-corrected replay plus the wrapped base estimator's median over
// the same replay with the loop off. Recorded to tests/golden/feedback.json
// and gated alongside the per-estimator baselines.
struct FeedbackGoldenCurve {
  std::string estimator;  // the adaptive estimator under replay.
  std::string base;       // the uncorrected baseline it wraps.
  std::string dataset;
  uint64_t seed = 0;            // fixture seed.
  uint64_t replay_queries = 0;  // total replayed; split into phases.
  std::vector<double> phase_medians;
  double base_median = 0.0;
};

// Replays config.feedback over the fixture. Deterministic given config.
FeedbackGoldenCurve ComputeFeedbackGoldenCurve(const ConformanceFixture& fixture,
                                               const GoldenConfig& config);

// Same flat-JSON discipline as the per-estimator baselines: phase medians
// are the keys phase_0..phase_{n-1}.
bool WriteFeedbackGoldenCurve(const FeedbackGoldenCurve& curve,
                              const std::string& path);
bool ReadFeedbackGoldenCurve(const std::string& path, FeedbackGoldenCurve* out);

// Band-compares a measured curve against the recorded one (every phase
// median plus the base median, same two-sided band as the baselines).
GoldenCheckResult CompareFeedbackCurveToGolden(const FeedbackGoldenCurve& actual,
                                               const FeedbackGoldenCurve& recorded,
                                               double band);

// Structural gates on a measured curve, independent of the recorded file:
// the curve must converge (last phase median strictly below the first) and
// the converged loop must beat the uncorrected base median — the paper's §5
// adaptivity acceptance criterion, enforced on every test run.
GoldenCheckResult CheckFeedbackCurveShape(const FeedbackGoldenCurve& curve);

}  // namespace arecel

#endif  // ARECEL_TESTING_GOLDEN_H_
