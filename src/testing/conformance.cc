#include "testing/conformance.h"

#include <cstdio>

#include "core/registry.h"
#include "data/datasets.h"
#include "util/check.h"

namespace arecel {

namespace {

// Estimator families, for tolerance profiles. Exactness tiers:
//   kExact      — closed-form statistics; invariants hold to float noise.
//   kNumeric    — deterministic numeric models whose smoothing/learned
//                 weights can locally bend monotonicity by a small margin.
//   kStochastic — neural or sampled-inference models; the paper's §6.3
//                 measures their rule violations, so the slack is large but
//                 frozen here so it cannot silently widen.
enum class Exactness { kExact, kNumeric, kStochastic };

Exactness ExactnessOf(const std::string& name) {
  if (name == "postgres" || name == "mysql" || name == "dbms-a" ||
      name == "sampling" || name == "mhist" || name == "postgres-join" ||
      name == "sampling-join") {
    // The two non-neural join estimators answer from frozen statistics /
    // frozen samples, so their single-table invariants hold to float noise.
    return Exactness::kExact;
  }
  if (name == "bayes" || name == "kde-fb" || name == "quicksel" ||
      name == "deepdb") {
    return Exactness::kNumeric;
  }
  // mscn, mscn-join, lw-nn, lw-xgb, naru, dqm-d, feedback-knn,
  // feedback-corrected.
  // The feedback pair is deterministic, but its kNN store interpolates
  // between remembered truths, which bends local monotonicity like a
  // learned model does.
  return Exactness::kStochastic;
}

}  // namespace

InvariantTolerance MonotonicityToleranceFor(const std::string& estimator) {
  // dqm-d estimates each query with fresh VEGAS importance-sampling runs, so
  // two related queries see independent sampling noise; its frozen envelope
  // is the widest in the registry (worst observed excess 0.23 at the
  // stochastic default).
  if (estimator == "dqm-d") return {.relative = 2.0, .absolute = 0.15};
  // The feedback stores answer from nearest remembered truths: a tightened
  // query can land nearer a *larger* remembered truth, so the envelope is
  // dqm-d-wide. Frozen here; shrinking it as the store's interpolation
  // improves is welcome.
  if (estimator == "feedback-knn" || estimator == "feedback-corrected")
    return {.relative = 2.0, .absolute = 0.15};
  // mscn-join's single-table bridge runs the full three-module network at
  // 4x the single-table mscn's training budget (160 epochs, stepped LR),
  // and the sharper fit bends local monotonicity harder (worst observed
  // excess 0.17 over the stochastic default). Frozen at dqm-d's envelope;
  // its full-domain no-op stays bit-exact (vacuous atoms are dropped at
  // featurization), so only this invariant gets the wider band.
  if (estimator == "mscn-join") return {.relative = 2.0, .absolute = 0.15};
  switch (ExactnessOf(estimator)) {
    case Exactness::kExact:
      return {.relative = 1e-9, .absolute = 1e-9};
    case Exactness::kNumeric:
      return {.relative = 1e-6, .absolute = 1e-6};
    case Exactness::kStochastic:
      return {.relative = 0.5, .absolute = 0.05};
  }
  return {};
}

InvariantTolerance NoOpToleranceFor(const std::string& estimator) {
  // kde-fb's Gaussian kernels leak mass outside each column's domain, so a
  // full-domain conjunct multiplies the estimate by a per-column kernel mass
  // < 1 (worst observed relative shift ~0.25 of the base estimate).
  if (estimator == "kde-fb") return {.relative = 0.4, .absolute = 0.02};
  if (estimator == "dqm-d") return {.relative = 2.0, .absolute = 0.15};
  // The feedback stores canonicalize full-domain conjuncts away (vacuous
  // predicates are excluded from both fingerprint and features), so the
  // no-op holds bit-exactly despite the stochastic-tier monotonicity slack.
  if (estimator == "feedback-knn" || estimator == "feedback-corrected")
    return {.relative = 1e-9, .absolute = 1e-9};
  switch (ExactnessOf(estimator)) {
    case Exactness::kExact:
      return {.relative = 1e-9, .absolute = 1e-9};
    case Exactness::kNumeric:
      return {.relative = 1e-6, .absolute = 1e-6};
    case Exactness::kStochastic:
      return {.relative = 0.5, .absolute = 0.05};
  }
  return {};
}

ConformanceFixture BuildConformanceFixture(const ConformanceOptions& options) {
  ARECEL_CHECK(options.num_cols >= 1);
  ARECEL_CHECK(options.num_categorical <= options.num_cols);
  // Census-like shape trimmed to the requested arity: skewed, correlated,
  // mixed categorical/numeric — the smoke-test diet every estimator already
  // digests, pinned here as the conformance contract's input.
  DatasetSpec spec = CensusSpec();
  spec.name = "conformance";
  spec.rows = options.rows;
  spec.num_cols = options.num_cols;
  spec.num_categorical = options.num_categorical;
  spec.domain_sizes.resize(static_cast<size_t>(options.num_cols));
  spec.skews.resize(static_cast<size_t>(options.num_cols));
  spec.correlations.resize(static_cast<size_t>(options.num_cols));

  ConformanceFixture fixture;
  fixture.table = GenerateDataset(spec, options.seed);
  fixture.train =
      GenerateWorkload(fixture.table, options.train_queries, options.seed + 1);
  fixture.probes = GenerateQueries(fixture.table, options.probe_queries,
                                   options.seed + 2);

  // Star fixture for the join invariants: correlated and skewed, like the
  // bench_join workload, but small enough to train per invariant.
  StarSchemaOptions star;
  star.fact_rows = options.star_fact_rows;
  star.dim_rows = options.star_dim_rows;
  fixture.star = GenerateStarSchema(star, options.seed + 10);
  fixture.join_train = GenerateJoinWorkload(
      fixture.star, options.join_train_queries, options.seed + 11);
  fixture.join_probes = GenerateJoinQueries(
      fixture.star, options.join_probe_queries, options.seed + 12);
  return fixture;
}

bool ConformanceReport::passed() const {
  for (const InvariantResult& r : results)
    if (!r.passed()) return false;
  return !results.empty();
}

std::string ConformanceReport::Summary() const {
  std::string out = estimator + ":\n";
  for (const InvariantResult& r : results) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-22s %s  (%zu/%zu trials",
                  r.invariant.c_str(),
                  r.skipped ? "SKIP" : (r.violations == 0 ? "ok" : "FAIL"),
                  r.violations, r.trials);
    out += line;
    if (r.worst > 0) {
      std::snprintf(line, sizeof(line), ", worst excess %.3g", r.worst);
      out += line;
    }
    out += ")\n";
    if (!r.passed() && !r.detail.empty()) out += "    " + r.detail + "\n";
  }
  return out;
}

ConformanceReport RunConformance(const std::string& estimator_name,
                                 const ConformanceFixture& fixture,
                                 const ConformanceOptions& options) {
  ConformanceReport report;
  report.estimator = estimator_name;

  auto estimator = MakeEstimator(estimator_name);
  TrainContext context;
  context.training_workload = &fixture.train;
  context.seed = options.seed;
  estimator->Train(fixture.table, context);

  report.results.push_back(CheckSelectivityBounds(
      *estimator, fixture.probes, fixture.table.num_rows()));
  report.results.push_back(CheckTighteningMonotonicity(
      *estimator, fixture.table, options.metamorphic_trials, options.seed + 3,
      MonotonicityToleranceFor(estimator_name)));
  report.results.push_back(CheckFullDomainNoOp(
      *estimator, fixture.table, options.metamorphic_trials, options.seed + 4,
      NoOpToleranceFor(estimator_name)));
  report.results.push_back(CheckDeterminism(estimator_name, fixture.table,
                                            fixture.train, fixture.probes,
                                            options.seed));
  report.results.push_back(CheckSaveLoadRoundTrip(
      estimator_name, fixture.table, fixture.train, fixture.probes,
      options.seed, options.temp_dir));
  // Feedback invariants: skipped (= passed) for estimators that are not
  // FeedbackSinks, so the sweep stays total over the registry.
  report.results.push_back(CheckFeedbackMonotonicity(
      estimator_name, fixture.table, fixture.train,
      options.metamorphic_trials / 2, options.seed + 5));
  report.results.push_back(CheckFeedbackReplayNotWorse(
      estimator_name, fixture.table, fixture.train, options.seed + 6));
  report.results.push_back(CheckFeedbackDynamicConvergence(
      estimator_name, fixture.table, fixture.train, options.seed + 7));
  // Join invariants: skipped (= passed) for estimators without join
  // support, so the sweep stays total over the registry.
  report.results.push_back(CheckJoinSelectivityBounds(
      estimator_name, fixture.star, fixture.join_train, fixture.join_probes,
      options.seed + 8));
  report.results.push_back(CheckJoinDeterminism(
      estimator_name, fixture.star, fixture.join_train, fixture.join_probes,
      options.seed + 9));
  return report;
}

}  // namespace arecel
