#include "testing/property.h"

#include <algorithm>
#include <vector>

namespace arecel {

namespace {

// Shrink candidates, cheapest-win first: a smaller table shrinks every
// later check, then whole queries, then individual predicates.

bool TryRows(const RandomCase& current, RandomCase* candidate) {
  const size_t rows = current.table.num_rows();
  if (rows <= 1) return false;
  *candidate = current;
  candidate->table = current.table.Head(std::max<size_t>(1, rows / 2));
  return true;
}

bool TryDropQueries(const RandomCase& current, size_t begin, size_t count,
                    RandomCase* candidate) {
  if (begin >= current.queries.size() || count == 0) return false;
  *candidate = current;
  candidate->queries.erase(
      candidate->queries.begin() + static_cast<long>(begin),
      candidate->queries.begin() +
          static_cast<long>(std::min(begin + count, current.queries.size())));
  return true;
}

bool TryDropPredicate(const RandomCase& current, size_t query, size_t pred,
                      RandomCase* candidate) {
  if (query >= current.queries.size()) return false;
  if (pred >= current.queries[query].predicates.size()) return false;
  if (current.queries[query].predicates.size() <= 1) return false;
  *candidate = current;
  candidate->queries[query].predicates.erase(
      candidate->queries[query].predicates.begin() + static_cast<long>(pred));
  return true;
}

}  // namespace

RandomCase ShrinkCase(
    const RandomCase& failing,
    const std::function<bool(const RandomCase&)>& still_fails,
    int max_attempts, ShrinkStats* stats) {
  RandomCase best = failing;
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;

  auto consider = [&](RandomCase&& candidate) {
    if (s.attempts >= max_attempts) return false;
    ++s.attempts;
    if (!still_fails(candidate)) return false;
    best = std::move(candidate);
    ++s.accepted;
    return true;
  };

  bool progressed = true;
  while (progressed && s.attempts < max_attempts) {
    progressed = false;

    // 1. Halve the table while the failure persists.
    RandomCase candidate;
    while (TryRows(best, &candidate) && consider(std::move(candidate)))
      progressed = true;

    // 2. Drop half the queries (front half, then back half), then single
    // queries once the set is small.
    for (bool dropped = true; dropped;) {
      dropped = false;
      const size_t n = best.queries.size();
      if (n > 2) {
        if (TryDropQueries(best, 0, n / 2, &candidate) &&
            consider(std::move(candidate))) {
          dropped = progressed = true;
          continue;
        }
        if (TryDropQueries(best, n / 2, n - n / 2, &candidate) &&
            consider(std::move(candidate))) {
          dropped = progressed = true;
          continue;
        }
      }
      for (size_t i = 0; i < best.queries.size(); ++i) {
        if (best.queries.size() <= 1) break;
        if (TryDropQueries(best, i, 1, &candidate) &&
            consider(std::move(candidate))) {
          dropped = progressed = true;
          break;
        }
      }
    }

    // 3. Drop predicates one at a time.
    for (bool dropped = true; dropped;) {
      dropped = false;
      for (size_t q = 0; q < best.queries.size() && !dropped; ++q) {
        for (size_t p = 0; p < best.queries[q].predicates.size(); ++p) {
          if (TryDropPredicate(best, q, p, &candidate) &&
              consider(std::move(candidate))) {
            dropped = progressed = true;
            break;
          }
        }
      }
    }
  }
  return best;
}

std::string PropertyOutcome::Message() const {
  if (passed) return "property held on " + std::to_string(cases_run) +
                     " cases";
  std::string out = "property failed (seed " +
                    std::to_string(failing_seed) + "): " + failure;
  out += "\n  minimized: " + shrunk.Describe();
  out += "\n  minimized failure: " + shrunk_failure;
  return out;
}

PropertyOutcome CheckProperty(const Property& property,
                              const PropertyOptions& options) {
  PropertyOutcome outcome;
  for (int i = 0; i < options.num_cases; ++i) {
    const uint64_t seed = options.base_seed + static_cast<uint64_t>(i);
    RandomCase random_case = GenerateRandomCase(seed, options.case_options);
    std::string failure = property(random_case);
    ++outcome.cases_run;
    if (failure.empty()) continue;

    outcome.passed = false;
    outcome.failing_seed = seed;
    outcome.failure = std::move(failure);
    if (options.shrink) {
      outcome.shrunk = ShrinkCase(
          random_case,
          [&](const RandomCase& c) { return !property(c).empty(); },
          options.max_shrink_attempts, &outcome.shrink_stats);
    } else {
      outcome.shrunk = std::move(random_case);
    }
    outcome.shrunk_failure = property(outcome.shrunk);
    return outcome;
  }
  return outcome;
}

}  // namespace arecel
