#ifndef ARECEL_TESTING_CONFORMANCE_H_
#define ARECEL_TESTING_CONFORMANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/table.h"
#include "testing/invariants.h"
#include "workload/generator.h"
#include "workload/join_generator.h"

namespace arecel {

// The estimator conformance suite: every name in AllRegistryNames() is run
// against the same pinned fixture and the full set of metamorphic
// invariants (bounds, tightening monotonicity, full-domain no-op,
// fixed-seed determinism, save/load round-trip, the three feedback
// invariants — monotonicity under repeated truths, prequential
// replay-not-worse, dynamic convergence — which apply to FeedbackSink
// estimators and report skipped for the rest, plus the two join invariants
// — join-bounds and join-determinism — which apply to SupportsJoins()
// estimators the same way). This is the behavioral contract future perf
// PRs — batching, caching, sharding — must preserve;
// tests/conformance_test.cc turns each report into a tier-1 gate.

struct ConformanceOptions {
  uint64_t seed = 101;
  size_t rows = 4000;
  int num_cols = 4;
  int num_categorical = 2;
  size_t train_queries = 400;
  size_t probe_queries = 80;
  size_t metamorphic_trials = 40;
  std::string temp_dir = "/tmp";
  // Star fixture for the join invariants (kept small: the fixture is built
  // once but the join-capable estimators train on it per invariant).
  size_t star_fact_rows = 2000;
  size_t star_dim_rows = 64;
  size_t join_train_queries = 120;
  size_t join_probe_queries = 30;
};

// The pinned inputs every estimator faces. Built once and shared so the
// comparison across estimators is apples-to-apples.
struct ConformanceFixture {
  Table table;
  Workload train;
  std::vector<Query> probes;
  // Pinned star-schema fixture for the join invariants.
  Schema star;
  JoinWorkload join_train;
  std::vector<JoinQuery> join_probes;
};

ConformanceFixture BuildConformanceFixture(const ConformanceOptions& options);

// Per-estimator tolerance profile for the metamorphic invariants. Exact
// statistics-based methods obey monotonicity to float precision; sampled
// and learned models fluctuate by design (the paper's §6.3 measures exactly
// this), so they get a frozen slack that conformance prevents from silently
// widening. Tightening this map over time is an explicit goal.
InvariantTolerance MonotonicityToleranceFor(const std::string& estimator);
InvariantTolerance NoOpToleranceFor(const std::string& estimator);

struct ConformanceReport {
  std::string estimator;
  std::vector<InvariantResult> results;

  bool passed() const;
  // Multi-line human-readable report: one line per invariant.
  std::string Summary() const;
};

ConformanceReport RunConformance(const std::string& estimator_name,
                                 const ConformanceFixture& fixture,
                                 const ConformanceOptions& options = {});

}  // namespace arecel

#endif  // ARECEL_TESTING_CONFORMANCE_H_
