#include "testing/golden.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/registry.h"

namespace arecel {

namespace {

// Minimal JSON field scanner for the flat objects WriteGoldenBaseline
// emits. Finds `"key": <value>` and parses the value as a double or a
// quoted string. Good enough for files this module writes itself; not a
// general JSON parser.
bool FindValue(const std::string& text, const std::string& key,
               std::string* raw) {
  const std::string needle = "\"" + key + "\"";
  size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  at = text.find(':', at + needle.size());
  if (at == std::string::npos) return false;
  ++at;
  while (at < text.size() && std::isspace(static_cast<unsigned char>(text[at])))
    ++at;
  size_t end = at;
  if (at < text.size() && text[at] == '"') {
    end = text.find('"', at + 1);
    if (end == std::string::npos) return false;
    *raw = text.substr(at + 1, end - at - 1);
    return true;
  }
  while (end < text.size() && text[end] != ',' && text[end] != '}' &&
         text[end] != '\n')
    ++end;
  *raw = text.substr(at, end - at);
  return !raw->empty();
}

bool ParseNumber(const std::string& text, const std::string& key,
                 double* out) {
  std::string raw;
  if (!FindValue(text, key, &raw)) return false;
  char* end = nullptr;
  *out = std::strtod(raw.c_str(), &end);
  return end != raw.c_str();
}

void CheckQuantile(const char* label, double actual, double recorded,
                   double band, GoldenCheckResult* result) {
  // Baselines are quantiles of q-errors, so recorded >= 1 by construction;
  // guard anyway so a hand-edited file cannot divide by zero.
  const double lo = recorded / band;
  const double hi = recorded * band;
  if (actual >= lo && actual <= hi) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s%s q-error %.6g outside band [%.6g, %.6g] around recorded "
                "%.6g",
                result->detail.empty() ? "" : "; ", label, actual, lo, hi,
                recorded);
  result->passed = false;
  result->detail += buf;
}

}  // namespace

GoldenConfig DefaultGoldenConfig() { return GoldenConfig{}; }

std::string GoldenFileName(const std::string& estimator) {
  std::string name = estimator;
  for (char& c : name)
    if (c == '-') c = '_';
  return name + ".json";
}

bool WriteGoldenBaseline(const GoldenBaseline& baseline,
                         const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return false;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"estimator\": \"%s\",\n"
                "  \"dataset\": \"%s\",\n"
                "  \"seed\": %llu,\n"
                "  \"num_queries\": %llu,\n"
                "  \"qerror_p50\": %.17g,\n"
                "  \"qerror_p95\": %.17g,\n"
                "  \"qerror_p99\": %.17g,\n"
                "  \"qerror_max\": %.17g\n"
                "}\n",
                baseline.estimator.c_str(), baseline.dataset.c_str(),
                static_cast<unsigned long long>(baseline.seed),
                static_cast<unsigned long long>(baseline.num_queries),
                baseline.qerror.p50, baseline.qerror.p95, baseline.qerror.p99,
                baseline.qerror.max);
  out << buf;
  return out.good();
}

bool ReadGoldenBaseline(const std::string& path, GoldenBaseline* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();

  if (!FindValue(text, "estimator", &out->estimator)) return false;
  if (!FindValue(text, "dataset", &out->dataset)) return false;
  double seed = 0, num_queries = 0;
  if (!ParseNumber(text, "seed", &seed)) return false;
  if (!ParseNumber(text, "num_queries", &num_queries)) return false;
  out->seed = static_cast<uint64_t>(seed);
  out->num_queries = static_cast<uint64_t>(num_queries);
  return ParseNumber(text, "qerror_p50", &out->qerror.p50) &&
         ParseNumber(text, "qerror_p95", &out->qerror.p95) &&
         ParseNumber(text, "qerror_p99", &out->qerror.p99) &&
         ParseNumber(text, "qerror_max", &out->qerror.max);
}

GoldenCheckResult CompareToGolden(const QuantileSummary& actual,
                                  const GoldenBaseline& baseline,
                                  double band) {
  GoldenCheckResult result;
  if (band < 1.0 || !std::isfinite(band)) {
    result.passed = false;
    result.detail = "tolerance band must be a finite value >= 1";
    return result;
  }
  CheckQuantile("p50", actual.p50, baseline.qerror.p50, band, &result);
  CheckQuantile("p95", actual.p95, baseline.qerror.p95, band, &result);
  CheckQuantile("p99", actual.p99, baseline.qerror.p99, band, &result);
  CheckQuantile("max", actual.max, baseline.qerror.max, band, &result);
  return result;
}

Workload BuildGoldenEvalWorkload(const ConformanceFixture& fixture,
                                 const GoldenConfig& config) {
  return GenerateWorkload(fixture.table, config.eval_queries,
                          config.eval_seed);
}

GoldenBaseline ComputeGoldenBaseline(const std::string& estimator_name,
                                     const ConformanceFixture& fixture,
                                     const Workload& eval,
                                     const GoldenConfig& config) {
  auto estimator = MakeEstimator(estimator_name);
  TrainContext context;
  context.training_workload = &fixture.train;
  context.seed = config.fixture.seed;
  estimator->Train(fixture.table, context);

  GoldenBaseline baseline;
  baseline.estimator = estimator_name;
  baseline.dataset = fixture.table.name();
  baseline.seed = config.fixture.seed;
  baseline.num_queries = eval.size();
  baseline.qerror =
      EvaluateQErrorSummary(*estimator, eval, fixture.table.num_rows());
  return baseline;
}

}  // namespace arecel
