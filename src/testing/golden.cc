#include "testing/golden.h"

#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/registry.h"
#include "estimators/extensions/feedback.h"

namespace arecel {

namespace {

// Minimal JSON field scanner for the flat objects WriteGoldenBaseline
// emits. Finds `"key": <value>` and parses the value as a double or a
// quoted string. Good enough for files this module writes itself; not a
// general JSON parser.
bool FindValue(const std::string& text, const std::string& key,
               std::string* raw) {
  const std::string needle = "\"" + key + "\"";
  size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  at = text.find(':', at + needle.size());
  if (at == std::string::npos) return false;
  ++at;
  while (at < text.size() && std::isspace(static_cast<unsigned char>(text[at])))
    ++at;
  size_t end = at;
  if (at < text.size() && text[at] == '"') {
    end = text.find('"', at + 1);
    if (end == std::string::npos) return false;
    *raw = text.substr(at + 1, end - at - 1);
    return true;
  }
  while (end < text.size() && text[end] != ',' && text[end] != '}' &&
         text[end] != '\n')
    ++end;
  *raw = text.substr(at, end - at);
  return !raw->empty();
}

bool ParseNumber(const std::string& text, const std::string& key,
                 double* out) {
  std::string raw;
  if (!FindValue(text, key, &raw)) return false;
  char* end = nullptr;
  *out = std::strtod(raw.c_str(), &end);
  return end != raw.c_str();
}

void CheckQuantile(const char* label, double actual, double recorded,
                   double band, GoldenCheckResult* result) {
  // Baselines are quantiles of q-errors, so recorded >= 1 by construction;
  // guard anyway so a hand-edited file cannot divide by zero.
  const double lo = recorded / band;
  const double hi = recorded * band;
  if (actual >= lo && actual <= hi) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s%s q-error %.6g outside band [%.6g, %.6g] around recorded "
                "%.6g",
                result->detail.empty() ? "" : "; ", label, actual, lo, hi,
                recorded);
  result->passed = false;
  result->detail += buf;
}

}  // namespace

GoldenConfig DefaultGoldenConfig() { return GoldenConfig{}; }

std::string GoldenFileName(const std::string& estimator) {
  std::string name = estimator;
  for (char& c : name)
    if (c == '-') c = '_';
  return name + ".json";
}

bool WriteGoldenBaseline(const GoldenBaseline& baseline,
                         const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return false;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"estimator\": \"%s\",\n"
                "  \"dataset\": \"%s\",\n"
                "  \"seed\": %llu,\n"
                "  \"num_queries\": %llu,\n"
                "  \"qerror_p50\": %.17g,\n"
                "  \"qerror_p95\": %.17g,\n"
                "  \"qerror_p99\": %.17g,\n"
                "  \"qerror_max\": %.17g\n"
                "}\n",
                baseline.estimator.c_str(), baseline.dataset.c_str(),
                static_cast<unsigned long long>(baseline.seed),
                static_cast<unsigned long long>(baseline.num_queries),
                baseline.qerror.p50, baseline.qerror.p95, baseline.qerror.p99,
                baseline.qerror.max);
  out << buf;
  return out.good();
}

bool ReadGoldenBaseline(const std::string& path, GoldenBaseline* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();

  if (!FindValue(text, "estimator", &out->estimator)) return false;
  if (!FindValue(text, "dataset", &out->dataset)) return false;
  double seed = 0, num_queries = 0;
  if (!ParseNumber(text, "seed", &seed)) return false;
  if (!ParseNumber(text, "num_queries", &num_queries)) return false;
  out->seed = static_cast<uint64_t>(seed);
  out->num_queries = static_cast<uint64_t>(num_queries);
  return ParseNumber(text, "qerror_p50", &out->qerror.p50) &&
         ParseNumber(text, "qerror_p95", &out->qerror.p95) &&
         ParseNumber(text, "qerror_p99", &out->qerror.p99) &&
         ParseNumber(text, "qerror_max", &out->qerror.max);
}

GoldenCheckResult CompareToGolden(const QuantileSummary& actual,
                                  const GoldenBaseline& baseline,
                                  double band) {
  GoldenCheckResult result;
  if (band < 1.0 || !std::isfinite(band)) {
    result.passed = false;
    result.detail = "tolerance band must be a finite value >= 1";
    return result;
  }
  CheckQuantile("p50", actual.p50, baseline.qerror.p50, band, &result);
  CheckQuantile("p95", actual.p95, baseline.qerror.p95, band, &result);
  CheckQuantile("p99", actual.p99, baseline.qerror.p99, band, &result);
  CheckQuantile("max", actual.max, baseline.qerror.max, band, &result);
  return result;
}

Workload BuildGoldenEvalWorkload(const ConformanceFixture& fixture,
                                 const GoldenConfig& config) {
  return GenerateWorkload(fixture.table, config.eval_queries,
                          config.eval_seed);
}

FeedbackGoldenCurve ComputeFeedbackGoldenCurve(const ConformanceFixture& fixture,
                                               const GoldenConfig& config) {
  const FeedbackGoldenConfig& fb = config.feedback;
  FeedbackGoldenCurve curve;
  curve.estimator = "feedback-corrected";
  curve.dataset = fixture.table.name();
  curve.seed = config.fixture.seed;
  curve.replay_queries = fb.replay_queries;

  const Workload replay =
      GenerateWorkload(fixture.table, fb.replay_queries, fb.replay_seed);
  const size_t rows = fixture.table.num_rows();

  // Cold start: no training workload, so phase 0 measures the uncorrected
  // base and the later phases show the loop converging — the warm-start path
  // is already covered by the per-estimator feedback_corrected baseline.
  TrainContext context;
  context.training_workload = nullptr;
  context.seed = config.fixture.seed;

  auto corrected = MakeEstimator(curve.estimator);
  corrected->Train(fixture.table, context);
  auto* decorator = dynamic_cast<FeedbackCorrectedEstimator*>(corrected.get());
  auto* sink = dynamic_cast<FeedbackSink*>(corrected.get());
  curve.base = decorator != nullptr ? decorator->base().Name() : "postgres";

  // Prequential replay: score each query with what the loop has learned so
  // far, then feed it the executed truth.
  std::vector<double> qerrors;
  qerrors.reserve(replay.size());
  for (size_t i = 0; i < replay.size(); ++i) {
    bool invalid = false;
    qerrors.push_back(
        ScoreEstimate(corrected->EstimateSelectivity(replay.queries[i]), rows,
                      replay.Cardinality(i, rows), &invalid));
    if (sink != nullptr)
      sink->ObserveTruth(replay.queries[i], replay.selectivities[i]);
  }
  const size_t phases = fb.phases > 0 ? fb.phases : 1;
  const size_t phase_len = replay.size() / phases;
  for (size_t p = 0; p < phases; ++p) {
    const auto begin = qerrors.begin() + static_cast<ptrdiff_t>(p * phase_len);
    const auto end = p + 1 == phases
                         ? qerrors.end()
                         : begin + static_cast<ptrdiff_t>(phase_len);
    curve.phase_medians.push_back(
        Percentile(std::vector<double>(begin, end), 50.0));
  }

  auto base = MakeEstimator(curve.base);
  base->Train(fixture.table, context);
  curve.base_median =
      Percentile(ScanQErrors(*base, replay, rows).qerrors, 50.0);
  return curve;
}

bool WriteFeedbackGoldenCurve(const FeedbackGoldenCurve& curve,
                              const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return false;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"estimator\": \"%s\",\n"
                "  \"base\": \"%s\",\n"
                "  \"dataset\": \"%s\",\n"
                "  \"seed\": %llu,\n"
                "  \"replay_queries\": %llu,\n"
                "  \"phases\": %llu,\n",
                curve.estimator.c_str(), curve.base.c_str(),
                curve.dataset.c_str(),
                static_cast<unsigned long long>(curve.seed),
                static_cast<unsigned long long>(curve.replay_queries),
                static_cast<unsigned long long>(curve.phase_medians.size()));
  out << buf;
  for (size_t p = 0; p < curve.phase_medians.size(); ++p) {
    std::snprintf(buf, sizeof(buf), "  \"phase_%zu\": %.17g,\n", p,
                  curve.phase_medians[p]);
    out << buf;
  }
  std::snprintf(buf, sizeof(buf), "  \"base_median\": %.17g\n}\n",
                curve.base_median);
  out << buf;
  return out.good();
}

bool ReadFeedbackGoldenCurve(const std::string& path,
                             FeedbackGoldenCurve* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();

  if (!FindValue(text, "estimator", &out->estimator)) return false;
  if (!FindValue(text, "base", &out->base)) return false;
  if (!FindValue(text, "dataset", &out->dataset)) return false;
  double seed = 0, replay_queries = 0, phases = 0;
  if (!ParseNumber(text, "seed", &seed)) return false;
  if (!ParseNumber(text, "replay_queries", &replay_queries)) return false;
  if (!ParseNumber(text, "phases", &phases)) return false;
  out->seed = static_cast<uint64_t>(seed);
  out->replay_queries = static_cast<uint64_t>(replay_queries);
  out->phase_medians.clear();
  for (size_t p = 0; p < static_cast<size_t>(phases); ++p) {
    double median = 0;
    if (!ParseNumber(text, "phase_" + std::to_string(p), &median)) return false;
    out->phase_medians.push_back(median);
  }
  return ParseNumber(text, "base_median", &out->base_median);
}

GoldenCheckResult CompareFeedbackCurveToGolden(const FeedbackGoldenCurve& actual,
                                               const FeedbackGoldenCurve& recorded,
                                               double band) {
  GoldenCheckResult result;
  if (band < 1.0 || !std::isfinite(band)) {
    result.passed = false;
    result.detail = "tolerance band must be a finite value >= 1";
    return result;
  }
  if (actual.phase_medians.size() != recorded.phase_medians.size()) {
    result.passed = false;
    result.detail = "phase count mismatch (measured " +
                    std::to_string(actual.phase_medians.size()) +
                    " vs recorded " +
                    std::to_string(recorded.phase_medians.size()) + ")";
    return result;
  }
  for (size_t p = 0; p < actual.phase_medians.size(); ++p) {
    const std::string label = "phase_" + std::to_string(p);
    CheckQuantile(label.c_str(), actual.phase_medians[p],
                  recorded.phase_medians[p], band, &result);
  }
  CheckQuantile("base_median", actual.base_median, recorded.base_median, band,
                &result);
  return result;
}

GoldenCheckResult CheckFeedbackCurveShape(const FeedbackGoldenCurve& curve) {
  GoldenCheckResult result;
  char buf[192];
  if (curve.phase_medians.size() < 2) {
    result.passed = false;
    result.detail = "curve needs at least two phases";
    return result;
  }
  const double first = curve.phase_medians.front();
  const double last = curve.phase_medians.back();
  if (!(last < first)) {
    std::snprintf(buf, sizeof(buf),
                  "no convergence: final phase median %.6g >= first %.6g",
                  last, first);
    result.passed = false;
    result.detail += buf;
  }
  if (!(last < curve.base_median)) {
    std::snprintf(buf, sizeof(buf),
                  "%sfeedback loop does not beat the %s base: final phase "
                  "median %.6g >= base %.6g",
                  result.detail.empty() ? "" : "; ", curve.base.c_str(), last,
                  curve.base_median);
    result.passed = false;
    result.detail += buf;
  }
  return result;
}

GoldenBaseline ComputeGoldenBaseline(const std::string& estimator_name,
                                     const ConformanceFixture& fixture,
                                     const Workload& eval,
                                     const GoldenConfig& config) {
  auto estimator = MakeEstimator(estimator_name);
  TrainContext context;
  context.training_workload = &fixture.train;
  context.seed = config.fixture.seed;
  estimator->Train(fixture.table, context);

  GoldenBaseline baseline;
  baseline.estimator = estimator_name;
  baseline.dataset = fixture.table.name();
  baseline.seed = config.fixture.seed;
  baseline.num_queries = eval.size();
  baseline.qerror =
      EvaluateQErrorSummary(*estimator, eval, fixture.table.num_rows());
  return baseline;
}

}  // namespace arecel
