#ifndef ARECEL_TESTING_PROPERTY_H_
#define ARECEL_TESTING_PROPERTY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "testing/random_case.h"

namespace arecel {

// Minimal property-based testing driver: run a property over a stream of
// seeded random cases; on the first failure, greedily shrink the case
// (fewer rows, fewer queries, fewer predicates) while it keeps failing, and
// report the minimized reproducer. Everything is deterministic given
// (base_seed, options), so a failure line like "seed=17 rows=64 ..." can be
// replayed exactly with GenerateRandomCase(17).

// A property returns the empty string when satisfied, otherwise a
// description of the violation.
using Property = std::function<std::string(const RandomCase&)>;

struct PropertyOptions {
  int num_cases = 20;
  uint64_t base_seed = 0xA11CE;
  RandomCaseOptions case_options;
  bool shrink = true;
  // Cap on candidate cases evaluated during shrinking.
  int max_shrink_attempts = 256;
};

struct ShrinkStats {
  int attempts = 0;  // candidate cases evaluated.
  int accepted = 0;  // candidates that still failed and replaced the case.
};

struct PropertyOutcome {
  bool passed = true;
  int cases_run = 0;
  uint64_t failing_seed = 0;
  std::string failure;         // message for the original failing case.
  RandomCase shrunk;           // minimized reproducer (valid iff !passed).
  std::string shrunk_failure;  // message for the minimized case.
  ShrinkStats shrink_stats;

  // Ready-to-print report of the minimized failure.
  std::string Message() const;
};

PropertyOutcome CheckProperty(const Property& property,
                              const PropertyOptions& options = {});

// Greedy shrinking of a failing case: repeatedly halve the table, drop
// queries and drop predicates as long as `still_fails` holds. Exposed for
// direct use and for testing the shrinker itself.
RandomCase ShrinkCase(const RandomCase& failing,
                      const std::function<bool(const RandomCase&)>& still_fails,
                      int max_attempts = 256, ShrinkStats* stats = nullptr);

}  // namespace arecel

#endif  // ARECEL_TESTING_PROPERTY_H_
