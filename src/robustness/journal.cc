#include "robustness/journal.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace arecel::robust {

namespace {

// The journal controls both sides of the format, so the JSON here is a
// deliberately tiny dialect: flat objects, string and finite-number values,
// keys without escapes. Strings escape backslash and quote only (estimator
// and dataset names never contain control characters).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string NumberJson(double v) {
  // Journaled metrics must stay valid JSON: clamp infinities (legitimately
  // huge q-errors) to the representable edge. NaN never reaches this point —
  // Append refuses NaN records outright rather than laundering corruption
  // into a plausible-looking resumed result.
  if (std::isinf(v)) v = v > 0 ? 1e308 : -1e308;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Extracts the string value of `"key":"..."` from a flat JSON line.
bool ExtractString(const std::string& line, const std::string& key,
                   std::string* value) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  value->clear();
  for (size_t i = start + needle.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      value->push_back(line[++i]);
    } else if (line[i] == '"') {
      return true;
    } else {
      value->push_back(line[i]);
    }
  }
  return false;  // unterminated string: corrupt line.
}

// Parses the {"name":number,...} object following `"metrics":`.
bool ExtractMetrics(const std::string& line,
                    std::vector<std::pair<std::string, double>>* metrics) {
  metrics->clear();
  const std::string needle = "\"metrics\":{";
  size_t i = line.find(needle);
  if (i == std::string::npos) return false;
  i += needle.size();
  while (i < line.size() && line[i] != '}') {
    if (line[i] == ',' || line[i] == ' ') {
      ++i;
      continue;
    }
    if (line[i] != '"') return false;
    const size_t name_end = line.find('"', i + 1);
    if (name_end == std::string::npos) return false;
    const std::string name = line.substr(i + 1, name_end - i - 1);
    if (name_end + 1 >= line.size() || line[name_end + 1] != ':')
      return false;
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + name_end + 2, &end);
    if (end == line.c_str() + name_end + 2) return false;
    metrics->push_back({name, value});
    i = static_cast<size_t>(end - line.c_str());
  }
  return i < line.size();  // saw the closing brace.
}

}  // namespace

double JournalRecord::Metric(const std::string& name, double fallback) const {
  for (const auto& [key, value] : metrics)
    if (key == name) return value;
  return fallback;
}

std::string FingerprintConfig(const std::vector<std::string>& parts) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a 64-bit offset basis.
  for (const std::string& part : parts) {
    for (char c : part) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    hash ^= 0xff;  // part separator, so {"ab","c"} != {"a","bc"}.
    hash *= 1099511628211ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

SweepJournal::SweepJournal(std::string path, std::string fingerprint)
    : path_(std::move(path)), fingerprint_(std::move(fingerprint)) {
  if (path_.empty()) return;
  std::ifstream in(path_);
  if (!in.good()) return;

  std::string line;
  bool header_ok = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!header_ok) {
      std::string file_fingerprint;
      if (!ExtractString(line, "fingerprint", &file_fingerprint) ||
          file_fingerprint != fingerprint_) {
        // Stale or foreign journal: its cells are not comparable. Start
        // fresh; the file is overwritten on the first append.
        return;
      }
      header_ok = true;
      continue;
    }
    JournalRecord record;
    if (!ExtractString(line, "estimator", &record.estimator) ||
        !ExtractString(line, "cell", &record.cell) ||
        !ExtractMetrics(line, &record.metrics)) {
      continue;  // torn final line from a killed run: skip, re-run the cell.
    }
    records_[record.estimator + "\n" + record.cell] = record;
  }
  // Matching fingerprint: future appends extend the existing file.
  header_written_ = header_ok;
}

const JournalRecord* SweepJournal::Find(const std::string& estimator,
                                        const std::string& cell) const {
  const auto it = records_.find(estimator + "\n" + cell);
  return it == records_.end() ? nullptr : &it->second;
}

bool SweepJournal::Append(const JournalRecord& record) {
  if (!enabled()) return true;  // no-op: Find must keep missing.
  // Refuse NaN metrics before indexing: a NaN is corruption, not a result,
  // and persisting any substitute would make a resumed run silently adopt
  // it. Leaving the cell out of the journal forces a re-run instead.
  for (const auto& [name, value] : record.metrics) {
    (void)name;
    if (std::isnan(value)) return false;
  }
  records_[record.estimator + "\n" + record.cell] = record;

  std::ofstream out(path_, header_written_
                               ? (std::ios::app | std::ios::out)
                               : (std::ios::trunc | std::ios::out));
  if (!out.good()) return false;
  if (!header_written_) {
    out << "{\"fingerprint\":\"" << EscapeJson(fingerprint_) << "\"}\n";
    header_written_ = true;
  }
  out << "{\"estimator\":\"" << EscapeJson(record.estimator)
      << "\",\"cell\":\"" << EscapeJson(record.cell) << "\",\"metrics\":{";
  for (size_t i = 0; i < record.metrics.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << EscapeJson(record.metrics[i].first)
        << "\":" << NumberJson(record.metrics[i].second);
  }
  out << "}}\n";
  out.flush();
  return out.good();
}

void SweepJournal::RemoveFile() {
  if (!path_.empty()) std::remove(path_.c_str());
  header_written_ = false;
}

}  // namespace arecel::robust
