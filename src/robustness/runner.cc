#include "robustness/runner.h"

#include <cstdlib>

#include "core/registry.h"
#include "estimators/extensions/guarded.h"
#include "robustness/guard.h"
#include "util/timer.h"

namespace arecel::robust {

namespace {

double EnvSeconds(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

// Bundle moved into the guard's keep_alive: everything a stage closure
// touches, so an abandoned worker thread never dangles.
struct TrainCell {
  std::shared_ptr<CardinalityEstimator> estimator;
  CancellationToken cancel;
};

struct EstimateCell {
  std::shared_ptr<CardinalityEstimator> estimator;
  QErrorScan scan;
  double inference_ms = 0.0;
};

// Trains a fresh instance under the watchdog. Returns the trained estimator
// (null on failure, with the failure recorded in *report).
std::shared_ptr<CardinalityEstimator> TrainGuarded(
    const EstimatorFactory& factory, const Table& table,
    const Workload& train, uint64_t seed, int attempt,
    const RobustOptions& options, EstimatorReport* report) {
  auto cell = std::make_shared<TrainCell>();
  cell->estimator = factory();

  Timer timer;
  const GuardResult outcome = RunGuarded(
      [cell, &table, &train, seed] {
        TrainContext context;
        context.training_workload = &train;
        context.seed = seed;
        context.cancellation = &cell->cancel;
        cell->estimator->Train(table, context);
      },
      options.train_deadline_seconds,
      {FailureKind::kTrainTimeout, FailureKind::kTrainThrew,
       FailureKind::kTrainCancelled},
      &cell->cancel, cell);
  if (outcome.ok()) {
    report->train_seconds += timer.ElapsedSeconds();
    return cell->estimator;
  }
  report->train_seconds += outcome.elapsed_seconds;
  report->failures.push_back({outcome.kind, "train", attempt,
                              outcome.detail +
                                  ", seed=" + std::to_string(seed)});
  return nullptr;
}

// Runs the whole estimate sweep on a watchdog worker. Returns true and
// fills scan/timing on success; records the failure otherwise. The
// estimator must not be reused after a timeout (the worker may still be
// touching it), which the caller honours by dropping its reference.
bool EstimateGuarded(std::shared_ptr<CardinalityEstimator> estimator,
                     const Workload& test, size_t rows,
                     const RobustOptions& options, EstimatorReport* report) {
  auto cell = std::make_shared<EstimateCell>();
  cell->estimator = std::move(estimator);

  const GuardResult outcome = RunGuarded(
      [cell, &test, rows] {
        Timer inference_timer;
        cell->scan = ScanQErrors(*cell->estimator, test, rows);
        cell->inference_ms = inference_timer.ElapsedMillis();
      },
      options.estimate_deadline_seconds,
      {FailureKind::kEstimateTimeout, FailureKind::kEstimateThrew,
       FailureKind::kEstimateThrew},
      nullptr, cell);
  if (!outcome.ok()) {
    report->failures.push_back({outcome.kind, "estimate", 0, outcome.detail});
    return false;
  }
  report->raw_qerrors = std::move(cell->scan.qerrors);
  report->invalid_estimates = cell->scan.invalid_estimates;
  report->avg_inference_ms =
      test.size() == 0
          ? 0.0
          : cell->inference_ms / static_cast<double>(test.size());
  if (report->invalid_estimates > 0) {
    report->failures.push_back(
        {FailureKind::kNonFiniteEstimate, "estimate", 0,
         std::to_string(report->invalid_estimates) + "/" +
             std::to_string(test.size()) + " invalid estimates"});
  }
  return true;
}

}  // namespace

RobustOptions RobustOptionsFromEnv() {
  RobustOptions options;
  options.train_deadline_seconds =
      EnvSeconds("ARECEL_TRAIN_DEADLINE", options.train_deadline_seconds);
  options.estimate_deadline_seconds = EnvSeconds(
      "ARECEL_ESTIMATE_DEADLINE", options.estimate_deadline_seconds);
  options.max_train_attempts = static_cast<int>(
      EnvSeconds("ARECEL_TRAIN_ATTEMPTS",
                 static_cast<double>(options.max_train_attempts)));
  if (const char* fallback = std::getenv("ARECEL_FALLBACK")) {
    options.fallback = fallback;
    if (options.fallback == "none") options.fallback.clear();
  }
  return options;
}

EstimatorReport EvaluateOnDatasetRobust(
    const std::string& estimator_name, const EstimatorFactory& factory,
    const Table& table, const Workload& train, const Workload& test,
    const RobustOptions& options, uint64_t seed) {
  EstimatorReport report;
  report.estimator = estimator_name;
  report.dataset = table.name();

  // Pillar 2: bounded seed-bump retries over fresh instances.
  std::shared_ptr<CardinalityEstimator> trained;
  const int attempts = std::max(1, options.max_train_attempts);
  for (int attempt = 0; attempt < attempts && trained == nullptr; ++attempt) {
    trained = TrainGuarded(factory, table, train,
                           seed + static_cast<uint64_t>(attempt) *
                                      options.retry_seed_stride,
                           attempt, options, &report);
  }
  bool served = false;
  if (trained != nullptr) {
    report.model_size_bytes = trained->SizeBytes();
    served = EstimateGuarded(std::move(trained), test, table.num_rows(),
                             options, &report);
    if (served) report.served_by = estimator_name;
  }

  // Degrade to the configured traditional estimator, rule-guarded, instead
  // of vanishing from the table — whether training was exhausted or the
  // estimate stage itself failed.
  if (!served && !options.fallback.empty() &&
      options.fallback != estimator_name) {
    auto fallback_factory = [&options] {
      return std::unique_ptr<CardinalityEstimator>(
          std::make_unique<GuardedEstimator>(
              MakeEstimator(options.fallback)));
    };
    std::shared_ptr<CardinalityEstimator> fallback =
        TrainGuarded(fallback_factory, table, train, seed,
                     /*attempt=*/attempts, options, &report);
    if (fallback != nullptr) {
      report.model_size_bytes = fallback->SizeBytes();
      served = EstimateGuarded(std::move(fallback), test, table.num_rows(),
                               options, &report);
      if (served) report.served_by = "guarded(" + options.fallback + ")";
    }
  }

  if (report.served_by.empty()) {
    // No numbers at all: report the sentinel quantiles so a failed cell is
    // visibly broken in any aggregate that still includes it.
    report.qerror = {kInvalidQError, kInvalidQError, kInvalidQError,
                     kInvalidQError};
  } else {
    report.qerror = Summarize(report.raw_qerrors);
  }
  return report;
}

}  // namespace arecel::robust
