#include "robustness/runner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/registry.h"
#include "estimators/extensions/guarded.h"
#include "robustness/guard.h"
#include "util/timer.h"

namespace arecel::robust {

namespace {

double EnvSeconds(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

// Shared handle for a guarded stage's input: an owning copy when the stage
// runs under a watchdog (a timed-out worker is abandoned and keeps reading
// the input, which must therefore not be the caller's loop-scoped object —
// in drivers like bench_table4_accuracy the Workloads die when the sweep
// advances to the next dataset), or a non-owning alias when the deadline is
// disabled (RunGuarded then runs inline and can never abandon, so the copy
// would be pure waste).
template <typename T>
std::shared_ptr<const T> ShareForGuard(const T& value, bool watchdog) {
  if (watchdog) return std::make_shared<T>(value);
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), &value);
}

// Bundle moved into the guard's keep_alive: everything a stage closure
// touches, so an abandoned worker thread never dangles.
struct TrainCell {
  std::shared_ptr<CardinalityEstimator> estimator;
  std::shared_ptr<const Table> table;
  std::shared_ptr<const Workload> train;
  CancellationToken cancel;
};

struct EstimateCell {
  std::shared_ptr<CardinalityEstimator> estimator;
  std::shared_ptr<const Workload> test;
  QErrorScan scan;
  double inference_ms = 0.0;
};

// Trains a fresh instance under the watchdog. Returns the trained estimator
// (null on failure, with the failure recorded in *report).
std::shared_ptr<CardinalityEstimator> TrainGuarded(
    const EstimatorFactory& factory, std::shared_ptr<const Table> table,
    std::shared_ptr<const Workload> train, uint64_t seed, int attempt,
    const RobustOptions& options, EstimatorReport* report) {
  auto cell = std::make_shared<TrainCell>();
  cell->estimator = factory();
  cell->table = std::move(table);
  cell->train = std::move(train);

  Timer timer;
  const GuardResult outcome = RunGuarded(
      [cell, seed] {
        TrainContext context;
        context.training_workload = cell->train.get();
        context.seed = seed;
        context.cancellation = &cell->cancel;
        cell->estimator->Train(*cell->table, context);
      },
      options.train_deadline_seconds,
      {FailureKind::kTrainTimeout, FailureKind::kTrainThrew,
       FailureKind::kTrainCancelled},
      &cell->cancel, cell);
  if (outcome.ok()) {
    report->train_seconds += timer.ElapsedSeconds();
    return cell->estimator;
  }
  report->train_seconds += outcome.elapsed_seconds;
  report->failures.push_back({outcome.kind, "train", attempt,
                              outcome.detail +
                                  ", seed=" + std::to_string(seed)});
  return nullptr;
}

// Runs the whole estimate sweep on a watchdog worker. Returns true and
// fills scan/timing on success; records the failure otherwise. The
// estimator must not be reused after a timeout (the worker may still be
// touching it), which the caller honours by dropping its reference.
bool EstimateGuarded(std::shared_ptr<CardinalityEstimator> estimator,
                     std::shared_ptr<const Workload> test, size_t rows,
                     const RobustOptions& options, EstimatorReport* report) {
  auto cell = std::make_shared<EstimateCell>();
  cell->estimator = std::move(estimator);
  cell->test = std::move(test);

  const GuardResult outcome = RunGuarded(
      [cell, rows] {
        Timer inference_timer;
        cell->scan = ScanQErrors(*cell->estimator, *cell->test, rows);
        cell->inference_ms = inference_timer.ElapsedMillis();
      },
      options.estimate_deadline_seconds,
      {FailureKind::kEstimateTimeout, FailureKind::kEstimateThrew,
       FailureKind::kEstimateThrew},
      nullptr, cell);
  if (!outcome.ok()) {
    report->failures.push_back({outcome.kind, "estimate", 0, outcome.detail});
    return false;
  }
  const size_t queries = cell->test->size();
  report->raw_qerrors = std::move(cell->scan.qerrors);
  report->invalid_estimates = cell->scan.invalid_estimates;
  report->avg_inference_ms =
      queries == 0 ? 0.0
                   : cell->inference_ms / static_cast<double>(queries);
  if (report->invalid_estimates > 0) {
    report->failures.push_back(
        {FailureKind::kNonFiniteEstimate, "estimate", 0,
         std::to_string(report->invalid_estimates) + "/" +
             std::to_string(queries) + " invalid estimates"});
  }
  return true;
}

// Per-query budget variant (ROADMAP item): each query runs under its own
// watchdog, so one pathological query becomes one per-query failure record
// and one kInvalidQError instead of sinking the whole estimate stage. The
// loop itself runs on the caller's thread — it is bounded by
// queries x budget, so no sweep-level watchdog wraps it. After
// options.max_query_timeouts overruns the sweep gives up (a deterministic
// hang would otherwise pay the budget once per remaining query) and the
// caller degrades to the fallback. Every per-query worker shares ownership
// of the estimator and workload, so an abandoned one can never dangle.
bool EstimatePerQueryGuarded(std::shared_ptr<CardinalityEstimator> estimator,
                             std::shared_ptr<const Workload> test,
                             size_t rows, const RobustOptions& options,
                             EstimatorReport* report) {
  struct QueryCell {
    std::shared_ptr<CardinalityEstimator> estimator;
    std::shared_ptr<const Workload> test;
    double sel = 0.0;
  };
  const size_t queries = test->size();
  std::vector<double> qerrors(queries, kInvalidQError);
  size_t invalid = 0;
  int timeouts = 0;
  double inference_ms = 0.0;
  for (size_t i = 0; i < queries; ++i) {
    auto cell = std::make_shared<QueryCell>();
    cell->estimator = estimator;
    cell->test = test;
    const GuardResult outcome = RunGuarded(
        [cell, i] {
          cell->sel = cell->estimator->EstimateSelectivity(
              cell->test->queries[i]);
        },
        options.query_deadline_seconds,
        {FailureKind::kEstimateTimeout, FailureKind::kEstimateThrew,
         FailureKind::kEstimateThrew},
        nullptr, cell);
    if (outcome.ok()) {
      inference_ms += outcome.elapsed_seconds * 1e3;
      bool bad = false;
      qerrors[i] =
          ScoreEstimate(cell->sel, rows, test->Cardinality(i, rows), &bad);
      invalid += bad ? 1 : 0;
      continue;
    }
    report->failures.push_back({outcome.kind, "estimate", 0,
                                outcome.detail + ", query " +
                                    std::to_string(i)});
    if (outcome.kind == FailureKind::kEstimateTimeout &&
        ++timeouts >= std::max(1, options.max_query_timeouts)) {
      report->failures.push_back(
          {FailureKind::kEstimateTimeout, "estimate", 0,
           "gave up after " + std::to_string(timeouts) +
               " per-query budget overruns"});
      return false;
    }
  }
  report->raw_qerrors = std::move(qerrors);
  report->invalid_estimates = invalid;
  report->avg_inference_ms =
      queries == 0 ? 0.0 : inference_ms / static_cast<double>(queries);
  if (invalid > 0) {
    report->failures.push_back(
        {FailureKind::kNonFiniteEstimate, "estimate", 0,
         std::to_string(invalid) + "/" + std::to_string(queries) +
             " invalid estimates"});
  }
  return true;
}

// Dispatches the estimate stage to the per-query budget path when one is
// configured, else to the sweep-level watchdog.
bool RunEstimateStage(std::shared_ptr<CardinalityEstimator> estimator,
                      std::shared_ptr<const Workload> test, size_t rows,
                      const RobustOptions& options,
                      EstimatorReport* report) {
  if (options.query_deadline_seconds > 0) {
    return EstimatePerQueryGuarded(std::move(estimator), std::move(test),
                                   rows, options, report);
  }
  return EstimateGuarded(std::move(estimator), std::move(test), rows,
                         options, report);
}

}  // namespace

RobustOptions RobustOptionsFromEnv() {
  RobustOptions options;
  options.train_deadline_seconds =
      EnvSeconds("ARECEL_TRAIN_DEADLINE", options.train_deadline_seconds);
  options.estimate_deadline_seconds = EnvSeconds(
      "ARECEL_ESTIMATE_DEADLINE", options.estimate_deadline_seconds);
  options.query_deadline_seconds =
      EnvSeconds("ARECEL_QUERY_DEADLINE", options.query_deadline_seconds);
  options.max_train_attempts = static_cast<int>(
      EnvSeconds("ARECEL_TRAIN_ATTEMPTS",
                 static_cast<double>(options.max_train_attempts)));
  if (const char* fallback = std::getenv("ARECEL_FALLBACK")) {
    options.fallback = fallback;
    if (options.fallback == "none") options.fallback.clear();
  }
  // Fail fast on a typo'd fallback: MakeEstimator aborts on an unknown
  // name, and deferring that abort until the first cell has exhausted all
  // its training attempts (potentially many minutes in) would crash the
  // figure the harness exists to protect.
  if (!options.fallback.empty()) {
    const std::vector<std::string> registered = AllRegistryNames();
    if (std::find(registered.begin(), registered.end(), options.fallback) ==
        registered.end()) {
      std::fprintf(stderr,
                   "[robustness] ARECEL_FALLBACK \"%s\" is not a registered "
                   "estimator (\"none\" disables the fallback); valid:",
                   options.fallback.c_str());
      for (const std::string& name : registered)
        std::fprintf(stderr, " %s", name.c_str());
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
  }
  return options;
}

EstimatorReport EvaluateOnDatasetRobust(
    const std::string& estimator_name, const EstimatorFactory& factory,
    const Table& table, const Workload& train, const Workload& test,
    const RobustOptions& options, uint64_t seed) {
  EstimatorReport report;
  report.estimator = estimator_name;
  report.dataset = table.name();

  // Guard inputs get shared ownership (owning copies whenever the stage's
  // watchdog is armed): after an uncooperative hang the abandoned worker
  // keeps reading them long after this call — and the caller's loop-scoped
  // table/workloads — would be gone.
  const std::shared_ptr<const Table> shared_table =
      ShareForGuard(table, options.train_deadline_seconds > 0);
  const std::shared_ptr<const Workload> shared_train =
      ShareForGuard(train, options.train_deadline_seconds > 0);
  const std::shared_ptr<const Workload> shared_test =
      ShareForGuard(test, options.estimate_deadline_seconds > 0 ||
                              options.query_deadline_seconds > 0);

  // Pillar 2: bounded seed-bump retries over fresh instances.
  std::shared_ptr<CardinalityEstimator> trained;
  const int attempts = std::max(1, options.max_train_attempts);
  for (int attempt = 0; attempt < attempts && trained == nullptr; ++attempt) {
    trained = TrainGuarded(factory, shared_table, shared_train,
                           seed + static_cast<uint64_t>(attempt) *
                                      options.retry_seed_stride,
                           attempt, options, &report);
  }
  bool served = false;
  if (trained != nullptr) {
    report.model_size_bytes = trained->SizeBytes();
    served = RunEstimateStage(std::move(trained), shared_test,
                              table.num_rows(), options, &report);
    if (served) report.served_by = estimator_name;
  }

  // Degrade to the configured traditional estimator, rule-guarded, instead
  // of vanishing from the table — whether training was exhausted or the
  // estimate stage itself failed.
  if (!served && !options.fallback.empty() &&
      options.fallback != estimator_name) {
    auto fallback_factory = [&options] {
      return std::unique_ptr<CardinalityEstimator>(
          std::make_unique<GuardedEstimator>(
              MakeEstimator(options.fallback)));
    };
    std::shared_ptr<CardinalityEstimator> fallback =
        TrainGuarded(fallback_factory, shared_table, shared_train, seed,
                     /*attempt=*/attempts, options, &report);
    if (fallback != nullptr) {
      report.model_size_bytes = fallback->SizeBytes();
      served = RunEstimateStage(std::move(fallback), shared_test,
                                table.num_rows(), options, &report);
      if (served) report.served_by = "guarded(" + options.fallback + ")";
    }
  }

  if (report.served_by.empty()) {
    // No numbers at all: report the sentinel quantiles so a failed cell is
    // visibly broken in any aggregate that still includes it.
    report.qerror = {kInvalidQError, kInvalidQError, kInvalidQError,
                     kInvalidQError};
  } else {
    report.qerror = Summarize(report.raw_qerrors);
  }
  return report;
}

}  // namespace arecel::robust
