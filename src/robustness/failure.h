#ifndef ARECEL_ROBUSTNESS_FAILURE_H_
#define ARECEL_ROBUSTNESS_FAILURE_H_

#include <string>
#include <vector>

namespace arecel {

// Structured failure taxonomy for the fault-tolerant benchmark harness.
// Every way an estimator can take down a sweep cell — hang, throw, emit
// garbage, refuse to persist — maps to exactly one kind, so failure
// accounting in EstimatorReport and the sweep journal is comparable across
// estimators and across runs (the framing of Han et al.'s benchmark and
// CardBench: a failed model is a *result*, not a crashed figure).
enum class FailureKind {
  kNone = 0,
  kTrainTimeout,       // Train() exceeded its wall-clock deadline.
  kTrainThrew,         // Train() raised an exception.
  kTrainCancelled,     // Train() was cancelled mid-flight (CancelledError).
  kEstimateTimeout,    // the estimate stage exceeded its deadline.
  kEstimateThrew,      // EstimateSelectivity() raised an exception.
  kNonFiniteEstimate,  // NaN/Inf or negative selectivity at the boundary.
  kPersistenceFailure, // model or journal save/load failed.
  kCorruptModel,       // persisted model bytes failed validation (truncated
                       // stream, checksum mismatch, impossible topology);
                       // the estimator instance that saw them is poisoned
                       // and must be discarded, never served or retried.
  kCellTimeout,        // a generic bench cell exceeded its deadline.
  kCellThrew,          // a generic bench cell raised an exception.
};

// Stable string form used in reports, bench FAILED rows, and journal
// records, e.g. "kTrainTimeout".
const char* FailureKindName(FailureKind kind);

// One accounted failure. A cell can accumulate several (each retry attempt
// logs its own record before the fallback takes over).
struct FailureRecord {
  FailureKind kind = FailureKind::kNone;
  std::string stage;     // "train", "estimate", "cell", "journal".
  int attempt = 0;       // 0-based training attempt that failed.
  std::string detail;    // exception message, deadline, invalid count, ...

  std::string ToString() const;
};

// Exception type for cooperative mid-train cancellation: the watchdog (or a
// FaultInjector schedule) asks training to stop, and a cooperative trainer
// surfaces it as this type so the harness can tell kTrainCancelled from an
// ordinary kTrainThrew.
class CancelledError : public std::exception {
 public:
  explicit CancelledError(std::string message) : message_(std::move(message)) {}
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  std::string message_;
};

}  // namespace arecel

#endif  // ARECEL_ROBUSTNESS_FAILURE_H_
