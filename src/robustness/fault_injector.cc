#include "robustness/fault_injector.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <thread>

#include "robustness/failure.h"
#include "util/timer.h"

namespace arecel::robust {

namespace {

// Sleeps in short slices so an injected hang released by cancellation (or
// its safety cap) wakes promptly instead of holding the abandoned worker
// thread for the full duration.
void SlicedSleep(double seconds, const CancellationToken* cancel) {
  Timer timer;
  while (timer.ElapsedSeconds() < seconds) {
    if (cancel != nullptr && cancel->cancelled()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

bool ParseStage(const std::string& token, FaultStage* stage) {
  if (token == "train") *stage = FaultStage::kTrain;
  else if (token == "estimate") *stage = FaultStage::kEstimate;
  else if (token == "serialize") *stage = FaultStage::kSerialize;
  else return false;
  return true;
}

bool ParseAction(const std::string& token, FaultAction* action) {
  if (token == "throw") *action = FaultAction::kThrow;
  else if (token == "cancel") *action = FaultAction::kCancel;
  else if (token == "hang") *action = FaultAction::kHang;
  else if (token == "delay") *action = FaultAction::kDelay;
  else if (token == "nan") *action = FaultAction::kNan;
  else if (token == "inf") *action = FaultAction::kInf;
  else if (token == "negative") *action = FaultAction::kNegative;
  else if (token == "refuse") *action = FaultAction::kRefuse;
  else return false;
  return true;
}

std::vector<std::string> Split(const std::string& text, char a, char b) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == a || c == b) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace

bool ParseFaultPlan(const std::string& text, std::vector<FaultSpec>* plan,
                    std::string* error) {
  plan->clear();
  for (const std::string& item : Split(text, ';', ',')) {
    if (item.empty()) continue;
    const std::vector<std::string> fields = Split(item, ':', ':');
    if (fields.size() < 3) {
      *error = "fault spec needs estimator:stage:action, got '" + item + "'";
      return false;
    }
    FaultSpec spec;
    spec.estimator = fields[0];
    if (!ParseStage(fields[1], &spec.stage)) {
      *error = "unknown fault stage '" + fields[1] + "'";
      return false;
    }
    if (!ParseAction(fields[2], &spec.action)) {
      *error = "unknown fault action '" + fields[2] + "'";
      return false;
    }
    for (size_t f = 3; f < fields.size(); ++f) {
      const std::string& field = fields[f];
      const size_t eq = field.find('=');
      if (eq == std::string::npos) {
        *error = "expected key=value, got '" + field + "'";
        return false;
      }
      const std::string key = field.substr(0, eq);
      const double value = std::atof(field.c_str() + eq + 1);
      if (key == "after") spec.after_calls = static_cast<int>(value);
      else if (key == "times") spec.times = static_cast<int>(value);
      else if (key == "delay") spec.delay_seconds = value;
      else if (key == "cap") spec.hang_cap_seconds = value;
      else {
        *error = "unknown fault field '" + key + "'";
        return false;
      }
    }
    plan->push_back(spec);
  }
  return true;
}

std::vector<FaultSpec> FaultPlanFromEnv() {
  const char* env = std::getenv("ARECEL_FAULT_INJECT");
  if (env == nullptr || env[0] == '\0') return {};
  std::vector<FaultSpec> plan;
  std::string error;
  if (!ParseFaultPlan(env, &plan, &error)) {
    std::fprintf(stderr, "ARECEL_FAULT_INJECT: %s\n", error.c_str());
    std::abort();
  }
  return plan;
}

FaultInjector::FaultInjector(std::unique_ptr<CardinalityEstimator> base,
                             std::vector<FaultSpec> plan)
    : base_(std::move(base)),
      plan_(std::move(plan)),
      fired_(plan_.size()) {
  for (auto& f : fired_) f.store(0);
}

const FaultSpec* FaultInjector::Fire(FaultStage stage, int call_index) const {
  for (size_t i = 0; i < plan_.size(); ++i) {
    const FaultSpec& spec = plan_[i];
    if (spec.stage != stage || call_index < spec.after_calls) continue;
    if (spec.times >= 0 &&
        fired_[i].fetch_add(1) >= spec.times) {
      continue;  // budget spent; this spec is disarmed.
    }
    return &spec;
  }
  return nullptr;
}

void FaultInjector::ApplyTrainFault(const FaultSpec& fault,
                                    const CancellationToken* cancel) const {
  switch (fault.action) {
    case FaultAction::kThrow:
      throw std::runtime_error("injected train fault");
    case FaultAction::kCancel:
      SlicedSleep(fault.delay_seconds, cancel);
      throw CancelledError("injected mid-train cancellation");
    case FaultAction::kHang:
      SlicedSleep(fault.hang_cap_seconds, cancel);
      if (cancel != nullptr && cancel->cancelled())
        throw CancelledError("injected hang released by cancellation");
      throw std::runtime_error("injected hang hit its safety cap");
    case FaultAction::kDelay:
      SlicedSleep(fault.delay_seconds, cancel);
      return;  // then train normally.
    default:
      throw std::runtime_error("fault action not applicable to train stage");
  }
}

void FaultInjector::Train(const Table& table, const TrainContext& context) {
  const int call = train_calls_.fetch_add(1);
  if (const FaultSpec* fault = Fire(FaultStage::kTrain, call))
    ApplyTrainFault(*fault, context.cancellation);
  base_->Train(table, context);
}

void FaultInjector::Update(const Table& table, const UpdateContext& context) {
  // Updates count as training calls: a scheduled train fault fires here too.
  const int call = train_calls_.fetch_add(1);
  if (const FaultSpec* fault = Fire(FaultStage::kTrain, call))
    ApplyTrainFault(*fault, nullptr);
  base_->Update(table, context);
}

double FaultInjector::EstimateSelectivity(const Query& query) const {
  const int call = estimate_calls_.fetch_add(1);
  if (const FaultSpec* fault = Fire(FaultStage::kEstimate, call)) {
    switch (fault->action) {
      case FaultAction::kThrow:
        throw std::runtime_error("injected estimate fault");
      case FaultAction::kHang:
        SlicedSleep(fault->hang_cap_seconds, nullptr);
        throw std::runtime_error("injected estimate hang hit its cap");
      case FaultAction::kDelay:
        SlicedSleep(fault->delay_seconds, nullptr);
        break;  // then answer normally.
      case FaultAction::kNan:
        return std::numeric_limits<double>::quiet_NaN();
      case FaultAction::kInf:
        return std::numeric_limits<double>::infinity();
      case FaultAction::kNegative:
        return -0.5;
      default:
        throw std::runtime_error(
            "fault action not applicable to estimate stage");
    }
  }
  return base_->EstimateSelectivity(query);
}

void FaultInjector::TrainJoin(const Schema& schema,
                              const JoinTrainContext& context) {
  const int call = train_calls_.fetch_add(1);
  if (const FaultSpec* fault = Fire(FaultStage::kTrain, call))
    ApplyTrainFault(*fault, context.cancellation);
  base_->TrainJoin(schema, context);
}

double FaultInjector::EstimateJoinSelectivity(const JoinQuery& query) const {
  const int call = estimate_calls_.fetch_add(1);
  if (const FaultSpec* fault = Fire(FaultStage::kEstimate, call)) {
    switch (fault->action) {
      case FaultAction::kThrow:
        throw std::runtime_error("injected estimate fault");
      case FaultAction::kHang:
        SlicedSleep(fault->hang_cap_seconds, nullptr);
        throw std::runtime_error("injected estimate hang hit its cap");
      case FaultAction::kDelay:
        SlicedSleep(fault->delay_seconds, nullptr);
        break;  // then answer normally.
      case FaultAction::kNan:
        return std::numeric_limits<double>::quiet_NaN();
      case FaultAction::kInf:
        return std::numeric_limits<double>::infinity();
      case FaultAction::kNegative:
        return -0.5;
      default:
        throw std::runtime_error(
            "fault action not applicable to estimate stage");
    }
  }
  return base_->EstimateJoinSelectivity(query);
}

bool FaultInjector::SerializeModel(ByteWriter* writer) const {
  const int call = serialize_calls_.fetch_add(1);
  if (const FaultSpec* fault = Fire(FaultStage::kSerialize, call)) {
    if (fault->action == FaultAction::kRefuse) return false;
    throw std::runtime_error("injected serialize fault");
  }
  return base_->SerializeModel(writer);
}

bool FaultInjector::DeserializeModel(ByteReader* reader) {
  return base_->DeserializeModel(reader);
}

std::unique_ptr<CardinalityEstimator> WrapWithFaults(
    std::unique_ptr<CardinalityEstimator> base,
    const std::vector<FaultSpec>& plan) {
  std::vector<FaultSpec> matching;
  for (const FaultSpec& spec : plan) {
    if (spec.estimator.empty() || spec.estimator == base->Name())
      matching.push_back(spec);
  }
  if (matching.empty()) return base;
  return std::make_unique<FaultInjector>(std::move(base),
                                         std::move(matching));
}

}  // namespace arecel::robust
