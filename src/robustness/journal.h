#ifndef ARECEL_ROBUSTNESS_JOURNAL_H_
#define ARECEL_ROBUSTNESS_JOURNAL_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace arecel::robust {

// One completed sweep cell: the (estimator, cell) key plus the named
// metrics the bench needs to reprint its row without re-running the cell.
// Only *clean* cells are journaled — failed cells re-execute on the next
// run, which is exactly the resume semantics the acceptance scenario needs.
struct JournalRecord {
  std::string estimator;
  std::string cell;  // dataset name or sweep-parameter key.
  std::vector<std::pair<std::string, double>> metrics;

  double Metric(const std::string& name, double fallback = 0.0) const;
};

// Hex FNV-1a fingerprint of the configuration parts that make journal
// records comparable across runs (bench name, scale, query counts, format
// version). Fault-injection settings are deliberately NOT part of it: a
// faulty run's journal must be resumable by a clean rerun.
std::string FingerprintConfig(const std::vector<std::string>& parts);

// Append-only JSONL journal of completed sweep cells.
//
// File format: a header line {"fingerprint":"..."} followed by one record
// per line: {"estimator":"naru","cell":"census","metrics":{"p50":1.5,...}}.
// Records are flushed per append, so a killed run loses at most the cell in
// flight. On open, a file whose fingerprint does not match is discarded
// (the configuration changed; its cells are not comparable).
class SweepJournal {
 public:
  // An empty path disables journaling (enabled() == false; Find always
  // misses, Append succeeds as a no-op).
  SweepJournal(std::string path, std::string fingerprint);

  bool enabled() const { return !path_.empty(); }
  size_t resumed_cells() const { return records_.size(); }

  const JournalRecord* Find(const std::string& estimator,
                            const std::string& cell) const;

  // Journals one completed cell (persists + indexes it). Returns false —
  // without indexing the record, so Find keeps missing and the cell re-runs
  // on resume — when the write failed or any metric is NaN (corruption is
  // refused, never rewritten into a plausible number). Callers account a
  // false return as kPersistenceFailure but keep sweeping; a broken disk
  // should not kill the figure either.
  bool Append(const JournalRecord& record);

  // Deletes the journal file: the sweep finished with zero failures, so
  // there is nothing to resume and the next run starts fresh.
  void RemoveFile();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string fingerprint_;
  std::map<std::string, JournalRecord> records_;  // key: estimator\ncell.
  bool header_written_ = false;
};

}  // namespace arecel::robust

#endif  // ARECEL_ROBUSTNESS_JOURNAL_H_
