#ifndef ARECEL_ROBUSTNESS_GUARD_H_
#define ARECEL_ROBUSTNESS_GUARD_H_

#include <functional>
#include <memory>
#include <string>

#include "robustness/failure.h"
#include "util/cancellation.h"

namespace arecel::robust {

// Outcome of one guarded stage (a Train() call, a whole estimate sweep, or
// a generic bench cell body).
struct GuardResult {
  FailureKind kind = FailureKind::kNone;  // kNone on success.
  std::string detail;
  double elapsed_seconds = 0.0;

  bool ok() const { return kind == FailureKind::kNone; }
};

// What to report when the stage times out / throws, respectively — lets one
// runner serve train, estimate, and generic cells.
struct GuardKinds {
  FailureKind on_timeout = FailureKind::kCellTimeout;
  FailureKind on_throw = FailureKind::kCellThrew;
  FailureKind on_cancel = FailureKind::kTrainCancelled;
};

// Runs `work` on a watchdog worker thread and waits at most
// `deadline_seconds` (<= 0 disables the deadline and runs inline, so the
// zero-risk configuration costs no thread). Exceptions never escape: a
// CancelledError maps to kinds.on_cancel, anything else to kinds.on_throw.
//
// On deadline expiry the guard signals `cancel` (when provided) so
// cooperative work can exit, waits a short grace period for it, and then
// ABANDONS the worker: the detached thread keeps running against the state
// captured in `work` and `keep_alive` until it eventually returns, at which
// point that state is released. Callers must therefore (a) move shared
// ownership of everything `work` touches into `keep_alive`, and (b) never
// reuse an object whose stage timed out — the robust runner discards the
// estimator and builds a fresh one instead. This is the standard
// leak-on-hang contract of watchdog harnesses: a hung cell costs one thread
// and its model, not the whole figure binary.
GuardResult RunGuarded(std::function<void()> work, double deadline_seconds,
                       const GuardKinds& kinds,
                       CancellationToken* cancel = nullptr,
                       std::shared_ptr<void> keep_alive = nullptr,
                       double cancel_grace_seconds = 0.25);

}  // namespace arecel::robust

#endif  // ARECEL_ROBUSTNESS_GUARD_H_
