#ifndef ARECEL_ROBUSTNESS_GUARD_H_
#define ARECEL_ROBUSTNESS_GUARD_H_

#include <functional>
#include <memory>
#include <string>

#include "robustness/failure.h"
#include "util/cancellation.h"

namespace arecel::robust {

// Outcome of one guarded stage (a Train() call, a whole estimate sweep, or
// a generic bench cell body).
struct GuardResult {
  FailureKind kind = FailureKind::kNone;  // kNone on success.
  std::string detail;
  double elapsed_seconds = 0.0;

  bool ok() const { return kind == FailureKind::kNone; }
};

// What to report when the stage times out / throws, respectively — lets one
// runner serve train, estimate, and generic cells.
struct GuardKinds {
  FailureKind on_timeout = FailureKind::kCellTimeout;
  FailureKind on_throw = FailureKind::kCellThrew;
  FailureKind on_cancel = FailureKind::kTrainCancelled;
};

// Runs `work` on a watchdog worker thread and waits at most
// `deadline_seconds` (<= 0 disables the deadline and runs inline, so the
// zero-risk configuration costs no thread). Exceptions never escape: a
// CancelledError maps to kinds.on_cancel, anything else to kinds.on_throw.
//
// On deadline expiry the guard signals `cancel` (when provided) so
// cooperative work can exit, waits a short grace period for it, and then
// ABANDONS the worker: the detached thread keeps running against the state
// captured in `work` and `keep_alive` until it eventually returns, at which
// point that state is released. Callers must therefore:
//  (a) give the closure shared ownership of everything it touches — capture
//      by value or by shared_ptr (or bundle it into `keep_alive`). The only
//      permissible by-reference captures are objects guaranteed to stay
//      alive until the process ends, e.g. main-scope data in a bench driver
//      whose exit path goes through SweepContext/CellGuard::Finish (which
//      ends the process without teardown while workers are abandoned —
//      see AbandonedWorkerCount). Loop-scoped locals and call-site
//      temporaries must NEVER be captured by reference.
//  (b) never reuse an object whose stage timed out — the robust runner
//      discards the estimator and builds a fresh one instead.
// This is the standard leak-on-hang contract of watchdog harnesses: a hung
// cell costs one thread and its model, not the whole figure binary.
GuardResult RunGuarded(std::function<void()> work, double deadline_seconds,
                       const GuardKinds& kinds,
                       CancellationToken* cancel = nullptr,
                       std::shared_ptr<void> keep_alive = nullptr,
                       double cancel_grace_seconds = 0.25);

// Number of abandoned worker threads that are still running in this
// process (incremented when a deadline abandons a worker, decremented when
// that worker eventually finishes). While this is nonzero, process teardown
// (destructors of globals or of main's locals) would run under live
// workers; shutdown paths that observed failures should end the process
// without teardown instead (std::_Exit) — SweepContext/CellGuard::Finish
// do exactly that.
int AbandonedWorkerCount();

}  // namespace arecel::robust

#endif  // ARECEL_ROBUSTNESS_GUARD_H_
