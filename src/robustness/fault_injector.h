#ifndef ARECEL_ROBUSTNESS_FAULT_INJECTOR_H_
#define ARECEL_ROBUSTNESS_FAULT_INJECTOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"

namespace arecel::robust {

// Where a fault fires.
enum class FaultStage { kTrain, kEstimate, kSerialize };

// What the fault does when it fires.
enum class FaultAction {
  kThrow,     // raise std::runtime_error.
  kCancel,    // raise CancelledError (mid-train cancellation).
  kHang,      // spin-sleep until cancelled (or a safety cap expires).
  kDelay,     // sleep delay_seconds, then proceed normally.
  kNan,       // estimate returns NaN.
  kInf,       // estimate returns +infinity.
  kNegative,  // estimate returns -0.5.
  kRefuse,    // SerializeModel reports failure.
};

// One scheduled fault. Matching is by stage + call index: the fault fires
// on calls with index >= after_calls, at most `times` times (-1 = forever).
// Deterministic by construction — the schedule is the seed.
struct FaultSpec {
  std::string estimator;  // registry name this fault applies to ("" = all).
  FaultStage stage = FaultStage::kTrain;
  FaultAction action = FaultAction::kThrow;
  int after_calls = 0;
  int times = -1;
  double delay_seconds = 0.05;  // kDelay duration.
  double hang_cap_seconds = 60.0;  // kHang safety cap when never cancelled.
};

// Parses a fault plan like
//   "naru:train:hang;mscn:estimate:nan;lw-nn:train:throw:times=2"
// (`;` or `,` separates specs; optional trailing `key=value` fields:
// after=N, times=N, delay=SECONDS, cap=SECONDS). Returns false and sets
// `error` on a malformed spec. An empty string parses to an empty plan.
bool ParseFaultPlan(const std::string& text, std::vector<FaultSpec>* plan,
                    std::string* error);

// The plan from the ARECEL_FAULT_INJECT environment variable (empty when
// unset). Aborts with a parse error message on a malformed value — a typo'd
// injection silently running clean would defeat the test.
std::vector<FaultSpec> FaultPlanFromEnv();

// Seeded fault-injecting wrapper: the test substrate proving the watchdog,
// retry, and fallback machinery actually work. Transparent when no spec
// matches — Name() forwards to the base so reports and journals keep the
// real estimator name, and injected hangs poll the TrainContext's
// cancellation token so an abandoning watchdog releases them quickly.
class FaultInjector : public CardinalityEstimator {
 public:
  FaultInjector(std::unique_ptr<CardinalityEstimator> base,
                std::vector<FaultSpec> plan);

  std::string Name() const override { return base_->Name(); }
  bool IsQueryDriven() const override { return base_->IsQueryDriven(); }
  // Call counters below are atomics, so the wrapper adds no races of its
  // own; thread safety is whatever the base reports.
  bool ThreadSafeEstimates() const override {
    return base_->ThreadSafeEstimates();
  }
  size_t SizeBytes() const override { return base_->SizeBytes(); }

  void Train(const Table& table, const TrainContext& context) override;
  void Update(const Table& table, const UpdateContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

  // Join calls share the train/estimate fault stages and counters, so one
  // plan drives bench_join's fault cells too.
  bool SupportsJoins() const override { return base_->SupportsJoins(); }
  void TrainJoin(const Schema& schema,
                 const JoinTrainContext& context) override;
  double EstimateJoinSelectivity(const JoinQuery& query) const override;

  int train_calls() const { return train_calls_.load(); }
  int estimate_calls() const { return estimate_calls_.load(); }

 private:
  // First armed spec matching (stage, call index), bumping its fire count.
  const FaultSpec* Fire(FaultStage stage, int call_index) const;
  void ApplyTrainFault(const FaultSpec& fault,
                       const CancellationToken* cancel) const;

  std::unique_ptr<CardinalityEstimator> base_;
  std::vector<FaultSpec> plan_;
  mutable std::vector<std::atomic<int>> fired_;
  mutable std::atomic<int> train_calls_{0};
  mutable std::atomic<int> estimate_calls_{0};
  mutable std::atomic<int> serialize_calls_{0};
};

// Wraps `base` with any matching faults from `plan` (specs whose estimator
// field is empty or equals base->Name()). Returns `base` unchanged when
// nothing matches, so the zero-fault path costs nothing.
std::unique_ptr<CardinalityEstimator> WrapWithFaults(
    std::unique_ptr<CardinalityEstimator> base,
    const std::vector<FaultSpec>& plan);

}  // namespace arecel::robust

#endif  // ARECEL_ROBUSTNESS_FAULT_INJECTOR_H_
