#include "robustness/failure.h"

namespace arecel {

const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:
      return "kNone";
    case FailureKind::kTrainTimeout:
      return "kTrainTimeout";
    case FailureKind::kTrainThrew:
      return "kTrainThrew";
    case FailureKind::kTrainCancelled:
      return "kTrainCancelled";
    case FailureKind::kEstimateTimeout:
      return "kEstimateTimeout";
    case FailureKind::kEstimateThrew:
      return "kEstimateThrew";
    case FailureKind::kNonFiniteEstimate:
      return "kNonFiniteEstimate";
    case FailureKind::kPersistenceFailure:
      return "kPersistenceFailure";
    case FailureKind::kCorruptModel:
      return "kCorruptModel";
    case FailureKind::kCellTimeout:
      return "kCellTimeout";
    case FailureKind::kCellThrew:
      return "kCellThrew";
  }
  return "kUnknown";
}

std::string FailureRecord::ToString() const {
  std::string out = FailureKindName(kind);
  out += "(stage=" + stage + ", attempt=" + std::to_string(attempt);
  if (!detail.empty()) out += ", " + detail;
  out += ")";
  return out;
}

}  // namespace arecel
