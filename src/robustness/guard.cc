#include "robustness/guard.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/timer.h"

namespace arecel::robust {

namespace {

// Abandoned-and-still-running worker count; see AbandonedWorkerCount().
std::atomic<int> g_abandoned_workers{0};

// State shared between the caller and the (possibly abandoned) worker.
// Owned by shared_ptr from both sides so an abandoned worker can finish —
// or sleep forever — without dangling; the work closure and keep_alive
// bundle are released by whichever side drops the last reference.
struct SharedState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool abandoned = false;  // set by the guard when the deadline gives up.
  bool threw = false;
  bool cancelled = false;
  std::string error;
  std::function<void()> work;
  std::shared_ptr<void> keep_alive;
};

GuardResult RunInline(const std::function<void()>& work,
                      const GuardKinds& kinds) {
  GuardResult result;
  Timer timer;
  try {
    work();
  } catch (const CancelledError& e) {
    result.kind = kinds.on_cancel;
    result.detail = e.what();
  } catch (const std::exception& e) {
    result.kind = kinds.on_throw;
    result.detail = e.what();
  } catch (...) {
    result.kind = kinds.on_throw;
    result.detail = "non-standard exception";
  }
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

GuardResult RunGuarded(std::function<void()> work, double deadline_seconds,
                       const GuardKinds& kinds, CancellationToken* cancel,
                       std::shared_ptr<void> keep_alive,
                       double cancel_grace_seconds) {
  if (deadline_seconds <= 0.0) return RunInline(work, kinds);

  auto state = std::make_shared<SharedState>();
  state->work = std::move(work);
  state->keep_alive = std::move(keep_alive);

  std::thread([state] {
    bool threw = false;
    bool cancelled = false;
    std::string error;
    try {
      state->work();
    } catch (const CancelledError& e) {
      cancelled = true;
      error = e.what();
    } catch (const std::exception& e) {
      threw = true;
      error = e.what();
    } catch (...) {
      threw = true;
      error = "non-standard exception";
    }
    bool was_abandoned = false;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->done = true;
      state->threw = threw;
      state->cancelled = cancelled;
      state->error = std::move(error);
      was_abandoned = state->abandoned;
    }
    if (was_abandoned)
      g_abandoned_workers.fetch_sub(1, std::memory_order_relaxed);
    state->cv.notify_all();
  }).detach();

  Timer timer;
  GuardResult result;
  std::unique_lock<std::mutex> lock(state->mu);
  const auto deadline = std::chrono::duration<double>(deadline_seconds);
  if (!state->cv.wait_for(lock, deadline, [&] { return state->done; })) {
    // Deadline passed: ask cooperative work to stop and give it a grace
    // window before abandoning the thread for good.
    if (cancel != nullptr) {
      cancel->Cancel();
      state->cv.wait_for(lock,
                         std::chrono::duration<double>(cancel_grace_seconds),
                         [&] { return state->done; });
    }
    if (!state->done) {
      // Abandoned: the detached worker still holds a shared_ptr to `state`,
      // so everything the closure references stays alive until it returns.
      // Register it so shutdown paths know teardown is unsafe.
      state->abandoned = true;
      g_abandoned_workers.fetch_add(1, std::memory_order_relaxed);
      result.kind = kinds.on_timeout;
      result.detail =
          "deadline " + std::to_string(deadline_seconds) + "s exceeded";
      result.elapsed_seconds = timer.ElapsedSeconds();
      return result;
    }
    // Finished inside the grace window — it honoured the cancel, so the
    // stage is still a deadline failure (the work is incomplete), but a
    // cooperative one.
    result.kind = state->cancelled ? kinds.on_cancel : kinds.on_timeout;
    result.detail = "cancelled after deadline " +
                    std::to_string(deadline_seconds) + "s";
    result.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }

  result.elapsed_seconds = timer.ElapsedSeconds();
  if (state->cancelled) {
    result.kind = kinds.on_cancel;
    result.detail = state->error;
  } else if (state->threw) {
    result.kind = kinds.on_throw;
    result.detail = state->error;
  }
  return result;
}

int AbandonedWorkerCount() {
  return g_abandoned_workers.load(std::memory_order_relaxed);
}

}  // namespace arecel::robust
