#ifndef ARECEL_ROBUSTNESS_RUNNER_H_
#define ARECEL_ROBUSTNESS_RUNNER_H_

#include <functional>
#include <memory>
#include <string>

#include "core/evaluator.h"

namespace arecel::robust {

// Knobs for one guarded (estimator, dataset) evaluation cell.
struct RobustOptions {
  // Per-stage wall-clock deadlines; <= 0 disables that watchdog.
  double train_deadline_seconds = 600.0;
  // Deadline for the whole estimate sweep over the test workload (one
  // worker thread per stage, not per query). Ignored when a per-query
  // budget is set below.
  double estimate_deadline_seconds = 300.0;

  // Per-query estimate budget; <= 0 disables (the default — the sweep-level
  // deadline above applies instead). When enabled, each query runs under
  // its own watchdog: a pathological query is recorded as a per-query
  // failure (kEstimateTimeout with the query index in the detail) and
  // scores kInvalidQError, and the sweep CONTINUES with the remaining
  // queries instead of timing out the whole estimate stage. The sweep only
  // gives up (and degrades to the fallback) after `max_query_timeouts`
  // budget overruns. This assumes EstimateSelectivity is a pure read — true
  // of every registry estimator — because an abandoned per-query worker may
  // still be inside the estimator (kept alive via shared ownership) while
  // the sweep moves on.
  double query_deadline_seconds = 0.0;
  int max_query_timeouts = 5;

  // Bounded retries for stochastic training divergence: attempt k trains a
  // FRESH instance with seed + k * retry_seed_stride, so a diverging run
  // does not just replay itself. Every failed attempt is logged.
  int max_train_attempts = 2;
  uint64_t retry_seed_stride = 9973;

  // Registry name of the traditional estimator that serves the cell when
  // all training attempts failed ("" disables). Wrapped in GuardedEstimator
  // (§7.2 rule guarding) so the degraded path also behaves logically.
  std::string fallback = "postgres";
};

using EstimatorFactory =
    std::function<std::unique_ptr<CardinalityEstimator>()>;

// Options read from the environment: ARECEL_TRAIN_DEADLINE,
// ARECEL_ESTIMATE_DEADLINE, ARECEL_QUERY_DEADLINE (seconds),
// ARECEL_TRAIN_ATTEMPTS, ARECEL_FALLBACK ("none" disables). The bench binaries use this so a CI
// job can tighten budgets without recompiling. A fallback name that is not
// in the registry terminates the process immediately (exit 2) with the
// valid names on stderr — failing fast at startup instead of aborting
// minutes in when the first failed cell tries to construct it.
RobustOptions RobustOptionsFromEnv();

// Fault-tolerant counterpart of EvaluateOnDataset: trains under the
// watchdog with seed-bump retries, degrades to options.fallback when
// training is exhausted, runs the estimate stage under its own deadline,
// and maps every failure to the taxonomy in the report. Never throws and
// never hangs past the configured deadlines: a report with
// served_by.empty() means the cell produced no numbers (its quantiles are
// kInvalidQError so aggregates surface the hole instead of masking it).
// Whenever a stage watchdog is armed, the guarded closures own private
// copies of table/train/test, so the caller's inputs may be loop-scoped:
// an abandoned worker never reaches back into the caller's frame.
EstimatorReport EvaluateOnDatasetRobust(
    const std::string& estimator_name, const EstimatorFactory& factory,
    const Table& table, const Workload& train, const Workload& test,
    const RobustOptions& options = {}, uint64_t seed = 42);

}  // namespace arecel::robust

#endif  // ARECEL_ROBUSTNESS_RUNNER_H_
