#include "feedback/hub.h"

#include <algorithm>
#include <cmath>

namespace arecel::feedback {

namespace {
constexpr char kKeySeparator = '\x1f';
}  // namespace

FeedbackHub::FeedbackHub(FeedbackOptions options, size_t queue_capacity)
    : options_(options) {
  worker_ = std::make_unique<TruthWorker>(
      [this](const TruthJob& job, double truth) { LearnTruth(job, truth); },
      queue_capacity);
}

FeedbackHub::~FeedbackHub() { worker_->Stop(); }

OnlineSubspaceModel* FeedbackHub::ModelFor(const std::string& dataset,
                                           const std::string& estimator,
                                           bool create) const {
  const std::string key = dataset + kKeySeparator + estimator;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(key);
  if (it != models_.end()) return it->second.get();
  if (!create) return nullptr;
  auto inserted =
      models_.emplace(key, std::make_unique<OnlineSubspaceModel>(options_));
  return inserted.first->second.get();
}

double FeedbackHub::Correct(const std::string& dataset,
                            const std::string& estimator, const Query& query,
                            double base_selectivity, size_t rows) const {
  OnlineSubspaceModel* model = ModelFor(dataset, estimator, /*create=*/false);
  double residual = 0.0;
  if (model == nullptr || !model->Predict(query, &residual)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++corrections_passthrough_;
    return base_selectivity;
  }
  const double floor = SelectivityFloor(rows);
  const double corrected =
      std::clamp(std::max(base_selectivity, floor) * std::exp(residual),
                 0.0, 1.0);
  std::lock_guard<std::mutex> lock(mutex_);
  ++corrections_applied_;
  return corrected;
}

bool FeedbackHub::EnqueueTruth(TruthJob job) {
  if (job.from_cache_hit) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++cache_hit_jobs_;
  }
  return worker_->Enqueue(std::move(job));
}

void FeedbackHub::LearnTruth(const TruthJob& job, double truth) {
  if (job.deliver) {
    job.deliver(job, truth);
    return;
  }
  OnlineSubspaceModel* model =
      ModelFor(job.dataset, job.estimator, /*create=*/true);
  if (!model->bound()) {
    if (job.snapshot == nullptr) return;
    model->BindSchema(*job.snapshot);
  }
  const size_t rows = job.snapshot != nullptr ? job.snapshot->num_rows() : 0;
  const double floor = SelectivityFloor(rows);
  const double residual = std::log(std::max(truth, floor) /
                                   std::max(job.base_selectivity, floor));
  model->Observe(job.query, residual, job.version);
}

size_t FeedbackHub::InvalidateDataset(const std::string& dataset,
                                      uint64_t min_version) {
  const std::string prefix = dataset + kKeySeparator;
  std::vector<OnlineSubspaceModel*> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = models_.lower_bound(prefix);
         it != models_.end() && it->first.compare(0, prefix.size(), prefix) ==
                                    0;
         ++it)
      targets.push_back(it->second.get());
  }
  size_t dropped = 0;
  for (OnlineSubspaceModel* model : targets)
    dropped += model->InvalidateOlderThan(min_version);
  return dropped;
}

void FeedbackHub::Drain() { worker_->Drain(); }

FeedbackHubStats FeedbackHub::Stats() const {
  FeedbackHubStats stats;
  stats.worker = worker_->Stats();
  std::vector<OnlineSubspaceModel*> models;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.corrections_applied = corrections_applied_;
    stats.corrections_passthrough = corrections_passthrough_;
    stats.cache_hit_jobs = cache_hit_jobs_;
    for (const auto& [key, model] : models_) models.push_back(model.get());
  }
  for (const OnlineSubspaceModel* model : models) {
    const FeedbackModelStats m = model->Stats();
    stats.models.subspaces += m.subspaces;
    stats.models.entries += m.entries;
    stats.models.observed += m.observed;
    stats.models.predictions += m.predictions;
    stats.models.misses += m.misses;
    stats.models.evicted_entries += m.evicted_entries;
    stats.models.evicted_subspaces += m.evicted_subspaces;
    stats.models.invalidated += m.invalidated;
  }
  return stats;
}

size_t FeedbackHub::SizeBytes() const {
  std::vector<OnlineSubspaceModel*> models;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, model] : models_) models.push_back(model.get());
  }
  size_t bytes = sizeof(*this);
  for (const OnlineSubspaceModel* model : models) bytes += model->SizeBytes();
  return bytes;
}

}  // namespace arecel::feedback
