#ifndef ARECEL_FEEDBACK_TRUTH_WORKER_H_
#define ARECEL_FEEDBACK_TRUTH_WORKER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "data/table.h"
#include "workload/query.h"

namespace arecel::feedback {

// One executed query awaiting its exact ground truth. The job carries a
// shared snapshot of the table it ran against plus the data version the
// estimate was served under, so a concurrent append-update cannot make the
// worker label a query against the wrong data: the truth is computed on the
// captured snapshot and tagged with the captured version, and the following
// version-bump invalidation drops it if it raced.
struct TruthJob {
  std::string dataset;
  std::string estimator;
  Query query;
  double base_selectivity = 0.0;  // what the estimator answered.
  std::shared_ptr<const Table> snapshot;
  uint64_t version = 0;
  bool from_cache_hit = false;  // satellite: cached answers still learn.

  // When set, the hub delivers the labeled truth here INSTEAD of learning a
  // residual: the serving layer binds this to FeedbackSink::ObserveTruth for
  // estimators that adapt in-model (feedback-knn, feedback-corrected), so a
  // self-correcting model is never double-corrected by the hub.
  std::function<void(const TruthJob&, double truth)> deliver;
};

struct TruthWorkerStats {
  uint64_t enqueued = 0;
  uint64_t completed = 0;
  uint64_t dropped = 0;  // queue-full rejections (feedback is best-effort).
  uint64_t pending = 0;  // queued but not yet executed.
};

// Asynchronous ground-truth labeler: a single background thread pops jobs,
// computes the exact selectivity via the block-scan engine
// (ExecuteSelectivity, PR 3), and hands (job, truth) to the callback — which
// is where the hub folds the observation into its online models. Single
// threaded by design: truth scans are cheap but not free, and feedback is a
// best-effort side channel that must never contend with serving dispatch.
// The queue is bounded; when full, new jobs are dropped and counted.
class TruthWorker {
 public:
  using Callback = std::function<void(const TruthJob&, double truth)>;

  explicit TruthWorker(Callback callback, size_t queue_capacity = 1024);
  ~TruthWorker();

  TruthWorker(const TruthWorker&) = delete;
  TruthWorker& operator=(const TruthWorker&) = delete;

  // False when the queue is full or the worker is stopped (job dropped).
  bool Enqueue(TruthJob job);

  // Blocks until every job enqueued so far has been executed and its
  // callback returned. Tests and benches use this to make the asynchronous
  // loop deterministic: enqueue, Drain(), assert.
  void Drain();

  // Stops the thread after the current job; further Enqueues are dropped.
  void Stop();

  TruthWorkerStats Stats() const;

 private:
  void Loop();

  Callback callback_;
  const size_t queue_capacity_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // signals the worker.
  std::condition_variable idle_cv_;   // signals Drain waiters.
  std::deque<TruthJob> queue_;
  bool in_flight_ = false;
  bool stopping_ = false;
  TruthWorkerStats stats_;

  std::thread thread_;
};

}  // namespace arecel::feedback

#endif  // ARECEL_FEEDBACK_TRUTH_WORKER_H_
