#ifndef ARECEL_FEEDBACK_ONLINE_MODEL_H_
#define ARECEL_FEEDBACK_ONLINE_MODEL_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "util/archive.h"
#include "workload/query.h"

namespace arecel::feedback {

// AQO-style online feedback store (DESIGN.md §11).
//
// Executed queries feed their exact selectivities back into per-subspace
// online models, mirroring PostgreSQL AQO's `fss_hash -> online kNN`
// machinery: a query's *feature subspace* is the canonical set of
// (column, predicate-kind) pairs it touches, and within one subspace the
// store keeps a bounded ring of (feature vector, target) observations plus
// an exponential moving average of the targets. Prediction is a
// distance-weighted k-nearest-neighbour average blended with the EMA, so a
// subspace that keeps seeing the same truth converges to it while old
// observations decay away.
//
// Targets are caller-defined log-space values: the standalone feedback-knn
// estimator stores log(truth selectivity); the correction decorator stores
// the residual log(truth / base estimate). The store itself is agnostic.
//
// Determinism: the store draws no randomness. Ties in neighbour distance
// break by insertion sequence, so two instances fed the identical
// observation/prediction call sequence return bit-identical values — the
// conformance determinism invariant holds by construction.
//
// Memory bound: at most `max_subspaces` live subspaces (least recently
// *observed* evicted first) x `max_entries_per_subspace` ring slots each;
// SizeBytes() reports the resident footprint against the serving budget.
//
// Thread safety: every public method locks the one internal mutex, so
// concurrent Learn (Observe) and Estimate (Predict) calls from the serving
// threads and the truth worker are safe.

struct FeedbackOptions {
  // Neighbours consulted per prediction (AQO's aqo_k).
  size_t neighbors = 3;

  // Ring capacity per subspace (AQO's aqo_K): the newest observation
  // overwrites the oldest once full.
  size_t max_entries_per_subspace = 32;

  // Cap on distinct live subspaces; least-recently-observed is dropped.
  size_t max_subspaces = 4096;

  // EMA smoothing for the per-subspace moving residual:
  //   ema' = decay * target + (1 - decay) * ema.
  double decay = 0.3;

  // Prediction blend ceiling: (1 - b) * knn + b * ema with
  // b = ema_blend * min(1, nearest_distance / trust_radius), so an exact
  // repeat answers from its own remembered truth and the subspace-wide EMA
  // (which lets evicted-but-recent history keep influencing predictions)
  // only asserts itself toward the trust-radius edge.
  double ema_blend = 0.25;

  // Targets are clamped to [-max_abs_target, +max_abs_target] (log units)
  // so one pathological observation cannot blow up later corrections.
  double max_abs_target = 12.0;

  // Predict() answers only when the nearest remembered observation lies
  // within this L2 feature distance (features are normalized to [0, 1] per
  // bound). Beyond it the store reports "never observed" and the caller
  // falls back — which is what makes the correction decorator safe: a
  // residual learned far away in the subspace is not applied.
  double trust_radius = 0.3;
};

// Knobs from the environment:
//   ARECEL_FEEDBACK_K          neighbors
//   ARECEL_FEEDBACK_ENTRIES    max_entries_per_subspace
//   ARECEL_FEEDBACK_SUBSPACES  max_subspaces
//   ARECEL_FEEDBACK_DECAY      decay
//   ARECEL_FEEDBACK_BLEND      ema_blend
//   ARECEL_FEEDBACK_RADIUS     trust_radius
FeedbackOptions FeedbackOptionsFromEnv();

// Per-column normalization metadata captured from a table snapshot (schema
// is append-stable, so one bind per dataset version suffices).
struct ColumnSpan {
  double lo = 0.0;
  double hi = 1.0;
  bool categorical = false;
};

struct FeedbackModelStats {
  size_t subspaces = 0;
  size_t entries = 0;
  uint64_t observed = 0;
  uint64_t predictions = 0;        // Predict calls that found a subspace.
  uint64_t misses = 0;             // Predict calls with no learned subspace.
  uint64_t evicted_entries = 0;    // ring overwrites.
  uint64_t evicted_subspaces = 0;  // LRU subspace drops.
  uint64_t invalidated = 0;        // entries dropped by version bumps.
};

class OnlineSubspaceModel {
 public:
  explicit OnlineSubspaceModel(FeedbackOptions options = {});

  // Captures per-column spans for feature normalization. Must be called
  // before Observe/Predict; re-binding after an append-update refreshes the
  // spans (existing entries were recorded under the old spans, which is why
  // version invalidation drops them first).
  void BindSchema(const Table& table);
  bool bound() const;

  // Canonical feature-subspace fingerprint of a query: predicates sorted by
  // column with an eq/range kind tag; predicates spanning a column's whole
  // bound domain are vacuous and excluded, so appending a full-domain
  // conjunct never moves a learned prediction. Exposed for tests.
  std::string SubspaceFingerprint(const Query& query) const;

  // Learns one executed-query truth. `target` is the caller's log-space
  // value; `version` tags the entry for append-update invalidation.
  void Observe(const Query& query, double target, uint64_t version);

  // Distance-weighted kNN + EMA blend for the query's subspace. Returns
  // false (and leaves *target untouched) when the subspace has never been
  // observed or every remembered observation lies beyond trust_radius.
  bool Predict(const Query& query, double* target) const;

  // Drops every entry recorded under a version < `min_version` (the §5.1
  // append-update bump): stale truths must not correct fresh models. A
  // subspace losing all entries is removed; a subspace losing some has its
  // EMA rebuilt from the survivors. Returns entries dropped.
  size_t InvalidateOlderThan(uint64_t min_version);

  void Clear();

  FeedbackModelStats Stats() const;
  size_t SizeBytes() const;
  const FeedbackOptions& options() const { return options_; }

  // Persistence (spans + subspace rings + EMAs), bit-exact round-trip.
  bool Serialize(ByteWriter* writer) const;
  bool Deserialize(ByteReader* reader);

 private:
  struct Entry {
    std::vector<double> features;
    double target = 0.0;
    uint64_t version = 0;
    uint64_t seq = 0;  // global insertion order; deterministic tie-break.
  };

  struct Subspace {
    std::vector<Entry> ring;  // bounded by max_entries_per_subspace.
    size_t next = 0;          // ring cursor.
    double ema = 0.0;
    bool ema_valid = false;
    uint64_t last_touch = 0;  // for LRU eviction across subspaces.
  };

  std::string FingerprintLocked(const Query& query) const;
  std::vector<double> Features(const Query& query) const;
  bool VacuousPredicate(const Predicate& p) const;
  void EvictSubspacesLocked();

  FeedbackOptions options_;

  mutable std::mutex mutex_;
  std::vector<ColumnSpan> spans_;
  // Ordered map: Serialize walks it in key order, so persisted bytes are
  // independent of hashing.
  std::map<std::string, Subspace> subspaces_;
  uint64_t seq_ = 0;
  mutable FeedbackModelStats stats_;
};

// Floor used when mapping selectivities into log space (and on both sides
// of a residual ratio): half a tuple, so a truth of zero stays finite.
double SelectivityFloor(size_t rows);

}  // namespace arecel::feedback

#endif  // ARECEL_FEEDBACK_ONLINE_MODEL_H_
