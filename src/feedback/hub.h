#ifndef ARECEL_FEEDBACK_HUB_H_
#define ARECEL_FEEDBACK_HUB_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "feedback/online_model.h"
#include "feedback/truth_worker.h"

namespace arecel::feedback {

struct FeedbackHubStats {
  TruthWorkerStats worker;
  FeedbackModelStats models;        // aggregated over all residual models.
  uint64_t corrections_applied = 0; // Correct() calls that moved an estimate.
  uint64_t corrections_passthrough = 0;  // no learned subspace; base kept.
  uint64_t cache_hit_jobs = 0;      // truth jobs born from cache hits.
};

// The serving-side feedback loop: one residual OnlineSubspaceModel per
// (dataset, estimator) pair, fed asynchronously by a TruthWorker. The
// residual target is log(truth / base-estimate) with a half-tuple
// selectivity floor, so Correct() multiplies the base estimate by the
// learned exp(residual) — an estimator that keeps over-estimating a
// subspace gets pulled down toward the executed truth, per-subspace, like
// AQO's learn_sample over fss_hash spaces.
//
// Version discipline: truth jobs carry the data version their estimate was
// served under; InvalidateDataset(dataset, new_version) — called from the
// §5.1 append-update path — drops every entry learned under older versions,
// so stale truths never correct fresh models.
class FeedbackHub {
 public:
  explicit FeedbackHub(FeedbackOptions options = FeedbackOptionsFromEnv(),
                       size_t queue_capacity = 1024);
  ~FeedbackHub();

  FeedbackHub(const FeedbackHub&) = delete;
  FeedbackHub& operator=(const FeedbackHub&) = delete;

  // Applies the learned residual for the query's subspace to
  // `base_selectivity`. Returns the base unchanged when nothing has been
  // learned for this (dataset, estimator, subspace) yet. `rows` sets the
  // half-tuple floor that keeps the log ratio finite.
  double Correct(const std::string& dataset, const std::string& estimator,
                 const Query& query, double base_selectivity,
                 size_t rows) const;

  // Queues an executed query for asynchronous exact labeling. Best-effort:
  // false means the queue was full and the job was dropped.
  bool EnqueueTruth(TruthJob job);

  // Folds one labeled truth into the residual model — the worker callback,
  // also callable directly for deterministic tests. Jobs with a `deliver`
  // override are handed off instead (see TruthJob).
  void LearnTruth(const TruthJob& job, double truth);

  // Drops feedback learned under data versions older than `min_version`
  // for every estimator serving `dataset`. Returns entries dropped.
  size_t InvalidateDataset(const std::string& dataset, uint64_t min_version);

  // Blocks until all queued truth jobs have been learned.
  void Drain();

  FeedbackHubStats Stats() const;
  size_t SizeBytes() const;
  const FeedbackOptions& options() const { return options_; }

 private:
  OnlineSubspaceModel* ModelFor(const std::string& dataset,
                                const std::string& estimator,
                                bool create) const;

  FeedbackOptions options_;

  mutable std::mutex mutex_;
  // Key: dataset + '\x1f' + estimator. Ordered so InvalidateDataset can walk
  // the dataset's contiguous key range.
  mutable std::map<std::string, std::unique_ptr<OnlineSubspaceModel>> models_;
  mutable uint64_t corrections_applied_ = 0;
  mutable uint64_t corrections_passthrough_ = 0;
  uint64_t cache_hit_jobs_ = 0;

  std::unique_ptr<TruthWorker> worker_;  // last member: stops before maps die.
};

}  // namespace arecel::feedback

#endif  // ARECEL_FEEDBACK_HUB_H_
