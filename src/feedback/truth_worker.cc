#include "feedback/truth_worker.h"

#include <memory>
#include <utility>

#include "scan/block_scan.h"

namespace arecel::feedback {

TruthWorker::TruthWorker(Callback callback, size_t queue_capacity)
    : callback_(std::move(callback)),
      queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  thread_ = std::thread([this] { Loop(); });
}

TruthWorker::~TruthWorker() { Stop(); }

bool TruthWorker::Enqueue(TruthJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= queue_capacity_) {
      ++stats_.dropped;
      return false;
    }
    queue_.push_back(std::move(job));
    ++stats_.enqueued;
  }
  work_cv_.notify_one();
  return true;
}

void TruthWorker::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && !in_flight_) || stopping_;
  });
}

void TruthWorker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already stopped; the thread may even be joined.
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

TruthWorkerStats TruthWorker::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TruthWorkerStats stats = stats_;
  stats.pending = queue_.size() + (in_flight_ ? 1 : 0);
  return stats;
}

void TruthWorker::Loop() {
  // Consecutive jobs usually label queries against the same table snapshot
  // (a version bump swaps in a new shared_ptr), so the worker keeps one
  // scanner alive per snapshot and amortizes the synopsis build across the
  // whole run of jobs instead of paying a one-shot scan per job. Holding
  // `cached_snapshot` keeps the table the scanner points into alive.
  std::shared_ptr<const Table> cached_snapshot;
  std::unique_ptr<scan::BlockScanner> scanner;
  for (;;) {
    TruthJob job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
    }
    double truth = 0.0;
    if (job.snapshot != nullptr) {
      if (job.snapshot != cached_snapshot) {
        cached_snapshot = job.snapshot;
        scanner = std::make_unique<scan::BlockScanner>(*cached_snapshot);
      }
      truth = scanner->Selectivity(job.query);
    }
    if (callback_) callback_(job, truth);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ = false;
      ++stats_.completed;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace arecel::feedback
