#include "feedback/online_model.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace arecel::feedback {

namespace {

// Weight floor: an exact feature match must dominate every non-zero
// distance without dividing by zero.
constexpr double kDistanceEpsilon = 1e-6;

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end == value) ? fallback : parsed;
}

size_t EnvSize(const char* name, size_t fallback) {
  const double v = EnvDouble(name, static_cast<double>(fallback));
  return v <= 0 ? fallback : static_cast<size_t>(v);
}

}  // namespace

double SelectivityFloor(size_t rows) {
  return rows == 0 ? 1e-6 : 0.5 / static_cast<double>(rows);
}

FeedbackOptions FeedbackOptionsFromEnv() {
  FeedbackOptions options;
  options.neighbors = EnvSize("ARECEL_FEEDBACK_K", options.neighbors);
  options.max_entries_per_subspace =
      EnvSize("ARECEL_FEEDBACK_ENTRIES", options.max_entries_per_subspace);
  options.max_subspaces =
      EnvSize("ARECEL_FEEDBACK_SUBSPACES", options.max_subspaces);
  options.decay = EnvDouble("ARECEL_FEEDBACK_DECAY", options.decay);
  options.ema_blend = EnvDouble("ARECEL_FEEDBACK_BLEND", options.ema_blend);
  options.trust_radius =
      EnvDouble("ARECEL_FEEDBACK_RADIUS", options.trust_radius);
  options.decay = std::clamp(options.decay, 0.0, 1.0);
  options.ema_blend = std::clamp(options.ema_blend, 0.0, 1.0);
  if (options.trust_radius <= 0) options.trust_radius = 0.3;
  return options;
}

OnlineSubspaceModel::OnlineSubspaceModel(FeedbackOptions options)
    : options_(options) {
  options_.neighbors = std::max<size_t>(1, options_.neighbors);
  options_.max_entries_per_subspace =
      std::max<size_t>(1, options_.max_entries_per_subspace);
  options_.max_subspaces = std::max<size_t>(1, options_.max_subspaces);
}

void OnlineSubspaceModel::BindSchema(const Table& table) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  spans_.reserve(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const Column& column = table.column(c);
    ColumnSpan span;
    if (!column.domain.empty()) {
      span.lo = column.min();
      span.hi = column.max();
    }
    span.categorical = column.categorical;
    spans_.push_back(span);
  }
}

bool OnlineSubspaceModel::bound() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !spans_.empty();
}

bool OnlineSubspaceModel::VacuousPredicate(const Predicate& p) const {
  if (p.column < 0 || static_cast<size_t>(p.column) >= spans_.size())
    return false;
  const ColumnSpan& span = spans_[static_cast<size_t>(p.column)];
  return p.lo <= span.lo && p.hi >= span.hi;
}

std::string OnlineSubspaceModel::SubspaceFingerprint(
    const Query& query) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return FingerprintLocked(query);
}

std::string OnlineSubspaceModel::FingerprintLocked(const Query& query) const {
  std::vector<Predicate> sorted;
  sorted.reserve(query.predicates.size());
  for (const Predicate& p : query.predicates)
    if (!VacuousPredicate(p)) sorted.push_back(p);
  std::sort(sorted.begin(), sorted.end(),
            [](const Predicate& a, const Predicate& b) {
              if (a.column != b.column) return a.column < b.column;
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  std::string key;
  key.reserve(sorted.size() * (sizeof(int32_t) + 1));
  for (const Predicate& p : sorted) {
    const int32_t column = p.column;
    key.append(reinterpret_cast<const char*>(&column), sizeof(column));
    key.push_back(p.is_equality() ? 'e' : 'r');
  }
  return key;
}

std::vector<double> OnlineSubspaceModel::Features(const Query& query) const {
  // Caller holds mutex_. Same canonical order as the fingerprint: sorted
  // non-vacuous predicates, two features (normalized lo, hi) each.
  std::vector<Predicate> sorted;
  sorted.reserve(query.predicates.size());
  for (const Predicate& p : query.predicates)
    if (!VacuousPredicate(p)) sorted.push_back(p);
  std::sort(sorted.begin(), sorted.end(),
            [](const Predicate& a, const Predicate& b) {
              if (a.column != b.column) return a.column < b.column;
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  std::vector<double> features;
  features.reserve(sorted.size() * 2);
  for (const Predicate& p : sorted) {
    double lo = 0.0, hi = 1.0;
    if (p.column >= 0 && static_cast<size_t>(p.column) < spans_.size()) {
      const ColumnSpan& span = spans_[static_cast<size_t>(p.column)];
      const double width = span.hi - span.lo;
      if (width > 0) {
        lo = (std::clamp(p.lo, span.lo, span.hi) - span.lo) / width;
        hi = (std::clamp(p.hi, span.lo, span.hi) - span.lo) / width;
      } else {
        lo = hi = 0.0;
      }
    }
    features.push_back(lo);
    features.push_back(hi);
  }
  return features;
}

void OnlineSubspaceModel::Observe(const Query& query, double target,
                                  uint64_t version) {
  if (!std::isfinite(target)) return;  // refuse to learn garbage.
  std::lock_guard<std::mutex> lock(mutex_);
  target = std::clamp(target, -options_.max_abs_target,
                      options_.max_abs_target);
  const std::string key = FingerprintLocked(query);
  Subspace& subspace = subspaces_[key];
  ++seq_;
  Entry entry;
  entry.features = Features(query);
  entry.target = target;
  entry.version = version;
  entry.seq = seq_;
  if (subspace.ring.size() < options_.max_entries_per_subspace) {
    subspace.ring.push_back(std::move(entry));
    subspace.next = subspace.ring.size() % options_.max_entries_per_subspace;
  } else {
    subspace.ring[subspace.next] = std::move(entry);
    subspace.next = (subspace.next + 1) % subspace.ring.size();
    ++stats_.evicted_entries;
  }
  if (subspace.ema_valid) {
    subspace.ema =
        options_.decay * target + (1.0 - options_.decay) * subspace.ema;
  } else {
    subspace.ema = target;
    subspace.ema_valid = true;
  }
  subspace.last_touch = seq_;
  ++stats_.observed;
  EvictSubspacesLocked();
}

void OnlineSubspaceModel::EvictSubspacesLocked() {
  while (subspaces_.size() > options_.max_subspaces) {
    auto victim = subspaces_.begin();
    for (auto it = subspaces_.begin(); it != subspaces_.end(); ++it)
      if (it->second.last_touch < victim->second.last_touch) victim = it;
    subspaces_.erase(victim);
    ++stats_.evicted_subspaces;
  }
}

bool OnlineSubspaceModel::Predict(const Query& query, double* target) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = FingerprintLocked(query);
  auto it = subspaces_.find(key);
  if (it == subspaces_.end() || it->second.ring.empty()) {
    ++stats_.misses;
    return false;
  }
  const Subspace& subspace = it->second;
  const std::vector<double> features = Features(query);

  struct Scored {
    double distance;
    uint64_t seq;
    double target;
  };
  std::vector<Scored> scored;
  scored.reserve(subspace.ring.size());
  for (const Entry& entry : subspace.ring) {
    double d2 = 0.0;
    const size_t n = std::min(entry.features.size(), features.size());
    for (size_t i = 0; i < n; ++i) {
      const double diff = entry.features[i] - features[i];
      d2 += diff * diff;
    }
    scored.push_back({std::sqrt(d2), entry.seq, entry.target});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a,
                                             const Scored& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.seq > b.seq;  // prefer the newer observation on exact ties.
  });
  if (scored.front().distance > options_.trust_radius) {
    ++stats_.misses;
    return false;
  }
  const size_t k = std::min(options_.neighbors, scored.size());
  double weight_sum = 0.0, weighted = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (kDistanceEpsilon + scored[i].distance);
    weight_sum += w;
    weighted += w * scored[i].target;
  }
  double prediction = weighted / weight_sum;
  if (subspace.ema_valid) {
    // Distance-aware blend: an exact repeat trusts its own remembered truth
    // fully (blend 0); the subspace-wide EMA only asserts itself as the
    // nearest neighbour recedes toward the trust radius. A fixed blend
    // would pull even a distance-0 repeat toward the subspace average,
    // which inflates q-error whenever one subspace spans very different
    // selectivities.
    const double ratio =
        options_.trust_radius > 0
            ? scored.front().distance / options_.trust_radius
            : 0.0;
    const double blend = options_.ema_blend * std::min(1.0, ratio);
    prediction = (1.0 - blend) * prediction + blend * subspace.ema;
  }
  *target = prediction;
  ++stats_.predictions;
  return true;
}

size_t OnlineSubspaceModel::InvalidateOlderThan(uint64_t min_version) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t dropped = 0;
  for (auto it = subspaces_.begin(); it != subspaces_.end();) {
    Subspace& subspace = it->second;
    std::vector<Entry> survivors;
    survivors.reserve(subspace.ring.size());
    for (Entry& entry : subspace.ring) {
      if (entry.version >= min_version)
        survivors.push_back(std::move(entry));
      else
        ++dropped;
    }
    if (survivors.empty()) {
      it = subspaces_.erase(it);
      continue;
    }
    if (survivors.size() != subspace.ring.size()) {
      // Rebuild the ring in insertion order and replay the EMA over the
      // survivors, exactly as if only they had ever been observed —
      // deterministic, and stale truths leave no residue.
      std::sort(survivors.begin(), survivors.end(),
                [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
      subspace.ema_valid = false;
      for (const Entry& entry : survivors) {
        if (subspace.ema_valid) {
          subspace.ema = options_.decay * entry.target +
                         (1.0 - options_.decay) * subspace.ema;
        } else {
          subspace.ema = entry.target;
          subspace.ema_valid = true;
        }
      }
      subspace.ring = std::move(survivors);
      subspace.next =
          subspace.ring.size() % options_.max_entries_per_subspace;
    }
    ++it;
  }
  stats_.invalidated += dropped;
  return dropped;
}

void OnlineSubspaceModel::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  subspaces_.clear();
  seq_ = 0;
}

FeedbackModelStats OnlineSubspaceModel::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FeedbackModelStats stats = stats_;
  stats.subspaces = subspaces_.size();
  stats.entries = 0;
  for (const auto& [key, subspace] : subspaces_)
    stats.entries += subspace.ring.size();
  return stats;
}

size_t OnlineSubspaceModel::SizeBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = sizeof(*this) + spans_.size() * sizeof(ColumnSpan);
  for (const auto& [key, subspace] : subspaces_) {
    bytes += key.size() + sizeof(Subspace);
    for (const Entry& entry : subspace.ring)
      bytes += sizeof(Entry) + entry.features.size() * sizeof(double);
  }
  return bytes;
}

bool OnlineSubspaceModel::Serialize(ByteWriter* writer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  writer->U32(0xFEEDBAC1);
  writer->U64(options_.neighbors);
  writer->U64(options_.max_entries_per_subspace);
  writer->U64(options_.max_subspaces);
  writer->F64(options_.decay);
  writer->F64(options_.ema_blend);
  writer->F64(options_.max_abs_target);
  writer->F64(options_.trust_radius);
  writer->U64(spans_.size());
  for (const ColumnSpan& span : spans_) {
    writer->F64(span.lo);
    writer->F64(span.hi);
    writer->U32(span.categorical ? 1 : 0);
  }
  writer->U64(seq_);
  writer->U64(subspaces_.size());
  for (const auto& [key, subspace] : subspaces_) {
    writer->Str(key);
    writer->U64(subspace.ring.size());
    for (const Entry& entry : subspace.ring) {
      writer->Doubles(entry.features);
      writer->F64(entry.target);
      writer->U64(entry.version);
      writer->U64(entry.seq);
    }
    writer->U64(subspace.next);
    writer->F64(subspace.ema);
    writer->U32(subspace.ema_valid ? 1 : 0);
    writer->U64(subspace.last_touch);
  }
  return true;
}

bool OnlineSubspaceModel::Deserialize(ByteReader* reader) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint32_t magic = 0;
  if (!reader->U32(&magic) || magic != 0xFEEDBAC1) return false;
  uint64_t neighbors = 0, entries_cap = 0, subspaces_cap = 0;
  if (!reader->U64(&neighbors) || !reader->U64(&entries_cap) ||
      !reader->U64(&subspaces_cap))
    return false;
  FeedbackOptions options;
  if (!reader->F64(&options.decay) || !reader->F64(&options.ema_blend) ||
      !reader->F64(&options.max_abs_target) ||
      !reader->F64(&options.trust_radius))
    return false;
  options.neighbors = static_cast<size_t>(neighbors);
  options.max_entries_per_subspace = static_cast<size_t>(entries_cap);
  options.max_subspaces = static_cast<size_t>(subspaces_cap);
  if (options.neighbors == 0 || options.max_entries_per_subspace == 0 ||
      options.max_subspaces == 0)
    return false;

  uint64_t span_count = 0;
  if (!reader->U64(&span_count)) return false;
  std::vector<ColumnSpan> spans(static_cast<size_t>(span_count));
  for (ColumnSpan& span : spans) {
    uint32_t categorical = 0;
    if (!reader->F64(&span.lo) || !reader->F64(&span.hi) ||
        !reader->U32(&categorical))
      return false;
    span.categorical = categorical != 0;
  }
  uint64_t seq = 0, subspace_count = 0;
  if (!reader->U64(&seq) || !reader->U64(&subspace_count)) return false;

  std::map<std::string, Subspace> subspaces;
  for (uint64_t s = 0; s < subspace_count; ++s) {
    std::string key;
    uint64_t ring_size = 0;
    if (!reader->Str(&key) || !reader->U64(&ring_size)) return false;
    if (ring_size > entries_cap) return false;
    Subspace subspace;
    subspace.ring.resize(static_cast<size_t>(ring_size));
    for (Entry& entry : subspace.ring) {
      if (!reader->Doubles(&entry.features) || !reader->F64(&entry.target) ||
          !reader->U64(&entry.version) || !reader->U64(&entry.seq))
        return false;
    }
    uint64_t next = 0, last_touch = 0;
    uint32_t ema_valid = 0;
    if (!reader->U64(&next) || !reader->F64(&subspace.ema) ||
        !reader->U32(&ema_valid) || !reader->U64(&last_touch))
      return false;
    if (next >= std::max<uint64_t>(1, entries_cap) && next != 0) return false;
    subspace.next = static_cast<size_t>(next);
    subspace.ema_valid = ema_valid != 0;
    subspace.last_touch = last_touch;
    subspaces[std::move(key)] = std::move(subspace);
  }

  options_ = options;
  spans_ = std::move(spans);
  seq_ = seq;
  subspaces_ = std::move(subspaces);
  stats_ = FeedbackModelStats{};
  return true;
}

}  // namespace arecel::feedback
