#ifndef ARECEL_SERVE_SERVER_H_
#define ARECEL_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "feedback/hub.h"
#include "robustness/failure.h"
#include "robustness/runner.h"
#include "serve/cache.h"
#include "serve/model_manager.h"
#include "store/model_store.h"
#include "workload/query.h"

namespace arecel::store {
class MaintenanceWorker;
}  // namespace arecel::store

namespace arecel::serve {

// Serving-layer configuration. Environment knobs (ServeOptionsFromEnv):
//   ARECEL_SERVE_CACHE_MB  estimate-cache capacity in MB (default 64;
//                          0 disables the cache entirely)
//   ARECEL_SERVE_THREADS   batch dispatch width (default: the scan
//                          engine's worker count)
//   ARECEL_FEEDBACK        non-zero enables the online query-feedback loop
//                          (default off: serving behavior is bit-identical
//                          to the pre-feedback server unless opted in)
//   ARECEL_FEEDBACK_QUEUE  truth-worker queue capacity (default 1024)
//   ARECEL_STORE_DIR       enables the crash-safe versioned model store
//                          (src/store/, DESIGN.md §12): cold loads become
//                          warm starts through checksum-verified recovery,
//                          and an embedded MaintenanceWorker owns staleness
//                          refresh + write-back off the serving threads
//                          (ARECEL_STORE_MAX_GENERATIONS,
//                          ARECEL_MAINT_INTERVAL_MS)
// plus the ARECEL_FEEDBACK_* store knobs FeedbackOptionsFromEnv reads and
// the robustness knobs RobustOptionsFromEnv already reads —
// ARECEL_QUERY_DEADLINE arms the per-request watchdog.
struct ServeOptions {
  size_t cache_bytes = 64ull << 20;
  size_t cache_shards = 16;
  bool cache_enabled = true;
  int dispatch_threads = 0;  // <= 0: ParallelWorkerCount().

  // Per-request deadline reuses RobustOptions.query_deadline_seconds; <= 0
  // runs inference inline with no watchdog thread. The failure taxonomy is
  // shared with the bench harness (kEstimateTimeout / kEstimateThrew / ...).
  robust::RobustOptions robust;

  // The paper's §5.1 dynamic-update append fraction (20%).
  double update_fraction = 0.2;

  // Online query-feedback loop (src/feedback/, DESIGN.md §11). Off by
  // default; when enabled every served estimate is asynchronously labeled
  // with its exact selectivity and the truth feeds either the estimator
  // itself (FeedbackSink models) or a per-(dataset, estimator) residual
  // correction applied to future answers.
  bool feedback_enabled = false;
  size_t feedback_queue = 1024;
  feedback::FeedbackOptions feedback;

  ModelManagerOptions manager;
};

ServeOptions ServeOptionsFromEnv();

// One served estimate. `cardinality` is selectivity x the rows the serving
// model was trained on — under stale-while-revalidate that is the stale
// model's view until the background refresh swaps in the new one.
struct EstimateResponse {
  bool ok = false;
  FailureKind failure = FailureKind::kNone;
  std::string detail;
  double selectivity = 0.0;
  double cardinality = 0.0;
  bool cache_hit = false;
  uint64_t data_version = 0;
  double latency_ms = 0.0;
};

// Latency summary for one (dataset, estimator) serving key, computed from
// a bounded window of recent requests (util/stats.h percentiles).
struct ModelLatencyStats {
  std::string model;  // "dataset/estimator".
  uint64_t requests = 0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

struct ServerStats {
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t estimate_errors = 0;    // threw or non-finite.
  uint64_t model_failures = 0;     // GetModel returned no model.
  uint64_t updates = 0;
  CacheStats cache;
  ManagerCounters manager;
  bool feedback_enabled = false;
  feedback::FeedbackHubStats feedback;
  std::vector<ModelLatencyStats> latencies;
  bool store_enabled = false;
  store::StoreStats store;  // zero-valued unless store_enabled.
  // ML compute configuration of this process, so cross-machine serving
  // numbers are interpretable (ml/kernels.h): the active kernel backend
  // ("reference"/"fast"/"quant"), the resolved SIMD tier ("avx512"/
  // "avx2-fma"/"portable"), and the raw CPUID feature flags.
  std::string ml_backend;
  std::string ml_simd;
  std::string ml_cpu_flags;
};

// In-process cardinality-estimation server: the long-lived path the bench
// binaries never had. Wraps a ModelManager (train-once / load / refresh)
// and an EstimateCache (sharded LRU over canonical predicate fingerprints)
// behind single and batched Estimate calls.
//
// Threading: every public method is safe to call concurrently. Batches fan
// out across dispatch_threads when the serving model's inference is a pure
// read (CardinalityEstimator::ThreadSafeEstimates); stochastic-inference
// models are dispatched sequentially under the model's inference mutex, so
// their per-instance counters never race.
//
// Staleness: Update() appends 20% correlated rows (the paper's §5.1
// procedure), bumps the dataset's data version, drops the dataset's cache
// entries, and kicks background retrains. Until a retrain lands, requests
// are served by the stale model — the §6.4 "estimator lags behind data"
// regime — and cache keys carry the stale version so a refreshed model can
// never serve a stale cached estimate.
class EstimatorServer {
 public:
  explicit EstimatorServer(ServeOptions options);
  EstimatorServer() : EstimatorServer(ServeOptionsFromEnv()) {}
  ~EstimatorServer();  // stops the maintenance worker before the manager.

  // Registers a dataset snapshot at data version 0.
  void RegisterDataset(const std::string& name, Table table);

  // Trains (or loads) the model if cold — single-flight — then serves the
  // estimate, consulting the cache first. Cache hits return exactly the
  // selectivity the estimator produced when the entry was filled; for
  // deterministic-inference estimators that is bit-identical to what a
  // fresh call would return.
  EstimateResponse Estimate(const std::string& dataset,
                            const std::string& estimator, const Query& query);

  // Batched dispatch: resolves the model once, then fans the queries out
  // across the dispatch threads. Responses are positionally aligned with
  // `queries`.
  std::vector<EstimateResponse> EstimateBatch(
      const std::string& dataset, const std::string& estimator,
      const std::vector<Query>& queries);

  // The §5.1 data update + staleness protocol described above. Returns the
  // new data version (0 if the dataset is unknown).
  uint64_t Update(const std::string& dataset, uint64_t seed = 97);

  // Blocks until every background model refresh has landed.
  void WaitForRefreshes() { manager_.WaitForRefreshes(); }

  // Runtime cache toggle (the bench sweeps cache on/off on one server).
  void set_cache_enabled(bool enabled) { cache_enabled_.store(enabled); }
  bool cache_enabled() const { return cache_enabled_.load(); }
  void ClearCache() { cache_.Clear(); }

  // The online feedback loop; null unless options.feedback_enabled. Tests
  // and benches call DrainFeedback() to make the asynchronous truth path
  // deterministic before asserting on corrected estimates.
  feedback::FeedbackHub* feedback() { return feedback_.get(); }
  void DrainFeedback() {
    if (feedback_ != nullptr) feedback_->Drain();
  }

  ServerStats Stats() const;

  ModelManager& manager() { return manager_; }
  const ServeOptions& options() const { return options_; }

  // The embedded maintenance worker; null unless a model store is
  // configured. Tests call TickNow() through this for determinism.
  store::MaintenanceWorker* maintenance() { return maintenance_.get(); }

 private:
  struct LatencyWindow {
    std::vector<double> values;  // ring buffer once full.
    size_t next = 0;
    bool full = false;
    uint64_t requests = 0;
  };

  // Core of Estimate/EstimateBatch once the model is resolved.
  EstimateResponse EstimateWithModel(
      const std::string& dataset, const std::string& estimator,
      const std::shared_ptr<const ServedModel>& model, const Query& query);

  // Runs one inference under the per-request deadline (or inline when
  // disabled), filling failure/detail on timeout/throw.
  bool RunInference(const std::string& dataset, const std::string& estimator,
                    const std::shared_ptr<const ServedModel>& model,
                    const Query& query, double* selectivity,
                    EstimateResponse* response);

  void RecordLatency(const std::string& dataset, const std::string& estimator,
                     double ms);

  // Queues the served query for asynchronous exact labeling (no-op when the
  // loop is disabled). `base_selectivity` is the pre-correction estimate.
  void EnqueueFeedback(const std::string& dataset,
                       const std::string& estimator,
                       const std::shared_ptr<const ServedModel>& model,
                       const Query& query, double base_selectivity,
                       bool from_cache_hit);

  ServeOptions options_;
  ModelManager manager_;
  EstimateCache cache_;
  std::atomic<bool> cache_enabled_;
  std::unique_ptr<feedback::FeedbackHub> feedback_;
  // Declared after manager_: destroyed (and Stop()ped) first, so the
  // worker's non-owning manager alias never dangles.
  std::unique_ptr<store::MaintenanceWorker> maintenance_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> estimate_errors_{0};
  std::atomic<uint64_t> model_failures_{0};
  std::atomic<uint64_t> updates_{0};

  mutable std::mutex latency_mutex_;
  std::map<std::string, LatencyWindow> latencies_;
};

}  // namespace arecel::serve

#endif  // ARECEL_SERVE_SERVER_H_
