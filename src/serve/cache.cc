#include "serve/cache.h"

#include <algorithm>
#include <cstring>

namespace arecel::serve {

namespace {

// FNV-1a, the same fingerprint family the sweep journal uses.
uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

void AppendRaw(std::string* out, const void* data, size_t bytes) {
  out->append(static_cast<const char*>(data), bytes);
}

void AppendBound(std::string* out, double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0 to one bit pattern.
  AppendRaw(out, &v, sizeof(v));
}

// Approximate resident cost of one entry: key bytes plus list/map node
// overhead. Exactness does not matter — the knob is "roughly N MB".
size_t EntryBytes(const std::string& key) { return key.size() + 96; }

// Table-set identifier: table count, then each name '\x1f'-terminated (the
// caller passes them sorted). A single-table Query uses one anonymous
// table, so its prefix (count 1, empty name) can never equal a join
// query's (count >= 2, or count 1 with a non-empty name) — the fix for the
// single-vs-join fingerprint aliasing.
void AppendTableSetPrefix(std::string* out,
                          const std::vector<std::string>& sorted_names) {
  const uint32_t count = static_cast<uint32_t>(sorted_names.size());
  AppendRaw(out, &count, sizeof(count));
  for (const std::string& name : sorted_names) {
    *out += name;
    *out += '\x1f';
  }
}

void AppendPredicateBytes(std::string* out,
                          const std::vector<Predicate>& predicates) {
  std::vector<Predicate> sorted = predicates;
  std::sort(sorted.begin(), sorted.end(),
            [](const Predicate& a, const Predicate& b) {
              if (a.column != b.column) return a.column < b.column;
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  for (const Predicate& p : sorted) {
    const int32_t column = p.column;
    AppendRaw(out, &column, sizeof(column));
    AppendBound(out, p.lo);
    AppendBound(out, p.hi);
  }
}

}  // namespace

std::string CanonicalPredicateKey(const Query& query) {
  std::string key;
  key.reserve(sizeof(uint32_t) + 1 +
              query.predicates.size() * (sizeof(int32_t) + 2 * sizeof(double)));
  AppendTableSetPrefix(&key, {std::string()});
  AppendPredicateBytes(&key, query.predicates);
  return key;
}

std::string CanonicalJoinKey(const JoinQuery& query) {
  const std::vector<std::string> names = query.SortedTableNames();
  std::string key;
  AppendTableSetPrefix(&key, names);
  for (const std::string& name : names) {
    key += name;
    key += '\x1f';
    const TableSlice* slice = query.FindTable(name);
    AppendPredicateBytes(&key, slice->predicates);
    key += '\x1f';
  }
  // Edges: order each edge's endpoints, then sort the edge list, so the
  // fingerprint is insensitive to edge orientation and order.
  struct Endpoint {
    std::string table;
    int32_t column;
  };
  std::vector<std::pair<Endpoint, Endpoint>> edges;
  edges.reserve(query.joins.size());
  for (const JoinEdge& e : query.joins) {
    Endpoint left{e.left_table, e.left_column};
    Endpoint right{e.right_table, e.right_column};
    const bool ordered = left.table < right.table ||
                         (left.table == right.table &&
                          left.column <= right.column);
    if (!ordered) std::swap(left, right);
    edges.emplace_back(std::move(left), std::move(right));
  }
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (a.first.table != b.first.table) return a.first.table < b.first.table;
    if (a.first.column != b.first.column)
      return a.first.column < b.first.column;
    if (a.second.table != b.second.table)
      return a.second.table < b.second.table;
    return a.second.column < b.second.column;
  });
  for (const auto& [left, right] : edges) {
    key += left.table;
    key += '\x1f';
    AppendRaw(&key, &left.column, sizeof(left.column));
    key += right.table;
    key += '\x1f';
    AppendRaw(&key, &right.column, sizeof(right.column));
  }
  return key;
}

std::string DatasetKeyPrefix(const std::string& dataset) {
  return dataset + '\x1f';
}

std::string EstimateCacheKey(const std::string& dataset,
                             const std::string& estimator,
                             uint64_t data_version, const Query& query) {
  std::string key = DatasetKeyPrefix(dataset);
  key += estimator;
  key += '\x1f';
  AppendRaw(&key, &data_version, sizeof(data_version));
  key += CanonicalPredicateKey(query);
  return key;
}

std::string JoinEstimateCacheKey(const std::string& dataset,
                                 const std::string& estimator,
                                 uint64_t data_version,
                                 const JoinQuery& query) {
  std::string key = DatasetKeyPrefix(dataset);
  key += estimator;
  key += '\x1f';
  AppendRaw(&key, &data_version, sizeof(data_version));
  key += CanonicalJoinKey(query);
  return key;
}

EstimateCache::EstimateCache(size_t capacity_bytes, size_t num_shards)
    : capacity_bytes_(capacity_bytes) {
  num_shards = std::max<size_t>(1, num_shards);
  shard_capacity_bytes_ = capacity_bytes / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

EstimateCache::Shard& EstimateCache::ShardFor(const std::string& key) {
  return *shards_[Fnv1a(key) % shards_.size()];
}

bool EstimateCache::Lookup(const std::string& key, double* selectivity) {
  if (capacity_bytes_ == 0) return false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  *selectivity = it->second->second;
  return true;
}

void EstimateCache::Insert(const std::string& key, double selectivity) {
  if (capacity_bytes_ == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = selectivity;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, selectivity);
  shard.index[key] = shard.lru.begin();
  shard.bytes += EntryBytes(key);
  while (shard.bytes > shard_capacity_bytes_ && shard.lru.size() > 1) {
    const auto& victim = shard.lru.back();
    shard.bytes -= EntryBytes(victim.first);
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

size_t EstimateCache::InvalidatePrefix(const std::string& prefix) {
  size_t erased = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        shard.bytes -= EntryBytes(it->first);
        shard.index.erase(it->first);
        it = shard.lru.erase(it);
        ++shard.invalidations;
        ++erased;
      } else {
        ++it;
      }
    }
  }
  return erased;
}

void EstimateCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

CacheStats EstimateCache::Stats() const {
  CacheStats stats;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.invalidations += shard.invalidations;
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

}  // namespace arecel::serve
