#ifndef ARECEL_SERVE_MODEL_MANAGER_H_
#define ARECEL_SERVE_MODEL_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/estimator.h"
#include "data/table.h"

namespace arecel::store {
class ModelStore;
}  // namespace arecel::store

namespace arecel::serve {

using ServeEstimatorFactory =
    std::function<std::unique_ptr<CardinalityEstimator>(const std::string&)>;

struct ModelManagerOptions {
  // Directory for persisted models ("" disables). A cold load first tries
  // `<model_dir>/<dataset>.<estimator>.model` via LoadEstimator; after a
  // successful version-0 train, estimators that support persistence (cheap
  // counting probe, core/model_io.h) are saved back so the next process
  // skips training entirely.
  std::string model_dir;

  // Crash-safe versioned model store (src/store/). When set it supersedes
  // model_dir: cold loads read the last committed generation through the
  // store's checksum-verified recovery path (restart = warm start), and
  // save-backs are queued for the MaintenanceWorker instead of running
  // inline on the serving thread. A payload the store serves but the
  // deserializer rejects as corrupt poisons only that instance: the manager
  // discards it, counts a corrupt_load, and cold-trains.
  std::shared_ptr<arecel::store::ModelStore> store;

  // Labelled workload size for query-driven methods trained on first use.
  size_t train_query_count = 2000;

  // Base training seed; the effective seed is TrainSeedForVersion(base,
  // data version) so a refresh at version v is reproducible by a manual
  // retrain at the same version.
  uint64_t train_seed = 42;

  // Estimator constructor, defaulting to the registry's MakeEstimator.
  // Tests and the bench swap in fault-injecting wrappers here.
  ServeEstimatorFactory factory;
};

// Deterministic training seed for (base seed, data version): refreshed
// models must be bit-identical to a fresh retrain at the same version,
// which is what the serve tests pin.
uint64_t TrainSeedForVersion(uint64_t base_seed, uint64_t data_version);

// One servable trained model. Immutable after publication except for the
// inference mutex, which serializes EstimateSelectivity calls for
// estimators whose inference is not a pure read (ThreadSafeEstimates()
// false: naru / bayes / dqm-d / guarded).
struct ServedModel {
  std::shared_ptr<CardinalityEstimator> estimator;
  uint64_t data_version = 0;
  size_t trained_rows = 0;
  bool thread_safe = true;
  std::string source;  // "trained" | "loaded" | "refreshed".
  double train_seconds = 0.0;
  mutable std::mutex inference_mutex;
};

struct ManagerCounters {
  uint64_t cold_trains = 0;
  uint64_t persisted_loads = 0;
  uint64_t model_saves = 0;
  uint64_t refreshes = 0;            // background retrains completed.
  uint64_t refresh_failures = 0;     // background retrains that threw.
  uint64_t single_flight_waits = 0;  // requests that waited on a cold load.
  uint64_t train_failures = 0;
  uint64_t evictions = 0;
  uint64_t corrupt_loads = 0;    // store payloads rejected as corrupt.
  uint64_t saves_enqueued = 0;   // save-backs queued for the worker.
  uint64_t packed_models = 0;    // models packed for serving (PackForServing).
};

// A trained model awaiting write-back to the store. The worker serializes
// it (under the inference mutex when the estimator's inference mutates
// state) and commits it as a new generation.
struct PendingSave {
  std::string dataset;
  std::string estimator;
  std::shared_ptr<const ServedModel> model;
};

// Loaded-model inventory row for the maintenance worker's staleness scan.
struct LoadedModelInfo {
  std::string dataset;
  std::string estimator;
  uint64_t data_version = 0;
  bool refreshing = false;
};

// Owns the dataset snapshots and the trained estimators behind the serving
// layer, keyed by (dataset, estimator name).
//
// Concurrency contract:
//  * GetModel is single-flight: N concurrent requests for the same cold
//    model run exactly one train (or persisted load); the rest block and
//    share the result.
//  * ApplyUpdate installs a new table snapshot under a fresh data version;
//    existing models keep serving (stale-while-revalidate) until
//    RefreshModelsAsync's background retrain swaps them, one atomically
//    published ServedModel at a time.
//  * Published ServedModels are immutable, so readers never need a lock to
//    use one (beyond the inference mutex for stochastic estimators).
class ModelManager {
 public:
  explicit ModelManager(ModelManagerOptions options = {});
  ~ModelManager();  // waits for in-flight background refreshes.

  ModelManager(const ModelManager&) = delete;
  ModelManager& operator=(const ModelManager&) = delete;

  // Installs (or replaces) a dataset snapshot at data version 0. The table
  // must be finalized.
  void RegisterDataset(const std::string& name, Table table);

  bool HasDataset(const std::string& name) const;
  std::vector<std::string> DatasetNames() const;
  std::shared_ptr<const Table> TableSnapshot(const std::string& dataset) const;
  uint64_t DataVersion(const std::string& dataset) const;

  // Single-flight get-or-load-or-train. Returns nullptr (and fills *error
  // when given) if the dataset is unknown or training failed; a failed load
  // is forgotten, so the next request retries.
  std::shared_ptr<const ServedModel> GetModel(const std::string& dataset,
                                              const std::string& estimator,
                                              std::string* error = nullptr);

  // The paper's append-update procedure (§5.1 sorted-copy append):
  // appends `fraction` * rows correlated tuples, installs the new snapshot,
  // and returns the bumped data version. Serving continues from the old
  // models until RefreshModelsAsync completes.
  uint64_t ApplyUpdate(const std::string& dataset, double fraction,
                       uint64_t seed);

  // Kicks one background full retrain per loaded model of `dataset` that
  // is older than the current data version. Returns how many were started.
  // A failed retrain keeps the stale model serving and counts a
  // refresh_failure.
  size_t RefreshModelsAsync(const std::string& dataset);

  // Blocks until no background refresh is in flight.
  void WaitForRefreshes();

  // Synchronous single-model refresh for the maintenance worker: retrains
  // (dataset, estimator) at the current data version on the calling thread
  // and atomically swaps it in. Returns false — without touching the
  // serving entry — when the model is not loaded, already refreshing,
  // already fresh, or the retrain failed (stale model keeps serving).
  // `cancel` is threaded into TrainContext so a watchdog (RunGuarded) can
  // cut a hung retrain loose cooperatively.
  bool RefreshModelNow(const std::string& dataset,
                       const std::string& estimator,
                       const CancellationToken* cancel = nullptr,
                       std::string* error = nullptr);

  // Drains the save-back queue (trained models waiting for the maintenance
  // worker to persist them). Models enqueue after successful cold trains
  // and refreshes when a store is configured and the estimator supports
  // persistence.
  std::vector<PendingSave> TakePendingSaves();

  // Snapshot of the ready serving entries, for the worker's staleness scan.
  std::vector<LoadedModelInfo> LoadedModels() const;

  // Drops a model entry (e.g. after a per-request deadline abandoned a
  // worker inside a non-thread-safe model). The next GetModel retrains.
  void Evict(const std::string& dataset, const std::string& estimator);

  ManagerCounters counters() const;

  const ModelManagerOptions& options() const { return options_; }

 private:
  struct DatasetState {
    std::shared_ptr<const Table> table;
    uint64_t version = 0;
  };

  struct ModelEntry {
    bool ready = false;       // false while the single-flight load runs.
    bool refreshing = false;  // a background retrain is in flight.
    std::shared_ptr<const ServedModel> model;
  };

  static std::string ModelKey(const std::string& dataset,
                              const std::string& estimator);
  std::string ModelPath(const std::string& dataset,
                        const std::string& estimator) const;

  // Reads (snapshot, version) as one consistent pair.
  bool Snapshot(const std::string& dataset,
                std::shared_ptr<const Table>* table, uint64_t* version,
                std::string* error) const;

  // Trains (or loads) one model outside any lock. Returns nullptr and
  // fills *error on failure.
  std::shared_ptr<const ServedModel> BuildModel(
      const std::string& dataset, const std::string& estimator,
      const std::shared_ptr<const Table>& table, uint64_t version,
      bool is_refresh, std::string* error,
      const CancellationToken* cancel = nullptr);

  ModelManagerOptions options_;

  mutable std::mutex data_mutex_;
  std::map<std::string, DatasetState> datasets_;

  mutable std::mutex models_mutex_;
  std::condition_variable models_cv_;
  std::map<std::string, ModelEntry> models_;

  std::condition_variable refresh_cv_;
  int active_refreshes_ = 0;            // guarded by models_mutex_.
  std::vector<std::thread> refresh_threads_;  // guarded by models_mutex_.

  mutable std::mutex counters_mutex_;
  ManagerCounters counters_;

  mutable std::mutex saves_mutex_;
  std::vector<PendingSave> pending_saves_;
};

}  // namespace arecel::serve

#endif  // ARECEL_SERVE_MODEL_MANAGER_H_
