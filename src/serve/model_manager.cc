#include "serve/model_manager.h"

#include <exception>
#include <fstream>
#include <utility>

#include "core/model_io.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "store/model_store.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace arecel::serve {

namespace {

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

}  // namespace

uint64_t TrainSeedForVersion(uint64_t base_seed, uint64_t data_version) {
  // Same spirit as the robust runner's retry_seed_stride: a distinct,
  // deterministic seed per version so refreshes neither replay the stale
  // model's randomness nor depend on wall-clock state.
  return base_seed + data_version * 1000003ull;
}

ModelManager::ModelManager(ModelManagerOptions options)
    : options_(std::move(options)) {
  if (!options_.factory) {
    options_.factory = [](const std::string& name) {
      return MakeEstimator(name);
    };
  }
}

ModelManager::~ModelManager() { WaitForRefreshes(); }

std::string ModelManager::ModelKey(const std::string& dataset,
                                   const std::string& estimator) {
  return dataset + '\x1f' + estimator;
}

std::string ModelManager::ModelPath(const std::string& dataset,
                                    const std::string& estimator) const {
  return options_.model_dir + "/" + dataset + "." + estimator + ".model";
}

void ModelManager::RegisterDataset(const std::string& name, Table table) {
  auto shared = std::make_shared<const Table>(std::move(table));
  std::lock_guard<std::mutex> lock(data_mutex_);
  datasets_[name] = DatasetState{std::move(shared), 0};
}

bool ModelManager::HasDataset(const std::string& name) const {
  std::lock_guard<std::mutex> lock(data_mutex_);
  return datasets_.count(name) > 0;
}

std::vector<std::string> ModelManager::DatasetNames() const {
  std::lock_guard<std::mutex> lock(data_mutex_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, state] : datasets_) names.push_back(name);
  return names;
}

std::shared_ptr<const Table> ModelManager::TableSnapshot(
    const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(data_mutex_);
  auto it = datasets_.find(dataset);
  return it == datasets_.end() ? nullptr : it->second.table;
}

uint64_t ModelManager::DataVersion(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(data_mutex_);
  auto it = datasets_.find(dataset);
  return it == datasets_.end() ? 0 : it->second.version;
}

bool ModelManager::Snapshot(const std::string& dataset,
                            std::shared_ptr<const Table>* table,
                            uint64_t* version, std::string* error) const {
  std::lock_guard<std::mutex> lock(data_mutex_);
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    if (error != nullptr) *error = "unknown dataset \"" + dataset + "\"";
    return false;
  }
  *table = it->second.table;
  *version = it->second.version;
  return true;
}

std::shared_ptr<const ServedModel> ModelManager::BuildModel(
    const std::string& dataset, const std::string& estimator,
    const std::shared_ptr<const Table>& table, uint64_t version,
    bool is_refresh, std::string* error, const CancellationToken* cancel) {
  const uint64_t seed = TrainSeedForVersion(options_.train_seed, version);
  auto model = std::make_shared<ServedModel>();
  model->data_version = version;
  model->trained_rows = table->num_rows();
  Timer timer;

  std::unique_ptr<CardinalityEstimator> instance;
  try {
    instance = options_.factory(estimator);
  } catch (const std::exception& e) {
    if (error != nullptr)
      *error = std::string("estimator construction failed: ") + e.what();
    return nullptr;
  }

  // Version-0 cold path: prefer a persisted model over training. The store
  // (when configured) supersedes the flat model_dir: its Get runs the
  // checksum-verified recovery chain, so the bytes handed back are the last
  // committed generation, never a torn or bit-rotted record.
  bool loaded = false;
  const std::string path = options_.model_dir.empty()
                               ? std::string()
                               : ModelPath(dataset, estimator);
  if (!is_refresh && version == 0) {
    if (options_.store != nullptr) {
      std::string bytes;
      if (options_.store->Get(dataset, estimator, &bytes)) {
        const ModelLoadResult result =
            LoadEstimatorBytes(instance.get(), bytes);
        if (result.ok()) {
          loaded = true;
        } else {
          // The instance may hold partially deserialized state — poisoned.
          // Discard it and fall through to a clean cold train.
          {
            std::lock_guard<std::mutex> lock(counters_mutex_);
            if (result.kind == FailureKind::kCorruptModel)
              ++counters_.corrupt_loads;
          }
          try {
            instance = options_.factory(estimator);
          } catch (const std::exception& e) {
            if (error != nullptr)
              *error = std::string("estimator construction failed: ") +
                       e.what();
            return nullptr;
          }
        }
      }
    } else if (!path.empty() && FileExists(path) &&
               LoadEstimator(instance.get(), path)) {
      loaded = true;
    }
  }

  if (loaded) {
    model->estimator = std::move(instance);
    model->source = "loaded";
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.persisted_loads;
    }
  } else {
    try {
      TrainContext context;
      context.seed = seed;
      context.cancellation = cancel;
      Workload training;
      if (instance->IsQueryDriven()) {
        training =
            GenerateWorkload(*table, options_.train_query_count, seed);
        context.training_workload = &training;
      }
      instance->Train(*table, context);
    } catch (const std::exception& e) {
      if (error != nullptr)
        *error = std::string("train failed: ") + e.what();
      std::lock_guard<std::mutex> lock(counters_mutex_);
      if (is_refresh)
        ++counters_.refresh_failures;
      else
        ++counters_.train_failures;
      return nullptr;
    }
    model->estimator = std::move(instance);
    model->source = is_refresh ? "refreshed" : "trained";
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      if (is_refresh)
        ++counters_.refreshes;
      else
        ++counters_.cold_trains;
    }
    if (options_.store == nullptr) {
      // Legacy flat-file path: save the freshly trained base model inline
      // so the next process can skip training. The counting probe keeps
      // the capability check cheap for estimators that refuse persistence.
      if (!is_refresh && version == 0 && !path.empty() &&
          SupportsPersistence(*model->estimator) &&
          SaveEstimator(*model->estimator, path)) {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.model_saves;
      }
    }
  }

  // Build the packed/quantized inference-weight forms before publication:
  // the model is still private to this thread here, so packing cannot race
  // with inference, and every request served from this ServedModel runs on
  // the packed fast path (fp32 packed agrees with the unpacked fast kernels
  // to summation-order rounding, the same class as reference-vs-fast;
  // ml/kernels_simd.h).
  model->estimator->PackForServing();
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.packed_models;
  }

  model->thread_safe = model->estimator->ThreadSafeEstimates();
  model->train_seconds = timer.ElapsedSeconds();

  // Store-backed deployments move write-back off the serving thread: queue
  // the trained model; the MaintenanceWorker serializes and commits it with
  // bounded retries. Refreshes enqueue too, so the store tracks the newest
  // trained state across data versions.
  if (!loaded && options_.store != nullptr &&
      SupportsPersistence(*model->estimator)) {
    {
      std::lock_guard<std::mutex> lock(saves_mutex_);
      pending_saves_.push_back(PendingSave{dataset, estimator, model});
    }
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.saves_enqueued;
  }
  return model;
}

bool ModelManager::RefreshModelNow(const std::string& dataset,
                                   const std::string& estimator,
                                   const CancellationToken* cancel,
                                   std::string* error) {
  std::shared_ptr<const Table> table;
  uint64_t version = 0;
  if (!Snapshot(dataset, &table, &version, error)) return false;

  const std::string key = ModelKey(dataset, estimator);
  {
    std::lock_guard<std::mutex> lock(models_mutex_);
    auto it = models_.find(key);
    if (it == models_.end() || !it->second.ready || it->second.refreshing ||
        it->second.model->data_version >= version) {
      if (error != nullptr) *error = "nothing to refresh";
      return false;
    }
    it->second.refreshing = true;
    ++active_refreshes_;
  }

  std::shared_ptr<const ServedModel> fresh = BuildModel(
      dataset, estimator, table, version, /*is_refresh=*/true, error, cancel);
  const bool ok = fresh != nullptr;
  {
    std::lock_guard<std::mutex> lock(models_mutex_);
    auto it = models_.find(key);
    if (it != models_.end()) {
      it->second.refreshing = false;
      if (ok) it->second.model = std::move(fresh);
    }
    --active_refreshes_;
  }
  refresh_cv_.notify_all();
  return ok;
}

std::vector<PendingSave> ModelManager::TakePendingSaves() {
  std::lock_guard<std::mutex> lock(saves_mutex_);
  std::vector<PendingSave> taken;
  taken.swap(pending_saves_);
  return taken;
}

std::vector<LoadedModelInfo> ModelManager::LoadedModels() const {
  std::lock_guard<std::mutex> lock(models_mutex_);
  std::vector<LoadedModelInfo> infos;
  for (const auto& [key, entry] : models_) {
    if (!entry.ready) continue;
    const size_t sep = key.find('\x1f');
    LoadedModelInfo info;
    info.dataset = key.substr(0, sep);
    info.estimator = key.substr(sep + 1);
    info.data_version = entry.model->data_version;
    info.refreshing = entry.refreshing;
    infos.push_back(std::move(info));
  }
  return infos;
}

std::shared_ptr<const ServedModel> ModelManager::GetModel(
    const std::string& dataset, const std::string& estimator,
    std::string* error) {
  const std::string key = ModelKey(dataset, estimator);
  {
    std::unique_lock<std::mutex> lock(models_mutex_);
    for (;;) {
      auto it = models_.find(key);
      if (it == models_.end()) {
        models_[key] = ModelEntry{};  // claim the single-flight slot.
        break;
      }
      if (it->second.ready) return it->second.model;
      {
        std::lock_guard<std::mutex> counters_lock(counters_mutex_);
        ++counters_.single_flight_waits;
      }
      models_cv_.wait(lock);
    }
  }

  // This thread owns the load; everyone else is parked on models_cv_.
  std::shared_ptr<const Table> table;
  uint64_t version = 0;
  std::shared_ptr<const ServedModel> model;
  std::string build_error;
  if (Snapshot(dataset, &table, &version, &build_error)) {
    model = BuildModel(dataset, estimator, table, version,
                       /*is_refresh=*/false, &build_error);
  }

  {
    std::lock_guard<std::mutex> lock(models_mutex_);
    if (model != nullptr) {
      models_[key].ready = true;
      models_[key].model = model;
    } else {
      models_.erase(key);  // forget the failure so the next request retries.
    }
  }
  models_cv_.notify_all();
  if (model == nullptr && error != nullptr) *error = build_error;
  return model;
}

uint64_t ModelManager::ApplyUpdate(const std::string& dataset, double fraction,
                                   uint64_t seed) {
  // Build the appended table outside the lock (it scans the whole table),
  // then install it atomically.
  std::shared_ptr<const Table> base;
  uint64_t version = 0;
  if (!Snapshot(dataset, &base, &version, nullptr)) return 0;
  Table updated = AppendCorrelatedUpdate(*base, fraction, seed);
  auto shared = std::make_shared<const Table>(std::move(updated));

  std::lock_guard<std::mutex> lock(data_mutex_);
  DatasetState& state = datasets_[dataset];
  state.table = std::move(shared);
  return ++state.version;
}

size_t ModelManager::RefreshModelsAsync(const std::string& dataset) {
  std::shared_ptr<const Table> table;
  uint64_t version = 0;
  if (!Snapshot(dataset, &table, &version, nullptr)) return 0;

  const std::string prefix = dataset + '\x1f';
  size_t started = 0;
  std::lock_guard<std::mutex> lock(models_mutex_);
  for (auto& [key, entry] : models_) {
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    if (!entry.ready || entry.refreshing) continue;
    if (entry.model->data_version >= version) continue;
    entry.refreshing = true;
    ++active_refreshes_;
    ++started;
    const std::string estimator = key.substr(prefix.size());
    refresh_threads_.emplace_back([this, dataset, estimator, key, table,
                                   version] {
      std::string error;
      std::shared_ptr<const ServedModel> fresh = BuildModel(
          dataset, estimator, table, version, /*is_refresh=*/true, &error);
      {
        std::lock_guard<std::mutex> swap_lock(models_mutex_);
        auto it = models_.find(key);
        if (it != models_.end()) {
          it->second.refreshing = false;
          // On failure the stale model keeps serving (already counted as a
          // refresh_failure by BuildModel).
          if (fresh != nullptr) it->second.model = std::move(fresh);
        }
        --active_refreshes_;
      }
      refresh_cv_.notify_all();
    });
  }
  return started;
}

void ModelManager::WaitForRefreshes() {
  std::vector<std::thread> done;
  {
    std::unique_lock<std::mutex> lock(models_mutex_);
    refresh_cv_.wait(lock, [this] { return active_refreshes_ == 0; });
    done.swap(refresh_threads_);
  }
  // Every swapped-out thread has published its result (active_refreshes_
  // hit zero under the lock); joining just reaps the exiting threads.
  for (std::thread& t : done)
    if (t.joinable()) t.join();
}

void ModelManager::Evict(const std::string& dataset,
                         const std::string& estimator) {
  const std::string key = ModelKey(dataset, estimator);
  std::lock_guard<std::mutex> lock(models_mutex_);
  auto it = models_.find(key);
  // Entries mid-load or mid-refresh are owned by their worker; evicting
  // them would strand the single-flight waiters.
  if (it == models_.end() || !it->second.ready || it->second.refreshing)
    return;
  models_.erase(it);
  std::lock_guard<std::mutex> counters_lock(counters_mutex_);
  ++counters_.evictions;
}

ManagerCounters ModelManager::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

}  // namespace arecel::serve
