#ifndef ARECEL_SERVE_CACHE_H_
#define ARECEL_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "workload/join_query.h"
#include "workload/query.h"

namespace arecel::serve {

// Canonical fingerprint of a query's predicate list: a table-set prefix
// (table count + sorted table names) followed by the predicates sorted by
// (column, lo, hi) with -0.0 normalized to +0.0, serialized as raw bytes.
// Two queries with the same conjuncts in a different order — the common
// case when an optimizer enumerates join orders — map to the same key, so
// they share one cache entry. The table-set prefix makes single-table and
// join fingerprints disjoint by construction: a single-table query (one
// anonymous table) and a join query with byte-identical predicate lists can
// never alias one cache entry. The canonicalization deliberately stops at
// reorderings that cannot change an estimator's answer (every registry
// estimator treats the predicate list as a set over columns); semantic
// rewrites like merging duplicate columns or dropping vacuous intervals
// are NOT applied, because an approximate model may answer the rewritten
// query differently and the cache contract is bit-identical replay.
std::string CanonicalPredicateKey(const Query& query);

// Canonical fingerprint of a join query: table-set prefix (count + sorted
// names), then each table's predicate fingerprint in sorted-name order,
// then the join edges with each edge's endpoints ordered and the edge list
// sorted. Insensitive to table/predicate/edge order, never equal to any
// CanonicalPredicateKey.
std::string CanonicalJoinKey(const JoinQuery& query);

// Full cache key: dataset, estimator, and data version prefix the predicate
// fingerprint, so a bumped version can never alias a stale entry and a
// whole dataset's entries share an erasable prefix.
std::string EstimateCacheKey(const std::string& dataset,
                             const std::string& estimator,
                             uint64_t data_version, const Query& query);

// Join-query variant of EstimateCacheKey over CanonicalJoinKey. Shares the
// dataset prefix, so InvalidatePrefix(DatasetKeyPrefix(...)) erases join
// and single-table entries together.
std::string JoinEstimateCacheKey(const std::string& dataset,
                                 const std::string& estimator,
                                 uint64_t data_version,
                                 const JoinQuery& query);

// Prefix covering every entry of (dataset) — the invalidation handle used
// when the append-update procedure bumps the data version.
std::string DatasetKeyPrefix(const std::string& dataset);

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  // entries erased by InvalidatePrefix.
  size_t entries = 0;
  size_t bytes = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// Sharded LRU cache of selectivity estimates. Shard selection hashes the
// key, each shard holds an independent mutex + LRU list, so concurrent
// serving threads rarely contend on the same lock. Capacity is in
// approximate bytes (key size + fixed per-entry overhead), split evenly
// across shards; eviction is strict per-shard LRU.
class EstimateCache {
 public:
  // `capacity_bytes` = 0 disables caching (Lookup always misses, Insert is
  // a no-op). `num_shards` is rounded up to at least 1.
  explicit EstimateCache(size_t capacity_bytes, size_t num_shards = 16);

  bool Lookup(const std::string& key, double* selectivity);
  void Insert(const std::string& key, double selectivity);

  // Erases every entry whose key starts with `prefix` (counted as
  // invalidations, not evictions). Returns the number erased.
  size_t InvalidatePrefix(const std::string& prefix);

  void Clear();

  CacheStats Stats() const;

  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used.
    std::list<std::pair<std::string, double>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, double>>::iterator>
        index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t capacity_bytes_;
  size_t shard_capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace arecel::serve

#endif  // ARECEL_SERVE_CACHE_H_
