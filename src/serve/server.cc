#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include "ml/kernels.h"
#include "robustness/guard.h"
#include "store/maintenance_worker.h"
#include "store/model_store.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace arecel::serve {

namespace {

constexpr size_t kLatencyWindowSize = 4096;

// Below this batch size the dispatch threads cost more than they save.
constexpr size_t kMinQueriesPerThread = 8;

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end == value) ? fallback : parsed;
}

}  // namespace

ServeOptions ServeOptionsFromEnv() {
  ServeOptions options;
  const double cache_mb = EnvDouble("ARECEL_SERVE_CACHE_MB", 64.0);
  options.cache_bytes =
      cache_mb <= 0 ? 0 : static_cast<size_t>(cache_mb * (1 << 20));
  options.cache_enabled = options.cache_bytes > 0;
  options.dispatch_threads =
      static_cast<int>(EnvDouble("ARECEL_SERVE_THREADS", 0));
  options.robust = robust::RobustOptionsFromEnv();
  options.feedback_enabled = EnvDouble("ARECEL_FEEDBACK", 0.0) > 0;
  const double queue = EnvDouble("ARECEL_FEEDBACK_QUEUE", 1024.0);
  options.feedback_queue = queue <= 0 ? 1 : static_cast<size_t>(queue);
  options.feedback = feedback::FeedbackOptionsFromEnv();
  store::StoreOptions store_options = store::StoreOptions::FromEnv();
  if (!store_options.root_dir.empty())
    options.manager.store =
        std::make_shared<store::ModelStore>(std::move(store_options));
  return options;
}

EstimatorServer::EstimatorServer(ServeOptions options)
    : options_(std::move(options)),
      manager_(options_.manager),
      cache_(options_.cache_bytes, options_.cache_shards),
      cache_enabled_(options_.cache_enabled) {
  if (options_.dispatch_threads <= 0)
    options_.dispatch_threads = ParallelWorkerCount();
  if (options_.feedback_enabled)
    feedback_ = std::make_unique<feedback::FeedbackHub>(
        options_.feedback, options_.feedback_queue);
  if (options_.manager.store != nullptr) {
    // Non-owning alias: manager_ is a value member and maintenance_ is
    // declared after it, so the worker is always stopped and destroyed
    // before the manager it points at.
    std::shared_ptr<ModelManager> manager_alias(&manager_,
                                                [](ModelManager*) {});
    maintenance_ = std::make_unique<store::MaintenanceWorker>(
        std::move(manager_alias), options_.manager.store,
        store::MaintenanceOptions::FromEnv());
    maintenance_->Start();
  }
}

EstimatorServer::~EstimatorServer() {
  if (maintenance_ != nullptr) maintenance_->Stop();
}

void EstimatorServer::RegisterDataset(const std::string& name, Table table) {
  manager_.RegisterDataset(name, std::move(table));
}

bool EstimatorServer::RunInference(
    const std::string& dataset, const std::string& estimator,
    const std::shared_ptr<const ServedModel>& model, const Query& query,
    double* selectivity, EstimateResponse* response) {
  const double deadline = options_.robust.query_deadline_seconds;
  if (deadline <= 0) {
    try {
      if (model->thread_safe) {
        *selectivity = model->estimator->EstimateSelectivity(query);
      } else {
        std::lock_guard<std::mutex> lock(model->inference_mutex);
        *selectivity = model->estimator->EstimateSelectivity(query);
      }
      return true;
    } catch (const std::exception& e) {
      response->failure = FailureKind::kEstimateThrew;
      response->detail = e.what();
      ++estimate_errors_;
      return false;
    }
  }

  // Guarded path: the closure owns the model (shared_ptr by value) and a
  // private copy of the query, per the leak-on-hang contract — an abandoned
  // worker may outlive this request, never this process' model.
  auto result = std::make_shared<double>(0.0);
  robust::GuardKinds kinds;
  kinds.on_timeout = FailureKind::kEstimateTimeout;
  kinds.on_throw = FailureKind::kEstimateThrew;
  kinds.on_cancel = FailureKind::kEstimateThrew;
  robust::GuardResult guard = robust::RunGuarded(
      [model, query, result] {
        if (model->thread_safe) {
          *result = model->estimator->EstimateSelectivity(query);
        } else {
          std::lock_guard<std::mutex> lock(model->inference_mutex);
          *result = model->estimator->EstimateSelectivity(query);
        }
      },
      deadline, kinds);
  if (guard.ok()) {
    *selectivity = *result;
    return true;
  }
  response->failure = guard.kind;
  response->detail = guard.detail;
  if (guard.kind == FailureKind::kEstimateTimeout) {
    ++deadline_exceeded_;
    // A timed-out worker on a serialized model may still hold the model's
    // inference mutex; retire the entry so later requests retrain a fresh
    // instance instead of queueing behind a hung lock.
    if (!model->thread_safe) manager_.Evict(dataset, estimator);
  } else {
    ++estimate_errors_;
  }
  return false;
}

EstimateResponse EstimatorServer::EstimateWithModel(
    const std::string& dataset, const std::string& estimator,
    const std::shared_ptr<const ServedModel>& model, const Query& query) {
  Timer timer;
  EstimateResponse response;
  response.data_version = model->data_version;
  ++requests_;

  const bool use_cache = cache_enabled_.load() && cache_.capacity_bytes() > 0;
  std::string key;
  if (use_cache) {
    key = EstimateCacheKey(dataset, estimator, model->data_version, query);
    double cached = 0.0;
    if (cache_.Lookup(key, &cached)) {
      response.ok = true;
      response.cache_hit = true;
      // The cache stores the *base* estimate; corrections apply after
      // lookup so the hit path and the miss path learn and serve the same
      // way. A cache hit is still real traffic — it enqueues a truth job
      // (the latent gap this layer used to have: hits bypassed learning).
      response.selectivity = cached;
      if (feedback_ != nullptr) {
        EnqueueFeedback(dataset, estimator, model, query, cached,
                        /*from_cache_hit=*/true);
        response.selectivity = feedback_->Correct(
            dataset, estimator, query, cached, model->trained_rows);
      }
      response.cardinality =
          response.selectivity * static_cast<double>(model->trained_rows);
      response.latency_ms = timer.ElapsedMillis();
      RecordLatency(dataset, estimator, response.latency_ms);
      return response;
    }
  }

  double selectivity = 0.0;
  if (RunInference(dataset, estimator, model, query, &selectivity,
                   &response)) {
    if (!std::isfinite(selectivity) || selectivity < 0.0) {
      response.failure = FailureKind::kNonFiniteEstimate;
      response.detail = "selectivity " + std::to_string(selectivity);
      ++estimate_errors_;
    } else {
      // Clamp like EstimateCardinality does; the cached value is the
      // clamped one, so a hit replays exactly what was served.
      selectivity = std::min(selectivity, 1.0);
      response.ok = true;
      response.selectivity = selectivity;
      if (use_cache) cache_.Insert(key, selectivity);
      if (feedback_ != nullptr) {
        EnqueueFeedback(dataset, estimator, model, query, selectivity,
                        /*from_cache_hit=*/false);
        response.selectivity = feedback_->Correct(
            dataset, estimator, query, selectivity, model->trained_rows);
      }
      response.cardinality =
          response.selectivity * static_cast<double>(model->trained_rows);
    }
  }
  response.latency_ms = timer.ElapsedMillis();
  RecordLatency(dataset, estimator, response.latency_ms);
  return response;
}

EstimateResponse EstimatorServer::Estimate(const std::string& dataset,
                                           const std::string& estimator,
                                           const Query& query) {
  std::string error;
  std::shared_ptr<const ServedModel> model =
      manager_.GetModel(dataset, estimator, &error);
  if (model == nullptr) {
    ++requests_;
    ++model_failures_;
    EstimateResponse response;
    response.failure = FailureKind::kTrainThrew;
    response.detail = error;
    return response;
  }
  return EstimateWithModel(dataset, estimator, model, query);
}

std::vector<EstimateResponse> EstimatorServer::EstimateBatch(
    const std::string& dataset, const std::string& estimator,
    const std::vector<Query>& queries) {
  ++batches_;
  std::vector<EstimateResponse> responses(queries.size());
  if (queries.empty()) return responses;

  std::string error;
  std::shared_ptr<const ServedModel> model =
      manager_.GetModel(dataset, estimator, &error);
  if (model == nullptr) {
    requests_ += queries.size();
    model_failures_ += queries.size();
    for (EstimateResponse& response : responses) {
      response.failure = FailureKind::kTrainThrew;
      response.detail = error;
    }
    return responses;
  }

  // Serialized-inference models gain nothing from fan-out: every request
  // would queue on the inference mutex while paying thread startup. Small
  // batches likewise run inline.
  const size_t want_threads = std::min<size_t>(
      static_cast<size_t>(options_.dispatch_threads),
      queries.size() / kMinQueriesPerThread);
  if (!model->thread_safe || want_threads <= 1) {
    for (size_t i = 0; i < queries.size(); ++i)
      responses[i] = EstimateWithModel(dataset, estimator, model, queries[i]);
    return responses;
  }

  std::vector<std::thread> workers;
  workers.reserve(want_threads);
  const size_t chunk = (queries.size() + want_threads - 1) / want_threads;
  for (size_t t = 0; t < want_threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(queries.size(), begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([this, &dataset, &estimator, &model, &queries,
                          &responses, begin, end] {
      for (size_t i = begin; i < end; ++i)
        responses[i] =
            EstimateWithModel(dataset, estimator, model, queries[i]);
    });
  }
  for (std::thread& worker : workers) worker.join();
  return responses;
}

uint64_t EstimatorServer::Update(const std::string& dataset, uint64_t seed) {
  const uint64_t version =
      manager_.ApplyUpdate(dataset, options_.update_fraction, seed);
  if (version == 0) return 0;
  ++updates_;
  // Order matters: invalidate before kicking refreshes so no refreshed
  // model can observe a cache still holding pre-update keys. (Stale-model
  // requests racing this call may re-insert entries under the OLD version
  // prefix; those keys are unreachable once their model refreshes and age
  // out via LRU — they can never serve a wrong answer because the version
  // is part of the key.)
  cache_.InvalidatePrefix(DatasetKeyPrefix(dataset));
  // Residuals learned over the pre-update data are stale the same way the
  // cache entries were: drop everything tagged with an older version.
  // In-flight truth jobs that raced the bump carry the old version and are
  // likewise discarded by the next invalidation-or-never consulted, since
  // Correct() reads models that just lost those entries.
  if (feedback_ != nullptr) feedback_->InvalidateDataset(dataset, version);
  manager_.RefreshModelsAsync(dataset);
  return version;
}

void EstimatorServer::EnqueueFeedback(
    const std::string& dataset, const std::string& estimator,
    const std::shared_ptr<const ServedModel>& model, const Query& query,
    double base_selectivity, bool from_cache_hit) {
  feedback::TruthJob job;
  job.dataset = dataset;
  job.estimator = estimator;
  job.query = query;
  job.base_selectivity = base_selectivity;
  job.snapshot = manager_.TableSnapshot(dataset);
  job.version = model->data_version;
  job.from_cache_hit = from_cache_hit;
  // Self-adapting estimators take the truth directly; everything else
  // learns a hub residual that Correct() applies on the way out.
  if (dynamic_cast<FeedbackSink*>(model->estimator.get()) != nullptr) {
    const bool needs_lock = !model->thread_safe;
    // A sink changes its own answers when it learns, so the cached base
    // estimate for this exact query is stale the moment its truth lands —
    // drop it and let the next repeat re-infer. (Hub-corrected estimators
    // don't need this: their cached base stays valid and Correct() applies
    // the fresh residual after lookup.) Safe to touch cache_ from the
    // worker thread: the hub joins its worker before cache_ is destroyed.
    std::string cache_key;
    if (cache_.capacity_bytes() > 0)
      cache_key =
          EstimateCacheKey(dataset, estimator, model->data_version, query);
    job.deliver = [this, model, needs_lock,
                   cache_key](const feedback::TruthJob& done, double truth) {
      auto* sink = dynamic_cast<FeedbackSink*>(model->estimator.get());
      if (sink == nullptr) return;
      if (needs_lock) {
        std::lock_guard<std::mutex> lock(model->inference_mutex);
        sink->ObserveTruth(done.query, truth);
      } else {
        sink->ObserveTruth(done.query, truth);
      }
      if (!cache_key.empty()) cache_.InvalidatePrefix(cache_key);
    };
  }
  feedback_->EnqueueTruth(std::move(job));
}

void EstimatorServer::RecordLatency(const std::string& dataset,
                                    const std::string& estimator, double ms) {
  const std::string key = dataset + "/" + estimator;
  std::lock_guard<std::mutex> lock(latency_mutex_);
  LatencyWindow& window = latencies_[key];
  ++window.requests;
  if (window.values.size() < kLatencyWindowSize) {
    window.values.push_back(ms);
  } else {
    window.values[window.next] = ms;
    window.next = (window.next + 1) % kLatencyWindowSize;
    window.full = true;
  }
}

ServerStats EstimatorServer::Stats() const {
  ServerStats stats;
  stats.requests = requests_.load();
  stats.batches = batches_.load();
  stats.deadline_exceeded = deadline_exceeded_.load();
  stats.estimate_errors = estimate_errors_.load();
  stats.model_failures = model_failures_.load();
  stats.updates = updates_.load();
  stats.cache = cache_.Stats();
  stats.manager = manager_.counters();
  stats.feedback_enabled = feedback_ != nullptr;
  if (feedback_ != nullptr) stats.feedback = feedback_->Stats();
  stats.store_enabled = options_.manager.store != nullptr;
  if (stats.store_enabled) stats.store = options_.manager.store->stats();
  stats.ml_backend = MlKernelBackendName(ActiveMlKernelBackend());
  stats.ml_simd = MlKernelSimdName();
  stats.ml_cpu_flags = MlCpuFeatureFlags();
  std::lock_guard<std::mutex> lock(latency_mutex_);
  stats.latencies.reserve(latencies_.size());
  for (const auto& [key, window] : latencies_) {
    ModelLatencyStats entry;
    entry.model = key;
    entry.requests = window.requests;
    if (!window.values.empty()) {
      entry.p50_ms = Percentile(window.values, 50.0);
      entry.p90_ms = Percentile(window.values, 90.0);
      entry.p99_ms = Percentile(window.values, 99.0);
      entry.max_ms =
          *std::max_element(window.values.begin(), window.values.end());
    }
    stats.latencies.push_back(std::move(entry));
  }
  return stats;
}

}  // namespace arecel::serve
