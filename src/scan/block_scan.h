#ifndef ARECEL_SCAN_BLOCK_SCAN_H_
#define ARECEL_SCAN_BLOCK_SCAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/table.h"
#include "scan/synopsis.h"
#include "workload/query.h"

namespace arecel::scan {

// Vectorized exact-count execution engine (DESIGN.md §8).
//
// Four layers, cheapest first:
//  1. zone maps (TableSynopsis): a predicate skips every block whose
//     [min, max] envelope misses its interval, and counts wholesale every
//     NaN-free block whose envelope it contains;
//  2. dictionary bitmaps: on a dictionary-coded column the predicate maps
//     to an inclusive code range once per query; a block is skipped unless
//     its presence bitmap has a set bit in that range — equality
//     predicates on categorical columns prune here even when every
//     envelope overlaps. Non-dictionary columns get the same treatment
//     from per-block mini-histograms (skip when every overlapping bucket
//     is empty);
//  3. selection vectors: surviving blocks are evaluated one *column* at a
//     time, most-selective predicate first (ordered by synopsis-estimated
//     selectivity), compacting a dense row-id vector instead of re-testing
//     every predicate per row;
//  4. branch-free kernels: data-independent interval passes over the
//     contiguous column block — over the u8/u16 code array when the column
//     is dictionary-coded (a fraction of the double array's bandwidth),
//     over the doubles otherwise.
//
// All counts are exact integers: results are bit-identical to the naive
// reference executor (ExecuteCountNaive) by construction, which
// tests/scan_engine_test.cc and tests/scan_synopsis_test.cc enforce
// differentially. Interval semantics are Predicate::Matches (inclusive
// bounds, NaN never matches, -0.0 == +0.0).

struct ScanOptions {
  size_t block_size = kDefaultBlockSize;
  // When false the synopsis keeps min/max zone maps only — the
  // pre-dictionary engine, used as the bench baseline arm.
  bool rich_synopsis = true;
  size_t max_dict_codes = kDefaultMaxDictCodes;
};

// Pruning / kernel counters, accumulated per scan. Plain integers: workers
// keep a local copy and merge once into a ScanStatsCollector.
struct ScanStats {
  uint64_t classified_blocks = 0;  // (block, query) classifications made.
  uint64_t zone_skips = 0;         // skipped by the min/max envelope.
  uint64_t bitmap_skips = 0;       // skipped by a dictionary bitmap.
  uint64_t histogram_skips = 0;    // skipped by a mini-histogram.
  uint64_t full_blocks = 0;        // counted wholesale, values untouched.
  uint64_t scanned_blocks = 0;     // evaluated row by row.
  uint64_t dict_kernel_blocks = 0;  // scanned blocks that ran code kernels.

  void Add(const ScanStats& other);
};

// Thread-safe accumulator (relaxed atomics): BlockScanner and JoinExecutor
// are shared read-only across threads, so their counters must tolerate
// concurrent merges.
class ScanStatsCollector {
 public:
  void Merge(const ScanStats& delta);
  ScanStats Snapshot() const;

 private:
  std::atomic<uint64_t> classified_blocks_{0};
  std::atomic<uint64_t> zone_skips_{0};
  std::atomic<uint64_t> bitmap_skips_{0};
  std::atomic<uint64_t> histogram_skips_{0};
  std::atomic<uint64_t> full_blocks_{0};
  std::atomic<uint64_t> scanned_blocks_{0};
  std::atomic<uint64_t> dict_kernel_blocks_{0};
};

// Branch-free interval kernels over contiguous column data. Exposed for the
// micro-benchmark and tests; `sel` must have room for (end - begin) ids.
//
// Writes the row ids in [begin, end) with lo <= values[r] <= hi into `sel`;
// returns how many matched.
size_t FilterInterval(const double* values, uint32_t begin, uint32_t end,
                      double lo, double hi, uint32_t* sel);
// Compacts `sel` (n row ids) in place, keeping ids whose value lies in
// [lo, hi]; returns the surviving count.
size_t RefineInterval(const double* values, double lo, double hi,
                      uint32_t* sel, size_t n);
// Count-only variant for single-predicate scans (no ids materialized).
size_t CountInterval(const double* values, uint32_t begin, uint32_t end,
                     double lo, double hi);

// Code-space variants over dictionary code arrays: one unsigned compare per
// row against an inclusive [lo, hi] code range, at 1/8 (u8) or 1/4 (u16) of
// the double array's memory traffic. The NaN sentinel code sits above every
// valid range, so NaN rows never match — same semantics as the double path.
size_t FilterCodes(const uint8_t* codes, uint32_t begin, uint32_t end,
                   uint32_t lo, uint32_t hi, uint32_t* sel);
size_t FilterCodes(const uint16_t* codes, uint32_t begin, uint32_t end,
                   uint32_t lo, uint32_t hi, uint32_t* sel);
size_t RefineCodes(const uint8_t* codes, uint32_t lo, uint32_t hi,
                   uint32_t* sel, size_t n);
size_t RefineCodes(const uint16_t* codes, uint32_t lo, uint32_t hi,
                   uint32_t* sel, size_t n);
size_t CountCodes(const uint8_t* codes, uint32_t begin, uint32_t end,
                  uint32_t lo, uint32_t hi);
size_t CountCodes(const uint16_t* codes, uint32_t begin, uint32_t end,
                  uint32_t lo, uint32_t hi);

// Zone-map / bitmap / histogram classification of one (block, query) pair.
enum class BlockDecision { kSkip, kEvaluate, kFullMatch };

// One query's predicates compiled against one table: column pointers
// resolved, dictionary predicates lowered to code ranges, and the whole
// list ordered most-selective-first. Shared by BlockScanner and the join
// executor's probe/build cascades. `synopsis` may be null (the one-shot
// CountMatches path): classification is then unavailable and evaluation
// uses the double kernels only.
class ScanPlan {
 public:
  // Sentinel for evaluation without a known block (no per-block
  // full-match elision).
  static constexpr size_t kNoBlock = static_cast<size_t>(-1);

  ScanPlan(const Table& table, const TableSynopsis* synopsis,
           const std::vector<Predicate>& predicates);

  // False when no row anywhere can match (an inverted interval, or an
  // interval containing no dictionary value of its column).
  bool satisfiable() const { return satisfiable_; }
  // True when the predicate list is empty: every row matches.
  bool unconstrained() const { return preds_.empty(); }

  // Requires a synopsis covering `block`.
  BlockDecision Classify(size_t block, ScanStats* stats) const;

  // Exact match count over rows [begin, end); `sel` needs end - begin
  // slots of scratch. When `block` is known, predicates that fully match
  // the block's envelope are skipped.
  size_t CountBlock(size_t block, uint32_t begin, uint32_t end,
                    uint32_t* sel, ScanStats* stats) const;
  // As CountBlock, but leaves the matching row ids in `sel`.
  size_t FilterBlock(size_t block, uint32_t begin, uint32_t end,
                     uint32_t* sel, ScanStats* stats) const;

 private:
  struct Pred {
    const double* values = nullptr;
    double lo = 0.0;
    double hi = 0.0;
    int column = 0;
    // Dictionary lowering (null when the column has no dictionary).
    const uint8_t* codes8 = nullptr;
    const uint16_t* codes16 = nullptr;
    uint32_t code_lo = 0;
    uint32_t code_hi = 0;
  };

  size_t Evaluate(size_t block, uint32_t begin, uint32_t end, uint32_t* sel,
                  ScanStats* stats, bool count_only) const;

  std::vector<Pred> preds_;  // most selective first.
  const TableSynopsis* synopsis_ = nullptr;
  bool satisfiable_ = true;
};

// Scan engine bound to one table. Builds the synopsis once; queries then
// share it. After the table grows (AppendRows + Finalize), call Refresh()
// to extend the synopsis incrementally — Count/CountBatch abort if the
// table grew without a Refresh (the dictionary code arrays would be
// stale). The table must outlive the scanner and must not shrink or change
// schema between Refresh() calls.
class BlockScanner {
 public:
  explicit BlockScanner(const Table& table, ScanOptions options = {});

  // Re-syncs the synopsis after rows were appended to the table.
  void Refresh() { synopsis_.ExtendTo(*table_); }

  const TableSynopsis& synopsis() const { return synopsis_; }

  // Cumulative pruning counters across every Count/CountBatch/Label call.
  ScanStats stats() const { return stats_.Snapshot(); }

  // Exact match count / selectivity of one query.
  size_t Count(const Query& query) const;
  double Selectivity(const Query& query) const;

  // Shared-scan batch labeling: streams each block once through every
  // query (loop order blocks-outer, queries-inner), parallelized over
  // block ranges. Per-query counts are integer sums over disjoint blocks,
  // so the result is independent of thread partitioning and bit-identical
  // to labeling each query alone.
  std::vector<size_t> CountBatch(const std::vector<Query>& queries) const;
  std::vector<double> Label(const std::vector<Query>& queries) const;

 private:
  const Table* table_;
  ScanOptions options_;
  TableSynopsis synopsis_;
  mutable ScanStatsCollector stats_;
};

// One-shot conveniences behind ExecuteCount / LabelQueries. CountMatches
// skips the synopsis when no prebuilt scanner is passed (one query cannot
// amortize building it) but still runs the selection-vector block
// evaluation; callers that issue repeated single queries against the same
// table should build one BlockScanner and pass it. LabelMatches builds a
// scanner and shared-scans the whole batch.
size_t CountMatches(const Table& table, const Query& query,
                    const BlockScanner* scanner = nullptr);
std::vector<double> LabelMatches(const Table& table,
                                 const std::vector<Query>& queries);

}  // namespace arecel::scan

#endif  // ARECEL_SCAN_BLOCK_SCAN_H_
