#ifndef ARECEL_SCAN_BLOCK_SCAN_H_
#define ARECEL_SCAN_BLOCK_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/table.h"
#include "scan/synopsis.h"
#include "workload/query.h"

namespace arecel::scan {

// Vectorized exact-count execution engine (DESIGN.md §8).
//
// Three layers, cheapest first:
//  1. zone maps (TableSynopsis): a predicate skips every block whose
//     [min, max] envelope misses its interval, and counts wholesale every
//     block whose envelope it contains;
//  2. selection vectors: surviving blocks are evaluated one *column* at a
//     time, most-selective predicate first, compacting a dense row-id
//     vector instead of re-testing every predicate per row;
//  3. branch-free kernels: the inner loops are data-independent
//     `lo <= v && v <= hi` passes over contiguous column blocks.
//
// All counts are exact integers: results are bit-identical to the naive
// reference executor (ExecuteCountNaive) by construction, which
// tests/scan_engine_test.cc enforces differentially. Interval semantics are
// Predicate::Matches (inclusive bounds, NaN never matches).

struct ScanOptions {
  size_t block_size = kDefaultBlockSize;
};

// Branch-free interval kernels over contiguous column data. Exposed for the
// micro-benchmark and tests; `sel` must have room for (end - begin) ids.
//
// Writes the row ids in [begin, end) with lo <= values[r] <= hi into `sel`;
// returns how many matched.
size_t FilterInterval(const double* values, uint32_t begin, uint32_t end,
                      double lo, double hi, uint32_t* sel);
// Compacts `sel` (n row ids) in place, keeping ids whose value lies in
// [lo, hi]; returns the surviving count.
size_t RefineInterval(const double* values, double lo, double hi,
                      uint32_t* sel, size_t n);
// Count-only variant for single-predicate scans (no ids materialized).
size_t CountInterval(const double* values, uint32_t begin, uint32_t end,
                     double lo, double hi);

// Scan engine bound to one table. Builds the synopsis once; queries then
// share it. After the table grows (AppendRows + Finalize), call Refresh()
// to extend the synopsis incrementally. The table must outlive the scanner
// and must not shrink or change schema between Refresh() calls.
class BlockScanner {
 public:
  explicit BlockScanner(const Table& table, ScanOptions options = {});

  // Re-syncs the synopsis after rows were appended to the table.
  void Refresh() { synopsis_.ExtendTo(*table_); }

  const TableSynopsis& synopsis() const { return synopsis_; }

  // Exact match count / selectivity of one query.
  size_t Count(const Query& query) const;
  double Selectivity(const Query& query) const;

  // Shared-scan batch labeling: streams each block once through every
  // query (loop order blocks-outer, queries-inner), parallelized over
  // block ranges. Per-query counts are integer sums over disjoint blocks,
  // so the result is independent of thread partitioning and bit-identical
  // to labeling each query alone.
  std::vector<size_t> CountBatch(const std::vector<Query>& queries) const;
  std::vector<double> Label(const std::vector<Query>& queries) const;

 private:
  const Table* table_;
  ScanOptions options_;
  TableSynopsis synopsis_;
};

// One-shot conveniences behind ExecuteCount / LabelQueries. CountMatches
// skips the synopsis (one query cannot amortize building it) but still
// runs the selection-vector block evaluation; LabelMatches builds a
// scanner and shared-scans the whole batch.
size_t CountMatches(const Table& table, const Query& query);
std::vector<double> LabelMatches(const Table& table,
                                 const std::vector<Query>& queries);

}  // namespace arecel::scan

#endif  // ARECEL_SCAN_BLOCK_SCAN_H_
