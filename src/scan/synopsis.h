#ifndef ARECEL_SCAN_SYNOPSIS_H_
#define ARECEL_SCAN_SYNOPSIS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/table.h"
#include "workload/query.h"

namespace arecel::scan {

// Rows per zone-map block. 4096 doubles = 32 KB per column block, so one
// block of one column fits comfortably in L1 while the per-block metadata
// stays negligible even for million-row tables.
inline constexpr size_t kDefaultBlockSize = 4096;

// Distinct-value budget for dictionary encoding: a column with at most this
// many distinct non-NaN values gets a sorted global dictionary, a narrow
// (u8/u16) per-row code array, and per-block presence bitmaps. 4096 codes
// keep one block's bitmap at 512 bytes and cover every categorical column
// of the paper's Census/DMV-shaped tables.
inline constexpr size_t kDefaultMaxDictCodes = 4096;

// Buckets in the per-block equi-width mini-histograms kept for
// non-dictionary columns.
inline constexpr size_t kDefaultHistogramBuckets = 16;

struct SynopsisOptions {
  size_t block_size = kDefaultBlockSize;
  // When false, only min/max zone maps are built (the pre-dictionary
  // engine). The bench's baseline arm; also an escape hatch for throwaway
  // single-scan tables.
  bool rich = true;
  size_t max_dict_codes = kDefaultMaxDictCodes;
  size_t histogram_buckets = kDefaultHistogramBuckets;
};

// An inclusive dictionary-code interval equivalent to a value interval
// [lo, hi] on a dictionary-coded column: a non-NaN value matches the
// predicate iff its code lies in [lo, hi]. `empty` means no dictionary
// value falls inside the predicate interval — zero rows can match anywhere
// in the table.
struct CodeRange {
  uint32_t lo = 0;
  uint32_t hi = 0;
  bool empty = true;
};

// Per-column synopses over fixed-size row blocks of one table
// (DESIGN.md §8). Four cooperating layers:
//
//  1. min/max zone maps for every column (NaN-aware: NaN values never
//     widen an envelope, and a block containing NaN is never counted
//     wholesale, matching Predicate::Matches which NaN never satisfies);
//  2. for low-distinct columns (<= max_dict_codes non-NaN distinct
//     values): a sorted global dictionary + per-row u8/u16 code array +
//     per-block presence bitmaps over codes. Equality predicates skip
//     every block whose bit is clear and count wholesale when the block is
//     constant-valued; range predicates prune via code-range bit tests.
//  3. for the remaining columns: per-block equi-width mini-histograms and
//     saturating distinct-count estimates — a predicate whose interval
//     covers only empty buckets skips the block even when it overlaps the
//     [min, max] envelope;
//  4. exact global code counts (dictionary columns) / aggregated histogram
//     mass (others) back EstimateFraction, the selectivity key the scan
//     planner orders predicates by.
//
// Built in one pass plus an O(n) distinct-detection pass; after an append
// (Table::AppendRows + Finalize) ExtendTo() recomputes only from the first
// block the append touched. An append may introduce brand-new dictionary
// values: the dictionary then grows (codes remapped, bitmaps rebuilt) or,
// past the budget, the column is demoted to the mini-histogram layer —
// either way counts stay bit-identical to the naive executor. Demotion is
// sticky until the next full rebuild.
class TableSynopsis {
 public:
  TableSynopsis() = default;
  explicit TableSynopsis(const Table& table,
                         size_t block_size = kDefaultBlockSize);
  TableSynopsis(const Table& table, const SynopsisOptions& options);

  // Re-syncs with `table` after rows were appended: recomputes the last
  // (possibly partial) previously-covered block and everything after it.
  // A table that shrank or changed column count triggers a full rebuild.
  void ExtendTo(const Table& table);

  size_t block_size() const { return options_.block_size; }
  size_t num_blocks() const { return num_blocks_; }
  size_t covered_rows() const { return rows_; }
  bool rich() const { return options_.rich; }

  // Total heap footprint of every synopsis structure (zone maps,
  // dictionaries, code arrays, bitmaps, histograms), in bytes.
  size_t SizeBytes() const;

  // ---- layer 1: zone maps -------------------------------------------------

  double BlockMin(size_t col, size_t block) const {
    return mins_[col][block];
  }
  double BlockMax(size_t col, size_t block) const {
    return maxs_[col][block];
  }
  bool BlockHasNaN(size_t col, size_t block) const {
    return has_nan_[col][block] != 0;
  }

  // Interval [lo, hi] on `col` overlaps the block's envelope: at least one
  // row of the block *may* match.
  bool CanMatch(size_t block, size_t col, double lo, double hi) const {
    return lo <= maxs_[col][block] && hi >= mins_[col][block];
  }
  // Interval [lo, hi] contains the block's envelope and the block holds no
  // NaN: every row matches.
  bool FullyMatches(size_t block, size_t col, double lo, double hi) const {
    return lo <= mins_[col][block] && maxs_[col][block] <= hi &&
           has_nan_[col][block] == 0;
  }

  bool CanMatch(size_t block, const Predicate& p) const {
    return CanMatch(block, static_cast<size_t>(p.column), p.lo, p.hi);
  }
  bool FullyMatches(size_t block, const Predicate& p) const {
    return FullyMatches(block, static_cast<size_t>(p.column), p.lo, p.hi);
  }

  // ---- layer 2: dictionary columns ---------------------------------------

  bool HasDictionary(size_t col) const {
    return col < dicts_.size() && dicts_[col].active;
  }
  // Number of distinct non-NaN values (valid codes are [0, size)).
  size_t DictionarySize(size_t col) const { return dicts_[col].dict.size(); }
  // Exactly one of these is non-null for a dictionary column: the per-row
  // code array at the narrow width the cardinality fits. Rows holding NaN
  // carry the sentinel code DictionarySize(col), which no CodeRange ever
  // includes.
  const uint8_t* Codes8(size_t col) const {
    return dicts_[col].wide ? nullptr : dicts_[col].codes8.data();
  }
  const uint16_t* Codes16(size_t col) const {
    return dicts_[col].wide ? dicts_[col].codes16.data() : nullptr;
  }

  // Maps a value interval to the equivalent inclusive code interval.
  CodeRange ToCodeRange(size_t col, double lo, double hi) const;

  // Any row of `block` carries a code in `range` (presence bitmap test).
  // Wholesale counting needs no bitmap variant: because the dictionary is
  // sorted, "every present code lies in the code range" is exactly the
  // zone-map FullyMatches condition.
  bool BitmapCanMatch(size_t block, size_t col, const CodeRange& range) const;

  // Exact fraction of covered rows whose code lies in `range`.
  double DictFraction(size_t col, const CodeRange& range) const;

  // ---- layer 3: mini-synopses for non-dictionary columns ------------------

  bool HasHistogram(size_t col) const {
    return col < minis_.size() && !minis_[col].histogram.empty();
  }
  // False when every histogram bucket overlapping [lo, hi] is empty — the
  // block cannot contain a matching row even though its envelope overlaps.
  bool HistogramCanMatch(size_t block, size_t col, double lo, double hi) const;
  // Saturating exact distinct count of the block (caps at 256).
  uint32_t BlockDistinctEstimate(size_t col, size_t block) const {
    return minis_[col].distinct[block];
  }

  // ---- layer 4: selectivity estimation for predicate ordering -------------

  // Estimated fraction of rows matching [lo, hi] on `col`: exact for
  // dictionary columns (prefix-summed global code counts, O(log d)), a
  // value-span overlap heuristic otherwise. Ordering key for the
  // cheapest-first predicate pass; must stay O(1)-ish — it runs once per
  // predicate per compiled query.
  double EstimateFraction(size_t col, double lo, double hi) const;

 private:
  struct DictColumn {
    bool active = false;
    bool demoted = false;  // crossed the budget on append; sticky.
    bool wide = false;     // true => codes16, else codes8.
    std::vector<double> dict;      // sorted distinct non-NaN values.
    std::vector<uint8_t> codes8;   // per-row code (sentinel = dict.size()).
    std::vector<uint16_t> codes16;
    std::vector<uint64_t> bitmap;  // [block * words_per_block + word].
    std::vector<uint32_t> block_set_bits;  // distinct codes present per block.
    std::vector<uint32_t> code_counts;     // global rows per code.
    std::vector<uint64_t> code_prefix;     // size + 1; prefix of code_counts.
    size_t words_per_block = 0;
  };
  struct MiniColumn {
    // [block * histogram_buckets + bucket], equi-width over the block's
    // [min, max] envelope; NaN rows are counted nowhere.
    std::vector<uint32_t> histogram;
    std::vector<uint16_t> distinct;  // saturating per-block distinct count.
  };

  void Build(const Table& table);
  // Recomputes zone maps + mini-histograms for blocks [first_block, end).
  void BuildBlocks(const Table& table, size_t first_block);
  void BuildMiniBlocks(const Table& table, size_t col, size_t first_block);
  // Fresh dictionary detection + encoding for one column (full pass).
  void BuildDictionary(const Table& table, size_t col);
  // Appends codes for rows [old_rows, rows_), growing or demoting the
  // dictionary when the append introduced new values.
  void ExtendDictionary(const Table& table, size_t col, size_t old_rows,
                        size_t first_block);
  void RebuildBitmaps(DictColumn& d, size_t first_block);
  static void RebuildPrefix(DictColumn& d);
  void EncodeRows(DictColumn& d, const double* values, size_t begin,
                  size_t end);

  SynopsisOptions options_;
  size_t rows_ = 0;
  size_t num_blocks_ = 0;
  std::vector<std::vector<double>> mins_;  // [col][block].
  std::vector<std::vector<double>> maxs_;
  std::vector<std::vector<uint8_t>> has_nan_;
  std::vector<double> col_min_;  // table-level envelope per column
  std::vector<double> col_max_;  // (NaN excluded), for EstimateFraction.
  std::vector<DictColumn> dicts_;  // [col]; inactive for wide columns.
  std::vector<MiniColumn> minis_;  // [col]; empty for dictionary columns.
};

}  // namespace arecel::scan

#endif  // ARECEL_SCAN_SYNOPSIS_H_
