#ifndef ARECEL_SCAN_SYNOPSIS_H_
#define ARECEL_SCAN_SYNOPSIS_H_

#include <cstddef>
#include <vector>

#include "data/table.h"
#include "workload/query.h"

namespace arecel::scan {

// Rows per zone-map block. 4096 doubles = 32 KB per column block, so one
// block of one column fits comfortably in L1 while the per-block metadata
// (16 bytes per column) stays negligible even for million-row tables.
inline constexpr size_t kDefaultBlockSize = 4096;

// Per-column min/max zone maps over fixed-size row blocks of one table.
//
// A predicate `lo <= v <= hi` can only match inside a block whose
// [min, max] envelope overlaps [lo, hi]; a block whose envelope is
// *contained* in [lo, hi] matches wholesale and never needs its values
// touched. Built in one pass over the table; after an append
// (Table::AppendRows + Finalize) ExtendTo() recomputes only from the first
// block the append touched, so synopsis maintenance is O(new rows), not
// O(table).
class TableSynopsis {
 public:
  TableSynopsis() = default;
  explicit TableSynopsis(const Table& table,
                         size_t block_size = kDefaultBlockSize);

  // Re-syncs with `table` after rows were appended: recomputes the last
  // (possibly partial) previously-covered block and everything after it.
  // A table that shrank or changed column count triggers a full rebuild.
  void ExtendTo(const Table& table);

  size_t block_size() const { return block_size_; }
  size_t num_blocks() const { return num_blocks_; }
  size_t covered_rows() const { return rows_; }

  double BlockMin(size_t col, size_t block) const {
    return mins_[col][block];
  }
  double BlockMax(size_t col, size_t block) const {
    return maxs_[col][block];
  }

  // Interval [lo, hi] on `col` overlaps the block's envelope: at least one
  // row of the block *may* match.
  bool CanMatch(size_t block, size_t col, double lo, double hi) const {
    return lo <= maxs_[col][block] && hi >= mins_[col][block];
  }
  // Interval [lo, hi] contains the block's envelope: every row matches.
  bool FullyMatches(size_t block, size_t col, double lo, double hi) const {
    return lo <= mins_[col][block] && maxs_[col][block] <= hi;
  }

  bool CanMatch(size_t block, const Predicate& p) const {
    return CanMatch(block, static_cast<size_t>(p.column), p.lo, p.hi);
  }
  bool FullyMatches(size_t block, const Predicate& p) const {
    return FullyMatches(block, static_cast<size_t>(p.column), p.lo, p.hi);
  }

 private:
  // Recomputes blocks [first_block, ceil(rows / block_size)) per column.
  void BuildBlocks(const Table& table, size_t first_block);

  size_t block_size_ = kDefaultBlockSize;
  size_t rows_ = 0;
  size_t num_blocks_ = 0;
  std::vector<std::vector<double>> mins_;  // [col][block].
  std::vector<std::vector<double>> maxs_;
};

}  // namespace arecel::scan

#endif  // ARECEL_SCAN_SYNOPSIS_H_
