#include "scan/synopsis.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/check.h"

namespace arecel::scan {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr size_t kDistinctCap = 256;  // per-block distinct-count saturation.

// Canonical bit pattern for dictionary identity: -0.0 collapses onto +0.0
// (operator== treats them as equal, so Predicate::Matches cannot tell them
// apart and neither may the dictionary). NaN is handled before this.
uint64_t CanonicalBits(double v) {
  if (v == 0.0) v = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Transient open-addressing map from canonical value bits to a dictionary
// code. Empty slots are marked by code -1 (every real code is >= 0), so the
// all-zero key (+0.0) needs no special casing.
class CodeMap {
 public:
  explicit CodeMap(size_t expected_entries) {
    size_t cap = 16;
    while (cap < 2 * expected_entries + 2) cap <<= 1;
    keys_.assign(cap, 0);
    codes_.assign(cap, -1);
    mask_ = cap - 1;
  }

  // Inserts bits -> code unless present; returns true when newly inserted.
  bool Insert(uint64_t bits, int32_t code) {
    size_t slot = Mix(bits) & mask_;
    while (codes_[slot] >= 0) {
      if (keys_[slot] == bits) return false;
      slot = (slot + 1) & mask_;
    }
    keys_[slot] = bits;
    codes_[slot] = code;
    ++size_;
    return true;
  }

  int32_t Find(uint64_t bits) const {
    size_t slot = Mix(bits) & mask_;
    while (codes_[slot] >= 0) {
      if (keys_[slot] == bits) return codes_[slot];
      slot = (slot + 1) & mask_;
    }
    return -1;
  }

  size_t size() const { return size_; }

 private:
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::vector<uint64_t> keys_;
  std::vector<int32_t> codes_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

size_t Popcount64(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<size_t>(__builtin_popcountll(x));
#else
  size_t n = 0;
  while (x != 0) {
    x &= x - 1;
    ++n;
  }
  return n;
#endif
}

}  // namespace

TableSynopsis::TableSynopsis(const Table& table, size_t block_size)
    : TableSynopsis(table, [block_size] {
        SynopsisOptions o;
        o.block_size = block_size;
        return o;
      }()) {}

TableSynopsis::TableSynopsis(const Table& table,
                             const SynopsisOptions& options)
    : options_(options) {
  ARECEL_CHECK_MSG(options_.block_size > 0, "block size must be positive");
  ARECEL_CHECK_MSG(options_.histogram_buckets > 0,
                   "histogram bucket count must be positive");
  ARECEL_CHECK_MSG(options_.max_dict_codes <= 65535,
                   "dictionary codes must fit 16-bit storage");
  Build(table);
}

void TableSynopsis::Build(const Table& table) {
  const size_t cols = table.num_cols();
  rows_ = table.num_rows();
  num_blocks_ = (rows_ + options_.block_size - 1) / options_.block_size;
  mins_.assign(cols, {});
  maxs_.assign(cols, {});
  has_nan_.assign(cols, {});
  col_min_.assign(cols, kInf);
  col_max_.assign(cols, -kInf);
  dicts_.assign(cols, {});
  minis_.assign(cols, {});
  BuildBlocks(table, 0);
  if (!options_.rich) return;
  for (size_t c = 0; c < cols; ++c) {
    BuildDictionary(table, c);
    if (!dicts_[c].active) BuildMiniBlocks(table, c, 0);
  }
}

void TableSynopsis::ExtendTo(const Table& table) {
  const bool shape_changed =
      table.num_cols() != mins_.size() || table.num_rows() < rows_;
  if (shape_changed) {
    Build(table);
    return;
  }
  // The append only dirtied the last previously-covered block (it may have
  // been partial) and created blocks after it; everything before is
  // immutable under the AppendRows contract.
  const size_t old_rows = rows_;
  const size_t first_block = old_rows / options_.block_size;
  rows_ = table.num_rows();
  num_blocks_ = (rows_ + options_.block_size - 1) / options_.block_size;
  BuildBlocks(table, first_block);
  if (!options_.rich) return;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (dicts_[c].active) {
      ExtendDictionary(table, c, old_rows, first_block);
    } else {
      BuildMiniBlocks(table, c, first_block);
    }
  }
}

void TableSynopsis::BuildBlocks(const Table& table, size_t first_block) {
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const double* values = table.column(c).values.data();
    mins_[c].resize(num_blocks_);
    maxs_[c].resize(num_blocks_);
    has_nan_[c].resize(num_blocks_);
    for (size_t b = first_block; b < num_blocks_; ++b) {
      const size_t lo = b * options_.block_size;
      const size_t hi = std::min(rows_, lo + options_.block_size);
      // NaN never matches a predicate, so it must not widen the envelope;
      // an all-NaN block gets the empty envelope [+inf, -inf], which no
      // interval overlaps. Any NaN also vetoes wholesale counting.
      double block_min = kInf;
      double block_max = -kInf;
      bool block_nan = false;
      for (size_t r = lo; r < hi; ++r) {
        const double v = values[r];
        if (std::isnan(v)) {
          block_nan = true;
          continue;
        }
        block_min = std::min(block_min, v);
        block_max = std::max(block_max, v);
      }
      mins_[c][b] = block_min;
      maxs_[c][b] = block_max;
      has_nan_[c][b] = block_nan ? 1 : 0;
      col_min_[c] = std::min(col_min_[c], block_min);
      col_max_[c] = std::max(col_max_[c], block_max);
    }
  }
}

void TableSynopsis::BuildMiniBlocks(const Table& table, size_t col,
                                    size_t first_block) {
  MiniColumn& m = minis_[col];
  const size_t buckets = options_.histogram_buckets;
  const double* values = table.column(col).values.data();
  m.histogram.resize(num_blocks_ * buckets);
  m.distinct.resize(num_blocks_);
  for (size_t b = first_block; b < num_blocks_; ++b) {
    const size_t lo = b * options_.block_size;
    const size_t hi = std::min(rows_, lo + options_.block_size);
    uint32_t* hist = m.histogram.data() + b * buckets;
    std::fill(hist, hist + buckets, 0u);
    const double bmin = mins_[col][b];
    const double bmax = maxs_[col][b];
    const double width =
        bmax > bmin ? (bmax - bmin) / static_cast<double>(buckets) : 0.0;
    CodeMap probe(kDistinctCap);
    size_t distinct = 0;
    for (size_t r = lo; r < hi; ++r) {
      const double v = values[r];
      if (std::isnan(v)) continue;  // counted in no bucket: never matches.
      size_t idx = 0;
      if (width > 0.0) {
        idx = std::min(buckets - 1,
                       static_cast<size_t>((v - bmin) / width));
      }
      ++hist[idx];
      if (distinct < kDistinctCap && probe.Insert(CanonicalBits(v), 0)) {
        ++distinct;
      }
    }
    m.distinct[b] = static_cast<uint16_t>(distinct);
  }
}

void TableSynopsis::BuildDictionary(const Table& table, size_t col) {
  DictColumn& d = dicts_[col];
  d = DictColumn{};
  const double* values = table.column(col).values.data();

  // Pass 1: distinct detection with an early bail past the code budget.
  CodeMap probe(options_.max_dict_codes);
  std::vector<double> distinct;
  distinct.reserve(std::min(rows_, options_.max_dict_codes + 1));
  for (size_t r = 0; r < rows_; ++r) {
    const double v = values[r];
    if (std::isnan(v)) continue;
    const double canon = v == 0.0 ? 0.0 : v;
    if (probe.Insert(CanonicalBits(canon), 0)) {
      distinct.push_back(canon);
      if (distinct.size() > options_.max_dict_codes) return;  // too wide.
    }
  }
  if (distinct.empty()) return;  // all-NaN column: nothing to code.

  std::sort(distinct.begin(), distinct.end());
  d.dict = std::move(distinct);
  d.wide = d.dict.size() > 255;  // the NaN sentinel must fit the width too.
  d.words_per_block = (d.dict.size() + 63) / 64;
  d.code_counts.assign(d.dict.size(), 0);

  // Pass 2: O(1) per-row encoding through a bits -> code map.
  CodeMap encode(d.dict.size());
  for (size_t i = 0; i < d.dict.size(); ++i) {
    encode.Insert(CanonicalBits(d.dict[i]), static_cast<int32_t>(i));
  }
  const uint32_t sentinel = static_cast<uint32_t>(d.dict.size());
  if (d.wide) {
    d.codes16.resize(rows_);
  } else {
    d.codes8.resize(rows_);
  }
  for (size_t r = 0; r < rows_; ++r) {
    const double v = values[r];
    uint32_t code = sentinel;
    if (!std::isnan(v)) {
      code = static_cast<uint32_t>(encode.Find(CanonicalBits(v)));
      ++d.code_counts[code];
    }
    if (d.wide) {
      d.codes16[r] = static_cast<uint16_t>(code);
    } else {
      d.codes8[r] = static_cast<uint8_t>(code);
    }
  }
  d.active = true;
  RebuildPrefix(d);
  RebuildBitmaps(d, 0);
}

void TableSynopsis::RebuildPrefix(DictColumn& d) {
  d.code_prefix.assign(d.dict.size() + 1, 0);
  for (size_t i = 0; i < d.dict.size(); ++i) {
    d.code_prefix[i + 1] = d.code_prefix[i] + d.code_counts[i];
  }
}

void TableSynopsis::EncodeRows(DictColumn& d, const double* values,
                               size_t begin, size_t end) {
  const uint32_t sentinel = static_cast<uint32_t>(d.dict.size());
  if (d.wide) {
    d.codes16.resize(end);
  } else {
    d.codes8.resize(end);
  }
  for (size_t r = begin; r < end; ++r) {
    const double v = values[r];
    uint32_t code = sentinel;
    if (!std::isnan(v)) {
      const auto it = std::lower_bound(d.dict.begin(), d.dict.end(), v);
      ARECEL_CHECK_MSG(it != d.dict.end() && *it == v,
                       "appended value missing from dictionary");
      code = static_cast<uint32_t>(it - d.dict.begin());
      ++d.code_counts[code];
    }
    if (d.wide) {
      d.codes16[r] = static_cast<uint16_t>(code);
    } else {
      d.codes8[r] = static_cast<uint8_t>(code);
    }
  }
}

void TableSynopsis::ExtendDictionary(const Table& table, size_t col,
                                     size_t old_rows, size_t first_block) {
  DictColumn& d = dicts_[col];
  const double* values = table.column(col).values.data();

  // Which appended values are new to the dictionary?
  std::vector<double> fresh;
  for (size_t r = old_rows; r < rows_; ++r) {
    const double v = values[r];
    if (std::isnan(v)) continue;
    if (!std::binary_search(d.dict.begin(), d.dict.end(), v)) {
      fresh.push_back(v == 0.0 ? 0.0 : v);
    }
  }

  if (fresh.empty()) {
    EncodeRows(d, values, old_rows, rows_);
    RebuildPrefix(d);
    RebuildBitmaps(d, first_block);
    return;
  }

  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  std::vector<double> merged(d.dict.size() + fresh.size());
  std::merge(d.dict.begin(), d.dict.end(), fresh.begin(), fresh.end(),
             merged.begin());

  if (merged.size() > options_.max_dict_codes) {
    // The column outgrew the code budget mid-append: demote it to the
    // mini-histogram layer. Sticky until the next full rebuild — appends
    // only ever add distinct values.
    d = DictColumn{};
    d.demoted = true;
    BuildMiniBlocks(table, col, 0);
    return;
  }

  // Grow: every old code shifts by the number of fresh values sorted below
  // it, and the NaN sentinel moves from old_size to merged size. Remap the
  // existing code array in place (widening u8 -> u16 when the grown
  // dictionary no longer fits), then encode the appended rows.
  const size_t old_size = d.dict.size();
  const uint32_t old_sentinel = static_cast<uint32_t>(old_size);
  const uint32_t new_sentinel = static_cast<uint32_t>(merged.size());
  std::vector<uint32_t> remap(old_size + 1);
  for (size_t i = 0; i < old_size; ++i) {
    remap[i] = static_cast<uint32_t>(
        std::lower_bound(merged.begin(), merged.end(), d.dict[i]) -
        merged.begin());
  }
  remap[old_sentinel] = new_sentinel;

  std::vector<uint32_t> counts(merged.size(), 0);
  for (size_t i = 0; i < old_size; ++i) counts[remap[i]] = d.code_counts[i];
  d.code_counts = std::move(counts);

  const bool widen = !d.wide && merged.size() > 255;
  if (widen) {
    d.codes16.resize(old_rows);
    for (size_t r = 0; r < old_rows; ++r) {
      d.codes16[r] = static_cast<uint16_t>(remap[d.codes8[r]]);
    }
    d.codes8.clear();
    d.codes8.shrink_to_fit();
    d.wide = true;
  } else if (d.wide) {
    for (size_t r = 0; r < old_rows; ++r) {
      d.codes16[r] = static_cast<uint16_t>(remap[d.codes16[r]]);
    }
  } else {
    for (size_t r = 0; r < old_rows; ++r) {
      d.codes8[r] = static_cast<uint8_t>(remap[d.codes8[r]]);
    }
  }
  d.dict = std::move(merged);
  d.words_per_block = (d.dict.size() + 63) / 64;
  EncodeRows(d, values, old_rows, rows_);
  RebuildPrefix(d);
  RebuildBitmaps(d, 0);  // every code moved: all bitmaps are stale.
}

void TableSynopsis::RebuildBitmaps(DictColumn& d, size_t first_block) {
  const size_t words = d.words_per_block;
  d.bitmap.resize(num_blocks_ * words);
  d.block_set_bits.resize(num_blocks_);
  const uint32_t sentinel = static_cast<uint32_t>(d.dict.size());
  for (size_t b = first_block; b < num_blocks_; ++b) {
    const size_t lo = b * options_.block_size;
    const size_t hi = std::min(rows_, lo + options_.block_size);
    uint64_t* w = d.bitmap.data() + b * words;
    std::fill(w, w + words, 0ull);
    for (size_t r = lo; r < hi; ++r) {
      const uint32_t code =
          d.wide ? d.codes16[r] : static_cast<uint32_t>(d.codes8[r]);
      if (code == sentinel) continue;  // NaN row: present in no code.
      w[code >> 6] |= 1ull << (code & 63);
    }
    size_t set = 0;
    for (size_t k = 0; k < words; ++k) set += Popcount64(w[k]);
    d.block_set_bits[b] = static_cast<uint32_t>(set);
  }
}

CodeRange TableSynopsis::ToCodeRange(size_t col, double lo, double hi) const {
  const DictColumn& d = dicts_[col];
  CodeRange range;
  const auto begin = d.dict.begin();
  const auto first = std::lower_bound(begin, d.dict.end(), lo);
  const auto last = std::upper_bound(first, d.dict.end(), hi);
  if (first == last) return range;  // empty: no dictionary value in [lo,hi].
  range.lo = static_cast<uint32_t>(first - begin);
  range.hi = static_cast<uint32_t>(last - begin) - 1;
  range.empty = false;
  return range;
}

bool TableSynopsis::BitmapCanMatch(size_t block, size_t col,
                                   const CodeRange& range) const {
  const DictColumn& d = dicts_[col];
  const uint64_t* w = d.bitmap.data() + block * d.words_per_block;
  const size_t word_lo = range.lo >> 6;
  const size_t word_hi = range.hi >> 6;
  const uint64_t mask_lo = ~0ull << (range.lo & 63);
  const uint64_t mask_hi = ~0ull >> (63 - (range.hi & 63));
  if (word_lo == word_hi) return (w[word_lo] & mask_lo & mask_hi) != 0;
  if ((w[word_lo] & mask_lo) != 0) return true;
  for (size_t k = word_lo + 1; k < word_hi; ++k) {
    if (w[k] != 0) return true;
  }
  return (w[word_hi] & mask_hi) != 0;
}

double TableSynopsis::DictFraction(size_t col, const CodeRange& range) const {
  if (range.empty || rows_ == 0) return 0.0;
  const DictColumn& d = dicts_[col];
  const uint64_t matching =
      d.code_prefix[range.hi + 1] - d.code_prefix[range.lo];
  return static_cast<double>(matching) / static_cast<double>(rows_);
}

bool TableSynopsis::HistogramCanMatch(size_t block, size_t col, double lo,
                                      double hi) const {
  const MiniColumn& m = minis_[col];
  const size_t buckets = options_.histogram_buckets;
  const double bmin = mins_[col][block];
  const double bmax = maxs_[col][block];
  if (bmin > bmax) return false;  // all-NaN block: empty envelope.
  const double clamped_lo = std::max(lo, bmin);
  const double clamped_hi = std::min(hi, bmax);
  if (clamped_lo > clamped_hi) return false;
  const double width =
      bmax > bmin ? (bmax - bmin) / static_cast<double>(buckets) : 0.0;
  size_t b_lo = 0;
  size_t b_hi = 0;
  if (width > 0.0) {
    // Same index formula as the build pass; IEEE subtraction/division are
    // monotone, so every matching value's bucket lies in [b_lo, b_hi].
    b_lo = std::min(buckets - 1,
                    static_cast<size_t>((clamped_lo - bmin) / width));
    b_hi = std::min(buckets - 1,
                    static_cast<size_t>((clamped_hi - bmin) / width));
  }
  const uint32_t* hist = m.histogram.data() + block * buckets;
  for (size_t k = b_lo; k <= b_hi; ++k) {
    if (hist[k] != 0) return true;
  }
  return false;
}

double TableSynopsis::EstimateFraction(size_t col, double lo,
                                       double hi) const {
  if (rows_ == 0) return 0.0;
  if (HasDictionary(col)) return DictFraction(col, ToCodeRange(col, lo, hi));
  // Value-span overlap against the table-level envelope. Coarse, but O(1):
  // this runs once per predicate per compiled query, so walking the
  // per-block histograms here would cost more than the ordering saves.
  const double cmin = col_min_[col];
  const double cmax = col_max_[col];
  if (cmin > cmax) return 0.0;  // all-NaN column.
  const double span = cmax - cmin;
  if (!(span > 0.0)) return (lo <= cmin && cmin <= hi) ? 1.0 : 0.0;
  const double clamped_lo = std::max(lo, cmin);
  const double clamped_hi = std::min(hi, cmax);
  if (clamped_lo > clamped_hi) return 0.0;
  return (clamped_hi - clamped_lo) / span;
}

size_t TableSynopsis::SizeBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& v : mins_) bytes += VectorBytes(v);
  for (const auto& v : maxs_) bytes += VectorBytes(v);
  for (const auto& v : has_nan_) bytes += VectorBytes(v);
  bytes += VectorBytes(col_min_) + VectorBytes(col_max_);
  for (const DictColumn& d : dicts_) {
    bytes += VectorBytes(d.dict) + VectorBytes(d.codes8) +
             VectorBytes(d.codes16) + VectorBytes(d.bitmap) +
             VectorBytes(d.block_set_bits) + VectorBytes(d.code_counts) +
             VectorBytes(d.code_prefix);
  }
  for (const MiniColumn& m : minis_) {
    bytes += VectorBytes(m.histogram) + VectorBytes(m.distinct);
  }
  return bytes;
}

}  // namespace arecel::scan
