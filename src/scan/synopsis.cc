#include "scan/synopsis.h"

#include <algorithm>

#include "util/check.h"

namespace arecel::scan {

TableSynopsis::TableSynopsis(const Table& table, size_t block_size)
    : block_size_(block_size) {
  ARECEL_CHECK_MSG(block_size_ > 0, "block size must be positive");
  mins_.resize(table.num_cols());
  maxs_.resize(table.num_cols());
  rows_ = table.num_rows();
  num_blocks_ = (rows_ + block_size_ - 1) / block_size_;
  BuildBlocks(table, 0);
}

void TableSynopsis::ExtendTo(const Table& table) {
  const bool shape_changed =
      table.num_cols() != mins_.size() || table.num_rows() < rows_;
  // The append only dirtied the last previously-covered block (it may have
  // been partial) and created blocks after it; everything before is
  // immutable under the AppendRows contract.
  size_t first_block = shape_changed ? 0 : rows_ / block_size_;
  if (shape_changed) {
    mins_.assign(table.num_cols(), {});
    maxs_.assign(table.num_cols(), {});
  }
  rows_ = table.num_rows();
  num_blocks_ = (rows_ + block_size_ - 1) / block_size_;
  BuildBlocks(table, first_block);
}

void TableSynopsis::BuildBlocks(const Table& table, size_t first_block) {
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const double* values = table.column(c).values.data();
    mins_[c].resize(num_blocks_);
    maxs_[c].resize(num_blocks_);
    for (size_t b = first_block; b < num_blocks_; ++b) {
      const size_t lo = b * block_size_;
      const size_t hi = std::min(rows_, lo + block_size_);
      double block_min = values[lo];
      double block_max = values[lo];
      for (size_t r = lo + 1; r < hi; ++r) {
        block_min = std::min(block_min, values[r]);
        block_max = std::max(block_max, values[r]);
      }
      mins_[c][b] = block_min;
      maxs_[c][b] = block_max;
    }
  }
}

}  // namespace arecel::scan
