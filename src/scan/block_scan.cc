#include "scan/block_scan.h"

#include <algorithm>
#include <limits>
#include <mutex>

#include "util/check.h"
#include "util/thread_pool.h"

namespace arecel::scan {

namespace {

// Fraction of the column's distinct values covered by [lo, hi]: the
// ordering fallback when no synopsis is available (the one-shot path).
double DomainFraction(const Column& col, const Predicate& p) {
  const int32_t lo_code = col.LowerBoundCode(p.lo);
  const int32_t hi_code = col.UpperBoundCode(p.hi);
  const int32_t covered = std::max<int32_t>(0, hi_code - lo_code + 1);
  return static_cast<double>(covered) /
         static_cast<double>(col.domain_size());
}

uint32_t CheckedRowCount(const Table& table) {
  ARECEL_CHECK_MSG(
      table.num_rows() <= std::numeric_limits<uint32_t>::max(),
      "block scan uses 32-bit row ids");
  return static_cast<uint32_t>(table.num_rows());
}

// Single unsigned compare per row: c in [lo, hi] iff c - lo <= hi - lo.
// The arithmetic stays at the code's own width (u8/u16) — lo, hi, and every
// code fit it, and modular wrap preserves the trick — so the compiler can
// vectorize at 16/32 lanes per vector instead of widening each code to u32.
template <typename Code>
size_t FilterCodesImpl(const Code* codes, uint32_t begin, uint32_t end,
                       uint32_t lo, uint32_t hi, uint32_t* sel) {
  const Code lo_c = static_cast<Code>(lo);
  const Code span = static_cast<Code>(hi - lo);
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r) {
    sel[n] = r;
    n += static_cast<size_t>(static_cast<Code>(codes[r] - lo_c) <= span);
  }
  return n;
}

template <typename Code>
size_t RefineCodesImpl(const Code* codes, uint32_t lo, uint32_t hi,
                       uint32_t* sel, size_t n) {
  const Code lo_c = static_cast<Code>(lo);
  const Code span = static_cast<Code>(hi - lo);
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const Code c = codes[sel[i]];
    sel[kept] = sel[i];
    kept += static_cast<size_t>(static_cast<Code>(c - lo_c) <= span);
  }
  return kept;
}

template <typename Code>
size_t CountCodesImpl(const Code* codes, uint32_t begin, uint32_t end,
                      uint32_t lo, uint32_t hi) {
  const Code lo_c = static_cast<Code>(lo);
  const Code span = static_cast<Code>(hi - lo);
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r) {
    n += static_cast<size_t>(static_cast<Code>(codes[r] - lo_c) <= span);
  }
  return n;
}

// Fused conjunctive count over two code columns: the common two-predicate
// categorical query counts in one vectorizable pass instead of a serial
// selection-vector Filter followed by a Refine.
template <typename A, typename B>
size_t CountCodes2Impl(const A* a, uint32_t a_lo, uint32_t a_hi, const B* b,
                       uint32_t b_lo, uint32_t b_hi, uint32_t begin,
                       uint32_t end) {
  const A a_lo_c = static_cast<A>(a_lo);
  const A a_span = static_cast<A>(a_hi - a_lo);
  const B b_lo_c = static_cast<B>(b_lo);
  const B b_span = static_cast<B>(b_hi - b_lo);
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r) {
    const bool in_a = static_cast<A>(a[r] - a_lo_c) <= a_span;
    const bool in_b = static_cast<B>(b[r] - b_lo_c) <= b_span;
    n += static_cast<size_t>(in_a & in_b);
  }
  return n;
}

}  // namespace

void ScanStats::Add(const ScanStats& other) {
  classified_blocks += other.classified_blocks;
  zone_skips += other.zone_skips;
  bitmap_skips += other.bitmap_skips;
  histogram_skips += other.histogram_skips;
  full_blocks += other.full_blocks;
  scanned_blocks += other.scanned_blocks;
  dict_kernel_blocks += other.dict_kernel_blocks;
}

void ScanStatsCollector::Merge(const ScanStats& delta) {
  classified_blocks_.fetch_add(delta.classified_blocks,
                               std::memory_order_relaxed);
  zone_skips_.fetch_add(delta.zone_skips, std::memory_order_relaxed);
  bitmap_skips_.fetch_add(delta.bitmap_skips, std::memory_order_relaxed);
  histogram_skips_.fetch_add(delta.histogram_skips,
                             std::memory_order_relaxed);
  full_blocks_.fetch_add(delta.full_blocks, std::memory_order_relaxed);
  scanned_blocks_.fetch_add(delta.scanned_blocks, std::memory_order_relaxed);
  dict_kernel_blocks_.fetch_add(delta.dict_kernel_blocks,
                                std::memory_order_relaxed);
}

ScanStats ScanStatsCollector::Snapshot() const {
  ScanStats s;
  s.classified_blocks = classified_blocks_.load(std::memory_order_relaxed);
  s.zone_skips = zone_skips_.load(std::memory_order_relaxed);
  s.bitmap_skips = bitmap_skips_.load(std::memory_order_relaxed);
  s.histogram_skips = histogram_skips_.load(std::memory_order_relaxed);
  s.full_blocks = full_blocks_.load(std::memory_order_relaxed);
  s.scanned_blocks = scanned_blocks_.load(std::memory_order_relaxed);
  s.dict_kernel_blocks = dict_kernel_blocks_.load(std::memory_order_relaxed);
  return s;
}

size_t FilterInterval(const double* values, uint32_t begin, uint32_t end,
                      double lo, double hi, uint32_t* sel) {
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r) {
    sel[n] = r;
    n += static_cast<size_t>((values[r] >= lo) & (values[r] <= hi));
  }
  return n;
}

size_t RefineInterval(const double* values, double lo, double hi,
                      uint32_t* sel, size_t n) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const double v = values[sel[i]];
    sel[kept] = sel[i];
    kept += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return kept;
}

size_t CountInterval(const double* values, uint32_t begin, uint32_t end,
                     double lo, double hi) {
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r)
    n += static_cast<size_t>((values[r] >= lo) & (values[r] <= hi));
  return n;
}

size_t FilterCodes(const uint8_t* codes, uint32_t begin, uint32_t end,
                   uint32_t lo, uint32_t hi, uint32_t* sel) {
  return FilterCodesImpl(codes, begin, end, lo, hi, sel);
}
size_t FilterCodes(const uint16_t* codes, uint32_t begin, uint32_t end,
                   uint32_t lo, uint32_t hi, uint32_t* sel) {
  return FilterCodesImpl(codes, begin, end, lo, hi, sel);
}
size_t RefineCodes(const uint8_t* codes, uint32_t lo, uint32_t hi,
                   uint32_t* sel, size_t n) {
  return RefineCodesImpl(codes, lo, hi, sel, n);
}
size_t RefineCodes(const uint16_t* codes, uint32_t lo, uint32_t hi,
                   uint32_t* sel, size_t n) {
  return RefineCodesImpl(codes, lo, hi, sel, n);
}
size_t CountCodes(const uint8_t* codes, uint32_t begin, uint32_t end,
                  uint32_t lo, uint32_t hi) {
  return CountCodesImpl(codes, begin, end, lo, hi);
}
size_t CountCodes(const uint16_t* codes, uint32_t begin, uint32_t end,
                  uint32_t lo, uint32_t hi) {
  return CountCodesImpl(codes, begin, end, lo, hi);
}

ScanPlan::ScanPlan(const Table& table, const TableSynopsis* synopsis,
                   const std::vector<Predicate>& predicates)
    : synopsis_(synopsis) {
  std::vector<std::pair<double, size_t>> order;
  order.reserve(predicates.size());
  for (size_t i = 0; i < predicates.size(); ++i) {
    const Predicate& p = predicates[i];
    if (!(p.lo <= p.hi)) {
      satisfiable_ = false;
      return;
    }
    const size_t col = static_cast<size_t>(p.column);
    const double fraction =
        synopsis != nullptr && synopsis->rich()
            ? synopsis->EstimateFraction(col, p.lo, p.hi)
            : DomainFraction(table.column(col), p);
    order.emplace_back(fraction, i);
  }
  std::stable_sort(
      order.begin(), order.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });

  preds_.reserve(predicates.size());
  for (const auto& [fraction, i] : order) {
    const Predicate& p = predicates[i];
    const size_t col = static_cast<size_t>(p.column);
    Pred pred;
    pred.values = table.column(col).values.data();
    pred.lo = p.lo;
    pred.hi = p.hi;
    pred.column = p.column;
    if (synopsis != nullptr && synopsis->HasDictionary(col)) {
      const CodeRange range = synopsis->ToCodeRange(col, p.lo, p.hi);
      if (range.empty) {
        // The interval contains no dictionary value: nothing anywhere in
        // the table can match this predicate.
        satisfiable_ = false;
        return;
      }
      pred.codes8 = synopsis->Codes8(col);
      pred.codes16 = synopsis->Codes16(col);
      pred.code_lo = range.lo;
      pred.code_hi = range.hi;
    }
    preds_.push_back(pred);
  }
}

BlockDecision ScanPlan::Classify(size_t block, ScanStats* stats) const {
  if (stats != nullptr) ++stats->classified_blocks;
  bool full = true;
  for (const Pred& p : preds_) {
    const size_t col = static_cast<size_t>(p.column);
    if (!synopsis_->CanMatch(block, col, p.lo, p.hi)) {
      if (stats != nullptr) ++stats->zone_skips;
      return BlockDecision::kSkip;
    }
    if (p.codes8 != nullptr || p.codes16 != nullptr) {
      CodeRange range;
      range.lo = p.code_lo;
      range.hi = p.code_hi;
      range.empty = false;
      if (!synopsis_->BitmapCanMatch(block, col, range)) {
        if (stats != nullptr) ++stats->bitmap_skips;
        return BlockDecision::kSkip;
      }
    } else if (synopsis_->HasHistogram(col) &&
               !synopsis_->HistogramCanMatch(block, col, p.lo, p.hi)) {
      if (stats != nullptr) ++stats->histogram_skips;
      return BlockDecision::kSkip;
    }
    full = full && synopsis_->FullyMatches(block, col, p.lo, p.hi);
  }
  if (stats != nullptr) {
    if (full) {
      ++stats->full_blocks;
    } else {
      ++stats->scanned_blocks;
    }
  }
  return full ? BlockDecision::kFullMatch : BlockDecision::kEvaluate;
}

size_t ScanPlan::Evaluate(size_t block, uint32_t begin, uint32_t end,
                          uint32_t* sel, ScanStats* stats,
                          bool count_only) const {
  // Predicates that fully match this block cannot prune inside it.
  const Pred* active[64];
  size_t actives = 0;
  ARECEL_CHECK_MSG(preds_.size() <= 64, "too many predicates in one query");
  for (const Pred& p : preds_) {
    if (block != kNoBlock &&
        synopsis_->FullyMatches(block, static_cast<size_t>(p.column), p.lo,
                                p.hi)) {
      continue;
    }
    active[actives++] = &p;
  }
  if (actives == 0) {
    // Every predicate fully matched after all (unreachable from Classify,
    // which would have said kFullMatch; kept for safety).
    if (!count_only) {
      for (uint32_t r = begin; r < end; ++r) sel[r - begin] = r;
    }
    return end - begin;
  }

  bool used_codes = false;
  auto eval_one = [&](const Pred& p, bool first, size_t n) -> size_t {
    if (p.codes8 != nullptr) {
      used_codes = true;
      return first ? FilterCodes(p.codes8, begin, end, p.code_lo, p.code_hi,
                                 sel)
                   : RefineCodes(p.codes8, p.code_lo, p.code_hi, sel, n);
    }
    if (p.codes16 != nullptr) {
      used_codes = true;
      return first ? FilterCodes(p.codes16, begin, end, p.code_lo, p.code_hi,
                                 sel)
                   : RefineCodes(p.codes16, p.code_lo, p.code_hi, sel, n);
    }
    return first ? FilterInterval(p.values, begin, end, p.lo, p.hi, sel)
                 : RefineInterval(p.values, p.lo, p.hi, sel, n);
  };

  size_t n;
  if (actives == 1 && count_only) {
    const Pred& p = *active[0];
    if (p.codes8 != nullptr) {
      used_codes = true;
      n = CountCodes(p.codes8, begin, end, p.code_lo, p.code_hi);
    } else if (p.codes16 != nullptr) {
      used_codes = true;
      n = CountCodes(p.codes16, begin, end, p.code_lo, p.code_hi);
    } else {
      n = CountInterval(p.values, begin, end, p.lo, p.hi);
    }
  } else if (count_only && actives == 2 &&
             (active[0]->codes8 != nullptr || active[0]->codes16 != nullptr) &&
             (active[1]->codes8 != nullptr || active[1]->codes16 != nullptr)) {
    const Pred& a = *active[0];
    const Pred& b = *active[1];
    used_codes = true;
    if (a.codes8 != nullptr && b.codes8 != nullptr) {
      n = CountCodes2Impl(a.codes8, a.code_lo, a.code_hi, b.codes8, b.code_lo,
                          b.code_hi, begin, end);
    } else if (a.codes8 != nullptr) {
      n = CountCodes2Impl(a.codes8, a.code_lo, a.code_hi, b.codes16,
                          b.code_lo, b.code_hi, begin, end);
    } else if (b.codes8 != nullptr) {
      n = CountCodes2Impl(a.codes16, a.code_lo, a.code_hi, b.codes8,
                          b.code_lo, b.code_hi, begin, end);
    } else {
      n = CountCodes2Impl(a.codes16, a.code_lo, a.code_hi, b.codes16,
                          b.code_lo, b.code_hi, begin, end);
    }
  } else {
    n = eval_one(*active[0], /*first=*/true, 0);
    for (size_t k = 1; k < actives && n > 0; ++k) {
      n = eval_one(*active[k], /*first=*/false, n);
    }
  }
  if (stats != nullptr && used_codes) ++stats->dict_kernel_blocks;
  return n;
}

size_t ScanPlan::CountBlock(size_t block, uint32_t begin, uint32_t end,
                            uint32_t* sel, ScanStats* stats) const {
  return Evaluate(block, begin, end, sel, stats, /*count_only=*/true);
}

size_t ScanPlan::FilterBlock(size_t block, uint32_t begin, uint32_t end,
                             uint32_t* sel, ScanStats* stats) const {
  return Evaluate(block, begin, end, sel, stats, /*count_only=*/false);
}

BlockScanner::BlockScanner(const Table& table, ScanOptions options)
    : table_(&table), options_(options), synopsis_(table, [&options] {
        SynopsisOptions so;
        so.block_size = options.block_size;
        so.rich = options.rich_synopsis;
        so.max_dict_codes = options.max_dict_codes;
        return so;
      }()) {
  CheckedRowCount(table);
}

size_t BlockScanner::Count(const Query& query) const {
  const uint32_t rows = CheckedRowCount(*table_);
  ARECEL_CHECK_MSG(synopsis_.covered_rows() == table_->num_rows(),
                   "table changed without Refresh()");
  const ScanPlan plan(*table_, &synopsis_, query.predicates);
  if (!plan.satisfiable()) return 0;
  if (plan.unconstrained()) return rows;
  std::vector<uint32_t> sel(options_.block_size);
  ScanStats local;
  size_t total = 0;
  for (size_t b = 0; b < synopsis_.num_blocks(); ++b) {
    const uint32_t lo = static_cast<uint32_t>(b * options_.block_size);
    const uint32_t hi = static_cast<uint32_t>(
        std::min<size_t>(rows, (b + 1) * options_.block_size));
    switch (plan.Classify(b, &local)) {
      case BlockDecision::kSkip:
        break;
      case BlockDecision::kFullMatch:
        total += hi - lo;
        break;
      case BlockDecision::kEvaluate:
        total += plan.CountBlock(b, lo, hi, sel.data(), &local);
        break;
    }
  }
  stats_.Merge(local);
  return total;
}

double BlockScanner::Selectivity(const Query& query) const {
  if (table_->num_rows() == 0) return 0.0;
  return static_cast<double>(Count(query)) /
         static_cast<double>(table_->num_rows());
}

std::vector<size_t> BlockScanner::CountBatch(
    const std::vector<Query>& queries) const {
  std::vector<size_t> counts(queries.size(), 0);
  const uint32_t rows = CheckedRowCount(*table_);
  if (rows == 0 || queries.empty()) return counts;
  ARECEL_CHECK_MSG(synopsis_.covered_rows() == table_->num_rows(),
                   "table changed without Refresh()");

  std::vector<ScanPlan> plans;
  plans.reserve(queries.size());
  for (const Query& q : queries) {
    plans.emplace_back(*table_, &synopsis_, q.predicates);
  }

  // Blocks-outer, queries-inner: the table streams through cache once per
  // chunk instead of once per query. Each worker accumulates into private
  // counters and merges once; integer sums over disjoint block ranges make
  // the merged result independent of the partitioning.
  std::mutex merge_mutex;
  ParallelForChunked(0, synopsis_.num_blocks(), [&](size_t chunk_begin,
                                                    size_t chunk_end) {
    std::vector<size_t> local(plans.size(), 0);
    std::vector<uint32_t> sel(options_.block_size);
    ScanStats local_stats;
    for (size_t b = chunk_begin; b < chunk_end; ++b) {
      const uint32_t lo = static_cast<uint32_t>(b * options_.block_size);
      const uint32_t hi = static_cast<uint32_t>(
          std::min<size_t>(rows, (b + 1) * options_.block_size));
      for (size_t qi = 0; qi < plans.size(); ++qi) {
        const ScanPlan& plan = plans[qi];
        if (!plan.satisfiable()) continue;
        if (plan.unconstrained()) {
          local[qi] += hi - lo;
          continue;
        }
        switch (plan.Classify(b, &local_stats)) {
          case BlockDecision::kSkip:
            break;
          case BlockDecision::kFullMatch:
            local[qi] += hi - lo;
            break;
          case BlockDecision::kEvaluate:
            local[qi] += plan.CountBlock(b, lo, hi, sel.data(), &local_stats);
            break;
        }
      }
    }
    stats_.Merge(local_stats);
    const std::scoped_lock lock(merge_mutex);
    for (size_t qi = 0; qi < local.size(); ++qi) counts[qi] += local[qi];
  });
  return counts;
}

std::vector<double> BlockScanner::Label(
    const std::vector<Query>& queries) const {
  std::vector<double> selectivities(queries.size(), 0.0);
  if (table_->num_rows() == 0) return selectivities;
  const std::vector<size_t> counts = CountBatch(queries);
  const double rows = static_cast<double>(table_->num_rows());
  for (size_t i = 0; i < counts.size(); ++i)
    selectivities[i] = static_cast<double>(counts[i]) / rows;
  return selectivities;
}

size_t CountMatches(const Table& table, const Query& query,
                    const BlockScanner* scanner) {
  if (scanner != nullptr) return scanner->Count(query);
  const uint32_t rows = CheckedRowCount(table);
  // One query cannot amortize a synopsis build (that costs a full pass over
  // every column), so this path goes straight to the selection-vector
  // cascade over fixed-size blocks.
  const ScanPlan plan(table, nullptr, query.predicates);
  if (!plan.satisfiable()) return 0;
  if (plan.unconstrained()) return rows;
  constexpr uint32_t kBlock = static_cast<uint32_t>(kDefaultBlockSize);
  std::vector<uint32_t> sel(kBlock);
  size_t total = 0;
  for (uint32_t lo = 0; lo < rows; lo += kBlock) {
    total += plan.CountBlock(ScanPlan::kNoBlock, lo,
                             std::min(rows, lo + kBlock), sel.data(),
                             nullptr);
  }
  return total;
}

std::vector<double> LabelMatches(const Table& table,
                                 const std::vector<Query>& queries) {
  if (table.num_rows() == 0)
    return std::vector<double>(queries.size(), 0.0);
  return BlockScanner(table).Label(queries);
}

}  // namespace arecel::scan
