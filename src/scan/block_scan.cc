#include "scan/block_scan.h"

#include <algorithm>
#include <limits>
#include <mutex>

#include "util/check.h"
#include "util/thread_pool.h"

namespace arecel::scan {

namespace {

// A predicate with its column storage resolved once, outside every loop.
struct CompiledPredicate {
  const double* values = nullptr;
  double lo = 0.0;
  double hi = 0.0;
  int column = 0;
};

struct CompiledQuery {
  std::vector<CompiledPredicate> preds;  // most selective first.
  bool satisfiable = true;
};

// Fraction of the column's distinct values covered by [lo, hi]: the
// ordering key that puts the most selective predicate first, so the
// selection vector collapses as early as possible.
double DomainFraction(const Column& col, const Predicate& p) {
  const int32_t lo_code = col.LowerBoundCode(p.lo);
  const int32_t hi_code = col.UpperBoundCode(p.hi);
  const int32_t covered = std::max<int32_t>(0, hi_code - lo_code + 1);
  return static_cast<double>(covered) /
         static_cast<double>(col.domain_size());
}

CompiledQuery Compile(const Table& table, const Query& query) {
  CompiledQuery out;
  out.satisfiable = query.IsSatisfiable();
  if (!out.satisfiable) return out;
  std::vector<std::pair<double, size_t>> order;
  order.reserve(query.predicates.size());
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    const Predicate& p = query.predicates[i];
    order.emplace_back(
        DomainFraction(table.column(static_cast<size_t>(p.column)), p), i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  out.preds.reserve(query.predicates.size());
  for (const auto& [fraction, i] : order) {
    const Predicate& p = query.predicates[i];
    out.preds.push_back({table.column(static_cast<size_t>(p.column))
                             .values.data(),
                         p.lo, p.hi, p.column});
  }
  return out;
}

// Evaluates one compiled query over rows [begin, end) of one block with
// the selection-vector cascade. `sel` needs end - begin slots.
size_t EvalBlock(const CompiledQuery& query, uint32_t begin, uint32_t end,
                 uint32_t* sel) {
  const CompiledPredicate& first = query.preds.front();
  if (query.preds.size() == 1)
    return CountInterval(first.values, begin, end, first.lo, first.hi);
  size_t n = FilterInterval(first.values, begin, end, first.lo, first.hi, sel);
  for (size_t k = 1; k < query.preds.size() && n > 0; ++k) {
    const CompiledPredicate& p = query.preds[k];
    n = RefineInterval(p.values, p.lo, p.hi, sel, n);
  }
  return n;
}

// Zone-map classification of (block, query): skip entirely, count
// wholesale, or evaluate row by row.
enum class BlockFate { kSkip, kEvaluate, kFullMatch };

BlockFate Classify(const TableSynopsis& synopsis, const CompiledQuery& query,
                   size_t block) {
  bool full = true;
  for (const CompiledPredicate& p : query.preds) {
    const size_t col = static_cast<size_t>(p.column);
    if (!synopsis.CanMatch(block, col, p.lo, p.hi)) return BlockFate::kSkip;
    full = full && synopsis.FullyMatches(block, col, p.lo, p.hi);
  }
  return full ? BlockFate::kFullMatch : BlockFate::kEvaluate;
}

uint32_t CheckedRowCount(const Table& table) {
  ARECEL_CHECK_MSG(
      table.num_rows() <= std::numeric_limits<uint32_t>::max(),
      "block scan uses 32-bit row ids");
  return static_cast<uint32_t>(table.num_rows());
}

}  // namespace

size_t FilterInterval(const double* values, uint32_t begin, uint32_t end,
                      double lo, double hi, uint32_t* sel) {
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r) {
    sel[n] = r;
    n += static_cast<size_t>((values[r] >= lo) & (values[r] <= hi));
  }
  return n;
}

size_t RefineInterval(const double* values, double lo, double hi,
                      uint32_t* sel, size_t n) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const double v = values[sel[i]];
    sel[kept] = sel[i];
    kept += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return kept;
}

size_t CountInterval(const double* values, uint32_t begin, uint32_t end,
                     double lo, double hi) {
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r)
    n += static_cast<size_t>((values[r] >= lo) & (values[r] <= hi));
  return n;
}

BlockScanner::BlockScanner(const Table& table, ScanOptions options)
    : table_(&table),
      options_(options),
      synopsis_(table, options.block_size) {
  CheckedRowCount(table);
}

size_t BlockScanner::Count(const Query& query) const {
  const uint32_t rows = CheckedRowCount(*table_);
  const CompiledQuery compiled = Compile(*table_, query);
  if (!compiled.satisfiable) return 0;
  if (compiled.preds.empty()) return rows;
  std::vector<uint32_t> sel(options_.block_size);
  size_t total = 0;
  for (size_t b = 0; b < synopsis_.num_blocks(); ++b) {
    const uint32_t lo = static_cast<uint32_t>(b * options_.block_size);
    const uint32_t hi = static_cast<uint32_t>(
        std::min<size_t>(rows, (b + 1) * options_.block_size));
    switch (Classify(synopsis_, compiled, b)) {
      case BlockFate::kSkip:
        break;
      case BlockFate::kFullMatch:
        total += hi - lo;
        break;
      case BlockFate::kEvaluate:
        total += EvalBlock(compiled, lo, hi, sel.data());
        break;
    }
  }
  return total;
}

double BlockScanner::Selectivity(const Query& query) const {
  if (table_->num_rows() == 0) return 0.0;
  return static_cast<double>(Count(query)) /
         static_cast<double>(table_->num_rows());
}

std::vector<size_t> BlockScanner::CountBatch(
    const std::vector<Query>& queries) const {
  std::vector<size_t> counts(queries.size(), 0);
  const uint32_t rows = CheckedRowCount(*table_);
  if (rows == 0 || queries.empty()) return counts;

  std::vector<CompiledQuery> compiled;
  compiled.reserve(queries.size());
  for (const Query& q : queries) compiled.push_back(Compile(*table_, q));

  // Blocks-outer, queries-inner: the table streams through cache once per
  // chunk instead of once per query. Each worker accumulates into private
  // counters and merges once; integer sums over disjoint block ranges make
  // the merged result independent of the partitioning.
  std::mutex merge_mutex;
  ParallelForChunked(0, synopsis_.num_blocks(), [&](size_t chunk_begin,
                                                    size_t chunk_end) {
    std::vector<size_t> local(compiled.size(), 0);
    std::vector<uint32_t> sel(options_.block_size);
    for (size_t b = chunk_begin; b < chunk_end; ++b) {
      const uint32_t lo = static_cast<uint32_t>(b * options_.block_size);
      const uint32_t hi = static_cast<uint32_t>(
          std::min<size_t>(rows, (b + 1) * options_.block_size));
      for (size_t qi = 0; qi < compiled.size(); ++qi) {
        const CompiledQuery& query = compiled[qi];
        if (!query.satisfiable) continue;
        if (query.preds.empty()) {
          local[qi] += hi - lo;
          continue;
        }
        switch (Classify(synopsis_, query, b)) {
          case BlockFate::kSkip:
            break;
          case BlockFate::kFullMatch:
            local[qi] += hi - lo;
            break;
          case BlockFate::kEvaluate:
            local[qi] += EvalBlock(query, lo, hi, sel.data());
            break;
        }
      }
    }
    const std::scoped_lock lock(merge_mutex);
    for (size_t qi = 0; qi < local.size(); ++qi) counts[qi] += local[qi];
  });
  return counts;
}

std::vector<double> BlockScanner::Label(
    const std::vector<Query>& queries) const {
  std::vector<double> selectivities(queries.size(), 0.0);
  if (table_->num_rows() == 0) return selectivities;
  const std::vector<size_t> counts = CountBatch(queries);
  const double rows = static_cast<double>(table_->num_rows());
  for (size_t i = 0; i < counts.size(); ++i)
    selectivities[i] = static_cast<double>(counts[i]) / rows;
  return selectivities;
}

size_t CountMatches(const Table& table, const Query& query) {
  const uint32_t rows = CheckedRowCount(table);
  const CompiledQuery compiled = Compile(table, query);
  if (!compiled.satisfiable) return 0;
  if (compiled.preds.empty()) return rows;
  // One query cannot amortize a synopsis build (that costs a full pass over
  // every column), so this path goes straight to the selection-vector
  // cascade over fixed-size blocks.
  constexpr uint32_t kBlock = static_cast<uint32_t>(kDefaultBlockSize);
  std::vector<uint32_t> sel(kBlock);
  size_t total = 0;
  for (uint32_t lo = 0; lo < rows; lo += kBlock)
    total += EvalBlock(compiled, lo, std::min(rows, lo + kBlock), sel.data());
  return total;
}

std::vector<double> LabelMatches(const Table& table,
                                 const std::vector<Query>& queries) {
  if (table.num_rows() == 0)
    return std::vector<double>(queries.size(), 0.0);
  return BlockScanner(table).Label(queries);
}

}  // namespace arecel::scan
