#include "workload/join_generator.h"

#include <algorithm>
#include <limits>
#include <string>

#include "join/join_executor.h"
#include "util/check.h"
#include "util/random.h"

namespace arecel {
namespace {

// The star center: the table that shares an edge with every other table.
std::string StarCenter(const Schema& schema) {
  const auto& fks = schema.foreign_keys();
  ARECEL_CHECK_MSG(!fks.empty(), "join generator needs at least one FK edge");
  for (const std::string& candidate : {fks[0].table, fks[0].ref_table}) {
    bool on_all = true;
    for (const ForeignKey& fk : fks) {
      if (fk.table != candidate && fk.ref_table != candidate) {
        on_all = false;
        break;
      }
    }
    if (on_all) return candidate;
  }
  ARECEL_CHECK_MSG(false, "schema join graph is not a star");
  return {};
}

// Column indices of `table` that never appear in a join edge.
std::vector<int> PayloadColumns(const Schema& schema, const Table& table) {
  std::vector<int> cols;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (!schema.IsKeyColumn(table.name(), static_cast<int>(c))) {
      cols.push_back(static_cast<int>(c));
    }
  }
  return cols;
}

// One predicate on `column` of `table`, centered the way the single-table
// generator centers predicates (workload/generator.cc).
Predicate DrawPredicate(Rng& rng, const Table& table, int column, bool ood,
                        size_t tuple, const WorkloadOptions& options) {
  const Column& col = table.column(static_cast<size_t>(column));
  const double center =
      ood ? col.domain[rng.UniformInt(static_cast<uint64_t>(col.domain.size()))]
          : col.values[tuple];
  Predicate pred;
  pred.column = column;
  if (col.categorical) {
    pred.lo = pred.hi = center;
    return pred;
  }
  const double domain_width = col.max() - col.min();
  double width = 0.0;
  if (domain_width > 0.0) {
    if (rng.Bernoulli(options.uniform_width_probability)) {
      width = rng.Uniform(0.0, domain_width);
    } else {
      width = rng.Exponential(options.exponential_scale / domain_width);
    }
  }
  pred.lo = center - width / 2.0;
  pred.hi = center + width / 2.0;
  if (pred.lo < col.min()) pred.lo = -std::numeric_limits<double>::infinity();
  if (pred.hi > col.max()) pred.hi = std::numeric_limits<double>::infinity();
  return pred;
}

// Up to `max_preds` predicates over the table's payload columns, count
// uniform in [0, min(max_preds, payload columns)].
std::vector<Predicate> DrawSlicePredicates(Rng& rng, const Table& table,
                                           const std::vector<int>& payload,
                                           int max_preds,
                                           const WorkloadOptions& options) {
  std::vector<Predicate> preds;
  if (payload.empty() || table.num_rows() == 0 || max_preds <= 0) return preds;
  const int cap = std::min<int>(max_preds, static_cast<int>(payload.size()));
  const int d =
      static_cast<int>(rng.UniformInt(int64_t{0}, static_cast<int64_t>(cap)));
  if (d == 0) return preds;
  const std::vector<int> picks =
      rng.SampleWithoutReplacement(static_cast<int>(payload.size()), d);
  const bool ood = rng.Bernoulli(options.ood_probability);
  const size_t tuple =
      ood ? 0 : rng.UniformInt(static_cast<uint64_t>(table.num_rows()));
  preds.reserve(static_cast<size_t>(d));
  for (int pick : picks) {
    preds.push_back(DrawPredicate(rng, table, payload[static_cast<size_t>(pick)],
                                  ood, tuple, options));
  }
  return preds;
}

}  // namespace

std::vector<JoinQuery> GenerateJoinQueries(const Schema& schema, size_t count,
                                           uint64_t seed,
                                           const JoinWorkloadOptions& options) {
  const std::string center = StarCenter(schema);
  const Table& center_table = schema.table(center);
  const std::vector<int> center_payload = PayloadColumns(schema, center_table);

  // Dimensions reachable from the center, in schema edge order.
  struct Dim {
    const ForeignKey* fk;
    const Table* table;
    std::vector<int> payload;
  };
  std::vector<Dim> dims;
  for (const ForeignKey& fk : schema.foreign_keys()) {
    const std::string& other = fk.table == center ? fk.ref_table : fk.table;
    const Table& t = schema.table(other);
    dims.push_back({&fk, &t, PayloadColumns(schema, t)});
  }
  const int num_dims = static_cast<int>(dims.size());
  const int max_dims = options.max_dimensions > 0
                           ? std::min(options.max_dimensions, num_dims)
                           : num_dims;
  const int min_dims = std::clamp(options.min_dimensions, 1, max_dims);

  Rng rng(seed);
  std::vector<JoinQuery> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    const int k = static_cast<int>(rng.UniformInt(
        static_cast<int64_t>(min_dims), static_cast<int64_t>(max_dims)));
    const std::vector<int> picks = rng.SampleWithoutReplacement(num_dims, k);

    JoinQuery query;
    query.tables.push_back(
        {center, DrawSlicePredicates(rng, center_table, center_payload,
                                     options.max_predicates_per_table,
                                     options.predicate_options)});
    for (int pick : picks) {
      const Dim& dim = dims[static_cast<size_t>(pick)];
      query.tables.push_back(
          {dim.table->name(),
           DrawSlicePredicates(rng, *dim.table, dim.payload,
                               options.max_predicates_per_table,
                               options.predicate_options)});
      query.joins.push_back({dim.fk->table, dim.fk->column, dim.fk->ref_table,
                             dim.fk->ref_column});
    }

    // A pure join count carries no signal for predicate-driven estimators;
    // force at least one predicate, preferring the center table.
    bool any = false;
    for (const TableSlice& slice : query.tables) any |= !slice.predicates.empty();
    if (!any && !center_payload.empty() && center_table.num_rows() > 0) {
      const bool ood = rng.Bernoulli(options.predicate_options.ood_probability);
      const size_t tuple =
          ood ? 0
              : rng.UniformInt(static_cast<uint64_t>(center_table.num_rows()));
      query.tables[0].predicates.push_back(
          DrawPredicate(rng, center_table, center_payload[0], ood, tuple,
                        options.predicate_options));
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

double JoinWorkload::Cardinality(const Schema& schema, size_t i) const {
  return selectivities[i] *
         join::JoinExecutor::RowsProduct(schema, queries[i]);
}

JoinWorkload GenerateJoinWorkload(const Schema& schema, size_t count,
                                  uint64_t seed,
                                  const JoinWorkloadOptions& options) {
  JoinWorkload w;
  w.queries = GenerateJoinQueries(schema, count, seed, options);
  // Labeling amortizes one executor (synopses built once) across the batch
  // and parallelizes over queries.
  w.selectivities = join::JoinExecutor(schema).Label(w.queries);
  return w;
}

}  // namespace arecel
