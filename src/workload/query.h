#ifndef ARECEL_WORKLOAD_QUERY_H_
#define ARECEL_WORKLOAD_QUERY_H_

#include <limits>
#include <string>
#include <vector>

#include "data/table.h"

namespace arecel {

// One conjunct: lo <= column <= hi (inclusive). Equality predicates have
// lo == hi; open ranges use +/-infinity on the unbounded side, which is how
// the unified generator represents ranges that spilled past the column
// domain (§3 "Workload" of the paper).
struct Predicate {
  int column = 0;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  bool is_equality() const { return lo == hi; }
  bool Matches(double v) const { return v >= lo && v <= hi; }
};

// A conjunctive COUNT(*) query over one table.
struct Query {
  std::vector<Predicate> predicates;

  // True when every predicate interval is non-empty (lo <= hi).
  bool IsSatisfiable() const;

  // SQL-ish rendering for logs and examples.
  std::string ToString(const Table& table) const;
};

// Exact number of rows of `table` matching `query` (full scan).
size_t ExecuteCount(const Table& table, const Query& query);

// Exact selectivity = ExecuteCount / rows.
double ExecuteSelectivity(const Table& table, const Query& query);

// Labels every query in parallel. Returns selectivities in [0, 1].
std::vector<double> LabelQueries(const Table& table,
                                 const std::vector<Query>& queries);

}  // namespace arecel

#endif  // ARECEL_WORKLOAD_QUERY_H_
