#ifndef ARECEL_WORKLOAD_QUERY_H_
#define ARECEL_WORKLOAD_QUERY_H_

#include <limits>
#include <string>
#include <vector>

#include "data/table.h"

namespace arecel {

// One conjunct: lo <= column <= hi (inclusive). Equality predicates have
// lo == hi; open ranges use +/-infinity on the unbounded side, which is how
// the unified generator represents ranges that spilled past the column
// domain (§3 "Workload" of the paper).
struct Predicate {
  int column = 0;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  bool is_equality() const { return lo == hi; }
  bool Matches(double v) const { return v >= lo && v <= hi; }
};

// A conjunctive COUNT(*) query over one table.
struct Query {
  std::vector<Predicate> predicates;

  // True when every predicate interval is non-empty (lo <= hi).
  bool IsSatisfiable() const;

  // SQL-ish rendering for logs and examples.
  std::string ToString(const Table& table) const;
};

// Exact number of rows of `table` matching `query`. Routed through the
// vectorized block-scan engine (src/scan/block_scan.h).
size_t ExecuteCount(const Table& table, const Query& query);

// Reference executor: row-at-a-time scan with Predicate::Matches as the
// interval oracle. Kept as the differential-testing baseline
// (tests/scan_engine_test.cc) and the "naive" side of bench_micro_scan;
// production callers use ExecuteCount.
size_t ExecuteCountNaive(const Table& table, const Query& query);

// Exact selectivity = ExecuteCount / rows.
double ExecuteSelectivity(const Table& table, const Query& query);

// Labels the whole batch with one shared scan of the table (each block is
// streamed once through every query, parallelized over blocks). Returns
// selectivities in [0, 1], bit-identical to per-query execution.
std::vector<double> LabelQueries(const Table& table,
                                 const std::vector<Query>& queries);

}  // namespace arecel

#endif  // ARECEL_WORKLOAD_QUERY_H_
