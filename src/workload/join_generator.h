#ifndef ARECEL_WORKLOAD_JOIN_GENERATOR_H_
#define ARECEL_WORKLOAD_JOIN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "data/schema.h"
#include "workload/generator.h"
#include "workload/join_query.h"

namespace arecel {

// Multi-table extension of the unified workload generator (DESIGN.md §13).
//
// Every query joins the schema's star center (the table on the referencing
// side of every foreign key) with a random subset of its dimensions along
// the schema's FK edges; predicates are drawn per participating table on
// payload columns only (join-key columns, per Schema::IsKeyColumn, never
// get predicates — they are constrained by the join itself). Center and
// width of each predicate follow the single-table generator's way ①/way ②
// machinery, reusing WorkloadOptions.
struct JoinWorkloadOptions {
  int min_dimensions = 1;  // joined dimensions per query (>= 1).
  int max_dimensions = 0;  // 0 = every dimension with an edge to the center.
  // Per participating table, the predicate count is uniform in
  // [0, min(max_predicates_per_table, payload columns)]; a query that drew
  // no predicate anywhere gets one forced onto the center table.
  int max_predicates_per_table = 2;
  WorkloadOptions predicate_options;
};

std::vector<JoinQuery> GenerateJoinQueries(
    const Schema& schema, size_t count, uint64_t seed,
    const JoinWorkloadOptions& options = {});

// A labelled join workload: queries plus exact Cartesian-product
// selectivities (|result| / prod |T_i|) over `schema`.
struct JoinWorkload {
  std::vector<JoinQuery> queries;
  std::vector<double> selectivities;

  size_t size() const { return queries.size(); }

  // Actual result cardinality of query i.
  double Cardinality(const Schema& schema, size_t i) const;
};

// Generates and labels `count` queries in one call; labeling runs through
// the hash-join ground-truth executor (src/join/join_executor.h).
JoinWorkload GenerateJoinWorkload(const Schema& schema, size_t count,
                                  uint64_t seed,
                                  const JoinWorkloadOptions& options = {});

}  // namespace arecel

#endif  // ARECEL_WORKLOAD_JOIN_GENERATOR_H_
