#ifndef ARECEL_WORKLOAD_JOIN_QUERY_H_
#define ARECEL_WORKLOAD_JOIN_QUERY_H_

#include <string>
#include <vector>

#include "workload/query.h"

namespace arecel {

// One equi-join edge of a join query: left_table.left_column =
// right_table.right_column. Tables are referenced by name (column indices
// are into the named table), matching the Schema's ForeignKey edges.
struct JoinEdge {
  std::string left_table;
  int left_column = 0;
  std::string right_table;
  int right_column = 0;
};

// Per-table conjunct list of a join query. `predicates` use the same
// interval semantics as the single-table Query (workload/query.h);
// Predicate::column indexes into the named table.
struct TableSlice {
  std::string table;
  std::vector<Predicate> predicates;
};

// A conjunctive COUNT(*) query over one or more tables joined by equi-join
// edges — the multi-table extension of Query (DESIGN.md §13). Selectivity
// is defined against the Cartesian product of the participating tables
// (|result| / prod |T_i|), the convention of MSCN and the follow-up join
// benchmarks, so estimators keep returning values in [0, 1].
struct JoinQuery {
  std::vector<TableSlice> tables;  // distinct table names, any order.
  std::vector<JoinEdge> joins;     // empty for a single-table query.

  size_t num_tables() const { return tables.size(); }

  // True when every per-table predicate list has only non-empty intervals.
  bool IsSatisfiable() const;

  // The slice for `name`, or nullptr when the table is not in the query.
  const TableSlice* FindTable(const std::string& name) const;

  // Participating table names, sorted — the table-set identifier that
  // prefixes canonical fingerprints (serve/cache.h).
  std::vector<std::string> SortedTableNames() const;

  // SQL-ish rendering for logs and examples.
  std::string ToString() const;
};

// Wraps a single-table Query as a degenerate JoinQuery over `table` — the
// bridge that lets join-capable estimators serve the single-table contract
// through their join path.
JoinQuery SingleTableJoinQuery(const std::string& table, const Query& query);

}  // namespace arecel

#endif  // ARECEL_WORKLOAD_JOIN_QUERY_H_
