#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace arecel {

std::vector<Query> GenerateQueries(const Table& table, size_t count,
                                   uint64_t seed,
                                   const WorkloadOptions& options) {
  ARECEL_CHECK(table.num_rows() > 0);
  ARECEL_CHECK(table.num_cols() > 0);
  Rng rng(seed);

  const int num_cols = static_cast<int>(table.num_cols());
  const int max_preds =
      options.max_predicates > 0
          ? std::min(options.max_predicates, num_cols)
          : num_cols;
  const int min_preds = std::clamp(options.min_predicates, 1, max_preds);

  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    const int d = static_cast<int>(
        rng.UniformInt(static_cast<int64_t>(min_preds),
                       static_cast<int64_t>(max_preds)));
    const std::vector<int> cols = rng.SampleWithoutReplacement(num_cols, d);

    // Way ① picks one tuple shared by all predicate centers; way ② draws
    // each center independently from its column's domain.
    const bool ood = rng.Bernoulli(options.ood_probability);
    const size_t tuple =
        ood ? 0 : rng.UniformInt(static_cast<uint64_t>(table.num_rows()));

    Query query;
    query.predicates.reserve(static_cast<size_t>(d));
    for (int c : cols) {
      const Column& col = table.column(static_cast<size_t>(c));
      const double center =
          ood ? col.domain[rng.UniformInt(
                    static_cast<uint64_t>(col.domain.size()))]
              : col.values[tuple];

      Predicate pred;
      pred.column = c;
      if (col.categorical) {
        pred.lo = pred.hi = center;
      } else {
        const double domain_width = col.max() - col.min();
        double width = 0.0;
        if (domain_width > 0.0) {
          if (rng.Bernoulli(options.uniform_width_probability)) {
            width = rng.Uniform(0.0, domain_width);
          } else {
            width = rng.Exponential(options.exponential_scale / domain_width);
          }
        }
        pred.lo = center - width / 2.0;
        pred.hi = center + width / 2.0;
        // Spilling past the domain turns the query into an open range.
        if (pred.lo < col.min())
          pred.lo = -std::numeric_limits<double>::infinity();
        if (pred.hi > col.max())
          pred.hi = std::numeric_limits<double>::infinity();
      }
      query.predicates.push_back(pred);
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

Workload Workload::Slice(size_t begin, size_t end) const {
  ARECEL_CHECK(begin <= end && end <= queries.size());
  Workload out;
  out.queries.assign(queries.begin() + static_cast<long>(begin),
                     queries.begin() + static_cast<long>(end));
  out.selectivities.assign(selectivities.begin() + static_cast<long>(begin),
                           selectivities.begin() + static_cast<long>(end));
  return out;
}

Workload GenerateWorkload(const Table& table, size_t count, uint64_t seed,
                          const WorkloadOptions& options) {
  Workload w;
  w.queries = GenerateQueries(table, count, seed, options);
  // Ground-truth labeling is the dominant cost of workload construction;
  // LabelQueries shared-scans the table once through the whole batch
  // (src/scan/block_scan.h) instead of scanning it once per query.
  w.selectivities = LabelQueries(table, w.queries);
  return w;
}

}  // namespace arecel
