#ifndef ARECEL_WORKLOAD_GENERATOR_H_
#define ARECEL_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "workload/query.h"

namespace arecel {

// The paper's unified workload generator (§3, "Workload").
//
// A query with d predicates is a hyper-rectangle controlled by a center and
// a width per attribute:
//  * the number of predicates d is uniform in [1, |D|], over d random
//    distinct columns;
//  * the center comes from a random data tuple (way ①) with probability
//    1 - ood_probability, or is drawn independently per column from the
//    column's distinct-value domain (way ②, "out of domain") otherwise;
//  * the width is uniform in [0, domain width] (way ⑴) with probability
//    uniform_width_probability, or exponential with rate 10/width (way ⑵);
//  * categorical columns always get an equality predicate;
//  * a side that spills past the column's min/max becomes an open range.
struct WorkloadOptions {
  double ood_probability = 0.1;
  double uniform_width_probability = 0.5;
  double exponential_scale = 10.0;  // lambda = exponential_scale / width.
  int min_predicates = 1;
  int max_predicates = 0;  // 0 = number of table columns.
};

std::vector<Query> GenerateQueries(const Table& table, size_t count,
                                   uint64_t seed,
                                   const WorkloadOptions& options = {});

// A labelled workload: queries plus exact selectivities over `table`.
struct Workload {
  std::vector<Query> queries;
  std::vector<double> selectivities;

  size_t size() const { return queries.size(); }

  // Actual cardinality of query i on a table with `rows` rows.
  double Cardinality(size_t i, size_t rows) const {
    return selectivities[i] * static_cast<double>(rows);
  }

  Workload Slice(size_t begin, size_t end) const;
};

// Generates and labels `count` queries in one call.
Workload GenerateWorkload(const Table& table, size_t count, uint64_t seed,
                          const WorkloadOptions& options = {});

}  // namespace arecel

#endif  // ARECEL_WORKLOAD_GENERATOR_H_
