#include "workload/join_query.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace arecel {

bool JoinQuery::IsSatisfiable() const {
  for (const TableSlice& slice : tables) {
    for (const Predicate& p : slice.predicates) {
      if (p.lo > p.hi) return false;
    }
  }
  return true;
}

const TableSlice* JoinQuery::FindTable(const std::string& name) const {
  for (const TableSlice& slice : tables)
    if (slice.table == name) return &slice;
  return nullptr;
}

std::vector<std::string> JoinQuery::SortedTableNames() const {
  std::vector<std::string> names;
  names.reserve(tables.size());
  for (const TableSlice& slice : tables) names.push_back(slice.table);
  std::sort(names.begin(), names.end());
  return names;
}

namespace {

void AppendPredicate(std::ostringstream& out, const std::string& table,
                     const Predicate& p) {
  const std::string col = table + ".c" + std::to_string(p.column);
  if (p.is_equality()) {
    out << col << " = " << p.lo;
  } else if (std::isinf(p.lo)) {
    out << col << " <= " << p.hi;
  } else if (std::isinf(p.hi)) {
    out << col << " >= " << p.lo;
  } else {
    out << p.lo << " <= " << col << " <= " << p.hi;
  }
}

}  // namespace

std::string JoinQuery::ToString() const {
  std::ostringstream out;
  out << "SELECT COUNT(*) FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out << ", ";
    out << tables[i].table;
  }
  bool first = true;
  for (const JoinEdge& e : joins) {
    out << (first ? " WHERE " : " AND ");
    first = false;
    out << e.left_table << ".c" << e.left_column << " = " << e.right_table
        << ".c" << e.right_column;
  }
  for (const TableSlice& slice : tables) {
    for (const Predicate& p : slice.predicates) {
      out << (first ? " WHERE " : " AND ");
      first = false;
      AppendPredicate(out, slice.table, p);
    }
  }
  return out.str();
}

JoinQuery SingleTableJoinQuery(const std::string& table, const Query& query) {
  JoinQuery out;
  out.tables.push_back({table, query.predicates});
  return out;
}

}  // namespace arecel
