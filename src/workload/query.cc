#include "workload/query.h"

#include <cmath>
#include <sstream>

#include "util/thread_pool.h"

namespace arecel {

bool Query::IsSatisfiable() const {
  for (const Predicate& p : predicates) {
    if (p.lo > p.hi) return false;
  }
  return true;
}

std::string Query::ToString(const Table& table) const {
  std::ostringstream out;
  out << "SELECT COUNT(*) FROM " << table.name() << " WHERE ";
  for (size_t i = 0; i < predicates.size(); ++i) {
    const Predicate& p = predicates[i];
    if (i > 0) out << " AND ";
    const std::string& col = table.column(static_cast<size_t>(p.column)).name;
    if (p.is_equality()) {
      out << col << " = " << p.lo;
    } else if (std::isinf(p.lo)) {
      out << col << " <= " << p.hi;
    } else if (std::isinf(p.hi)) {
      out << col << " >= " << p.lo;
    } else {
      out << p.lo << " <= " << col << " <= " << p.hi;
    }
  }
  return out.str();
}

size_t ExecuteCount(const Table& table, const Query& query) {
  if (!query.IsSatisfiable()) return 0;
  const size_t rows = table.num_rows();
  size_t count = 0;
  for (size_t r = 0; r < rows; ++r) {
    bool match = true;
    for (const Predicate& p : query.predicates) {
      const double v = table.column(static_cast<size_t>(p.column)).values[r];
      if (v < p.lo || v > p.hi) {
        match = false;
        break;
      }
    }
    count += match ? 1 : 0;
  }
  return count;
}

double ExecuteSelectivity(const Table& table, const Query& query) {
  if (table.num_rows() == 0) return 0.0;
  return static_cast<double>(ExecuteCount(table, query)) /
         static_cast<double>(table.num_rows());
}

std::vector<double> LabelQueries(const Table& table,
                                 const std::vector<Query>& queries) {
  std::vector<double> selectivities(queries.size(), 0.0);
  ParallelFor(0, queries.size(), [&](size_t i) {
    selectivities[i] = ExecuteSelectivity(table, queries[i]);
  });
  return selectivities;
}

}  // namespace arecel
