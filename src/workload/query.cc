#include "workload/query.h"

#include <cmath>
#include <sstream>

#include "scan/block_scan.h"

namespace arecel {

bool Query::IsSatisfiable() const {
  for (const Predicate& p : predicates) {
    if (p.lo > p.hi) return false;
  }
  return true;
}

std::string Query::ToString(const Table& table) const {
  std::ostringstream out;
  out << "SELECT COUNT(*) FROM " << table.name() << " WHERE ";
  for (size_t i = 0; i < predicates.size(); ++i) {
    const Predicate& p = predicates[i];
    if (i > 0) out << " AND ";
    const std::string& col = table.column(static_cast<size_t>(p.column)).name;
    if (p.is_equality()) {
      out << col << " = " << p.lo;
    } else if (std::isinf(p.lo)) {
      out << col << " <= " << p.hi;
    } else if (std::isinf(p.hi)) {
      out << col << " >= " << p.lo;
    } else {
      out << p.lo << " <= " << col << " <= " << p.hi;
    }
  }
  return out.str();
}

size_t ExecuteCount(const Table& table, const Query& query) {
  return scan::CountMatches(table, query);
}

size_t ExecuteCountNaive(const Table& table, const Query& query) {
  if (!query.IsSatisfiable()) return 0;
  const size_t rows = table.num_rows();
  // Column pointers are hoisted out of the row loop; Predicate::Matches is
  // the interval oracle, so this path and the vectorized one share one
  // definition of the semantics.
  struct Bound {
    const double* values;
    const Predicate* pred;
  };
  std::vector<Bound> bounds;
  bounds.reserve(query.predicates.size());
  for (const Predicate& p : query.predicates)
    bounds.push_back(
        {table.column(static_cast<size_t>(p.column)).values.data(), &p});
  size_t count = 0;
  for (size_t r = 0; r < rows; ++r) {
    bool match = true;
    for (const Bound& b : bounds) {
      if (!b.pred->Matches(b.values[r])) {
        match = false;
        break;
      }
    }
    count += match ? 1 : 0;
  }
  return count;
}

double ExecuteSelectivity(const Table& table, const Query& query) {
  if (table.num_rows() == 0) return 0.0;
  return static_cast<double>(ExecuteCount(table, query)) /
         static_cast<double>(table.num_rows());
}

std::vector<double> LabelQueries(const Table& table,
                                 const std::vector<Query>& queries) {
  return scan::LabelMatches(table, queries);
}

}  // namespace arecel
