#ifndef ARECEL_ML_LOSS_H_
#define ARECEL_ML_LOSS_H_

namespace arecel {

// Scalar losses used by the query-driven estimators, with analytic
// gradients w.r.t. the model's log-selectivity output z.
//
//  * MSE on the log-transformed label (LW-XGB/NN, §2.3): equals minimizing
//    the geometric mean of q-error with more weight on large errors.
//  * Mean q-error (MSCN): q-error = exp(|z - t|) in log space; the paper
//    notes MSCN minimizes it directly. The exponent is clipped so a badly
//    initialized model cannot emit infinite gradients.

struct LossValueGrad {
  double loss = 0.0;
  double dloss_dz = 0.0;
};

// L = (z - target)^2.
LossValueGrad MseLogLoss(double z, double target);

// L = exp(min(|z - target|, max_log_diff)); dL/dz = L * sign(z - target).
LossValueGrad QErrorLoss(double z, double target, double max_log_diff = 8.0);

}  // namespace arecel

#endif  // ARECEL_ML_LOSS_H_
