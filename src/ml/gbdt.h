#ifndef ARECEL_ML_GBDT_H_
#define ARECEL_ML_GBDT_H_

#include <cstddef>
#include <vector>

#include "util/archive.h"

namespace arecel {

// Gradient-boosted regression trees with squared-error loss — the XGBoost
// stand-in behind LW-XGB (DESIGN.md §2). With squared loss, boosting
// reduces to fitting each tree to the current residuals, which is what this
// implements: exact greedy splits (sort-and-scan per feature), depth and
// leaf-size limits, shrinkage.

struct GbdtOptions {
  int num_trees = 64;
  int max_depth = 6;
  int min_leaf_size = 10;
  double learning_rate = 0.2;
};

// One regression tree over dense float feature vectors.
class RegressionTree {
 public:
  // Fits to (features[i], targets[i]) for i in `rows`.
  void Fit(const std::vector<std::vector<float>>& features,
           const std::vector<double>& targets, const GbdtOptions& options);

  double Predict(const std::vector<float>& x) const;

  void Serialize(ByteWriter* writer) const;
  bool Deserialize(ByteReader* reader);

  size_t num_nodes() const { return nodes_.size(); }
  size_t SizeBytes() const { return nodes_.size() * sizeof(Node); }

 private:
  struct Node {
    int feature = -1;        // -1 for a leaf.
    float threshold = 0.0f;  // go left when x[feature] <= threshold.
    int left = -1;
    int right = -1;
    double value = 0.0;      // leaf prediction.
  };

  int Build(const std::vector<std::vector<float>>& features,
            const std::vector<double>& targets, std::vector<int>& rows,
            int depth, const GbdtOptions& options);

  std::vector<Node> nodes_;
};

// The boosted ensemble.
class Gbdt {
 public:
  void Train(const std::vector<std::vector<float>>& features,
             const std::vector<double>& targets, const GbdtOptions& options);

  double Predict(const std::vector<float>& x) const;

  void Serialize(ByteWriter* writer) const;
  bool Deserialize(ByteReader* reader);

  size_t num_trees() const { return trees_.size(); }
  size_t SizeBytes() const;

 private:
  double base_prediction_ = 0.0;
  double learning_rate_ = 0.0;
  std::vector<RegressionTree> trees_;
};

}  // namespace arecel

#endif  // ARECEL_ML_GBDT_H_
