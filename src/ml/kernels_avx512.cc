// AVX-512 (F + BW) instantiation of the fast ML kernel table
// (ml/kernels_simd.h), compiled with -mavx512f -mavx512bw
// (src/CMakeLists.txt) and selected at runtime only after a CPUID check for
// both features, so the binary stays runnable on AVX2-only hardware.
//
// Numeric contract (see kernels_simd.h): this tier must be bit-identical to
// the AVX2 tier so that runtime ISA dispatch never perturbs the fast
// backend's numerics (goldens and the serve-path "bit-identical to direct
// inference" guarantees are frozen against it). The kernels here achieve
// that two ways:
//  * dense_rows / packed_dense_rows keep one FMA chain per output column in
//    k order — lane-independent arithmetic, so widening the vectors from
//    8 to 16 lanes only regroups lanes. The sub-16-column remainder of
//    dense_rows is delegated to the AVX2 table (same machine code, same
//    result) rather than reimplemented.
//  * dot_rows and accum_outer forward to the AVX2 table outright: dot_rows
//    reduces across lanes (hadd tree), where a 512-bit rewrite would change
//    summation order; accum_outer only serves training, which this tier
//    does not accelerate.
// quant_dense_rows accumulates in exact int32 and performs QuantEpilogue's
// float sequence lane-wise, so it is bit-identical across tiers by
// construction; it is the kernel this TU exists for (one 64-byte packed
// group = one zmm, shared across a 4-row register block).

#include "ml/kernels_simd.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "ml/packed.h"

namespace arecel {
namespace mlk {
namespace {

// The AVX2 table is always compiled when this TU is (-mavx512f implies
// AVX2 support in the compiler), and any CPU passing the avx512f+bw CPUID
// check runs AVX2 code; the portable fallback is for form only.
inline const KernelOps& TailOps() {
  const KernelOps* avx2 = Avx2KernelOps();
  return avx2 != nullptr ? *avx2 : PortableKernelOps();
}

// R output rows x 16 cols at (i, j): one zmm FMA chain per row.
template <size_t R>
inline void DenseTileZmm(const float* a, size_t lda, const float* b,
                         size_t ldb, __m512 biasv, bool relu, float* out,
                         size_t ldo, size_t i, size_t j, size_t k) {
  __m512 acc[R];
  const float* a_rows[R];
  for (size_t r = 0; r < R; ++r) {
    acc[r] = biasv;
    a_rows[r] = a + (i + r) * lda;
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const __m512 bv = _mm512_loadu_ps(b + kk * ldb + j);
    for (size_t r = 0; r < R; ++r)
      acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(a_rows[r][kk]), bv, acc[r]);
  }
  if (relu) {
    const __m512 zero = _mm512_setzero_ps();
    for (size_t r = 0; r < R; ++r) acc[r] = _mm512_max_ps(acc[r], zero);
  }
  for (size_t r = 0; r < R; ++r)
    _mm512_storeu_ps(out + (i + r) * ldo + j, acc[r]);
}

void DenseRowsAvx512(const float* a, size_t lda, const float* b, size_t ldb,
                     const float* bias, bool relu, float* out, size_t ldo,
                     size_t i_lo, size_t i_hi, size_t k, size_t n) {
  const size_t n16 = n / 16 * 16;
  size_t i = i_lo;
  while (i < i_hi) {
    const size_t rows = i + 4 <= i_hi ? 4 : i_hi - i;
    for (size_t j = 0; j < n16; j += 16) {
      const __m512 biasv =
          bias != nullptr ? _mm512_loadu_ps(bias + j) : _mm512_setzero_ps();
      switch (rows) {
        case 4:
          DenseTileZmm<4>(a, lda, b, ldb, biasv, relu, out, ldo, i, j, k);
          break;
        case 3:
          DenseTileZmm<3>(a, lda, b, ldb, biasv, relu, out, ldo, i, j, k);
          break;
        case 2:
          DenseTileZmm<2>(a, lda, b, ldb, biasv, relu, out, ldo, i, j, k);
          break;
        default:
          DenseTileZmm<1>(a, lda, b, ldb, biasv, relu, out, ldo, i, j, k);
          break;
      }
    }
    i += rows;
  }
  if (n16 < n) {
    // Delegate the <16-column remainder to the AVX2 kernel over the column
    // slice [n16, n): identical machine code to the avx2 tier's own tail.
    TailOps().dense_rows(a, lda, b + n16, ldb,
                         bias != nullptr ? bias + n16 : nullptr, relu,
                         out + n16, ldo, i_lo, i_hi, k, n - n16);
  }
}

void DotRowsAvx512(const float* a, size_t lda, const float* b, size_t ldb,
                   float* out, size_t ldo, size_t i_lo, size_t i_hi, size_t k,
                   size_t n) {
  TailOps().dot_rows(a, lda, b, ldb, out, ldo, i_lo, i_hi, k, n);
}

void AccumOuterAvx512(const float* a, size_t lda, const float* b, size_t ldb,
                      float* out, size_t ldo, size_t k_lo, size_t k_hi,
                      size_t m, size_t n) {
  TailOps().accum_outer(a, lda, b, ldb, out, ldo, k_lo, k_hi, m, n);
}

// Packed tile (16 cols = exactly one zmm) for R rows at row i.
template <size_t R>
inline void PackedTileAvx512(const float* a, size_t lda, const float* tp,
                             size_t k, __m512 biasv, bool relu, float* out,
                             size_t ldo, size_t i, size_t jbase,
                             size_t col_begin, size_t col_end) {
  __m512 acc[R];
  const float* a_rows[R];
  for (size_t r = 0; r < R; ++r) {
    acc[r] = biasv;
    a_rows[r] = a + (i + r) * lda;
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const __m512 bv = _mm512_load_ps(tp + kk * kPackTileCols);
    for (size_t r = 0; r < R; ++r)
      acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(a_rows[r][kk]), bv, acc[r]);
  }
  if (relu) {
    const __m512 zero = _mm512_setzero_ps();
    for (size_t r = 0; r < R; ++r) acc[r] = _mm512_max_ps(acc[r], zero);
  }
  if (jbase >= col_begin && jbase + kPackTileCols <= col_end) {
    for (size_t r = 0; r < R; ++r)
      _mm512_storeu_ps(out + (i + r) * ldo + (jbase - col_begin), acc[r]);
  } else {
    // Edge tile: spill and copy the covered columns (an offset masked store
    // could form an out-of-range base pointer when jbase < col_begin).
    const size_t c_lo = jbase < col_begin ? col_begin - jbase : 0;
    const size_t c_hi =
        col_end - jbase < kPackTileCols ? col_end - jbase : kPackTileCols;
    alignas(64) float tmp[kPackTileCols];
    for (size_t r = 0; r < R; ++r) {
      _mm512_store_ps(tmp, acc[r]);
      float* o = out + (i + r) * ldo;
      for (size_t c = c_lo; c < c_hi; ++c) o[jbase + c - col_begin] = tmp[c];
    }
  }
}

void PackedDenseRowsAvx512(const float* a, size_t lda, const float* bp,
                           size_t k, size_t n, const float* bias, bool relu,
                           float* out, size_t ldo, size_t i_lo, size_t i_hi,
                           size_t col_begin, size_t cols) {
  const size_t col_end = col_begin + cols;
  const size_t t0 = col_begin / kPackTileCols;
  size_t i = i_lo;
  while (i < i_hi) {
    const size_t rows = i + 4 <= i_hi ? 4 : i_hi - i;
    for (size_t t = t0; t * kPackTileCols < col_end; ++t) {
      const size_t jbase = t * kPackTileCols;
      const float* tp = bp + jbase * k;
      __m512 biasv;
      if (bias == nullptr) {
        biasv = _mm512_setzero_ps();
      } else if (jbase + kPackTileCols <= n) {
        biasv = _mm512_loadu_ps(bias + jbase);
      } else {
        const __mmask16 mask =
            static_cast<__mmask16>((1u << (n - jbase)) - 1u);
        biasv = _mm512_maskz_loadu_ps(mask, bias + jbase);
      }
      switch (rows) {
        case 4:
          PackedTileAvx512<4>(a, lda, tp, k, biasv, relu, out, ldo, i, jbase,
                              col_begin, col_end);
          break;
        case 3:
          PackedTileAvx512<3>(a, lda, tp, k, biasv, relu, out, ldo, i, jbase,
                              col_begin, col_end);
          break;
        case 2:
          PackedTileAvx512<2>(a, lda, tp, k, biasv, relu, out, ldo, i, jbase,
                              col_begin, col_end);
          break;
        default:
          PackedTileAvx512<1>(a, lda, tp, k, biasv, relu, out, ldo, i, jbase,
                              col_begin, col_end);
          break;
      }
    }
    i += rows;
  }
}

// Dequant + store epilogue shared by the maddubs and VNNI accumulation
// paths below. Vectorized but keeps QuantEpilogue's exact float sequence
// per lane — int32 subtract (exact), one multiply by the pre-multiplied
// scale, one add of bias — so quant outputs stay bit-identical to the
// portable tier's scalar epilogue. Edge tiles fall back to that scalar
// epilogue directly.
template <size_t R>
inline void QuantTileEpilogueAvx512(const __m512i* acc, const float* a_scales,
                                    const int32_t* a_zps,
                                    const float* w_scales,
                                    const int32_t* w_col_sums,
                                    const float* bias, bool relu, float* out,
                                    size_t ldo, size_t i, size_t jbase,
                                    size_t col_begin, size_t col_end) {
  if (jbase >= col_begin && jbase + kPackTileCols <= col_end) {
    const __m512i col_sums = _mm512_loadu_si512(
        reinterpret_cast<const __m512i*>(w_col_sums + jbase));
    const __m512 w_scale_v = _mm512_loadu_ps(w_scales + jbase);
    const __m512 bias_v =
        bias != nullptr ? _mm512_loadu_ps(bias + jbase) : _mm512_setzero_ps();
    const __m512 zero = _mm512_setzero_ps();
    for (size_t r = 0; r < R; ++r) {
      const __m512i x = _mm512_sub_epi32(
          acc[r], _mm512_mullo_epi32(_mm512_set1_epi32(a_zps[i + r]),
                                     col_sums));
      const __m512 scale =
          _mm512_mul_ps(_mm512_set1_ps(a_scales[i + r]), w_scale_v);
      __m512 prod = _mm512_mul_ps(_mm512_cvtepi32_ps(x), scale);
      // Barrier: GCC's -ffp-contract=fast fuses mul/add intrinsic pairs
      // into FMAs, which would break bit-identity with QuantEpilogue's
      // two-rounding sequence (kernels_simd.h).
      asm("" : "+v"(prod));
      __m512 v = _mm512_add_ps(prod, bias_v);
      if (relu) v = _mm512_max_ps(v, zero);
      _mm512_storeu_ps(out + (i + r) * ldo + (jbase - col_begin), v);
    }
  } else {
    const size_t c_lo = jbase < col_begin ? col_begin - jbase : 0;
    const size_t c_hi =
        col_end - jbase < kPackTileCols ? col_end - jbase : kPackTileCols;
    alignas(64) int32_t accs[kPackTileCols];
    for (size_t r = 0; r < R; ++r) {
      _mm512_store_si512(accs, acc[r]);
      float* out_row = out + (i + r) * ldo;
      for (size_t c = c_lo; c < c_hi; ++c) {
        const size_t j = jbase + c;
        out_row[j - col_begin] = QuantEpilogue(
            accs[c], a_zps[i + r], w_col_sums[j], a_scales[i + r], w_scales[j],
            bias != nullptr ? bias[j] : 0.0f, relu);
      }
    }
  }
}

// R rows x one 16-column tile of the int8 kernel. One 64-byte packed group
// = 16 columns x 4 k bytes = exactly one zmm: maddubs then madd-by-ones
// reduces it to sixteen per-column int32 partials in one step, and the R
// rows share each group load (B traffic / R versus a row-at-a-time loop).
// This form needs only F+BW; the VNNI variant below replaces the pair with
// one dpbusd when the CPU has it.
template <size_t R>
inline void QuantTileAvx512(const uint8_t* aq, size_t lda_q, const int8_t* tp,
                            size_t k_pad, const float* a_scales,
                            const int32_t* a_zps, const float* w_scales,
                            const int32_t* w_col_sums, const float* bias,
                            bool relu, float* out, size_t ldo, size_t i,
                            size_t jbase, size_t col_begin, size_t col_end) {
  const __m512i ones16 = _mm512_set1_epi16(1);
  __m512i acc[R];
  const uint8_t* a_rows[R];
  for (size_t r = 0; r < R; ++r) {
    acc[r] = _mm512_setzero_si512();
    a_rows[r] = aq + (i + r) * lda_q;
  }
  for (size_t kg = 0; kg < k_pad; kg += kQuantKGroup) {
    const __m512i bv = _mm512_load_si512(tp + kg * kPackTileCols);
    for (size_t r = 0; r < R; ++r) {
      int32_t a4;
      std::memcpy(&a4, a_rows[r] + kg, sizeof(a4));
      // u8*s8 pair-sums cannot saturate: activations are 7-bit.
      acc[r] = _mm512_add_epi32(
          acc[r], _mm512_madd_epi16(
                      _mm512_maddubs_epi16(_mm512_set1_epi32(a4), bv), ones16));
    }
  }
  QuantTileEpilogueAvx512<R>(acc, a_scales, a_zps, w_scales, w_col_sums, bias,
                             relu, out, ldo, i, jbase, col_begin, col_end);
}

// AVX512-VNNI accumulation: vpdpbusd computes the four u8*s8 products of a
// k-group and adds them into the int32 accumulator in one instruction —
// exactly the arithmetic of the maddubs/madd/add triple above (products are
// sign-extended and summed at 32 bits, no intermediate saturation), so the
// accumulators and therefore the outputs are bit-identical between the two
// paths. Selected per-process via CPUID in QuantDenseRowsAvx512; the tier
// itself still only requires F+BW.
#pragma GCC push_options
#pragma GCC target("avx512vnni")
template <size_t R>
inline void QuantTileVnniAvx512(const uint8_t* aq, size_t lda_q,
                                const int8_t* tp, size_t k_pad,
                                const float* a_scales, const int32_t* a_zps,
                                const float* w_scales,
                                const int32_t* w_col_sums, const float* bias,
                                bool relu, float* out, size_t ldo, size_t i,
                                size_t jbase, size_t col_begin,
                                size_t col_end) {
  __m512i acc[R];
  const uint8_t* a_rows[R];
  for (size_t r = 0; r < R; ++r) {
    acc[r] = _mm512_setzero_si512();
    a_rows[r] = aq + (i + r) * lda_q;
  }
  for (size_t kg = 0; kg < k_pad; kg += kQuantKGroup) {
    const __m512i bv = _mm512_load_si512(tp + kg * kPackTileCols);
    for (size_t r = 0; r < R; ++r) {
      int32_t a4;
      std::memcpy(&a4, a_rows[r] + kg, sizeof(a4));
      acc[r] = _mm512_dpbusd_epi32(acc[r], _mm512_set1_epi32(a4), bv);
    }
  }
  QuantTileEpilogueAvx512<R>(acc, a_scales, a_zps, w_scales, w_col_sums, bias,
                             relu, out, ldo, i, jbase, col_begin, col_end);
}

// R rows x T consecutive 16-column tiles in one register block (T*R zmm
// accumulators). Blocking across tiles amortizes the per-group activation
// broadcast over T dpbusd issues — the broadcast chain, not the multiply,
// is what bounds the single-tile form. Only used on spans of fully covered
// tiles (the epilogue still handles generality, but the driver never
// routes edges here). Accumulation is exact int32, so tiling shape cannot
// change results.
template <size_t R, size_t T>
inline void QuantBlockVnniAvx512(const uint8_t* aq, size_t lda_q,
                                 const int8_t* bq, size_t k_pad,
                                 const float* a_scales, const int32_t* a_zps,
                                 const float* w_scales,
                                 const int32_t* w_col_sums, const float* bias,
                                 bool relu, float* out, size_t ldo, size_t i,
                                 size_t jbase0, size_t col_begin,
                                 size_t col_end) {
  __m512i acc[T][R];
  const uint8_t* a_rows[R];
  const int8_t* tps[T];
  for (size_t r = 0; r < R; ++r) a_rows[r] = aq + (i + r) * lda_q;
  for (size_t t = 0; t < T; ++t) {
    tps[t] = bq + (jbase0 / kPackTileCols + t) * kPackTileCols * k_pad;
    for (size_t r = 0; r < R; ++r) acc[t][r] = _mm512_setzero_si512();
  }
  for (size_t kg = 0; kg < k_pad; kg += kQuantKGroup) {
    __m512i bv[T];
    for (size_t t = 0; t < T; ++t)
      bv[t] = _mm512_load_si512(tps[t] + kg * kPackTileCols);
    for (size_t r = 0; r < R; ++r) {
      int32_t a4;
      std::memcpy(&a4, a_rows[r] + kg, sizeof(a4));
      const __m512i av = _mm512_set1_epi32(a4);
      for (size_t t = 0; t < T; ++t)
        acc[t][r] = _mm512_dpbusd_epi32(acc[t][r], av, bv[t]);
    }
  }
  for (size_t t = 0; t < T; ++t) {
    QuantTileEpilogueAvx512<R>(acc[t], a_scales, a_zps, w_scales, w_col_sums,
                               bias, relu, out, ldo, i,
                               jbase0 + t * kPackTileCols, col_begin, col_end);
  }
}
#pragma GCC pop_options

// Micro-dispatch between the two accumulation forms: probed once per
// process (ARECEL_ML_VNNI=0 forces the maddubs form, e.g. to cover both
// paths in tests on VNNI hardware). Both produce bit-identical results, so
// this is purely a throughput choice.
bool UseAvx512Vnni() {
  static const bool use = [] {
    const char* env = std::getenv("ARECEL_ML_VNNI");
    if (env != nullptr && env[0] == '0' && env[1] == '\0') return false;
    return __builtin_cpu_supports("avx512vnni") != 0;
  }();
  return use;
}

void QuantDenseRowsAvx512(const uint8_t* aq, size_t lda_q,
                          const float* a_scales, const int32_t* a_zps,
                          const int8_t* bq, size_t k_pad, size_t n_pad,
                          const float* w_scales, const int32_t* w_col_sums,
                          const float* bias, bool relu, float* out,
                          size_t ldo, size_t i_lo, size_t i_hi,
                          size_t col_begin, size_t cols) {
  (void)n_pad;
  using TileFn = void (*)(const uint8_t*, size_t, const int8_t*, size_t,
                          const float*, const int32_t*, const float*,
                          const int32_t*, const float*, bool, float*, size_t,
                          size_t, size_t, size_t, size_t);
  static constexpr TileFn kTiles[2][4] = {
      {QuantTileAvx512<1>, QuantTileAvx512<2>, QuantTileAvx512<3>,
       QuantTileAvx512<4>},
      {QuantTileVnniAvx512<1>, QuantTileVnniAvx512<2>, QuantTileVnniAvx512<3>,
       QuantTileVnniAvx512<4>},
  };
  const bool vnni = UseAvx512Vnni();
  const TileFn* tiles = kTiles[vnni ? 1 : 0];
  const size_t col_end = col_begin + cols;
  const size_t t0 = col_begin / kPackTileCols;
  // Tile index range whose 16 columns are all inside the window — eligible
  // for the 4-tile VNNI block.
  const size_t t_flo = (col_begin + kPackTileCols - 1) / kPackTileCols;
  const size_t t_fhi = col_end / kPackTileCols;
  size_t i = i_lo;
  while (i < i_hi) {
    const size_t rows = i + 4 <= i_hi ? 4 : i_hi - i;
    const TileFn tile = tiles[rows - 1];
    size_t t = t0;
    while (t * kPackTileCols < col_end) {
      if (vnni && rows == 4 && t >= t_flo && t + 4 <= t_fhi) {
        QuantBlockVnniAvx512<4, 4>(aq, lda_q, bq, k_pad, a_scales, a_zps,
                                   w_scales, w_col_sums, bias, relu, out, ldo,
                                   i, t * kPackTileCols, col_begin, col_end);
        t += 4;
        continue;
      }
      const size_t jbase = t * kPackTileCols;
      const int8_t* tp = bq + jbase * k_pad;
      tile(aq, lda_q, tp, k_pad, a_scales, a_zps, w_scales, w_col_sums, bias,
           relu, out, ldo, i, jbase, col_begin, col_end);
      ++t;
    }
    i += rows;
  }
}

// 16-wide activation quantization (ml/packed.h scheme). Same contract as
// the AVX2 tier: the exact per-element sequence of QuantizeRowsPortable
// (mul and add as two intrinsics — never vfmadd — then max/min/cvtt), with
// tails handled by zero-masked loads so every element takes the vector
// path. Zero-filled masked lanes are harmless in the range pass because
// the range includes 0 by construction; tail code bytes spill through a
// stack buffer (masked byte stores on xmm need AVX512VL, which this TU
// does not enable). min/max lane reductions are exactly associative
// over finite activations, so scales and zero points match the other
// tiers bit for bit.
void QuantizeRowsAvx512(const float* a, size_t lda, size_t k, uint8_t* aq,
                        size_t lda_q, float* a_scales, int32_t* a_zps,
                        size_t i_lo, size_t i_hi) {
  const __m512 vzero = _mm512_setzero_ps();
  const __m512 vcap = _mm512_set1_ps(127.5f);
  const size_t kv = k & ~static_cast<size_t>(15);
  const __mmask16 tail_mask =
      static_cast<__mmask16>((1u << (k - kv)) - 1u);  // all-zero when k==kv
  for (size_t i = i_lo; i < i_hi; ++i) {
    const float* row = a + i * lda;
    uint8_t* dst = aq + i * lda_q;
    __m512 vmin = vzero, vmax = vzero;
    for (size_t kk = 0; kk < kv; kk += 16) {
      const __m512 v = _mm512_loadu_ps(row + kk);
      vmin = _mm512_min_ps(vmin, v);
      vmax = _mm512_max_ps(vmax, v);
    }
    if (kv < k) {
      const __m512 v = _mm512_maskz_loadu_ps(tail_mask, row + kv);
      vmin = _mm512_min_ps(vmin, v);
      vmax = _mm512_max_ps(vmax, v);
    }
    const float min_v = _mm512_reduce_min_ps(vmin);
    const float max_v = _mm512_reduce_max_ps(vmax);
    const float range = max_v - min_v;
    const float scale = range > 0.0f ? range / 127.0f : 1.0f;
    const int32_t zp = static_cast<int32_t>(
        std::clamp<long>(std::lrintf(-min_v / scale), 0, 127));
    a_scales[i] = scale;
    a_zps[i] = zp;
    const __m512 vinv = _mm512_set1_ps(1.0f / scale);
    const __m512 vzp = _mm512_set1_ps(static_cast<float>(zp) + 0.5f);
    for (size_t kk = 0; kk < kv; kk += 16) {
      __m512 prod = _mm512_mul_ps(_mm512_loadu_ps(row + kk), vinv);
      // Barrier: keep mul and add separately rounded (no FMA contraction),
      // matching QuantizeRowsPortable's -ffp-contract=off arithmetic.
      asm("" : "+v"(prod));
      __m512 q = _mm512_add_ps(prod, vzp);
      q = _mm512_min_ps(_mm512_max_ps(q, vzero), vcap);
      const __m128i p8 = _mm512_cvtepi32_epi8(_mm512_cvttps_epi32(q));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + kk), p8);
    }
    if (kv < k) {
      __m512 prod =
          _mm512_mul_ps(_mm512_maskz_loadu_ps(tail_mask, row + kv), vinv);
      asm("" : "+v"(prod));
      __m512 q = _mm512_add_ps(prod, vzp);
      q = _mm512_min_ps(_mm512_max_ps(q, vzero), vcap);
      const __m128i p8 = _mm512_cvtepi32_epi8(_mm512_cvttps_epi32(q));
      alignas(16) uint8_t tmp[16];
      _mm_store_si128(reinterpret_cast<__m128i*>(tmp), p8);
      std::memcpy(dst + kv, tmp, k - kv);
    }
    for (size_t kk = k; kk < lda_q; ++kk) dst[kk] = 0;
  }
}

constexpr KernelOps kAvx512Ops = {
    DenseRowsAvx512,
    DotRowsAvx512,
    AccumOuterAvx512,
    PackedDenseRowsAvx512,
    QuantDenseRowsAvx512,
    QuantizeRowsAvx512,
    "avx512",
};

}  // namespace

const KernelOps* Avx512KernelOps() { return &kAvx512Ops; }

}  // namespace mlk
}  // namespace arecel

#else  // !(__AVX512F__ && __AVX512BW__)

namespace arecel {
namespace mlk {

const KernelOps* Avx512KernelOps() { return nullptr; }

}  // namespace mlk
}  // namespace arecel

#endif
