#ifndef ARECEL_ML_NN_H_
#define ARECEL_ML_NN_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "ml/matrix.h"
#include "ml/packed.h"
#include "util/archive.h"
#include "util/random.h"

namespace arecel {

// Minimal feed-forward neural-network substrate with hand-derived backward
// passes — the stand-in for PyTorch in this reproduction (DESIGN.md §2).
// It supports exactly what the paper's three NN estimators need:
//  * Dense layers with optional ReLU and optional elementwise weight masks
//    (masks implement MADE's autoregressive connectivity for Naru);
//  * residual additions (ResMADE);
//  * Adam;
//  * MSE-on-log and mean-q-error losses (ml/loss.h).
//
// Matrices are (batch x features), row-major.

enum class Activation { kNone, kRelu };

// Fully-connected layer: out = act(in * W + b), with an optional binary
// mask applied to W on every access (the mask also zeroes the corresponding
// gradients, so masked connections stay dead under Adam).
class DenseLayer {
 public:
  // He-uniform initialization.
  DenseLayer(size_t in_features, size_t out_features, Activation activation,
             Rng& rng);

  // Sets the MADE connectivity mask; shape (in_features x out_features),
  // entries 0/1. Applies immediately to the current weights.
  void SetMask(Matrix mask);

  // Inference forward; no caches.
  void Forward(const Matrix& input, Matrix* output) const;

  // Sliced inference head: out = input * W[:, col_begin:col_begin+cols) +
  // b[col_begin:...), no activation — the MADE logits access pattern.
  void ForwardSlice(const Matrix& input, size_t col_begin, size_t cols,
                    Matrix* out) const;

  // Builds the packed fp32 + int8 inference forms of the current weights
  // (ml/packed.h); Forward/ForwardSlice then use them under every
  // non-reference backend. Call only on a layer that has finished training
  // and is not concurrently Forward()ing (the serving layer packs before
  // publishing a model). Any weight mutation — AdamStep, SetMask,
  // mutable_weights() — drops the pack, so training numerics never change.
  void PackForInference();
  void ClearPacked();
  bool packed() const { return packed_.has; }

  // Training forward: caches input and pre-activation for Backward.
  void ForwardTrain(const Matrix& input, Matrix* output);

  // Backprop: consumes dL/d(output), accumulates weight/bias gradients and
  // writes dL/d(input) to `input_grad` (may be nullptr for the first layer).
  void Backward(const Matrix& output_grad, Matrix* input_grad);

  // Adam update with the accumulated gradients; zeroes them afterwards.
  void AdamStep(float learning_rate);

  void ZeroGradients();

  size_t in_features() const { return weights_.rows(); }
  size_t out_features() const { return weights_.cols(); }
  size_t ParamCount() const { return weights_.size() + bias_.size(); }

  // Non-const weight access invalidates the packed forms: callers get a
  // handle to mutate, so the derived cache can no longer be trusted.
  Matrix& mutable_weights() {
    packed_.Clear();
    return weights_;
  }
  const Matrix& weights() const { return weights_; }
  std::vector<float>& mutable_bias() { return bias_; }
  const std::vector<float>& bias() const { return bias_; }

 private:
  Activation activation_;
  Matrix weights_;           // (in x out).
  std::vector<float> bias_;  // (out).
  bool has_mask_ = false;
  Matrix mask_;

  // Derived inference cache (ml/packed.h); empty until PackForInference.
  PackedDenseWeights packed_;

  // Gradients.
  Matrix weight_grad_;
  std::vector<float> bias_grad_;

  // Adam state.
  Matrix m_w_, v_w_;
  std::vector<float> m_b_, v_b_;
  int adam_step_ = 0;

  // Caches from ForwardTrain.
  Matrix cached_input_;
  Matrix cached_preact_;

  // Scratch for the fused backward's masked gradient (avoids a per-step
  // allocation; see DenseBackward in ml/kernels.h).
  Matrix dz_scratch_;
};

// A plain multilayer perceptron: a stack of DenseLayers. The last layer is
// linear; hidden layers use ReLU.
class Mlp {
 public:
  // layer_sizes = {in, hidden..., out}.
  Mlp(const std::vector<size_t>& layer_sizes, Rng& rng);

  void Forward(const Matrix& input, Matrix* output) const;
  void ForwardTrain(const Matrix& input, Matrix* output);

  // Packs every layer for inference (see DenseLayer::PackForInference).
  void PackForInference();

  // Backprop from dL/d(output). When `input_grad` is non-null it receives
  // dL/d(input) — needed when this MLP is an inner module of a larger
  // network (e.g. MSCN's predicate/sample sub-networks).
  void Backward(const Matrix& output_grad, Matrix* input_grad = nullptr);

  void AdamStep(float learning_rate);

  size_t ParamCount() const;

  std::vector<DenseLayer>& layers() { return layers_; }
  const std::vector<DenseLayer>& layers() const { return layers_; }

 private:
  std::vector<DenseLayer> layers_;
  // Per-layer activation buffers for ForwardTrain only; Forward uses local
  // scratch so concurrent inference over a shared trained model is safe.
  std::vector<Matrix> buffers_;
};

// Softmax over the columns of each row segment [begin, end). In-place.
void SoftmaxRows(Matrix* m, size_t begin_col, size_t end_col);

// Model-persistence helpers (core/model_io.h, src/store/): topology +
// weights + biases of an MLP. Adam moments are training-only state and are
// not saved — an Update() after a load restarts them from zero, the same
// contract LW-NN documents.
void SerializeMlp(const Mlp& mlp, ByteWriter* writer);

// One layer's weight matrix + bias vector (shape-prefixed). Deserialize
// requires `layer` to already have the matching shape (the caller rebuilds
// the network structure first); returns false on truncation or mismatch.
void SerializeDenseLayerParams(const DenseLayer& layer, ByteWriter* writer);
bool DeserializeDenseLayerParams(ByteReader* reader, DenseLayer* layer);

// Rebuilds `*mlp` at the serialized topology with every parameter
// overwritten. Validates layer chaining (out of layer i == in of layer
// i+1) and per-layer weight/bias sizes; returns false (leaving *mlp in an
// unspecified state) on a truncated or inconsistent stream.
bool DeserializeMlp(ByteReader* reader, std::unique_ptr<Mlp>* mlp);

}  // namespace arecel

#endif  // ARECEL_ML_NN_H_
