#ifndef ARECEL_ML_RDC_H_
#define ARECEL_ML_RDC_H_

#include <cstdint>
#include <vector>

namespace arecel {

// Randomized Dependence Coefficient (Lopez-Paz et al., NeurIPS'13) — the
// dependence test DeepDB uses to decide whether two column groups can be
// split by a product node. Pipeline:
//   1. copula transform: values -> empirical CDF ranks in [0, 1];
//   2. k random sine features per side: sin(w * u + b), w ~ N(0, s), b ~ U;
//   3. largest canonical correlation between the two feature sets.
// Returns a value in [0, 1]; independent columns score near 0.
double Rdc(const std::vector<double>& x, const std::vector<double>& y,
           int num_features = 5, double sigma = 1.0, uint64_t seed = 17);

// Largest canonical correlation between feature matrices X (n x p) and
// Y (n x q), computed by power iteration on the CCA operator with ridge
// regularization. Exposed for testing.
double LargestCanonicalCorrelation(
    const std::vector<std::vector<double>>& x_features,
    const std::vector<std::vector<double>>& y_features, uint64_t seed);

}  // namespace arecel

#endif  // ARECEL_ML_RDC_H_
