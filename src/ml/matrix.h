#ifndef ARECEL_ML_MATRIX_H_
#define ARECEL_ML_MATRIX_H_

#include <cstddef>
#include <new>
#include <vector>

namespace arecel {

// Alignment of Matrix storage. 64 bytes = one cache line = a full AVX-512
// vector; keeps SIMD loads in the kernel backends (ml/kernels.h) from
// straddling lines at the buffer head and lets tiled kernels assume the
// base pointer is line-aligned.
inline constexpr std::size_t kMatrixAlignment = 64;

// Minimal over-aligned allocator so Matrix storage can stay a std::vector
// (copy/move/resize semantics for free) while the buffer itself is
// cache-line aligned.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
};

template <typename T, typename U, std::size_t Alignment>
bool operator==(const AlignedAllocator<T, Alignment>&,
                const AlignedAllocator<U, Alignment>&) {
  return true;
}
template <typename T, typename U, std::size_t Alignment>
bool operator!=(const AlignedAllocator<T, Alignment>&,
                const AlignedAllocator<U, Alignment>&) {
  return false;
}

// Dense row-major float matrix — the numeric workhorse of the neural-network
// substrate (Naru's ResMADE, MSCN, LW-NN). Float (not double) halves memory
// traffic; the models here are small enough that fp32 is numerically ample.
// Storage is contiguous (no row padding) and 64-byte aligned.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v);
  void Resize(size_t rows, size_t cols);  // contents unspecified after.

 private:
  size_t rows_, cols_;
  std::vector<float, AlignedAllocator<float, kMatrixAlignment>> data_;
};

// The matmul family dispatches on the active kernel backend (ml/kernels.h):
// `reference` keeps the original scalar loops, `fast` (default) runs the
// cache-blocked SIMD kernels.

// out = a * b. Shapes must agree; out is resized.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

// out = a * b^T (b stored row-major as (n x k); result (m x n) for a (m x k)).
void MatMulBT(const Matrix& a, const Matrix& b, Matrix* out);

// out = a^T * b for a (k x m), b (k x n); result (m x n).
void MatMulAT(const Matrix& a, const Matrix& b, Matrix* out);

// out += row broadcast: adds `bias` (length cols) to every row of m.
void AddRowBroadcast(Matrix* m, const std::vector<float>& bias);

// Column-wise sum of m into out (length cols).
void ColumnSums(const Matrix& m, std::vector<float>* out);

}  // namespace arecel

#endif  // ARECEL_ML_MATRIX_H_
