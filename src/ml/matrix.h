#ifndef ARECEL_ML_MATRIX_H_
#define ARECEL_ML_MATRIX_H_

#include <cstddef>
#include <vector>

namespace arecel {

// Dense row-major float matrix — the numeric workhorse of the neural-network
// substrate (Naru's ResMADE, MSCN, LW-NN). Float (not double) halves memory
// traffic; the models here are small enough that fp32 is numerically ample.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v);
  void Resize(size_t rows, size_t cols);  // contents unspecified after.

 private:
  size_t rows_, cols_;
  std::vector<float> data_;
};

// out = a * b. Shapes must agree; out is resized. Cache-blocked i-k-j loop.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

// out = a * b^T (b stored row-major as (n x k); result (m x n) for a (m x k)).
void MatMulBT(const Matrix& a, const Matrix& b, Matrix* out);

// out = a^T * b for a (k x m), b (k x n); result (m x n).
void MatMulAT(const Matrix& a, const Matrix& b, Matrix* out);

// out += row broadcast: adds `bias` (length cols) to every row of m.
void AddRowBroadcast(Matrix* m, const std::vector<float>& bias);

// Column-wise sum of m into out (length cols).
void ColumnSums(const Matrix& m, std::vector<float>* out);

}  // namespace arecel

#endif  // ARECEL_ML_MATRIX_H_
