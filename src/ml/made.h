#ifndef ARECEL_ML_MADE_H_
#define ARECEL_ML_MADE_H_

#include <cstdint>
#include <vector>

#include "ml/matrix.h"
#include "ml/nn.h"
#include "util/random.h"

namespace arecel {

// ResMADE: a masked autoregressive network over the dictionary codes of a
// table's columns — the building block the paper selects for Naru (§3,
// "we choose ResMADE ... because it is both efficient and accurate").
//
// Factorization (natural column order):
//   P(x_0, ..., x_{n-1}) = prod_i P(x_i | x_0..x_{i-1})
//
// Input encoding: each column's code is binary-encoded (ceil(log2(vocab))
// bits), the cheap encoding Naru offers for large domains; all bits of a
// column share that column's autoregressive degree. Output: one logit
// segment of length vocab_i per column; the MADE masks guarantee segment i
// only sees columns < i, so logits for column 0 are data-independent
// (learned marginals live in the bias).
//
// Architecture: masked input layer -> `num_blocks` residual blocks (each a
// masked hidden->hidden dense with ReLU plus identity skip) -> masked
// output layer.
class ResMade {
 public:
  struct Options {
    size_t hidden_units = 64;
    int num_blocks = 2;
    uint64_t seed = 1;
  };

  ResMade(std::vector<int> vocab_sizes, const Options& options);

  size_t num_columns() const { return vocab_sizes_.size(); }
  int vocab_size(size_t col) const { return vocab_sizes_[col]; }
  size_t input_dim() const { return input_dim_; }
  size_t output_dim() const { return output_dim_; }
  size_t logit_offset(size_t col) const { return out_offsets_[col]; }

  // Writes the binary encoding of one code vector (length num_columns) into
  // dst[0 .. input_dim). Columns with index >= `valid_prefix` are encoded
  // as zeros (their value cannot affect outputs for columns < valid_prefix,
  // which is all progressive sampling reads at that step).
  void Encode(const int32_t* codes, size_t valid_prefix, float* dst) const;

  // Inference forward: logits (batch x output_dim).
  void Forward(const Matrix& input, Matrix* logits) const;

  // Inference forward computing only column `col`'s logit segment
  // (batch x vocab(col)). Progressive sampling reads one column per step;
  // slicing the output matmul makes that step O(vocab_col) instead of
  // O(sum of vocabs).
  void ForwardColumnLogits(const Matrix& input, size_t col,
                           Matrix* logits) const;

  // Builds the packed/quantized inference forms of every layer (ml/packed.h)
  // — the wide logits layer is the headline winner, its slices being the
  // strided-B walk the tile-packed form eliminates. Training or raw weight
  // mutation drops the packs layer-by-layer.
  void PackForInference();

  // One SGD/Adam step on a batch. `targets` holds batch*num_columns codes
  // (row-major). Returns the mean per-row negative log-likelihood (nats).
  float TrainStep(const Matrix& input, const std::vector<int32_t>& targets,
                  float learning_rate);

  // P(x_col = k | prefix) for every k, extracted from a logits row.
  void ColumnDistribution(const Matrix& logits, size_t row, size_t col,
                          std::vector<double>* probs) const;

  size_t ParamCount() const;

  // Structure + parameter access for persistence (ml/autoregressive.cc):
  // masks are rebuilt deterministically from (vocab_sizes, hidden_units,
  // num_blocks), so a saved model is reconstructed by re-running the
  // constructor at the recorded shape and overwriting every weight/bias.
  const std::vector<int>& vocab_sizes() const { return vocab_sizes_; }
  size_t hidden_units() const { return layers_[0].out_features(); }
  int num_blocks() const { return static_cast<int>(layers_.size()) - 2; }
  const std::vector<DenseLayer>& layers() const { return layers_; }
  std::vector<DenseLayer>& mutable_layers() { return layers_; }

 private:
  void ForwardInternal(const Matrix& input, Matrix* logits,
                       bool training) const;

  std::vector<int> vocab_sizes_;
  std::vector<int> bits_;          // input bits per column.
  std::vector<size_t> in_offsets_;   // input segment start per column.
  std::vector<size_t> out_offsets_;  // output segment start per column.
  size_t input_dim_ = 0;
  size_t output_dim_ = 0;

  // Layers: [0] input->hidden; [1..num_blocks] hidden->hidden (residual);
  // [last] hidden->output.
  mutable std::vector<DenseLayer> layers_;
  // Training caches: activations entering each layer (post-residual).
  mutable std::vector<Matrix> layer_inputs_;
};

}  // namespace arecel

#endif  // ARECEL_ML_MADE_H_
