#ifndef ARECEL_ML_TRANSFORMER_H_
#define ARECEL_ML_TRANSFORMER_H_

#include <cstdint>
#include <vector>

#include "ml/autoregressive.h"
#include "ml/matrix.h"
#include "ml/packed.h"
#include "util/random.h"

namespace arecel {

// Decoder-only autoregressive Transformer over column codes — the second
// model family Naru builds on (§2.4 "deep autoregressive models such as
// MADE and Transformer"). Single attention head, causal mask, ReLU FFN,
// residual connections (no normalization layers: at <=16 positions and the
// small widths used here Adam trains the residual stack stably, and the
// backward pass stays auditable).
//
// Sequence layout: position i predicts column i from a token embedding of
// column i-1's value (a learned start-of-sequence vector at position 0)
// plus a learned positional embedding, so position i sees exactly
// x_0..x_{i-1} through the causal attention mask.
class AutoregressiveTransformer : public AutoregressiveModel {
 public:
  AutoregressiveTransformer(std::vector<int> vocab_sizes,
                            const TransformerBackboneOptions& options);

  size_t num_columns() const override { return vocab_sizes_.size(); }
  int vocab_size(size_t col) const override { return vocab_sizes_[col]; }

  float TrainStep(const std::vector<int32_t>& codes, size_t batch,
                  float learning_rate) override;

  void ColumnLogits(const std::vector<int32_t>& codes, size_t batch,
                    size_t col, Matrix* logits) const override;

  size_t ParamCount() const override;

  // Packs the per-column output heads (d x vocab — the widest matmuls on
  // the ColumnLogits path) and each block's FFN expansion W1 for inference
  // (ml/packed.h). TrainStep and DeserializeParams drop the packs.
  void PackForInference() override;

  void Serialize(ByteWriter* writer) const override;
  // Overwrites every parameter from the stream; shapes must match this
  // instance's construction (the deserializing factory rebuilds it from the
  // recorded structural options first). False on truncation or mismatch.
  bool DeserializeParams(ByteReader* reader);

 private:
  // A weight matrix (or bias vector via 1 x n) with its gradient and Adam
  // state.
  struct Param {
    Matrix value, grad, m, v;
    void Init(size_t rows, size_t cols, Rng& rng);
    void AdamStep(float learning_rate, int step);
  };

  struct Block {
    Param wq, wk, wv, wo;    // attention projections, (d x d).
    Param w1, b1, w2, b2;    // FFN (d x f), (1 x f), (f x d), (1 x d).
  };

  // Per-block training caches (batch*n rows unless noted).
  struct BlockCache {
    Matrix input;            // H entering the block.
    Matrix q, k, v;          // projections.
    std::vector<Matrix> attention;  // per sample, (n x n) softmax rows.
    Matrix context;          // A*V.
    Matrix after_attention;  // H + context*Wo (input to FFN).
    Matrix ffn_pre;          // after_attention * W1 + b1 (pre-ReLU).
  };

  // Builds the embedded input H0 (batch*n x d). Positions >= valid_prefix+1
  // read zero embeddings (their tokens cannot affect earlier positions).
  void Embed(const std::vector<int32_t>& codes, size_t batch,
             size_t valid_prefix, Matrix* h) const;
  // Runs the block stack; fills caches when training.
  void ForwardBlocks(Matrix* h, std::vector<BlockCache>* caches) const;
  void AttentionForward(const Block& block, const Matrix& input, Matrix* out,
                        BlockCache* cache) const;

  std::vector<int> vocab_sizes_;
  size_t d_model_;
  size_t ffn_hidden_;

  Param sos_;                      // (1 x d).
  Param positions_;                // (n x d).
  std::vector<Param> embeddings_;  // per column, (vocab x d).
  std::vector<Block> blocks_;
  std::vector<Param> out_weights_;  // per column, (d x vocab).
  std::vector<Param> out_biases_;   // per column, (1 x vocab).
  int adam_step_ = 0;

  void ClearPacked();

  // Derived inference caches (empty until PackForInference): one pack per
  // output head, one per block FFN W1.
  std::vector<PackedDenseWeights> packed_out_;
  std::vector<PackedDenseWeights> packed_w1_;
};

}  // namespace arecel

#endif  // ARECEL_ML_TRANSFORMER_H_
