#include "ml/nn.h"

#include <algorithm>
#include <cmath>

#include "ml/kernels.h"
#include "util/check.h"

namespace arecel {

namespace {
constexpr float kAdamBeta1 = 0.9f;
constexpr float kAdamBeta2 = 0.999f;
constexpr float kAdamEps = 1e-8f;
}  // namespace

DenseLayer::DenseLayer(size_t in_features, size_t out_features,
                       Activation activation, Rng& rng)
    : activation_(activation),
      weights_(in_features, out_features),
      bias_(out_features, 0.0f),
      weight_grad_(in_features, out_features),
      bias_grad_(out_features, 0.0f),
      m_w_(in_features, out_features),
      v_w_(in_features, out_features),
      m_b_(out_features, 0.0f),
      v_b_(out_features, 0.0f) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features));
  for (size_t i = 0; i < weights_.size(); ++i)
    weights_.data()[i] =
        static_cast<float>(rng.Uniform(-bound, bound));
}

void DenseLayer::SetMask(Matrix mask) {
  ARECEL_CHECK(mask.rows() == weights_.rows() &&
               mask.cols() == weights_.cols());
  mask_ = std::move(mask);
  has_mask_ = true;
  packed_.Clear();
  for (size_t i = 0; i < weights_.size(); ++i)
    weights_.data()[i] *= mask_.data()[i];
}

void DenseLayer::Forward(const Matrix& input, Matrix* output) const {
  if (packed_.has &&
      ActiveMlKernelBackend() != MlKernelBackend::kReference) {
    PackedDenseForward(input, packed_, bias_.data(),
                       activation_ == Activation::kRelu, output);
    return;
  }
  DenseForward(input, weights_, bias_.data(),
               activation_ == Activation::kRelu, output);
}

void DenseLayer::ForwardSlice(const Matrix& input, size_t col_begin,
                              size_t cols, Matrix* out) const {
  if (packed_.has &&
      ActiveMlKernelBackend() != MlKernelBackend::kReference) {
    PackedDenseForwardSlice(input, packed_, bias_.data(), col_begin, cols,
                            out);
    return;
  }
  DenseForwardSlice(input, weights_, bias_.data(), col_begin, cols, out);
}

void DenseLayer::PackForInference() { packed_.Build(weights_); }

void DenseLayer::ClearPacked() { packed_.Clear(); }

void DenseLayer::ForwardTrain(const Matrix& input, Matrix* output) {
  cached_input_ = input;
  DenseForward(input, weights_, bias_.data(), /*relu=*/false,
               &cached_preact_);
  *output = cached_preact_;
  if (activation_ == Activation::kRelu) ReluInPlace(output);
}

void DenseLayer::Backward(const Matrix& output_grad, Matrix* input_grad) {
  ARECEL_CHECK(output_grad.rows() == cached_input_.rows());
  ARECEL_CHECK(output_grad.cols() == weights_.cols());
  // Fused backward: dW += X^T dz, db += colsum(dz), dX = dz * W^T, with the
  // ReLU mask and bias sums produced in a single pass over dL/d(out).
  DenseBackward(cached_input_, cached_preact_,
                activation_ == Activation::kRelu, output_grad, weights_,
                &weight_grad_, bias_grad_.data(), input_grad, &dz_scratch_);
}

void DenseLayer::AdamStep(float learning_rate) {
  packed_.Clear();
  ++adam_step_;
  if (has_mask_) {
    for (size_t i = 0; i < weight_grad_.size(); ++i)
      weight_grad_.data()[i] *= mask_.data()[i];
  }
  const float bias_correct1 =
      1.0f - std::pow(kAdamBeta1, static_cast<float>(adam_step_));
  const float bias_correct2 =
      1.0f - std::pow(kAdamBeta2, static_cast<float>(adam_step_));
  auto update = [&](float* param, float* grad, float* m, float* v, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      m[i] = kAdamBeta1 * m[i] + (1.0f - kAdamBeta1) * grad[i];
      v[i] = kAdamBeta2 * v[i] + (1.0f - kAdamBeta2) * grad[i] * grad[i];
      const float m_hat = m[i] / bias_correct1;
      const float v_hat = v[i] / bias_correct2;
      param[i] -= learning_rate * m_hat / (std::sqrt(v_hat) + kAdamEps);
    }
  };
  update(weights_.data(), weight_grad_.data(), m_w_.data(), v_w_.data(),
         weights_.size());
  update(bias_.data(), bias_grad_.data(), m_b_.data(), v_b_.data(),
         bias_.size());
  if (has_mask_) {
    for (size_t i = 0; i < weights_.size(); ++i)
      weights_.data()[i] *= mask_.data()[i];
  }
  ZeroGradients();
}

void DenseLayer::ZeroGradients() {
  weight_grad_.Fill(0.0f);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0f);
}

Mlp::Mlp(const std::vector<size_t>& layer_sizes, Rng& rng) {
  ARECEL_CHECK(layer_sizes.size() >= 2);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    const bool last = i + 2 == layer_sizes.size();
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1],
                         last ? Activation::kNone : Activation::kRelu, rng);
  }
  buffers_.resize(layers_.size());
}

void Mlp::Forward(const Matrix& input, Matrix* output) const {
  // Local ping-pong activations instead of the shared training buffers:
  // inference stays a pure read, so a trained MLP (LW-NN, MSCN) can serve
  // concurrent EstimateSelectivity calls (src/serve/ batch dispatch).
  Matrix ping, pong;
  const Matrix* cur = &input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    Matrix* dst = (i % 2 == 0) ? &ping : &pong;
    layers_[i].Forward(*cur, dst);
    cur = dst;
  }
  *output = *cur;
}

void Mlp::ForwardTrain(const Matrix& input, Matrix* output) {
  const Matrix* cur = &input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].ForwardTrain(*cur, &buffers_[i]);
    cur = &buffers_[i];
  }
  *output = *cur;
}

void Mlp::Backward(const Matrix& output_grad, Matrix* input_grad) {
  Matrix grad = output_grad;
  Matrix prev_grad;
  for (size_t i = layers_.size(); i-- > 0;) {
    Matrix* dst = i == 0 ? input_grad : &prev_grad;
    layers_[i].Backward(grad, dst);
    if (i != 0) grad = prev_grad;
  }
}

void Mlp::PackForInference() {
  for (auto& layer : layers_) layer.PackForInference();
}

void Mlp::AdamStep(float learning_rate) {
  for (auto& layer : layers_) layer.AdamStep(learning_rate);
}

size_t Mlp::ParamCount() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer.ParamCount();
  return total;
}

void SoftmaxRows(Matrix* m, size_t begin_col, size_t end_col) {
  ARECEL_CHECK(begin_col < end_col && end_col <= m->cols());
  for (size_t r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    float max_v = row[begin_col];
    for (size_t c = begin_col; c < end_col; ++c)
      max_v = std::max(max_v, row[c]);
    float sum = 0.0f;
    for (size_t c = begin_col; c < end_col; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    for (size_t c = begin_col; c < end_col; ++c) row[c] /= sum;
  }
}

void SerializeDenseLayerParams(const DenseLayer& layer, ByteWriter* writer) {
  writer->U64(layer.in_features());
  writer->U64(layer.out_features());
  const Matrix& weights = layer.weights();
  writer->Floats(
      std::vector<float>(weights.data(), weights.data() + weights.size()));
  writer->Floats(layer.bias());
}

bool DeserializeDenseLayerParams(ByteReader* reader, DenseLayer* layer) {
  uint64_t in = 0, out = 0;
  std::vector<float> weights, bias;
  if (!reader->U64(&in) || !reader->U64(&out) || !reader->Floats(&weights) ||
      !reader->Floats(&bias)) {
    return false;
  }
  if (in != layer->in_features() || out != layer->out_features() ||
      weights.size() != in * out || bias.size() != out) {
    return false;
  }
  std::copy(weights.begin(), weights.end(), layer->mutable_weights().data());
  layer->mutable_bias() = bias;
  return true;
}

void SerializeMlp(const Mlp& mlp, ByteWriter* writer) {
  const std::vector<DenseLayer>& layers = mlp.layers();
  writer->U64(layers.size());
  for (const DenseLayer& layer : layers)
    SerializeDenseLayerParams(layer, writer);
}

bool DeserializeMlp(ByteReader* reader, std::unique_ptr<Mlp>* mlp) {
  uint64_t layer_count = 0;
  if (!reader->U64(&layer_count) || layer_count == 0 || layer_count > 64)
    return false;
  // Two passes: shapes + params first (validating chaining), then rebuild
  // the MLP at that topology and overwrite every parameter (the initializer
  // Rng is irrelevant — nothing of it survives the overwrite).
  std::vector<size_t> sizes;
  std::vector<std::vector<float>> weights(layer_count), biases(layer_count);
  for (uint64_t i = 0; i < layer_count; ++i) {
    uint64_t in = 0, out = 0;
    if (!reader->U64(&in) || !reader->U64(&out) ||
        !reader->Floats(&weights[i]) || !reader->Floats(&biases[i])) {
      return false;
    }
    if (weights[i].size() != in * out || biases[i].size() != out)
      return false;
    if (i == 0) {
      sizes.push_back(in);
    } else if (in != sizes.back()) {
      return false;
    }
    sizes.push_back(out);
  }
  Rng init_rng(0);
  *mlp = std::make_unique<Mlp>(sizes, init_rng);
  std::vector<DenseLayer>& layers = (*mlp)->layers();
  for (uint64_t i = 0; i < layer_count; ++i) {
    std::copy(weights[i].begin(), weights[i].end(),
              layers[i].mutable_weights().data());
    layers[i].mutable_bias() = biases[i];
  }
  return true;
}

}  // namespace arecel
