#include "ml/autoregressive.h"

#include "ml/made.h"
#include "ml/transformer.h"

namespace arecel {

namespace {

// Adapter exposing ResMade through the AutoregressiveModel interface: it
// owns the bit encoding that ResMade's masked layers consume.
class ResMadeModel : public AutoregressiveModel {
 public:
  ResMadeModel(std::vector<int> vocab_sizes,
               const ResMadeBackboneOptions& options)
      : made_(std::move(vocab_sizes), [&options] {
          ResMade::Options made_options;
          made_options.hidden_units = options.hidden_units;
          made_options.num_blocks = options.num_blocks;
          made_options.seed = options.seed;
          return made_options;
        }()) {}

  size_t num_columns() const override { return made_.num_columns(); }
  int vocab_size(size_t col) const override { return made_.vocab_size(col); }

  float TrainStep(const std::vector<int32_t>& codes, size_t batch,
                  float learning_rate) override {
    const size_t n = made_.num_columns();
    input_.Resize(batch, made_.input_dim());
    for (size_t b = 0; b < batch; ++b)
      made_.Encode(&codes[b * n], n, input_.Row(b));
    return made_.TrainStep(input_, codes, learning_rate);
  }

  void ColumnLogits(const std::vector<int32_t>& codes, size_t batch,
                    size_t col, Matrix* logits) const override {
    const size_t n = made_.num_columns();
    Matrix input(batch, made_.input_dim());
    for (size_t b = 0; b < batch; ++b)
      made_.Encode(&codes[b * n], col, input.Row(b));
    made_.ForwardColumnLogits(input, col, logits);
  }

  size_t ParamCount() const override { return made_.ParamCount(); }

 private:
  ResMade made_;
  Matrix input_;  // scratch for training batches.
};

}  // namespace

std::unique_ptr<AutoregressiveModel> MakeResMadeModel(
    std::vector<int> vocab_sizes, const ResMadeBackboneOptions& options) {
  return std::make_unique<ResMadeModel>(std::move(vocab_sizes), options);
}

std::unique_ptr<AutoregressiveModel> MakeTransformerModel(
    std::vector<int> vocab_sizes, const TransformerBackboneOptions& options) {
  return std::make_unique<AutoregressiveTransformer>(std::move(vocab_sizes),
                                                     options);
}

}  // namespace arecel
