#include "ml/autoregressive.h"

#include "ml/made.h"
#include "ml/nn.h"
#include "ml/transformer.h"

namespace arecel {

namespace {

// Backbone tags in the serialized form. Values are part of the on-disk
// model format — append, never renumber.
constexpr uint32_t kResMadeTag = 1;
constexpr uint32_t kTransformerTag = 2;

// Caps that bound what a corrupt length prefix can allocate while staying
// far above any real configuration.
constexpr uint64_t kMaxColumns = 1u << 16;
constexpr uint64_t kMaxHidden = 1u << 20;
constexpr uint64_t kMaxBlocks = 64;

bool ValidVocabSizes(const std::vector<int>& vocabs) {
  if (vocabs.empty() || vocabs.size() > kMaxColumns) return false;
  for (int v : vocabs)
    if (v < 1 || static_cast<uint64_t>(v) > kMaxHidden) return false;
  return true;
}

// Adapter exposing ResMade through the AutoregressiveModel interface: it
// owns the bit encoding that ResMade's masked layers consume.
class ResMadeModel : public AutoregressiveModel {
 public:
  ResMadeModel(std::vector<int> vocab_sizes,
               const ResMadeBackboneOptions& options)
      : made_(std::move(vocab_sizes), [&options] {
          ResMade::Options made_options;
          made_options.hidden_units = options.hidden_units;
          made_options.num_blocks = options.num_blocks;
          made_options.seed = options.seed;
          return made_options;
        }()) {}

  size_t num_columns() const override { return made_.num_columns(); }
  int vocab_size(size_t col) const override { return made_.vocab_size(col); }

  float TrainStep(const std::vector<int32_t>& codes, size_t batch,
                  float learning_rate) override {
    const size_t n = made_.num_columns();
    input_.Resize(batch, made_.input_dim());
    for (size_t b = 0; b < batch; ++b)
      made_.Encode(&codes[b * n], n, input_.Row(b));
    return made_.TrainStep(input_, codes, learning_rate);
  }

  void ColumnLogits(const std::vector<int32_t>& codes, size_t batch,
                    size_t col, Matrix* logits) const override {
    const size_t n = made_.num_columns();
    Matrix input(batch, made_.input_dim());
    for (size_t b = 0; b < batch; ++b)
      made_.Encode(&codes[b * n], col, input.Row(b));
    made_.ForwardColumnLogits(input, col, logits);
  }

  size_t ParamCount() const override { return made_.ParamCount(); }

  void PackForInference() override { made_.PackForInference(); }

  void Serialize(ByteWriter* writer) const override {
    writer->U32(kResMadeTag);
    writer->Ints(made_.vocab_sizes());
    writer->U64(made_.hidden_units());
    writer->U32(static_cast<uint32_t>(made_.num_blocks()));
    for (const DenseLayer& layer : made_.layers())
      SerializeDenseLayerParams(layer, writer);
  }

  bool DeserializeParams(ByteReader* reader) {
    for (DenseLayer& layer : made_.mutable_layers())
      if (!DeserializeDenseLayerParams(reader, &layer)) return false;
    return true;
  }

 private:
  ResMade made_;
  Matrix input_;  // scratch for training batches.
};

}  // namespace

std::unique_ptr<AutoregressiveModel> MakeResMadeModel(
    std::vector<int> vocab_sizes, const ResMadeBackboneOptions& options) {
  return std::make_unique<ResMadeModel>(std::move(vocab_sizes), options);
}

std::unique_ptr<AutoregressiveModel> MakeTransformerModel(
    std::vector<int> vocab_sizes, const TransformerBackboneOptions& options) {
  return std::make_unique<AutoregressiveTransformer>(std::move(vocab_sizes),
                                                     options);
}

std::unique_ptr<AutoregressiveModel> DeserializeAutoregressiveModel(
    ByteReader* reader) {
  uint32_t tag = 0;
  if (!reader->U32(&tag)) return nullptr;
  if (tag == kResMadeTag) {
    std::vector<int> vocabs;
    uint64_t hidden = 0;
    uint32_t blocks = 0;
    if (!reader->Ints(&vocabs) || !reader->U64(&hidden) ||
        !reader->U32(&blocks) || !ValidVocabSizes(vocabs) || hidden < 1 ||
        hidden > kMaxHidden || blocks > kMaxBlocks) {
      return nullptr;
    }
    ResMadeBackboneOptions options;
    options.hidden_units = hidden;
    options.num_blocks = static_cast<int>(blocks);
    options.seed = 0;  // every initialized parameter is overwritten below.
    auto model = std::make_unique<ResMadeModel>(std::move(vocabs), options);
    if (!model->DeserializeParams(reader)) return nullptr;
    return model;
  }
  if (tag == kTransformerTag) {
    std::vector<int> vocabs;
    uint64_t d_model = 0, ffn_hidden = 0;
    uint32_t blocks = 0;
    if (!reader->Ints(&vocabs) || !reader->U64(&d_model) ||
        !reader->U64(&ffn_hidden) || !reader->U32(&blocks) ||
        !ValidVocabSizes(vocabs) || d_model < 1 || d_model > kMaxHidden ||
        ffn_hidden < 1 || ffn_hidden > kMaxHidden || blocks > kMaxBlocks) {
      return nullptr;
    }
    TransformerBackboneOptions options;
    options.d_model = d_model;
    options.ffn_hidden = ffn_hidden;
    options.num_blocks = static_cast<int>(blocks);
    options.seed = 0;
    auto model = std::make_unique<AutoregressiveTransformer>(
        std::move(vocabs), options);
    if (!model->DeserializeParams(reader)) return nullptr;
    return model;
  }
  return nullptr;  // unknown backbone tag.
}

}  // namespace arecel
