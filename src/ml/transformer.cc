#include "ml/transformer.h"

#include <algorithm>
#include <cmath>

#include "ml/kernels.h"
#include "util/check.h"
#include "util/random.h"

namespace arecel {

namespace {
constexpr float kAdamBeta1 = 0.9f;
constexpr float kAdamBeta2 = 0.999f;
constexpr float kAdamEps = 1e-8f;
}  // namespace

void AutoregressiveTransformer::Param::Init(size_t rows, size_t cols,
                                            Rng& rng) {
  value.Resize(rows, cols);
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (size_t i = 0; i < value.size(); ++i)
    value.data()[i] = static_cast<float>(rng.Uniform(-bound, bound));
  grad.Resize(rows, cols);
  grad.Fill(0.0f);
  m.Resize(rows, cols);
  m.Fill(0.0f);
  v.Resize(rows, cols);
  v.Fill(0.0f);
}

void AutoregressiveTransformer::Param::AdamStep(float learning_rate,
                                                int step) {
  const float c1 = 1.0f - std::pow(kAdamBeta1, static_cast<float>(step));
  const float c2 = 1.0f - std::pow(kAdamBeta2, static_cast<float>(step));
  for (size_t i = 0; i < value.size(); ++i) {
    const float g = grad.data()[i];
    m.data()[i] = kAdamBeta1 * m.data()[i] + (1.0f - kAdamBeta1) * g;
    v.data()[i] = kAdamBeta2 * v.data()[i] + (1.0f - kAdamBeta2) * g * g;
    value.data()[i] -= learning_rate * (m.data()[i] / c1) /
                       (std::sqrt(v.data()[i] / c2) + kAdamEps);
  }
  grad.Fill(0.0f);
}

AutoregressiveTransformer::AutoregressiveTransformer(
    std::vector<int> vocab_sizes, const TransformerBackboneOptions& options)
    : vocab_sizes_(std::move(vocab_sizes)),
      d_model_(options.d_model),
      ffn_hidden_(options.ffn_hidden) {
  const size_t n = vocab_sizes_.size();
  ARECEL_CHECK(n >= 1);
  Rng rng(options.seed);

  sos_.Init(1, d_model_, rng);
  positions_.Init(n, d_model_, rng);
  embeddings_.resize(n);
  out_weights_.resize(n);
  out_biases_.resize(n);
  for (size_t j = 0; j < n; ++j) {
    ARECEL_CHECK(vocab_sizes_[j] >= 1);
    embeddings_[j].Init(static_cast<size_t>(vocab_sizes_[j]), d_model_, rng);
    out_weights_[j].Init(d_model_, static_cast<size_t>(vocab_sizes_[j]), rng);
    out_biases_[j].Init(1, static_cast<size_t>(vocab_sizes_[j]), rng);
    out_biases_[j].value.Fill(0.0f);
  }
  blocks_.resize(static_cast<size_t>(options.num_blocks));
  for (Block& block : blocks_) {
    block.wq.Init(d_model_, d_model_, rng);
    block.wk.Init(d_model_, d_model_, rng);
    block.wv.Init(d_model_, d_model_, rng);
    block.wo.Init(d_model_, d_model_, rng);
    block.w1.Init(d_model_, ffn_hidden_, rng);
    block.b1.Init(1, ffn_hidden_, rng);
    block.b1.value.Fill(0.0f);
    block.w2.Init(ffn_hidden_, d_model_, rng);
    block.b2.Init(1, d_model_, rng);
    block.b2.value.Fill(0.0f);
  }
}

void AutoregressiveTransformer::Embed(const std::vector<int32_t>& codes,
                                      size_t batch, size_t valid_prefix,
                                      Matrix* h) const {
  const size_t n = vocab_sizes_.size();
  h->Resize(batch * n, d_model_);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t pos = 0; pos < n; ++pos) {
      float* row = h->Row(b * n + pos);
      const float* position_row = positions_.value.Row(pos);
      if (pos == 0) {
        const float* sos_row = sos_.value.Row(0);
        for (size_t d = 0; d < d_model_; ++d)
          row[d] = sos_row[d] + position_row[d];
        continue;
      }
      // Token for position pos is column pos-1's value; beyond the valid
      // prefix it is zero (cannot influence positions <= valid_prefix via
      // the causal mask anyway).
      if (pos > valid_prefix) {
        for (size_t d = 0; d < d_model_; ++d) row[d] = position_row[d];
        continue;
      }
      const int32_t code = codes[b * n + (pos - 1)];
      ARECEL_CHECK(code >= 0 && code < vocab_sizes_[pos - 1]);
      const float* embedding_row =
          embeddings_[pos - 1].value.Row(static_cast<size_t>(code));
      for (size_t d = 0; d < d_model_; ++d)
        row[d] = embedding_row[d] + position_row[d];
    }
  }
}

void AutoregressiveTransformer::AttentionForward(const Block& block,
                                                 const Matrix& input,
                                                 Matrix* out,
                                                 BlockCache* cache) const {
  const size_t n = vocab_sizes_.size();
  const size_t batch = input.rows() / n;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_model_));

  Matrix q, k, v;
  MatMul(input, block.wq.value, &q);
  MatMul(input, block.wk.value, &k);
  MatMul(input, block.wv.value, &v);

  Matrix context(input.rows(), d_model_, 0.0f);
  std::vector<Matrix> attention(cache != nullptr ? batch : 0);
  std::vector<float> scores;
  for (size_t b = 0; b < batch; ++b) {
    Matrix a(n, n, 0.0f);
    for (size_t i = 0; i < n; ++i) {
      // Causal: position i attends to positions 0..i.
      scores.assign(i + 1, 0.0f);
      float max_s = -1e30f;
      const float* q_row = q.Row(b * n + i);
      for (size_t t = 0; t <= i; ++t) {
        const float* k_row = k.Row(b * n + t);
        float s = 0.0f;
        for (size_t d = 0; d < d_model_; ++d) s += q_row[d] * k_row[d];
        s *= scale;
        scores[t] = s;
        max_s = std::max(max_s, s);
      }
      float sum = 0.0f;
      for (size_t t = 0; t <= i; ++t) {
        scores[t] = std::exp(scores[t] - max_s);
        sum += scores[t];
      }
      float* context_row = context.Row(b * n + i);
      for (size_t t = 0; t <= i; ++t) {
        const float weight = scores[t] / sum;
        a.At(i, t) = weight;
        const float* v_row = v.Row(b * n + t);
        for (size_t d = 0; d < d_model_; ++d)
          context_row[d] += weight * v_row[d];
      }
    }
    if (cache != nullptr) attention[b] = std::move(a);
  }

  // Residual: out = input + context * Wo.
  MatMul(context, block.wo.value, out);
  AddInPlace(out, input);

  if (cache != nullptr) {
    cache->q = std::move(q);
    cache->k = std::move(k);
    cache->v = std::move(v);
    cache->attention = std::move(attention);
    cache->context = std::move(context);
  }
}

void AutoregressiveTransformer::ForwardBlocks(
    Matrix* h, std::vector<BlockCache>* caches) const {
  for (size_t l = 0; l < blocks_.size(); ++l) {
    const Block& block = blocks_[l];
    BlockCache* cache = caches != nullptr ? &(*caches)[l] : nullptr;
    if (cache != nullptr) cache->input = *h;

    Matrix after_attention;
    AttentionForward(block, *h, &after_attention, cache);

    // FFN with residual: h = after + relu(after*W1 + b1)*W2 + b2. The
    // dense+bias (+ReLU on the cache-free inference path) is one fused
    // kernel call; training must keep the pre-activation for backward, so
    // it caches `pre` first and applies ReLU in place afterwards.
    Matrix pre;
    if (cache == nullptr && l < packed_w1_.size() && packed_w1_[l].has &&
        ActiveMlKernelBackend() != MlKernelBackend::kReference) {
      PackedDenseForward(after_attention, packed_w1_[l],
                         block.b1.value.Row(0), /*relu=*/true, &pre);
    } else {
      DenseForward(after_attention, block.w1.value, block.b1.value.Row(0),
                   /*relu=*/cache == nullptr, &pre);
    }
    if (cache != nullptr) {
      cache->after_attention = after_attention;
      cache->ffn_pre = pre;
      ReluInPlace(&pre);
    }
    Matrix ffn_out;
    MatMul(pre, block.w2.value, &ffn_out);
    h->Resize(after_attention.rows(), d_model_);
    for (size_t r = 0; r < h->rows(); ++r) {
      float* dst = h->Row(r);
      const float* base = after_attention.Row(r);
      const float* ffn = ffn_out.Row(r);
      const float* bias = block.b2.value.Row(0);
      for (size_t d = 0; d < d_model_; ++d)
        dst[d] = base[d] + ffn[d] + bias[d];
    }
  }
}

float AutoregressiveTransformer::TrainStep(const std::vector<int32_t>& codes,
                                           size_t batch,
                                           float learning_rate) {
  ClearPacked();  // Adam will mutate every packed source matrix.
  const size_t n = vocab_sizes_.size();
  ARECEL_CHECK(codes.size() >= batch * n);

  Matrix h;
  Embed(codes, batch, n, &h);
  const Matrix h0 = h;
  std::vector<BlockCache> caches(blocks_.size());
  ForwardBlocks(&h, &caches);

  // Output heads: per-column softmax cross-entropy at position col.
  double total_nll = 0.0;
  Matrix dh(h.rows(), d_model_, 0.0f);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  Matrix logits;
  std::vector<double> probs;
  for (size_t col = 0; col < n; ++col) {
    // logits = H_col * Wout + b; rows = batch.
    Matrix h_col(batch, d_model_);
    for (size_t b = 0; b < batch; ++b)
      std::copy(h.Row(b * n + col), h.Row(b * n + col) + d_model_,
                h_col.Row(b));
    DenseForward(h_col, out_weights_[col].value,
                 out_biases_[col].value.Row(0), /*relu=*/false, &logits);
    const size_t vocab = static_cast<size_t>(vocab_sizes_[col]);
    Matrix dlogits(batch, vocab, 0.0f);
    for (size_t b = 0; b < batch; ++b) {
      float* row = logits.Row(b);
      float max_v = -1e30f;
      for (size_t t = 0; t < vocab; ++t)
        max_v = std::max(max_v, row[t]);
      probs.resize(vocab);
      double sum = 0.0;
      for (size_t t = 0; t < vocab; ++t) {
        probs[t] = std::exp(static_cast<double>(row[t] - max_v));
        sum += probs[t];
      }
      const int32_t target = codes[b * n + col];
      for (size_t t = 0; t < vocab; ++t) {
        const double p = probs[t] / sum;
        dlogits.At(b, t) = static_cast<float>(p) * inv_batch;
        if (static_cast<int32_t>(t) == target) {
          dlogits.At(b, t) -= inv_batch;
          total_nll -= std::log(std::max(p, 1e-30));
        }
      }
    }
    // Head gradients and dH at position col.
    MatMulATAccumulate(h_col, dlogits, &out_weights_[col].grad);
    std::vector<float> dbias;
    ColumnSums(dlogits, &dbias);
    for (size_t i = 0; i < dbias.size(); ++i)
      out_biases_[col].grad.data()[i] += dbias[i];
    Matrix dh_col;
    MatMulBT(dlogits, out_weights_[col].value, &dh_col);
    for (size_t b = 0; b < batch; ++b) {
      float* dst = dh.Row(b * n + col);
      const float* src = dh_col.Row(b);
      for (size_t d = 0; d < d_model_; ++d) dst[d] += src[d];
    }
  }

  // Backward through the blocks (reverse order).
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_model_));
  for (size_t l = blocks_.size(); l-- > 0;) {
    Block& block = blocks_[l];
    BlockCache& cache = caches[l];

    // --- FFN backward: out = after + relu(pre)*W2 + b2. ---
    Matrix relu = cache.ffn_pre;
    ReluInPlace(&relu);
    std::vector<float> db2;
    ColumnSums(dh, &db2);
    for (size_t i = 0; i < db2.size(); ++i)
      block.b2.grad.data()[i] += db2[i];
    MatMulATAccumulate(relu, dh, &block.w2.grad);
    Matrix dpre;
    MatMulBT(dh, block.w2.value, &dpre);
    for (size_t i = 0; i < dpre.size(); ++i) {
      if (cache.ffn_pre.data()[i] <= 0.0f) dpre.data()[i] = 0.0f;
    }
    std::vector<float> db1;
    ColumnSums(dpre, &db1);
    for (size_t i = 0; i < db1.size(); ++i)
      block.b1.grad.data()[i] += db1[i];
    MatMulATAccumulate(cache.after_attention, dpre, &block.w1.grad);
    // d(after_attention) = dh (residual) + dpre * W1^T.
    Matrix dafter;
    MatMulBT(dpre, block.w1.value, &dafter);
    AddInPlace(&dafter, dh);

    // --- Attention backward: after = input + (A V) Wo. ---
    MatMulATAccumulate(cache.context, dafter, &block.wo.grad);
    Matrix dcontext;
    MatMulBT(dafter, block.wo.value, &dcontext);

    const size_t batch_rows = cache.input.rows();
    const size_t samples = batch_rows / n;
    Matrix dq(batch_rows, d_model_, 0.0f);
    Matrix dk(batch_rows, d_model_, 0.0f);
    Matrix dv(batch_rows, d_model_, 0.0f);
    for (size_t b = 0; b < samples; ++b) {
      const Matrix& a = cache.attention[b];
      for (size_t i = 0; i < n; ++i) {
        const float* dcontext_row = dcontext.Row(b * n + i);
        // dA_row and dV accumulation.
        std::vector<float> da(i + 1, 0.0f);
        for (size_t t = 0; t <= i; ++t) {
          const float* v_row = cache.v.Row(b * n + t);
          float acc = 0.0f;
          for (size_t d = 0; d < d_model_; ++d)
            acc += dcontext_row[d] * v_row[d];
          da[t] = acc;
          float* dv_row = dv.Row(b * n + t);
          const float weight = a.At(i, t);
          for (size_t d = 0; d < d_model_; ++d)
            dv_row[d] += weight * dcontext_row[d];
        }
        // Softmax backward: ds = a .* (da - sum(da .* a)).
        float dot = 0.0f;
        for (size_t t = 0; t <= i; ++t) dot += da[t] * a.At(i, t);
        float* dq_row = dq.Row(b * n + i);
        const float* q_row = cache.q.Row(b * n + i);
        for (size_t t = 0; t <= i; ++t) {
          const float ds = a.At(i, t) * (da[t] - dot) * scale;
          if (ds == 0.0f) continue;
          const float* k_row = cache.k.Row(b * n + t);
          float* dk_row = dk.Row(b * n + t);
          for (size_t d = 0; d < d_model_; ++d) {
            dq_row[d] += ds * k_row[d];
            dk_row[d] += ds * q_row[d];
          }
        }
      }
    }
    // Projection gradients and dInput.
    MatMulATAccumulate(cache.input, dq, &block.wq.grad);
    MatMulATAccumulate(cache.input, dk, &block.wk.grad);
    MatMulATAccumulate(cache.input, dv, &block.wv.grad);
    Matrix dinput_q, dinput_k, dinput_v;
    MatMulBT(dq, block.wq.value, &dinput_q);
    MatMulBT(dk, block.wk.value, &dinput_k);
    MatMulBT(dv, block.wv.value, &dinput_v);
    // dInput = residual (dafter) + Q/K/V paths; becomes dh for block below.
    dh = dafter;
    for (size_t i = 0; i < dh.size(); ++i)
      dh.data()[i] += dinput_q.data()[i] + dinput_k.data()[i] +
                      dinput_v.data()[i];
  }

  // --- Embedding backward. ---
  for (size_t b = 0; b < batch; ++b) {
    for (size_t pos = 0; pos < n; ++pos) {
      const float* dh0_row = dh.Row(b * n + pos);
      float* dpos_row = positions_.grad.Row(pos);
      for (size_t d = 0; d < d_model_; ++d) dpos_row[d] += dh0_row[d];
      if (pos == 0) {
        float* dsos = sos_.grad.Row(0);
        for (size_t d = 0; d < d_model_; ++d) dsos[d] += dh0_row[d];
      } else {
        const int32_t code = codes[b * n + (pos - 1)];
        float* demb = embeddings_[pos - 1].grad.Row(
            static_cast<size_t>(code));
        for (size_t d = 0; d < d_model_; ++d) demb[d] += dh0_row[d];
      }
    }
  }
  (void)h0;

  ++adam_step_;
  sos_.AdamStep(learning_rate, adam_step_);
  positions_.AdamStep(learning_rate, adam_step_);
  for (auto& embedding : embeddings_)
    embedding.AdamStep(learning_rate, adam_step_);
  for (Block& block : blocks_) {
    for (Param* param : {&block.wq, &block.wk, &block.wv, &block.wo,
                         &block.w1, &block.b1, &block.w2, &block.b2})
      param->AdamStep(learning_rate, adam_step_);
  }
  for (size_t j = 0; j < vocab_sizes_.size(); ++j) {
    out_weights_[j].AdamStep(learning_rate, adam_step_);
    out_biases_[j].AdamStep(learning_rate, adam_step_);
  }
  return static_cast<float>(total_nll / static_cast<double>(batch));
}

void AutoregressiveTransformer::ColumnLogits(const std::vector<int32_t>& codes,
                                             size_t batch, size_t col,
                                             Matrix* logits) const {
  const size_t n = vocab_sizes_.size();
  Matrix h;
  Embed(codes, batch, col, &h);
  ForwardBlocks(&h, nullptr);
  Matrix h_col(batch, d_model_);
  for (size_t b = 0; b < batch; ++b)
    std::copy(h.Row(b * n + col), h.Row(b * n + col) + d_model_,
              h_col.Row(b));
  if (col < packed_out_.size() && packed_out_[col].has &&
      ActiveMlKernelBackend() != MlKernelBackend::kReference) {
    PackedDenseForward(h_col, packed_out_[col], out_biases_[col].value.Row(0),
                       /*relu=*/false, logits);
    return;
  }
  DenseForward(h_col, out_weights_[col].value, out_biases_[col].value.Row(0),
               /*relu=*/false, logits);
}

void AutoregressiveTransformer::PackForInference() {
  packed_out_.resize(out_weights_.size());
  for (size_t j = 0; j < out_weights_.size(); ++j)
    packed_out_[j].Build(out_weights_[j].value);
  packed_w1_.resize(blocks_.size());
  for (size_t l = 0; l < blocks_.size(); ++l)
    packed_w1_[l].Build(blocks_[l].w1.value);
}

void AutoregressiveTransformer::ClearPacked() {
  packed_out_.clear();
  packed_w1_.clear();
}

size_t AutoregressiveTransformer::ParamCount() const {
  size_t total = sos_.value.size() + positions_.value.size();
  for (const auto& embedding : embeddings_) total += embedding.value.size();
  for (const Block& block : blocks_) {
    total += block.wq.value.size() + block.wk.value.size() +
             block.wv.value.size() + block.wo.value.size() +
             block.w1.value.size() + block.b1.value.size() +
             block.w2.value.size() + block.b2.value.size();
  }
  for (size_t j = 0; j < vocab_sizes_.size(); ++j)
    total += out_weights_[j].value.size() + out_biases_[j].value.size();
  return total;
}

namespace {

void WriteParam(const Matrix& value, ByteWriter* writer) {
  writer->U64(value.rows());
  writer->U64(value.cols());
  writer->Floats(
      std::vector<float>(value.data(), value.data() + value.size()));
}

bool ReadParam(ByteReader* reader, Matrix* value) {
  uint64_t rows = 0, cols = 0;
  std::vector<float> data;
  if (!reader->U64(&rows) || !reader->U64(&cols) || !reader->Floats(&data))
    return false;
  if (rows != value->rows() || cols != value->cols() ||
      data.size() != value->size()) {
    return false;
  }
  std::copy(data.begin(), data.end(), value->data());
  return true;
}

}  // namespace

void AutoregressiveTransformer::Serialize(ByteWriter* writer) const {
  // Tag value 2 = Transformer backbone; must agree with the deserializing
  // factory in ml/autoregressive.cc.
  writer->U32(2);
  writer->Ints(vocab_sizes_);
  writer->U64(d_model_);
  writer->U64(ffn_hidden_);
  writer->U32(static_cast<uint32_t>(blocks_.size()));
  WriteParam(sos_.value, writer);
  WriteParam(positions_.value, writer);
  for (const Param& embedding : embeddings_) WriteParam(embedding.value, writer);
  for (const Block& block : blocks_) {
    for (const Param* p : {&block.wq, &block.wk, &block.wv, &block.wo,
                           &block.w1, &block.b1, &block.w2, &block.b2})
      WriteParam(p->value, writer);
  }
  for (const Param& w : out_weights_) WriteParam(w.value, writer);
  for (const Param& b : out_biases_) WriteParam(b.value, writer);
}

bool AutoregressiveTransformer::DeserializeParams(ByteReader* reader) {
  ClearPacked();
  if (!ReadParam(reader, &sos_.value) || !ReadParam(reader, &positions_.value))
    return false;
  for (Param& embedding : embeddings_)
    if (!ReadParam(reader, &embedding.value)) return false;
  for (Block& block : blocks_) {
    for (Param* p : {&block.wq, &block.wk, &block.wv, &block.wo, &block.w1,
                     &block.b1, &block.w2, &block.b2})
      if (!ReadParam(reader, &p->value)) return false;
  }
  for (Param& w : out_weights_)
    if (!ReadParam(reader, &w.value)) return false;
  for (Param& b : out_biases_)
    if (!ReadParam(reader, &b.value)) return false;
  return true;
}

}  // namespace arecel
