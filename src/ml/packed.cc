#include "ml/packed.h"

#include <algorithm>
#include <cmath>

#include "ml/kernels_simd.h"
#include "util/check.h"

namespace arecel {

void PackedMatrix::Pack(const Matrix& b) {
  rows_ = b.rows();
  cols_ = b.cols();
  padded_cols_ =
      (cols_ + kPackTileCols - 1) / kPackTileCols * kPackTileCols;
  data_.assign(padded_cols_ * rows_, 0.0f);
  for (size_t t = 0; t * kPackTileCols < cols_; ++t) {
    const size_t jbase = t * kPackTileCols;
    const size_t width = std::min(kPackTileCols, cols_ - jbase);
    float* tp = data_.data() + t * kPackTileCols * rows_;
    for (size_t kk = 0; kk < rows_; ++kk) {
      const float* src = b.Row(kk) + jbase;
      float* dst = tp + kk * kPackTileCols;
      for (size_t c = 0; c < width; ++c) dst[c] = src[c];
    }
  }
}

void QuantizedDense::Quantize(const Matrix& b) {
  rows_ = b.rows();
  cols_ = b.cols();
  padded_rows_ = (rows_ + kQuantKGroup - 1) / kQuantKGroup * kQuantKGroup;
  padded_cols_ =
      (cols_ + kPackTileCols - 1) / kPackTileCols * kPackTileCols;
  data_.assign(padded_cols_ * padded_rows_, 0);
  scales_.assign(padded_cols_, 1.0f);
  col_sums_.assign(padded_cols_, 0);
  for (size_t j = 0; j < cols_; ++j) {
    float max_abs = 0.0f;
    for (size_t kk = 0; kk < rows_; ++kk)
      max_abs = std::max(max_abs, std::abs(b.At(kk, j)));
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    scales_[j] = scale;
    const size_t tile = j / kPackTileCols;
    const size_t c = j % kPackTileCols;
    int8_t* tp = data_.data() + tile * kPackTileCols * padded_rows_;
    int32_t sum = 0;
    for (size_t kk = 0; kk < rows_; ++kk) {
      long q = std::lrintf(b.At(kk, j) / scale);
      q = std::clamp<long>(q, -127, 127);
      sum += static_cast<int32_t>(q);
      // 64-byte group layout: group kg holds columns c in 0..15 as 4
      // consecutive k bytes each — the operand shape of maddubs products.
      const size_t kg = kk / kQuantKGroup;
      tp[kg * kPackTileCols * kQuantKGroup + c * kQuantKGroup +
         kk % kQuantKGroup] = static_cast<int8_t>(q);
    }
    col_sums_[j] = sum;
  }
}

namespace mlk {

void QuantizeRowsPortable(const float* a, size_t lda, size_t k, uint8_t* aq,
                          size_t lda_q, float* a_scales, int32_t* a_zps,
                          size_t i_lo, size_t i_hi) {
  for (size_t i = i_lo; i < i_hi; ++i) {
    const float* row = a + i * lda;
    // Include zero in the range (standard affine-quant practice): the zero
    // point then represents 0 exactly for non-negative post-ReLU rows, and
    // constant rows quantize losslessly to one code.
    float min_v = 0.0f, max_v = 0.0f;
    for (size_t kk = 0; kk < k; ++kk) {
      min_v = std::min(min_v, row[kk]);
      max_v = std::max(max_v, row[kk]);
    }
    const float range = max_v - min_v;
    // 7-bit codes ([0,127]) keep u8*s8 pair sums below the int16 saturation
    // bound of maddubs: 127*127*2 = 32258 < 32767.
    const float scale = range > 0.0f ? range / 127.0f : 1.0f;
    const int32_t zp = static_cast<int32_t>(
        std::clamp<long>(std::lrintf(-min_v / scale), 0, 127));
    a_scales[i] = scale;
    a_zps[i] = zp;
    uint8_t* dst = aq + i * lda_q;
    // Hot loop: multiply by the reciprocal scale, add the zero point with
    // the +0.5 rounding bias pre-folded in (zp + 0.5 is exact — zp is a
    // small integer), clamp, truncate. Clamping to [0, 127.5] before the
    // truncate is equivalent to clamping codes to [0, 127]: anything below
    // 0 truncates to 0, anything at the cap truncates to 127. Keeping the
    // clamp as the last float op is what lets GCC auto-vectorize this at
    // the baseline ISA (a post-clamp `+ 0.5f` defeats its if-conversion).
    // The SIMD tiers replicate this sequence lane-wise with intrinsics
    // (mul, add — never fused — then max/min/cvtt), so codes match this
    // implementation bit for bit (ml/kernels_simd.h).
    const float inv = 1.0f / scale;
    const float zpf_half = static_cast<float>(zp) + 0.5f;
    for (size_t kk = 0; kk < k; ++kk) {
      const float q =
          std::min(std::max(row[kk] * inv + zpf_half, 0.0f), 127.5f);
      dst[kk] = static_cast<uint8_t>(static_cast<int32_t>(q));
    }
    for (size_t kk = k; kk < lda_q; ++kk) dst[kk] = 0;
  }
}

}  // namespace mlk

void QuantizeActivations(const Matrix& input, size_t padded_rows,
                         std::vector<uint8_t>* quantized,
                         std::vector<float>* scales,
                         std::vector<int32_t>* zero_points) {
  const size_t m = input.rows(), k = input.cols();
  ARECEL_CHECK(padded_rows >= k);
  // resize (not assign): callers reuse these buffers across forward calls,
  // and quantize_rows overwrites every byte it is responsible for (payload
  // codes and the pad tail of each row alike).
  quantized->resize(m * padded_rows);
  scales->resize(m);
  zero_points->resize(m);
  mlk::ActiveKernelOps().quantize_rows(input.data(), input.cols(), k,
                                       quantized->data(), padded_rows,
                                       scales->data(), zero_points->data(),
                                       0, m);
}

}  // namespace arecel
