#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace arecel {

namespace {

double MeanOf(const std::vector<double>& targets,
              const std::vector<int>& rows) {
  double sum = 0.0;
  for (int r : rows) sum += targets[static_cast<size_t>(r)];
  return rows.empty() ? 0.0 : sum / static_cast<double>(rows.size());
}

}  // namespace

int RegressionTree::Build(const std::vector<std::vector<float>>& features,
                          const std::vector<double>& targets,
                          std::vector<int>& rows, int depth,
                          const GbdtOptions& options) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].value = MeanOf(targets, rows);

  if (depth >= options.max_depth ||
      rows.size() < 2 * static_cast<size_t>(options.min_leaf_size)) {
    return node_index;
  }

  const size_t num_features = features[static_cast<size_t>(rows[0])].size();
  // Total sum/cnt for variance-reduction bookkeeping.
  double total_sum = 0.0;
  for (int r : rows) total_sum += targets[static_cast<size_t>(r)];
  const double n = static_cast<double>(rows.size());

  double best_gain = 1e-12;
  int best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<int> order = rows;
  for (size_t f = 0; f < num_features; ++f) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return features[static_cast<size_t>(a)][f] <
             features[static_cast<size_t>(b)][f];
    });
    double left_sum = 0.0;
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      const int row = order[i];
      left_sum += targets[static_cast<size_t>(row)];
      const size_t left_count = i + 1;
      if (left_count < static_cast<size_t>(options.min_leaf_size)) continue;
      if (order.size() - left_count <
          static_cast<size_t>(options.min_leaf_size))
        break;
      const float v = features[static_cast<size_t>(row)][f];
      const float v_next = features[static_cast<size_t>(order[i + 1])][f];
      if (v == v_next) continue;  // cannot split between equal values.
      const double right_sum = total_sum - left_sum;
      const double right_count = n - static_cast<double>(left_count);
      // SSE reduction = left_sum^2/|L| + right_sum^2/|R| - total^2/n.
      const double gain = left_sum * left_sum /
                              static_cast<double>(left_count) +
                          right_sum * right_sum / right_count -
                          total_sum * total_sum / n;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (v + v_next) / 2.0f;
      }
    }
  }

  if (best_feature < 0) return node_index;

  std::vector<int> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (int r : rows) {
    if (features[static_cast<size_t>(r)][static_cast<size_t>(best_feature)] <=
        best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  ARECEL_CHECK(!left_rows.empty() && !right_rows.empty());
  rows.clear();
  rows.shrink_to_fit();

  const int left = Build(features, targets, left_rows, depth + 1, options);
  const int right = Build(features, targets, right_rows, depth + 1, options);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

void RegressionTree::Fit(const std::vector<std::vector<float>>& features,
                         const std::vector<double>& targets,
                         const GbdtOptions& options) {
  ARECEL_CHECK(features.size() == targets.size());
  ARECEL_CHECK(!features.empty());
  nodes_.clear();
  std::vector<int> rows(features.size());
  std::iota(rows.begin(), rows.end(), 0);
  Build(features, targets, rows, 0, options);
}

double RegressionTree::Predict(const std::vector<float>& x) const {
  ARECEL_CHECK(!nodes_.empty());
  int index = 0;
  while (nodes_[static_cast<size_t>(index)].feature >= 0) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    index = x[static_cast<size_t>(node.feature)] <= node.threshold
                ? node.left
                : node.right;
  }
  return nodes_[static_cast<size_t>(index)].value;
}

void RegressionTree::Serialize(ByteWriter* writer) const {
  writer->U64(nodes_.size());
  for (const Node& node : nodes_) {
    writer->I32(node.feature);
    writer->F32(node.threshold);
    writer->I32(node.left);
    writer->I32(node.right);
    writer->F64(node.value);
  }
}

bool RegressionTree::Deserialize(ByteReader* reader) {
  uint64_t count = 0;
  if (!reader->U64(&count) || count > (1u << 26)) return false;
  nodes_.resize(count);
  for (Node& node : nodes_) {
    if (!reader->I32(&node.feature) || !reader->F32(&node.threshold) ||
        !reader->I32(&node.left) || !reader->I32(&node.right) ||
        !reader->F64(&node.value)) {
      return false;
    }
  }
  return true;
}

void Gbdt::Train(const std::vector<std::vector<float>>& features,
                 const std::vector<double>& targets,
                 const GbdtOptions& options) {
  ARECEL_CHECK(features.size() == targets.size());
  ARECEL_CHECK(!features.empty());
  trees_.clear();
  learning_rate_ = options.learning_rate;
  base_prediction_ =
      std::accumulate(targets.begin(), targets.end(), 0.0) /
      static_cast<double>(targets.size());

  std::vector<double> residuals(targets.size());
  std::vector<double> predictions(targets.size(), base_prediction_);
  for (int t = 0; t < options.num_trees; ++t) {
    for (size_t i = 0; i < targets.size(); ++i)
      residuals[i] = targets[i] - predictions[i];
    RegressionTree tree;
    tree.Fit(features, residuals, options);
    for (size_t i = 0; i < targets.size(); ++i)
      predictions[i] += learning_rate_ * tree.Predict(features[i]);
    trees_.push_back(std::move(tree));
  }
}

double Gbdt::Predict(const std::vector<float>& x) const {
  double prediction = base_prediction_;
  for (const RegressionTree& tree : trees_)
    prediction += learning_rate_ * tree.Predict(x);
  return prediction;
}

void Gbdt::Serialize(ByteWriter* writer) const {
  writer->F64(base_prediction_);
  writer->F64(learning_rate_);
  writer->U64(trees_.size());
  for (const RegressionTree& tree : trees_) tree.Serialize(writer);
}

bool Gbdt::Deserialize(ByteReader* reader) {
  uint64_t count = 0;
  if (!reader->F64(&base_prediction_) || !reader->F64(&learning_rate_) ||
      !reader->U64(&count) || count > (1u << 20)) {
    return false;
  }
  trees_.assign(count, RegressionTree());
  for (RegressionTree& tree : trees_) {
    if (!tree.Deserialize(reader)) return false;
  }
  return true;
}

size_t Gbdt::SizeBytes() const {
  size_t total = 0;
  for (const RegressionTree& tree : trees_) total += tree.SizeBytes();
  return total;
}

}  // namespace arecel
