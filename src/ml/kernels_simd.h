#ifndef ARECEL_ML_KERNELS_SIMD_H_
#define ARECEL_ML_KERNELS_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace arecel {
namespace mlk {

// Raw-pointer single-threaded kernel table behind the `fast` / `quant` ML
// backends (ml/kernels.h). Three implementations exist: a portable one
// (plain loops the compiler auto-vectorizes at the baseline ISA), an
// AVX2+FMA one, and an AVX-512 one (F+BW), each compiled in its own
// translation unit with its own ISA flags and selected at runtime via
// CPUID (override: ARECEL_ML_SIMD). All fp32 kernels operate on row-major
// buffers with an explicit leading dimension (row stride in floats), so
// callers can slice column windows out of wider matrices (e.g. one
// column's logit segment of the MADE output layer).
//
// Row-range signatures (i_lo/i_hi, k_lo/k_hi) let the dispatch layer in
// ml/kernels.cc parallelize over disjoint chunks without the kernels
// knowing about the thread pool.
//
// Numeric contract across tiers: dense_rows, accum_outer,
// packed_dense_rows keep one FMA chain per output element in k order —
// lane-independent arithmetic, so the AVX2 and AVX-512 tiers produce
// bit-identical results (vector width only changes how lanes are grouped).
// dot_rows reduces across lanes (hadd tree), so the AVX-512 tier reuses
// the AVX2 algorithm verbatim to keep the fast backend's numerics stable
// under dispatch. quant_dense_rows accumulates in exact int32, and every
// tier's dequantization epilogue performs QuantEpilogue's float sequence
// (scalar or lane-wise), so it is bit-identical across all tiers.
struct KernelOps {
  // out[i][j] = act(sum_k a[i][k] * b[k][j] + bias[j]) for i in
  // [i_lo, i_hi), j in [0, n). `bias` may be null (treated as zero);
  // `relu` clamps negatives. Rows of `out` are fully overwritten, so no
  // pre-zeroing is needed; k == 0 writes act(bias).
  void (*dense_rows)(const float* a, size_t lda, const float* b, size_t ldb,
                     const float* bias, bool relu, float* out, size_t ldo,
                     size_t i_lo, size_t i_hi, size_t k, size_t n);

  // out[i][j] = dot(a row i, b row j) over k — i.e. out = a * b^T for row
  // ranges of a. Used by MatMulBT (dX = dz * W^T in dense backward).
  void (*dot_rows)(const float* a, size_t lda, const float* b, size_t ldb,
                   float* out, size_t ldo, size_t i_lo, size_t i_hi,
                   size_t k, size_t n);

  // out[i][j] += sum over kk in [k_lo, k_hi) of a[kk][i] * b[kk][j] —
  // i.e. out += a^T * b restricted to a shared-dimension range.
  // Accumulates (does NOT zero out), so the caller can target gradient
  // buffers or per-worker partials directly.
  void (*accum_outer)(const float* a, size_t lda, const float* b, size_t ldb,
                      float* out, size_t ldo, size_t k_lo, size_t k_hi,
                      size_t m, size_t n);

  // Packed-B dense forward (ml/packed.h layout): `bp` is the tile-packed
  // buffer of the FULL (k x n) weight matrix, n padded to a multiple of 16.
  // Computes out rows [i_lo, i_hi) for ABSOLUTE weight columns
  // [col_begin, col_begin + cols), written at out column 0. `bias` points
  // at the full unpadded bias vector (length n, may be null); `n` is the
  // unpadded column count (bias loads near n must not read past it).
  void (*packed_dense_rows)(const float* a, size_t lda, const float* bp,
                            size_t k, size_t n, const float* bias, bool relu,
                            float* out, size_t ldo, size_t i_lo, size_t i_hi,
                            size_t col_begin, size_t cols);

  // Int8 dense forward over pre-quantized operands (ml/packed.h layout).
  // `aq` holds per-row u8 activations ([0,127], lda_q = k_pad bytes per
  // row, pad bytes zero) with per-row scales / zero points; `bq` is the
  // k-grouped tile-packed int8 weight buffer with per-column scales and
  // column sums (padded to n_pad columns). Same column-window semantics as
  // packed_dense_rows; the dequant + bias + relu epilogue runs per column.
  void (*quant_dense_rows)(const uint8_t* aq, size_t lda_q,
                           const float* a_scales, const int32_t* a_zps,
                           const int8_t* bq, size_t k_pad, size_t n_pad,
                           const float* w_scales, const int32_t* w_col_sums,
                           const float* bias, bool relu, float* out,
                           size_t ldo, size_t i_lo, size_t i_hi,
                           size_t col_begin, size_t cols);

  // Per-row u8 activation quantization (ml/packed.h scheme) for rows
  // [i_lo, i_hi) of `a`: k payload codes plus zeroed pad bytes up to lda_q
  // per row into `aq`, one scale / zero point per row. Every tier performs
  // the identical elementwise float sequence (min/max range including 0,
  // reciprocal-scale multiply, separate zero-point add, clamp, truncate) —
  // fp min/max reductions are exactly associative for the finite values
  // activations take, and lane width never changes per-element rounding, so
  // codes are bit-identical across tiers. This is the serving-path hot loop
  // that amortizes worst on narrow column slices (MADE logit segments), so
  // the SIMD tiers matter: quantization is O(m*k) against an int8 GEMM of
  // O(m*k*n/width).
  void (*quantize_rows)(const float* a, size_t lda, size_t k, uint8_t* aq,
                        size_t lda_q, float* a_scales, int32_t* a_zps,
                        size_t i_lo, size_t i_hi);

  // Human-readable ISA tag ("avx512", "avx2-fma", "portable").
  const char* name;
};

// Dequantization epilogue shared by every quant_dense_rows tier: the int32
// accumulator is exact, so the float sequence here — one multiply by the
// pre-multiplied scale, then one separate add of bias — fully determines
// the output. The SIMD tiers vectorize this exact sequence lane-wise
// (cvtepi32, mul, add; never a fused multiply-add), which keeps quantized
// outputs bit-identical across portable / AVX2 / AVX-512. Note that
// splitting mul and add into two statements (or two intrinsics) does NOT
// by itself stop GCC's default -ffp-contract=fast from fusing them — it
// contracts across statements and across _mm*_mul/add intrinsics alike —
// so the implementations place an explicit register barrier between the
// two operations (see below and the SIMD TUs).
inline float QuantEpilogue(int32_t acc, int32_t zp, int32_t col_sum,
                           float a_scale, float w_scale, float bias,
                           bool relu) {
  float dq = static_cast<float>(acc - zp * col_sum) * (a_scale * w_scale);
#if defined(__FMA__) || defined(__AVX512F__)
  // GCC's default -ffp-contract=fast fuses `dq + bias` into an FMA in any
  // TU whose ISA has one — the AVX2/AVX-512 kernel TUs' edge-tile paths
  // inline this function under -mfma/-mavx512f — which would change the
  // last-bit rounding versus the portable tier and break the cross-tier
  // bit-identity contract. Forcing dq through a register makes the
  // multiply's rounding observable, so contraction across it is illegal.
  // Compiled out at the baseline ISA, where no FMA instruction exists and
  // the plain expression can auto-vectorize freely.
  asm("" : "+x"(dq));
#endif
  const float v = dq + bias;
  return (relu && v < 0.0f) ? 0.0f : v;
}

// The baseline-ISA quantize_rows implementation. Lives in ml/packed.cc,
// which is compiled with fp-min/max reassociation enabled so the range
// reduction auto-vectorizes even at the baseline ISA; the portable kernel
// table points here, and the SIMD tiers replicate its exact arithmetic
// with intrinsics.
void QuantizeRowsPortable(const float* a, size_t lda, size_t k, uint8_t* aq,
                          size_t lda_q, float* a_scales, int32_t* a_zps,
                          size_t i_lo, size_t i_hi);

// The AVX2+FMA table, or nullptr when the translation unit was not built
// with AVX2 support (non-x86 target or compiler without -mavx2).
const KernelOps* Avx2KernelOps();

// The AVX-512 (F+BW) table, or nullptr when unavailable at build time.
const KernelOps* Avx512KernelOps();

// The portable fallback; always available.
const KernelOps& PortableKernelOps();

// The runtime-resolved tier (CPUID + ARECEL_ML_SIMD override; see
// ml/kernels.h). Shared by ml/kernels.cc and ml/packed.cc.
const KernelOps& ActiveKernelOps();

}  // namespace mlk
}  // namespace arecel

#endif  // ARECEL_ML_KERNELS_SIMD_H_
