#ifndef ARECEL_ML_KERNELS_SIMD_H_
#define ARECEL_ML_KERNELS_SIMD_H_

#include <cstddef>

namespace arecel {
namespace mlk {

// Raw-pointer single-threaded kernel table behind the `fast` ML backend
// (ml/kernels.h). Two implementations exist: a portable one (plain loops
// the compiler auto-vectorizes at the baseline ISA) and an AVX2+FMA one
// compiled in its own translation unit with -mavx2 -mfma and selected at
// runtime via CPUID. All kernels operate on row-major buffers with an
// explicit leading dimension (row stride in floats), so callers can slice
// column windows out of wider matrices (e.g. one column's logit segment of
// the MADE output layer).
//
// Row-range signatures (i_lo/i_hi, k_lo/k_hi) let the dispatch layer in
// ml/kernels.cc parallelize over disjoint chunks without the kernels
// knowing about the thread pool.
struct KernelOps {
  // out[i][j] = act(sum_k a[i][k] * b[k][j] + bias[j]) for i in
  // [i_lo, i_hi), j in [0, n). `bias` may be null (treated as zero);
  // `relu` clamps negatives. Rows of `out` are fully overwritten, so no
  // pre-zeroing is needed; k == 0 writes act(bias).
  void (*dense_rows)(const float* a, size_t lda, const float* b, size_t ldb,
                     const float* bias, bool relu, float* out, size_t ldo,
                     size_t i_lo, size_t i_hi, size_t k, size_t n);

  // out[i][j] = dot(a row i, b row j) over k — i.e. out = a * b^T for row
  // ranges of a. Used by MatMulBT (dX = dz * W^T in dense backward).
  void (*dot_rows)(const float* a, size_t lda, const float* b, size_t ldb,
                   float* out, size_t ldo, size_t i_lo, size_t i_hi,
                   size_t k, size_t n);

  // out[i][j] += sum over kk in [k_lo, k_hi) of a[kk][i] * b[kk][j] —
  // i.e. out += a^T * b restricted to a shared-dimension range.
  // Accumulates (does NOT zero out), so the caller can target gradient
  // buffers or per-worker partials directly.
  void (*accum_outer)(const float* a, size_t lda, const float* b, size_t ldb,
                      float* out, size_t ldo, size_t k_lo, size_t k_hi,
                      size_t m, size_t n);

  // Human-readable ISA tag ("avx2-fma", "portable") for bench output.
  const char* name;
};

// The AVX2+FMA table, or nullptr when the translation unit was not built
// with AVX2 support (non-x86 target or compiler without -mavx2).
const KernelOps* Avx2KernelOps();

// The portable fallback; always available.
const KernelOps& PortableKernelOps();

}  // namespace mlk
}  // namespace arecel

#endif  // ARECEL_ML_KERNELS_SIMD_H_
