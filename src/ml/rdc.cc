#include "ml/rdc.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"
#include "util/stats.h"

namespace arecel {

namespace {

using Mat = std::vector<std::vector<double>>;

Mat MatProd(const Mat& a, const Mat& b) {
  const size_t m = a.size(), k = b.size(), n = b[0].size();
  Mat out(m, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < m; ++i)
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = a[i][kk];
      if (av == 0.0) continue;
      for (size_t j = 0; j < n; ++j) out[i][j] += av * b[kk][j];
    }
  return out;
}

// Gauss-Jordan inverse for tiny symmetric positive-definite matrices
// (ridge regularization guarantees invertibility).
Mat Invert(Mat a) {
  const size_t n = a.size();
  Mat inv(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) inv[i][i] = 1.0;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(inv[col], inv[pivot]);
    const double diag = a[col][col];
    ARECEL_CHECK_MSG(std::fabs(diag) > 1e-12, "singular matrix in RDC");
    for (size_t j = 0; j < n; ++j) {
      a[col][j] /= diag;
      inv[col][j] /= diag;
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a[r][col];
      if (factor == 0.0) continue;
      for (size_t j = 0; j < n; ++j) {
        a[r][j] -= factor * a[col][j];
        inv[r][j] -= factor * inv[col][j];
      }
    }
  }
  return inv;
}

// Covariance of two centered feature matrices: Cab = A^T B / n.
Mat Covariance(const std::vector<std::vector<double>>& a,
               const std::vector<std::vector<double>>& b) {
  const size_t n = a.size(), p = a[0].size(), q = b[0].size();
  Mat cov(p, std::vector<double>(q, 0.0));
  for (size_t r = 0; r < n; ++r)
    for (size_t i = 0; i < p; ++i) {
      const double av = a[r][i];
      for (size_t j = 0; j < q; ++j) cov[i][j] += av * b[r][j];
    }
  for (auto& row : cov)
    for (double& v : row) v /= static_cast<double>(n);
  return cov;
}

void CenterColumns(std::vector<std::vector<double>>* m) {
  if (m->empty()) return;
  const size_t n = m->size(), p = (*m)[0].size();
  for (size_t j = 0; j < p; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += (*m)[i][j];
    mean /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) (*m)[i][j] -= mean;
  }
}

}  // namespace

double LargestCanonicalCorrelation(
    const std::vector<std::vector<double>>& x_features,
    const std::vector<std::vector<double>>& y_features, uint64_t seed) {
  ARECEL_CHECK(x_features.size() == y_features.size());
  ARECEL_CHECK(!x_features.empty());
  std::vector<std::vector<double>> x = x_features;
  std::vector<std::vector<double>> y = y_features;
  CenterColumns(&x);
  CenterColumns(&y);

  const size_t p = x[0].size(), q = y[0].size();
  constexpr double kRidge = 1e-4;
  Mat cxx = Covariance(x, x);
  Mat cyy = Covariance(y, y);
  for (size_t i = 0; i < p; ++i) cxx[i][i] += kRidge;
  for (size_t i = 0; i < q; ++i) cyy[i][i] += kRidge;
  const Mat cxy = Covariance(x, y);
  Mat cyx(q, std::vector<double>(p));
  for (size_t i = 0; i < p; ++i)
    for (size_t j = 0; j < q; ++j) cyx[j][i] = cxy[i][j];

  // M = Cxx^-1 Cxy Cyy^-1 Cyx; largest eigenvalue = rho^2.
  const Mat m =
      MatProd(MatProd(Invert(cxx), cxy), MatProd(Invert(cyy), cyx));

  // Power iteration.
  Rng rng(seed);
  std::vector<double> v(p);
  for (double& vi : v) vi = rng.Uniform(-1.0, 1.0);
  double eigen = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<double> next(p, 0.0);
    for (size_t i = 0; i < p; ++i)
      for (size_t j = 0; j < p; ++j) next[i] += m[i][j] * v[j];
    double norm = 0.0;
    for (double nv : next) norm += nv * nv;
    norm = std::sqrt(norm);
    if (norm < 1e-15) return 0.0;
    for (double& nv : next) nv /= norm;
    eigen = norm;
    v = next;
  }
  return std::sqrt(std::clamp(eigen, 0.0, 1.0));
}

double Rdc(const std::vector<double>& x, const std::vector<double>& y,
           int num_features, double sigma, uint64_t seed) {
  ARECEL_CHECK(x.size() == y.size());
  ARECEL_CHECK(x.size() >= 2);
  const size_t n = x.size();

  // 1. Copula transform.
  std::vector<double> ux = Ranks(x);
  std::vector<double> uy = Ranks(y);
  for (double& v : ux) v /= static_cast<double>(n);
  for (double& v : uy) v /= static_cast<double>(n);

  // 2. Random sine features (plus the raw copula value for stability).
  Rng rng(seed);
  const size_t k = static_cast<size_t>(num_features);
  std::vector<double> wx(k), bx(k), wy(k), by(k);
  for (size_t f = 0; f < k; ++f) {
    wx[f] = rng.Gaussian() * sigma;
    bx[f] = rng.Uniform(0.0, 2.0 * M_PI);
    wy[f] = rng.Gaussian() * sigma;
    by[f] = rng.Uniform(0.0, 2.0 * M_PI);
  }
  std::vector<std::vector<double>> fx(n, std::vector<double>(k + 1));
  std::vector<std::vector<double>> fy(n, std::vector<double>(k + 1));
  for (size_t i = 0; i < n; ++i) {
    fx[i][0] = ux[i];
    fy[i][0] = uy[i];
    for (size_t f = 0; f < k; ++f) {
      fx[i][f + 1] = std::sin(wx[f] * ux[i] * 2.0 * M_PI + bx[f]);
      fy[i][f + 1] = std::sin(wy[f] * uy[i] * 2.0 * M_PI + by[f]);
    }
  }

  // 3. Largest canonical correlation.
  return LargestCanonicalCorrelation(fx, fy, seed + 1);
}

}  // namespace arecel
