#include "ml/histogram.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace arecel {

void EquiDepthHistogram::Build(const std::vector<double>& values,
                               int max_buckets) {
  boundaries_.clear();
  if (values.empty()) return;
  ARECEL_CHECK(max_buckets >= 1);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  const size_t buckets = std::min<size_t>(static_cast<size_t>(max_buckets), n);
  boundaries_.reserve(buckets + 1);
  boundaries_.push_back(sorted.front());
  for (size_t b = 1; b < buckets; ++b) {
    const size_t idx = b * n / buckets;
    boundaries_.push_back(sorted[idx]);
  }
  boundaries_.push_back(sorted.back());
  // Collapse duplicate boundaries from heavy values; buckets keep equal
  // *intended* mass so we must remember how many original buckets each
  // surviving boundary pair spans. We re-expand instead: keep duplicates
  // (zero-width buckets are fine — EstimateRange treats them as point mass).
}

double EquiDepthHistogram::EstimateRange(double lo, double hi) const {
  if (boundaries_.empty() || lo > hi) return 0.0;
  const size_t buckets = boundaries_.size() - 1;
  const double per_bucket = 1.0 / static_cast<double>(buckets);
  double total = 0.0;
  for (size_t b = 0; b < buckets; ++b) {
    const double b_lo = boundaries_[b];
    const double b_hi = boundaries_[b + 1];
    if (hi < b_lo || lo > b_hi) continue;
    if (b_hi == b_lo) {
      // Zero-width bucket: a run of identical values; counts fully if the
      // point is inside the query range.
      if (lo <= b_lo && b_lo <= hi) total += per_bucket;
      continue;
    }
    const double clipped_lo = std::max(lo, b_lo);
    const double clipped_hi = std::min(hi, b_hi);
    const double frac = (clipped_hi - clipped_lo) / (b_hi - b_lo);
    total += per_bucket * std::clamp(frac, 0.0, 1.0);
  }
  return std::clamp(total, 0.0, 1.0);
}

void EquiDepthHistogram::Serialize(ByteWriter* writer) const {
  writer->Doubles(boundaries_);
}

bool EquiDepthHistogram::Deserialize(ByteReader* reader) {
  return reader->Doubles(&boundaries_);
}

void ColumnStats::Build(const std::vector<double>& values,
                        const Options& options) {
  mcv_values_.clear();
  mcv_freqs_.clear();
  mcv_total_freq_ = 0.0;
  row_count_ = values.size();
  if (values.empty()) {
    distinct_count_ = 0;
    histogram_mass_ = 0.0;
    return;
  }

  std::unordered_map<double, size_t> counts;
  counts.reserve(values.size() / 4);
  for (double v : values) ++counts[v];
  distinct_count_ = counts.size();

  // Pick the top-k most common values (Postgres keeps those whose frequency
  // is above average; top-k by count is the same spirit and simpler).
  std::vector<std::pair<double, size_t>> freq(counts.begin(), counts.end());
  const size_t k =
      std::min<size_t>(static_cast<size_t>(options.num_mcvs), freq.size());
  std::partial_sort(freq.begin(), freq.begin() + static_cast<long>(k),
                    freq.end(), [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
  freq.resize(k);
  std::sort(freq.begin(), freq.end());
  for (const auto& [v, c] : freq) {
    mcv_values_.push_back(v);
    mcv_freqs_.push_back(static_cast<double>(c) /
                         static_cast<double>(row_count_));
    mcv_total_freq_ += mcv_freqs_.back();
  }

  // Histogram over the rows not covered by the MCV list.
  std::vector<double> rest;
  rest.reserve(values.size());
  for (double v : values) {
    if (!std::binary_search(mcv_values_.begin(), mcv_values_.end(), v))
      rest.push_back(v);
  }
  histogram_mass_ = static_cast<double>(rest.size()) /
                    static_cast<double>(row_count_);
  if (!rest.empty()) {
    histogram_.Build(rest, options.num_buckets);
  } else {
    histogram_ = EquiDepthHistogram();
  }
}

double ColumnStats::EstimateRange(double lo, double hi) const {
  if (row_count_ == 0 || lo > hi) return 0.0;
  double total = 0.0;
  // MCV part: exact.
  const auto begin = std::lower_bound(mcv_values_.begin(), mcv_values_.end(),
                                      lo);
  for (auto it = begin; it != mcv_values_.end() && *it <= hi; ++it) {
    total += mcv_freqs_[static_cast<size_t>(it - mcv_values_.begin())];
  }
  // Histogram part: uniform-spread interpolation over the remaining mass.
  if (histogram_mass_ > 0.0 && !histogram_.empty())
    total += histogram_mass_ * histogram_.EstimateRange(lo, hi);
  return std::clamp(total, 0.0, 1.0);
}

double ColumnStats::EstimateEquality(double v) const {
  if (row_count_ == 0) return 0.0;
  const auto it = std::lower_bound(mcv_values_.begin(), mcv_values_.end(), v);
  if (it != mcv_values_.end() && *it == v)
    return mcv_freqs_[static_cast<size_t>(it - mcv_values_.begin())];
  // Postgres-style: remaining mass spread evenly over remaining distincts.
  const size_t remaining_distinct =
      distinct_count_ > mcv_values_.size()
          ? distinct_count_ - mcv_values_.size()
          : 1;
  return (1.0 - mcv_total_freq_) / static_cast<double>(remaining_distinct);
}

void ColumnStats::Serialize(ByteWriter* writer) const {
  writer->Doubles(mcv_values_);
  writer->Doubles(mcv_freqs_);
  writer->F64(mcv_total_freq_);
  histogram_.Serialize(writer);
  writer->F64(histogram_mass_);
  writer->U64(distinct_count_);
  writer->U64(row_count_);
}

bool ColumnStats::Deserialize(ByteReader* reader) {
  uint64_t distinct = 0, rows = 0;
  if (!reader->Doubles(&mcv_values_) || !reader->Doubles(&mcv_freqs_) ||
      !reader->F64(&mcv_total_freq_) || !histogram_.Deserialize(reader) ||
      !reader->F64(&histogram_mass_) || !reader->U64(&distinct) ||
      !reader->U64(&rows)) {
    return false;
  }
  if (mcv_values_.size() != mcv_freqs_.size()) return false;
  distinct_count_ = distinct;
  row_count_ = rows;
  return true;
}

size_t ColumnStats::SizeBytes() const {
  return (mcv_values_.size() + mcv_freqs_.size()) * sizeof(double) +
         histogram_.SizeBytes();
}

}  // namespace arecel
