#include "ml/loss.h"

#include <algorithm>
#include <cmath>

namespace arecel {

LossValueGrad MseLogLoss(double z, double target) {
  const double diff = z - target;
  return {diff * diff, 2.0 * diff};
}

LossValueGrad QErrorLoss(double z, double target, double max_log_diff) {
  const double diff = std::clamp(z - target, -max_log_diff, max_log_diff);
  const double loss = std::exp(std::fabs(diff));
  return {loss, loss * (diff >= 0 ? 1.0 : -1.0)};
}

}  // namespace arecel
