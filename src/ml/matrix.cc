#include "ml/matrix.h"

#include <algorithm>

#include "util/check.h"

// The MatMul / MatMulBT / MatMulAT definitions live in ml/kernels.cc next
// to the backend dispatch; only the storage and trivially-vectorized
// helpers remain here.

namespace arecel {

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void AddRowBroadcast(Matrix* m, const std::vector<float>& bias) {
  ARECEL_CHECK(m->cols() == bias.size());
  for (size_t i = 0; i < m->rows(); ++i) {
    float* row = m->Row(i);
    for (size_t j = 0; j < m->cols(); ++j) row[j] += bias[j];
  }
}

void ColumnSums(const Matrix& m, std::vector<float>* out) {
  out->assign(m.cols(), 0.0f);
  for (size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    for (size_t j = 0; j < m.cols(); ++j) (*out)[j] += row[j];
  }
}

}  // namespace arecel
