#include "ml/matrix.h"

#include <cstring>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace arecel {

namespace {
// Below this many multiply-adds, thread dispatch costs more than it saves.
constexpr size_t kParallelFlopThreshold = 4u << 20;
}  // namespace

void Matrix::Fill(float v) {
  for (auto& x : data_) x = v;
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.cols() == b.rows());
  out->Resize(a.rows(), b.cols());
  out->Fill(0.0f);
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j order keeps the inner loop streaming over contiguous rows of b and
  // out; rows of the output are independent, so large products parallelize
  // over row chunks.
  auto rows = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float* out_row = out->Row(i);
      const float* a_row = a.Row(i);
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = a_row[kk];
        if (av == 0.0f) continue;
        const float* b_row = b.Row(kk);
        for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
      }
    }
  };
  if (m * k * n >= kParallelFlopThreshold) {
    ParallelForChunked(0, m, rows);
  } else {
    rows(0, m);
  }
}

void MatMulBT(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.cols() == b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  out->Resize(m, n);
  auto rows = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* a_row = a.Row(i);
      float* out_row = out->Row(i);
      for (size_t j = 0; j < n; ++j) {
        const float* b_row = b.Row(j);
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
        out_row[j] = acc;
      }
    }
  };
  if (m * k * n >= kParallelFlopThreshold) {
    ParallelForChunked(0, m, rows);
  } else {
    rows(0, m);
  }
}

void MatMulAT(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.rows() == b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  out->Resize(m, n);
  out->Fill(0.0f);
  auto accumulate = [&](Matrix* dst, size_t lo, size_t hi) {
    for (size_t kk = lo; kk < hi; ++kk) {
      const float* a_row = a.Row(kk);
      const float* b_row = b.Row(kk);
      for (size_t i = 0; i < m; ++i) {
        const float av = a_row[i];
        if (av == 0.0f) continue;
        float* out_row = dst->Row(i);
        for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
      }
    }
  };
  if (k * m * n < kParallelFlopThreshold) {
    accumulate(out, 0, k);
    return;
  }
  // Parallel over row chunks of the shared dimension with thread-local
  // accumulators (the output is a reduction over k).
  const int workers = ParallelWorkerCount();
  std::vector<Matrix> partials(static_cast<size_t>(workers),
                               Matrix(m, n, 0.0f));
  const size_t chunk = (k + static_cast<size_t>(workers) - 1) /
                       static_cast<size_t>(workers);
  ParallelFor(0, static_cast<size_t>(workers), [&](size_t w) {
    const size_t lo = w * chunk;
    const size_t hi = lo + chunk < k ? lo + chunk : k;
    if (lo < hi) accumulate(&partials[w], lo, hi);
  });
  for (const Matrix& partial : partials) {
    for (size_t i = 0; i < out->size(); ++i)
      out->data()[i] += partial.data()[i];
  }
}

void AddRowBroadcast(Matrix* m, const std::vector<float>& bias) {
  ARECEL_CHECK(m->cols() == bias.size());
  for (size_t i = 0; i < m->rows(); ++i) {
    float* row = m->Row(i);
    for (size_t j = 0; j < m->cols(); ++j) row[j] += bias[j];
  }
}

void ColumnSums(const Matrix& m, std::vector<float>* out) {
  out->assign(m.cols(), 0.0f);
  for (size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    for (size_t j = 0; j < m.cols(); ++j) (*out)[j] += row[j];
  }
}

}  // namespace arecel
