#include "ml/made.h"

#include <algorithm>
#include <cmath>

#include "ml/kernels.h"
#include "util/check.h"

namespace arecel {

namespace {

int BitsFor(int vocab) {
  int bits = 1;
  while ((1 << bits) < vocab) ++bits;
  return bits;
}

}  // namespace

ResMade::ResMade(std::vector<int> vocab_sizes, const Options& options)
    : vocab_sizes_(std::move(vocab_sizes)) {
  const size_t n = vocab_sizes_.size();
  ARECEL_CHECK(n >= 1);
  bits_.resize(n);
  in_offsets_.resize(n);
  out_offsets_.resize(n);
  for (size_t j = 0; j < n; ++j) {
    ARECEL_CHECK(vocab_sizes_[j] >= 1);
    bits_[j] = BitsFor(vocab_sizes_[j]);
    in_offsets_[j] = input_dim_;
    input_dim_ += static_cast<size_t>(bits_[j]);
    out_offsets_[j] = output_dim_;
    output_dim_ += static_cast<size_t>(vocab_sizes_[j]);
  }

  Rng rng(options.seed);
  const size_t hidden = options.hidden_units;

  // Autoregressive degrees. Input bit of column j has degree j; hidden unit
  // k has degree k % max(1, n-1) (round-robin covers every degree evenly);
  // output segment j requires strictly smaller hidden degrees.
  std::vector<int> hidden_degree(hidden);
  const int degree_span = std::max<size_t>(1, n - 1);
  for (size_t k = 0; k < hidden; ++k)
    hidden_degree[k] = static_cast<int>(k % static_cast<size_t>(degree_span));

  // Input layer with mask: connect column j -> hidden k iff deg(k) >= j.
  layers_.emplace_back(input_dim_, hidden, Activation::kRelu, rng);
  {
    Matrix mask(input_dim_, hidden, 0.0f);
    for (size_t j = 0; j < n; ++j) {
      for (int b = 0; b < bits_[j]; ++b) {
        const size_t row = in_offsets_[j] + static_cast<size_t>(b);
        for (size_t k = 0; k < hidden; ++k) {
          if (hidden_degree[k] >= static_cast<int>(j))
            mask.At(row, k) = 1.0f;
        }
      }
    }
    layers_.back().SetMask(std::move(mask));
  }

  // Residual blocks: hidden -> hidden, connect k -> k' iff deg(k') >= deg(k).
  Matrix hidden_mask(hidden, hidden, 0.0f);
  for (size_t k = 0; k < hidden; ++k) {
    for (size_t k2 = 0; k2 < hidden; ++k2) {
      if (hidden_degree[k2] >= hidden_degree[k])
        hidden_mask.At(k, k2) = 1.0f;
    }
  }
  for (int b = 0; b < options.num_blocks; ++b) {
    layers_.emplace_back(hidden, hidden, Activation::kRelu, rng);
    layers_.back().SetMask(hidden_mask);
  }

  // Output layer: hidden k -> output segment j iff deg(k) < j (strict).
  layers_.emplace_back(hidden, output_dim_, Activation::kNone, rng);
  {
    Matrix mask(hidden, output_dim_, 0.0f);
    for (size_t k = 0; k < hidden; ++k) {
      for (size_t j = 0; j < n; ++j) {
        if (hidden_degree[k] < static_cast<int>(j)) {
          for (int v = 0; v < vocab_sizes_[j]; ++v)
            mask.At(k, out_offsets_[j] + static_cast<size_t>(v)) = 1.0f;
        }
      }
    }
    layers_.back().SetMask(std::move(mask));
  }

  layer_inputs_.resize(layers_.size());
}

void ResMade::Encode(const int32_t* codes, size_t valid_prefix,
                     float* dst) const {
  std::fill(dst, dst + input_dim_, 0.0f);
  const size_t n = vocab_sizes_.size();
  for (size_t j = 0; j < n && j < valid_prefix; ++j) {
    const int32_t code = codes[j];
    ARECEL_CHECK(code >= 0 && code < vocab_sizes_[j]);
    for (int b = 0; b < bits_[j]; ++b) {
      dst[in_offsets_[j] + static_cast<size_t>(b)] =
          static_cast<float>((code >> b) & 1);
    }
  }
}

void ResMade::ForwardInternal(const Matrix& input, Matrix* logits,
                              bool training) const {
  const size_t last = layers_.size() - 1;
  Matrix current;
  // Input layer.
  layer_inputs_[0] = input;
  if (training) {
    layers_[0].ForwardTrain(input, &current);
  } else {
    layers_[0].Forward(input, &current);
  }
  // Residual blocks.
  Matrix block_out;
  for (size_t l = 1; l < last; ++l) {
    layer_inputs_[l] = current;
    if (training) {
      layers_[l].ForwardTrain(current, &block_out);
    } else {
      layers_[l].Forward(current, &block_out);
    }
    // Identity skip: masks are degree-consistent, so the sum stays
    // autoregressive.
    AddInPlace(&current, block_out);
  }
  layer_inputs_[last] = current;
  if (training) {
    layers_[last].ForwardTrain(current, logits);
  } else {
    layers_[last].Forward(current, logits);
  }
}

void ResMade::Forward(const Matrix& input, Matrix* logits) const {
  ForwardInternal(input, logits, /*training=*/false);
}

void ResMade::ForwardColumnLogits(const Matrix& input, size_t col,
                                  Matrix* logits) const {
  // Hidden stack (same as ForwardInternal, inference mode, no caches kept).
  const size_t last = layers_.size() - 1;
  Matrix current;
  layers_[0].Forward(input, &current);
  Matrix block_out;
  for (size_t l = 1; l < last; ++l) {
    layers_[l].Forward(current, &block_out);
    AddInPlace(&current, block_out);
  }
  // Sliced output matmul over this column's logit segment only; uses the
  // packed form of the logits layer when one was built (PackForInference).
  layers_[last].ForwardSlice(current, out_offsets_[col],
                             static_cast<size_t>(vocab_sizes_[col]), logits);
}

void ResMade::PackForInference() {
  for (DenseLayer& layer : layers_) layer.PackForInference();
}

float ResMade::TrainStep(const Matrix& input,
                         const std::vector<int32_t>& targets,
                         float learning_rate) {
  const size_t batch = input.rows();
  const size_t n = vocab_sizes_.size();
  ARECEL_CHECK(targets.size() == batch * n);

  Matrix logits;
  ForwardInternal(input, &logits, /*training=*/true);

  // Per-column softmax cross-entropy; gradient = (softmax - onehot) / batch.
  Matrix probs = logits;
  double total_nll = 0.0;
  for (size_t j = 0; j < n; ++j) {
    SoftmaxRows(&probs, out_offsets_[j],
                out_offsets_[j] + static_cast<size_t>(vocab_sizes_[j]));
  }
  Matrix grad(batch, output_dim_, 0.0f);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (size_t r = 0; r < batch; ++r) {
    const float* p = probs.Row(r);
    float* g = grad.Row(r);
    for (size_t j = 0; j < n; ++j) {
      const int32_t target = targets[r * n + j];
      ARECEL_CHECK(target >= 0 && target < vocab_sizes_[j]);
      const size_t off = out_offsets_[j];
      const size_t vocab = static_cast<size_t>(vocab_sizes_[j]);
      for (size_t v = 0; v < vocab; ++v) g[off + v] = p[off + v] * inv_batch;
      g[off + static_cast<size_t>(target)] -= inv_batch;
      total_nll -= std::log(
          std::max(1e-30f, p[off + static_cast<size_t>(target)]));
    }
  }

  // Backward through output layer, residual blocks (skip adds gradients),
  // and the input layer.
  const size_t last = layers_.size() - 1;
  Matrix current_grad;
  layers_[last].Backward(grad, &current_grad);
  Matrix branch_grad;
  for (size_t l = last; l-- > 1;) {
    layers_[l].Backward(current_grad, &branch_grad);
    // Residual: total gradient into the block input = skip + branch.
    AddInPlace(&current_grad, branch_grad);
  }
  layers_[0].Backward(current_grad, nullptr);

  for (auto& layer : layers_) layer.AdamStep(learning_rate);
  return static_cast<float>(total_nll / static_cast<double>(batch));
}

void ResMade::ColumnDistribution(const Matrix& logits, size_t row, size_t col,
                                 std::vector<double>* probs) const {
  const size_t off = out_offsets_[col];
  const size_t vocab = static_cast<size_t>(vocab_sizes_[col]);
  probs->resize(vocab);
  const float* r = logits.Row(row);
  float max_v = r[off];
  for (size_t v = 0; v < vocab; ++v) max_v = std::max(max_v, r[off + v]);
  double sum = 0.0;
  for (size_t v = 0; v < vocab; ++v) {
    (*probs)[v] = std::exp(static_cast<double>(r[off + v] - max_v));
    sum += (*probs)[v];
  }
  for (size_t v = 0; v < vocab; ++v) (*probs)[v] /= sum;
}

size_t ResMade::ParamCount() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer.ParamCount();
  return total;
}

}  // namespace arecel
