// AVX2 + FMA instantiation of the fast ML kernel table (ml/kernels_simd.h).
//
// This translation unit is compiled with -mavx2 -mfma (src/CMakeLists.txt)
// while the rest of the build stays at the portable baseline ISA; the
// dispatch layer in ml/kernels.cc only selects this table after a CPUID
// check, so the binary remains runnable on pre-AVX2 hardware. When the
// toolchain cannot target AVX2 at all, Avx2KernelOps() compiles to a
// nullptr stub and the portable table is used unconditionally.
//
// Kernel shape notes (register blocking IS the cache blocking here):
//  * dense_rows uses a 4x16 register tile (4 output rows x two 8-float
//    accumulator vectors). Each loaded strip of b feeds four output rows,
//    cutting b traffic 4x versus the scalar i-k-j loop; accumulators live
//    in registers for the whole k loop, so out is written exactly once.
//  * dot_rows processes four b rows per a-row pass with independent
//    accumulators, then reduces them with a hadd tree.
//  * accum_outer streams fused multiply-adds over 16-column strips of the
//    accumulation target.
// Tails (columns % 8, rows % 4) fall back to narrower vectors and then
// scalars; every path is branch-free over values (no zero-skip — that
// branch is the reference backend's documented pessimization).

#include "ml/kernels_simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ml/packed.h"

namespace arecel {
namespace mlk {
namespace {

inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

// 4 rows x 16 cols micro-kernel: out rows i..i+3, cols j..j+15.
inline void DenseTile4x16(const float* a, size_t lda, const float* b,
                          size_t ldb, const float* bias, bool relu,
                          float* out, size_t ldo, size_t i, size_t j,
                          size_t k) {
  __m256 acc00, acc01, acc10, acc11, acc20, acc21, acc30, acc31;
  if (bias != nullptr) {
    const __m256 bias0 = _mm256_loadu_ps(bias + j);
    const __m256 bias1 = _mm256_loadu_ps(bias + j + 8);
    acc00 = bias0; acc01 = bias1;
    acc10 = bias0; acc11 = bias1;
    acc20 = bias0; acc21 = bias1;
    acc30 = bias0; acc31 = bias1;
  } else {
    acc00 = acc01 = acc10 = acc11 = _mm256_setzero_ps();
    acc20 = acc21 = acc30 = acc31 = _mm256_setzero_ps();
  }
  const float* a0 = a + i * lda;
  const float* a1 = a0 + lda;
  const float* a2 = a1 + lda;
  const float* a3 = a2 + lda;
  for (size_t kk = 0; kk < k; ++kk) {
    const float* b_row = b + kk * ldb + j;
    const __m256 b0 = _mm256_loadu_ps(b_row);
    const __m256 b1 = _mm256_loadu_ps(b_row + 8);
    __m256 av;
    av = _mm256_set1_ps(a0[kk]);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_set1_ps(a1[kk]);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_set1_ps(a2[kk]);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_set1_ps(a3[kk]);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
  }
  if (relu) {
    const __m256 zero = _mm256_setzero_ps();
    acc00 = _mm256_max_ps(acc00, zero); acc01 = _mm256_max_ps(acc01, zero);
    acc10 = _mm256_max_ps(acc10, zero); acc11 = _mm256_max_ps(acc11, zero);
    acc20 = _mm256_max_ps(acc20, zero); acc21 = _mm256_max_ps(acc21, zero);
    acc30 = _mm256_max_ps(acc30, zero); acc31 = _mm256_max_ps(acc31, zero);
  }
  float* o0 = out + i * ldo + j;
  float* o1 = o0 + ldo;
  float* o2 = o1 + ldo;
  float* o3 = o2 + ldo;
  _mm256_storeu_ps(o0, acc00); _mm256_storeu_ps(o0 + 8, acc01);
  _mm256_storeu_ps(o1, acc10); _mm256_storeu_ps(o1 + 8, acc11);
  _mm256_storeu_ps(o2, acc20); _mm256_storeu_ps(o2 + 8, acc21);
  _mm256_storeu_ps(o3, acc30); _mm256_storeu_ps(o3 + 8, acc31);
}

// `rows` (1..4) x 8 cols tile at (i, j).
inline void DenseTileRx8(const float* a, size_t lda, const float* b,
                         size_t ldb, const float* bias, bool relu, float* out,
                         size_t ldo, size_t i, size_t j, size_t k,
                         size_t rows) {
  __m256 acc[4];
  const __m256 init =
      bias != nullptr ? _mm256_loadu_ps(bias + j) : _mm256_setzero_ps();
  for (size_t r = 0; r < rows; ++r) acc[r] = init;
  for (size_t kk = 0; kk < k; ++kk) {
    const __m256 bv = _mm256_loadu_ps(b + kk * ldb + j);
    for (size_t r = 0; r < rows; ++r) {
      const __m256 av = _mm256_set1_ps(a[(i + r) * lda + kk]);
      acc[r] = _mm256_fmadd_ps(av, bv, acc[r]);
    }
  }
  const __m256 zero = _mm256_setzero_ps();
  for (size_t r = 0; r < rows; ++r) {
    if (relu) acc[r] = _mm256_max_ps(acc[r], zero);
    _mm256_storeu_ps(out + (i + r) * ldo + j, acc[r]);
  }
}

// Scalar column tail (n - j < 8) for `rows` rows at (i, j).
inline void DenseTailScalar(const float* a, size_t lda, const float* b,
                            size_t ldb, const float* bias, bool relu,
                            float* out, size_t ldo, size_t i, size_t j,
                            size_t k, size_t n, size_t rows) {
  for (size_t r = 0; r < rows; ++r) {
    for (size_t jj = j; jj < n; ++jj) {
      float acc = bias != nullptr ? bias[jj] : 0.0f;
      for (size_t kk = 0; kk < k; ++kk)
        acc += a[(i + r) * lda + kk] * b[kk * ldb + jj];
      if (relu && acc < 0.0f) acc = 0.0f;
      out[(i + r) * ldo + jj] = acc;
    }
  }
}

void DenseRowsAvx2(const float* a, size_t lda, const float* b, size_t ldb,
                   const float* bias, bool relu, float* out, size_t ldo,
                   size_t i_lo, size_t i_hi, size_t k, size_t n) {
  size_t i = i_lo;
  for (; i + 4 <= i_hi; i += 4) {
    size_t j = 0;
    for (; j + 16 <= n; j += 16)
      DenseTile4x16(a, lda, b, ldb, bias, relu, out, ldo, i, j, k);
    for (; j + 8 <= n; j += 8)
      DenseTileRx8(a, lda, b, ldb, bias, relu, out, ldo, i, j, k, 4);
    if (j < n)
      DenseTailScalar(a, lda, b, ldb, bias, relu, out, ldo, i, j, k, n, 4);
  }
  const size_t rows = i_hi - i;
  if (rows > 0) {
    size_t j = 0;
    for (; j + 8 <= n; j += 8)
      DenseTileRx8(a, lda, b, ldb, bias, relu, out, ldo, i, j, k, rows);
    if (j < n)
      DenseTailScalar(a, lda, b, ldb, bias, relu, out, ldo, i, j, k, n, rows);
  }
}

void DotRowsAvx2(const float* a, size_t lda, const float* b, size_t ldb,
                 float* out, size_t ldo, size_t i_lo, size_t i_hi, size_t k,
                 size_t n) {
  for (size_t i = i_lo; i < i_hi; ++i) {
    const float* a_row = a + i * lda;
    float* out_row = out + i * ldo;
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * ldb;
      const float* b1 = b0 + ldb;
      const float* b2 = b1 + ldb;
      const float* b3 = b2 + ldb;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      size_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        const __m256 av = _mm256_loadu_ps(a_row + kk);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + kk), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + kk), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + kk), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + kk), acc3);
      }
      // hadd tree: four 8-wide accumulators -> one 4-float vector of sums.
      const __m256 h01 = _mm256_hadd_ps(acc0, acc1);
      const __m256 h23 = _mm256_hadd_ps(acc2, acc3);
      const __m256 h = _mm256_hadd_ps(h01, h23);
      __m128 sums = _mm_add_ps(_mm256_castps256_ps128(h),
                               _mm256_extractf128_ps(h, 1));
      alignas(16) float tail[4];
      _mm_store_ps(tail, sums);
      for (; kk < k; ++kk) {
        const float av = a_row[kk];
        tail[0] += av * b0[kk];
        tail[1] += av * b1[kk];
        tail[2] += av * b2[kk];
        tail[3] += av * b3[kk];
      }
      out_row[j] = tail[0];
      out_row[j + 1] = tail[1];
      out_row[j + 2] = tail[2];
      out_row[j + 3] = tail[3];
    }
    for (; j < n; ++j) {
      const float* b_row = b + j * ldb;
      __m256 acc = _mm256_setzero_ps();
      size_t kk = 0;
      for (; kk + 8 <= k; kk += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a_row + kk),
                              _mm256_loadu_ps(b_row + kk), acc);
      float sum = HSum(acc);
      for (; kk < k; ++kk) sum += a_row[kk] * b_row[kk];
      out_row[j] = sum;
    }
  }
}

void AccumOuterAvx2(const float* a, size_t lda, const float* b, size_t ldb,
                    float* out, size_t ldo, size_t k_lo, size_t k_hi,
                    size_t m, size_t n) {
  for (size_t kk = k_lo; kk < k_hi; ++kk) {
    const float* a_row = a + kk * lda;
    const float* b_row = b + kk * ldb;
    for (size_t i = 0; i < m; ++i) {
      const __m256 av = _mm256_set1_ps(a_row[i]);
      float* out_row = out + i * ldo;
      size_t j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m256 o0 = _mm256_loadu_ps(out_row + j);
        const __m256 o1 = _mm256_loadu_ps(out_row + j + 8);
        _mm256_storeu_ps(out_row + j,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(b_row + j), o0));
        _mm256_storeu_ps(
            out_row + j + 8,
            _mm256_fmadd_ps(av, _mm256_loadu_ps(b_row + j + 8), o1));
      }
      for (; j + 8 <= n; j += 8) {
        const __m256 o = _mm256_loadu_ps(out_row + j);
        _mm256_storeu_ps(out_row + j,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(b_row + j), o));
      }
      const float av_scalar = a_row[i];
      for (; j < n; ++j) out_row[j] += av_scalar * b_row[j];
    }
  }
}

// Builds the two bias vectors for packed tile `jbase` without reading past
// the unpadded bias length n.
inline void PackedBiasVecs(const float* bias, size_t jbase, size_t n,
                           __m256* bias0, __m256* bias1) {
  if (bias == nullptr) {
    *bias0 = *bias1 = _mm256_setzero_ps();
  } else if (jbase + kPackTileCols <= n) {
    *bias0 = _mm256_loadu_ps(bias + jbase);
    *bias1 = _mm256_loadu_ps(bias + jbase + 8);
  } else {
    alignas(32) float tmp[kPackTileCols] = {0};
    for (size_t c = 0; jbase + c < n; ++c) tmp[c] = bias[jbase + c];
    *bias0 = _mm256_load_ps(tmp);
    *bias1 = _mm256_load_ps(tmp + 8);
  }
}

// One packed tile for R output rows starting at row i. The full 16-wide
// accumulators are computed even when the column window only covers part of
// the tile (edge tiles); the store path copies just the covered columns.
template <size_t R>
inline void PackedTileAvx2(const float* a, size_t lda, const float* tp,
                           size_t k, __m256 bias0, __m256 bias1, bool relu,
                           float* out, size_t ldo, size_t i, size_t jbase,
                           size_t col_begin, size_t col_end) {
  __m256 acc0[R], acc1[R];
  const float* a_rows[R];
  for (size_t r = 0; r < R; ++r) {
    acc0[r] = bias0;
    acc1[r] = bias1;
    a_rows[r] = a + (i + r) * lda;
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const float* b_row = tp + kk * kPackTileCols;
    const __m256 b0 = _mm256_loadu_ps(b_row);
    const __m256 b1 = _mm256_loadu_ps(b_row + 8);
    for (size_t r = 0; r < R; ++r) {
      const __m256 av = _mm256_set1_ps(a_rows[r][kk]);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  if (relu) {
    const __m256 zero = _mm256_setzero_ps();
    for (size_t r = 0; r < R; ++r) {
      acc0[r] = _mm256_max_ps(acc0[r], zero);
      acc1[r] = _mm256_max_ps(acc1[r], zero);
    }
  }
  if (jbase >= col_begin && jbase + kPackTileCols <= col_end) {
    for (size_t r = 0; r < R; ++r) {
      float* o = out + (i + r) * ldo + (jbase - col_begin);
      _mm256_storeu_ps(o, acc0[r]);
      _mm256_storeu_ps(o + 8, acc1[r]);
    }
  } else {
    // Edge tile: spill to a temp and copy the covered columns only. Writing
    // through a masked/offset vector store could touch bytes before out.
    const size_t c_lo = jbase < col_begin ? col_begin - jbase : 0;
    const size_t c_hi =
        col_end - jbase < kPackTileCols ? col_end - jbase : kPackTileCols;
    alignas(32) float tmp[kPackTileCols];
    for (size_t r = 0; r < R; ++r) {
      _mm256_store_ps(tmp, acc0[r]);
      _mm256_store_ps(tmp + 8, acc1[r]);
      float* o = out + (i + r) * ldo;
      for (size_t c = c_lo; c < c_hi; ++c) o[jbase + c - col_begin] = tmp[c];
    }
  }
}

void PackedDenseRowsAvx2(const float* a, size_t lda, const float* bp,
                         size_t k, size_t n, const float* bias, bool relu,
                         float* out, size_t ldo, size_t i_lo, size_t i_hi,
                         size_t col_begin, size_t cols) {
  const size_t col_end = col_begin + cols;
  const size_t t0 = col_begin / kPackTileCols;
  size_t i = i_lo;
  while (i < i_hi) {
    const size_t rows = i + 4 <= i_hi ? 4 : i_hi - i;
    for (size_t t = t0; t * kPackTileCols < col_end; ++t) {
      const size_t jbase = t * kPackTileCols;
      const float* tp = bp + jbase * k;
      __m256 bias0, bias1;
      PackedBiasVecs(bias, jbase, n, &bias0, &bias1);
      switch (rows) {
        case 4:
          PackedTileAvx2<4>(a, lda, tp, k, bias0, bias1, relu, out, ldo, i,
                            jbase, col_begin, col_end);
          break;
        case 3:
          PackedTileAvx2<3>(a, lda, tp, k, bias0, bias1, relu, out, ldo, i,
                            jbase, col_begin, col_end);
          break;
        case 2:
          PackedTileAvx2<2>(a, lda, tp, k, bias0, bias1, relu, out, ldo, i,
                            jbase, col_begin, col_end);
          break;
        default:
          PackedTileAvx2<1>(a, lda, tp, k, bias0, bias1, relu, out, ldo, i,
                            jbase, col_begin, col_end);
          break;
      }
    }
    i += rows;
  }
}

// R rows x one 16-column tile of the int8 kernel. A 64-byte packed group is
// 16 columns x 4 k bytes; each 32-byte half maddubs/madd-reduces to eight
// per-column int32 partials (acc_lo covers jbase..jbase+7, acc_hi the
// rest), and the R rows share each group load. The dequant epilogue is
// vectorized but keeps QuantEpilogue's exact float sequence per lane, so
// quant outputs stay bit-identical to the portable tier's scalar epilogue;
// edge tiles fall back to that scalar epilogue directly.
template <size_t R>
inline void QuantTileAvx2(const uint8_t* aq, size_t lda_q, const int8_t* tp,
                          size_t k_pad, const float* a_scales,
                          const int32_t* a_zps, const float* w_scales,
                          const int32_t* w_col_sums, const float* bias,
                          bool relu, float* out, size_t ldo, size_t i,
                          size_t jbase, size_t col_begin, size_t col_end) {
  const __m256i ones16 = _mm256_set1_epi16(1);
  __m256i acc_lo[R], acc_hi[R];
  const uint8_t* a_rows[R];
  for (size_t r = 0; r < R; ++r) {
    acc_lo[r] = _mm256_setzero_si256();
    acc_hi[r] = _mm256_setzero_si256();
    a_rows[r] = aq + (i + r) * lda_q;
  }
  for (size_t kg = 0; kg < k_pad; kg += kQuantKGroup) {
    const int8_t* group = tp + kg * kPackTileCols;
    const __m256i b_lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(group));
    const __m256i b_hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(group + 32));
    for (size_t r = 0; r < R; ++r) {
      int32_t a4;
      std::memcpy(&a4, a_rows[r] + kg, sizeof(a4));
      const __m256i av = _mm256_set1_epi32(a4);
      // u8*s8 pair-sums cannot saturate: activations are 7-bit.
      acc_lo[r] = _mm256_add_epi32(
          acc_lo[r],
          _mm256_madd_epi16(_mm256_maddubs_epi16(av, b_lo), ones16));
      acc_hi[r] = _mm256_add_epi32(
          acc_hi[r],
          _mm256_madd_epi16(_mm256_maddubs_epi16(av, b_hi), ones16));
    }
  }
  if (jbase >= col_begin && jbase + kPackTileCols <= col_end) {
    const __m256i sums_lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(w_col_sums + jbase));
    const __m256i sums_hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(w_col_sums + jbase + 8));
    const __m256 wsc_lo = _mm256_loadu_ps(w_scales + jbase);
    const __m256 wsc_hi = _mm256_loadu_ps(w_scales + jbase + 8);
    const __m256 bias_lo =
        bias != nullptr ? _mm256_loadu_ps(bias + jbase) : _mm256_setzero_ps();
    const __m256 bias_hi = bias != nullptr ? _mm256_loadu_ps(bias + jbase + 8)
                                           : _mm256_setzero_ps();
    const __m256 zero = _mm256_setzero_ps();
    for (size_t r = 0; r < R; ++r) {
      const __m256i zp = _mm256_set1_epi32(a_zps[i + r]);
      const __m256 a_sc = _mm256_set1_ps(a_scales[i + r]);
      const __m256i x_lo =
          _mm256_sub_epi32(acc_lo[r], _mm256_mullo_epi32(zp, sums_lo));
      const __m256i x_hi =
          _mm256_sub_epi32(acc_hi[r], _mm256_mullo_epi32(zp, sums_hi));
      __m256 prod_lo =
          _mm256_mul_ps(_mm256_cvtepi32_ps(x_lo), _mm256_mul_ps(a_sc, wsc_lo));
      __m256 prod_hi =
          _mm256_mul_ps(_mm256_cvtepi32_ps(x_hi), _mm256_mul_ps(a_sc, wsc_hi));
      // Barrier: GCC's -ffp-contract=fast fuses mul/add intrinsic pairs
      // into FMAs, which would break bit-identity with QuantEpilogue's
      // two-rounding sequence (kernels_simd.h).
      asm("" : "+x"(prod_lo), "+x"(prod_hi));
      __m256 v_lo = _mm256_add_ps(prod_lo, bias_lo);
      __m256 v_hi = _mm256_add_ps(prod_hi, bias_hi);
      if (relu) {
        v_lo = _mm256_max_ps(v_lo, zero);
        v_hi = _mm256_max_ps(v_hi, zero);
      }
      float* o = out + (i + r) * ldo + (jbase - col_begin);
      _mm256_storeu_ps(o, v_lo);
      _mm256_storeu_ps(o + 8, v_hi);
    }
  } else {
    const size_t c_lo = jbase < col_begin ? col_begin - jbase : 0;
    const size_t c_hi =
        col_end - jbase < kPackTileCols ? col_end - jbase : kPackTileCols;
    alignas(32) int32_t accs[kPackTileCols];
    for (size_t r = 0; r < R; ++r) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(accs), acc_lo[r]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(accs + 8), acc_hi[r]);
      float* out_row = out + (i + r) * ldo;
      for (size_t c = c_lo; c < c_hi; ++c) {
        const size_t j = jbase + c;
        out_row[j - col_begin] = QuantEpilogue(
            accs[c], a_zps[i + r], w_col_sums[j], a_scales[i + r], w_scales[j],
            bias != nullptr ? bias[j] : 0.0f, relu);
      }
    }
  }
}

void QuantDenseRowsAvx2(const uint8_t* aq, size_t lda_q, const float* a_scales,
                        const int32_t* a_zps, const int8_t* bq, size_t k_pad,
                        size_t n_pad, const float* w_scales,
                        const int32_t* w_col_sums, const float* bias,
                        bool relu, float* out, size_t ldo, size_t i_lo,
                        size_t i_hi, size_t col_begin, size_t cols) {
  (void)n_pad;
  const size_t col_end = col_begin + cols;
  const size_t t0 = col_begin / kPackTileCols;
  size_t i = i_lo;
  while (i < i_hi) {
    const size_t rows = i + 4 <= i_hi ? 4 : i_hi - i;
    for (size_t t = t0; t * kPackTileCols < col_end; ++t) {
      const size_t jbase = t * kPackTileCols;
      const int8_t* tp = bq + jbase * k_pad;
      switch (rows) {
        case 4:
          QuantTileAvx2<4>(aq, lda_q, tp, k_pad, a_scales, a_zps, w_scales,
                           w_col_sums, bias, relu, out, ldo, i, jbase,
                           col_begin, col_end);
          break;
        case 3:
          QuantTileAvx2<3>(aq, lda_q, tp, k_pad, a_scales, a_zps, w_scales,
                           w_col_sums, bias, relu, out, ldo, i, jbase,
                           col_begin, col_end);
          break;
        case 2:
          QuantTileAvx2<2>(aq, lda_q, tp, k_pad, a_scales, a_zps, w_scales,
                           w_col_sums, bias, relu, out, ldo, i, jbase,
                           col_begin, col_end);
          break;
        default:
          QuantTileAvx2<1>(aq, lda_q, tp, k_pad, a_scales, a_zps, w_scales,
                           w_col_sums, bias, relu, out, ldo, i, jbase,
                           col_begin, col_end);
          break;
      }
    }
    i += rows;
  }
}

// 8-wide activation quantization (ml/packed.h scheme). Replicates
// QuantizeRowsPortable's arithmetic exactly: every element goes through the
// same mul / add / max / min / cvtt sequence (mul and add kept as two
// separately-rounded operations — a register barrier stops GCC from
// contracting the intrinsic pair into a vfmadd — because the portable
// loop's two roundings define the contract), and short tails run through a
// zero-padded full
// vector instead of a scalar loop, so no element ever takes a different
// code path. Zero padding is harmless in the range pass because the range
// includes 0 by construction. The lane reductions for min/max are exactly
// associative over finite activations, so the per-row scale and zero point
// also match the portable tier bit for bit.
void QuantizeRowsAvx2(const float* a, size_t lda, size_t k, uint8_t* aq,
                      size_t lda_q, float* a_scales, int32_t* a_zps,
                      size_t i_lo, size_t i_hi) {
  const __m256 vzero = _mm256_setzero_ps();
  const __m256 vcap = _mm256_set1_ps(127.5f);
  const size_t kv = k & ~static_cast<size_t>(7);
  for (size_t i = i_lo; i < i_hi; ++i) {
    const float* row = a + i * lda;
    uint8_t* dst = aq + i * lda_q;
    alignas(32) float tailbuf[8] = {0};
    if (kv < k) std::memcpy(tailbuf, row + kv, (k - kv) * sizeof(float));
    __m256 vmin = vzero, vmax = vzero;
    for (size_t kk = 0; kk < kv; kk += 8) {
      const __m256 v = _mm256_loadu_ps(row + kk);
      vmin = _mm256_min_ps(vmin, v);
      vmax = _mm256_max_ps(vmax, v);
    }
    if (kv < k) {
      const __m256 v = _mm256_load_ps(tailbuf);
      vmin = _mm256_min_ps(vmin, v);
      vmax = _mm256_max_ps(vmax, v);
    }
    __m128 m4 = _mm_min_ps(_mm256_castps256_ps128(vmin),
                           _mm256_extractf128_ps(vmin, 1));
    m4 = _mm_min_ps(m4, _mm_movehl_ps(m4, m4));
    m4 = _mm_min_ss(m4, _mm_shuffle_ps(m4, m4, 1));
    const float min_v = _mm_cvtss_f32(m4);
    __m128 x4 = _mm_max_ps(_mm256_castps256_ps128(vmax),
                           _mm256_extractf128_ps(vmax, 1));
    x4 = _mm_max_ps(x4, _mm_movehl_ps(x4, x4));
    x4 = _mm_max_ss(x4, _mm_shuffle_ps(x4, x4, 1));
    const float max_v = _mm_cvtss_f32(x4);
    const float range = max_v - min_v;
    const float scale = range > 0.0f ? range / 127.0f : 1.0f;
    const int32_t zp = static_cast<int32_t>(
        std::clamp<long>(std::lrintf(-min_v / scale), 0, 127));
    a_scales[i] = scale;
    a_zps[i] = zp;
    const __m256 vinv = _mm256_set1_ps(1.0f / scale);
    const __m256 vzp = _mm256_set1_ps(static_cast<float>(zp) + 0.5f);
    for (size_t kk = 0; kk < kv; kk += 8) {
      __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(row + kk), vinv);
      // Barrier: keep mul and add separately rounded (no FMA contraction),
      // matching QuantizeRowsPortable's -ffp-contract=off arithmetic.
      asm("" : "+x"(prod));
      __m256 q = _mm256_add_ps(prod, vzp);
      q = _mm256_min_ps(_mm256_max_ps(q, vzero), vcap);
      const __m256i qi = _mm256_cvttps_epi32(q);
      const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(qi),
                                          _mm256_extracti128_si256(qi, 1));
      const __m128i p8 = _mm_packus_epi16(p16, p16);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + kk), p8);
    }
    if (kv < k) {
      __m256 prod = _mm256_mul_ps(_mm256_load_ps(tailbuf), vinv);
      asm("" : "+x"(prod));
      __m256 q = _mm256_add_ps(prod, vzp);
      q = _mm256_min_ps(_mm256_max_ps(q, vzero), vcap);
      const __m256i qi = _mm256_cvttps_epi32(q);
      const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(qi),
                                          _mm256_extracti128_si256(qi, 1));
      const __m128i p8 = _mm_packus_epi16(p16, p16);
      alignas(16) uint8_t tmp[16];
      _mm_store_si128(reinterpret_cast<__m128i*>(tmp), p8);
      std::memcpy(dst + kv, tmp, k - kv);
    }
    for (size_t kk = k; kk < lda_q; ++kk) dst[kk] = 0;
  }
}

constexpr KernelOps kAvx2Ops = {
    DenseRowsAvx2,
    DotRowsAvx2,
    AccumOuterAvx2,
    PackedDenseRowsAvx2,
    QuantDenseRowsAvx2,
    QuantizeRowsAvx2,
    "avx2-fma",
};

}  // namespace

const KernelOps* Avx2KernelOps() { return &kAvx2Ops; }

}  // namespace mlk
}  // namespace arecel

#else  // !(__AVX2__ && __FMA__)

namespace arecel {
namespace mlk {

const KernelOps* Avx2KernelOps() { return nullptr; }

}  // namespace mlk
}  // namespace arecel

#endif
