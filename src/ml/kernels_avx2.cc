// AVX2 + FMA instantiation of the fast ML kernel table (ml/kernels_simd.h).
//
// This translation unit is compiled with -mavx2 -mfma (src/CMakeLists.txt)
// while the rest of the build stays at the portable baseline ISA; the
// dispatch layer in ml/kernels.cc only selects this table after a CPUID
// check, so the binary remains runnable on pre-AVX2 hardware. When the
// toolchain cannot target AVX2 at all, Avx2KernelOps() compiles to a
// nullptr stub and the portable table is used unconditionally.
//
// Kernel shape notes (register blocking IS the cache blocking here):
//  * dense_rows uses a 4x16 register tile (4 output rows x two 8-float
//    accumulator vectors). Each loaded strip of b feeds four output rows,
//    cutting b traffic 4x versus the scalar i-k-j loop; accumulators live
//    in registers for the whole k loop, so out is written exactly once.
//  * dot_rows processes four b rows per a-row pass with independent
//    accumulators, then reduces them with a hadd tree.
//  * accum_outer streams fused multiply-adds over 16-column strips of the
//    accumulation target.
// Tails (columns % 8, rows % 4) fall back to narrower vectors and then
// scalars; every path is branch-free over values (no zero-skip — that
// branch is the reference backend's documented pessimization).

#include "ml/kernels_simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace arecel {
namespace mlk {
namespace {

inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

// 4 rows x 16 cols micro-kernel: out rows i..i+3, cols j..j+15.
inline void DenseTile4x16(const float* a, size_t lda, const float* b,
                          size_t ldb, const float* bias, bool relu,
                          float* out, size_t ldo, size_t i, size_t j,
                          size_t k) {
  __m256 acc00, acc01, acc10, acc11, acc20, acc21, acc30, acc31;
  if (bias != nullptr) {
    const __m256 bias0 = _mm256_loadu_ps(bias + j);
    const __m256 bias1 = _mm256_loadu_ps(bias + j + 8);
    acc00 = bias0; acc01 = bias1;
    acc10 = bias0; acc11 = bias1;
    acc20 = bias0; acc21 = bias1;
    acc30 = bias0; acc31 = bias1;
  } else {
    acc00 = acc01 = acc10 = acc11 = _mm256_setzero_ps();
    acc20 = acc21 = acc30 = acc31 = _mm256_setzero_ps();
  }
  const float* a0 = a + i * lda;
  const float* a1 = a0 + lda;
  const float* a2 = a1 + lda;
  const float* a3 = a2 + lda;
  for (size_t kk = 0; kk < k; ++kk) {
    const float* b_row = b + kk * ldb + j;
    const __m256 b0 = _mm256_loadu_ps(b_row);
    const __m256 b1 = _mm256_loadu_ps(b_row + 8);
    __m256 av;
    av = _mm256_set1_ps(a0[kk]);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_set1_ps(a1[kk]);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_set1_ps(a2[kk]);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_set1_ps(a3[kk]);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
  }
  if (relu) {
    const __m256 zero = _mm256_setzero_ps();
    acc00 = _mm256_max_ps(acc00, zero); acc01 = _mm256_max_ps(acc01, zero);
    acc10 = _mm256_max_ps(acc10, zero); acc11 = _mm256_max_ps(acc11, zero);
    acc20 = _mm256_max_ps(acc20, zero); acc21 = _mm256_max_ps(acc21, zero);
    acc30 = _mm256_max_ps(acc30, zero); acc31 = _mm256_max_ps(acc31, zero);
  }
  float* o0 = out + i * ldo + j;
  float* o1 = o0 + ldo;
  float* o2 = o1 + ldo;
  float* o3 = o2 + ldo;
  _mm256_storeu_ps(o0, acc00); _mm256_storeu_ps(o0 + 8, acc01);
  _mm256_storeu_ps(o1, acc10); _mm256_storeu_ps(o1 + 8, acc11);
  _mm256_storeu_ps(o2, acc20); _mm256_storeu_ps(o2 + 8, acc21);
  _mm256_storeu_ps(o3, acc30); _mm256_storeu_ps(o3 + 8, acc31);
}

// `rows` (1..4) x 8 cols tile at (i, j).
inline void DenseTileRx8(const float* a, size_t lda, const float* b,
                         size_t ldb, const float* bias, bool relu, float* out,
                         size_t ldo, size_t i, size_t j, size_t k,
                         size_t rows) {
  __m256 acc[4];
  const __m256 init =
      bias != nullptr ? _mm256_loadu_ps(bias + j) : _mm256_setzero_ps();
  for (size_t r = 0; r < rows; ++r) acc[r] = init;
  for (size_t kk = 0; kk < k; ++kk) {
    const __m256 bv = _mm256_loadu_ps(b + kk * ldb + j);
    for (size_t r = 0; r < rows; ++r) {
      const __m256 av = _mm256_set1_ps(a[(i + r) * lda + kk]);
      acc[r] = _mm256_fmadd_ps(av, bv, acc[r]);
    }
  }
  const __m256 zero = _mm256_setzero_ps();
  for (size_t r = 0; r < rows; ++r) {
    if (relu) acc[r] = _mm256_max_ps(acc[r], zero);
    _mm256_storeu_ps(out + (i + r) * ldo + j, acc[r]);
  }
}

// Scalar column tail (n - j < 8) for `rows` rows at (i, j).
inline void DenseTailScalar(const float* a, size_t lda, const float* b,
                            size_t ldb, const float* bias, bool relu,
                            float* out, size_t ldo, size_t i, size_t j,
                            size_t k, size_t n, size_t rows) {
  for (size_t r = 0; r < rows; ++r) {
    for (size_t jj = j; jj < n; ++jj) {
      float acc = bias != nullptr ? bias[jj] : 0.0f;
      for (size_t kk = 0; kk < k; ++kk)
        acc += a[(i + r) * lda + kk] * b[kk * ldb + jj];
      if (relu && acc < 0.0f) acc = 0.0f;
      out[(i + r) * ldo + jj] = acc;
    }
  }
}

void DenseRowsAvx2(const float* a, size_t lda, const float* b, size_t ldb,
                   const float* bias, bool relu, float* out, size_t ldo,
                   size_t i_lo, size_t i_hi, size_t k, size_t n) {
  size_t i = i_lo;
  for (; i + 4 <= i_hi; i += 4) {
    size_t j = 0;
    for (; j + 16 <= n; j += 16)
      DenseTile4x16(a, lda, b, ldb, bias, relu, out, ldo, i, j, k);
    for (; j + 8 <= n; j += 8)
      DenseTileRx8(a, lda, b, ldb, bias, relu, out, ldo, i, j, k, 4);
    if (j < n)
      DenseTailScalar(a, lda, b, ldb, bias, relu, out, ldo, i, j, k, n, 4);
  }
  const size_t rows = i_hi - i;
  if (rows > 0) {
    size_t j = 0;
    for (; j + 8 <= n; j += 8)
      DenseTileRx8(a, lda, b, ldb, bias, relu, out, ldo, i, j, k, rows);
    if (j < n)
      DenseTailScalar(a, lda, b, ldb, bias, relu, out, ldo, i, j, k, n, rows);
  }
}

void DotRowsAvx2(const float* a, size_t lda, const float* b, size_t ldb,
                 float* out, size_t ldo, size_t i_lo, size_t i_hi, size_t k,
                 size_t n) {
  for (size_t i = i_lo; i < i_hi; ++i) {
    const float* a_row = a + i * lda;
    float* out_row = out + i * ldo;
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * ldb;
      const float* b1 = b0 + ldb;
      const float* b2 = b1 + ldb;
      const float* b3 = b2 + ldb;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      size_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        const __m256 av = _mm256_loadu_ps(a_row + kk);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + kk), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + kk), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + kk), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + kk), acc3);
      }
      // hadd tree: four 8-wide accumulators -> one 4-float vector of sums.
      const __m256 h01 = _mm256_hadd_ps(acc0, acc1);
      const __m256 h23 = _mm256_hadd_ps(acc2, acc3);
      const __m256 h = _mm256_hadd_ps(h01, h23);
      __m128 sums = _mm_add_ps(_mm256_castps256_ps128(h),
                               _mm256_extractf128_ps(h, 1));
      alignas(16) float tail[4];
      _mm_store_ps(tail, sums);
      for (; kk < k; ++kk) {
        const float av = a_row[kk];
        tail[0] += av * b0[kk];
        tail[1] += av * b1[kk];
        tail[2] += av * b2[kk];
        tail[3] += av * b3[kk];
      }
      out_row[j] = tail[0];
      out_row[j + 1] = tail[1];
      out_row[j + 2] = tail[2];
      out_row[j + 3] = tail[3];
    }
    for (; j < n; ++j) {
      const float* b_row = b + j * ldb;
      __m256 acc = _mm256_setzero_ps();
      size_t kk = 0;
      for (; kk + 8 <= k; kk += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a_row + kk),
                              _mm256_loadu_ps(b_row + kk), acc);
      float sum = HSum(acc);
      for (; kk < k; ++kk) sum += a_row[kk] * b_row[kk];
      out_row[j] = sum;
    }
  }
}

void AccumOuterAvx2(const float* a, size_t lda, const float* b, size_t ldb,
                    float* out, size_t ldo, size_t k_lo, size_t k_hi,
                    size_t m, size_t n) {
  for (size_t kk = k_lo; kk < k_hi; ++kk) {
    const float* a_row = a + kk * lda;
    const float* b_row = b + kk * ldb;
    for (size_t i = 0; i < m; ++i) {
      const __m256 av = _mm256_set1_ps(a_row[i]);
      float* out_row = out + i * ldo;
      size_t j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m256 o0 = _mm256_loadu_ps(out_row + j);
        const __m256 o1 = _mm256_loadu_ps(out_row + j + 8);
        _mm256_storeu_ps(out_row + j,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(b_row + j), o0));
        _mm256_storeu_ps(
            out_row + j + 8,
            _mm256_fmadd_ps(av, _mm256_loadu_ps(b_row + j + 8), o1));
      }
      for (; j + 8 <= n; j += 8) {
        const __m256 o = _mm256_loadu_ps(out_row + j);
        _mm256_storeu_ps(out_row + j,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(b_row + j), o));
      }
      const float av_scalar = a_row[i];
      for (; j < n; ++j) out_row[j] += av_scalar * b_row[j];
    }
  }
}

constexpr KernelOps kAvx2Ops = {
    DenseRowsAvx2,
    DotRowsAvx2,
    AccumOuterAvx2,
    "avx2-fma",
};

}  // namespace

const KernelOps* Avx2KernelOps() { return &kAvx2Ops; }

}  // namespace mlk
}  // namespace arecel

#else  // !(__AVX2__ && __FMA__)

namespace arecel {
namespace mlk {

const KernelOps* Avx2KernelOps() { return nullptr; }

}  // namespace mlk
}  // namespace arecel

#endif
