#ifndef ARECEL_ML_PACKED_H_
#define ARECEL_ML_PACKED_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "ml/matrix.h"

namespace arecel {

// Inference-only weight formats for the dense forward path (DESIGN.md §10).
//
// The fast kernels read B (the weight matrix, k x n row-major) in 16-column
// strips: for each k they load b[k*ldb + j .. j+16). With a row-major B that
// walk is strided — consecutive k touch addresses 4*ldb bytes apart, so the
// wide logits layer of MADE (ldb = sum of vocabs, often 1024+ floats) pays
// one cache line per k per tile. PackedMatrix re-lays B at pack time into
// tile order: for each 16-column tile, all k rows of that tile are
// contiguous (k x 16 floats). The kernel's inner loop then streams the
// packed buffer sequentially, and a column slice (progressive sampling
// reads one column's logit segment) touches only the tiles covering it.
//
// QuantizedDense is the int8 serving form layered on the same tile order:
// symmetric per-column weight scales (w_q = round(w / scale_j), scale_j =
// max_j|w| / 127), k interleaved in groups of 4 bytes per column so a
// 64-byte row of the packed buffer is 16 columns x 4 consecutive k —
// exactly the operand shape of maddubs/dpbusd-style u8*s8 dot products.
// Activations are quantized per row at call time to unsigned 7-bit
// ([0, 127], asymmetric with a zero point) so the u8*s8 pair sums can
// never saturate the int16 intermediate: 127*127*2 = 32258 < 32767.
// The int32 accumulation is exact, which makes quantized outputs
// bit-identical across the portable / AVX2 / AVX-512 tiers.
//
// Both forms are derived caches: the fp32 Matrix stays the source of truth
// (training, serialization, the reference backend), and any weight
// mutation must drop the pack (DenseLayer::ClearPacked).

// Column-tile width shared by the packed fp32 and int8 layouts. Matches the
// 4x16 register tile of the AVX2/AVX-512 dense kernels.
inline constexpr size_t kPackTileCols = 16;
// k-interleave group of the int8 layout (bytes per column per 64-byte row).
inline constexpr size_t kQuantKGroup = 4;

// Tile-packed fp32 form of a (k x n) weight matrix. Columns are padded with
// zeros to a multiple of kPackTileCols; tile t occupies floats
// [t*16*k, (t+1)*16*k), row-major over k inside the tile.
class PackedMatrix {
 public:
  PackedMatrix() = default;

  // Re-lays `b` (k x n row-major) into tile order.
  void Pack(const Matrix& b);

  size_t rows() const { return rows_; }  // k.
  size_t cols() const { return cols_; }  // n (unpadded).
  size_t padded_cols() const { return padded_cols_; }
  const float* data() const { return data_.data(); }
  const float* tile(size_t t) const { return data_.data() + t * kPackTileCols * rows_; }
  size_t SizeBytes() const { return data_.size() * sizeof(float); }

 private:
  size_t rows_ = 0, cols_ = 0, padded_cols_ = 0;
  std::vector<float, AlignedAllocator<float, kMatrixAlignment>> data_;
};

// Int8 symmetric per-column quantized form of a (k x n) weight matrix in
// the k-grouped tile layout described above. Scales/column sums carry the
// dequantization epilogue:
//   out[j] = (acc_j - zp_row * col_sum[j]) * (act_scale_row * scale[j]) + bias[j]
class QuantizedDense {
 public:
  QuantizedDense() = default;

  void Quantize(const Matrix& b);

  size_t rows() const { return rows_; }        // k.
  size_t cols() const { return cols_; }        // n (unpadded).
  size_t padded_rows() const { return padded_rows_; }  // k rounded to 4.
  size_t padded_cols() const { return padded_cols_; }
  const int8_t* data() const { return data_.data(); }
  const float* scales() const { return scales_.data(); }
  const int32_t* col_sums() const { return col_sums_.data(); }
  size_t SizeBytes() const {
    return data_.size() + scales_.size() * sizeof(float) +
           col_sums_.size() * sizeof(int32_t);
  }

 private:
  size_t rows_ = 0, cols_ = 0, padded_rows_ = 0, padded_cols_ = 0;
  std::vector<int8_t, AlignedAllocator<int8_t, kMatrixAlignment>> data_;
  std::vector<float> scales_;      // per padded column (pad scale = 1).
  std::vector<int32_t> col_sums_;  // per padded column (pad sum = 0).
};

// The pair of inference forms a dense consumer caches next to its fp32
// weights. Build() derives both from the current weights; a default
// constructed instance means "not packed" and consumers fall back to the
// unpacked kernels.
struct PackedDenseWeights {
  PackedMatrix fp32;
  QuantizedDense q8;
  bool has = false;

  void Build(const Matrix& weights) {
    fp32.Pack(weights);
    q8.Quantize(weights);
    has = true;
  }
  void Clear() { *this = PackedDenseWeights(); }
  size_t SizeBytes() const { return fp32.SizeBytes() + q8.SizeBytes(); }
};

// out = act(input * W + bias) over the packed forms, dispatching on the
// active backend (ml/kernels.h): kQuant runs the int8 path, every other
// non-reference backend runs the packed fp32 path. `packed` must have been
// built from a (input.cols() x n) matrix; `bias` has length n or is null.
void PackedDenseForward(const Matrix& input, const PackedDenseWeights& packed,
                        const float* bias, bool relu, Matrix* out);

// Sliced head over the packed forms: absolute weight columns
// [col_begin, col_begin + cols), written to out columns [0, cols). `bias`
// points at the FULL bias vector, as in DenseForwardSlice.
void PackedDenseForwardSlice(const Matrix& input,
                             const PackedDenseWeights& packed,
                             const float* bias, size_t col_begin, size_t cols,
                             Matrix* out);

// Per-row unsigned 7-bit activation quantization, dispatched on the active
// SIMD tier (every tier performs the identical elementwise sequence, so
// quantized codes are bit-identical regardless of which tier ran — see
// KernelOps::quantize_rows). Writes padded_rows bytes per row into
// `quantized` (pad bytes zero), one scale and zero point per row. Buffers
// are resized, not cleared: callers may reuse scratch across calls.
// Exposed for tests.
void QuantizeActivations(const Matrix& input, size_t padded_rows,
                         std::vector<uint8_t>* quantized,
                         std::vector<float>* scales,
                         std::vector<int32_t>* zero_points);

}  // namespace arecel

#endif  // ARECEL_ML_PACKED_H_
