#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/random.h"

namespace arecel {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

int NearestCenter(const std::vector<std::vector<double>>& centers,
                  const std::vector<double>& point) {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers.size(); ++c) {
    const double d = SquaredDistance(centers[c], point);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    int max_iterations, uint64_t seed) {
  ARECEL_CHECK(!points.empty());
  ARECEL_CHECK(k >= 1);
  const size_t n = points.size();
  const size_t dims = points[0].size();
  k = static_cast<int>(std::min<size_t>(static_cast<size_t>(k), n));

  Rng rng(seed);
  KMeansResult result;
  // k-means++ seeding.
  result.centers.push_back(points[rng.UniformInt(static_cast<uint64_t>(n))]);
  std::vector<double> min_d(n, 0.0);
  while (static_cast<int>(result.centers.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      min_d[i] = SquaredDistance(points[i], result.centers[0]);
      for (size_t c = 1; c < result.centers.size(); ++c)
        min_d[i] = std::min(min_d[i],
                            SquaredDistance(points[i], result.centers[c]));
      total += min_d[i];
    }
    if (total <= 0.0) {
      // All points coincide with existing centers; duplicate one.
      result.centers.push_back(points[rng.UniformInt(
          static_cast<uint64_t>(n))]);
      continue;
    }
    double target = rng.Uniform() * total;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      target -= min_d[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centers.push_back(points[chosen]);
  }

  result.assignments.assign(n, 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      const int a = NearestCenter(result.centers, points[i]);
      if (a != result.assignments[i]) {
        result.assignments[i] = a;
        changed = true;
      }
    }
    // Recompute centers.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(k), std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      const auto a = static_cast<size_t>(result.assignments[i]);
      ++counts[a];
      for (size_t d = 0; d < dims; ++d) sums[a][d] += points[i][d];
    }
    for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster from a random point.
        result.centers[c] = points[rng.UniformInt(static_cast<uint64_t>(n))];
        changed = true;
        continue;
      }
      for (size_t d = 0; d < dims; ++d)
        result.centers[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
    if (!changed && iter > 0) break;
  }

  result.cluster_sizes.assign(static_cast<size_t>(k), 0);
  for (int a : result.assignments)
    ++result.cluster_sizes[static_cast<size_t>(a)];
  return result;
}

}  // namespace arecel
