#ifndef ARECEL_ML_KMEANS_H_
#define ARECEL_ML_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace arecel {

// Lloyd's k-means over dense double points — DeepDB uses it to split rows
// into the children of a sum node.
struct KMeansResult {
  std::vector<std::vector<double>> centers;  // k x dims.
  std::vector<int> assignments;              // per point.
  std::vector<size_t> cluster_sizes;         // per cluster.
};

// Runs k-means with k-means++-style seeding. `points` is n x dims.
// Empty clusters are reseeded from the farthest point.
KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    int max_iterations, uint64_t seed);

// Index of the nearest center to `point`.
int NearestCenter(const std::vector<std::vector<double>>& centers,
                  const std::vector<double>& point);

}  // namespace arecel

#endif  // ARECEL_ML_KMEANS_H_
