#ifndef ARECEL_ML_HISTOGRAM_H_
#define ARECEL_ML_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "util/archive.h"

namespace arecel {

// Equi-depth (equi-height) one-dimensional histogram over raw values.
// Buckets hold equal row mass; estimates interpolate linearly inside a
// bucket (the classic uniform-spread assumption).
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  // Builds over `values` (unsorted ok) with at most `max_buckets` buckets.
  void Build(const std::vector<double>& values, int max_buckets);

  // Fraction of rows with value in [lo, hi] (inclusive; +/-inf allowed).
  double EstimateRange(double lo, double hi) const;

  void Serialize(ByteWriter* writer) const;
  bool Deserialize(ByteReader* reader);

  bool empty() const { return boundaries_.empty(); }
  size_t num_buckets() const {
    return boundaries_.empty() ? 0 : boundaries_.size() - 1;
  }
  size_t SizeBytes() const { return boundaries_.size() * sizeof(double); }

 private:
  // boundaries_[i], boundaries_[i+1] delimit bucket i; each bucket holds
  // 1/num_buckets of the mass.
  std::vector<double> boundaries_;
};

// Per-column statistics in the style of pg_stats: a most-common-values list
// plus an equi-depth histogram over the remaining rows, and a distinct
// count. This is the statistics object behind the Postgres/MySQL/DBMS-A
// estimator stand-ins and the CE features (AVI/MinSel/EBO) of LW-XGB/NN.
class ColumnStats {
 public:
  struct Options {
    int num_buckets = 100;  // "statistics target".
    int num_mcvs = 100;
  };

  void Build(const std::vector<double>& values, const Options& options);

  // Selectivity of lo <= col <= hi (inclusive, +/-inf allowed).
  double EstimateRange(double lo, double hi) const;

  // Selectivity of col = v.
  double EstimateEquality(double v) const;

  void Serialize(ByteWriter* writer) const;
  bool Deserialize(ByteReader* reader);

  size_t distinct_count() const { return distinct_count_; }
  size_t SizeBytes() const;

 private:
  std::vector<double> mcv_values_;  // sorted.
  std::vector<double> mcv_freqs_;   // aligned with mcv_values_.
  double mcv_total_freq_ = 0.0;
  EquiDepthHistogram histogram_;    // over non-MCV rows.
  double histogram_mass_ = 0.0;     // 1 - mcv_total_freq_ (0 if no rows left).
  size_t distinct_count_ = 0;
  size_t row_count_ = 0;
};

}  // namespace arecel

#endif  // ARECEL_ML_HISTOGRAM_H_
