#include "ml/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ml/kernels_simd.h"
#include "ml/packed.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace arecel {

namespace {

// Below this many multiply-adds, thread dispatch costs more than it saves.
// Bench-derived: BM_MatMul in bench_micro_ml puts the single-thread /
// ParallelForChunked crossover between the 128^3 (~2M madds) and 256^3
// (~16M madds) cells on multi-core hosts; 4M keeps the dense layers of the
// paper's models (batch 256-512, width 64-1024) single-threaded while the
// largest output-layer products still fan out. On single-worker hosts the
// pool runs inline, so the value is latency-neutral there.
constexpr size_t kParallelMaddsThreshold = 4u << 20;

// ---------------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------------

std::atomic<int> g_backend{-1};  // -1 = not yet resolved from env.

[[noreturn]] void DieInvalidBackend(const char* value) {
  std::fprintf(stderr,
               "ARECEL_ML_KERNEL='%s' is not a kernel backend "
               "(want 'reference', 'fast' or 'quant')\n",
               value);
  std::exit(2);
}

[[noreturn]] void DieInvalidSimd(const char* value) {
  std::fprintf(stderr,
               "ARECEL_ML_SIMD='%s' is not an available SIMD tier on this "
               "machine/binary (want one of:",
               value);
  for (const char* name : AvailableMlKernelIsas())
    std::fprintf(stderr, " '%s'", name);
  std::fprintf(stderr, ")\n");
  std::exit(2);
}

// True when the running CPU can execute the AVX2+FMA / AVX-512 tiers. The
// build-time half of the check lives in the per-TU Avx*KernelOps() stubs.
bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw");
#else
  return false;
#endif
}

// ISA tier aliases accepted by ARECEL_ML_SIMD / SetMlKernelIsa. Returns
// nullptr when the named tier is unknown, not compiled in, or the CPU
// lacks it.
const mlk::KernelOps* OpsByName(const char* name) {
  if (std::strcmp(name, "portable") == 0) return &mlk::PortableKernelOps();
  if (std::strcmp(name, "avx2") == 0 || std::strcmp(name, "avx2-fma") == 0) {
    const mlk::KernelOps* ops = mlk::Avx2KernelOps();
    return (ops != nullptr && CpuHasAvx2Fma()) ? ops : nullptr;
  }
  if (std::strcmp(name, "avx512") == 0) {
    const mlk::KernelOps* ops = mlk::Avx512KernelOps();
    return (ops != nullptr && CpuHasAvx512()) ? ops : nullptr;
  }
  return nullptr;
}

const mlk::KernelOps* ResolveDefaultOps() {
  const char* env = std::getenv("ARECEL_ML_SIMD");
  if (env != nullptr && env[0] != '\0') {
    const mlk::KernelOps* ops = OpsByName(env);
    if (ops == nullptr) DieInvalidSimd(env);
    return ops;
  }
  // Widest tier the binary AND the CPU support wins.
  if (const mlk::KernelOps* ops = OpsByName("avx512")) return ops;
  if (const mlk::KernelOps* ops = OpsByName("avx2")) return ops;
  return &mlk::PortableKernelOps();
}

// nullptr = not yet resolved. Relaxed ordering suffices: every tier's table
// is a constant, and resolving twice is idempotent.
std::atomic<const mlk::KernelOps*> g_ops{nullptr};

}  // namespace

namespace mlk {

const KernelOps& ActiveKernelOps() {
  const KernelOps* ops = g_ops.load(std::memory_order_relaxed);
  if (ops == nullptr) {
    ops = ResolveDefaultOps();
    g_ops.store(ops, std::memory_order_relaxed);
  }
  return *ops;
}

}  // namespace mlk

bool SetMlKernelIsa(const char* name) {
  const mlk::KernelOps* ops = OpsByName(name);
  if (ops == nullptr) return false;
  g_ops.store(ops, std::memory_order_relaxed);
  return true;
}

std::vector<const char*> AvailableMlKernelIsas() {
  std::vector<const char*> names = {"portable"};
  if (OpsByName("avx2") != nullptr) names.push_back("avx2");
  if (OpsByName("avx512") != nullptr) names.push_back("avx512");
  return names;
}

std::string MlCpuFeatureFlags() {
  std::string flags;
#if defined(__x86_64__) || defined(__i386__)
  const auto append = [&flags](bool supported, const char* name) {
    if (!supported) return;
    if (!flags.empty()) flags += ',';
    flags += name;
  };
  append(__builtin_cpu_supports("avx2"), "avx2");
  append(__builtin_cpu_supports("fma"), "fma");
  append(__builtin_cpu_supports("avx512f"), "avx512f");
  append(__builtin_cpu_supports("avx512bw"), "avx512bw");
  // Not a dispatch tier of its own, but the quant kernels pick dpbusd
  // accumulation when present — bench headers need it to explain int8
  // throughput differences across machines.
  append(__builtin_cpu_supports("avx512vnni"), "avx512vnni");
#endif
  return flags;
}

bool ParseMlKernelBackend(const char* name, MlKernelBackend* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "reference") == 0) {
    *out = MlKernelBackend::kReference;
    return true;
  }
  if (std::strcmp(name, "fast") == 0) {
    *out = MlKernelBackend::kFast;
    return true;
  }
  if (std::strcmp(name, "quant") == 0) {
    *out = MlKernelBackend::kQuant;
    return true;
  }
  return false;
}

const char* MlKernelBackendName(MlKernelBackend backend) {
  switch (backend) {
    case MlKernelBackend::kReference: return "reference";
    case MlKernelBackend::kFast: return "fast";
    case MlKernelBackend::kQuant: return "quant";
  }
  return "unknown";
}

MlKernelBackend ActiveMlKernelBackend() {
  int backend = g_backend.load(std::memory_order_relaxed);
  if (backend < 0) {
    MlKernelBackend parsed = MlKernelBackend::kFast;
    const char* env = std::getenv("ARECEL_ML_KERNEL");
    if (env != nullptr && env[0] != '\0' && !ParseMlKernelBackend(env, &parsed))
      DieInvalidBackend(env);
    backend = static_cast<int>(parsed);
    g_backend.store(backend, std::memory_order_relaxed);
  }
  return static_cast<MlKernelBackend>(backend);
}

void SetMlKernelBackend(MlKernelBackend backend) {
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

const char* MlKernelSimdName() { return mlk::ActiveKernelOps().name; }

// ---------------------------------------------------------------------------
// Portable fast kernels: branch-free blocked loops the compiler can
// auto-vectorize at the baseline ISA. Same contracts as the AVX2 table.
// ---------------------------------------------------------------------------

namespace mlk {
namespace {

void DenseRowsPortable(const float* a, size_t lda, const float* b, size_t ldb,
                       const float* bias, bool relu, float* out, size_t ldo,
                       size_t i_lo, size_t i_hi, size_t k, size_t n) {
  for (size_t i = i_lo; i < i_hi; ++i) {
    float* out_row = out + i * ldo;
    if (bias != nullptr) {
      std::memcpy(out_row, bias, n * sizeof(float));
    } else {
      std::memset(out_row, 0, n * sizeof(float));
    }
    const float* a_row = a + i * lda;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      const float* b_row = b + kk * ldb;
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
    if (relu) {
      for (size_t j = 0; j < n; ++j)
        out_row[j] = out_row[j] < 0.0f ? 0.0f : out_row[j];
    }
  }
}

void DotRowsPortable(const float* a, size_t lda, const float* b, size_t ldb,
                     float* out, size_t ldo, size_t i_lo, size_t i_hi,
                     size_t k, size_t n) {
  for (size_t i = i_lo; i < i_hi; ++i) {
    const float* a_row = a + i * lda;
    float* out_row = out + i * ldo;
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * ldb;
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      out_row[j] = acc;
    }
  }
}

void AccumOuterPortable(const float* a, size_t lda, const float* b,
                        size_t ldb, float* out, size_t ldo, size_t k_lo,
                        size_t k_hi, size_t m, size_t n) {
  for (size_t kk = k_lo; kk < k_hi; ++kk) {
    const float* a_row = a + kk * lda;
    const float* b_row = b + kk * ldb;
    for (size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      float* out_row = out + i * ldo;
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void PackedDenseRowsPortable(const float* a, size_t lda, const float* bp,
                             size_t k, size_t n, const float* bias, bool relu,
                             float* out, size_t ldo, size_t i_lo, size_t i_hi,
                             size_t col_begin, size_t cols) {
  const size_t col_end = col_begin + cols;
  const size_t t0 = col_begin / kPackTileCols;
  for (size_t i = i_lo; i < i_hi; ++i) {
    const float* a_row = a + i * lda;
    float* out_row = out + i * ldo;
    for (size_t t = t0; t * kPackTileCols < col_end; ++t) {
      const float* tp = bp + t * kPackTileCols * k;
      const size_t jbase = t * kPackTileCols;
      // Full 16-wide accumulator even on edge tiles; only the covered
      // columns are copied out below. One FMA chain per column in k order —
      // the cross-tier bit-identity contract (ml/kernels_simd.h).
      float acc[kPackTileCols];
      for (size_t c = 0; c < kPackTileCols; ++c) {
        const size_t j = jbase + c;
        acc[c] = (bias != nullptr && j < n) ? bias[j] : 0.0f;
      }
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = a_row[kk];
        const float* b_row = tp + kk * kPackTileCols;
        for (size_t c = 0; c < kPackTileCols; ++c) acc[c] += av * b_row[c];
      }
      const size_t c_lo = jbase < col_begin ? col_begin - jbase : 0;
      const size_t c_hi =
          col_end - jbase < kPackTileCols ? col_end - jbase : kPackTileCols;
      for (size_t c = c_lo; c < c_hi; ++c) {
        float v = acc[c];
        if (relu && v < 0.0f) v = 0.0f;
        out_row[jbase + c - col_begin] = v;
      }
    }
  }
}

void QuantDenseRowsPortable(const uint8_t* aq, size_t lda_q,
                            const float* a_scales, const int32_t* a_zps,
                            const int8_t* bq, size_t k_pad, size_t n_pad,
                            const float* w_scales, const int32_t* w_col_sums,
                            const float* bias, bool relu, float* out,
                            size_t ldo, size_t i_lo, size_t i_hi,
                            size_t col_begin, size_t cols) {
  (void)n_pad;
  const size_t col_end = col_begin + cols;
  const size_t t0 = col_begin / kPackTileCols;
  for (size_t i = i_lo; i < i_hi; ++i) {
    const uint8_t* a_row = aq + i * lda_q;
    float* out_row = out + i * ldo;
    for (size_t t = t0; t * kPackTileCols < col_end; ++t) {
      const int8_t* tp = bq + t * kPackTileCols * k_pad;
      const size_t jbase = t * kPackTileCols;
      int32_t acc[kPackTileCols] = {0};
      for (size_t kg = 0; kg < k_pad; kg += kQuantKGroup) {
        const int8_t* group = tp + kg * kPackTileCols;
        for (size_t c = 0; c < kPackTileCols; ++c) {
          const int8_t* wb = group + c * kQuantKGroup;
          int32_t sum = 0;
          for (size_t u = 0; u < kQuantKGroup; ++u)
            sum += static_cast<int32_t>(a_row[kg + u]) *
                   static_cast<int32_t>(wb[u]);
          acc[c] += sum;
        }
      }
      const size_t c_lo = jbase < col_begin ? col_begin - jbase : 0;
      const size_t c_hi =
          col_end - jbase < kPackTileCols ? col_end - jbase : kPackTileCols;
      for (size_t c = c_lo; c < c_hi; ++c) {
        const size_t j = jbase + c;
        out_row[j - col_begin] =
            QuantEpilogue(acc[c], a_zps[i], w_col_sums[j], a_scales[i],
                          w_scales[j], bias != nullptr ? bias[j] : 0.0f, relu);
      }
    }
  }
}

constexpr KernelOps kPortableOps = {
    DenseRowsPortable,
    DotRowsPortable,
    AccumOuterPortable,
    PackedDenseRowsPortable,
    QuantDenseRowsPortable,
    // Defined in ml/packed.cc, whose compile flags let the range reduction
    // auto-vectorize at the baseline ISA.
    QuantizeRowsPortable,
    "portable",
};

}  // namespace

const KernelOps& PortableKernelOps() { return kPortableOps; }

}  // namespace mlk

// ---------------------------------------------------------------------------
// Reference backend: the original scalar i-k-j loops, retained verbatim —
// including the `av == 0.0f` skip branches, which help on the sparse 0/1
// encodings but pessimize dense inputs (the branch is unpredictable and
// blocks vectorization). Differential tests and BENCH_ml.json measure the
// fast backend against exactly this code.
// ---------------------------------------------------------------------------

namespace {
namespace reference {

void MatMulRows(const Matrix& a, const Matrix& b, Matrix* out, size_t lo,
                size_t hi) {
  const size_t k = a.cols(), n = b.cols();
  for (size_t i = lo; i < hi; ++i) {
    float* out_row = out->Row(i);
    const float* a_row = a.Row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      const float* b_row = b.Row(kk);
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void MatMulBTRows(const Matrix& a, const Matrix& b, Matrix* out, size_t lo,
                  size_t hi) {
  const size_t k = a.cols(), n = b.rows();
  for (size_t i = lo; i < hi; ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b.Row(j);
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      out_row[j] = acc;
    }
  }
}

void MatMulATAccum(const Matrix& a, const Matrix& b, Matrix* dst, size_t lo,
                   size_t hi) {
  const size_t m = a.cols(), n = b.cols();
  for (size_t kk = lo; kk < hi; ++kk) {
    const float* a_row = a.Row(kk);
    const float* b_row = b.Row(kk);
    for (size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) continue;
      float* out_row = dst->Row(i);
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

}  // namespace reference

// Shared parallel-over-shared-dimension reduction for the A^T*B family:
// thread-local partials, summed into `out` afterwards. `accum(dst, lo, hi)`
// must add the contribution of shared rows [lo, hi) into dst.
template <typename Accum>
void AccumulateOverSharedDim(size_t k, size_t m, size_t n, Matrix* out,
                             const Accum& accum) {
  if (k * m * n < kParallelMaddsThreshold) {
    accum(out, 0, k);
    return;
  }
  const int workers = ParallelWorkerCount();
  std::vector<Matrix> partials(static_cast<size_t>(workers),
                               Matrix(m, n, 0.0f));
  const size_t chunk =
      (k + static_cast<size_t>(workers) - 1) / static_cast<size_t>(workers);
  ParallelFor(0, static_cast<size_t>(workers), [&](size_t w) {
    const size_t lo = w * chunk;
    const size_t hi = lo + chunk < k ? lo + chunk : k;
    if (lo < hi) accum(&partials[w], lo, hi);
  });
  for (const Matrix& partial : partials) AddInPlace(out, partial);
}

// Row-parallel dispatch helper for the fast backend.
template <typename Rows>
void RunRows(size_t m, size_t k, size_t n, const Rows& rows) {
  if (m * k * n >= kParallelMaddsThreshold) {
    ParallelForChunked(0, m, rows);
  } else {
    rows(0, m);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public matmul entry points (declared in ml/matrix.h).
// ---------------------------------------------------------------------------

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.cols() == b.rows());
  out->Resize(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    out->Fill(0.0f);
    RunRows(m, k, n, [&](size_t lo, size_t hi) {
      reference::MatMulRows(a, b, out, lo, hi);
    });
    return;
  }
  const mlk::KernelOps& ops = mlk::ActiveKernelOps();
  RunRows(m, k, n, [&](size_t lo, size_t hi) {
    ops.dense_rows(a.data(), k, b.data(), n, /*bias=*/nullptr,
                   /*relu=*/false, out->data(), n, lo, hi, k, n);
  });
}

void MatMulBT(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.cols() == b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  out->Resize(m, n);
  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    RunRows(m, k, n, [&](size_t lo, size_t hi) {
      reference::MatMulBTRows(a, b, out, lo, hi);
    });
    return;
  }
  const mlk::KernelOps& ops = mlk::ActiveKernelOps();
  RunRows(m, k, n, [&](size_t lo, size_t hi) {
    ops.dot_rows(a.data(), k, b.data(), k, out->data(), n, lo, hi, k, n);
  });
}

void MatMulAT(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.rows() == b.rows());
  out->Resize(a.cols(), b.cols());
  out->Fill(0.0f);
  MatMulATAccumulate(a, b, out);
}

void MatMulATAccumulate(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.rows() == b.rows());
  ARECEL_CHECK(out->rows() == a.cols() && out->cols() == b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    AccumulateOverSharedDim(k, m, n, out,
                            [&](Matrix* dst, size_t lo, size_t hi) {
                              reference::MatMulATAccum(a, b, dst, lo, hi);
                            });
    return;
  }
  const mlk::KernelOps& ops = mlk::ActiveKernelOps();
  AccumulateOverSharedDim(
      k, m, n, out, [&](Matrix* dst, size_t lo, size_t hi) {
        ops.accum_outer(a.data(), m, b.data(), n, dst->data(), n, lo, hi, m,
                        n);
      });
}

// ---------------------------------------------------------------------------
// Fused layer ops.
// ---------------------------------------------------------------------------

void DenseForward(const Matrix& input, const Matrix& weights,
                  const float* bias, bool relu, Matrix* out) {
  ARECEL_CHECK(input.cols() == weights.rows());
  const size_t m = input.rows(), k = input.cols(), n = weights.cols();
  out->Resize(m, n);
  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    // Historical unfused sequence: matmul, bias broadcast, activation pass.
    out->Fill(0.0f);
    RunRows(m, k, n, [&](size_t lo, size_t hi) {
      reference::MatMulRows(input, weights, out, lo, hi);
    });
    if (bias != nullptr) {
      for (size_t i = 0; i < m; ++i) {
        float* row = out->Row(i);
        for (size_t j = 0; j < n; ++j) row[j] += bias[j];
      }
    }
    if (relu) ReluInPlace(out);
    return;
  }
  const mlk::KernelOps& ops = mlk::ActiveKernelOps();
  RunRows(m, k, n, [&](size_t lo, size_t hi) {
    ops.dense_rows(input.data(), k, weights.data(), n, bias, relu,
                   out->data(), n, lo, hi, k, n);
  });
}

void DenseForwardSlice(const Matrix& input, const Matrix& weights,
                       const float* bias, size_t col_begin, size_t cols,
                       Matrix* out) {
  ARECEL_CHECK(input.cols() == weights.rows());
  ARECEL_CHECK(col_begin + cols <= weights.cols());
  const size_t m = input.rows(), k = input.cols();
  out->Resize(m, cols);
  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    // Historical sliced loop (ml/made.cc), zero-skip branch included.
    for (size_t i = 0; i < m; ++i) {
      const float* in_row = input.Row(i);
      float* dst = out->Row(i);
      for (size_t v = 0; v < cols; ++v)
        dst[v] = bias != nullptr ? bias[col_begin + v] : 0.0f;
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = in_row[kk];
        if (av == 0.0f) continue;
        const float* w_row = weights.Row(kk);
        for (size_t v = 0; v < cols; ++v)
          dst[v] += av * w_row[col_begin + v];
      }
    }
    return;
  }
  const mlk::KernelOps& ops = mlk::ActiveKernelOps();
  RunRows(m, k, cols, [&](size_t lo, size_t hi) {
    ops.dense_rows(input.data(), k, weights.data() + col_begin,
                   weights.cols(), bias != nullptr ? bias + col_begin : nullptr,
                   /*relu=*/false, out->data(), cols, lo, hi, k, cols);
  });
}

namespace {

// Shared core of the packed forwards (ml/packed.h). Quant runs the int8
// kernels over freshly quantized activations; every other backend runs the
// packed fp32 kernels — including kReference, whose layer-level callers gate
// on the backend before reaching here, so a direct call (tests) still has
// defined behavior.
void PackedForwardImpl(const Matrix& input, const PackedDenseWeights& packed,
                       const float* bias, bool relu, size_t col_begin,
                       size_t cols, Matrix* out) {
  ARECEL_CHECK(packed.has);
  const size_t m = input.rows(), k = input.cols();
  ARECEL_CHECK(k == packed.fp32.rows());
  ARECEL_CHECK(col_begin + cols <= packed.fp32.cols());
  out->Resize(m, cols);
  const mlk::KernelOps& ops = mlk::ActiveKernelOps();
  if (ActiveMlKernelBackend() == MlKernelBackend::kQuant) {
    const QuantizedDense& q = packed.q8;
    // Serving calls this per layer per batch; thread_local scratch keeps the
    // activation-quantization buffers warm instead of reallocating each call.
    // Workers inside RunRows only read these, so sharing the caller's
    // buffers across the chunked dispatch is safe.
    thread_local std::vector<uint8_t> aq;
    thread_local std::vector<float> a_scales;
    thread_local std::vector<int32_t> a_zps;
    QuantizeActivations(input, q.padded_rows(), &aq, &a_scales, &a_zps);
    RunRows(m, k, cols, [&](size_t lo, size_t hi) {
      ops.quant_dense_rows(aq.data(), q.padded_rows(), a_scales.data(),
                           a_zps.data(), q.data(), q.padded_rows(),
                           q.padded_cols(), q.scales(), q.col_sums(), bias,
                           relu, out->data(), cols, lo, hi, col_begin, cols);
    });
    return;
  }
  RunRows(m, k, cols, [&](size_t lo, size_t hi) {
    ops.packed_dense_rows(input.data(), k, packed.fp32.data(), k,
                          packed.fp32.cols(), bias, relu, out->data(), cols,
                          lo, hi, col_begin, cols);
  });
}

}  // namespace

void PackedDenseForward(const Matrix& input, const PackedDenseWeights& packed,
                        const float* bias, bool relu, Matrix* out) {
  PackedForwardImpl(input, packed, bias, relu, /*col_begin=*/0,
                    packed.fp32.cols(), out);
}

void PackedDenseForwardSlice(const Matrix& input,
                             const PackedDenseWeights& packed,
                             const float* bias, size_t col_begin, size_t cols,
                             Matrix* out) {
  PackedForwardImpl(input, packed, bias, /*relu=*/false, col_begin, cols, out);
}

void DenseBackward(const Matrix& input, const Matrix& preact, bool relu,
                   const Matrix& output_grad, const Matrix& weights,
                   Matrix* weight_grad, float* bias_grad, Matrix* input_grad,
                   Matrix* dz_scratch) {
  ARECEL_CHECK(output_grad.rows() == input.rows());
  ARECEL_CHECK(output_grad.cols() == weights.cols());
  const size_t rows = output_grad.rows(), n = output_grad.cols();

  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    // Historical sequence: masked copy, dW temp + add, colsum temp + add.
    Matrix dz = output_grad;
    if (relu) {
      for (size_t i = 0; i < dz.size(); ++i) {
        if (preact.data()[i] <= 0.0f) dz.data()[i] = 0.0f;
      }
    }
    Matrix dw;
    MatMulAT(input, dz, &dw);
    for (size_t i = 0; i < weight_grad->size(); ++i)
      weight_grad->data()[i] += dw.data()[i];
    std::vector<float> db;
    ColumnSums(dz, &db);
    for (size_t j = 0; j < n; ++j) bias_grad[j] += db[j];
    if (input_grad != nullptr) MatMulBT(dz, weights, input_grad);
    return;
  }

  // Fused path: one pass produces the masked gradient and the bias column
  // sums; dW accumulates straight into the gradient buffer (no temp).
  const Matrix* dz = &output_grad;
  if (relu) {
    dz_scratch->Resize(rows, n);
    for (size_t r = 0; r < rows; ++r) {
      const float* g = output_grad.Row(r);
      const float* p = preact.Row(r);
      float* d = dz_scratch->Row(r);
      for (size_t j = 0; j < n; ++j) {
        const float v = p[j] > 0.0f ? g[j] : 0.0f;
        d[j] = v;
        bias_grad[j] += v;
      }
    }
    dz = dz_scratch;
  } else {
    for (size_t r = 0; r < rows; ++r) {
      const float* g = output_grad.Row(r);
      for (size_t j = 0; j < n; ++j) bias_grad[j] += g[j];
    }
  }
  MatMulATAccumulate(input, *dz, weight_grad);
  if (input_grad != nullptr) MatMulBT(*dz, weights, input_grad);
}

void AddInPlace(Matrix* acc, const Matrix& x) {
  ARECEL_CHECK(acc->rows() == x.rows() && acc->cols() == x.cols());
  float* a = acc->data();
  const float* b = x.data();
  const size_t size = x.size();
  for (size_t i = 0; i < size; ++i) a[i] += b[i];
}

void ReluInPlace(Matrix* m) {
  float* data = m->data();
  const size_t size = m->size();
  for (size_t i = 0; i < size; ++i) data[i] = data[i] < 0.0f ? 0.0f : data[i];
}

}  // namespace arecel
