#include "ml/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ml/kernels_simd.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace arecel {

namespace {

// Below this many multiply-adds, thread dispatch costs more than it saves.
// Bench-derived: BM_MatMul in bench_micro_ml puts the single-thread /
// ParallelForChunked crossover between the 128^3 (~2M madds) and 256^3
// (~16M madds) cells on multi-core hosts; 4M keeps the dense layers of the
// paper's models (batch 256-512, width 64-1024) single-threaded while the
// largest output-layer products still fan out. On single-worker hosts the
// pool runs inline, so the value is latency-neutral there.
constexpr size_t kParallelMaddsThreshold = 4u << 20;

// ---------------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------------

std::atomic<int> g_backend{-1};  // -1 = not yet resolved from env.

[[noreturn]] void DieInvalidBackend(const char* value) {
  std::fprintf(stderr,
               "ARECEL_ML_KERNEL='%s' is not a kernel backend "
               "(want 'reference' or 'fast')\n",
               value);
  std::exit(2);
}

const mlk::KernelOps& FastOps() {
  static const mlk::KernelOps& ops = []() -> const mlk::KernelOps& {
    const mlk::KernelOps* avx2 = mlk::Avx2KernelOps();
#if defined(__x86_64__) || defined(__i386__)
    if (avx2 != nullptr && __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma")) {
      return *avx2;
    }
#else
    (void)avx2;
#endif
    return mlk::PortableKernelOps();
  }();
  return ops;
}

}  // namespace

bool ParseMlKernelBackend(const char* name, MlKernelBackend* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "reference") == 0) {
    *out = MlKernelBackend::kReference;
    return true;
  }
  if (std::strcmp(name, "fast") == 0) {
    *out = MlKernelBackend::kFast;
    return true;
  }
  return false;
}

MlKernelBackend ActiveMlKernelBackend() {
  int backend = g_backend.load(std::memory_order_relaxed);
  if (backend < 0) {
    MlKernelBackend parsed = MlKernelBackend::kFast;
    const char* env = std::getenv("ARECEL_ML_KERNEL");
    if (env != nullptr && env[0] != '\0' && !ParseMlKernelBackend(env, &parsed))
      DieInvalidBackend(env);
    backend = static_cast<int>(parsed);
    g_backend.store(backend, std::memory_order_relaxed);
  }
  return static_cast<MlKernelBackend>(backend);
}

void SetMlKernelBackend(MlKernelBackend backend) {
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

const char* MlKernelSimdName() { return FastOps().name; }

// ---------------------------------------------------------------------------
// Portable fast kernels: branch-free blocked loops the compiler can
// auto-vectorize at the baseline ISA. Same contracts as the AVX2 table.
// ---------------------------------------------------------------------------

namespace mlk {
namespace {

void DenseRowsPortable(const float* a, size_t lda, const float* b, size_t ldb,
                       const float* bias, bool relu, float* out, size_t ldo,
                       size_t i_lo, size_t i_hi, size_t k, size_t n) {
  for (size_t i = i_lo; i < i_hi; ++i) {
    float* out_row = out + i * ldo;
    if (bias != nullptr) {
      std::memcpy(out_row, bias, n * sizeof(float));
    } else {
      std::memset(out_row, 0, n * sizeof(float));
    }
    const float* a_row = a + i * lda;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      const float* b_row = b + kk * ldb;
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
    if (relu) {
      for (size_t j = 0; j < n; ++j)
        out_row[j] = out_row[j] < 0.0f ? 0.0f : out_row[j];
    }
  }
}

void DotRowsPortable(const float* a, size_t lda, const float* b, size_t ldb,
                     float* out, size_t ldo, size_t i_lo, size_t i_hi,
                     size_t k, size_t n) {
  for (size_t i = i_lo; i < i_hi; ++i) {
    const float* a_row = a + i * lda;
    float* out_row = out + i * ldo;
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * ldb;
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      out_row[j] = acc;
    }
  }
}

void AccumOuterPortable(const float* a, size_t lda, const float* b,
                        size_t ldb, float* out, size_t ldo, size_t k_lo,
                        size_t k_hi, size_t m, size_t n) {
  for (size_t kk = k_lo; kk < k_hi; ++kk) {
    const float* a_row = a + kk * lda;
    const float* b_row = b + kk * ldb;
    for (size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      float* out_row = out + i * ldo;
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

constexpr KernelOps kPortableOps = {
    DenseRowsPortable,
    DotRowsPortable,
    AccumOuterPortable,
    "portable",
};

}  // namespace

const KernelOps& PortableKernelOps() { return kPortableOps; }

}  // namespace mlk

// ---------------------------------------------------------------------------
// Reference backend: the original scalar i-k-j loops, retained verbatim —
// including the `av == 0.0f` skip branches, which help on the sparse 0/1
// encodings but pessimize dense inputs (the branch is unpredictable and
// blocks vectorization). Differential tests and BENCH_ml.json measure the
// fast backend against exactly this code.
// ---------------------------------------------------------------------------

namespace {
namespace reference {

void MatMulRows(const Matrix& a, const Matrix& b, Matrix* out, size_t lo,
                size_t hi) {
  const size_t k = a.cols(), n = b.cols();
  for (size_t i = lo; i < hi; ++i) {
    float* out_row = out->Row(i);
    const float* a_row = a.Row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      const float* b_row = b.Row(kk);
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void MatMulBTRows(const Matrix& a, const Matrix& b, Matrix* out, size_t lo,
                  size_t hi) {
  const size_t k = a.cols(), n = b.rows();
  for (size_t i = lo; i < hi; ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b.Row(j);
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      out_row[j] = acc;
    }
  }
}

void MatMulATAccum(const Matrix& a, const Matrix& b, Matrix* dst, size_t lo,
                   size_t hi) {
  const size_t m = a.cols(), n = b.cols();
  for (size_t kk = lo; kk < hi; ++kk) {
    const float* a_row = a.Row(kk);
    const float* b_row = b.Row(kk);
    for (size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) continue;
      float* out_row = dst->Row(i);
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

}  // namespace reference

// Shared parallel-over-shared-dimension reduction for the A^T*B family:
// thread-local partials, summed into `out` afterwards. `accum(dst, lo, hi)`
// must add the contribution of shared rows [lo, hi) into dst.
template <typename Accum>
void AccumulateOverSharedDim(size_t k, size_t m, size_t n, Matrix* out,
                             const Accum& accum) {
  if (k * m * n < kParallelMaddsThreshold) {
    accum(out, 0, k);
    return;
  }
  const int workers = ParallelWorkerCount();
  std::vector<Matrix> partials(static_cast<size_t>(workers),
                               Matrix(m, n, 0.0f));
  const size_t chunk =
      (k + static_cast<size_t>(workers) - 1) / static_cast<size_t>(workers);
  ParallelFor(0, static_cast<size_t>(workers), [&](size_t w) {
    const size_t lo = w * chunk;
    const size_t hi = lo + chunk < k ? lo + chunk : k;
    if (lo < hi) accum(&partials[w], lo, hi);
  });
  for (const Matrix& partial : partials) AddInPlace(out, partial);
}

// Row-parallel dispatch helper for the fast backend.
template <typename Rows>
void RunRows(size_t m, size_t k, size_t n, const Rows& rows) {
  if (m * k * n >= kParallelMaddsThreshold) {
    ParallelForChunked(0, m, rows);
  } else {
    rows(0, m);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public matmul entry points (declared in ml/matrix.h).
// ---------------------------------------------------------------------------

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.cols() == b.rows());
  out->Resize(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    out->Fill(0.0f);
    RunRows(m, k, n, [&](size_t lo, size_t hi) {
      reference::MatMulRows(a, b, out, lo, hi);
    });
    return;
  }
  const mlk::KernelOps& ops = FastOps();
  RunRows(m, k, n, [&](size_t lo, size_t hi) {
    ops.dense_rows(a.data(), k, b.data(), n, /*bias=*/nullptr,
                   /*relu=*/false, out->data(), n, lo, hi, k, n);
  });
}

void MatMulBT(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.cols() == b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  out->Resize(m, n);
  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    RunRows(m, k, n, [&](size_t lo, size_t hi) {
      reference::MatMulBTRows(a, b, out, lo, hi);
    });
    return;
  }
  const mlk::KernelOps& ops = FastOps();
  RunRows(m, k, n, [&](size_t lo, size_t hi) {
    ops.dot_rows(a.data(), k, b.data(), k, out->data(), n, lo, hi, k, n);
  });
}

void MatMulAT(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.rows() == b.rows());
  out->Resize(a.cols(), b.cols());
  out->Fill(0.0f);
  MatMulATAccumulate(a, b, out);
}

void MatMulATAccumulate(const Matrix& a, const Matrix& b, Matrix* out) {
  ARECEL_CHECK(a.rows() == b.rows());
  ARECEL_CHECK(out->rows() == a.cols() && out->cols() == b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    AccumulateOverSharedDim(k, m, n, out,
                            [&](Matrix* dst, size_t lo, size_t hi) {
                              reference::MatMulATAccum(a, b, dst, lo, hi);
                            });
    return;
  }
  const mlk::KernelOps& ops = FastOps();
  AccumulateOverSharedDim(
      k, m, n, out, [&](Matrix* dst, size_t lo, size_t hi) {
        ops.accum_outer(a.data(), m, b.data(), n, dst->data(), n, lo, hi, m,
                        n);
      });
}

// ---------------------------------------------------------------------------
// Fused layer ops.
// ---------------------------------------------------------------------------

void DenseForward(const Matrix& input, const Matrix& weights,
                  const float* bias, bool relu, Matrix* out) {
  ARECEL_CHECK(input.cols() == weights.rows());
  const size_t m = input.rows(), k = input.cols(), n = weights.cols();
  out->Resize(m, n);
  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    // Historical unfused sequence: matmul, bias broadcast, activation pass.
    out->Fill(0.0f);
    RunRows(m, k, n, [&](size_t lo, size_t hi) {
      reference::MatMulRows(input, weights, out, lo, hi);
    });
    if (bias != nullptr) {
      for (size_t i = 0; i < m; ++i) {
        float* row = out->Row(i);
        for (size_t j = 0; j < n; ++j) row[j] += bias[j];
      }
    }
    if (relu) ReluInPlace(out);
    return;
  }
  const mlk::KernelOps& ops = FastOps();
  RunRows(m, k, n, [&](size_t lo, size_t hi) {
    ops.dense_rows(input.data(), k, weights.data(), n, bias, relu,
                   out->data(), n, lo, hi, k, n);
  });
}

void DenseForwardSlice(const Matrix& input, const Matrix& weights,
                       const float* bias, size_t col_begin, size_t cols,
                       Matrix* out) {
  ARECEL_CHECK(input.cols() == weights.rows());
  ARECEL_CHECK(col_begin + cols <= weights.cols());
  const size_t m = input.rows(), k = input.cols();
  out->Resize(m, cols);
  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    // Historical sliced loop (ml/made.cc), zero-skip branch included.
    for (size_t i = 0; i < m; ++i) {
      const float* in_row = input.Row(i);
      float* dst = out->Row(i);
      for (size_t v = 0; v < cols; ++v)
        dst[v] = bias != nullptr ? bias[col_begin + v] : 0.0f;
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = in_row[kk];
        if (av == 0.0f) continue;
        const float* w_row = weights.Row(kk);
        for (size_t v = 0; v < cols; ++v)
          dst[v] += av * w_row[col_begin + v];
      }
    }
    return;
  }
  const mlk::KernelOps& ops = FastOps();
  RunRows(m, k, cols, [&](size_t lo, size_t hi) {
    ops.dense_rows(input.data(), k, weights.data() + col_begin,
                   weights.cols(), bias != nullptr ? bias + col_begin : nullptr,
                   /*relu=*/false, out->data(), cols, lo, hi, k, cols);
  });
}

void DenseBackward(const Matrix& input, const Matrix& preact, bool relu,
                   const Matrix& output_grad, const Matrix& weights,
                   Matrix* weight_grad, float* bias_grad, Matrix* input_grad,
                   Matrix* dz_scratch) {
  ARECEL_CHECK(output_grad.rows() == input.rows());
  ARECEL_CHECK(output_grad.cols() == weights.cols());
  const size_t rows = output_grad.rows(), n = output_grad.cols();

  if (ActiveMlKernelBackend() == MlKernelBackend::kReference) {
    // Historical sequence: masked copy, dW temp + add, colsum temp + add.
    Matrix dz = output_grad;
    if (relu) {
      for (size_t i = 0; i < dz.size(); ++i) {
        if (preact.data()[i] <= 0.0f) dz.data()[i] = 0.0f;
      }
    }
    Matrix dw;
    MatMulAT(input, dz, &dw);
    for (size_t i = 0; i < weight_grad->size(); ++i)
      weight_grad->data()[i] += dw.data()[i];
    std::vector<float> db;
    ColumnSums(dz, &db);
    for (size_t j = 0; j < n; ++j) bias_grad[j] += db[j];
    if (input_grad != nullptr) MatMulBT(dz, weights, input_grad);
    return;
  }

  // Fused path: one pass produces the masked gradient and the bias column
  // sums; dW accumulates straight into the gradient buffer (no temp).
  const Matrix* dz = &output_grad;
  if (relu) {
    dz_scratch->Resize(rows, n);
    for (size_t r = 0; r < rows; ++r) {
      const float* g = output_grad.Row(r);
      const float* p = preact.Row(r);
      float* d = dz_scratch->Row(r);
      for (size_t j = 0; j < n; ++j) {
        const float v = p[j] > 0.0f ? g[j] : 0.0f;
        d[j] = v;
        bias_grad[j] += v;
      }
    }
    dz = dz_scratch;
  } else {
    for (size_t r = 0; r < rows; ++r) {
      const float* g = output_grad.Row(r);
      for (size_t j = 0; j < n; ++j) bias_grad[j] += g[j];
    }
  }
  MatMulATAccumulate(input, *dz, weight_grad);
  if (input_grad != nullptr) MatMulBT(*dz, weights, input_grad);
}

void AddInPlace(Matrix* acc, const Matrix& x) {
  ARECEL_CHECK(acc->rows() == x.rows() && acc->cols() == x.cols());
  float* a = acc->data();
  const float* b = x.data();
  const size_t size = x.size();
  for (size_t i = 0; i < size; ++i) a[i] += b[i];
}

void ReluInPlace(Matrix* m) {
  float* data = m->data();
  const size_t size = m->size();
  for (size_t i = 0; i < size; ++i) data[i] = data[i] < 0.0f ? 0.0f : data[i];
}

}  // namespace arecel
